// Change detection feeding incremental index maintenance.
//
// The paper's maintenance algorithm needs a log of edit operations, but
// document stores often only keep versions. This example closes that gap:
// two XML versions of a document are diffed (optimal root-preserving
// Zhang-Shasha edit script), the script is replayed to record the inverse
// log, and the pq-gram index is maintained from that log -- the complete
// pipeline from "we replaced the file" to "the index is current".
//
// Run:  build/examples/change_detection [nodes] [edits]

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "edit/tree_diff.h"
#include "ted/zhang_shasha.h"
#include "tree/generators.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

using namespace pqidx;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 1200;
  const int edits = argc > 2 ? std::atoi(argv[2]) : 15;
  const PqShape shape{3, 3};
  Rng rng(7);

  // Version 1 of the document, and its index.
  Tree v1 = GenerateXmarkLike(nullptr, &rng, nodes);
  PqGramIndex index = BuildIndex(v1, shape);
  std::printf("v1: %d nodes, index with %lld pq-grams\n", v1.size(),
              static_cast<long long>(index.size()));

  // Version 2 arrives as XML text only -- no log of what changed.
  Tree edited = v1.Clone();
  EditLog lost_log;  // what the editor *would* have recorded, discarded
  GenerateEditScript(&edited, &rng, edits, EditScriptOptions{}, &lost_log);
  std::string v2_xml = WriteXml(edited);
  std::printf("v2 arrived as %zu bytes of XML (no edit log)\n",
              v2_xml.size());

  StatusOr<Tree> v2 = ParseXml(v2_xml, v1.dict_ptr());
  if (!v2.ok()) {
    std::printf("parse error: %s\n", v2.status().ToString().c_str());
    return 1;
  }

  // Reconstruct a minimal script and replay it with log recording.
  TreeDiff diff = ComputeEditScript(v1, *v2);
  std::printf("diff: %d operations (editor made %d; TED is the minimum)\n",
              diff.distance, edits);
  EditLog log;
  if (Status s = ApplyDiff(diff, &v1, &log); !s.ok()) {
    std::printf("apply failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Maintain the index from the reconstructed log.
  UpdateTimings timings;
  if (Status s = UpdateIndex(&index, v1, log, &timings); !s.ok()) {
    std::printf("update failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("index updated in %.4fs (Delta+ %lld, Delta- %lld pq-grams)\n",
              timings.total_s,
              static_cast<long long>(timings.delta_plus_pqgrams),
              static_cast<long long>(timings.delta_minus_pqgrams));

  bool ok = index == BuildIndex(v1, shape);
  std::printf("verified against rebuild: %s\n", ok ? "ok" : "MISMATCH");
  return ok ? 0 : 1;
}
