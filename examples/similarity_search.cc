// Exact tree-edit-distance search with a pq-gram filter.
//
// "Find the k documents closest to this one, by real edit distance" is
// the query the pq-gram distance was designed to make affordable: exact
// Zhang-Shasha verification is quadratic per pair, so verifying the whole
// collection is out of the question -- but verifying only the pq-gram-
// ranked candidates answers the same question at a fraction of the cost.
//
// Run:  build/examples/similarity_search [collection_size] [k]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/ted_search.h"
#include "edit/edit_script.h"
#include "tree/generators.h"

using namespace pqidx;

int main(int argc, char** argv) {
  const int collection_size = argc > 1 ? std::atoi(argv[1]) : 60;
  const int k = argc > 2 ? std::atoi(argv[2]) : 3;
  const PqShape shape{3, 3};
  Rng rng(123);
  auto dict = std::make_shared<LabelDict>();

  // A collection with three planted neighbors of the query at 2 / 6 / 12
  // edits, hidden among unrelated documents.
  Tree query = GenerateXmarkLike(dict, &rng, 180);
  std::vector<Tree> collection;
  for (int i = 0; i < collection_size - 3; ++i) {
    collection.push_back(GenerateXmarkLike(dict, &rng, 180));
  }
  for (int edits : {2, 6, 12}) {
    Tree neighbor = query.Clone();
    EditLog log;
    GenerateEditScript(&neighbor, &rng, edits, EditScriptOptions{}, &log);
    collection.push_back(std::move(neighbor));
  }
  std::vector<std::pair<TreeId, const Tree*>> refs;
  for (size_t i = 0; i < collection.size(); ++i) {
    refs.emplace_back(static_cast<TreeId>(i), &collection[i]);
  }
  std::printf("collection: %zu documents (~180 nodes each); three planted "
              "neighbors at 2/6/12 edits\n\n",
              collection.size());

  auto run = [&](const char* name, auto search) {
    TedSearchStats stats;
    auto start = std::chrono::steady_clock::now();
    std::vector<TedSearchHit> hits = search(&stats);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("%s: %.3fs, %d/%d trees verified with Zhang-Shasha\n", name,
                seconds, stats.verified, stats.collection_size);
    for (const TedSearchHit& hit : hits) {
      std::printf("  doc %-4d TED %-3d (pq-gram dist %.4f)\n", hit.tree_id,
                  hit.ted, hit.pq_distance);
    }
    std::printf("\n");
    return hits;
  };

  auto exhaustive = run("exhaustive verification", [&](TedSearchStats* s) {
    return TedTopKExhaustive(refs, query, k, shape, s);
  });
  auto filtered = run("pq-gram filter + verify", [&](TedSearchStats* s) {
    return TedTopK(refs, query, k, shape, /*oversample=*/3.0, s);
  });

  bool agree = exhaustive.size() == filtered.size();
  for (size_t i = 0; agree && i < exhaustive.size(); ++i) {
    agree = exhaustive[i].tree_id == filtered[i].tree_id &&
            exhaustive[i].ted == filtered[i].ted;
  }
  std::printf("filtered result %s the exhaustive result\n",
              agree ? "matches" : "DIFFERS FROM");
  return agree ? 0 : 1;
}
