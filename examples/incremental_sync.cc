// The paper's application scenario (Figure 1) end to end: a large
// bibliography document evolves through edit sessions; the persistent
// index is kept in sync from the inverse edit logs alone and never
// rebuilt. Each session reports the paper's Table-2-style phase breakdown
// and compares the incremental update against the cost of a full rebuild.
//
// Run:  build/examples/incremental_sync [records] [sessions] [ops_per_session]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "edit/log_optimizer.h"
#include "tree/generators.h"

using namespace pqidx;

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int records = argc > 1 ? std::atoi(argv[1]) : 20000;
  const int sessions = argc > 2 ? std::atoi(argv[2]) : 5;
  const int ops_per_session = argc > 3 ? std::atoi(argv[3]) : 200;
  const PqShape shape{3, 3};
  Rng rng(1);

  std::printf("generating DBLP-like bibliography with %d records...\n",
              records);
  Tree doc = GenerateDblpLike(nullptr, &rng, records);
  std::printf("document: %d nodes, root fanout %d\n", doc.size(),
              doc.fanout(doc.root()));

  auto start = std::chrono::steady_clock::now();
  PqGramIndex index = BuildIndex(doc, shape);
  double build_s = Seconds(start);
  std::printf("initial index build: %.3fs (%lld pq-grams)\n\n", build_s,
              static_cast<long long>(index.size()));

  for (int session = 1; session <= sessions; ++session) {
    // An editing session: random structure and value changes with the
    // inverse log recorded, then log preprocessing (Section 10).
    EditLog log;
    GenerateEditScript(&doc, &rng, ops_per_session, EditScriptOptions{},
                       &log);
    LogOptimizerStats opt_stats;
    EditLog optimized = OptimizeLog(&doc, log, &opt_stats);

    UpdateTimings t;
    if (Status s = UpdateIndex(&index, doc, optimized, &t); !s.ok()) {
      std::printf("update failed: %s\n", s.ToString().c_str());
      return 1;
    }

    start = std::chrono::steady_clock::now();
    PqGramIndex rebuilt = BuildIndex(doc, shape);
    double rebuild_s = Seconds(start);
    bool ok = index == rebuilt;

    std::printf("session %d: %d ops (%d after log preprocessing)\n", session,
                log.size(), optimized.size());
    std::printf("  Delta+ %.4fs  lambda+ %.4fs  Delta- %.4fs  lambda- %.4fs"
                "  apply %.4fs\n",
                t.delta_plus_s, t.lambda_plus_s, t.delta_minus_s,
                t.lambda_minus_s, t.apply_s);
    std::printf("  incremental total %.4fs vs full rebuild %.4fs (%.1fx)"
                "  verified: %s\n\n",
                t.total_s, rebuild_s,
                t.total_s > 0 ? rebuild_s / t.total_s : 0.0,
                ok ? "ok" : "MISMATCH");
    if (!ok) return 1;
  }
  return 0;
}
