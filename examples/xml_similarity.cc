// Approximate lookup over an XML document collection (paper Section 9.1).
//
// Generates a collection of XMark-like auction documents, round-trips them
// through real XML text, indexes the forest, persists the index to disk,
// reloads it, and answers approximate lookups: given a (noisy) query
// document, find every collection document within a pq-gram distance
// threshold.
//
// Run:  build/examples/xml_similarity [num_docs] [nodes_per_doc]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "core/forest_index.h"
#include "edit/edit_script.h"
#include "storage/index_store.h"
#include "tree/generators.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

using namespace pqidx;

int main(int argc, char** argv) {
  const int num_docs = argc > 1 ? std::atoi(argv[1]) : 24;
  const int nodes_per_doc = argc > 2 ? std::atoi(argv[2]) : 600;
  const PqShape shape{3, 3};
  Rng rng(4242);
  auto dict = std::make_shared<LabelDict>();

  // 1. Build the collection: generate, serialize to XML, re-parse -- the
  //    index sees exactly what a document store would deliver.
  std::printf("indexing %d XML documents (~%d nodes each)...\n", num_docs,
              nodes_per_doc);
  ForestIndex forest(shape);
  std::vector<Tree> docs;
  for (TreeId id = 0; id < num_docs; ++id) {
    Tree generated = GenerateXmarkLike(dict, &rng, nodes_per_doc);
    std::string xml = WriteXml(generated);
    StatusOr<Tree> parsed = ParseXml(xml, dict);
    if (!parsed.ok()) {
      std::printf("parse error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    forest.AddTree(id, *parsed);
    docs.push_back(std::move(parsed).value());
  }

  // 2. Persist and reload: the index survives process restarts.
  const std::string path = "/tmp/pqidx_xml_similarity.idx";
  if (Status s = SaveForestIndex(forest, path); !s.ok()) {
    std::printf("save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  StatusOr<ForestIndex> reloaded = LoadForestIndex(path);
  if (!reloaded.ok()) {
    std::printf("load failed: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("persisted index: %lld bytes at %s\n",
              static_cast<long long>(forest.SerializedBytes()), path.c_str());

  // 3. Query with a perturbed copy of document 5: a few random edits,
  //    like a re-exported or slightly revised version of the document.
  Tree query = docs[5].Clone();
  EditLog scratch_log;
  GenerateEditScript(&query, &rng, 8, EditScriptOptions{}, &scratch_log);

  const double tau = 0.35;
  std::printf("\nlookup of a perturbed copy of doc 5 (tau = %.2f):\n", tau);
  for (const LookupResult& hit : reloaded->Lookup(query, tau)) {
    std::printf("  doc %-3d  dist = %.4f%s\n", hit.tree_id, hit.distance,
                hit.tree_id == 5 ? "   <-- the original" : "");
  }

  // 4. An unrelated query matches nothing.
  Rng other(777);
  Tree unrelated = GenerateDblpLike(dict, &other, 60);
  std::printf("\nlookup of an unrelated DBLP-like document (tau = %.2f): "
              "%zu hits\n",
              tau, reloaded->Lookup(unrelated, tau).size());
  return 0;
}
