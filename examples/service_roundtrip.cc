// The index as a service: pqidxd served in-process over the pipe
// transport, exercised end to end through the client library.
//
// Four clients on their own threads share one server. Each registers a
// few documents (AddTree ships a locally built pq-gram bag), then edits
// them across several sessions: ApplyEdits runs the paper's Algorithm 1
// client-side and ships only the (I+, I-) delta bags, which the server
// folds into group commits -- concurrent edits from different clients
// land in ONE WAL transaction, so watch the edits/commit figure at the
// end. Lookups run concurrently against the same index the whole time.
//
// Run:  build/examples/service_roundtrip [clients] [sessions]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "service/client.h"
#include "service/server.h"
#include "service/transport.h"
#include "storage/sharded_store.h"
#include "tree/generators.h"

using namespace pqidx;

namespace {

constexpr int kTreesPerClient = 3;

// One client's life: connect, register documents, edit them for a few
// sessions, and between edits look its own documents back up.
bool RunClient(PipeListener* endpoint, int client_id, int sessions) {
  auto conn = endpoint->Connect();
  if (!conn.ok()) return false;
  auto client = Client::Connect(std::move(*conn));
  if (!client.ok()) {
    std::printf("client %d: connect failed: %s\n", client_id,
                client.status().ToString().c_str());
    return false;
  }

  Rng rng(100 + client_id);
  std::vector<Tree> docs;
  for (int t = 0; t < kTreesPerClient; ++t) {
    const TreeId id = client_id * kTreesPerClient + t;
    docs.push_back(GenerateDblpLike(nullptr, &rng, 40));
    if (Status s = (*client)->AddTree(id, docs.back()); !s.ok()) {
      std::printf("client %d: AddTree(%lld) failed: %s\n", client_id,
                  static_cast<long long>(id), s.ToString().c_str());
      return false;
    }
  }

  for (int session = 0; session < sessions; ++session) {
    for (int t = 0; t < kTreesPerClient; ++t) {
      const TreeId id = client_id * kTreesPerClient + t;
      EditLog log;
      GenerateEditScript(&docs[t], &rng, 8, EditScriptOptions{}, &log);
      if (Status s = (*client)->ApplyEdits(id, docs[t], log); !s.ok()) {
        std::printf("client %d: ApplyEdits(%lld) failed: %s\n", client_id,
                    static_cast<long long>(id), s.ToString().c_str());
        return false;
      }
      // The edited document must come back as an exact hit (distance 0).
      auto hits = (*client)->Lookup(docs[t], /*tau=*/0.0);
      if (!hits.ok()) {
        std::printf("client %d: Lookup failed: %s\n", client_id,
                    hits.status().ToString().c_str());
        return false;
      }
      bool found_self = false;
      for (const LookupResult& hit : *hits) {
        found_self |= hit.tree_id == id && hit.distance == 0.0;
      }
      if (!found_self) {
        std::printf("client %d: tree %lld missing from its own lookup\n",
                    client_id, static_cast<long long>(id));
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int sessions = argc > 2 ? std::atoi(argv[2]) : 6;
  const PqShape shape{2, 3};
  const std::string path = "/tmp/pqidx_service_roundtrip.db";

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  auto index = ShardedStore::Create(path, shape);
  if (!index.ok()) {
    std::printf("create failed: %s\n", index.status().ToString().c_str());
    return 1;
  }

  // commit_hold_us widens the batching window so a short example still
  // shows coalescing; a production server would leave it at 0 and let
  // fsync latency do the same job.
  ServerOptions options;
  options.max_connections = clients;
  options.commit_hold_us = 300;
  Server server(index->get(), options);
  auto listener = std::make_unique<PipeListener>();
  PipeListener* endpoint = listener.get();
  if (Status s = server.Start(std::move(listener)); !s.ok()) {
    std::printf("start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("pqidxd serving %s in-process, shape (%d,%d), %d clients\n",
              path.c_str(), shape.p, shape.q, clients);

  std::vector<std::thread> threads;
  std::vector<char> ok(clients, 0);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([endpoint, c, sessions, &ok] {
      ok[c] = RunClient(endpoint, c, sessions) ? 1 : 0;
    });
  }
  for (std::thread& t : threads) t.join();

  ServiceStats stats = server.stats();
  server.Stop();

  bool all_ok = true;
  for (char c : ok) all_ok &= c != 0;
  std::printf("%lld trees, %lld lookups, %lld edits in %lld commits "
              "(%.2f edits/commit, largest batch %lld)\n",
              static_cast<long long>(stats.tree_count),
              static_cast<long long>(stats.lookups),
              static_cast<long long>(stats.edits_applied),
              static_cast<long long>(stats.edit_commits),
              stats.edit_commits > 0
                  ? static_cast<double>(stats.edits_applied) /
                        static_cast<double>(stats.edit_commits)
                  : 0.0,
              static_cast<long long>(stats.max_batch));
  std::printf("lookup engine: snapshot epoch %lld, %lld pruned / %lld "
              "scored candidates\n",
              static_cast<long long>(stats.snapshot_epoch),
              static_cast<long long>(stats.candidates_pruned),
              static_cast<long long>(stats.candidates_scored));

  // The persistent file holds everything the service acknowledged
  // (aborts on catalog/table mismatch).
  (*index)->CheckConsistency();
  std::printf("all clients verified their documents: %s\n",
              all_ok ? "ok" : "FAILED");
  if (all_ok) {
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
  }
  return all_ok ? 0 : 1;
}
