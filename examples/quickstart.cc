// Quickstart: the pq-gram index in five minutes.
//
// Builds two small trees, compares them with the pq-gram distance, then
// walks through the paper's application scenario: a document is edited
// while an inverse log is recorded, and the persistent index is updated
// from the log alone -- no intermediate versions, no rebuild.
//
// Run:  build/examples/quickstart

#include <cstdio>

#include "common/check.h"
#include "core/distance.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_log.h"
#include "tree/tree_builder.h"

using namespace pqidx;

int main() {
  const PqShape shape{3, 3};  // the paper's default: 3,3-grams

  // --- 1. Trees and the pq-gram distance ---------------------------------
  // Trees are written in a compact notation: label(child,child,...).
  Tree t0 = ParseTreeNotation("a(b,c(e,f),d)").value();
  Tree similar = ParseTreeNotation("a(b,c(e,g),d)").value();   // one leaf off
  Tree different = ParseTreeNotation("x(y(z),w)").value();

  std::printf("T0        = %s\n", ToNotation(t0).c_str());
  std::printf("similar   = %s   dist = %.3f\n", ToNotation(similar).c_str(),
              PqGramDistance(t0, similar, shape));
  std::printf("different = %s          dist = %.3f\n",
              ToNotation(different).c_str(),
              PqGramDistance(t0, different, shape));

  // --- 2. A persistent index ---------------------------------------------
  PqGramIndex index = BuildIndex(t0, shape);
  std::printf("\nindex of T0: %lld pq-grams, %lld distinct label-tuples\n",
              static_cast<long long>(index.size()),
              static_cast<long long>(index.distinct()));

  // --- 3. Edit the document, recording the inverse log -------------------
  Tree doc = t0.Clone();
  EditLog log;
  LabelId x = doc.mutable_dict()->Intern("x");

  // Rename the 'c' node, delete 'b', wrap 'e','f' under a new node.
  NodeId c = doc.child(doc.root(), 1);
  PQIDX_CHECK(ApplyAndLog(EditOperation::Rename(c, x), &doc, &log).ok());
  PQIDX_CHECK(
      ApplyAndLog(EditOperation::Delete(doc.child(doc.root(), 0)), &doc, &log)
          .ok());
  PQIDX_CHECK(ApplyAndLog(EditOperation::Insert(
                              doc.AllocateId(),
                              doc.mutable_dict()->Intern("wrap"), c, 0, 2),
                          &doc, &log)
                  .ok());
  std::printf("\nafter %d edits: %s\n", log.size(), ToNotation(doc).c_str());

  // --- 4. Incremental maintenance (Algorithm 1) --------------------------
  // Inputs: the old index, the resulting tree, the inverse log. The old
  // tree T0 is no longer needed.
  UpdateTimings timings;
  Status status = UpdateIndex(&index, doc, log, &timings);
  if (!status.ok()) {
    std::printf("update failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("updated index: %lld pq-grams (Delta+ %lld, Delta- %lld)\n",
              static_cast<long long>(index.size()),
              static_cast<long long>(timings.delta_plus_pqgrams),
              static_cast<long long>(timings.delta_minus_pqgrams));

  // --- 5. Verify against a rebuild ----------------------------------------
  bool equal = index == BuildIndex(doc, shape);
  std::printf("incremental == rebuilt: %s\n", equal ? "yes" : "NO");
  return equal ? 0 : 1;
}
