// Durable incremental maintenance: the application scenario of Figure 1
// against the page-based on-disk store.
//
// A bibliography is indexed into a single page file. Each editing session
// updates the file in place through the write-ahead log: only the pages
// holding affected tuples are touched, every session commits atomically,
// and the store reopens to the exact committed state -- even after a
// simulated crash in the middle of a commit.
//
// Run:  build/examples/durable_index [records] [sessions]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "storage/persistent_forest_index.h"
#include "tree/generators.h"

using namespace pqidx;

int main(int argc, char** argv) {
  const int records = argc > 1 ? std::atoi(argv[1]) : 5000;
  const int sessions = argc > 2 ? std::atoi(argv[2]) : 4;
  const PqShape shape{3, 3};
  const std::string path = "/tmp/pqidx_durable.db";
  Rng rng(3);

  Tree doc = GenerateDblpLike(nullptr, &rng, records);
  std::printf("document: %d nodes\n", doc.size());

  {
    auto store = PersistentForestIndex::Create(path, shape);
    if (!store.ok()) {
      std::printf("create failed: %s\n", store.status().ToString().c_str());
      return 1;
    }
    if (Status s = (*store)->AddTree(1, doc); !s.ok()) {
      std::printf("add failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("created %s (|I| = %lld pq-grams)\n", path.c_str(),
                static_cast<long long>((*store)->TreeBagSize(1)));
  }

  for (int session = 1; session <= sessions; ++session) {
    // Reopen every session, as a long-lived service would across restarts.
    auto store = PersistentForestIndex::Open(path);
    if (!store.ok()) {
      std::printf("open failed: %s\n", store.status().ToString().c_str());
      return 1;
    }
    EditLog log;
    GenerateEditScript(&doc, &rng, 100, EditScriptOptions{}, &log);

    if (session == sessions) {
      // Final session: crash mid-commit on purpose. The WAL is sealed
      // before the in-place writes, so the update must survive.
      (*store)->CrashNextCommit(Pager::CrashPoint::kDuringInPlace).ok();
      std::printf("session %d: applying %d ops, then CRASHING mid-commit\n",
                  session, log.size());
    } else {
      std::printf("session %d: applying %d ops\n", session, log.size());
    }
    if (Status s = (*store)->ApplyLog(1, doc, log); !s.ok()) {
      std::printf("update failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Recovery: reopen and verify against a from-scratch index.
  auto store = PersistentForestIndex::Open(path);
  if (!store.ok()) {
    std::printf("recovery open failed: %s\n",
                store.status().ToString().c_str());
    return 1;
  }
  auto materialized = (*store)->MaterializeIndex(1);
  if (!materialized.ok()) {
    std::printf("materialize failed: %s\n",
                materialized.status().ToString().c_str());
    return 1;
  }
  bool ok = *materialized == BuildIndex(doc, shape);
  std::printf("recovered after crash; index == rebuild: %s\n",
              ok ? "ok" : "MISMATCH");
  return ok ? 0 : 1;
}
