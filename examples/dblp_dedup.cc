// Near-duplicate detection in a bibliography, the motivating use case for
// approximate tree matching (paper Sections 1-2: approximate XML joins,
// duplicate detection a la DogmatiX).
//
// Each publication record (a subtree under the DBLP-like root) is treated
// as one document in a forest index. A fraction of records are injected as
// noisy duplicates (field renames, dropped or added fields). The example
// then runs a self-join: for every record, an approximate lookup under a
// distance threshold, reporting precision/recall of duplicate detection.
//
// Run:  build/examples/dblp_dedup [records] [dup_fraction]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.h"
#include "core/forest_index.h"
#include "edit/edit_script.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

using namespace pqidx;

namespace {

// Extracts the record subtrees of a DBLP-like tree as standalone trees.
std::vector<Tree> SplitRecords(const Tree& dblp) {
  std::vector<Tree> records;
  for (NodeId rec : dblp.children(dblp.root())) {
    Tree record(dblp.dict_ptr());
    NodeId root = record.CreateRoot(dblp.label(rec));
    std::vector<std::pair<NodeId, NodeId>> stack{{rec, root}};
    while (!stack.empty()) {
      auto [src, dst] = stack.back();
      stack.pop_back();
      for (NodeId c : dblp.children(src)) {
        stack.emplace_back(c, record.AddChild(dst, dblp.label(c)));
      }
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  const int num_records = argc > 1 ? std::atoi(argv[1]) : 400;
  const double dup_fraction = argc > 2 ? std::atof(argv[2]) : 0.15;
  const PqShape shape{2, 3};  // records are shallow: a small p suffices
  const double tau = 0.45;
  Rng rng(99);

  Tree dblp = GenerateDblpLike(nullptr, &rng, num_records);
  std::vector<Tree> records = SplitRecords(dblp);

  // Inject noisy duplicates: a copy of a random record with a few edits
  // (changed year, renamed venue, dropped page field, ...).
  int num_dups = static_cast<int>(num_records * dup_fraction);
  std::vector<std::pair<TreeId, TreeId>> truth;  // (duplicate, original)
  for (int d = 0; d < num_dups; ++d) {
    TreeId original = static_cast<TreeId>(rng.NextBounded(num_records));
    Tree copy = records[original].Clone();
    EditLog scratch;
    EditScriptOptions noise;
    noise.reuse_label_probability = 0.9;
    GenerateEditScript(&copy, &rng, 1 + rng.NextBounded(3), noise, &scratch);
    truth.emplace_back(static_cast<TreeId>(records.size()), original);
    records.push_back(std::move(copy));
  }

  ForestIndex forest(shape);
  for (TreeId id = 0; id < static_cast<TreeId>(records.size()); ++id) {
    forest.AddTree(id, records[id]);
  }
  std::printf("indexed %zu records (%d injected near-duplicates), "
              "tau = %.2f\n",
              records.size(), num_dups, tau);

  // Self-join: report all pairs within tau (id ordering avoids doubles).
  std::vector<std::pair<TreeId, TreeId>> found;
  for (TreeId id = 0; id < static_cast<TreeId>(records.size()); ++id) {
    for (const LookupResult& hit : forest.Lookup(*forest.Find(id), tau)) {
      if (hit.tree_id > id) found.emplace_back(hit.tree_id, id);
    }
  }

  int true_positives = 0;
  for (auto [dup, orig] : truth) {
    for (auto [a, b] : found) {
      if ((a == dup && b == orig) || (a == orig && b == dup)) {
        ++true_positives;
        break;
      }
    }
  }
  std::printf("pairs reported: %zu\n", found.size());
  std::printf("injected duplicates recovered: %d / %d (recall %.2f)\n",
              true_positives, num_dups,
              num_dups > 0 ? static_cast<double>(true_positives) / num_dups
                           : 1.0);
  std::printf("precision: %.2f (non-injected pairs may still be genuine "
              "near-duplicates of the generator)\n",
              found.empty() ? 1.0
                            : static_cast<double>(true_positives) /
                                  static_cast<double>(found.size()));

  // Show the three closest reported pairs.
  std::printf("\nsample matches:\n");
  int shown = 0;
  for (auto [a, b] : found) {
    if (shown++ >= 3) break;
    std::printf("  #%d %s\n  #%d %s\n\n", a,
                ToNotation(records[a]).c_str(), b,
                ToNotation(records[b]).c_str());
  }
  return 0;
}
