// Subtree-level edit operations expanded into node edit operations.
//
// The paper handles the node operations rename, delete, and insert, and
// notes (Section 10) that operations on subtrees -- subtree deletion,
// insertion, and move -- are simulated by sequences of node edit
// operations. These helpers produce such sequences, applying them through
// ApplyAndLog so the inverse log remains consistent and directly usable by
// the incremental index update.

#ifndef PQIDX_EDIT_SUBTREE_OPS_H_
#define PQIDX_EDIT_SUBTREE_OPS_H_

#include "common/status.h"
#include "edit/edit_log.h"
#include "tree/tree.h"

namespace pqidx {

// Deletes the whole subtree rooted at `n` (which must not be the root) as a
// post-order sequence of DEL operations, so every deleted node is a leaf at
// deletion time. Appends |subtree| inverses to `log`.
Status DeleteSubtree(NodeId n, Tree* tree, EditLog* log);

// Inserts a copy of `pattern` (a whole tree) under `parent` at 0-based
// position `k` as a pre-order sequence of leaf INS operations. Fresh node
// ids are allocated from `tree`. On success stores the id of the new
// subtree root in `*new_root` (may be null).
Status InsertSubtree(const Tree& pattern, NodeId parent, int k, Tree* tree,
                     EditLog* log, NodeId* new_root = nullptr);

// Moves the subtree rooted at `n` to become the child of `parent` at
// position `k` (positions evaluated after the subtree is detached).
// Simulated as delete + re-insert, so the moved nodes receive fresh ids.
// `parent` must not be inside the moved subtree.
Status MoveSubtree(NodeId n, NodeId parent, int k, Tree* tree, EditLog* log,
                   NodeId* new_root = nullptr);

}  // namespace pqidx

#endif  // PQIDX_EDIT_SUBTREE_OPS_H_
