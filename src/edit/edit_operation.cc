#include "edit/edit_operation.h"

namespace pqidx {

Status EditOperation::ApplyTo(Tree* tree) const {
  switch (kind) {
    case EditOpKind::kInsert:
      return tree->ApplyInsert(node, label, parent, position, count);
    case EditOpKind::kDelete:
      return tree->ApplyDelete(node);
    case EditOpKind::kRename:
      return tree->ApplyRename(node, label);
  }
  return InvalidArgumentError("unknown edit operation kind");
}

bool EditOperation::IsDefinedOn(const Tree& tree) const {
  switch (kind) {
    case EditOpKind::kInsert:
      return node >= 1 && !tree.Contains(node) && tree.Contains(parent) &&
             position >= 0 && count >= 0 &&
             position + count <= tree.fanout(parent);
    case EditOpKind::kDelete:
      return tree.Contains(node) && node != tree.root();
    case EditOpKind::kRename:
      return tree.Contains(node) && tree.label(node) != label;
  }
  return false;
}

StatusOr<EditOperation> EditOperation::InverseOn(const Tree& tree) const {
  if (!IsDefinedOn(tree)) {
    return FailedPreconditionError("operation is not defined on this tree");
  }
  switch (kind) {
    case EditOpKind::kInsert:
      return Delete(node);
    case EditOpKind::kDelete: {
      NodeId v = tree.parent(node);
      int k = tree.SiblingIndex(node);
      EditOperation inverse =
          Insert(node, tree.label(node), v, k, tree.fanout(node));
      // Id anchors (see edit_operation.h): the adopted children are
      // node's children; the gap neighbors are node's siblings, all
      // unaffected by the deletion itself.
      inverse.anchored = true;
      auto kids = tree.children(node);
      inverse.adopted_ids.assign(kids.begin(), kids.end());
      inverse.left_neighbor = k > 0 ? tree.child(v, k - 1) : kNullNodeId;
      inverse.right_neighbor =
          k + 1 < tree.fanout(v) ? tree.child(v, k + 1) : kNullNodeId;
      return inverse;
    }
    case EditOpKind::kRename:
      return Rename(node, tree.label(node));
  }
  return InvalidArgumentError("unknown edit operation kind");
}

bool EditOperation::References(NodeId n) const {
  if (n == kNullNodeId) return false;
  if (node == n || parent == n) return true;
  if (left_neighbor == n || right_neighbor == n) return true;
  for (NodeId c : adopted_ids) {
    if (c == n) return true;
  }
  return false;
}

std::string EditOperation::ToString(const LabelDict& dict) const {
  switch (kind) {
    case EditOpKind::kInsert:
      return "INS(" + std::to_string(node) + ":" + dict.LabelString(label) +
             ", v=" + std::to_string(parent) +
             ", k=" + std::to_string(position) +
             ", count=" + std::to_string(count) + ")";
    case EditOpKind::kDelete:
      return "DEL(" + std::to_string(node) + ")";
    case EditOpKind::kRename:
      return "REN(" + std::to_string(node) + ", " + dict.LabelString(label) +
             ")";
  }
  return "?";
}

}  // namespace pqidx
