// Edit logs: the sequence of *inverse* edit operations that the
// incremental index maintenance consumes.
//
// If T0 is transformed into Tn by forward operations (e1, ..., en), the log
// L = (ē1, ..., ēn) holds the inverse operations; applying ēn, ēn-1, ...,
// ē1 to Tn reconstructs T0 (paper Section 3.1).
//
// Identifier discipline (see DESIGN.md): node ids are unique within a log's
// lifetime -- an id removed by a forward DEL is only ever re-introduced by
// that operation's own inverse, never by an unrelated later INS. Logs
// recorded through ApplyAndLog satisfy this by construction because fresh
// inserts draw ids from Tree::AllocateId().

#ifndef PQIDX_EDIT_EDIT_LOG_H_
#define PQIDX_EDIT_EDIT_LOG_H_

#include <utility>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "edit/edit_operation.h"
#include "tree/tree.h"

namespace pqidx {

class EditLog {
 public:
  EditLog() = default;

  // inverse(i), 0-based: ē_{i+1} in the paper's numbering.
  const EditOperation& inverse(int i) const { return inverse_ops_[i]; }
  const std::vector<EditOperation>& inverse_ops() const {
    return inverse_ops_;
  }
  int size() const { return static_cast<int>(inverse_ops_.size()); }
  bool empty() const { return inverse_ops_.empty(); }
  void Clear() { inverse_ops_.clear(); }

  // Appends the inverse of a forward operation. Used by ApplyAndLog.
  void Append(EditOperation inverse_op) {
    inverse_ops_.push_back(std::move(inverse_op));
  }

  // Applies the log to `tree` (ēn first, ē1 last), i.e. rolls Tn back to
  // T0. Fails (possibly after partial application) if any inverse
  // operation is undefined, which indicates a log/tree mismatch.
  Status UndoAll(Tree* tree) const;

  void Serialize(ByteWriter* writer) const;
  static StatusOr<EditLog> Deserialize(ByteReader* reader);

  friend bool operator==(const EditLog& a, const EditLog& b) = default;

 private:
  std::vector<EditOperation> inverse_ops_;
};

// Applies the forward operation `op` to `tree` and, on success, appends its
// inverse to `log`. The one-stop way to keep a tree and its log in sync.
Status ApplyAndLog(const EditOperation& op, Tree* tree, EditLog* log);

}  // namespace pqidx

#endif  // PQIDX_EDIT_EDIT_LOG_H_
