#include "edit/tree_diff.h"

#include <unordered_map>
#include <unordered_set>

#include "ted/zhang_shasha.h"

namespace pqidx {
namespace {

// Pre-order interval numbering of a tree: `v` is in the subtree of `u` iff
// tin[u] <= tin[v] <= tout[u].
struct PreOrderIntervals {
  std::unordered_map<NodeId, int> tin;
  std::unordered_map<NodeId, int> tout;

  explicit PreOrderIntervals(const Tree& tree) {
    int clock = 0;
    Number(tree, tree.root(), &clock);
  }

  bool InSubtree(NodeId root, NodeId v) const {
    int t = tin.at(v);
    return tin.at(root) <= t && t <= tout.at(root);
  }

 private:
  int Number(const Tree& tree, NodeId n, int* clock) {
    int enter = (*clock)++;
    tin.emplace(n, enter);
    int leave = enter;
    for (NodeId c : tree.children(n)) {
      leave = Number(tree, c, clock);
    }
    tout.emplace(n, leave);
    return leave;
  }
};

}  // namespace

TreeDiff ComputeEditScript(const Tree& from, const Tree& to) {
  PQIDX_CHECK(from.root() != kNullNodeId && to.root() != kNullNodeId);
  TreeEditResult ted = RootPreservingEditMapping(from, to);

  std::unordered_map<NodeId, NodeId> cur_of_to;  // to node -> current node
  std::unordered_map<NodeId, NodeId> to_of_cur;  // current node -> to node
  std::unordered_set<NodeId> from_mapped;
  for (auto [u, v] : ted.mapping) {
    cur_of_to.emplace(v, u);
    to_of_cur.emplace(u, v);
    from_mapped.insert(u);
  }
  PQIDX_CHECK_MSG(cur_of_to.count(to.root()) == 1 &&
                      cur_of_to.at(to.root()) == from.root(),
                  "root-preserving mapping must pair the roots");

  TreeDiff diff;
  diff.distance = ted.distance;
  Tree work = from.Clone();
  LabelDict* dict = work.mutable_dict();
  auto apply = [&](const EditOperation& op) {
    Status status = op.ApplyTo(&work);
    PQIDX_CHECK_MSG(status.ok(), status.ToString().c_str());
    diff.operations.push_back(op);
  };

  // 1. Renames: mapped pairs whose labels differ.
  for (auto [u, v] : ted.mapping) {
    if (from.LabelString(u) != to.LabelString(v)) {
      apply(EditOperation::Rename(u, dict->Intern(to.LabelString(v))));
    }
  }
  // 2. Deletions: unmapped `from` nodes (order irrelevant; DEL splices).
  std::vector<NodeId> doomed;
  from.PreOrder([&](NodeId u) {
    if (!from_mapped.contains(u)) doomed.push_back(u);
  });
  for (NodeId u : doomed) {
    apply(EditOperation::Delete(u));
  }
  // 3. Insertions: unmapped `to` nodes in pre-order. At each step the
  // working tree equals `to` with the not-yet-inserted nodes spliced out,
  // so the children the new node must adopt are exactly the current
  // children of its parent whose `to`-correspondents lie in its subtree
  // -- a consecutive run.
  PreOrderIntervals to_intervals(to);
  std::vector<NodeId> to_preorder;
  to.PreOrder([&](NodeId v) { to_preorder.push_back(v); });
  for (NodeId v : to_preorder) {
    if (cur_of_to.contains(v)) continue;
    NodeId p_cur = cur_of_to.at(to.parent(v));
    int k = 0;
    int count = 0;
    int position = 0;
    for (NodeId c : work.children(p_cur)) {
      NodeId tv = to_of_cur.at(c);
      if (to_intervals.InSubtree(v, tv)) {
        if (count == 0) k = position;
        PQIDX_CHECK_MSG(position == k + count,
                        "adopted children are not consecutive");
        ++count;
      } else if (to_intervals.tin.at(tv) < to_intervals.tin.at(v)) {
        PQIDX_CHECK_MSG(count == 0,
                        "left-of-subtree child after the subtree run");
      }
      ++position;
    }
    if (count == 0) {
      // Pure leaf insertion: it goes after every current child whose
      // correspondent precedes v in document order.
      k = 0;
      for (NodeId c : work.children(p_cur)) {
        if (to_intervals.tin.at(to_of_cur.at(c)) < to_intervals.tin.at(v)) {
          ++k;
        }
      }
    }
    NodeId fresh = work.AllocateId();
    apply(EditOperation::Insert(fresh, dict->Intern(to.LabelString(v)),
                                p_cur, k, count));
    cur_of_to.emplace(v, fresh);
    to_of_cur.emplace(fresh, v);
  }

  PQIDX_CHECK_MSG(static_cast<int>(diff.operations.size()) == ted.distance,
                  "script length must equal the mapping cost");
  return diff;
}

Status ApplyDiff(const TreeDiff& diff, Tree* from, EditLog* log) {
  for (const EditOperation& op : diff.operations) {
    PQIDX_RETURN_IF_ERROR(ApplyAndLog(op, from, log));
  }
  return Status::Ok();
}

}  // namespace pqidx
