#include "edit/log_optimizer.h"

#include <algorithm>
#include <unordered_map>

namespace pqidx {
namespace {

// A pending (not yet finalized) op in the output that a later op on the
// same node may merge with or cancel.
struct Pending {
  size_t output_index;
  // For a pending REN chain: the node's label before the first rename, so
  // that a chain ending on the original label can be dropped entirely.
  // For a pending INS: the inserted node's parent.
  LabelId original_label = kNullLabelId;
};

class SequenceOptimizer {
 public:
  // Simulates the sequence directly on `*base` and rolls every change
  // back before Run() returns.
  SequenceOptimizer(Tree* base, LogOptimizerStats* stats)
      : sim_(base), stats_(stats) {}

  std::vector<EditOperation> Run(const std::vector<EditOperation>& ops) {
    if (stats_ != nullptr) stats_->input_ops = static_cast<int>(ops.size());
    for (const EditOperation& op : ops) {
      Process(op);
    }
    // Restore the caller's tree.
    for (auto it = rollback_.rbegin(); it != rollback_.rend(); ++it) {
      Status status = it->ApplyTo(sim_);
      PQIDX_CHECK_MSG(status.ok(), status.ToString().c_str());
    }
    std::vector<EditOperation> result;
    result.reserve(out_.size());
    for (size_t i = 0; i < out_.size(); ++i) {
      if (!tombstone_[i]) result.push_back(out_[i]);
    }
    if (stats_ != nullptr) {
      stats_->output_ops = static_cast<int>(result.size());
    }
    return result;
  }

 private:
  void Process(const EditOperation& op) {
    switch (op.kind) {
      case EditOpKind::kRename:
        ProcessRename(op);
        break;
      case EditOpKind::kDelete:
        ProcessDelete(op);
        break;
      case EditOpKind::kInsert:
        ProcessInsert(op);
        break;
    }
    // Keep the simulation in lockstep with the *original* sequence; all
    // rewrites preserve its semantics.
    StatusOr<EditOperation> inverse = op.InverseOn(*sim_);
    PQIDX_CHECK_MSG(inverse.ok(), inverse.status().ToString().c_str());
    Status status = op.ApplyTo(sim_);
    PQIDX_CHECK_MSG(status.ok(), status.ToString().c_str());
    rollback_.push_back(*inverse);
  }

  void ProcessRename(const EditOperation& op) {
    if (auto it = pending_ins_.find(op.node); it != pending_ins_.end()) {
      // INS(n, ..); REN(n, b)  ->  INS(n with label b, ..).
      // Renames commute with every intervening operation (nothing reads
      // labels), so adjacency is not required.
      out_[it->second.output_index].label = op.label;
      if (stats_ != nullptr) ++stats_->merged_renames;
      return;
    }
    if (auto it = pending_ren_.find(op.node); it != pending_ren_.end()) {
      if (op.label == it->second.original_label) {
        // The chain restores the original label: a no-op overall.
        tombstone_[it->second.output_index] = true;
        pending_ren_.erase(it);
        if (stats_ != nullptr) ++stats_->dropped_noop_renames;
        return;
      }
      out_[it->second.output_index].label = op.label;
      if (stats_ != nullptr) ++stats_->merged_renames;
      return;
    }
    Pending pending;
    pending.output_index = Emit(op);
    pending.original_label = sim_->label(op.node);
    pending_ren_.emplace(op.node, pending);
  }

  void ProcessDelete(const EditOperation& op) {
    // REN(n, ..); DEL(n)  ->  DEL(n): drop the rename.
    if (auto it = pending_ren_.find(op.node); it != pending_ren_.end()) {
      tombstone_[it->second.output_index] = true;
      pending_ren_.erase(it);
      if (stats_ != nullptr) ++stats_->merged_renames;
    }
    // Deleting n splices its children into parent(n): both child lists are
    // restructured. Invalidate before the cancellation check so a
    // cancelled insert is not later resurrected by a stale entry.
    NodeId parent = sim_->parent(op.node);
    if (auto it = pending_ins_.find(op.node); it != pending_ins_.end()) {
      // INS(n, ..); DEL(n)  ->  nothing. Valid because any intervening
      // structural change involving n or its sibling positions would have
      // invalidated the pending insert.
      tombstone_[it->second.output_index] = true;
      pending_ins_.erase(it);
      if (stats_ != nullptr) ++stats_->cancelled_insert_delete;
      TouchChildList(parent);
      TouchChildList(op.node);
      return;
    }
    TouchChildList(parent);
    TouchChildList(op.node);
    Emit(op);
  }

  void ProcessInsert(const EditOperation& op) {
    TouchChildList(op.parent);
    TouchChildList(op.node);
    Pending pending;
    pending.output_index = Emit(op);
    pending_ins_.emplace(op.node, pending);
  }

  // A structural change to `w`'s child list invalidates pending inserts
  // that positioned themselves relative to it (as parent or as the
  // inserted node). Pending renames are unaffected: they commute with
  // structure.
  void TouchChildList(NodeId w) {
    if (w == kNullNodeId) return;
    for (auto it = pending_ins_.begin(); it != pending_ins_.end();) {
      const EditOperation& ins = out_[it->second.output_index];
      if (ins.parent == w || ins.node == w) {
        it = pending_ins_.erase(it);
      } else {
        ++it;
      }
    }
  }

  size_t Emit(const EditOperation& op) {
    out_.push_back(op);
    tombstone_.push_back(false);
    return out_.size() - 1;
  }

  Tree* sim_;
  LogOptimizerStats* stats_;
  std::vector<EditOperation> rollback_;
  std::vector<EditOperation> out_;
  std::vector<bool> tombstone_;
  std::unordered_map<NodeId, Pending> pending_ren_;
  std::unordered_map<NodeId, Pending> pending_ins_;
};

}  // namespace

std::vector<EditOperation> OptimizeOpSequence(
    Tree* base, const std::vector<EditOperation>& ops,
    LogOptimizerStats* stats) {
  SequenceOptimizer optimizer(base, stats);
  return optimizer.Run(ops);
}

std::vector<EditOperation> OptimizeOpSequence(
    const Tree& base, const std::vector<EditOperation>& ops,
    LogOptimizerStats* stats) {
  Tree clone = base.Clone();
  return OptimizeOpSequence(&clone, ops, stats);
}

EditLog OptimizeLog(Tree* tn, const EditLog& log, LogOptimizerStats* stats) {
  // The log applies ēn..ē1; bring it into application order, rewrite, and
  // restore the log convention.
  std::vector<EditOperation> seq(log.inverse_ops().rbegin(),
                                 log.inverse_ops().rend());
  std::vector<EditOperation> optimized =
      OptimizeOpSequence(tn, seq, stats);
  EditLog result;
  for (auto it = optimized.rbegin(); it != optimized.rend(); ++it) {
    result.Append(*it);
  }
  return result;
}

EditLog OptimizeLog(const Tree& tn, const EditLog& log,
                    LogOptimizerStats* stats) {
  Tree clone = tn.Clone();
  return OptimizeLog(&clone, log, stats);
}

}  // namespace pqidx
