#include "edit/subtree_ops.h"

#include <vector>

namespace pqidx {
namespace {

// Collects the subtree rooted at `n` in post-order.
void PostOrder(const Tree& tree, NodeId n, std::vector<NodeId>* out) {
  for (NodeId c : tree.children(n)) {
    PostOrder(tree, c, out);
  }
  out->push_back(n);
}

// Copies `src_node` of `pattern` (and descendants) under (`parent`, `k`) of
// `tree` via logged leaf insertions.
Status CopySubtree(const Tree& pattern, NodeId src_node, NodeId parent,
                   int k, Tree* tree, EditLog* log, NodeId* new_root) {
  LabelId label = tree->mutable_dict()->Intern(
      pattern.dict().LabelString(pattern.label(src_node)));
  NodeId fresh = tree->AllocateId();
  PQIDX_RETURN_IF_ERROR(ApplyAndLog(
      EditOperation::Insert(fresh, label, parent, k, /*count=*/0), tree,
      log));
  if (new_root != nullptr) *new_root = fresh;
  int i = 0;
  for (NodeId c : pattern.children(src_node)) {
    PQIDX_RETURN_IF_ERROR(
        CopySubtree(pattern, c, fresh, i, tree, log, nullptr));
    ++i;
  }
  return Status::Ok();
}

// True if `candidate` is `n` or a descendant of `n`.
bool InSubtree(const Tree& tree, NodeId n, NodeId candidate) {
  for (NodeId cur = candidate; cur != kNullNodeId; cur = tree.parent(cur)) {
    if (cur == n) return true;
  }
  return false;
}

}  // namespace

Status DeleteSubtree(NodeId n, Tree* tree, EditLog* log) {
  if (!tree->Contains(n)) return NotFoundError("subtree root not in tree");
  if (n == tree->root()) {
    return FailedPreconditionError("cannot delete the root subtree");
  }
  std::vector<NodeId> order;
  PostOrder(*tree, n, &order);
  for (NodeId x : order) {
    PQIDX_RETURN_IF_ERROR(ApplyAndLog(EditOperation::Delete(x), tree, log));
  }
  return Status::Ok();
}

Status InsertSubtree(const Tree& pattern, NodeId parent, int k, Tree* tree,
                     EditLog* log, NodeId* new_root) {
  if (pattern.root() == kNullNodeId) {
    return InvalidArgumentError("empty pattern tree");
  }
  if (!tree->Contains(parent)) {
    return NotFoundError("insert parent not in tree");
  }
  if (k < 0 || k > tree->fanout(parent)) {
    return OutOfRangeError("insert position out of bounds");
  }
  return CopySubtree(pattern, pattern.root(), parent, k, tree, log,
                     new_root);
}

Status MoveSubtree(NodeId n, NodeId parent, int k, Tree* tree, EditLog* log,
                   NodeId* new_root) {
  if (!tree->Contains(n) || !tree->Contains(parent)) {
    return NotFoundError("move endpoints not in tree");
  }
  if (InSubtree(*tree, n, parent)) {
    return FailedPreconditionError("cannot move a subtree into itself");
  }
  // Snapshot the shape before detaching.
  Tree pattern(tree->dict_ptr());
  pattern.CreateRoot(tree->label(n));
  std::vector<std::pair<NodeId, NodeId>> stack{{n, pattern.root()}};
  while (!stack.empty()) {
    auto [src, dst] = stack.back();
    stack.pop_back();
    for (NodeId c : tree->children(src)) {
      NodeId copy = pattern.AddChild(dst, tree->label(c));
      stack.emplace_back(c, copy);
    }
  }
  PQIDX_RETURN_IF_ERROR(DeleteSubtree(n, tree, log));
  if (k > tree->fanout(parent)) {
    return OutOfRangeError("move position out of bounds");
  }
  return InsertSubtree(pattern, parent, k, tree, log, new_root);
}

}  // namespace pqidx
