// Random edit script generation for experiments and property tests.
//
// Mirrors the paper's evaluation setup: a document is mutated by a sequence
// of random structure and value changes while the inverse log is recorded,
// and the index is then maintained incrementally from that log.

#ifndef PQIDX_EDIT_EDIT_SCRIPT_H_
#define PQIDX_EDIT_EDIT_SCRIPT_H_

#include <vector>

#include "common/random.h"
#include "edit/edit_log.h"
#include "edit/edit_operation.h"
#include "tree/tree.h"

namespace pqidx {

struct EditScriptOptions {
  // Relative frequencies of the operation kinds.
  double insert_weight = 1.0;
  double delete_weight = 1.0;
  double rename_weight = 1.0;
  // Labels of inserted / renamed nodes are drawn from the labels already in
  // the dictionary with this probability, otherwise a fresh label is
  // interned. Reusing labels makes deltas collide with existing pq-grams,
  // the interesting case for index maintenance.
  double reuse_label_probability = 0.8;
  // Upper bound on the number of children an inserted node adopts.
  int max_adopted_children = 4;
};

// Applies `num_ops` random valid edit operations to `tree`, appending their
// inverses to `log` and (when non-null) the forward operations to
// `forward_ops`. The root is never edited (paper assumption). Returns the
// number of operations actually applied (always num_ops unless the tree
// shrinks to a bare root and only renames remain possible, which still
// succeeds, so in practice: num_ops).
int GenerateEditScript(Tree* tree, Rng* rng, int num_ops,
                       const EditScriptOptions& options, EditLog* log,
                       std::vector<EditOperation>* forward_ops = nullptr);

}  // namespace pqidx

#endif  // PQIDX_EDIT_EDIT_SCRIPT_H_
