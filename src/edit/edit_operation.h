// Tree edit operations (paper Section 3.1, after Zhang & Shasha [20]).
//
//  * INS(n, v, k, count): insert node n as child of v at 0-based position
//    k, adopting the `count` children of v at positions [k, k+count).
//    (The paper writes INS(n, v, k, m) with 1-based k and m = k+count-1.)
//  * DEL(n): delete n, splicing its children into its parent.
//  * REN(n, l'): change n's label to l' (l' must differ from the current
//    label).
//
// Every operation knows how to apply itself to a Tree and how to compute
// its inverse relative to the tree it is about to be applied to.

#ifndef PQIDX_EDIT_EDIT_OPERATION_H_
#define PQIDX_EDIT_EDIT_OPERATION_H_

#include <string>

#include "common/status.h"
#include "tree/tree.h"

namespace pqidx {

enum class EditOpKind : uint8_t { kInsert, kDelete, kRename };

struct EditOperation {
  EditOpKind kind = EditOpKind::kRename;
  // Target node: the inserted / deleted / renamed node n.
  NodeId node = kNullNodeId;
  // Insert only: parent v, 0-based position k, number of adopted children.
  NodeId parent = kNullNodeId;
  int position = 0;
  int count = 0;
  // Insert: label of the new node. Rename: the new label.
  LabelId label = kNullLabelId;

  // Id anchors, recorded for INS operations that enter a log as the
  // inverse of a DEL (set by InverseOn; `anchored` is then true):
  //  * adopted_ids: the children the insert adopts (the node set C of the
  //    paper's Lemma 1), as of the tree the operation applies to;
  //  * left_neighbor / right_neighbor: the siblings adjacent to the
  //    insertion window (kNullNodeId at the ends).
  // Sibling *positions* recorded in a log go stale on Tn when later
  // operations shuffle the same child list; the delta function locates the
  // affected rows through these ids instead (see core/delta.h). Operations
  // without anchors fall back to positional selection.
  bool anchored = false;
  std::vector<NodeId> adopted_ids;
  NodeId left_neighbor = kNullNodeId;
  NodeId right_neighbor = kNullNodeId;

  static EditOperation Insert(NodeId n, LabelId label, NodeId v, int k,
                              int count) {
    EditOperation op;
    op.kind = EditOpKind::kInsert;
    op.node = n;
    op.parent = v;
    op.position = k;
    op.count = count;
    op.label = label;
    return op;
  }
  static EditOperation Delete(NodeId n) {
    EditOperation op;
    op.kind = EditOpKind::kDelete;
    op.node = n;
    return op;
  }
  static EditOperation Rename(NodeId n, LabelId label) {
    EditOperation op;
    op.kind = EditOpKind::kRename;
    op.node = n;
    op.label = label;
    return op;
  }

  // Applies this operation to `tree`. Returns a non-OK status (leaving the
  // tree unchanged) when the operation is not defined on `tree`.
  Status ApplyTo(Tree* tree) const;

  // True iff ApplyTo would succeed on `tree`.
  bool IsDefinedOn(const Tree& tree) const;

  // Computes the inverse operation relative to `tree`, which must be the
  // tree this operation is *about to be applied to* (paper Section 3.1:
  // the inverse of DEL(n) needs n's label, position and fanout in T_i).
  StatusOr<EditOperation> InverseOn(const Tree& tree) const;

  // Human-readable rendering, e.g. "DEL(7)" or "REN(3, b)".
  std::string ToString(const LabelDict& dict) const;

  // True if this operation mentions `n` as its target, parent, or anchor.
  bool References(NodeId n) const;

  friend bool operator==(const EditOperation& a, const EditOperation& b) =
      default;
};

}  // namespace pqidx

#endif  // PQIDX_EDIT_EDIT_OPERATION_H_
