#include "edit/edit_script.h"

#include <string>

namespace pqidx {
namespace {

// Returns a uniformly random alive node, or kNullNodeId if `tree` is empty.
// Rejection-samples the id space and falls back to a scan when the space is
// sparse (heavily deleted trees).
NodeId RandomAliveNode(const Tree& tree, Rng* rng) {
  if (tree.size() == 0) return kNullNodeId;
  NodeId bound = tree.id_bound();
  for (int attempt = 0; attempt < 64; ++attempt) {
    NodeId candidate = static_cast<NodeId>(rng->Uniform(1, bound - 1));
    if (tree.Contains(candidate)) return candidate;
  }
  std::vector<NodeId> alive;
  alive.reserve(tree.size());
  for (NodeId n = 1; n < bound; ++n) {
    if (tree.Contains(n)) alive.push_back(n);
  }
  return alive[rng->NextBounded(alive.size())];
}

// Returns a random alive non-root node, or kNullNodeId if none exists.
NodeId RandomEditableNode(const Tree& tree, Rng* rng) {
  if (tree.size() <= 1) return kNullNodeId;
  for (;;) {
    NodeId n = RandomAliveNode(tree, rng);
    if (n != tree.root()) return n;
  }
}

LabelId PickLabel(Tree* tree, Rng* rng, const EditScriptOptions& options) {
  LabelDict* dict = tree->mutable_dict();
  if (dict->size() > 1 && rng->Bernoulli(options.reuse_label_probability)) {
    return static_cast<LabelId>(rng->Uniform(1, dict->size() - 1));
  }
  return dict->Intern("gen_" + std::to_string(rng->NextBounded(1u << 30)));
}

}  // namespace

int GenerateEditScript(Tree* tree, Rng* rng, int num_ops,
                       const EditScriptOptions& options, EditLog* log,
                       std::vector<EditOperation>* forward_ops) {
  PQIDX_CHECK(tree->size() >= 1);
  const std::vector<double> weights = {options.insert_weight,
                                       options.delete_weight,
                                       options.rename_weight};
  int applied = 0;
  while (applied < num_ops) {
    EditOperation op;
    int kind = rng->WeightedPick(weights);
    if (tree->size() <= 1) kind = 0;  // only insertion is possible
    switch (kind) {
      case 0: {  // insert
        NodeId v = RandomAliveNode(*tree, rng);
        int f = tree->fanout(v);
        int k = static_cast<int>(rng->Uniform(0, f));
        int max_count = std::min(f - k, options.max_adopted_children);
        int count = static_cast<int>(rng->Uniform(0, max_count));
        op = EditOperation::Insert(tree->AllocateId(),
                                   PickLabel(tree, rng, options), v, k,
                                   count);
        break;
      }
      case 1: {  // delete
        op = EditOperation::Delete(RandomEditableNode(*tree, rng));
        break;
      }
      default: {  // rename
        NodeId n = RandomEditableNode(*tree, rng);
        LabelId label = PickLabel(tree, rng, options);
        if (label == tree->label(n)) continue;  // REN requires l != l'
        op = EditOperation::Rename(n, label);
        break;
      }
    }
    Status status = ApplyAndLog(op, tree, log);
    PQIDX_CHECK_MSG(status.ok(), status.ToString().c_str());
    if (forward_ops != nullptr) forward_ops->push_back(op);
    ++applied;
  }
  return applied;
}

}  // namespace pqidx
