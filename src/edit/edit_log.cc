#include "edit/edit_log.h"

namespace pqidx {

Status EditLog::UndoAll(Tree* tree) const {
  for (auto it = inverse_ops_.rbegin(); it != inverse_ops_.rend(); ++it) {
    PQIDX_RETURN_IF_ERROR(it->ApplyTo(tree));
  }
  return Status::Ok();
}

void EditLog::Serialize(ByteWriter* writer) const {
  writer->PutVarint(inverse_ops_.size());
  for (const EditOperation& op : inverse_ops_) {
    writer->PutU8(static_cast<uint8_t>(op.kind));
    writer->PutVarint(static_cast<uint64_t>(op.node));
    if (op.kind == EditOpKind::kInsert) {
      writer->PutVarint(static_cast<uint64_t>(op.parent));
      writer->PutVarint(static_cast<uint64_t>(op.position));
      writer->PutVarint(static_cast<uint64_t>(op.count));
      writer->PutU8(op.anchored ? 1 : 0);
      if (op.anchored) {
        writer->PutVarint(op.adopted_ids.size());
        for (NodeId c : op.adopted_ids) {
          writer->PutVarint(static_cast<uint64_t>(c));
        }
        writer->PutVarint(static_cast<uint64_t>(op.left_neighbor));
        writer->PutVarint(static_cast<uint64_t>(op.right_neighbor));
      }
    }
    if (op.kind != EditOpKind::kDelete) {
      writer->PutVarint(static_cast<uint64_t>(op.label));
    }
  }
}

StatusOr<EditLog> EditLog::Deserialize(ByteReader* reader) {
  uint64_t count;
  PQIDX_RETURN_IF_ERROR(reader->GetVarint(&count));
  EditLog log;
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t kind_raw;
    PQIDX_RETURN_IF_ERROR(reader->GetU8(&kind_raw));
    if (kind_raw > static_cast<uint8_t>(EditOpKind::kRename)) {
      return DataLossError("bad edit operation kind");
    }
    EditOperation op;
    op.kind = static_cast<EditOpKind>(kind_raw);
    uint64_t tmp;
    PQIDX_RETURN_IF_ERROR(reader->GetVarint(&tmp));
    op.node = static_cast<NodeId>(tmp);
    if (op.kind == EditOpKind::kInsert) {
      PQIDX_RETURN_IF_ERROR(reader->GetVarint(&tmp));
      op.parent = static_cast<NodeId>(tmp);
      PQIDX_RETURN_IF_ERROR(reader->GetVarint(&tmp));
      op.position = static_cast<int>(tmp);
      PQIDX_RETURN_IF_ERROR(reader->GetVarint(&tmp));
      op.count = static_cast<int>(tmp);
      uint8_t anchored;
      PQIDX_RETURN_IF_ERROR(reader->GetU8(&anchored));
      if (anchored > 1) return DataLossError("bad anchored flag");
      op.anchored = anchored != 0;
      if (op.anchored) {
        uint64_t adopted_count;
        PQIDX_RETURN_IF_ERROR(reader->GetVarint(&adopted_count));
        if (adopted_count > reader->remaining()) {
          return DataLossError("truncated adopted-id list");
        }
        op.adopted_ids.reserve(adopted_count);
        for (uint64_t j = 0; j < adopted_count; ++j) {
          PQIDX_RETURN_IF_ERROR(reader->GetVarint(&tmp));
          op.adopted_ids.push_back(static_cast<NodeId>(tmp));
        }
        PQIDX_RETURN_IF_ERROR(reader->GetVarint(&tmp));
        op.left_neighbor = static_cast<NodeId>(tmp);
        PQIDX_RETURN_IF_ERROR(reader->GetVarint(&tmp));
        op.right_neighbor = static_cast<NodeId>(tmp);
      }
    }
    if (op.kind != EditOpKind::kDelete) {
      PQIDX_RETURN_IF_ERROR(reader->GetVarint(&tmp));
      op.label = static_cast<LabelId>(tmp);
    }
    log.Append(op);
  }
  return log;
}

Status ApplyAndLog(const EditOperation& op, Tree* tree, EditLog* log) {
  StatusOr<EditOperation> inverse = op.InverseOn(*tree);
  PQIDX_RETURN_IF_ERROR(inverse.status());
  PQIDX_RETURN_IF_ERROR(op.ApplyTo(tree));
  log->Append(*inverse);
  return Status::Ok();
}

}  // namespace pqidx
