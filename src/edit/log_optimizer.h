// Log preprocessing: eliminates redundant edit operations.
//
// The paper's future-work section (Section 10) observes that later edit
// operations in a log may undo earlier ones and proposes preprocessing the
// log before the incremental index update. This module implements the
// conservative peephole rewrites that are valid without access to any
// intermediate tree version:
//
//   REN(n,a) ; REN(n,b)        ->  REN(n,b)
//   REN(n,a) ; DEL(n)          ->  DEL(n)
//   INS(n,..); REN(n,b)        ->  INS(n,..) with label b
//   INS(n,v,k,c) ; DEL(n)      ->  (nothing)   (insert immediately undone)
//
// plus removal of no-op renames (REN to the label the node already has at
// that point in the sequence), which requires simulating the sequence on
// the tree it applies to.
//
// Sequences are in *application order*. An EditLog is applied ēn..ē1, so
// OptimizeLog reverses it, rewrites, and reverses back.

#ifndef PQIDX_EDIT_LOG_OPTIMIZER_H_
#define PQIDX_EDIT_LOG_OPTIMIZER_H_

#include <vector>

#include "edit/edit_log.h"
#include "edit/edit_operation.h"
#include "tree/tree.h"

namespace pqidx {

struct LogOptimizerStats {
  int input_ops = 0;
  int output_ops = 0;
  int merged_renames = 0;
  int cancelled_insert_delete = 0;
  int dropped_noop_renames = 0;
};

// Rewrites `ops` (in application order against `base`) into an equivalent,
// typically shorter sequence. The result applied to `base` produces
// exactly the same tree as the input sequence.
//
// The rewriting simulates the sequence to resolve labels and parents; the
// `Tree*` variants run the simulation directly on the caller's tree and
// roll it back before returning (O(|ops|) total), while the `const Tree&`
// variants work on a clone (O(|tree|) extra, but never touch the input).
std::vector<EditOperation> OptimizeOpSequence(
    const Tree& base, const std::vector<EditOperation>& ops,
    LogOptimizerStats* stats = nullptr);
std::vector<EditOperation> OptimizeOpSequence(
    Tree* base, const std::vector<EditOperation>& ops,
    LogOptimizerStats* stats = nullptr);

// Optimizes an inverse log that applies to `tn` (the resulting tree).
// Undoing the optimized log from Tn yields the same T0; feeding it to the
// incremental index update yields the same index.
EditLog OptimizeLog(const Tree& tn, const EditLog& log,
                    LogOptimizerStats* stats = nullptr);
EditLog OptimizeLog(Tree* tn, const EditLog& log,
                    LogOptimizerStats* stats = nullptr);

}  // namespace pqidx

#endif  // PQIDX_EDIT_LOG_OPTIMIZER_H_
