// Change detection: derive an optimal edit script between two document
// versions.
//
// The paper's incremental maintenance consumes a log of edit operations.
// When no log was recorded -- the change-detection scenario of its related
// work (Cobena et al. [4], Lee et al. [12]) where only the two versions
// exist -- this module reconstructs one: an optimal *root-preserving*
// Zhang-Shasha edit mapping (the paper's model never edits the root) is
// turned into a minimal sequence of INS / DEL / REN operations
// that transforms `from` into a tree isomorphic to `to` (same shape and
// labels; nodes inserted by the script receive fresh ids from `from`'s id
// space). Applying the script through ApplyAndLog yields exactly the
// inverse log the pq-gram index update needs.
//
// The script length equals the cost of the best root-preserving
// mapping, which is within 2 of the unconstrained tree edit distance.

#ifndef PQIDX_EDIT_TREE_DIFF_H_
#define PQIDX_EDIT_TREE_DIFF_H_

#include <vector>

#include "common/status.h"
#include "edit/edit_log.h"
#include "edit/edit_operation.h"
#include "tree/tree.h"

namespace pqidx {

struct TreeDiff {
  // Operations in application order; they apply to the `from` tree the
  // diff was computed for (or an id-identical clone).
  std::vector<EditOperation> operations;
  // Cost of the best root-preserving script; equals operations.size()
  // and exceeds the unconstrained tree edit distance by at most 2.
  int distance = 0;
};

// Computes an optimal edit script transforming `from` into a tree
// isomorphic to `to`. New labels from `to` are interned into `from`'s
// dictionary. O(|from|·|to|·min(depth,leaves)^2): change detection is for
// documents, not for 10^7-node archives.
TreeDiff ComputeEditScript(const Tree& from, const Tree& to);

// Applies `diff` to `from` (which must be the tree the diff was computed
// from), appending the inverse operations to `log` -- ready for
// UpdateIndex.
Status ApplyDiff(const TreeDiff& diff, Tree* from, EditLog* log);

}  // namespace pqidx

#endif  // PQIDX_EDIT_TREE_DIFF_H_
