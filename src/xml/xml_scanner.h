// SAX-style XML event scanning: the tokenizer behind ParseXml, exposed so
// consumers that do not need a materialized tree (e.g. the streaming
// index builder) can process documents in O(depth) memory.
//
// Dialect and mappings are identical to xml/xml_parser.h: elements,
// attributes, character data (entities and CDATA decoded, whitespace-only
// runs dropped, text trimmed), comments / PIs / DOCTYPE skipped.

#ifndef PQIDX_XML_XML_SCANNER_H_
#define PQIDX_XML_XML_SCANNER_H_

#include <string_view>

#include "common/status.h"

namespace pqidx {

// Event callbacks. Any non-OK return aborts the scan and is propagated.
class XmlEventHandler {
 public:
  virtual ~XmlEventHandler() = default;

  // Start tag. The element's attributes are reported immediately after
  // OnOpen, before any content events.
  virtual Status OnOpen(std::string_view name) = 0;
  virtual Status OnAttribute(std::string_view name,
                             std::string_view value) = 0;
  // A trimmed, non-empty text run in document order.
  virtual Status OnText(std::string_view text) = 0;
  virtual Status OnClose(std::string_view name) = 0;
};

// Scans `xml`, invoking `handler` in document order. Returns the first
// syntax error or handler error.
Status ScanXml(std::string_view xml, XmlEventHandler* handler);

}  // namespace pqidx

#endif  // PQIDX_XML_XML_SCANNER_H_
