#include "xml/xml_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/serde.h"
#include "xml/xml_scanner.h"

namespace pqidx {
namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

// Tokenizes the document and drives an XmlEventHandler. Iterative over
// nesting (explicit open-element stack), so document depth is bounded by
// memory, not by the call stack.
class Scanner {
 public:
  Scanner(std::string_view input, XmlEventHandler* handler)
      : in_(input), handler_(handler) {}

  Status Scan() {
    PQIDX_RETURN_IF_ERROR(SkipProlog());
    if (AtEnd() || Peek() != '<') {
      return InvalidArgumentError("expected root element");
    }
    PQIDX_RETURN_IF_ERROR(ScanElementTag());
    // Content loop over the open-element stack.
    while (!open_.empty()) {
      if (AtEnd()) {
        return InvalidArgumentError("unterminated element: " + open_.back());
      }
      char c = Peek();
      if (c == '<') {
        if (LookingAt("</")) {
          PQIDX_RETURN_IF_ERROR(FlushText());
          pos_ += 2;
          std::string close_name;
          PQIDX_RETURN_IF_ERROR(ReadName(&close_name));
          if (close_name != open_.back()) {
            return InvalidArgumentError("mismatched end tag: expected " +
                                        open_.back() + ", got " +
                                        close_name);
          }
          SkipWhitespace();
          PQIDX_RETURN_IF_ERROR(Expect('>'));
          PQIDX_RETURN_IF_ERROR(handler_->OnClose(close_name));
          open_.pop_back();
          continue;
        }
        if (LookingAt("<![CDATA[")) {
          size_t end = in_.find("]]>", pos_ + 9);
          if (end == std::string_view::npos) {
            return InvalidArgumentError("unterminated CDATA section");
          }
          text_.append(in_.substr(pos_ + 9, end - pos_ - 9));
          pos_ = end + 3;
          continue;
        }
        StatusOr<bool> skipped = SkipMarkupDecl();
        PQIDX_RETURN_IF_ERROR(skipped.status());
        if (*skipped) continue;
        PQIDX_RETURN_IF_ERROR(FlushText());
        PQIDX_RETURN_IF_ERROR(ScanElementTag());
        continue;
      }
      if (c == '&') {
        PQIDX_RETURN_IF_ERROR(DecodeEntity(&text_));
        continue;
      }
      text_.push_back(c);
      ++pos_;
    }
    SkipMisc();
    if (!AtEnd()) return InvalidArgumentError("content after root element");
    return Status::Ok();
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool LookingAt(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void SkipWhitespace() {
    while (!AtEnd() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return InvalidArgumentError(std::string("expected '") + c +
                                  "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::Ok();
  }

  // Skips one comment / PI / DOCTYPE construct starting at '<'. Returns
  // true if something was skipped.
  StatusOr<bool> SkipMarkupDecl() {
    if (LookingAt("<!--")) {
      size_t end = in_.find("-->", pos_ + 4);
      if (end == std::string_view::npos) {
        return InvalidArgumentError("unterminated comment");
      }
      pos_ = end + 3;
      return true;
    }
    if (LookingAt("<?")) {
      size_t end = in_.find("?>", pos_ + 2);
      if (end == std::string_view::npos) {
        return InvalidArgumentError("unterminated processing instruction");
      }
      pos_ = end + 2;
      return true;
    }
    if (LookingAt("<!DOCTYPE")) {
      // Skip to the matching '>', tolerating one bracketed internal subset.
      int depth = 0;
      for (size_t i = pos_; i < in_.size(); ++i) {
        if (in_[i] == '[') ++depth;
        if (in_[i] == ']') --depth;
        if (in_[i] == '>' && depth == 0) {
          pos_ = i + 1;
          return true;
        }
      }
      return InvalidArgumentError("unterminated DOCTYPE");
    }
    return false;
  }

  Status SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '<') return Status::Ok();
      StatusOr<bool> skipped = SkipMarkupDecl();
      PQIDX_RETURN_IF_ERROR(skipped.status());
      if (!*skipped) return Status::Ok();
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '<') return;
      StatusOr<bool> skipped = SkipMarkupDecl();
      if (!skipped.ok() || !*skipped) return;
    }
  }

  Status ReadName(std::string* out) {
    if (AtEnd() || !IsNameStart(Peek())) {
      return InvalidArgumentError("expected a name at offset " +
                                  std::to_string(pos_));
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    out->assign(in_.substr(start, pos_ - start));
    return Status::Ok();
  }

  // Decodes an entity starting at '&'; appends to *out.
  Status DecodeEntity(std::string* out) {
    size_t end = in_.find(';', pos_);
    if (end == std::string_view::npos || end - pos_ > 12) {
      return InvalidArgumentError("unterminated entity reference");
    }
    std::string_view body = in_.substr(pos_ + 1, end - pos_ - 1);
    pos_ = end + 1;
    if (body == "lt") {
      out->push_back('<');
    } else if (body == "gt") {
      out->push_back('>');
    } else if (body == "amp") {
      out->push_back('&');
    } else if (body == "apos") {
      out->push_back('\'');
    } else if (body == "quot") {
      out->push_back('"');
    } else if (!body.empty() && body[0] == '#') {
      int base = 10;
      std::string_view digits = body.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) return InvalidArgumentError("bad char reference");
      unsigned long code = 0;
      for (char c : digits) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          return InvalidArgumentError("bad char reference");
        }
        code = code * base + static_cast<unsigned long>(digit);
        if (code > 0x10FFFF) return InvalidArgumentError("bad char reference");
      }
      AppendUtf8(static_cast<uint32_t>(code), out);
    } else {
      return InvalidArgumentError("unknown entity: " + std::string(body));
    }
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ScanAttributeValue(std::string* out) {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return InvalidArgumentError("expected quoted attribute value");
    }
    char quote = Peek();
    ++pos_;
    out->clear();
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        PQIDX_RETURN_IF_ERROR(DecodeEntity(out));
      } else {
        out->push_back(Peek());
        ++pos_;
      }
    }
    return Expect(quote);
  }

  // Emits accumulated text (trimmed) if it is not whitespace-only.
  Status FlushText() {
    size_t begin = text_.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) {
      text_.clear();
      return Status::Ok();
    }
    size_t end = text_.find_last_not_of(" \t\r\n");
    Status status = handler_->OnText(
        std::string_view(text_).substr(begin, end - begin + 1));
    text_.clear();
    return status;
  }

  // Scans one start tag (with attributes); pushes onto the open stack
  // unless self-closing.
  Status ScanElementTag() {
    PQIDX_RETURN_IF_ERROR(Expect('<'));
    std::string name;
    PQIDX_RETURN_IF_ERROR(ReadName(&name));
    PQIDX_RETURN_IF_ERROR(handler_->OnOpen(name));
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return InvalidArgumentError("unterminated start tag");
      if (Peek() == '>' || LookingAt("/>")) break;
      std::string attr_name;
      PQIDX_RETURN_IF_ERROR(ReadName(&attr_name));
      SkipWhitespace();
      PQIDX_RETURN_IF_ERROR(Expect('='));
      SkipWhitespace();
      std::string value;
      PQIDX_RETURN_IF_ERROR(ScanAttributeValue(&value));
      PQIDX_RETURN_IF_ERROR(handler_->OnAttribute(attr_name, value));
    }
    if (LookingAt("/>")) {
      pos_ += 2;
      return handler_->OnClose(name);
    }
    PQIDX_RETURN_IF_ERROR(Expect('>'));
    open_.push_back(std::move(name));
    return Status::Ok();
  }

  std::string_view in_;
  XmlEventHandler* handler_;
  size_t pos_ = 0;
  std::string text_;
  std::vector<std::string> open_;
};

// Builds a Tree from the event stream (the ParseXml mapping).
class TreeBuildingHandler : public XmlEventHandler {
 public:
  TreeBuildingHandler(const XmlParseOptions& options, Tree* tree)
      : options_(options), tree_(tree) {}

  Status OnOpen(std::string_view name) override {
    NodeId self = path_.empty() ? tree_->CreateRoot(name)
                                : tree_->AddChild(path_.back(), name);
    path_.push_back(self);
    return Status::Ok();
  }

  Status OnAttribute(std::string_view name, std::string_view value) override {
    if (options_.include_attributes) {
      NodeId attr = tree_->AddChild(path_.back(), "@" + std::string(name));
      tree_->AddChild(attr, value);
    }
    return Status::Ok();
  }

  Status OnText(std::string_view text) override {
    if (options_.include_text && !path_.empty()) {
      tree_->AddChild(path_.back(), text);
    }
    return Status::Ok();
  }

  Status OnClose(std::string_view name) override {
    (void)name;
    path_.pop_back();
    return Status::Ok();
  }

 private:
  const XmlParseOptions& options_;
  Tree* tree_;
  std::vector<NodeId> path_;
};

}  // namespace

Status ScanXml(std::string_view xml, XmlEventHandler* handler) {
  Scanner scanner(xml, handler);
  return scanner.Scan();
}

StatusOr<Tree> ParseXml(std::string_view xml,
                        std::shared_ptr<LabelDict> dict,
                        const XmlParseOptions& options) {
  if (dict == nullptr) dict = std::make_shared<LabelDict>();
  Tree tree(std::move(dict));
  TreeBuildingHandler handler(options, &tree);
  PQIDX_RETURN_IF_ERROR(ScanXml(xml, &handler));
  return tree;
}

StatusOr<Tree> ParseXmlFile(const std::string& path,
                            std::shared_ptr<LabelDict> dict,
                            const XmlParseOptions& options) {
  std::string content;
  PQIDX_RETURN_IF_ERROR(ReadFile(path, &content));
  return ParseXml(content, std::move(dict), options);
}

}  // namespace pqidx
