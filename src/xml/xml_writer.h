// Serializes a pqidx tree back to XML, inverting the ParseXml mapping:
//
//  * nodes whose label is a valid XML name become elements;
//  * nodes labeled "@name" with a single leaf child become attributes;
//  * leaf nodes whose label is not a valid XML name become text content.
//
// Round-trip guarantee: for any tree produced by ParseXml (with default
// options), ParseXml(WriteXml(tree)) reconstructs an isomorphic tree.

#ifndef PQIDX_XML_XML_WRITER_H_
#define PQIDX_XML_XML_WRITER_H_

#include <string>

#include "tree/tree.h"

namespace pqidx {

struct XmlWriteOptions {
  // Pretty-print with 2-space indentation (text-bearing elements are kept
  // on one line so text round-trips without whitespace damage).
  bool indent = false;
};

// Renders `tree` as an XML document (no XML declaration).
std::string WriteXml(const Tree& tree, const XmlWriteOptions& options = {});

}  // namespace pqidx

#endif  // PQIDX_XML_XML_WRITER_H_
