#include "xml/xml_writer.h"

#include <cctype>
#include <vector>

namespace pqidx {
namespace {

bool IsXmlName(const std::string& s) {
  if (s.empty()) return false;
  char first = s[0];
  if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
    return false;
  }
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':' || c == '-' || c == '.')) {
      return false;
    }
  }
  return true;
}

void EscapeInto(const std::string& s, bool in_attribute, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '<':
        out->append("&lt;");
        break;
      case '>':
        out->append("&gt;");
        break;
      case '&':
        out->append("&amp;");
        break;
      case '"':
        if (in_attribute) {
          out->append("&quot;");
        } else {
          out->push_back(c);
        }
        break;
      default:
        out->push_back(c);
    }
  }
}

// True if `n` encodes an attribute: "@name" with exactly one leaf child.
bool IsAttributeNode(const Tree& tree, NodeId n) {
  const std::string& label = tree.LabelString(n);
  if (label.size() < 2 || label[0] != '@') return false;
  auto kids = tree.children(n);
  return kids.size() == 1 && tree.IsLeaf(kids[0]);
}

// Iterative writer (documents can be arbitrarily deep): an explicit stack
// of frames, each visited twice -- once to emit the start tag and push
// content, once to emit the end tag.
class Writer {
 public:
  Writer(const Tree& tree, const XmlWriteOptions& options)
      : tree_(tree), options_(options) {}

  std::string Run() {
    if (tree_.root() != kNullNodeId) {
      stack_.push_back({tree_.root(), /*depth=*/0, /*closing=*/false});
      while (!stack_.empty()) {
        Frame frame = stack_.back();
        stack_.pop_back();
        if (frame.closing) {
          EmitEndTag(frame);
        } else {
          EmitNode(frame);
        }
      }
      if (options_.indent && !out_.empty() && out_.back() != '\n') {
        out_.push_back('\n');
      }
    }
    return std::move(out_);
  }

 private:
  struct Frame {
    NodeId node;
    int depth;  // < 0: inline mode (inside mixed content)
    bool closing;
  };

  void Indent(int depth) {
    if (!options_.indent || depth < 0) return;
    if (!out_.empty() && out_.back() != '\n') out_.push_back('\n');
    out_.append(static_cast<size_t>(depth) * 2, ' ');
  }

  // True if any non-attribute child of `n` is text (not a valid name).
  bool HasTextContent(NodeId n) const {
    for (NodeId c : tree_.children(n)) {
      if (!IsAttributeNode(tree_, c) && !IsXmlName(tree_.LabelString(c))) {
        return true;
      }
    }
    return false;
  }

  void EmitNode(const Frame& frame) {
    const std::string& label = tree_.LabelString(frame.node);
    if (!IsXmlName(label)) {
      // Text leaf.
      EscapeInto(label, /*in_attribute=*/false, &out_);
      return;
    }
    Indent(frame.depth);
    out_.push_back('<');
    out_.append(label);
    std::vector<NodeId> content;
    for (NodeId c : tree_.children(frame.node)) {
      if (IsAttributeNode(tree_, c)) {
        out_.push_back(' ');
        out_.append(tree_.LabelString(c).substr(1));
        out_.append("=\"");
        EscapeInto(tree_.LabelString(tree_.children(c)[0]),
                   /*in_attribute=*/true, &out_);
        out_.push_back('"');
      } else {
        content.push_back(c);
      }
    }
    if (content.empty()) {
      out_.append("/>");
      return;
    }
    out_.push_back('>');
    // Mixed or text content stays inline to round-trip exactly.
    bool inline_content = !options_.indent || frame.depth < 0 ||
                          HasTextContent(frame.node);
    int child_depth = inline_content ? -1 : frame.depth + 1;
    // Push the end tag first, then the children in reverse so they pop
    // in document order.
    stack_.push_back(
        {frame.node, inline_content ? -1 : frame.depth, /*closing=*/true});
    for (auto it = content.rbegin(); it != content.rend(); ++it) {
      stack_.push_back({*it, child_depth, /*closing=*/false});
    }
  }

  void EmitEndTag(const Frame& frame) {
    if (frame.depth >= 0) Indent(frame.depth);
    out_.append("</");
    out_.append(tree_.LabelString(frame.node));
    out_.push_back('>');
  }

  const Tree& tree_;
  const XmlWriteOptions& options_;
  std::string out_;
  std::vector<Frame> stack_;
};

}  // namespace

std::string WriteXml(const Tree& tree, const XmlWriteOptions& options) {
  Writer writer(tree, options);
  return writer.Run();
}

}  // namespace pqidx
