// Minimal non-validating XML parser producing pqidx trees.
//
// The paper evaluates the index on XML documents (XMark, DBLP); this parser
// turns an XML byte string into the ordered labeled tree model of
// tree/tree.h:
//
//  * an element becomes a node labeled with the element name;
//  * an attribute name="value" becomes a child node "@name" with a single
//    child holding the value (document order: attributes first);
//  * a non-whitespace text run becomes a leaf labeled with the trimmed
//    text.
//
// Supported syntax: elements, attributes, character data, CDATA sections,
// comments, processing instructions, XML declaration, DOCTYPE (skipped),
// and the five predefined entities plus decimal/hex character references.
// Not supported (returns an error or skips): external entities, namespaces
// beyond treating prefixed names as plain labels.

#ifndef PQIDX_XML_XML_PARSER_H_
#define PQIDX_XML_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "tree/tree.h"

namespace pqidx {

struct XmlParseOptions {
  // Model attributes as "@name" children (paper-style full document trees).
  bool include_attributes = true;
  // Model text content as leaf nodes.
  bool include_text = true;
};

// Parses `xml` into a tree over `dict` (fresh dictionary when null).
StatusOr<Tree> ParseXml(std::string_view xml,
                        std::shared_ptr<LabelDict> dict = nullptr,
                        const XmlParseOptions& options = {});

// Convenience: reads and parses the file at `path`.
StatusOr<Tree> ParseXmlFile(const std::string& path,
                            std::shared_ptr<LabelDict> dict = nullptr,
                            const XmlParseOptions& options = {});

}  // namespace pqidx

#endif  // PQIDX_XML_XML_PARSER_H_
