#include "storage/document_store.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>

#include "core/incremental.h"
#include "edit/tree_diff.h"
#include "storage/tree_store.h"

namespace pqidx {
namespace {

Status EnsureDirectory(const std::string& path) {
  if (mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return IoError("cannot create directory: " + path);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

}  // namespace

StatusOr<std::unique_ptr<DocumentStore>> DocumentStore::Create(
    const std::string& directory, PqShape shape) {
  PQIDX_RETURN_IF_ERROR(EnsureDirectory(directory));
  std::unique_ptr<DocumentStore> store(new DocumentStore(directory));
  if (FileExists(store->IndexPath())) {
    return FailedPreconditionError("store already exists in " + directory);
  }
  StatusOr<std::unique_ptr<PersistentForestIndex>> index =
      PersistentForestIndex::Create(store->IndexPath(), shape);
  PQIDX_RETURN_IF_ERROR(index.status());
  store->index_ = std::move(index).value();
  return store;
}

StatusOr<std::unique_ptr<DocumentStore>> DocumentStore::Open(
    const std::string& directory) {
  std::unique_ptr<DocumentStore> store(new DocumentStore(directory));
  StatusOr<std::unique_ptr<PersistentForestIndex>> index =
      PersistentForestIndex::Open(store->IndexPath());
  PQIDX_RETURN_IF_ERROR(index.status());
  store->index_ = std::move(index).value();
  for (TreeId id : store->index_->TreeIds()) {
    store->next_id_ = std::max(store->next_id_, id + 1);
    if (!FileExists(store->TreePath(id))) {
      return DataLossError("missing tree file for document " +
                           std::to_string(id));
    }
  }
  return store;
}

StatusOr<TreeId> DocumentStore::Ingest(const Tree& doc) {
  if (doc.root() == kNullNodeId) {
    return InvalidArgumentError("cannot ingest an empty document");
  }
  TreeId id = next_id_;
  // Tree file first: a leftover file without an index entry is inert,
  // while an index entry without its tree would break Checkout.
  PQIDX_RETURN_IF_ERROR(SaveTree(doc, TreePath(id)));
  Status status = index_->AddTree(id, doc);
  if (!status.ok()) {
    std::remove(TreePath(id).c_str());
    return status;
  }
  ++next_id_;
  return id;
}

StatusOr<Tree> DocumentStore::Checkout(TreeId id) const {
  if (index_->TreeBagSize(id) < 0) {
    return NotFoundError("no document with id " + std::to_string(id));
  }
  return LoadTree(TreePath(id));
}

Status DocumentStore::Commit(TreeId id, const Tree& tn,
                             const EditLog& log) {
  if (index_->TreeBagSize(id) < 0) {
    return NotFoundError("no document with id " + std::to_string(id));
  }
  // Index first (atomic via the pager WAL), then the tree file. A crash
  // between the two leaves an index describing the new version with the
  // old tree on disk; Verify() detects it and CommitVersion can repair.
  PQIDX_RETURN_IF_ERROR(index_->ApplyLog(id, tn, log));
  return SaveTree(tn, TreePath(id));
}

Status DocumentStore::CommitVersion(TreeId id, const Tree& new_version) {
  StatusOr<Tree> current = Checkout(id);
  PQIDX_RETURN_IF_ERROR(current.status());
  TreeDiff diff = ComputeEditScript(*current, new_version);
  EditLog log;
  PQIDX_RETURN_IF_ERROR(ApplyDiff(diff, &current.value(), &log));
  return Commit(id, *current, log);
}

Status DocumentStore::Remove(TreeId id) {
  PQIDX_RETURN_IF_ERROR(index_->RemoveTree(id));
  if (std::remove(TreePath(id).c_str()) != 0) {
    return IoError("cannot remove tree file for document " +
                   std::to_string(id));
  }
  return Status::Ok();
}

StatusOr<std::vector<LookupResult>> DocumentStore::Lookup(
    const Tree& query, double tau) const {
  return index_->Lookup(BuildIndex(query, index_->shape()), tau);
}

Status DocumentStore::Verify() const {
  for (TreeId id : index_->TreeIds()) {
    StatusOr<Tree> tree = Checkout(id);
    PQIDX_RETURN_IF_ERROR(tree.status());
    StatusOr<PqGramIndex> stored = index_->MaterializeIndex(id);
    PQIDX_RETURN_IF_ERROR(stored.status());
    if (!(*stored == BuildIndex(*tree, index_->shape()))) {
      return DataLossError("index out of sync for document " +
                           std::to_string(id));
    }
  }
  return Status::Ok();
}

}  // namespace pqidx
