// DocumentStore: the paper's application scenario (Figure 1) packaged as
// one component.
//
// A store is a directory holding a crash-safe persistent index
// (`index.db`, see PersistentForestIndex) and one binary tree file per
// document (`tree_<id>.bin`). The workflow:
//
//   1. Ingest(doc)              -- assign an id, persist document + index
//   2. tree = Checkout(id)      -- load the current version
//   3. ...edit `tree` through ApplyAndLog, recording the inverse log...
//   4. Commit(id, tree, log)    -- persist the new version and maintain
//                                  the index incrementally from the log
//   5. Lookup(query, tau)       -- approximate search over the collection
//
// CommitVersion(id, new_version) covers the no-log case by
// reconstructing a minimal edit script (tree diff) internally.
//
// Node ids are session-scoped: Checkout assigns pre-order ids, and the
// log passed to Commit must be recorded against that checkout. The index
// itself stores only label-tuple fingerprints, so id renumbering across
// sessions is invisible to it.

#ifndef PQIDX_STORAGE_DOCUMENT_STORE_H_
#define PQIDX_STORAGE_DOCUMENT_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/forest_index.h"
#include "edit/edit_log.h"
#include "storage/persistent_forest_index.h"
#include "tree/tree.h"

namespace pqidx {

class DocumentStore {
 public:
  // Creates a new store in `directory` (created if missing; must not
  // already contain a store).
  static StatusOr<std::unique_ptr<DocumentStore>> Create(
      const std::string& directory, PqShape shape);

  // Opens an existing store.
  static StatusOr<std::unique_ptr<DocumentStore>> Open(
      const std::string& directory);

  const PqShape& shape() const { return index_->shape(); }
  int size() const { return index_->size(); }
  std::vector<TreeId> DocumentIds() const { return index_->TreeIds(); }

  // Adds a document; returns its assigned id.
  StatusOr<TreeId> Ingest(const Tree& doc);

  // Loads the current version of document `id` (fresh pre-order node
  // ids; edit and Commit against exactly this tree).
  StatusOr<Tree> Checkout(TreeId id) const;

  // Persists `tn` as the new version of `id` and maintains the index
  // from `log` (the inverse operations recorded while editing the
  // checkout). The index is updated before the tree file is replaced;
  // a crash in between is repaired on Open (the tree file is
  // re-synchronized from its content hash).
  Status Commit(TreeId id, const Tree& tn, const EditLog& log);

  // As Commit when no log exists: diffs the stored version against
  // `new_version` and derives the log internally.
  Status CommitVersion(TreeId id, const Tree& new_version);

  // Removes a document and its index entries.
  Status Remove(TreeId id);

  // Approximate lookup over the collection.
  StatusOr<std::vector<LookupResult>> Lookup(const Tree& query,
                                             double tau) const;

  // Verifies that every document's stored index matches its stored tree.
  // O(collection); tests and `fsck`-style checks.
  Status Verify() const;

 private:
  explicit DocumentStore(std::string directory)
      : directory_(std::move(directory)) {}

  std::string IndexPath() const { return directory_ + "/index.db"; }
  std::string TreePath(TreeId id) const {
    return directory_ + "/tree_" + std::to_string(id) + ".bin";
  }

  std::string directory_;
  std::unique_ptr<PersistentForestIndex> index_;
  TreeId next_id_ = 0;
};

}  // namespace pqidx

#endif  // PQIDX_STORAGE_DOCUMENT_STORE_H_
