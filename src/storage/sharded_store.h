// A sharded persistent store: the tree-id space partitioned across N
// independent PersistentForestIndex shards, each with its own pager,
// WAL, and linear hash table, so batch ingest fans its WAL writes and
// fsyncs across N files instead of serializing on one.
//
// On disk a sharded store is a directory:
//
//   <path>/MANIFEST       80-byte shard manifest (storage/shard_manifest.h)
//   <path>/shard-0000     PersistentForestIndex page file for shard 0
//   <path>/shard-0001     ... one per shard ...
//
// Routing is modulo over the tree id (shard = id % N), recorded in the
// manifest so the store refuses to open under a different rule. A
// single-shard store (`shards = 1`) is NOT a directory: it is exactly
// the legacy one-file PersistentForestIndex layout, and Open() accepts
// any pre-shard file unchanged (manifest absent => N = 1).
//
// Group commit is two-phase with the manifest as the commit point:
//
//   1. prepare  -- every touched shard stages its sub-batch and seals
//                  its own WAL (one WAL write + fsync per shard, fanned
//                  across the thread pool), stamping the group's ticket
//                  and the replication cursor into its meta page inside
//                  that WAL transaction;
//   2. decide   -- the manifest's alternating commit slot is rewritten
//                  with {ticket, cursor} and fsynced: THE commit point;
//   3. finish   -- each shard applies its sealed WAL in place.
//
// Recovery opens every shard with the manifest's committed ticket as
// the replay bound: a crashed shard WAL whose stamped ticket is beyond
// the bound belongs to a group that never decided and is rolled back,
// at or below the bound it is rolled forward -- so a crash anywhere
// between shard commits always lands on the consistent cut the
// manifest names. When a group touches exactly one shard the manifest
// write is skipped (the shard's own WAL is already atomic, and an
// undecided discard just rolls back an unacknowledged batch); the
// reconciled ticket/cursor are therefore max(manifest, shards).
//
// Thread-safety: mutations take the caller's serialization (pqidxd's
// ticket-ordered storage turnstile admits one batch at a time), which
// also guarantees at most one group's WALs can exist at a crash.
// replication_cursor()/committed_ticket() are safe to read concurrently
// with mutations (stats endpoints).

#ifndef PQIDX_STORAGE_SHARDED_STORE_H_
#define PQIDX_STORAGE_SHARDED_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "storage/persistent_forest_index.h"
#include "storage/shard_manifest.h"

namespace pqidx {

class ShardedStore {
 public:
  using BatchEdit = PersistentForestIndex::BatchEdit;
  using ApplyBatchTimings = PersistentForestIndex::ApplyBatchTimings;

  // Creates a fresh store at `path` (replacing any existing store):
  // `shards == 1` writes the legacy single-file layout, `shards >= 2`
  // the manifest + shard directory described above.
  static StatusOr<std::unique_ptr<ShardedStore>> Create(
      const std::string& path, PqShape shape, int shards = 1,
      int pool_pages = 256);

  // Opens an existing store, recovering crashed group commits to the
  // manifest's consistent cut. A plain file (no manifest) opens as a
  // single-shard legacy store.
  static StatusOr<std::unique_ptr<ShardedStore>> Open(
      const std::string& path, int pool_pages = 256);

  ~ShardedStore();

  const PqShape& shape() const { return shape_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  int ShardOf(TreeId id) const {
    return static_cast<int>(id % static_cast<uint32_t>(shards_.size()));
  }

  // Total cataloged trees / merged sorted id list across all shards.
  int size() const;
  std::vector<TreeId> TreeIds() const;
  int64_t TreeBagSize(TreeId id) const;

  // The durable replication cursor / group-commit ticket, reconciled
  // across manifest and shards. Safe to read concurrently with commits.
  uint64_t replication_cursor() const {
    return cursor_.load(std::memory_order_acquire);
  }
  uint64_t committed_ticket() const {
    return next_ticket_.load(std::memory_order_acquire) - 1;
  }

  // Registers many bags under one group commit (one WAL seal + fsync
  // pair per touched shard). All-or-nothing across the whole group.
  Status BulkAdd(
      const std::vector<std::pair<TreeId, const PqGramIndex*>>& bags,
      ThreadPool* pool = nullptr, uint64_t cursor = 0);

  // Applies one batch of independent edits as one group commit.
  // Per-edit validation failures land in `results` exactly as in
  // PersistentForestIndex::ApplyBatch; a hard failure in any shard
  // aborts every shard's prepared transaction, so the group is
  // all-or-nothing at the storage level. With `pool` the per-shard
  // prepares run in parallel (each shard's inner δ-phase then runs
  // serially -- the fan-out is across shards).
  Status ApplyBatch(const std::vector<BatchEdit>& edits,
                    std::vector<Status>* results,
                    ApplyBatchTimings* timings = nullptr,
                    ThreadPool* pool = nullptr, uint64_t cursor = 0);

  // Merged materialization of every shard (serving replica bootstrap).
  StatusOr<ForestIndex> MaterializeForest();

  // Reads one tree's bag back from its owning shard.
  StatusOr<PqGramIndex> MaterializeIndex(TreeId id) {
    return shards_[ShardOf(id)]->MaterializeIndex(id);
  }

  // Routed single-tree operations (each commits on its own shard).
  Status RemoveTree(TreeId id);
  StatusOr<std::vector<LookupResult>> Lookup(const PqGramIndex& query,
                                             double tau);

  // Aborts on structural inconsistency in any shard; tests.
  void CheckConsistency();

  // Direct shard access (tests, stats).
  PersistentForestIndex* shard(int k) { return shards_[k].get(); }

  // Crash-matrix hook: runs the NEXT group commit serially in shard
  // order and simulates a crash at `point`, abandoning every shard's
  // file handle (the in-process analogue of a power cut; the store is
  // unusable afterwards and must be re-Opened).
  //   kAfterPrepare:  crash after shards [0..after_shard] sealed their
  //                   WALs, before the manifest decide -- the group
  //                   must roll BACK on recovery.
  //   kAfterManifest: every shard prepared and the manifest slot is
  //                   durable, no shard finished -- must roll FORWARD.
  //   kAfterFinish:   decided, and shards [0..after_shard] finished --
  //                   must roll FORWARD (idempotent replay on the rest).
  // In crash mode the manifest decide runs even for single-shard
  // groups, so the full protocol is what the matrix exercises.
  enum class GroupCrashPoint { kAfterPrepare, kAfterManifest, kAfterFinish };
  Status CrashNextGroup(GroupCrashPoint point, int after_shard = 0) {
    group_crash_armed_ = true;
    group_crash_point_ = point;
    group_crash_after_shard_ = after_shard;
    return Status::Ok();
  }

 private:
  // One touched shard's slice of a group commit (`edits` for
  // ApplyBatch groups, `bags` for BulkAdd groups).
  struct ShardRun {
    int shard = 0;
    std::vector<BatchEdit> edits;
    std::vector<size_t> edit_index;  // positions in the caller's batch
    std::vector<std::pair<TreeId, const PqGramIndex*>> bags;
    std::vector<Status> results;
    ApplyBatchTimings timings;
    Status status = Status::Ok();
  };
  // Stages one run on its shard and leaves the shard prepared.
  using PrepareFn =
      std::function<Status(ShardRun*,
                           const PersistentForestIndex::TxnOptions&)>;

  ShardedStore() = default;

  static StatusOr<std::unique_ptr<ShardedStore>> OpenSharded(
      const std::string& path, int pool_pages);
  void InitMetrics();
  void UpdateShardGauges();
  void RefreshCursorFromShards();

  // Writes {ticket, cursor} into the alternating manifest slot and
  // fsyncs: the group's durable decide.
  Status CommitManifestSlot(uint64_t ticket, uint64_t cursor);

  // The shared 2PC driver for ApplyBatch/BulkAdd group commits.
  // Runs whose shard stages nothing are fine (no decide needed).
  Status GroupCommit(std::vector<ShardRun>* runs, ThreadPool* pool,
                     uint64_t cursor, const PrepareFn& prepare);
  Status GroupCommitCrash(std::vector<ShardRun>* runs,
                          const PersistentForestIndex::TxnOptions& txn,
                          const PrepareFn& prepare);
  void AbortPreparedShards(const std::vector<ShardRun>& runs);

  std::string path_;
  PqShape shape_;
  bool sharded_ = false;  // directory + manifest layout (N >= 2)
  std::vector<std::unique_ptr<PersistentForestIndex>> shards_;

  // Manifest state (sharded mode only).
  std::FILE* manifest_file_ = nullptr;
  bool next_slot_b_ = false;  // which slot the next decide overwrites
  uint64_t manifest_ticket_ = 0;
  uint64_t manifest_cursor_ = 0;

  std::atomic<uint64_t> next_ticket_{1};
  std::atomic<uint64_t> cursor_{0};
  bool poisoned_ = false;

  bool group_crash_armed_ = false;
  GroupCrashPoint group_crash_point_ = GroupCrashPoint::kAfterPrepare;
  int group_crash_after_shard_ = 0;

  // Registry cells (named in InitMetrics).
  Gauge* m_shards_ = nullptr;
  Counter* m_group_commits_ = nullptr;
  Counter* m_single_shard_commits_ = nullptr;
  Histogram* m_manifest_us_ = nullptr;
  Histogram* m_group_commit_us_ = nullptr;
  std::vector<Gauge*> m_shard_ticket_;
  std::vector<Gauge*> m_shard_cursor_;
  std::vector<Gauge*> m_shard_entries_;
  std::vector<Gauge*> m_shard_buckets_;
};

}  // namespace pqidx

#endif  // PQIDX_STORAGE_SHARDED_STORE_H_
