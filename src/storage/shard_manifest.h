// The sharded store's manifest: one small file (`MANIFEST` inside the
// store directory) recording the immutable shard topology and the
// durable group-commit point.
//
// Layout (fixed 80 bytes, little-endian; FORMATS.md):
//   off  0  u32 magic   "PQSM"
//   off  4  u32 version (1)
//   off  8  u32 shard_count (1..kMaxShards)
//   off 12  u32 routing mode (0 = modulo over tree id)
//   off 16  16 reserved bytes (zero)
//   off 32  slot A: u64 ticket, u64 cursor, u32 crc, u32 pad
//   off 56  slot B: same shape
//
// The {ticket, cursor} pair is the 2PC commit point of a multi-shard
// group commit: group commit writes ONE alternating slot and fsyncs, so
// a torn slot write can never destroy the previous durable point --
// decode picks the checksum-valid slot with the higher ticket. The
// header fields are written once at create time and never change.

#ifndef PQIDX_STORAGE_SHARD_MANIFEST_H_
#define PQIDX_STORAGE_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace pqidx {

inline constexpr size_t kShardManifestSize = 80;
inline constexpr size_t kShardManifestSlotSize = 24;
inline constexpr size_t kShardManifestSlotAOff = 32;
inline constexpr size_t kShardManifestSlotBOff = 56;
inline constexpr uint32_t kShardManifestMagic = 0x5051534d;  // "PQSM"
inline constexpr uint32_t kShardManifestVersion = 1;
inline constexpr uint32_t kShardRoutingModulo = 0;
inline constexpr uint32_t kMaxStoreShards = 1024;

struct ShardManifest {
  uint32_t shard_count = 1;
  uint32_t routing = kShardRoutingModulo;
  // The durable commit point: every group with ticket <= committed_ticket
  // reached its manifest commit and must roll forward on recovery;
  // tickets beyond it roll back.
  uint64_t committed_ticket = 0;
  uint64_t committed_cursor = 0;
  // Which slot holds the committed point (the next write goes to the
  // other one). Filled by decode; encode honors it.
  bool committed_in_slot_b = false;
};

// Decodes a manifest image. Pure and bounds-checked: never reads outside
// `bytes` and never aborts, whatever the input -- the fuzz_manifest
// harness drives arbitrary bytes through this. Requires at least one
// checksum-valid slot (create writes both).
StatusOr<ShardManifest> DecodeShardManifest(std::string_view bytes);

// Encodes a complete manifest image (header + both slots carrying the
// committed point).
std::string EncodeShardManifest(const ShardManifest& manifest);

// Encodes one 24-byte durable {ticket, cursor} slot; group commit
// overwrites a single slot in place with this.
void EncodeShardManifestSlot(uint64_t ticket, uint64_t cursor,
                             uint8_t out[kShardManifestSlotSize]);

}  // namespace pqidx

#endif  // PQIDX_STORAGE_SHARD_MANIFEST_H_
