// On-disk persistence for trees (document + label dictionary).
//
// Pre-order encoding with per-node (label id, fanout) varints plus the
// interned dictionary; node ids are reassigned densely in pre-order on
// load. Used by examples and by the index-size experiment (Figure 14
// left), where the serialized document size is the baseline the index size
// is compared against.

#ifndef PQIDX_STORAGE_TREE_STORE_H_
#define PQIDX_STORAGE_TREE_STORE_H_

#include <string>

#include "common/serde.h"
#include "common/status.h"
#include "tree/tree.h"

namespace pqidx {

// In-memory encoding (shared with SaveTree / Figure 14's size probe).
void SerializeTree(const Tree& tree, ByteWriter* writer);
StatusOr<Tree> DeserializeTree(ByteReader* reader);

// Serialized size of `tree` in bytes.
int64_t TreeSerializedBytes(const Tree& tree);

Status SaveTree(const Tree& tree, const std::string& path);
StatusOr<Tree> LoadTree(const std::string& path);

}  // namespace pqidx

#endif  // PQIDX_STORAGE_TREE_STORE_H_
