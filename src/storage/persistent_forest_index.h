// A durable, incrementally maintainable forest index: the paper's
// "persistent index" made literal.
//
// The index relation (treeId, pqg, cnt) lives in an on-disk linear hash
// table inside one page file; a catalog tracks each tree's bag size |I(T)|
// and the index shape. Every public mutation is committed atomically
// through the pager's WAL, so the file survives crashes at any point, and
// an incremental update (paper Algorithm 1) dirties only the pages that
// hold the affected tuples -- the on-disk analogue of the paper's "update
// the index instead of rebuilding it".
//
// Lookups evaluate the pq-gram distance by point-probing the query's
// tuples against each cataloged tree, never scanning the table. For
// RAM-sized forests the in-memory ForestIndex / InvertedForestIndex are
// faster; this store is for durability and for bags larger than memory.

#ifndef PQIDX_STORAGE_PERSISTENT_FOREST_INDEX_H_
#define PQIDX_STORAGE_PERSISTENT_FOREST_INDEX_H_

#include <map>
#include <memory>
#include <utility>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "edit/edit_log.h"
#include "storage/linear_hash.h"
#include "storage/pager.h"
#include "tree/tree.h"

namespace pqidx {

class PersistentForestIndex {
 public:
  // Create/Open knobs. `metric_prefix` names the underlying pager's
  // registry cells ("pager" by default; sharded stores pass
  // "pager.s<k>"). The replay bound implements sharded-store recovery:
  // with `bound_replay` set, a sealed WAL left by a crash is replayed
  // only when the store ticket stamped in its meta-page image is
  // nonzero and <= `replay_ticket_bound` -- a ticket beyond the bound
  // identifies a group-commit transaction whose group never reached
  // its manifest commit point, so it is discarded (rolled back) to
  // keep the multi-shard cut consistent.
  struct OpenOptions {
    int pool_pages = 256;
    std::string metric_prefix = "pager";
    bool bound_replay = false;
    uint64_t replay_ticket_bound = 0;
  };

  // Creates a fresh index file at `path` (replacing any existing file).
  static StatusOr<std::unique_ptr<PersistentForestIndex>> Create(
      const std::string& path, PqShape shape, int pool_pages = 256);
  static StatusOr<std::unique_ptr<PersistentForestIndex>> Create(
      const std::string& path, PqShape shape, const OpenOptions& options);

  // Opens an existing index file, recovering from a crashed commit if a
  // write-ahead log is present.
  static StatusOr<std::unique_ptr<PersistentForestIndex>> Open(
      const std::string& path, int pool_pages = 256);
  static StatusOr<std::unique_ptr<PersistentForestIndex>> Open(
      const std::string& path, const OpenOptions& options);

  const PqShape& shape() const { return shape_; }
  int size() const { return static_cast<int>(catalog_.size()); }
  std::vector<TreeId> TreeIds() const;

  // The durable replication cursor: the highest replication ticket whose
  // batch this store has committed (0 when it never replicated). Written
  // atomically with the batch it belongs to (ApplyBatch / BulkAdd), so a
  // recovered follower resumes exactly after its last durable batch.
  // Files written before the cursor existed read 0.
  uint64_t replication_cursor() const { return cursor_; }

  // The durable store commit ticket: a monotone per-transaction stamp a
  // sharded store writes into every touched shard's meta page inside
  // that shard's WAL transaction (TxnOptions::ticket). Recovery uses it
  // to decide whether a crashed shard WAL belongs to a group that
  // reached its manifest commit point. 0 for stores that never ran
  // under a sharded group commit (including all pre-shard files).
  uint64_t store_ticket() const { return ticket_; }

  // |I(id)|, or -1 if unknown.
  int64_t TreeBagSize(TreeId id) const;

  // Registers a tree's bag. Fails if `id` is already cataloged.
  Status AddIndex(TreeId id, const PqGramIndex& index);
  Status AddTree(TreeId id, const Tree& tree);

  // Registers many bags under one commit (one WAL transaction, one fsync
  // pair): the fast path for initial ingest. All-or-nothing. With `pool`,
  // the tuple deltas are flattened, hashed, and grouped by staging region
  // in parallel before the (single-threaded) table apply. A nonzero
  // `cursor` advances the replication cursor in the same transaction
  // (followers installing a leader snapshot pass the snapshot's ticket).
  Status BulkAdd(
      const std::vector<std::pair<TreeId, const PqGramIndex*>>& bags,
      ThreadPool* pool = nullptr, uint64_t cursor = 0);

  // Per-transaction stamps and commit mode for ApplyBatch/BulkAdd.
  // `cursor`/`ticket` are written to the meta page inside the batch's
  // WAL transaction (0 skips the respective stamp; both are monotone).
  // With `prepare`, the transaction stops after the WAL seal+fsync
  // (Pager::PrepareCommit): the mutation is durable but not applied
  // until FinishPrepared(), and AbortPrepared() rolls it back -- the
  // two-phase hook ShardedStore's group commit is built on.
  struct TxnOptions {
    uint64_t cursor = 0;
    uint64_t ticket = 0;
    bool prepare = false;
  };

  Status BulkAdd(
      const std::vector<std::pair<TreeId, const PqGramIndex*>>& bags,
      ThreadPool* pool, const TxnOptions& txn);

  // One edit of a group-committed batch (see ApplyBatch): either an
  // AddIndex (`add` set) or an UpdateTree (`plus` and `minus` set).
  struct BatchEdit {
    TreeId id = 0;
    const PqGramIndex* add = nullptr;
    const PqGramIndex* plus = nullptr;
    const PqGramIndex* minus = nullptr;
  };

  // Wall-clock split of one ApplyBatch run, in microseconds (all zero
  // when Metrics::enabled() is off): catalog validation, δ-phase (tuple
  // deltas staged into the hash table -- the paper's incremental
  // update), U-phase (catalog rewrite), and storage apply (the WAL
  // commit: WAL write + fsync + in-place write + fsync).
  struct ApplyBatchTimings {
    int64_t validate_us = 0;
    int64_t delta_us = 0;
    int64_t update_us = 0;
    int64_t storage_us = 0;
  };

  // Applies many *independent* edits under ONE WAL transaction (one
  // fsync pair): the group-commit hook for pqidxd (src/service). Edits
  // are applied in order; catalog-level validation failures (duplicate
  // add, unknown tree, shape mismatch, bag size underflow) are reported
  // per edit in `results` and leave the other edits untouched. An
  // apply-time failure (I/O, or a minus bag that is not a sub-bag of the
  // stored bag -- callers are expected to pre-validate that, as
  // UpdateTree's contract already requires) rolls back the whole batch,
  // fails every staged edit, and is returned. Nothing is committed when
  // no edit survives validation. `timings`, when non-null, receives the
  // phase split of this run (as far as it got); the same split also
  // lands in the "apply_batch.*" registry histograms on success.
  //
  // With `pool`, the δ-phase fans out: each staged edit's bags are
  // flattened into (key, delta) tuples and hashed to a staging region in
  // parallel, per-region workers merge the tuples into net deltas, and
  // only the net deltas are applied to the hash table (serially, region
  // by region -- the pager is not thread-safe). One consequence of
  // merging: per (tree, fp) key the batch's deltas are summed before the
  // apply, so an update retracting and re-adding the same tuple never
  // touches the table at all, and a minus tuple the stored bag lacks is
  // only detected when its *net* is negative (callers pre-validate
  // sub-bags, as the contract above already requires). The WAL
  // transaction and its single fsync pair are unchanged.
  // A nonzero `cursor` is persisted as the replication cursor inside the
  // batch's WAL transaction (but only when at least one edit commits):
  // leaders stamp each batch with its replication ticket, followers
  // stamp replicated batches with the ticket streamed to them.
  Status ApplyBatch(const std::vector<BatchEdit>& edits,
                    std::vector<Status>* results,
                    ApplyBatchTimings* timings = nullptr,
                    ThreadPool* pool = nullptr, uint64_t cursor = 0);
  Status ApplyBatch(const std::vector<BatchEdit>& edits,
                    std::vector<Status>* results,
                    ApplyBatchTimings* timings, ThreadPool* pool,
                    const TxnOptions& txn);

  // Completes or rolls back a transaction left prepared by
  // ApplyBatch/BulkAdd with TxnOptions::prepare. FinishPrepared applies
  // the sealed WAL in place (the commit's second fsync); AbortPrepared
  // drops the WAL and restores the in-memory caches to the last commit.
  Status FinishPrepared();
  Status AbortPrepared();
  // True between a successful prepare and its finish/abort.
  bool prepared() const { return pager_.prepared(); }

  // Materializes every cataloged bag in one table sweep -- the fast way
  // to build an in-memory serving replica of the whole store. Fails on
  // tuples outside the catalog (index corruption).
  StatusOr<ForestIndex> MaterializeForest();

  // Removes a tree and reclaims its tuples (full table sweep; removal is
  // the rare operation in this workload).
  Status RemoveTree(TreeId id);

  // Incremental maintenance: applies the lambda(Delta+) / lambda(Delta-)
  // bags of one updateIndex run, atomically.
  Status UpdateTree(TreeId id, const PqGramIndex& plus,
                    const PqGramIndex& minus);

  // Convenience: derives the bags from (tn, log) via ComputeIndexDeltas.
  Status ApplyLog(TreeId id, const Tree& tn, const EditLog& log);

  // pq-gram distance between `query` and the stored tree `id`.
  StatusOr<double> Distance(TreeId id, const PqGramIndex& query);

  // Approximate lookup over all cataloged trees, most similar first.
  StatusOr<std::vector<LookupResult>> Lookup(const PqGramIndex& query,
                                             double tau);

  // Materializes tree `id`'s bag (table sweep; diagnostics and tests).
  StatusOr<PqGramIndex> MaterializeIndex(TreeId id);

  // Rewrites the live contents into a fresh, minimal file at `path`
  // (free-listed and overflow pages from past churn are not carried
  // over). The source store is not modified.
  Status CompactInto(const std::string& path);

  // Aborts on structural inconsistency (catalog vs. table); tests.
  void CheckConsistency();

  // Hash-table occupancy snapshots (per-shard observability).
  uint64_t table_entry_count() const { return table_.entry_count(); }
  uint32_t table_bucket_count() const { return table_.bucket_count(); }

  const Pager& pager() const { return pager_; }
  // Test hook: mutable pager access for fault injection
  // (Pager::InjectWriteFailureAfter).
  Pager* mutable_pager() { return &pager_; }

  // Bench/test hook (process-wide): toggles the bucket-clustered apply
  // order in the δ-phase. On (the default) the staged net deltas are
  // sorted by destination hash bucket so the serial table apply
  // clusters its page touches; off restores plain key order, the
  // before/after comparison BENCH_WRITE reports.
  static void SetBucketSortEnabled(bool enabled);
  static bool bucket_sort_enabled();

  // Test hook: run a mutation and crash mid-commit (see Pager).
  Status CrashNextCommit(Pager::CrashPoint point) {
    crash_point_ = point;
    crash_armed_ = true;
    return Status::Ok();
  }

 private:
  PersistentForestIndex(int pool_pages, const std::string& metric_prefix)
      : pager_(pool_pages, metric_prefix) {}

  Status InitializeNew(const std::string& path, PqShape shape);
  Status OpenExisting(const std::string& path, const OpenOptions& options);

  Status LoadCatalog();
  Status StoreCatalog();
  // Advances the durable replication cursor on the meta page (part of
  // the caller's open transaction). Cursors never move backwards; 0 is
  // a no-op so non-replicating callers skip the page-0 write entirely.
  Status StoreCursor(uint64_t cursor);
  // Same discipline for the store commit ticket.
  Status StoreTicket(uint64_t ticket);
  // Restores catalog_head_/cursor_/ticket_/table_ caches from the
  // committed page 0 (after a rollback or abort).
  Status ReloadCaches();
  Status CommitOrCrash(bool prepare = false);
  Status RollbackAndReload(Status cause);

  Pager pager_;
  LinearHashTable table_{&pager_};
  PqShape shape_;
  PageId catalog_head_ = 0;
  uint64_t cursor_ = 0;  // durable replication cursor (meta page)
  uint64_t ticket_ = 0;  // durable store commit ticket (meta page)
  std::map<TreeId, int64_t> catalog_;  // tree -> |I(T)|
  bool crash_armed_ = false;
  Pager::CrashPoint crash_point_ = Pager::CrashPoint::kAfterWalSeal;
};

}  // namespace pqidx

#endif  // PQIDX_STORAGE_PERSISTENT_FOREST_INDEX_H_
