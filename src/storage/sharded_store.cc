#include "storage/sharded_store.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <functional>

namespace pqidx {
namespace {

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

std::string ShardPath(const std::string& dir, int k) {
  char name[16];
  std::snprintf(name, sizeof(name), "shard-%04d", k);
  return dir + "/" + name;
}

std::string ShardMetricPrefix(int k) {
  return "pager.s" + std::to_string(k);
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Status SyncFile(std::FILE* file) {
  if (std::fflush(file) != 0 || fsync(fileno(file)) != 0) {
    return IoError("manifest fsync failed");
  }
  return Status::Ok();
}

// Clears a previous store at `path` so Create can start fresh: either a
// legacy single file (plus a leftover WAL) or a shard directory.
void RemoveExistingStore(const std::string& path) {
  if (IsDirectory(path)) {
    std::remove(ManifestPath(path).c_str());
    for (uint32_t k = 0; k < kMaxStoreShards; ++k) {
      const std::string shard = ShardPath(path, static_cast<int>(k));
      const bool removed = std::remove(shard.c_str()) == 0;
      std::remove((shard + ".wal").c_str());
      if (!removed) break;
    }
    ::rmdir(path.c_str());
  } else {
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
  }
}

}  // namespace

ShardedStore::~ShardedStore() {
  if (manifest_file_ != nullptr) std::fclose(manifest_file_);
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::Create(
    const std::string& path, PqShape shape, int shards, int pool_pages) {
  if (shards < 1 || shards > static_cast<int>(kMaxStoreShards)) {
    return InvalidArgumentError("store shard count out of range");
  }
  RemoveExistingStore(path);
  auto store = std::unique_ptr<ShardedStore>(new ShardedStore());
  store->path_ = path;
  store->shape_ = shape;
  store->sharded_ = shards > 1;
  if (!store->sharded_) {
    StatusOr<std::unique_ptr<PersistentForestIndex>> created =
        PersistentForestIndex::Create(path, shape, pool_pages);
    PQIDX_RETURN_IF_ERROR(created.status());
    store->shards_.push_back(std::move(created).value());
  } else {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return IoError("cannot create store directory");
    }
    ShardManifest manifest;
    manifest.shard_count = static_cast<uint32_t>(shards);
    const std::string bytes = EncodeShardManifest(manifest);
    std::FILE* file = std::fopen(ManifestPath(path).c_str(), "wb+");
    if (file == nullptr) return IoError("cannot create shard manifest");
    if (std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
      std::fclose(file);
      return IoError("shard manifest write failed");
    }
    Status synced = SyncFile(file);
    if (!synced.ok()) {
      std::fclose(file);
      return synced;
    }
    store->manifest_file_ = file;
    // A fresh manifest decodes from slot B (equal tickets, B wins), so
    // the first group commit overwrites slot A.
    store->next_slot_b_ = false;
    for (int k = 0; k < shards; ++k) {
      PersistentForestIndex::OpenOptions options;
      options.pool_pages = pool_pages;
      options.metric_prefix = ShardMetricPrefix(k);
      StatusOr<std::unique_ptr<PersistentForestIndex>> created =
          PersistentForestIndex::Create(ShardPath(path, k), shape, options);
      PQIDX_RETURN_IF_ERROR(created.status());
      store->shards_.push_back(std::move(created).value());
    }
  }
  store->InitMetrics();
  store->UpdateShardGauges();
  return store;
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::Open(
    const std::string& path, int pool_pages) {
  if (IsDirectory(path)) return OpenSharded(path, pool_pages);
  // Legacy layout: the store is one PersistentForestIndex file. Every
  // pre-shard file lands here (manifest absent => N = 1, unchanged).
  auto store = std::unique_ptr<ShardedStore>(new ShardedStore());
  store->path_ = path;
  StatusOr<std::unique_ptr<PersistentForestIndex>> opened =
      PersistentForestIndex::Open(path, pool_pages);
  PQIDX_RETURN_IF_ERROR(opened.status());
  store->shards_.push_back(std::move(opened).value());
  store->shape_ = store->shards_[0]->shape();
  store->next_ticket_.store(store->shards_[0]->store_ticket() + 1,
                            std::memory_order_release);
  store->cursor_.store(store->shards_[0]->replication_cursor(),
                       std::memory_order_release);
  store->InitMetrics();
  store->UpdateShardGauges();
  return store;
}

StatusOr<std::unique_ptr<ShardedStore>> ShardedStore::OpenSharded(
    const std::string& path, int pool_pages) {
  std::FILE* file = std::fopen(ManifestPath(path).c_str(), "rb+");
  if (file == nullptr) return IoError("cannot open shard manifest");
  std::string bytes(kShardManifestSize, '\0');
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
  bytes.resize(read);
  StatusOr<ShardManifest> decoded = DecodeShardManifest(bytes);
  if (!decoded.ok()) {
    std::fclose(file);
    return decoded.status();
  }
  const ShardManifest& manifest = *decoded;

  auto store = std::unique_ptr<ShardedStore>(new ShardedStore());
  store->path_ = path;
  store->sharded_ = true;
  store->manifest_file_ = file;
  store->manifest_ticket_ = manifest.committed_ticket;
  store->manifest_cursor_ = manifest.committed_cursor;
  store->next_slot_b_ = !manifest.committed_in_slot_b;

  // Recover every shard to the manifest's consistent cut: a crashed
  // shard WAL replays only when its group decided (stamped ticket <=
  // the manifest's committed ticket).
  uint64_t max_ticket = manifest.committed_ticket;
  uint64_t max_cursor = manifest.committed_cursor;
  for (uint32_t k = 0; k < manifest.shard_count; ++k) {
    PersistentForestIndex::OpenOptions options;
    options.pool_pages = pool_pages;
    options.metric_prefix = ShardMetricPrefix(static_cast<int>(k));
    options.bound_replay = true;
    options.replay_ticket_bound = manifest.committed_ticket;
    StatusOr<std::unique_ptr<PersistentForestIndex>> opened =
        PersistentForestIndex::Open(ShardPath(path, static_cast<int>(k)),
                                    options);
    PQIDX_RETURN_IF_ERROR(opened.status());
    max_ticket = std::max(max_ticket, (*opened)->store_ticket());
    max_cursor = std::max(max_cursor, (*opened)->replication_cursor());
    store->shards_.push_back(std::move(opened).value());
  }
  store->shape_ = store->shards_[0]->shape();
  for (const auto& shard : store->shards_) {
    if (!(shard->shape() == store->shape_)) {
      return DataLossError("shard shapes disagree");
    }
  }
  // Reconcile: single-shard fast-path commits advance a shard beyond
  // the manifest without a decide, so the global ticket/cursor are the
  // max over the manifest and every shard.
  store->next_ticket_.store(max_ticket + 1, std::memory_order_release);
  store->cursor_.store(max_cursor, std::memory_order_release);
  store->InitMetrics();
  store->UpdateShardGauges();
  return store;
}

void ShardedStore::InitMetrics() {
  Metrics& metrics = Metrics::Default();
  m_shards_ = metrics.gauge("store.shards");
  m_shards_->Set(shard_count());
  m_group_commits_ = metrics.counter("store.group_commits");
  m_single_shard_commits_ = metrics.counter("store.single_shard_commits");
  m_manifest_us_ = metrics.histogram("store.manifest_us");
  m_group_commit_us_ = metrics.histogram("store.group_commit_us");
  for (int k = 0; k < shard_count(); ++k) {
    const std::string base = "store.shard" + std::to_string(k);
    m_shard_ticket_.push_back(metrics.gauge(base + ".ticket"));
    m_shard_cursor_.push_back(metrics.gauge(base + ".cursor"));
    const std::string table = "linear_hash.s" + std::to_string(k);
    m_shard_entries_.push_back(metrics.gauge(table + ".entries"));
    m_shard_buckets_.push_back(metrics.gauge(table + ".buckets"));
  }
}

void ShardedStore::UpdateShardGauges() {
  for (int k = 0; k < shard_count(); ++k) {
    const PersistentForestIndex& shard = *shards_[k];
    m_shard_ticket_[k]->Set(static_cast<int64_t>(shard.store_ticket()));
    m_shard_cursor_[k]->Set(
        static_cast<int64_t>(shard.replication_cursor()));
    m_shard_entries_[k]->Set(
        static_cast<int64_t>(shard.table_entry_count()));
    m_shard_buckets_[k]->Set(
        static_cast<int64_t>(shard.table_bucket_count()));
  }
}

void ShardedStore::RefreshCursorFromShards() {
  uint64_t cursor = cursor_.load(std::memory_order_acquire);
  for (const auto& shard : shards_) {
    cursor = std::max(cursor, shard->replication_cursor());
  }
  cursor_.store(cursor, std::memory_order_release);
}

int ShardedStore::size() const {
  int total = 0;
  for (const auto& shard : shards_) total += shard->size();
  return total;
}

std::vector<TreeId> ShardedStore::TreeIds() const {
  std::vector<TreeId> ids;
  for (const auto& shard : shards_) {
    std::vector<TreeId> part = shard->TreeIds();
    ids.insert(ids.end(), part.begin(), part.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

int64_t ShardedStore::TreeBagSize(TreeId id) const {
  return shards_[ShardOf(id)]->TreeBagSize(id);
}

Status ShardedStore::CommitManifestSlot(uint64_t ticket, uint64_t cursor) {
  const int64_t start_us = Metrics::enabled() ? Metrics::NowUs() : 0;
  uint8_t slot[kShardManifestSlotSize];
  EncodeShardManifestSlot(ticket, cursor, slot);
  const long offset = static_cast<long>(
      next_slot_b_ ? kShardManifestSlotBOff : kShardManifestSlotAOff);
  if (std::fseek(manifest_file_, offset, SEEK_SET) != 0 ||
      std::fwrite(slot, 1, sizeof(slot), manifest_file_) != sizeof(slot)) {
    return IoError("manifest slot write failed");
  }
  PQIDX_RETURN_IF_ERROR(SyncFile(manifest_file_));
  next_slot_b_ = !next_slot_b_;
  manifest_ticket_ = ticket;
  manifest_cursor_ = cursor;
  if (Metrics::enabled()) m_manifest_us_->Record(Metrics::NowUs() - start_us);
  return Status::Ok();
}

void ShardedStore::AbortPreparedShards(const std::vector<ShardRun>& runs) {
  for (const ShardRun& run : runs) {
    if (shards_[run.shard]->prepared()) {
      (void)shards_[run.shard]->AbortPrepared();
    }
  }
}

Status ShardedStore::GroupCommit(
    std::vector<ShardRun>* runs, ThreadPool* pool, uint64_t cursor,
    const std::function<Status(ShardRun*,
                               const PersistentForestIndex::TxnOptions&)>&
        prepare) {
  if (poisoned_) {
    return FailedPreconditionError(
        "sharded store poisoned by an earlier commit failure");
  }
  const uint64_t ticket = next_ticket_.load(std::memory_order_relaxed);
  PersistentForestIndex::TxnOptions txn;
  txn.cursor = cursor;
  txn.ticket = ticket;
  txn.prepare = true;
  if (group_crash_armed_) return GroupCommitCrash(runs, txn, prepare);

  const int64_t start_us = Metrics::enabled() ? Metrics::NowUs() : 0;

  // Phase 1 -- prepare: each touched shard stages its sub-batch and
  // seals its own WAL (the per-shard fsync), fanned across the pool.
  // The inner apply runs without the pool: the fan-out is across
  // shards, and the pool is not re-entrant.
  if (pool != nullptr && runs->size() > 1) {
    pool->ParallelFor(static_cast<int64_t>(runs->size()), [&](int64_t i) {
      ShardRun& run = (*runs)[i];
      run.status = prepare(&run, txn);
    });
  } else {
    for (ShardRun& run : *runs) run.status = prepare(&run, txn);
  }
  Status cause = Status::Ok();
  for (const ShardRun& run : *runs) {
    if (!run.status.ok()) cause = run.status;
  }
  if (!cause.ok()) {
    // A hard failure anywhere aborts the whole group: every staged
    // (Ok-so-far) edit fails, mirroring the single-store batch
    // contract at group scope.
    AbortPreparedShards(*runs);
    for (ShardRun& run : *runs) {
      for (Status& result : run.results) {
        if (result.ok()) result = cause;
      }
    }
    return cause;
  }

  std::vector<int> prepared;
  for (const ShardRun& run : *runs) {
    if (shards_[run.shard]->prepared()) prepared.push_back(run.shard);
  }
  if (prepared.empty()) return Status::Ok();  // nothing staged anywhere

  // Phase 2 -- decide. With more than one prepared shard the manifest
  // slot write + fsync is the commit point. A single prepared shard
  // skips it: that shard's own WAL commit is already atomic, and if a
  // crash discards its undecided WAL the loss is an unacknowledged
  // batch, not a torn group (recovery reconciles tickets by max).
  const uint64_t decide_cursor =
      std::max(cursor, cursor_.load(std::memory_order_acquire));
  if (prepared.size() > 1) {
    Status decided = CommitManifestSlot(ticket, decide_cursor);
    if (!decided.ok()) {
      AbortPreparedShards(*runs);
      return decided;
    }
  } else {
    m_single_shard_commits_->Increment();
  }

  // Phase 3 -- finish: apply each sealed WAL in place. A failure here
  // is unrecoverable in-process (the group has decided); the store is
  // poisoned and the next Open rolls the group forward from the WALs.
  std::vector<Status> finished(prepared.size(), Status::Ok());
  if (pool != nullptr && prepared.size() > 1) {
    pool->ParallelFor(static_cast<int64_t>(prepared.size()), [&](int64_t i) {
      finished[i] = shards_[prepared[i]]->FinishPrepared();
    });
  } else {
    for (size_t i = 0; i < prepared.size(); ++i) {
      finished[i] = shards_[prepared[i]]->FinishPrepared();
    }
  }
  for (const Status& st : finished) {
    if (!st.ok()) {
      poisoned_ = true;
      return st;
    }
  }

  next_ticket_.store(ticket + 1, std::memory_order_release);
  cursor_.store(decide_cursor, std::memory_order_release);
  m_group_commits_->Increment();
  if (Metrics::enabled()) {
    m_group_commit_us_->Record(Metrics::NowUs() - start_us);
  }
  UpdateShardGauges();
  return Status::Ok();
}

Status ShardedStore::GroupCommitCrash(
    std::vector<ShardRun>* runs,
    const PersistentForestIndex::TxnOptions& txn,
    const std::function<Status(ShardRun*,
                               const PersistentForestIndex::TxnOptions&)>&
        prepare) {
  group_crash_armed_ = false;
  const GroupCrashPoint point = group_crash_point_;
  const int limit = group_crash_after_shard_;

  // Run the protocol serially in shard order so the crash point is
  // deterministic. The decide runs even for single-shard groups: the
  // matrix exercises the full protocol, not the fast path.
  int index = 0;
  for (ShardRun& run : *runs) {
    if (point == GroupCrashPoint::kAfterPrepare && index > limit) break;
    PQIDX_RETURN_IF_ERROR(prepare(&run, txn));
    ++index;
  }
  if (point != GroupCrashPoint::kAfterPrepare) {
    const uint64_t decide_cursor =
        std::max(txn.cursor, cursor_.load(std::memory_order_acquire));
    PQIDX_RETURN_IF_ERROR(CommitManifestSlot(txn.ticket, decide_cursor));
  }
  if (point == GroupCrashPoint::kAfterFinish) {
    index = 0;
    for (ShardRun& run : *runs) {
      if (index > limit) break;
      if (shards_[run.shard]->prepared()) {
        PQIDX_RETURN_IF_ERROR(shards_[run.shard]->FinishPrepared());
      }
      ++index;
    }
  }
  // The power cut: abandon every shard's file handles without applying,
  // rolling back, or removing any WAL, exactly as a crash would.
  for (auto& shard : shards_) shard->mutable_pager()->CrashAbandon();
  if (manifest_file_ != nullptr) {
    std::fclose(manifest_file_);
    manifest_file_ = nullptr;
  }
  poisoned_ = true;
  return Status::Ok();
}

Status ShardedStore::ApplyBatch(const std::vector<BatchEdit>& edits,
                                std::vector<Status>* results,
                                ApplyBatchTimings* timings, ThreadPool* pool,
                                uint64_t cursor) {
  results->assign(edits.size(), Status::Ok());
  if (timings != nullptr) *timings = ApplyBatchTimings{};
  if (!sharded_) {
    Status st = shards_[0]->ApplyBatch(edits, results, timings, pool, cursor);
    if (st.ok()) {
      RefreshCursorFromShards();
      UpdateShardGauges();
    }
    return st;
  }

  std::vector<ShardRun> runs;
  std::vector<int> run_of_shard(shard_count(), -1);
  for (size_t i = 0; i < edits.size(); ++i) {
    const int k = ShardOf(edits[i].id);
    if (run_of_shard[k] < 0) {
      run_of_shard[k] = static_cast<int>(runs.size());
      runs.emplace_back();
      runs.back().shard = k;
    }
    ShardRun& run = runs[run_of_shard[k]];
    run.edits.push_back(edits[i]);
    run.edit_index.push_back(i);
  }
  if (runs.empty()) return Status::Ok();
  std::sort(runs.begin(), runs.end(),
            [](const ShardRun& a, const ShardRun& b) {
              return a.shard < b.shard;
            });

  auto prepare = [this](ShardRun* run,
                        const PersistentForestIndex::TxnOptions& txn) {
    return shards_[run->shard]->ApplyBatch(run->edits, &run->results,
                                           &run->timings, nullptr, txn);
  };
  Status st = GroupCommit(&runs, pool, cursor, prepare);

  ApplyBatchTimings total;
  for (const ShardRun& run : runs) {
    if (run.results.size() == run.edits.size()) {
      for (size_t j = 0; j < run.edits.size(); ++j) {
        (*results)[run.edit_index[j]] = run.results[j];
      }
    } else if (!st.ok()) {
      for (size_t index : run.edit_index) (*results)[index] = st;
    }
    // Prepares run concurrently, so the group's phase cost is the
    // slowest shard's, not the sum.
    total.validate_us = std::max(total.validate_us, run.timings.validate_us);
    total.delta_us = std::max(total.delta_us, run.timings.delta_us);
    total.update_us = std::max(total.update_us, run.timings.update_us);
    total.storage_us = std::max(total.storage_us, run.timings.storage_us);
  }
  if (timings != nullptr) *timings = total;
  return st;
}

Status ShardedStore::BulkAdd(
    const std::vector<std::pair<TreeId, const PqGramIndex*>>& bags,
    ThreadPool* pool, uint64_t cursor) {
  if (!sharded_) {
    Status st = shards_[0]->BulkAdd(bags, pool, cursor);
    if (st.ok()) {
      RefreshCursorFromShards();
      UpdateShardGauges();
    }
    return st;
  }
  std::vector<ShardRun> runs;
  std::vector<int> run_of_shard(shard_count(), -1);
  for (const auto& bag : bags) {
    const int k = ShardOf(bag.first);
    if (run_of_shard[k] < 0) {
      run_of_shard[k] = static_cast<int>(runs.size());
      runs.emplace_back();
      runs.back().shard = k;
    }
    runs[run_of_shard[k]].bags.push_back(bag);
  }
  if (runs.empty()) return Status::Ok();
  std::sort(runs.begin(), runs.end(),
            [](const ShardRun& a, const ShardRun& b) {
              return a.shard < b.shard;
            });
  auto prepare = [this](ShardRun* run,
                        const PersistentForestIndex::TxnOptions& txn) {
    return shards_[run->shard]->BulkAdd(run->bags, nullptr, txn);
  };
  return GroupCommit(&runs, pool, cursor, prepare);
}

StatusOr<ForestIndex> ShardedStore::MaterializeForest() {
  StatusOr<ForestIndex> merged = shards_[0]->MaterializeForest();
  PQIDX_RETURN_IF_ERROR(merged.status());
  ForestIndex forest = std::move(merged).value();
  for (int k = 1; k < shard_count(); ++k) {
    StatusOr<ForestIndex> part = shards_[k]->MaterializeForest();
    PQIDX_RETURN_IF_ERROR(part.status());
    for (TreeId id : part->TreeIds()) {
      forest.AddIndex(id, *part->Find(id));
    }
  }
  return forest;
}

Status ShardedStore::RemoveTree(TreeId id) {
  Status st = shards_[ShardOf(id)]->RemoveTree(id);
  if (st.ok()) UpdateShardGauges();
  return st;
}

StatusOr<std::vector<LookupResult>> ShardedStore::Lookup(
    const PqGramIndex& query, double tau) {
  std::vector<LookupResult> results;
  for (const auto& shard : shards_) {
    StatusOr<std::vector<LookupResult>> part = shard->Lookup(query, tau);
    PQIDX_RETURN_IF_ERROR(part.status());
    results.insert(results.end(), part->begin(), part->end());
  }
  std::sort(results.begin(), results.end(),
            [](const LookupResult& a, const LookupResult& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.tree_id < b.tree_id);
            });
  return results;
}

void ShardedStore::CheckConsistency() {
  for (const auto& shard : shards_) shard->CheckConsistency();
}

}  // namespace pqidx
