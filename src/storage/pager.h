// Page-oriented file access with a small buffer pool and write-ahead
// logging: the storage substrate under the persistent index.
//
// The file is an array of fixed-size pages. Reads go through an LRU
// buffer pool; writes mark pages dirty in the pool. Commit() makes all
// changes since the previous commit durable and atomic:
//
//   1. full images of every dirty page are appended to a sidecar WAL
//      file (<path>.wal) and fsync'ed, then sealed with a commit record;
//   2. the dirty pages are written in place and fsync'ed;
//   3. the WAL is truncated.
//
// Open() replays a sealed WAL left behind by a crash between (1) and (3)
// and discards an unsealed one, so the main file always reflects the
// last successful Commit(). Page images in the WAL carry checksums;
// torn WAL tails are detected and ignored.

#ifndef PQIDX_STORAGE_PAGER_H_
#define PQIDX_STORAGE_PAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace pqidx {

inline constexpr int kPageSize = 4096;
using PageId = uint32_t;

class Pager {
 public:
  // `pool_pages` bounds the buffer pool (minimum 8). `metric_prefix`
  // names the registry cells ("pager" by default -> "pager.cache_hits",
  // ...); sharded stores pass "pager.s<k>" so per-shard I/O is
  // distinguishable in `kStatsSnapshot`.
  explicit Pager(int pool_pages = 256, std::string metric_prefix = "pager");
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  // Opens (or with `create` initializes) the page file at `path`,
  // replaying or discarding any leftover WAL. With `defer_sealed_wal`,
  // a *sealed* WAL is parsed but neither replayed nor removed: the
  // caller inspects its images (ReadDeferredWalPage) and then decides
  // with ResolveDeferredWal whether the transaction commits or rolls
  // back -- the hook sharded-store recovery uses to land a torn
  // multi-shard group on a consistent cut. Unsealed/torn WALs are
  // discarded as usual.
  Status Open(const std::string& path, bool create,
              bool defer_sealed_wal = false);
  Status Close();
  bool is_open() const { return file_ != nullptr; }

  // Number of pages in the file (including pages appended since the last
  // commit).
  PageId page_count() const { return page_count_; }

  // Appends a zeroed page and returns its id.
  StatusOr<PageId> AllocatePage();

  // Returns a borrowed pointer to the page's bytes, valid until the next
  // Pager call. `Read` misses fetch from disk.
  StatusOr<const uint8_t*> ReadPage(PageId id);
  // As ReadPage, but marks the page dirty; changes become durable at the
  // next Commit.
  StatusOr<uint8_t*> MutablePage(PageId id);

  // Durably and atomically applies all changes since the last Commit.
  Status Commit();

  // Two-phase variant of Commit() for multi-shard group commit.
  // PrepareCommit runs step (1): the transaction's page images are
  // durable in the sealed WAL but the main file is untouched, so the
  // outcome is still two-sided -- FinishPreparedCommit applies it in
  // place (steps 2-3), AbortPreparedCommit drops the WAL and rolls the
  // pool back. A crash between prepare and finish leaves the sealed
  // WAL for Open() to replay (or for deferred-WAL recovery to judge).
  Status PrepareCommit();
  Status FinishPreparedCommit();
  Status AbortPreparedCommit();
  bool prepared() const { return prepared_; }

  // Drops uncommitted changes (dirty pool pages and pages allocated
  // since the last commit).
  Status Rollback();

  // --- deferred-WAL recovery (Open with defer_sealed_wal) -------------------

  // True while a sealed WAL from a previous run is parked awaiting
  // ResolveDeferredWal; all page operations fail until it is resolved.
  bool has_deferred_wal() const { return deferred_pending_; }
  // Copies the deferred transaction's image of `id` (kPageSize bytes)
  // into `out`; NotFound if the transaction did not touch that page.
  Status ReadDeferredWalPage(PageId id, uint8_t* out) const;
  // Replays (commit) or discards (roll back) the parked WAL.
  Status ResolveDeferredWal(bool replay);

  // --- test hooks -----------------------------------------------------------

  // Runs steps (1)-(2) of Commit() but "crashes" at the configured point,
  // leaving the files exactly as a real crash would. The pager becomes
  // unusable; reopen to recover.
  enum class CrashPoint {
    kAfterWalSeal,    // WAL sealed, main file untouched
    kDuringInPlace,   // WAL sealed, only the first dirty page written
  };
  Status CommitWithCrash(CrashPoint point);

  // Simulates process death at an arbitrary point: closes the file
  // handle and drops all volatile state, leaving the on-disk files
  // exactly as they are (including a prepared-but-unfinished WAL). The
  // pager becomes unusable; reopen to recover.
  void CrashAbandon();

  // Simulates an I/O failure: the next `after` raw file writes succeed,
  // then every write fails until the pager is reopened. A Commit that
  // fails mid-transaction poisons the pager (the in-memory pool, the WAL
  // and the file may disagree); every subsequent operation then fails
  // with FAILED_PRECONDITION and the caller must reopen, which recovers
  // to the last durable state.
  void InjectWriteFailureAfter(int after) { fail_after_writes_ = after; }

  bool poisoned() const { return poisoned_; }

  int64_t commits() const { return commits_; }
  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_misses() const { return cache_misses_; }

  // Per-instance recovery/durability accounting (also mirrored into the
  // process-wide Metrics::Default() registry under "pager.*").
  int64_t fsyncs() const { return fsyncs_; }
  int64_t wal_bytes() const { return wal_bytes_; }
  // WALs replayed (sealed -> applied) / discarded (unsealed or torn) by
  // Open() on this instance.
  int64_t wal_replays() const { return wal_replays_; }
  int64_t wal_discards() const { return wal_discards_; }

 private:
  // `lru_` holds only clean frames (the eviction candidates); a dirty
  // frame is pinned until Commit and leaves the list, so eviction never
  // scans past pinned pages -- a transaction dirtying more pages than
  // the pool holds stays O(1) per fault instead of O(dirty).
  struct Frame {
    std::vector<uint8_t> data;
    bool dirty = false;
    bool in_lru = false;
    std::list<PageId>::iterator lru_pos;
  };

  std::string WalPath() const { return path_ + ".wal"; }

  // Raw write with the failure-injection hook.
  bool WriteRawChecked(std::FILE* file, const void* data, size_t size);
  // fflush + fsync, counted into fsyncs_ and the registry.
  Status SyncCounted(std::FILE* file);
  Status PoisonedError() const;

  StatusOr<Frame*> GetFrame(PageId id, bool fetch_from_disk);
  Status EvictIfNeeded();
  // Pins the frame until the next Commit (removes it from `lru_`).
  void MarkDirty(Frame* frame);
  // Re-admits a committed frame as an eviction candidate.
  void MarkClean(PageId id, Frame* frame);
  Status WriteFrameToFile(PageId id, const Frame& frame);
  Status ReadFromFile(PageId id, uint8_t* out);

  // WAL: gather dirty pages, write + seal; returns the dirty page ids.
  StatusOr<std::vector<PageId>> WriteWal();
  Status ApplyDirtyInPlace(const std::vector<PageId>& dirty, int limit);

  // A parsed WAL page image (recovery and deferred-WAL inspection).
  struct WalImage {
    PageId id;
    std::vector<uint8_t> data;
  };
  // Parses <path>.wal if present. Returns false when no WAL file
  // exists; otherwise fills `records` with the checksummed prefix and
  // sets `sealed`/`sealed_page_count` from a valid seal record.
  bool ParseWal(std::vector<WalImage>* records, bool* sealed,
                uint32_t* sealed_page_count);
  // Applies a sealed WAL's images to the main file (replay), counts the
  // replay, and removes the WAL file.
  Status ApplySealedWal(const std::vector<WalImage>& records,
                        uint32_t sealed_page_count, int64_t start_us);
  Status ReplayOrDiscardWal();
  Status RefreshPageCountFromFile();

  std::string path_;
  std::FILE* file_ = nullptr;
  PageId page_count_ = 0;
  PageId committed_page_count_ = 0;
  int pool_capacity_;
  std::unordered_map<PageId, Frame> pool_;
  std::list<PageId> lru_;  // clean frames only; front = most recent
  int64_t commits_ = 0;
  int fail_after_writes_ = -1;  // < 0: no injection
  bool poisoned_ = false;
  // Two-phase commit state: set by PrepareCommit, consumed by
  // Finish/AbortPreparedCommit.
  bool prepared_ = false;
  std::vector<PageId> prepared_dirty_;
  int64_t prepared_start_us_ = 0;
  // Deferred sealed-WAL state (Open with defer_sealed_wal).
  bool deferred_pending_ = false;
  std::vector<WalImage> deferred_records_;
  uint32_t deferred_page_count_ = 0;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  int64_t fsyncs_ = 0;
  int64_t wal_bytes_ = 0;
  int64_t wal_replays_ = 0;
  int64_t wal_discards_ = 0;

  // Registry cells (process-wide sums across all pagers); registered
  // once in the constructor so the hot path is a relaxed atomic add.
  Counter* m_cache_hits_;
  Counter* m_cache_misses_;
  Counter* m_commits_;
  Counter* m_fsyncs_;
  Counter* m_wal_bytes_;
  Counter* m_wal_replays_;
  Counter* m_wal_discards_;
  Histogram* m_commit_us_;
  Histogram* m_replay_us_;
};

}  // namespace pqidx

#endif  // PQIDX_STORAGE_PAGER_H_
