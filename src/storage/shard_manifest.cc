#include "storage/shard_manifest.h"

#include <cstring>

namespace pqidx {
namespace {

uint64_t Fnv1a(const uint8_t* data, size_t size, uint64_t seed = 0) {
  uint64_t hash = 1469598103934665603ULL ^ seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

template <typename T>
T Load(const uint8_t* p, size_t offset) {
  T value;
  std::memcpy(&value, p + offset, sizeof(T));
  return value;
}

template <typename T>
void StoreAt(uint8_t* p, size_t offset, T value) {
  std::memcpy(p + offset, &value, sizeof(T));
}

uint32_t SlotCrc(uint64_t ticket, uint64_t cursor) {
  uint8_t bytes[16];
  StoreAt(bytes, 0, ticket);
  StoreAt(bytes, 8, cursor);
  return static_cast<uint32_t>(Fnv1a(bytes, sizeof(bytes), 0x534c4f54));
}

// Parses one slot; returns true when the checksum matches.
bool ParseSlot(const uint8_t* p, size_t offset, uint64_t* ticket,
               uint64_t* cursor) {
  *ticket = Load<uint64_t>(p, offset);
  *cursor = Load<uint64_t>(p, offset + 8);
  return Load<uint32_t>(p, offset + 16) == SlotCrc(*ticket, *cursor);
}

}  // namespace

StatusOr<ShardManifest> DecodeShardManifest(std::string_view bytes) {
  if (bytes.size() < kShardManifestSize) {
    return DataLossError("shard manifest truncated");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(bytes.data());
  if (Load<uint32_t>(p, 0) != kShardManifestMagic) {
    return DataLossError("not a pqidx shard manifest");
  }
  if (Load<uint32_t>(p, 4) != kShardManifestVersion) {
    return DataLossError("unsupported shard manifest version");
  }
  ShardManifest manifest;
  manifest.shard_count = Load<uint32_t>(p, 8);
  if (manifest.shard_count == 0 || manifest.shard_count > kMaxStoreShards) {
    return DataLossError("shard manifest has an invalid shard count");
  }
  manifest.routing = Load<uint32_t>(p, 12);
  if (manifest.routing != kShardRoutingModulo) {
    return DataLossError("unknown shard routing mode");
  }
  uint64_t ticket_a = 0, cursor_a = 0, ticket_b = 0, cursor_b = 0;
  const bool a_ok = ParseSlot(p, kShardManifestSlotAOff, &ticket_a, &cursor_a);
  const bool b_ok = ParseSlot(p, kShardManifestSlotBOff, &ticket_b, &cursor_b);
  if (!a_ok && !b_ok) {
    return DataLossError("shard manifest has no valid commit slot");
  }
  // The valid slot with the higher ticket is the durable commit point
  // (a torn write invalidates at most the slot being written).
  if (b_ok && (!a_ok || ticket_b >= ticket_a)) {
    manifest.committed_ticket = ticket_b;
    manifest.committed_cursor = cursor_b;
    manifest.committed_in_slot_b = true;
  } else {
    manifest.committed_ticket = ticket_a;
    manifest.committed_cursor = cursor_a;
    manifest.committed_in_slot_b = false;
  }
  return manifest;
}

void EncodeShardManifestSlot(uint64_t ticket, uint64_t cursor,
                             uint8_t out[kShardManifestSlotSize]) {
  StoreAt(out, 0, ticket);
  StoreAt(out, 8, cursor);
  StoreAt(out, 16, SlotCrc(ticket, cursor));
  StoreAt(out, 20, uint32_t{0});
}

std::string EncodeShardManifest(const ShardManifest& manifest) {
  std::string bytes(kShardManifestSize, '\0');
  uint8_t* p = reinterpret_cast<uint8_t*>(bytes.data());
  StoreAt(p, 0, kShardManifestMagic);
  StoreAt(p, 4, kShardManifestVersion);
  StoreAt(p, 8, manifest.shard_count);
  StoreAt(p, 12, manifest.routing);
  EncodeShardManifestSlot(manifest.committed_ticket,
                          manifest.committed_cursor,
                          p + kShardManifestSlotAOff);
  EncodeShardManifestSlot(manifest.committed_ticket,
                          manifest.committed_cursor,
                          p + kShardManifestSlotBOff);
  return bytes;
}

}  // namespace pqidx
