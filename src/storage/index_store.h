// On-disk persistence for forest indexes.
//
// The pq-gram index is persistent (paper abstract): it outlives the
// process and is maintained incrementally instead of being rebuilt. Files
// carry a magic tag and format version so stale or foreign files are
// rejected instead of misread.

#ifndef PQIDX_STORAGE_INDEX_STORE_H_
#define PQIDX_STORAGE_INDEX_STORE_H_

#include <string>

#include "common/status.h"
#include "core/forest_index.h"
#include "edit/edit_log.h"

namespace pqidx {

// Writes `forest` to `path`, replacing any existing file.
Status SaveForestIndex(const ForestIndex& forest, const std::string& path);

// Reads a forest index previously written by SaveForestIndex.
StatusOr<ForestIndex> LoadForestIndex(const std::string& path);

// Edit logs as files: ship a recorded inverse log next to the document it
// applies to (node ids in the log are only meaningful relative to that
// exact tree, e.g. one stored with SaveTree).
Status SaveEditLog(const EditLog& log, const std::string& path);
StatusOr<EditLog> LoadEditLog(const std::string& path);

}  // namespace pqidx

#endif  // PQIDX_STORAGE_INDEX_STORE_H_
