#include "storage/pager.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace pqidx {
namespace {

constexpr uint32_t kWalMagic = 0x50515741;   // "PQWA"
constexpr uint32_t kSealMagic = 0x53454121;  // "SEA!"

uint64_t Fnv1a(const uint8_t* data, size_t size, uint64_t seed = 0) {
  uint64_t hash = 1469598103934665603ULL ^ seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

Status SyncFile(std::FILE* file) {
  if (std::fflush(file) != 0 || fsync(fileno(file)) != 0) {
    return IoError("fsync failed");
  }
  return Status::Ok();
}

// Little helpers for raw binary file records.
bool WriteRaw(std::FILE* file, const void* data, size_t size) {
  return std::fwrite(data, 1, size, file) == size;
}
bool ReadRaw(std::FILE* file, void* data, size_t size) {
  return std::fread(data, 1, size, file) == size;
}

}  // namespace

Pager::Pager(int pool_pages, std::string metric_prefix)
    : pool_capacity_(std::max(pool_pages, 8)),
      m_cache_hits_(Metrics::Default().counter(metric_prefix + ".cache_hits")),
      m_cache_misses_(
          Metrics::Default().counter(metric_prefix + ".cache_misses")),
      m_commits_(Metrics::Default().counter(metric_prefix + ".commits")),
      m_fsyncs_(Metrics::Default().counter(metric_prefix + ".fsyncs")),
      m_wal_bytes_(Metrics::Default().counter(metric_prefix + ".wal_bytes")),
      m_wal_replays_(
          Metrics::Default().counter(metric_prefix + ".wal_replays")),
      m_wal_discards_(
          Metrics::Default().counter(metric_prefix + ".wal_discards")),
      m_commit_us_(Metrics::Default().histogram(metric_prefix + ".commit_us")),
      m_replay_us_(
          Metrics::Default().histogram(metric_prefix + ".replay_us")) {}

Pager::~Pager() {
  if (file_ != nullptr) {
    Close().ok();  // best effort; Close commits nothing on its own
  }
}

bool Pager::WriteRawChecked(std::FILE* file, const void* data,
                            size_t size) {
  if (fail_after_writes_ >= 0) {
    if (fail_after_writes_ == 0) return false;  // injected failure
    --fail_after_writes_;
  }
  return WriteRaw(file, data, size);
}

Status Pager::SyncCounted(std::FILE* file) {
  ++fsyncs_;
  m_fsyncs_->Increment();
  return SyncFile(file);
}

Status Pager::PoisonedError() const {
  return FailedPreconditionError(
      "pager poisoned by a failed commit; reopen to recover");
}

namespace {
Status DeferredPendingError() {
  return FailedPreconditionError(
      "a sealed WAL is parked; call ResolveDeferredWal before page "
      "operations");
}
}  // namespace

Status Pager::Open(const std::string& path, bool create,
                   bool defer_sealed_wal) {
  PQIDX_CHECK(file_ == nullptr);
  path_ = path;
  poisoned_ = false;
  fail_after_writes_ = -1;
  prepared_ = false;
  prepared_dirty_.clear();
  deferred_pending_ = false;
  deferred_records_.clear();
  deferred_page_count_ = 0;
  file_ = std::fopen(path.c_str(), create ? "wb+" : "rb+");
  if (file_ == nullptr) {
    return IoError("cannot open page file: " + path);
  }
  if (create) {
    std::remove(WalPath().c_str());
    page_count_ = 0;
  } else {
    if (defer_sealed_wal) {
      std::vector<WalImage> records;
      bool sealed = false;
      uint32_t sealed_page_count = 0;
      if (ParseWal(&records, &sealed, &sealed_page_count)) {
        if (sealed) {
          // Park the transaction: the caller inspects it and resolves.
          deferred_pending_ = true;
          deferred_records_ = std::move(records);
          deferred_page_count_ = sealed_page_count;
        } else {
          ++wal_discards_;
          m_wal_discards_->Increment();
          std::remove(WalPath().c_str());
        }
      }
    } else {
      PQIDX_RETURN_IF_ERROR(ReplayOrDiscardWal());
    }
    PQIDX_RETURN_IF_ERROR(RefreshPageCountFromFile());
  }
  committed_page_count_ = page_count_;
  return Status::Ok();
}

Status Pager::RefreshPageCountFromFile() {
  if (std::fseek(file_, 0, SEEK_END) != 0) return IoError("seek failed");
  long size = std::ftell(file_);
  if (size < 0 || size % kPageSize != 0) {
    return DataLossError("page file size is not a multiple of the page "
                         "size: " + path_);
  }
  if (size / kPageSize > static_cast<long>(UINT32_MAX)) {
    return DataLossError("page file exceeds the 32-bit page id space: " +
                         path_);
  }
  page_count_ = static_cast<PageId>(size / kPageSize);
  return Status::Ok();
}

Status Pager::Close() {
  if (file_ == nullptr) return Status::Ok();
  std::fclose(file_);
  file_ = nullptr;
  pool_.clear();
  lru_.clear();
  return Status::Ok();
}

StatusOr<PageId> Pager::AllocatePage() {
  if (poisoned_) return PoisonedError();
  if (deferred_pending_) return DeferredPendingError();
  PQIDX_CHECK(file_ != nullptr);
  PageId id = page_count_++;
  StatusOr<Frame*> frame = GetFrame(id, /*fetch_from_disk=*/false);
  PQIDX_RETURN_IF_ERROR(frame.status());
  MarkDirty(*frame);
  std::memset((*frame)->data.data(), 0, kPageSize);
  return id;
}

StatusOr<const uint8_t*> Pager::ReadPage(PageId id) {
  if (poisoned_) return PoisonedError();
  if (deferred_pending_) return DeferredPendingError();
  if (id >= page_count_) return OutOfRangeError("page id out of range");
  StatusOr<Frame*> frame = GetFrame(id, /*fetch_from_disk=*/true);
  PQIDX_RETURN_IF_ERROR(frame.status());
  return static_cast<const uint8_t*>((*frame)->data.data());
}

StatusOr<uint8_t*> Pager::MutablePage(PageId id) {
  if (poisoned_) return PoisonedError();
  if (deferred_pending_) return DeferredPendingError();
  if (id >= page_count_) return OutOfRangeError("page id out of range");
  StatusOr<Frame*> frame = GetFrame(id, /*fetch_from_disk=*/true);
  PQIDX_RETURN_IF_ERROR(frame.status());
  MarkDirty(*frame);
  return (*frame)->data.data();
}

StatusOr<Pager::Frame*> Pager::GetFrame(PageId id, bool fetch_from_disk) {
  auto it = pool_.find(id);
  if (it != pool_.end()) {
    ++cache_hits_;
    m_cache_hits_->Increment();
    if (it->second.in_lru) {
      lru_.erase(it->second.lru_pos);
      lru_.push_front(id);
      it->second.lru_pos = lru_.begin();
    }
    return &it->second;
  }
  ++cache_misses_;
  m_cache_misses_->Increment();
  PQIDX_RETURN_IF_ERROR(EvictIfNeeded());
  Frame& frame = pool_[id];
  frame.data.assign(kPageSize, 0);
  lru_.push_front(id);
  frame.lru_pos = lru_.begin();
  frame.in_lru = true;
  if (fetch_from_disk && id < committed_page_count_) {
    Status status = ReadFromFile(id, frame.data.data());
    if (!status.ok()) {
      lru_.erase(frame.lru_pos);
      pool_.erase(id);
      return status;
    }
  }
  return &frame;
}

void Pager::MarkDirty(Frame* frame) {
  if (frame->dirty) return;
  frame->dirty = true;
  if (frame->in_lru) {
    lru_.erase(frame->lru_pos);
    frame->in_lru = false;
  }
}

void Pager::MarkClean(PageId id, Frame* frame) {
  frame->dirty = false;
  if (!frame->in_lru) {
    lru_.push_front(id);
    frame->lru_pos = lru_.begin();
    frame->in_lru = true;
  }
}

Status Pager::EvictIfNeeded() {
  // `lru_` holds only clean frames, so eviction pops from the back
  // without scanning. Dirty pages are pinned until the next Commit, so
  // the pool may temporarily exceed capacity under write-heavy
  // transactions; the loop drains the excess as soon as commits free
  // eviction candidates again.
  while (static_cast<int>(pool_.size()) >= pool_capacity_ &&
         !lru_.empty()) {
    PageId victim = lru_.back();
    lru_.pop_back();
    pool_.erase(victim);
  }
  return Status::Ok();
}

Status Pager::ReadFromFile(PageId id, uint8_t* out) {
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0) {
    return IoError("seek failed");
  }
  if (!ReadRaw(file_, out, kPageSize)) {
    return IoError("short page read");
  }
  return Status::Ok();
}

Status Pager::WriteFrameToFile(PageId id, const Frame& frame) {
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0) {
    return IoError("seek failed");
  }
  if (!WriteRawChecked(file_, frame.data.data(), kPageSize)) {
    return IoError("short page write");
  }
  return Status::Ok();
}

StatusOr<std::vector<PageId>> Pager::WriteWal() {
  std::vector<PageId> dirty;
  for (const auto& [id, frame] : pool_) {
    if (frame.dirty) dirty.push_back(id);
  }
  std::sort(dirty.begin(), dirty.end());
  if (dirty.empty() && page_count_ == committed_page_count_) {
    return dirty;  // nothing to do
  }
  std::FILE* wal = std::fopen(WalPath().c_str(), "wb");
  if (wal == nullptr) return IoError("cannot create WAL");
  bool ok = WriteRawChecked(wal, &kWalMagic, sizeof(kWalMagic));
  for (PageId id : dirty) {
    const Frame& frame = pool_.at(id);
    uint64_t checksum = Fnv1a(frame.data.data(), kPageSize, id);
    ok = ok && WriteRawChecked(wal, &id, sizeof(id)) &&
         WriteRawChecked(wal, &checksum, sizeof(checksum)) &&
         WriteRawChecked(wal, frame.data.data(), kPageSize);
  }
  uint32_t num_records = static_cast<uint32_t>(dirty.size());
  uint64_t seal_checksum =
      Fnv1a(reinterpret_cast<const uint8_t*>(&num_records),
            sizeof(num_records), page_count_);
  ok = ok && WriteRawChecked(wal, &kSealMagic, sizeof(kSealMagic)) &&
       WriteRawChecked(wal, &num_records, sizeof(num_records)) &&
       WriteRawChecked(wal, &page_count_, sizeof(page_count_)) &&
       WriteRawChecked(wal, &seal_checksum, sizeof(seal_checksum));
  Status sync = SyncCounted(wal);
  std::fclose(wal);
  if (!ok || !sync.ok()) return IoError("WAL write failed");
  int64_t bytes =
      static_cast<int64_t>(sizeof(kWalMagic)) +
      static_cast<int64_t>(dirty.size()) *
          (sizeof(PageId) + sizeof(uint64_t) + kPageSize) +
      sizeof(kSealMagic) + sizeof(num_records) + sizeof(page_count_) +
      sizeof(seal_checksum);
  wal_bytes_ += bytes;
  m_wal_bytes_->Add(bytes);
  return dirty;
}

Status Pager::ApplyDirtyInPlace(const std::vector<PageId>& dirty,
                                int limit) {
  int written = 0;
  for (PageId id : dirty) {
    if (limit >= 0 && written >= limit) break;
    PQIDX_RETURN_IF_ERROR(WriteFrameToFile(id, pool_.at(id)));
    ++written;
  }
  return Status::Ok();
}

Status Pager::Commit() {
  PQIDX_RETURN_IF_ERROR(PrepareCommit());
  return FinishPreparedCommit();
}

Status Pager::PrepareCommit() {
  if (poisoned_) return PoisonedError();
  if (deferred_pending_) return DeferredPendingError();
  PQIDX_CHECK(file_ != nullptr);
  PQIDX_CHECK(!prepared_);
  prepared_start_us_ = Metrics::enabled() ? Metrics::NowUs() : 0;
  StatusOr<std::vector<PageId>> dirty = WriteWal();
  if (!dirty.ok()) {
    // The WAL never sealed: nothing durable happened, but the sidecar
    // file is in an unknown state. Poison; reopen discards the torn WAL.
    poisoned_ = true;
    return dirty.status();
  }
  prepared_ = true;
  prepared_dirty_ = std::move(*dirty);
  return Status::Ok();
}

Status Pager::FinishPreparedCommit() {
  if (poisoned_) return PoisonedError();
  PQIDX_CHECK(file_ != nullptr);
  PQIDX_CHECK(prepared_);
  prepared_ = false;
  std::vector<PageId> dirty = std::move(prepared_dirty_);
  prepared_dirty_.clear();
  if (dirty.empty() && page_count_ == committed_page_count_) {
    return Status::Ok();  // nothing was written: WriteWal no-op'ed
  }
  Status applied = ApplyDirtyInPlace(dirty, /*limit=*/-1);
  Status synced = applied.ok() ? SyncCounted(file_) : applied;
  if (!synced.ok()) {
    // The WAL is sealed, the main file may be torn: durable but not
    // usable in-process. Poison; reopen replays the WAL.
    poisoned_ = true;
    return synced;
  }
  std::remove(WalPath().c_str());
  for (PageId id : dirty) {
    MarkClean(id, &pool_.at(id));
  }
  committed_page_count_ = page_count_;
  ++commits_;
  m_commits_->Increment();
  if (Metrics::enabled()) {
    m_commit_us_->Record(Metrics::NowUs() - prepared_start_us_);
  }
  return Status::Ok();
}

Status Pager::AbortPreparedCommit() {
  if (poisoned_) return PoisonedError();
  PQIDX_CHECK(file_ != nullptr);
  PQIDX_CHECK(prepared_);
  prepared_ = false;
  prepared_dirty_.clear();
  // Drop the sealed WAL first so a crash mid-abort cannot resurrect the
  // transaction, then roll the in-memory state back to the last commit.
  std::remove(WalPath().c_str());
  return Rollback();
}

Status Pager::Rollback() {
  // A poisoned (or crash-simulated) handle has nothing left to roll
  // back; refuse instead of touching the dead file.
  if (poisoned_) return PoisonedError();
  PQIDX_CHECK(file_ != nullptr);
  pool_.clear();
  lru_.clear();
  page_count_ = committed_page_count_;
  return Status::Ok();
}

Status Pager::CommitWithCrash(CrashPoint point) {
  PQIDX_CHECK(file_ != nullptr);
  StatusOr<std::vector<PageId>> dirty = WriteWal();
  PQIDX_RETURN_IF_ERROR(dirty.status());
  if (point == CrashPoint::kDuringInPlace) {
    PQIDX_RETURN_IF_ERROR(ApplyDirtyInPlace(*dirty, /*limit=*/1));
    // Deliberately dropped: we are simulating a crash mid-commit, so a
    // sync failure here is indistinguishable from the crash itself.
    (void)SyncFile(file_);
  }
  // Simulate process death: drop all volatile state without cleanup.
  // Poison the handle so concurrent users (a server pipelining further
  // commits through this store) get clean errors instead of touching
  // the dead file; only reopening recovers.
  CrashAbandon();
  return Status::Ok();
}

void Pager::CrashAbandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  pool_.clear();
  lru_.clear();
  prepared_ = false;
  prepared_dirty_.clear();
  poisoned_ = true;
}

bool Pager::ParseWal(std::vector<WalImage>* records, bool* sealed,
                     uint32_t* sealed_page_count) {
  records->clear();
  *sealed = false;
  *sealed_page_count = 0;
  std::FILE* wal = std::fopen(WalPath().c_str(), "rb");
  if (wal == nullptr) return false;  // no WAL: clean shutdown

  uint32_t magic = 0;
  if (ReadRaw(wal, &magic, sizeof(magic)) && magic == kWalMagic) {
    for (;;) {
      uint32_t id_or_seal;
      if (!ReadRaw(wal, &id_or_seal, sizeof(id_or_seal))) break;
      if (id_or_seal == kSealMagic) {
        uint32_t num_records, new_page_count;
        uint64_t seal_checksum;
        if (!ReadRaw(wal, &num_records, sizeof(num_records)) ||
            !ReadRaw(wal, &new_page_count, sizeof(new_page_count)) ||
            !ReadRaw(wal, &seal_checksum, sizeof(seal_checksum))) {
          break;
        }
        if (num_records == records->size() &&
            seal_checksum ==
                Fnv1a(reinterpret_cast<const uint8_t*>(&num_records),
                      sizeof(num_records), new_page_count)) {
          *sealed = true;
          *sealed_page_count = new_page_count;
        }
        break;
      }
      WalImage record;
      record.id = id_or_seal;
      record.data.resize(kPageSize);
      uint64_t checksum;
      if (!ReadRaw(wal, &checksum, sizeof(checksum)) ||
          !ReadRaw(wal, record.data.data(), kPageSize) ||
          checksum != Fnv1a(record.data.data(), kPageSize, record.id)) {
        break;  // torn tail
      }
      records->push_back(std::move(record));
    }
  }
  std::fclose(wal);
  return true;
}

Status Pager::ApplySealedWal(const std::vector<WalImage>& records,
                             uint32_t sealed_page_count, int64_t start_us) {
  // The transaction was durable: finish applying it. A record id at or
  // beyond the sealed page count can only come from corruption the
  // per-record checksums missed; refuse to seek the main file to an
  // arbitrary offset on its say-so.
  for (const WalImage& record : records) {
    if (record.id >= sealed_page_count) {
      return DataLossError("WAL record beyond sealed page count");
    }
    if (std::fseek(file_, static_cast<long>(record.id) * kPageSize,
                   SEEK_SET) != 0 ||
        !WriteRaw(file_, record.data.data(), kPageSize)) {
      return IoError("WAL replay write failed");
    }
  }
  // Pages allocated but never dirtied materialize as zero pages.
  if (sealed_page_count > 0) {
    long want = static_cast<long>(sealed_page_count) * kPageSize;
    if (std::fseek(file_, 0, SEEK_END) != 0) return IoError("seek failed");
    long have = std::ftell(file_);
    if (have < want) {
      std::vector<uint8_t> zeros(kPageSize, 0);
      while (have < want) {
        if (!WriteRaw(file_, zeros.data(), kPageSize)) {
          return IoError("WAL replay extend failed");
        }
        have += kPageSize;
      }
    }
  }
  PQIDX_RETURN_IF_ERROR(SyncCounted(file_));
  ++wal_replays_;
  m_wal_replays_->Increment();
  if (Metrics::enabled()) {
    m_replay_us_->Record(Metrics::NowUs() - start_us);
  }
  std::remove(WalPath().c_str());
  return Status::Ok();
}

Status Pager::ReplayOrDiscardWal() {
  const int64_t start_us = Metrics::enabled() ? Metrics::NowUs() : 0;
  std::vector<WalImage> records;
  bool sealed = false;
  uint32_t sealed_page_count = 0;
  if (!ParseWal(&records, &sealed, &sealed_page_count)) {
    return Status::Ok();
  }
  if (sealed) {
    return ApplySealedWal(records, sealed_page_count, start_us);
  }
  ++wal_discards_;
  m_wal_discards_->Increment();
  std::remove(WalPath().c_str());
  return Status::Ok();
}

Status Pager::ReadDeferredWalPage(PageId id, uint8_t* out) const {
  if (!deferred_pending_) {
    return FailedPreconditionError("no deferred WAL is parked");
  }
  // The dirty set is unique per commit, but scan backwards anyway so a
  // hypothetical duplicate resolves to the last (winning) image.
  for (auto it = deferred_records_.rbegin(); it != deferred_records_.rend();
       ++it) {
    if (it->id == id) {
      std::memcpy(out, it->data.data(), kPageSize);
      return Status::Ok();
    }
  }
  return NotFoundError("deferred WAL does not touch page " +
                       std::to_string(id));
}

Status Pager::ResolveDeferredWal(bool replay) {
  if (!deferred_pending_) {
    return FailedPreconditionError("no deferred WAL is parked");
  }
  const int64_t start_us = Metrics::enabled() ? Metrics::NowUs() : 0;
  deferred_pending_ = false;
  std::vector<WalImage> records = std::move(deferred_records_);
  deferred_records_.clear();
  const uint32_t sealed_page_count = deferred_page_count_;
  deferred_page_count_ = 0;
  if (replay) {
    PQIDX_RETURN_IF_ERROR(ApplySealedWal(records, sealed_page_count,
                                         start_us));
  } else {
    ++wal_discards_;
    m_wal_discards_->Increment();
    std::remove(WalPath().c_str());
  }
  PQIDX_RETURN_IF_ERROR(RefreshPageCountFromFile());
  committed_page_count_ = page_count_;
  return Status::Ok();
}

}  // namespace pqidx
