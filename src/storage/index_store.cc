#include "storage/index_store.h"

#include "common/serde.h"

namespace pqidx {
namespace {

constexpr uint32_t kMagic = 0x50514758;     // "PQGX"
constexpr uint32_t kLogMagic = 0x50514c47;  // "PQLG"
constexpr uint32_t kVersion = 1;

}  // namespace

Status SaveForestIndex(const ForestIndex& forest, const std::string& path) {
  ByteWriter writer;
  writer.PutU32(kMagic);
  writer.PutU32(kVersion);
  forest.Serialize(&writer);
  return WriteFile(path, writer.data());
}

StatusOr<ForestIndex> LoadForestIndex(const std::string& path) {
  std::string data;
  PQIDX_RETURN_IF_ERROR(ReadFile(path, &data));
  ByteReader reader(data);
  uint32_t magic, version;
  PQIDX_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kMagic) return DataLossError("not a pqidx index file: " + path);
  PQIDX_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != kVersion) {
    return DataLossError("unsupported index file version");
  }
  StatusOr<ForestIndex> forest = ForestIndex::Deserialize(&reader);
  PQIDX_RETURN_IF_ERROR(forest.status());
  if (!reader.AtEnd()) return DataLossError("trailing bytes in index file");
  return forest;
}

Status SaveEditLog(const EditLog& log, const std::string& path) {
  ByteWriter writer;
  writer.PutU32(kLogMagic);
  writer.PutU32(kVersion);
  log.Serialize(&writer);
  return WriteFile(path, writer.data());
}

StatusOr<EditLog> LoadEditLog(const std::string& path) {
  std::string data;
  PQIDX_RETURN_IF_ERROR(ReadFile(path, &data));
  ByteReader reader(data);
  uint32_t magic, version;
  PQIDX_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kLogMagic) return DataLossError("not a pqidx log file: " + path);
  PQIDX_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != kVersion) return DataLossError("unsupported log file version");
  StatusOr<EditLog> log = EditLog::Deserialize(&reader);
  PQIDX_RETURN_IF_ERROR(log.status());
  if (!reader.AtEnd()) return DataLossError("trailing bytes in log file");
  return log;
}

}  // namespace pqidx
