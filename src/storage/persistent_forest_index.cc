#include "storage/persistent_forest_index.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/metrics.h"
#include "core/incremental.h"

namespace pqidx {
namespace {

constexpr uint32_t kStoreMagic = 0x50515046;  // "PQPF"
constexpr uint32_t kStoreVersion = 1;

// Store meta (page 0) layout.
constexpr int kMagicOff = 0;
constexpr int kVersionOff = 4;
constexpr int kShapePOff = 8;
constexpr int kShapeQOff = 9;
constexpr int kHashMetaOff = 12;
constexpr int kCatalogHeadOff = 16;
// u64 replication cursor (service/replication.h). Added after v1 files
// already existed: the bytes were zero then, and cursor 0 means "never
// replicated", so old files stay readable without a version bump.
constexpr int kCursorOff = 20;
// u64 store commit ticket (storage/sharded_store.h). Same
// compatibility argument: pre-shard files read 0, and ticket 0 means
// "never group-committed", so no version bump either.
constexpr int kTicketOff = 28;

// Catalog page layout.
constexpr int kCatNextOff = 0;
constexpr int kCatCountOff = 4;
constexpr int kCatEntriesOff = 8;
constexpr int kCatEntrySize = 12;  // tree u32 + size i64
constexpr int kCatPerPage = (kPageSize - kCatEntriesOff) / kCatEntrySize;

template <typename T>
T Load(const uint8_t* page, int offset) {
  T value;
  std::memcpy(&value, page + offset, sizeof(T));
  return value;
}

template <typename T>
void Store(uint8_t* page, int offset, T value) {
  std::memcpy(page + offset, &value, sizeof(T));
}

// One (tree, fp) tuple delta tagged with its staging region and its
// destination bucket snapshot; the unit of the parallel δ-phase
// (flatten/hash in parallel, merge per region in parallel, apply
// serially in bucket order so page touches cluster).
struct StagedDelta {
  uint32_t region;
  uint32_t bucket;
  uint32_t tree;
  uint64_t fp;
  int64_t delta;
};

// Bench hook (SetBucketSortEnabled): the bucket-clustered apply order
// is on by default; BENCH_WRITE flips it off to measure the win.
std::atomic<bool> g_bucket_sort_enabled{true};

// How many staging regions a pool of `lanes` workers gets. More regions
// than lanes keeps the merge balanced when the hash skews; the cap keeps
// the per-region fixed cost negligible for small batches.
uint32_t StagingRegions(int lanes) {
  return static_cast<uint32_t>(std::min(64, std::max(1, lanes * 2)));
}

// Gathers region `region`'s tuples from the per-edit flats, orders them
// by (bucket, key) -- equal keys share a bucket, so coalescing below
// still sees duplicates adjacent -- and coalesces duplicate keys into
// net deltas (zero nets are dropped entirely). The bucket-major order
// is what clusters the serial apply's page touches; with the bench
// hook off it degrades to plain key order. Safe to run for distinct
// regions concurrently.
void MergeRegionRun(const std::vector<std::vector<StagedDelta>>& flat,
                    uint32_t region, std::vector<StagedDelta>* run) {
  for (const std::vector<StagedDelta>& edit_deltas : flat) {
    for (const StagedDelta& d : edit_deltas) {
      if (d.region == region) run->push_back(d);
    }
  }
  const bool by_bucket = g_bucket_sort_enabled.load(std::memory_order_relaxed);
  std::sort(run->begin(), run->end(),
            [by_bucket](const StagedDelta& a, const StagedDelta& b) {
              if (by_bucket && a.bucket != b.bucket) {
                return a.bucket < b.bucket;
              }
              return a.tree < b.tree || (a.tree == b.tree && a.fp < b.fp);
            });
  size_t w = 0;
  for (size_t i = 0; i < run->size();) {
    size_t k = i;
    int64_t net = 0;
    while (k < run->size() && (*run)[k].tree == (*run)[i].tree &&
           (*run)[k].fp == (*run)[i].fp) {
      net += (*run)[k].delta;
      ++k;
    }
    if (net != 0) {
      (*run)[w] = (*run)[i];
      (*run)[w].delta = net;
      ++w;
    }
    i = k;
  }
  run->resize(w);
}

}  // namespace

void PersistentForestIndex::SetBucketSortEnabled(bool enabled) {
  g_bucket_sort_enabled.store(enabled, std::memory_order_relaxed);
}

bool PersistentForestIndex::bucket_sort_enabled() {
  return g_bucket_sort_enabled.load(std::memory_order_relaxed);
}

StatusOr<std::unique_ptr<PersistentForestIndex>>
PersistentForestIndex::Create(const std::string& path, PqShape shape,
                              int pool_pages) {
  OpenOptions options;
  options.pool_pages = pool_pages;
  return Create(path, shape, options);
}

StatusOr<std::unique_ptr<PersistentForestIndex>>
PersistentForestIndex::Create(const std::string& path, PqShape shape,
                              const OpenOptions& options) {
  PQIDX_CHECK(shape.Valid());
  std::unique_ptr<PersistentForestIndex> store(new PersistentForestIndex(
      options.pool_pages, options.metric_prefix));
  PQIDX_RETURN_IF_ERROR(store->InitializeNew(path, shape));
  return store;
}

StatusOr<std::unique_ptr<PersistentForestIndex>>
PersistentForestIndex::Open(const std::string& path, int pool_pages) {
  OpenOptions options;
  options.pool_pages = pool_pages;
  return Open(path, options);
}

StatusOr<std::unique_ptr<PersistentForestIndex>>
PersistentForestIndex::Open(const std::string& path,
                            const OpenOptions& options) {
  std::unique_ptr<PersistentForestIndex> store(new PersistentForestIndex(
      options.pool_pages, options.metric_prefix));
  PQIDX_RETURN_IF_ERROR(store->OpenExisting(path, options));
  return store;
}

Status PersistentForestIndex::InitializeNew(const std::string& path,
                                            PqShape shape) {
  shape_ = shape;
  PQIDX_RETURN_IF_ERROR(pager_.Open(path, /*create=*/true));
  StatusOr<PageId> meta = pager_.AllocatePage();
  PQIDX_RETURN_IF_ERROR(meta.status());
  PQIDX_CHECK(*meta == 0);
  StatusOr<PageId> hash_meta = pager_.AllocatePage();
  PQIDX_RETURN_IF_ERROR(hash_meta.status());
  StatusOr<PageId> catalog = pager_.AllocatePage();
  PQIDX_RETURN_IF_ERROR(catalog.status());
  catalog_head_ = *catalog;
  {
    StatusOr<uint8_t*> page = pager_.MutablePage(0);
    PQIDX_RETURN_IF_ERROR(page.status());
    Store(*page, kMagicOff, kStoreMagic);
    Store(*page, kVersionOff, kStoreVersion);
    Store(*page, kShapePOff, static_cast<uint8_t>(shape.p));
    Store(*page, kShapeQOff, static_cast<uint8_t>(shape.q));
    Store(*page, kHashMetaOff, static_cast<uint32_t>(*hash_meta));
    Store(*page, kCatalogHeadOff, static_cast<uint32_t>(catalog_head_));
  }
  PQIDX_RETURN_IF_ERROR(table_.Create(*hash_meta));
  return pager_.Commit();
}

Status PersistentForestIndex::OpenExisting(const std::string& path,
                                           const OpenOptions& options) {
  PQIDX_RETURN_IF_ERROR(pager_.Open(path, /*create=*/false,
                                    /*defer_sealed_wal=*/options.bound_replay));
  if (pager_.has_deferred_wal()) {
    // A crash left this shard's group-commit transaction sealed. Its
    // meta-page image carries the store ticket the group stamped;
    // replay only when that group reached the manifest commit point
    // (ticket <= bound). A WAL that never stamped a ticket (legacy
    // single-store transaction) is a complete sealed commit with no
    // group to be torn from, so it replays unconditionally.
    std::vector<uint8_t> page0(kPageSize);
    uint64_t wal_ticket = 0;
    if (pager_.ReadDeferredWalPage(0, page0.data()).ok()) {
      wal_ticket = Load<uint64_t>(page0.data(), kTicketOff);
    }
    const bool replay =
        wal_ticket == 0 || wal_ticket <= options.replay_ticket_bound;
    PQIDX_RETURN_IF_ERROR(pager_.ResolveDeferredWal(replay));
  }
  if (pager_.page_count() == 0) {
    return DataLossError("empty index file: " + path);
  }
  StatusOr<const uint8_t*> page = pager_.ReadPage(0);
  PQIDX_RETURN_IF_ERROR(page.status());
  if (Load<uint32_t>(*page, kMagicOff) != kStoreMagic) {
    return DataLossError("not a pqidx persistent index: " + path);
  }
  if (Load<uint32_t>(*page, kVersionOff) != kStoreVersion) {
    return DataLossError("unsupported persistent index version");
  }
  shape_.p = Load<uint8_t>(*page, kShapePOff);
  shape_.q = Load<uint8_t>(*page, kShapeQOff);
  if (!shape_.Valid()) return DataLossError("bad index shape");
  PageId hash_meta = Load<uint32_t>(*page, kHashMetaOff);
  catalog_head_ = Load<uint32_t>(*page, kCatalogHeadOff);
  cursor_ = Load<uint64_t>(*page, kCursorOff);
  ticket_ = Load<uint64_t>(*page, kTicketOff);
  PQIDX_RETURN_IF_ERROR(table_.Attach(hash_meta));
  return LoadCatalog();
}

Status PersistentForestIndex::LoadCatalog() {
  catalog_.clear();
  for (PageId page_id = catalog_head_; page_id != 0;) {
    StatusOr<const uint8_t*> page = pager_.ReadPage(page_id);
    PQIDX_RETURN_IF_ERROR(page.status());
    int count = Load<uint16_t>(*page, kCatCountOff);
    if (count > kCatPerPage) return DataLossError("corrupt catalog page");
    for (int slot = 0; slot < count; ++slot) {
      int off = kCatEntriesOff + slot * kCatEntrySize;
      TreeId id = static_cast<TreeId>(Load<uint32_t>(*page, off));
      catalog_[id] = Load<int64_t>(*page, off + 4);
    }
    page_id = Load<uint32_t>(*page, kCatNextOff);
  }
  return Status::Ok();
}

Status PersistentForestIndex::StoreCatalog() {
  auto it = catalog_.begin();
  PageId page_id = catalog_head_;
  PageId prev = 0;
  while (page_id != 0 || it != catalog_.end()) {
    if (page_id == 0) {
      // Extend the chain.
      StatusOr<PageId> fresh = pager_.AllocatePage();
      PQIDX_RETURN_IF_ERROR(fresh.status());
      StatusOr<uint8_t*> prev_page = pager_.MutablePage(prev);
      PQIDX_RETURN_IF_ERROR(prev_page.status());
      Store(*prev_page, kCatNextOff, static_cast<uint32_t>(*fresh));
      page_id = *fresh;
    }
    StatusOr<uint8_t*> page = pager_.MutablePage(page_id);
    PQIDX_RETURN_IF_ERROR(page.status());
    int count = 0;
    while (it != catalog_.end() && count < kCatPerPage) {
      int off = kCatEntriesOff + count * kCatEntrySize;
      Store(*page, off, static_cast<uint32_t>(it->first));
      Store(*page, off + 4, it->second);
      ++it;
      ++count;
    }
    Store(*page, kCatCountOff, static_cast<uint16_t>(count));
    prev = page_id;
    page_id = Load<uint32_t>(*page, kCatNextOff);
  }
  // Zero out any trailing chain pages left from a larger catalog.
  while (page_id != 0) {
    StatusOr<uint8_t*> page = pager_.MutablePage(page_id);
    PQIDX_RETURN_IF_ERROR(page.status());
    Store(*page, kCatCountOff, uint16_t{0});
    page_id = Load<uint32_t>(*page, kCatNextOff);
  }
  return Status::Ok();
}

Status PersistentForestIndex::StoreCursor(uint64_t cursor) {
  if (cursor <= cursor_) return Status::Ok();
  StatusOr<uint8_t*> page = pager_.MutablePage(0);
  PQIDX_RETURN_IF_ERROR(page.status());
  Store(*page, kCursorOff, cursor);
  cursor_ = cursor;
  return Status::Ok();
}

Status PersistentForestIndex::StoreTicket(uint64_t ticket) {
  if (ticket <= ticket_) return Status::Ok();
  StatusOr<uint8_t*> page = pager_.MutablePage(0);
  PQIDX_RETURN_IF_ERROR(page.status());
  Store(*page, kTicketOff, ticket);
  ticket_ = ticket;
  return Status::Ok();
}

Status PersistentForestIndex::CommitOrCrash(bool prepare) {
  if (prepare) {
    // Group-commit prepare: the crash hook stays on the full-commit
    // path; the sharded store injects its own inter-shard crash points.
    return pager_.PrepareCommit();
  }
  if (crash_armed_) {
    crash_armed_ = false;
    return pager_.CommitWithCrash(crash_point_);
  }
  return pager_.Commit();
}

// Restores the in-memory caches (catalog head, cursor, ticket,
// linear-hash meta, catalog map) from the committed page 0.
Status PersistentForestIndex::ReloadCaches() {
  StatusOr<const uint8_t*> page = pager_.ReadPage(0);
  PQIDX_RETURN_IF_ERROR(page.status());
  catalog_head_ = Load<uint32_t>(*page, kCatalogHeadOff);
  cursor_ = Load<uint64_t>(*page, kCursorOff);
  ticket_ = Load<uint64_t>(*page, kTicketOff);
  PageId hash_meta = Load<uint32_t>(*page, kHashMetaOff);
  PQIDX_RETURN_IF_ERROR(table_.Attach(hash_meta));
  return LoadCatalog();
}

// Discards uncommitted page changes and restores the in-memory caches
// (catalog, linear-hash meta) from the committed state.
Status PersistentForestIndex::RollbackAndReload(Status cause) {
  // The reload steps are deliberately best-effort: we are already on the
  // error path and must surface `cause`, not a secondary reload failure
  // (a reload that fails leaves the caches as ReadPage/Attach/LoadCatalog
  // left them, and the next operation reports its own error).
  (void)pager_.Rollback();
  (void)ReloadCaches();
  return cause;
}

Status PersistentForestIndex::FinishPrepared() {
  return pager_.FinishPreparedCommit();
}

Status PersistentForestIndex::AbortPrepared() {
  PQIDX_RETURN_IF_ERROR(pager_.AbortPreparedCommit());
  return ReloadCaches();
}

std::vector<TreeId> PersistentForestIndex::TreeIds() const {
  std::vector<TreeId> ids;
  ids.reserve(catalog_.size());
  for (const auto& [id, size] : catalog_) ids.push_back(id);
  return ids;
}

int64_t PersistentForestIndex::TreeBagSize(TreeId id) const {
  auto it = catalog_.find(id);
  return it == catalog_.end() ? -1 : it->second;
}

Status PersistentForestIndex::AddIndex(TreeId id,
                                       const PqGramIndex& index) {
  if (!(index.shape() == shape_)) {
    return InvalidArgumentError("index shape does not match the store");
  }
  if (catalog_.contains(id)) {
    return FailedPreconditionError("tree already in the store");
  }
  for (const auto& [fp, count] : index.counts()) {
    Status status = table_.AddDelta(static_cast<uint32_t>(id), fp, count);
    if (!status.ok()) return RollbackAndReload(status);
  }
  catalog_[id] = index.size();
  Status stored = StoreCatalog();
  if (!stored.ok()) return RollbackAndReload(stored);
  return CommitOrCrash();
}

Status PersistentForestIndex::AddTree(TreeId id, const Tree& tree) {
  return AddIndex(id, BuildIndex(tree, shape_));
}

Status PersistentForestIndex::BulkAdd(
    const std::vector<std::pair<TreeId, const PqGramIndex*>>& bags,
    ThreadPool* pool, uint64_t cursor) {
  TxnOptions txn;
  txn.cursor = cursor;
  return BulkAdd(bags, pool, txn);
}

Status PersistentForestIndex::BulkAdd(
    const std::vector<std::pair<TreeId, const PqGramIndex*>>& bags,
    ThreadPool* pool, const TxnOptions& txn) {
  for (const auto& [id, bag] : bags) {
    if (!(bag->shape() == shape_)) {
      return InvalidArgumentError("index shape does not match the store");
    }
    if (catalog_.contains(id)) {
      return FailedPreconditionError("tree " + std::to_string(id) +
                                     " already in the store");
    }
  }
  const uint32_t regions =
      pool == nullptr ? 1 : StagingRegions(pool->num_threads());
  std::vector<std::vector<StagedDelta>> flat(bags.size());
  auto flatten = [&](int64_t j) {
    const auto& [id, bag] = bags[static_cast<size_t>(j)];
    const uint32_t tree = static_cast<uint32_t>(id);
    std::vector<StagedDelta>& out = flat[static_cast<size_t>(j)];
    out.reserve(bag->counts().size());
    for (const auto& [fp, count] : bag->counts()) {
      out.push_back({LinearHashTable::StagingRegion(tree, fp, regions),
                     table_.BucketForKey(tree, fp), tree, fp, count});
    }
  };
  std::vector<std::vector<StagedDelta>> runs(regions);
  auto merge = [&](int64_t r) {
    MergeRegionRun(flat, static_cast<uint32_t>(r),
                   &runs[static_cast<size_t>(r)]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int64_t>(flat.size()), flatten);
    pool->ParallelFor(static_cast<int64_t>(regions), merge);
  } else {
    for (size_t j = 0; j < flat.size(); ++j) {
      flatten(static_cast<int64_t>(j));
    }
    for (uint32_t r = 0; r < regions; ++r) {
      merge(static_cast<int64_t>(r));
    }
  }
  for (const std::vector<StagedDelta>& run : runs) {
    for (const StagedDelta& d : run) {
      Status status = table_.AddDelta(d.tree, d.fp, d.delta);
      if (!status.ok()) return RollbackAndReload(status);
    }
  }
  for (const auto& [id, bag] : bags) catalog_[id] = bag->size();
  Status stored = StoreCatalog();
  if (!stored.ok()) return RollbackAndReload(stored);
  stored = StoreCursor(txn.cursor);
  if (!stored.ok()) return RollbackAndReload(stored);
  stored = StoreTicket(txn.ticket);
  if (!stored.ok()) return RollbackAndReload(stored);
  return CommitOrCrash(txn.prepare);
}

Status PersistentForestIndex::ApplyBatch(const std::vector<BatchEdit>& edits,
                                         std::vector<Status>* results,
                                         ApplyBatchTimings* timings,
                                         ThreadPool* pool, uint64_t cursor) {
  TxnOptions txn;
  txn.cursor = cursor;
  return ApplyBatch(edits, results, timings, pool, txn);
}

Status PersistentForestIndex::ApplyBatch(const std::vector<BatchEdit>& edits,
                                         std::vector<Status>* results,
                                         ApplyBatchTimings* timings,
                                         ThreadPool* pool,
                                         const TxnOptions& txn) {
  static Counter* const m_batches =
      Metrics::Default().counter("apply_batch.batches");
  static Counter* const m_edits =
      Metrics::Default().counter("apply_batch.edits_staged");
  static Histogram* const m_stage_parallelism =
      Metrics::Default().histogram("apply_batch.stage_parallelism");
  static Histogram* const m_batch_edits =
      Metrics::Default().histogram("apply_batch.batch_edits");
  static Histogram* const m_validate_us =
      Metrics::Default().histogram("apply_batch.validate_us");
  static Histogram* const m_delta_us =
      Metrics::Default().histogram("apply_batch.delta_us");
  static Histogram* const m_update_us =
      Metrics::Default().histogram("apply_batch.update_us");
  static Histogram* const m_storage_us =
      Metrics::Default().histogram("apply_batch.storage_us");

  const bool timed = Metrics::enabled();
  ApplyBatchTimings split;
  int64_t lap_start = timed ? Metrics::NowUs() : 0;
  auto lap = [&](int64_t* slot) {
    if (!timed) return;
    int64_t now = Metrics::NowUs();
    *slot = now - lap_start;
    lap_start = now;
  };

  results->assign(edits.size(), Status::Ok());

  // Phase 1: catalog-level validation against a scratch overlay, so an
  // add and a later update of the same tree compose within one batch.
  std::map<TreeId, int64_t> staged_sizes;
  auto staged_size = [&](TreeId id) -> int64_t {
    auto it = staged_sizes.find(id);
    if (it != staged_sizes.end()) return it->second;
    auto cat = catalog_.find(id);
    return cat == catalog_.end() ? -1 : cat->second;
  };
  std::vector<bool> staged(edits.size(), false);
  int num_staged = 0;
  for (size_t i = 0; i < edits.size(); ++i) {
    const BatchEdit& edit = edits[i];
    const bool is_add = edit.add != nullptr;
    const bool is_update = edit.plus != nullptr && edit.minus != nullptr;
    if (is_add == is_update) {
      (*results)[i] =
          InvalidArgumentError("batch edit must be an add or an update");
      continue;
    }
    if (is_add) {
      if (!(edit.add->shape() == shape_)) {
        (*results)[i] =
            InvalidArgumentError("index shape does not match the store");
        continue;
      }
      if (staged_size(edit.id) >= 0) {
        (*results)[i] = FailedPreconditionError(
            "tree " + std::to_string(edit.id) + " already in the store");
        continue;
      }
      staged_sizes[edit.id] = edit.add->size();
    } else {
      if (!(edit.plus->shape() == shape_) ||
          !(edit.minus->shape() == shape_)) {
        (*results)[i] =
            InvalidArgumentError("delta shape does not match the store");
        continue;
      }
      int64_t current = staged_size(edit.id);
      if (current < 0) {
        (*results)[i] = NotFoundError("tree not in the store");
        continue;
      }
      int64_t next = current + edit.plus->size() - edit.minus->size();
      if (next < 0) {
        (*results)[i] =
            InvalidArgumentError("minus bag larger than the stored bag");
        continue;
      }
      staged_sizes[edit.id] = next;
    }
    staged[i] = true;
    ++num_staged;
  }
  lap(&split.validate_us);
  if (num_staged == 0) {
    if (timings != nullptr) *timings = split;
    return Status::Ok();  // nothing to commit
  }

  // Phase 2: stage the tuple deltas. Any failure here (I/O, or a
  // negative net the stored bag cannot cover) aborts the whole
  // transaction. Flattening/hashing and the per-region net-delta merge
  // are side-effect-free and fan out across `pool`; only the final
  // region-ordered apply touches the (non-thread-safe) table and pager.
  auto fail_batch = [&](Status cause) {
    for (size_t i = 0; i < edits.size(); ++i) {
      if (staged[i]) (*results)[i] = cause;
    }
    if (timings != nullptr) *timings = split;
    return RollbackAndReload(std::move(cause));
  };
  std::vector<size_t> staged_edits;
  staged_edits.reserve(static_cast<size_t>(num_staged));
  for (size_t i = 0; i < edits.size(); ++i) {
    if (staged[i]) staged_edits.push_back(i);
  }
  const int lanes = pool == nullptr ? 1 : pool->num_threads();
  const uint32_t regions = pool == nullptr ? 1 : StagingRegions(lanes);
  std::vector<std::vector<StagedDelta>> flat(staged_edits.size());
  auto flatten = [&](int64_t j) {
    const BatchEdit& edit = edits[staged_edits[static_cast<size_t>(j)]];
    const uint32_t tree = static_cast<uint32_t>(edit.id);
    std::vector<StagedDelta>& out = flat[static_cast<size_t>(j)];
    auto emit = [&](const PqGramIndex& bag, int64_t sign) {
      for (const auto& [fp, count] : bag.counts()) {
        out.push_back({LinearHashTable::StagingRegion(tree, fp, regions),
                       table_.BucketForKey(tree, fp), tree, fp,
                       sign * count});
      }
    };
    if (edit.add != nullptr) {
      out.reserve(edit.add->counts().size());
      emit(*edit.add, 1);
    } else {
      out.reserve(edit.minus->counts().size() +
                  edit.plus->counts().size());
      emit(*edit.minus, -1);
      emit(*edit.plus, 1);
    }
  };
  std::vector<std::vector<StagedDelta>> runs(regions);
  auto merge = [&](int64_t r) {
    MergeRegionRun(flat, static_cast<uint32_t>(r),
                   &runs[static_cast<size_t>(r)]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int64_t>(flat.size()), flatten);
    pool->ParallelFor(static_cast<int64_t>(regions), merge);
  } else {
    for (size_t j = 0; j < flat.size(); ++j) {
      flatten(static_cast<int64_t>(j));
    }
    merge(0);
  }
  // The whole batch is one WAL transaction, so the hash meta page only
  // needs to be written once: defer its per-entry updates and flush
  // before the catalog/cursor writes join the same commit. A failure
  // lands in RollbackAndReload, whose re-Attach restores the cached
  // meta fields and ends the deferral window.
  table_.DeferMetaUpdates();
  for (const std::vector<StagedDelta>& run : runs) {
    for (const StagedDelta& d : run) {
      Status status = table_.AddDelta(d.tree, d.fp, d.delta);
      if (!status.ok()) return fail_batch(std::move(status));
    }
  }
  if (Status flushed = table_.FlushDeferredMeta(); !flushed.ok()) {
    return fail_batch(std::move(flushed));
  }

  lap(&split.delta_us);

  // Phase 3: catalog + cursor/ticket stamps + one commit (or, in
  // prepare mode, one WAL seal the caller finishes or aborts).
  for (const auto& [id, size] : staged_sizes) catalog_[id] = size;
  Status stored = StoreCatalog();
  if (!stored.ok()) return fail_batch(std::move(stored));
  stored = StoreCursor(txn.cursor);
  if (!stored.ok()) return fail_batch(std::move(stored));
  stored = StoreTicket(txn.ticket);
  if (!stored.ok()) return fail_batch(std::move(stored));
  lap(&split.update_us);
  Status committed = CommitOrCrash(txn.prepare);
  lap(&split.storage_us);
  if (timings != nullptr) *timings = split;
  if (!committed.ok()) {
    // As in the single-op paths, a failed commit poisons the pager; the
    // caller recovers by reopening, so no rollback is attempted here.
    for (size_t i = 0; i < edits.size(); ++i) {
      if (staged[i]) (*results)[i] = committed;
    }
    return committed;
  }
  m_batches->Increment();
  m_edits->Add(num_staged);
  if (timed) {
    m_stage_parallelism->Record(lanes);
    m_batch_edits->Record(num_staged);
    m_validate_us->Record(split.validate_us);
    m_delta_us->Record(split.delta_us);
    m_update_us->Record(split.update_us);
    m_storage_us->Record(split.storage_us);
  }
  return committed;
}

StatusOr<ForestIndex> PersistentForestIndex::MaterializeForest() {
  std::map<TreeId, PqGramIndex> bags;
  for (const auto& [id, size] : catalog_) {
    bags.emplace(id, PqGramIndex(shape_));
  }
  bool orphaned = false;
  PQIDX_RETURN_IF_ERROR(table_.ForEach(
      [&](uint32_t tree, uint64_t fp, int64_t count) {
        auto it = bags.find(static_cast<TreeId>(tree));
        if (it == bags.end()) {
          orphaned = true;
          return;
        }
        it->second.Add(fp, count);
      }));
  if (orphaned) {
    return DataLossError("tuples outside the catalog; index corrupt");
  }
  ForestIndex forest(shape_);
  for (auto& [id, bag] : bags) {
    if (bag.size() != catalog_[id]) {
      return DataLossError("bag size disagrees with the catalog");
    }
    forest.AddIndex(id, std::move(bag));
  }
  return forest;
}

Status PersistentForestIndex::RemoveTree(TreeId id) {
  if (!catalog_.contains(id)) {
    return NotFoundError("tree not in the store");
  }
  // Collect the tree's keys (full sweep), then delete them.
  std::vector<std::pair<uint64_t, int64_t>> doomed;
  PQIDX_RETURN_IF_ERROR(table_.ForEach(
      [&](uint32_t tree, uint64_t fp, int64_t count) {
        if (tree == static_cast<uint32_t>(id)) doomed.emplace_back(fp, count);
      }));
  for (const auto& [fp, count] : doomed) {
    Status status =
        table_.AddDelta(static_cast<uint32_t>(id), fp, -count);
    if (!status.ok()) return RollbackAndReload(status);
  }
  catalog_.erase(id);
  PQIDX_RETURN_IF_ERROR(StoreCatalog());
  return CommitOrCrash();
}

Status PersistentForestIndex::UpdateTree(TreeId id, const PqGramIndex& plus,
                                         const PqGramIndex& minus) {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) return NotFoundError("tree not in the store");
  if (!(plus.shape() == shape_) || !(minus.shape() == shape_)) {
    return InvalidArgumentError("delta shape does not match the store");
  }
  for (const auto& [fp, count] : minus.counts()) {
    Status status =
        table_.AddDelta(static_cast<uint32_t>(id), fp, -count);
    if (!status.ok()) return RollbackAndReload(status);
  }
  for (const auto& [fp, count] : plus.counts()) {
    Status status = table_.AddDelta(static_cast<uint32_t>(id), fp, count);
    if (!status.ok()) return RollbackAndReload(status);
  }
  it->second += plus.size() - minus.size();
  PQIDX_CHECK(it->second >= 0);
  Status stored = StoreCatalog();
  if (!stored.ok()) return RollbackAndReload(stored);
  return CommitOrCrash();
}

Status PersistentForestIndex::ApplyLog(TreeId id, const Tree& tn,
                                       const EditLog& log) {
  if (!catalog_.contains(id)) return NotFoundError("tree not in the store");
  PqGramIndex plus(shape_);
  PqGramIndex minus(shape_);
  PQIDX_RETURN_IF_ERROR(
      ComputeIndexDeltas(tn, log, shape_, &plus, &minus, nullptr));
  return UpdateTree(id, plus, minus);
}

StatusOr<double> PersistentForestIndex::Distance(TreeId id,
                                                 const PqGramIndex& query) {
  auto it = catalog_.find(id);
  if (it == catalog_.end()) return NotFoundError("tree not in the store");
  PQIDX_CHECK(query.shape() == shape_);
  int64_t intersection = 0;
  for (const auto& [fp, qcount] : query.counts()) {
    StatusOr<int64_t> stored = table_.Get(static_cast<uint32_t>(id), fp);
    PQIDX_RETURN_IF_ERROR(stored.status());
    intersection += std::min(qcount, *stored);
  }
  int64_t union_size = query.size() + it->second;
  if (union_size == 0) return 0.0;
  return 1.0 - 2.0 * static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

StatusOr<std::vector<LookupResult>> PersistentForestIndex::Lookup(
    const PqGramIndex& query, double tau) {
  std::vector<LookupResult> results;
  for (const auto& [id, size] : catalog_) {
    StatusOr<double> distance = Distance(id, query);
    PQIDX_RETURN_IF_ERROR(distance.status());
    if (*distance <= tau) results.push_back({id, *distance});
  }
  std::sort(results.begin(), results.end(),
            [](const LookupResult& a, const LookupResult& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.tree_id < b.tree_id);
            });
  return results;
}

StatusOr<PqGramIndex> PersistentForestIndex::MaterializeIndex(TreeId id) {
  if (!catalog_.contains(id)) return NotFoundError("tree not in the store");
  PqGramIndex index(shape_);
  PQIDX_RETURN_IF_ERROR(table_.ForEach(
      [&](uint32_t tree, uint64_t fp, int64_t count) {
        if (tree == static_cast<uint32_t>(id)) index.Add(fp, count);
      }));
  return index;
}

Status PersistentForestIndex::CompactInto(const std::string& path) {
  StatusOr<std::unique_ptr<PersistentForestIndex>> fresh =
      Create(path, shape_);
  PQIDX_RETURN_IF_ERROR(fresh.status());
  // Materialize per tree so each AddIndex commits atomically.
  for (const auto& [id, size] : catalog_) {
    StatusOr<PqGramIndex> bag = MaterializeIndex(id);
    PQIDX_RETURN_IF_ERROR(bag.status());
    PQIDX_RETURN_IF_ERROR((*fresh)->AddIndex(id, *bag));
  }
  return Status::Ok();
}

void PersistentForestIndex::CheckConsistency() {
  table_.CheckConsistency();
  std::map<TreeId, int64_t> totals;
  Status status = table_.ForEach(
      [&](uint32_t tree, uint64_t fp, int64_t count) {
        (void)fp;
        totals[static_cast<TreeId>(tree)] += count;
      });
  PQIDX_CHECK(status.ok());
  for (const auto& [id, size] : catalog_) {
    auto it = totals.find(id);
    PQIDX_CHECK((it == totals.end() ? 0 : it->second) == size);
    if (it != totals.end()) totals.erase(it);
  }
  PQIDX_CHECK_MSG(totals.empty(), "orphaned tuples outside the catalog");
}

}  // namespace pqidx
