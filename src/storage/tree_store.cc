#include "storage/tree_store.h"

#include <memory>
#include <vector>

namespace pqidx {
namespace {

constexpr uint32_t kMagic = 0x50515452;  // "PQTR"
constexpr uint32_t kVersion = 1;

}  // namespace

void SerializeTree(const Tree& tree, ByteWriter* writer) {
  tree.dict().Serialize(writer);
  writer->PutVarint(static_cast<uint64_t>(tree.size()));
  // Pre-order (label, fanout) pairs fully determine the shape.
  tree.PreOrder([&](NodeId n) {
    writer->PutVarint(static_cast<uint64_t>(tree.label(n)));
    writer->PutVarint(static_cast<uint64_t>(tree.fanout(n)));
  });
}

StatusOr<Tree> DeserializeTree(ByteReader* reader) {
  StatusOr<LabelDict> dict = LabelDict::Deserialize(reader);
  PQIDX_RETURN_IF_ERROR(dict.status());
  auto shared_dict = std::make_shared<LabelDict>(std::move(dict).value());
  uint64_t node_count;
  PQIDX_RETURN_IF_ERROR(reader->GetVarint(&node_count));
  Tree tree(shared_dict);
  if (node_count == 0) return tree;

  // Rebuild in pre-order: a stack of (node, remaining fanout).
  struct Frame {
    NodeId node;
    uint64_t remaining;
  };
  std::vector<Frame> stack;
  uint64_t seen = 0;
  while (seen < node_count) {
    uint64_t label, fanout;
    PQIDX_RETURN_IF_ERROR(reader->GetVarint(&label));
    PQIDX_RETURN_IF_ERROR(reader->GetVarint(&fanout));
    if (label >= static_cast<uint64_t>(shared_dict->size())) {
      return DataLossError("label id out of range in serialized tree");
    }
    NodeId n;
    if (stack.empty()) {
      if (seen != 0) return DataLossError("serialized tree has two roots");
      n = tree.CreateRoot(static_cast<LabelId>(label));
    } else {
      n = tree.AddChild(stack.back().node, static_cast<LabelId>(label));
      if (--stack.back().remaining == 0) stack.pop_back();
    }
    ++seen;
    if (fanout > 0) stack.push_back({n, fanout});
  }
  if (!stack.empty()) return DataLossError("truncated serialized tree");
  return tree;
}

int64_t TreeSerializedBytes(const Tree& tree) {
  ByteWriter writer;
  SerializeTree(tree, &writer);
  return static_cast<int64_t>(writer.data().size());
}

Status SaveTree(const Tree& tree, const std::string& path) {
  ByteWriter writer;
  writer.PutU32(kMagic);
  writer.PutU32(kVersion);
  SerializeTree(tree, &writer);
  return WriteFile(path, writer.data());
}

StatusOr<Tree> LoadTree(const std::string& path) {
  std::string data;
  PQIDX_RETURN_IF_ERROR(ReadFile(path, &data));
  ByteReader reader(data);
  uint32_t magic, version;
  PQIDX_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kMagic) return DataLossError("not a pqidx tree file: " + path);
  PQIDX_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != kVersion) return DataLossError("unsupported tree file version");
  StatusOr<Tree> tree = DeserializeTree(&reader);
  PQIDX_RETURN_IF_ERROR(tree.status());
  if (!reader.AtEnd()) return DataLossError("trailing bytes in tree file");
  return tree;
}

}  // namespace pqidx
