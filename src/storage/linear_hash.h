// On-disk linear hashing [Litwin 1980]: the index relation
// (treeId, pqg, cnt) as a durable hash table that grows one bucket split
// at a time -- no global rehash ever -- so incremental index updates
// touch only the few pages holding the affected tuples.
//
// Layout (all pages owned by a Pager):
//  * one meta page: level, split pointer, bucket/entry counts, overflow
//    free list, and the ids of the directory pages;
//  * directory pages: arrays of bucket-head page ids;
//  * bucket pages: a header (overflow link, entry count) followed by
//    fixed-size entries {tree u32, fingerprint u64, count i64}; full
//    buckets chain into overflow pages, which splits dissolve.
//
// Keys are (tree, fingerprint) pairs; values are positive counts.
// AddDelta() with a negative delta decrements and removes entries that
// reach zero. Durability and atomicity come from the pager's WAL: a
// sequence of mutations becomes atomic by calling Pager::Commit() once.

#ifndef PQIDX_STORAGE_LINEAR_HASH_H_
#define PQIDX_STORAGE_LINEAR_HASH_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "storage/pager.h"

namespace pqidx {

class LinearHashTable {
 public:
  // The table lives inside `pager`'s file; `pager` must outlive it.
  explicit LinearHashTable(Pager* pager) : pager_(pager) {
    PQIDX_CHECK(pager != nullptr);
  }

  // Formats a fresh table whose meta lives in `meta_page` (an allocated
  // page the caller reserves for this table).
  Status Create(PageId meta_page);

  // Attaches to a table previously created at `meta_page`.
  Status Attach(PageId meta_page);

  // Returns the count stored for (tree, fp), 0 if absent.
  StatusOr<int64_t> Get(uint32_t tree, uint64_t fp);

  // Adds `delta` to the count of (tree, fp), inserting or removing the
  // entry as needed. Fails if the result would be negative. One chain
  // walk resolves update, removal, and insertion position alike.
  Status AddDelta(uint32_t tree, uint64_t fp, int64_t delta);

  // Batched meta-page writes for bulk mutation (ApplyBatch): between
  // DeferMetaUpdates() and FlushDeferredMeta(), AddDelta/SplitOne update
  // only the cached meta fields and the meta page is written once at
  // flush time instead of once per entry. The cached fields stay
  // authoritative throughout, so reads and splits observe the true
  // state; the caller must flush before Pager::Commit() (the WAL
  // transaction must carry a meta page consistent with the data pages)
  // and must re-Attach() after a rollback, which it already does to
  // restore the cached fields.
  void DeferMetaUpdates() { defer_meta_ = true; }
  Status FlushDeferredMeta();

  // Invokes fn(tree, fp, count) for every entry (unspecified order).
  Status ForEach(
      const std::function<void(uint32_t, uint64_t, int64_t)>& fn);

  uint64_t entry_count() const { return entry_count_; }
  uint32_t bucket_count() const { return bucket_count_; }

  // Snapshot of the destination bucket for a key under the *current*
  // level/split state. Callers use it to sort staged deltas so the
  // serial apply clusters its page touches; splits triggered mid-apply
  // may relocate later keys, so this is a sort key, not an invariant.
  uint32_t BucketForKey(uint32_t tree, uint64_t fp) const;

  // Deterministic partition of the key space into `regions` classes,
  // derived from the same hash BucketFor consumes. Worker threads
  // pre-aggregate deltas per region so the (single-threaded) table
  // mutation can then apply them region by region; keys in one region
  // share their low hash bits, i.e. they collapse onto congruent buckets.
  static uint32_t StagingRegion(uint32_t tree, uint64_t fp,
                                uint32_t regions);

  // Verifies meta/bucket invariants (entry counts, chain structure,
  // entries hashed to the right bucket). Aborts on violation; tests.
  void CheckConsistency();

 private:
  static constexpr uint32_t kInitialBuckets = 4;

  // Bucket index for a key hash under the current level/split state.
  uint32_t BucketFor(uint64_t hash) const;

  StatusOr<PageId> BucketHead(uint32_t bucket);
  Status SetBucketHead(uint32_t bucket, PageId page);
  Status EnsureDirectoryFor(uint32_t bucket);

  StatusOr<PageId> AllocateBucketPage();
  Status FreeBucketPage(PageId id);

  // Splits the bucket at the split pointer and advances it.
  Status SplitOne();
  // Current load factor threshold check.
  bool ShouldSplit() const;

  Status LoadMeta();
  Status StoreMeta();
  // StoreMeta, or a dirty mark while meta updates are deferred.
  Status CommitMeta();

  Pager* pager_;
  PageId meta_page_ = 0;
  // Cached meta fields (persisted by StoreMeta).
  uint32_t level_ = 0;
  uint32_t next_split_ = 0;
  uint32_t bucket_count_ = 0;
  uint64_t entry_count_ = 0;
  PageId free_head_ = 0;
  // Deferred-meta state (DeferMetaUpdates / FlushDeferredMeta).
  bool defer_meta_ = false;
  bool meta_dirty_ = false;
};

}  // namespace pqidx

#endif  // PQIDX_STORAGE_LINEAR_HASH_H_
