#include "storage/linear_hash.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace pqidx {
namespace {

// --- raw page field access ---------------------------------------------------

template <typename T>
T Load(const uint8_t* page, int offset) {
  T value;
  std::memcpy(&value, page + offset, sizeof(T));
  return value;
}

template <typename T>
void Store(uint8_t* page, int offset, T value) {
  std::memcpy(page + offset, &value, sizeof(T));
}

// Meta page layout.
constexpr uint32_t kMetaMagic = 0x50514c48;  // "PQLH"
constexpr int kMetaMagicOff = 0;
constexpr int kMetaLevelOff = 4;
constexpr int kMetaNextSplitOff = 8;
constexpr int kMetaBucketCountOff = 12;
constexpr int kMetaEntryCountOff = 16;
constexpr int kMetaFreeHeadOff = 24;
constexpr int kMetaDirOff = 28;  // array of directory page ids
constexpr int kMaxDirPages = (kPageSize - kMetaDirOff) / 4;  // 1017

// Directory page: plain array of bucket-head page ids.
constexpr int kBucketsPerDirPage = kPageSize / 4;  // 1024

// Bucket page layout.
constexpr int kBucketNextOff = 0;   // u32 overflow page id (0 = none)
constexpr int kBucketCountOff = 4;  // u16 entries in this page
constexpr int kBucketEntriesOff = 8;
constexpr int kEntrySize = 20;  // u32 tree + u64 fp + i64 count
constexpr int kEntriesPerPage = (kPageSize - kBucketEntriesOff) / kEntrySize;

// Grow when the average chain would exceed ~70% of one page.
constexpr double kMaxLoadFactor = 0.7;

uint64_t KeyHash(uint32_t tree, uint64_t fp) {
  uint64_t x = fp ^ (static_cast<uint64_t>(tree) * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

struct Entry {
  uint32_t tree;
  uint64_t fp;
  int64_t count;
};

Entry LoadEntry(const uint8_t* page, int slot) {
  int off = kBucketEntriesOff + slot * kEntrySize;
  return {Load<uint32_t>(page, off), Load<uint64_t>(page, off + 4),
          Load<int64_t>(page, off + 12)};
}

// Validates the entry count of a bucket page image read from disk. A
// corrupt count would otherwise index entries past the 4 KiB page.
Status CheckedBucketCount(const uint8_t* page, int* count) {
  int n = Load<uint16_t>(page, kBucketCountOff);
  if (n > kEntriesPerPage) {
    return DataLossError("bucket page entry count exceeds page capacity");
  }
  *count = n;
  return Status::Ok();
}

// Guards chain walks against cyclic next-pointers in corrupt files: a
// chain can never have more pages than the file itself.
Status CheckChainStep(const Pager& pager, uint64_t* steps) {
  if (++*steps > pager.page_count()) {
    return DataLossError("bucket overflow chain cycle");
  }
  return Status::Ok();
}

void StoreEntry(uint8_t* page, int slot, const Entry& entry) {
  int off = kBucketEntriesOff + slot * kEntrySize;
  Store(page, off, entry.tree);
  Store(page, off + 4, entry.fp);
  Store(page, off + 12, entry.count);
}

}  // namespace

uint32_t LinearHashTable::StagingRegion(uint32_t tree, uint64_t fp,
                                        uint32_t regions) {
  PQIDX_DCHECK(regions > 0);
  return static_cast<uint32_t>(KeyHash(tree, fp) % regions);
}

uint32_t LinearHashTable::BucketForKey(uint32_t tree, uint64_t fp) const {
  return BucketFor(KeyHash(tree, fp));
}

Status LinearHashTable::Create(PageId meta_page) {
  meta_page_ = meta_page;
  level_ = 0;
  next_split_ = 0;
  bucket_count_ = kInitialBuckets;
  entry_count_ = 0;
  free_head_ = 0;
  {
    StatusOr<uint8_t*> meta = pager_->MutablePage(meta_page_);
    PQIDX_RETURN_IF_ERROR(meta.status());
    std::memset(*meta, 0, kPageSize);
    Store(*meta, kMetaMagicOff, kMetaMagic);
  }
  PQIDX_RETURN_IF_ERROR(StoreMeta());
  for (uint32_t b = 0; b < bucket_count_; ++b) {
    PQIDX_RETURN_IF_ERROR(EnsureDirectoryFor(b));
    StatusOr<PageId> page = AllocateBucketPage();
    PQIDX_RETURN_IF_ERROR(page.status());
    PQIDX_RETURN_IF_ERROR(SetBucketHead(b, *page));
  }
  return Status::Ok();
}

Status LinearHashTable::Attach(PageId meta_page) {
  meta_page_ = meta_page;
  return LoadMeta();
}

Status LinearHashTable::LoadMeta() {
  StatusOr<const uint8_t*> meta = pager_->ReadPage(meta_page_);
  PQIDX_RETURN_IF_ERROR(meta.status());
  if (Load<uint32_t>(*meta, kMetaMagicOff) != kMetaMagic) {
    return DataLossError("not a linear hash meta page");
  }
  level_ = Load<uint32_t>(*meta, kMetaLevelOff);
  next_split_ = Load<uint32_t>(*meta, kMetaNextSplitOff);
  bucket_count_ = Load<uint32_t>(*meta, kMetaBucketCountOff);
  entry_count_ = Load<uint64_t>(*meta, kMetaEntryCountOff);
  free_head_ = Load<uint32_t>(*meta, kMetaFreeHeadOff);
  // A reload ends any deferral window: the disk image just loaded is
  // the truth (rollback recovery re-Attaches mid-deferral).
  defer_meta_ = false;
  meta_dirty_ = false;
  // Reject meta images that violate the linear-hash state equations
  // before any field is used: an oversized level would shift out of
  // range in BucketFor, and an inconsistent bucket count would walk
  // directory slots that never existed.
  uint64_t round_size = uint64_t{kInitialBuckets} << std::min(level_, 32u);
  if (level_ > 27 ||
      next_split_ >= round_size ||
      bucket_count_ != round_size + next_split_ ||
      bucket_count_ >
          static_cast<uint64_t>(kMaxDirPages) * kBucketsPerDirPage ||
      free_head_ >= pager_->page_count()) {
    return DataLossError("corrupt linear hash meta page");
  }
  return Status::Ok();
}

Status LinearHashTable::StoreMeta() {
  StatusOr<uint8_t*> meta = pager_->MutablePage(meta_page_);
  PQIDX_RETURN_IF_ERROR(meta.status());
  Store(*meta, kMetaLevelOff, level_);
  Store(*meta, kMetaNextSplitOff, next_split_);
  Store(*meta, kMetaBucketCountOff, bucket_count_);
  Store(*meta, kMetaEntryCountOff, entry_count_);
  Store(*meta, kMetaFreeHeadOff, free_head_);
  meta_dirty_ = false;
  return Status::Ok();
}

Status LinearHashTable::CommitMeta() {
  if (defer_meta_) {
    meta_dirty_ = true;
    return Status::Ok();
  }
  return StoreMeta();
}

Status LinearHashTable::FlushDeferredMeta() {
  defer_meta_ = false;
  if (!meta_dirty_) return Status::Ok();
  return StoreMeta();
}

uint32_t LinearHashTable::BucketFor(uint64_t hash) const {
  uint64_t round_size = static_cast<uint64_t>(kInitialBuckets) << level_;
  uint32_t bucket = static_cast<uint32_t>(hash % round_size);
  if (bucket < next_split_) {
    bucket = static_cast<uint32_t>(hash % (round_size * 2));
  }
  return bucket;
}

Status LinearHashTable::EnsureDirectoryFor(uint32_t bucket) {
  int dir_index = static_cast<int>(bucket / kBucketsPerDirPage);
  if (dir_index >= kMaxDirPages) {
    return OutOfRangeError("linear hash directory exhausted");
  }
  StatusOr<const uint8_t*> meta = pager_->ReadPage(meta_page_);
  PQIDX_RETURN_IF_ERROR(meta.status());
  if (Load<uint32_t>(*meta, kMetaDirOff + dir_index * 4) != 0) {
    return Status::Ok();
  }
  StatusOr<PageId> page = pager_->AllocatePage();
  PQIDX_RETURN_IF_ERROR(page.status());
  StatusOr<uint8_t*> mutable_meta = pager_->MutablePage(meta_page_);
  PQIDX_RETURN_IF_ERROR(mutable_meta.status());
  Store(*mutable_meta, kMetaDirOff + dir_index * 4,
        static_cast<uint32_t>(*page));
  return Status::Ok();
}

StatusOr<PageId> LinearHashTable::BucketHead(uint32_t bucket) {
  int dir_index = static_cast<int>(bucket / kBucketsPerDirPage);
  int dir_slot = static_cast<int>(bucket % kBucketsPerDirPage);
  StatusOr<const uint8_t*> meta = pager_->ReadPage(meta_page_);
  PQIDX_RETURN_IF_ERROR(meta.status());
  uint32_t dir_page = Load<uint32_t>(*meta, kMetaDirOff + dir_index * 4);
  if (dir_page == 0) return DataLossError("missing directory page");
  StatusOr<const uint8_t*> dir = pager_->ReadPage(dir_page);
  PQIDX_RETURN_IF_ERROR(dir.status());
  return static_cast<PageId>(Load<uint32_t>(*dir, dir_slot * 4));
}

Status LinearHashTable::SetBucketHead(uint32_t bucket, PageId page) {
  int dir_index = static_cast<int>(bucket / kBucketsPerDirPage);
  int dir_slot = static_cast<int>(bucket % kBucketsPerDirPage);
  StatusOr<const uint8_t*> meta = pager_->ReadPage(meta_page_);
  PQIDX_RETURN_IF_ERROR(meta.status());
  uint32_t dir_page = Load<uint32_t>(*meta, kMetaDirOff + dir_index * 4);
  if (dir_page == 0) return DataLossError("missing directory page");
  StatusOr<uint8_t*> dir = pager_->MutablePage(dir_page);
  PQIDX_RETURN_IF_ERROR(dir.status());
  Store(*dir, dir_slot * 4, static_cast<uint32_t>(page));
  return Status::Ok();
}

StatusOr<PageId> LinearHashTable::AllocateBucketPage() {
  PageId page;
  if (free_head_ != 0) {
    page = free_head_;
    StatusOr<const uint8_t*> data = pager_->ReadPage(page);
    PQIDX_RETURN_IF_ERROR(data.status());
    free_head_ = Load<uint32_t>(*data, kBucketNextOff);
  } else {
    StatusOr<PageId> fresh = pager_->AllocatePage();
    PQIDX_RETURN_IF_ERROR(fresh.status());
    page = *fresh;
  }
  StatusOr<uint8_t*> data = pager_->MutablePage(page);
  PQIDX_RETURN_IF_ERROR(data.status());
  std::memset(*data, 0, kPageSize);
  return page;
}

Status LinearHashTable::FreeBucketPage(PageId id) {
  StatusOr<uint8_t*> data = pager_->MutablePage(id);
  PQIDX_RETURN_IF_ERROR(data.status());
  std::memset(*data, 0, kPageSize);
  Store(*data, kBucketNextOff, static_cast<uint32_t>(free_head_));
  free_head_ = id;
  return Status::Ok();
}

StatusOr<int64_t> LinearHashTable::Get(uint32_t tree, uint64_t fp) {
  StatusOr<PageId> head = BucketHead(BucketFor(KeyHash(tree, fp)));
  PQIDX_RETURN_IF_ERROR(head.status());
  uint64_t steps = 0;
  for (PageId page = *head; page != 0;) {
    PQIDX_RETURN_IF_ERROR(CheckChainStep(*pager_, &steps));
    StatusOr<const uint8_t*> data = pager_->ReadPage(page);
    PQIDX_RETURN_IF_ERROR(data.status());
    int count;
    PQIDX_RETURN_IF_ERROR(CheckedBucketCount(*data, &count));
    for (int slot = 0; slot < count; ++slot) {
      Entry entry = LoadEntry(*data, slot);
      if (entry.tree == tree && entry.fp == fp) return entry.count;
    }
    page = Load<uint32_t>(*data, kBucketNextOff);
  }
  return int64_t{0};
}

Status LinearHashTable::AddDelta(uint32_t tree, uint64_t fp,
                                 int64_t delta) {
  if (delta == 0) return Status::Ok();
  uint32_t bucket = BucketFor(KeyHash(tree, fp));
  StatusOr<PageId> head = BucketHead(bucket);
  PQIDX_RETURN_IF_ERROR(head.status());

  // One walk resolves everything a mutation can need: the key's page
  // and slot (update / removal), the chain tail and its predecessor
  // (removal unlinking), and the first page with free space (insertion
  // lands there without a second walk).
  PageId found_page = 0;
  int found_slot = -1;
  PageId last_page = 0, prev_of_last = 0;
  PageId space_page = 0;
  int space_slot = 0;
  uint64_t steps = 0;
  for (PageId page = *head, prev = 0; page != 0;) {
    PQIDX_RETURN_IF_ERROR(CheckChainStep(*pager_, &steps));
    StatusOr<const uint8_t*> data = pager_->ReadPage(page);
    PQIDX_RETURN_IF_ERROR(data.status());
    int count;
    PQIDX_RETURN_IF_ERROR(CheckedBucketCount(*data, &count));
    if (found_page == 0) {
      for (int slot = 0; slot < count; ++slot) {
        Entry entry = LoadEntry(*data, slot);
        if (entry.tree == tree && entry.fp == fp) {
          found_page = page;
          found_slot = slot;
          break;
        }
      }
    }
    if (space_page == 0 && count < kEntriesPerPage) {
      space_page = page;
      space_slot = count;
    }
    PageId next = Load<uint32_t>(*data, kBucketNextOff);
    if (next == 0) {
      last_page = page;
      prev_of_last = prev;
    }
    prev = page;
    page = next;
  }

  if (found_page != 0) {
    StatusOr<uint8_t*> data = pager_->MutablePage(found_page);
    PQIDX_RETURN_IF_ERROR(data.status());
    Entry entry = LoadEntry(*data, found_slot);
    entry.count += delta;
    if (entry.count < 0) {
      return FailedPreconditionError(
          "pq-gram count would become negative");
    }
    if (entry.count > 0) {
      StoreEntry(*data, found_slot, entry);
      return Status::Ok();
    }
    // Remove: move the chain's very last entry into the hole.
    StatusOr<uint8_t*> last = pager_->MutablePage(last_page);
    PQIDX_RETURN_IF_ERROR(last.status());
    int last_count;
    PQIDX_RETURN_IF_ERROR(CheckedBucketCount(*last, &last_count));
    if (last_count == 0) {
      // The key was found, so the chain holds at least one entry; an
      // empty tail page means a corrupt chain (tails are unlinked when
      // they empty), not a logic error.
      return DataLossError("empty tail page in a non-empty bucket chain");
    }
    Entry filler = LoadEntry(*last, last_count - 1);
    Store(*last, kBucketCountOff, static_cast<uint16_t>(last_count - 1));
    if (!(last_page == found_page && found_slot == last_count - 1)) {
      // Re-fetch: `data` may alias `last` when they are the same page.
      StatusOr<uint8_t*> hole = pager_->MutablePage(found_page);
      PQIDX_RETURN_IF_ERROR(hole.status());
      StoreEntry(*hole, found_slot, filler);
    }
    // Unlink a now-empty overflow tail (never the bucket head).
    if (last_count - 1 == 0 && prev_of_last != 0) {
      StatusOr<uint8_t*> prev = pager_->MutablePage(prev_of_last);
      PQIDX_RETURN_IF_ERROR(prev.status());
      Store(*prev, kBucketNextOff, uint32_t{0});
      PQIDX_RETURN_IF_ERROR(FreeBucketPage(last_page));
    }
    --entry_count_;
    return CommitMeta();
  }

  // Insert at the position the walk already found: the first page with
  // space, else a new overflow page linked off the chain tail.
  if (delta < 0) {
    return FailedPreconditionError(
        "decrement of an absent pq-gram tuple");
  }
  if (last_page == 0) {
    return DataLossError("bucket chain without a head page");
  }
  if (space_page != 0) {
    StatusOr<uint8_t*> data = pager_->MutablePage(space_page);
    PQIDX_RETURN_IF_ERROR(data.status());
    StoreEntry(*data, space_slot, {tree, fp, delta});
    Store(*data, kBucketCountOff, static_cast<uint16_t>(space_slot + 1));
  } else {
    StatusOr<PageId> fresh = AllocateBucketPage();
    PQIDX_RETURN_IF_ERROR(fresh.status());
    {
      StatusOr<uint8_t*> data = pager_->MutablePage(*fresh);
      PQIDX_RETURN_IF_ERROR(data.status());
      StoreEntry(*data, 0, {tree, fp, delta});
      Store(*data, kBucketCountOff, uint16_t{1});
    }
    StatusOr<uint8_t*> tail = pager_->MutablePage(last_page);
    PQIDX_RETURN_IF_ERROR(tail.status());
    Store(*tail, kBucketNextOff, static_cast<uint32_t>(*fresh));
  }
  ++entry_count_;
  PQIDX_RETURN_IF_ERROR(CommitMeta());
  if (ShouldSplit()) return SplitOne();
  return Status::Ok();
}

bool LinearHashTable::ShouldSplit() const {
  return static_cast<double>(entry_count_) >
         kMaxLoadFactor * static_cast<double>(bucket_count_) *
             kEntriesPerPage;
}

Status LinearHashTable::SplitOne() {
  const uint32_t source = next_split_;
  const uint32_t sibling =
      source + (static_cast<uint32_t>(kInitialBuckets) << level_);

  // Collect and detach the source chain.
  std::vector<Entry> entries;
  std::vector<PageId> chain;
  StatusOr<PageId> head = BucketHead(source);
  PQIDX_RETURN_IF_ERROR(head.status());
  uint64_t steps = 0;
  for (PageId page = *head; page != 0;) {
    PQIDX_RETURN_IF_ERROR(CheckChainStep(*pager_, &steps));
    StatusOr<const uint8_t*> data = pager_->ReadPage(page);
    PQIDX_RETURN_IF_ERROR(data.status());
    int count;
    PQIDX_RETURN_IF_ERROR(CheckedBucketCount(*data, &count));
    for (int slot = 0; slot < count; ++slot) {
      entries.push_back(LoadEntry(*data, slot));
    }
    chain.push_back(page);
    page = Load<uint32_t>(*data, kBucketNextOff);
  }

  // Advance the split state *before* redistributing so BucketFor sends
  // keys to the sibling.
  ++next_split_;
  ++bucket_count_;
  if (next_split_ == static_cast<uint32_t>(kInitialBuckets) << level_) {
    ++level_;
    next_split_ = 0;
  }
  PQIDX_RETURN_IF_ERROR(EnsureDirectoryFor(sibling));

  // Reuse the old head for the source; give the sibling a fresh page.
  // Surplus chain pages go to the free list.
  PQIDX_CHECK(!chain.empty());
  for (size_t i = 1; i < chain.size(); ++i) {
    PQIDX_RETURN_IF_ERROR(FreeBucketPage(chain[i]));
  }
  {
    StatusOr<uint8_t*> data = pager_->MutablePage(chain[0]);
    PQIDX_RETURN_IF_ERROR(data.status());
    std::memset(*data, 0, kPageSize);
  }
  StatusOr<PageId> sibling_page = AllocateBucketPage();
  PQIDX_RETURN_IF_ERROR(sibling_page.status());
  PQIDX_RETURN_IF_ERROR(SetBucketHead(source, chain[0]));
  PQIDX_RETURN_IF_ERROR(SetBucketHead(sibling, *sibling_page));

  // Redistribute without going through AddDelta (no re-splitting).
  auto append = [&](uint32_t bucket, const Entry& entry) -> Status {
    StatusOr<PageId> bucket_head = BucketHead(bucket);
    PQIDX_RETURN_IF_ERROR(bucket_head.status());
    PageId page = *bucket_head;
    uint64_t append_steps = 0;
    for (;;) {
      PQIDX_RETURN_IF_ERROR(CheckChainStep(*pager_, &append_steps));
      StatusOr<const uint8_t*> read = pager_->ReadPage(page);
      PQIDX_RETURN_IF_ERROR(read.status());
      int count;
      PQIDX_RETURN_IF_ERROR(CheckedBucketCount(*read, &count));
      PageId next = Load<uint32_t>(*read, kBucketNextOff);
      if (count < kEntriesPerPage) {
        StatusOr<uint8_t*> data = pager_->MutablePage(page);
        PQIDX_RETURN_IF_ERROR(data.status());
        StoreEntry(*data, count, entry);
        Store(*data, kBucketCountOff, static_cast<uint16_t>(count + 1));
        return Status::Ok();
      }
      if (next == 0) {
        StatusOr<PageId> fresh = AllocateBucketPage();
        PQIDX_RETURN_IF_ERROR(fresh.status());
        {
          StatusOr<uint8_t*> data = pager_->MutablePage(*fresh);
          PQIDX_RETURN_IF_ERROR(data.status());
          StoreEntry(*data, 0, entry);
          Store(*data, kBucketCountOff, uint16_t{1});
        }
        StatusOr<uint8_t*> tail = pager_->MutablePage(page);
        PQIDX_RETURN_IF_ERROR(tail.status());
        Store(*tail, kBucketNextOff, static_cast<uint32_t>(*fresh));
        return Status::Ok();
      }
      page = next;
    }
  };
  for (const Entry& entry : entries) {
    uint32_t bucket = BucketFor(KeyHash(entry.tree, entry.fp));
    PQIDX_CHECK_MSG(bucket == source || bucket == sibling,
                    "split redistribution out of range");
    PQIDX_RETURN_IF_ERROR(append(bucket, entry));
  }
  return CommitMeta();
}

Status LinearHashTable::ForEach(
    const std::function<void(uint32_t, uint64_t, int64_t)>& fn) {
  for (uint32_t bucket = 0; bucket < bucket_count_; ++bucket) {
    StatusOr<PageId> head = BucketHead(bucket);
    PQIDX_RETURN_IF_ERROR(head.status());
    uint64_t steps = 0;
    for (PageId page = *head; page != 0;) {
      PQIDX_RETURN_IF_ERROR(CheckChainStep(*pager_, &steps));
      StatusOr<const uint8_t*> data = pager_->ReadPage(page);
      PQIDX_RETURN_IF_ERROR(data.status());
      int count;
      PQIDX_RETURN_IF_ERROR(CheckedBucketCount(*data, &count));
      PageId next = Load<uint32_t>(*data, kBucketNextOff);
      // Copy out before invoking fn: the callback may touch the pager and
      // invalidate the borrowed page pointer.
      std::vector<Entry> entries;
      entries.reserve(count);
      for (int slot = 0; slot < count; ++slot) {
        entries.push_back(LoadEntry(*data, slot));
      }
      for (const Entry& entry : entries) {
        fn(entry.tree, entry.fp, entry.count);
      }
      page = next;
    }
  }
  return Status::Ok();
}

void LinearHashTable::CheckConsistency() {
  uint64_t counted = 0;
  for (uint32_t bucket = 0; bucket < bucket_count_; ++bucket) {
    StatusOr<PageId> head = BucketHead(bucket);
    PQIDX_CHECK(head.ok());
    PQIDX_CHECK(*head != 0);
    uint64_t steps = 0;
    for (PageId page = *head; page != 0;) {
      PQIDX_CHECK(++steps <= pager_->page_count());  // cycle guard
      StatusOr<const uint8_t*> data = pager_->ReadPage(page);
      PQIDX_CHECK(data.ok());
      int count = Load<uint16_t>(*data, kBucketCountOff);
      PQIDX_CHECK(count <= kEntriesPerPage);
      for (int slot = 0; slot < count; ++slot) {
        Entry entry = LoadEntry(*data, slot);
        PQIDX_CHECK(entry.count > 0);
        PQIDX_CHECK(BucketFor(KeyHash(entry.tree, entry.fp)) == bucket);
        ++counted;
      }
      page = Load<uint32_t>(*data, kBucketNextOff);
    }
  }
  PQIDX_CHECK(counted == entry_count_);
}

}  // namespace pqidx
