// Reconnect/backoff policy shared by everything that dials a pqidxd
// endpoint: the replication follower's reconnect loop
// (service/replication.h) and the client connect paths in tools and
// loadgen. Exponential backoff with multiplicative growth, a hard cap,
// and deterministic jitter (common/random.h, seeded by the caller), so
// a fleet of reconnecting followers does not stampede the leader in
// lockstep.

#ifndef PQIDX_SERVICE_RETRY_H_
#define PQIDX_SERVICE_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/random.h"
#include "common/status.h"
#include "service/transport.h"

namespace pqidx {

struct BackoffPolicy {
  int64_t initial_backoff_us = 10'000;   // first retry delay (10 ms)
  int64_t max_backoff_us = 2'000'000;    // delay cap (2 s)
  double multiplier = 2.0;               // growth per failed attempt
  // Each delay is perturbed uniformly in [1 - jitter, 1 + jitter].
  double jitter = 0.2;
  // Total connection attempts before giving up; 0 retries forever.
  int max_attempts = 0;
};

// Tracks one retry sequence: NextDelayUs() returns the jittered delay to
// sleep before the next attempt and advances the sequence.
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, uint64_t seed);

  int64_t NextDelayUs();
  int attempts() const { return attempts_; }
  // True when the policy's attempt budget is spent.
  bool Exhausted() const;
  void Reset();

 private:
  BackoffPolicy policy_;
  Rng rng_;
  int attempts_ = 0;
  int64_t next_backoff_us_ = 0;
};

// A factory producing fresh connections to one endpoint (e.g. a bound
// TcpConnect call or PipeListener::Connect).
using Dialer = std::function<StatusOr<std::unique_ptr<Connection>>()>;

// Dials until a connection succeeds, the policy's attempt budget runs
// out (the last dial error is returned), or `*cancel` becomes true
// (returns UNAVAILABLE). The backoff sleep polls `cancel` so
// cancellation is prompt; `cancel` may be null.
StatusOr<std::unique_ptr<Connection>> DialWithRetry(
    const Dialer& dial, const BackoffPolicy& policy, uint64_t seed = 1,
    const std::atomic<bool>* cancel = nullptr);

}  // namespace pqidx

#endif  // PQIDX_SERVICE_RETRY_H_
