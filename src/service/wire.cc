#include "service/wire.h"

#include <bit>
#include <cmath>
#include <limits>

namespace pqidx {
namespace {

// Doubles travel as their IEEE-754 bit pattern in a u64.
void PutDouble(ByteWriter* writer, double v) {
  writer->PutU64(std::bit_cast<uint64_t>(v));
}

Status GetDouble(ByteReader* reader, double* out) {
  uint64_t bits;
  PQIDX_RETURN_IF_ERROR(reader->GetU64(&bits));
  *out = std::bit_cast<double>(bits);
  return Status::Ok();
}

Status GetTreeId(ByteReader* reader, TreeId* out) {
  int64_t wide;
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&wide));
  if (wide < std::numeric_limits<TreeId>::min() ||
      wide > std::numeric_limits<TreeId>::max()) {
    return DataLossError("tree id out of range");
  }
  *out = static_cast<TreeId>(wide);
  return Status::Ok();
}

Status ExpectEnd(const ByteReader& reader) {
  if (!reader.AtEnd()) return DataLossError("trailing bytes after payload");
  return Status::Ok();
}

}  // namespace

std::string EncodeFrame(const FrameHeader& header, std::string_view payload) {
  PQIDX_CHECK(payload.size() <= kMaxFramePayload);
  ByteWriter writer;
  writer.PutU32(kWireMagic);
  writer.PutU8(kWireVersion);
  writer.PutU8(static_cast<uint8_t>(header.type));
  writer.PutU8(header.flags);
  writer.PutU8(0);  // reserved
  writer.PutU64(header.request_id);
  writer.PutU32(static_cast<uint32_t>(payload.size()));
  std::string frame = writer.Release();
  frame.append(payload);
  return frame;
}

Status DecodeFrameHeader(std::string_view bytes, FrameHeader* out) {
  if (bytes.size() != kFrameHeaderSize) {
    return DataLossError("truncated frame header");
  }
  ByteReader reader(bytes);
  uint32_t magic;
  PQIDX_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kWireMagic) return DataLossError("bad frame magic");
  uint8_t version;
  PQIDX_RETURN_IF_ERROR(reader.GetU8(&version));
  if (version != kWireVersion) {
    return DataLossError("unsupported wire version");
  }
  uint8_t type;
  PQIDX_RETURN_IF_ERROR(reader.GetU8(&type));
  if (type < static_cast<uint8_t>(MessageType::kPing) ||
      type > static_cast<uint8_t>(MessageType::kTopK)) {
    return DataLossError("unknown message type");
  }
  uint8_t flags;
  PQIDX_RETURN_IF_ERROR(reader.GetU8(&flags));
  if ((flags & ~kFrameFlagResponse) != 0) {
    return DataLossError("unknown frame flags");
  }
  uint8_t reserved;
  PQIDX_RETURN_IF_ERROR(reader.GetU8(&reserved));
  if (reserved != 0) return DataLossError("nonzero reserved byte");
  uint64_t request_id;
  PQIDX_RETURN_IF_ERROR(reader.GetU64(&request_id));
  uint32_t payload_size;
  PQIDX_RETURN_IF_ERROR(reader.GetU32(&payload_size));
  if (payload_size > kMaxFramePayload) {
    return DataLossError("frame payload exceeds limit");
  }
  out->type = static_cast<MessageType>(type);
  out->flags = flags;
  out->request_id = request_id;
  out->payload_size = payload_size;
  return Status::Ok();
}

// --- requests -----------------------------------------------------------

void LookupRequest::Encode(ByteWriter* writer) const {
  PutDouble(writer, tau);
  query.Serialize(writer);
}

StatusOr<LookupRequest> LookupRequest::Decode(std::string_view payload) {
  ByteReader reader(payload);
  LookupRequest request;
  PQIDX_RETURN_IF_ERROR(GetDouble(&reader, &request.tau));
  // pq-gram distances lie in [0, 1], so any meaningful threshold does
  // too. Rejecting the rest here keeps hostile values (NaN, +/-inf,
  // huge negatives) out of the scoring hot path entirely.
  if (!std::isfinite(request.tau) || request.tau < 0.0) {
    return InvalidArgumentError("tau must be finite and non-negative");
  }
  StatusOr<PqGramIndex> query = PqGramIndex::Deserialize(&reader);
  PQIDX_RETURN_IF_ERROR(query.status());
  request.query = *std::move(query);
  PQIDX_RETURN_IF_ERROR(ExpectEnd(reader));
  return request;
}

void TopKRequest::Encode(ByteWriter* writer) const {
  writer->PutSignedVarint(k);
  query.Serialize(writer);
}

StatusOr<TopKRequest> TopKRequest::Decode(std::string_view payload) {
  ByteReader reader(payload);
  TopKRequest request;
  int64_t wide_k;
  PQIDX_RETURN_IF_ERROR(reader.GetSignedVarint(&wide_k));
  if (wide_k < 0 || wide_k > kMaxK) {
    return InvalidArgumentError("top-k count out of range");
  }
  request.k = static_cast<int32_t>(wide_k);
  StatusOr<PqGramIndex> query = PqGramIndex::Deserialize(&reader);
  PQIDX_RETURN_IF_ERROR(query.status());
  request.query = *std::move(query);
  PQIDX_RETURN_IF_ERROR(ExpectEnd(reader));
  return request;
}

void AddTreeRequest::Encode(ByteWriter* writer) const {
  writer->PutSignedVarint(tree_id);
  bag.Serialize(writer);
}

StatusOr<AddTreeRequest> AddTreeRequest::Decode(std::string_view payload) {
  ByteReader reader(payload);
  AddTreeRequest request;
  PQIDX_RETURN_IF_ERROR(GetTreeId(&reader, &request.tree_id));
  StatusOr<PqGramIndex> bag = PqGramIndex::Deserialize(&reader);
  PQIDX_RETURN_IF_ERROR(bag.status());
  request.bag = *std::move(bag);
  PQIDX_RETURN_IF_ERROR(ExpectEnd(reader));
  return request;
}

void ApplyEditsRequest::Encode(ByteWriter* writer) const {
  writer->PutSignedVarint(tree_id);
  writer->PutSignedVarint(log_ops);
  plus.Serialize(writer);
  minus.Serialize(writer);
}

StatusOr<ApplyEditsRequest> ApplyEditsRequest::Decode(
    std::string_view payload) {
  ByteReader reader(payload);
  ApplyEditsRequest request;
  PQIDX_RETURN_IF_ERROR(GetTreeId(&reader, &request.tree_id));
  PQIDX_RETURN_IF_ERROR(reader.GetSignedVarint(&request.log_ops));
  if (request.log_ops < 0) return DataLossError("negative log size");
  StatusOr<PqGramIndex> plus = PqGramIndex::Deserialize(&reader);
  PQIDX_RETURN_IF_ERROR(plus.status());
  request.plus = *std::move(plus);
  StatusOr<PqGramIndex> minus = PqGramIndex::Deserialize(&reader);
  PQIDX_RETURN_IF_ERROR(minus.status());
  request.minus = *std::move(minus);
  PQIDX_RETURN_IF_ERROR(ExpectEnd(reader));
  return request;
}

// --- replication --------------------------------------------------------

void SubscribeRequest::Encode(ByteWriter* writer) const {
  writer->PutU64(from_ticket);
  writer->PutU8(force_snapshot ? 1 : 0);
}

StatusOr<SubscribeRequest> SubscribeRequest::Decode(
    std::string_view payload) {
  ByteReader reader(payload);
  SubscribeRequest request;
  PQIDX_RETURN_IF_ERROR(reader.GetU64(&request.from_ticket));
  uint8_t force;
  PQIDX_RETURN_IF_ERROR(reader.GetU8(&force));
  if (force > 1) return DataLossError("bad subscribe flags");
  request.force_snapshot = force != 0;
  PQIDX_RETURN_IF_ERROR(ExpectEnd(reader));
  return request;
}

void SubscribeAck::Encode(ByteWriter* writer) const {
  writer->PutU8(static_cast<uint8_t>(mode));
  writer->PutU64(ticket);
  writer->PutU8(p);
  writer->PutU8(q);
}

StatusOr<SubscribeAck> SubscribeAck::Decode(ByteReader* reader) {
  SubscribeAck ack;
  uint8_t mode;
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&mode));
  if (mode > static_cast<uint8_t>(Mode::kSnapshot)) {
    return DataLossError("unknown subscribe ack mode");
  }
  ack.mode = static_cast<Mode>(mode);
  PQIDX_RETURN_IF_ERROR(reader->GetU64(&ack.ticket));
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&ack.p));
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&ack.q));
  return ack;
}

namespace {

void EncodeDeltaEntry(const DeltaEntry& entry, ByteWriter* writer) {
  writer->PutSignedVarint(entry.tree_id);
  writer->PutU8(entry.is_add ? 1 : 0);
  entry.plus.Serialize(writer);
  if (!entry.is_add) entry.minus.Serialize(writer);
}

Status DecodeDeltaEntry(ByteReader* reader, DeltaEntry* entry) {
  PQIDX_RETURN_IF_ERROR(GetTreeId(reader, &entry->tree_id));
  uint8_t is_add;
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&is_add));
  if (is_add > 1) return DataLossError("bad delta entry kind");
  entry->is_add = is_add != 0;
  StatusOr<PqGramIndex> plus = PqGramIndex::Deserialize(reader);
  PQIDX_RETURN_IF_ERROR(plus.status());
  entry->plus = *std::move(plus);
  if (!entry->is_add) {
    StatusOr<PqGramIndex> minus = PqGramIndex::Deserialize(reader);
    PQIDX_RETURN_IF_ERROR(minus.status());
    entry->minus = *std::move(minus);
  }
  return Status::Ok();
}

// The fixed part of one delta-frame chunk: ticket + publish_us +
// last_chunk + a worst-case entry-count varint.
constexpr size_t kDeltaChunkOverhead = 8 + 10 + 1 + 5;

}  // namespace

void DeltaFrame::Encode(ByteWriter* writer) const {
  writer->PutU64(ticket);
  writer->PutSignedVarint(publish_us);
  writer->PutU8(last_chunk ? 1 : 0);
  writer->PutVarint(entries.size());
  for (const DeltaEntry& entry : entries) EncodeDeltaEntry(entry, writer);
}

StatusOr<DeltaFrame> DeltaFrame::Decode(std::string_view payload) {
  ByteReader reader(payload);
  DeltaFrame frame;
  PQIDX_RETURN_IF_ERROR(reader.GetU64(&frame.ticket));
  PQIDX_RETURN_IF_ERROR(reader.GetSignedVarint(&frame.publish_us));
  uint8_t last;
  PQIDX_RETURN_IF_ERROR(reader.GetU8(&last));
  if (last > 1) return DataLossError("bad delta frame flag");
  frame.last_chunk = last != 0;
  uint64_t count;
  PQIDX_RETURN_IF_ERROR(reader.GetVarint(&count));
  // An entry costs >= 4 bytes (tree id, kind, one empty bag); a count
  // the remaining bytes cannot hold is corrupt (and must not drive a
  // huge reserve()).
  if (count > reader.remaining() / 4 + 1) {
    return DataLossError("delta entry count exceeds payload");
  }
  frame.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DeltaEntry entry;
    PQIDX_RETURN_IF_ERROR(DecodeDeltaEntry(&reader, &entry));
    frame.entries.push_back(std::move(entry));
  }
  PQIDX_RETURN_IF_ERROR(ExpectEnd(reader));
  return frame;
}

std::vector<std::string> EncodeDeltaFrameChunks(
    uint64_t ticket, int64_t publish_us,
    const std::vector<DeltaEntryView>& entries, size_t max_payload) {
  // Encode each entry once, then pack greedily: a chunk closes when the
  // next entry would push it past `max_payload`. A single entry larger
  // than the budget still becomes its own chunk (kMaxEditPayload keeps
  // such an entry under the hard frame limit).
  std::vector<std::string> encoded;
  encoded.reserve(entries.size());
  for (const DeltaEntryView& entry : entries) {
    ByteWriter writer;
    writer.PutSignedVarint(entry.tree_id);
    writer.PutU8(entry.is_add ? 1 : 0);
    entry.plus->Serialize(&writer);
    if (!entry.is_add) entry.minus->Serialize(&writer);
    encoded.push_back(writer.Release());
  }
  std::vector<std::string> chunks;
  size_t i = 0;
  do {
    size_t bytes = kDeltaChunkOverhead;
    size_t end = i;
    while (end < encoded.size() &&
           (end == i || bytes + encoded[end].size() <= max_payload)) {
      bytes += encoded[end].size();
      ++end;
    }
    ByteWriter writer;
    writer.PutU64(ticket);
    writer.PutSignedVarint(publish_us);
    writer.PutU8(end == encoded.size() ? 1 : 0);  // last_chunk
    writer.PutVarint(end - i);
    std::string chunk = writer.Release();
    for (; i < end; ++i) chunk.append(encoded[i]);
    chunks.push_back(std::move(chunk));
  } while (i < encoded.size());
  return chunks;
}

std::vector<std::string> EncodeDeltaFrameChunks(const DeltaFrame& frame,
                                                size_t max_payload) {
  std::vector<DeltaEntryView> views;
  views.reserve(frame.entries.size());
  for (const DeltaEntry& entry : frame.entries) {
    views.push_back({entry.tree_id, entry.is_add, &entry.plus,
                     entry.is_add ? nullptr : &entry.minus});
  }
  return EncodeDeltaFrameChunks(frame.ticket, frame.publish_us, views,
                                max_payload);
}

// --- responses ----------------------------------------------------------

void EncodeStatus(const Status& status, ByteWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(status.code()));
  writer->PutString(status.message());
}

Status DecodeStatus(ByteReader* reader, Status* out) {
  uint8_t code;
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return DataLossError("unknown status code");
  }
  std::string message;
  PQIDX_RETURN_IF_ERROR(reader->GetString(&message));
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::Ok();
}

void LookupResponse::Encode(ByteWriter* writer) const {
  writer->PutVarint(results.size());
  for (const LookupResult& result : results) {
    writer->PutSignedVarint(result.tree_id);
    PutDouble(writer, result.distance);
  }
}

StatusOr<LookupResponse> LookupResponse::Decode(ByteReader* reader) {
  uint64_t count;
  PQIDX_RETURN_IF_ERROR(reader->GetVarint(&count));
  // A result costs >= 9 bytes on the wire; a count the remaining bytes
  // cannot hold is corrupt (and must not drive a huge reserve()).
  if (count > reader->remaining() / 9 + 1) {
    return DataLossError("lookup result count exceeds payload");
  }
  LookupResponse response;
  response.results.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    LookupResult result;
    PQIDX_RETURN_IF_ERROR(GetTreeId(reader, &result.tree_id));
    PQIDX_RETURN_IF_ERROR(GetDouble(reader, &result.distance));
    response.results.push_back(result);
  }
  return response;
}

void ServiceStats::Encode(ByteWriter* writer) const {
  writer->PutU8(static_cast<uint8_t>(p));
  writer->PutU8(static_cast<uint8_t>(q));
  writer->PutSignedVarint(tree_count);
  writer->PutSignedVarint(lookups);
  writer->PutSignedVarint(edits_applied);
  writer->PutSignedVarint(edit_commits);
  writer->PutSignedVarint(max_batch);
  writer->PutSignedVarint(rejected);
  writer->PutSignedVarint(protocol_errors);
  writer->PutSignedVarint(snapshot_epoch);
  writer->PutSignedVarint(candidates_pruned);
  writer->PutSignedVarint(candidates_scored);
  writer->PutSignedVarint(snapshot_rebuild_us);
  writer->PutSignedVarint(last_rebuild_us);
}

void EncodeMetricsSnapshot(const MetricsSnapshot& snapshot,
                           ByteWriter* writer) {
  writer->PutVarint(snapshot.samples.size());
  for (const MetricSample& sample : snapshot.samples) {
    writer->PutU8(static_cast<uint8_t>(sample.kind));
    writer->PutString(sample.name);
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge:
        writer->PutSignedVarint(sample.value);
        break;
      case MetricSample::Kind::kHistogram:
        writer->PutSignedVarint(sample.count);
        writer->PutSignedVarint(sample.sum);
        writer->PutSignedVarint(sample.max);
        writer->PutVarint(sample.buckets.size());
        for (const auto& [index, count] : sample.buckets) {
          writer->PutVarint(index);
          writer->PutSignedVarint(count);
        }
        break;
    }
  }
}

StatusOr<MetricsSnapshot> DecodeMetricsSnapshot(ByteReader* reader) {
  uint64_t num_samples;
  PQIDX_RETURN_IF_ERROR(reader->GetVarint(&num_samples));
  // A sample costs >= 3 bytes (kind, empty name, one varint); a count
  // the payload cannot hold is corrupt and must not drive a reserve().
  if (num_samples > reader->remaining() / 3 + 1) {
    return DataLossError("metric sample count exceeds payload");
  }
  MetricsSnapshot snapshot;
  snapshot.samples.reserve(num_samples);
  for (uint64_t i = 0; i < num_samples; ++i) {
    MetricSample sample;
    uint8_t kind;
    PQIDX_RETURN_IF_ERROR(reader->GetU8(&kind));
    if (kind > static_cast<uint8_t>(MetricSample::Kind::kHistogram)) {
      return DataLossError("unknown metric kind");
    }
    sample.kind = static_cast<MetricSample::Kind>(kind);
    PQIDX_RETURN_IF_ERROR(reader->GetString(&sample.name));
    if (sample.kind != MetricSample::Kind::kHistogram) {
      PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&sample.value));
    } else {
      PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&sample.count));
      PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&sample.sum));
      PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&sample.max));
      if (sample.count < 0) return DataLossError("negative sample count");
      uint64_t num_buckets;
      PQIDX_RETURN_IF_ERROR(reader->GetVarint(&num_buckets));
      if (num_buckets > static_cast<uint64_t>(Histogram::kNumBuckets)) {
        return DataLossError("histogram bucket count out of range");
      }
      sample.buckets.reserve(num_buckets);
      uint64_t prev_index = 0;
      for (uint64_t b = 0; b < num_buckets; ++b) {
        uint64_t index;
        int64_t count;
        PQIDX_RETURN_IF_ERROR(reader->GetVarint(&index));
        PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&count));
        if (index >= static_cast<uint64_t>(Histogram::kNumBuckets)) {
          return DataLossError("histogram bucket index out of range");
        }
        if (b > 0 && index <= prev_index) {
          return DataLossError("histogram bucket indices not ascending");
        }
        if (count <= 0) return DataLossError("non-positive bucket count");
        prev_index = index;
        sample.buckets.emplace_back(static_cast<uint32_t>(index), count);
      }
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

StatusOr<ServiceStats> ServiceStats::Decode(ByteReader* reader) {
  ServiceStats stats;
  uint8_t p, q;
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&p));
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&q));
  stats.p = p;
  stats.q = q;
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.tree_count));
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.lookups));
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.edits_applied));
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.edit_commits));
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.max_batch));
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.rejected));
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.protocol_errors));
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.snapshot_epoch));
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.candidates_pruned));
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.candidates_scored));
  PQIDX_RETURN_IF_ERROR(
      reader->GetSignedVarint(&stats.snapshot_rebuild_us));
  PQIDX_RETURN_IF_ERROR(reader->GetSignedVarint(&stats.last_rebuild_us));
  return stats;
}

}  // namespace pqidx
