// Replication: streamed batch deltas, warm standbys, and O(delta)
// follower catch-up (docs/ARCHITECTURE.md, "Replication").
//
// The leader side is the ReplicationHub: every committed group-commit
// batch is re-encoded as delta-frame chunks (wire.h) in the pipeline's
// overlap zone and handed to the hub by the storage-turn holder, in
// ticket order, AFTER the batch is durable. The hub fans the frame out
// to per-subscriber bounded queues and retains a short history window
// for O(delta) resume -- Publish never blocks on a subscriber, so
// replication never backpressures ApplyBatch. A subscriber that falls
// `max_queue` frames behind is dropped (its stream ends; on reconnect
// the history window decides between delta resume and a snapshot).
//
// The replication cursor is the durable storage ticket: the leader
// stamps every batch's WAL transaction with it
// (PersistentForestIndex::replication_cursor), a follower stamps each
// replicated batch with the ticket streamed to it, and a subscriber
// resumes from exactly its store's cursor after a restart. Cursors are
// monotone but not dense -- batches that fail validation publish
// nothing -- so all resume checks are range checks.
//
// The follower side is the Follower: it dials the leader with
// exponential backoff + jitter (service/retry.h), subscribes at its
// durable cursor, and splits the stream across two threads. The recv
// thread assembles chunked frames into a bounded pending queue (when
// full it stops reading -- TCP backpressure turns into the leader's
// slow-subscriber policy). The apply thread drains ALL pending frames
// and applies them as ONE local WAL transaction
// (Server::ApplyReplicated), so catch-up pays the fsync pair per drain,
// not per streamed batch. Reads are served by the follower's own
// read-only Server: lock-free lookups at the streamed epoch, and its
// own hub re-publishes every applied batch under the leader's tickets,
// so followers chain. If the leader answers a subscribe with kSnapshot
// (it compacted or restarted past the follower's cursor), the follower
// rebuilds its store from the streamed snapshot image and swaps its
// serving stack; if applying a streamed frame fails (divergence), it
// forces exactly that snapshot resync.

#ifndef PQIDX_SERVICE_REPLICATION_H_
#define PQIDX_SERVICE_REPLICATION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "service/retry.h"
#include "service/server.h"
#include "service/transport.h"
#include "service/wire.h"
#include "storage/sharded_store.h"

namespace pqidx {

// One frame of the replication stream as the hub retains and fans it
// out: the encoded chunk payloads of one committed batch, shared
// (refcounted, immutable) between the history window and every
// subscriber queue.
struct ReplicatedFrame {
  uint64_t ticket = 0;
  std::shared_ptr<const std::vector<std::string>> chunks;
};

// One subscriber's bounded frame queue, owned by the serving thread
// (Server::ServeSubscriber) and filled by the hub.
class Subscription {
 public:
  Subscription() = default;
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  enum class Next : uint8_t {
    kFrame = 0,    // *out holds the next frame
    kTimeout = 1,  // nothing arrived within the timeout (heartbeat cue)
    kDone = 2,     // hub shut down, unregistered, or dropped this sub
  };

  // Blocks up to `timeout_us` for the next frame.
  Next Wait(int64_t timeout_us, ReplicatedFrame* out)
      PQIDX_EXCLUDES(mutex_);

  // True when the hub disconnected this subscriber for falling behind.
  bool dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  friend class ReplicationHub;

  Mutex mutex_;
  CondVar cv_;
  std::deque<ReplicatedFrame> queue_ PQIDX_GUARDED_BY(mutex_);
  // Frames with ticket <= skip_to_ are already covered by the state the
  // subscriber resumed from (its cursor, or the snapshot it was sent)
  // and are not enqueued.
  uint64_t skip_to_ PQIDX_GUARDED_BY(mutex_) = 0;
  bool finished_ PQIDX_GUARDED_BY(mutex_) = false;
  std::atomic<bool> dropped_{false};
  // Queue-depth gauge slot, hub-managed (-1: none free at Register).
  int slot_ = -1;
  Gauge* depth_gauge_ = nullptr;
};

struct ReplicationHubOptions {
  // Committed frames retained for delta resume; a reconnecting follower
  // whose cursor fell out of this window gets a snapshot instead.
  int history = 256;
  // Per-subscriber queue bound, in frames; a subscriber that falls this
  // far behind is dropped (slow-subscriber policy).
  int max_queue = 256;
};

// The leader-side fan-out point. Thread-safe; Publish is called in
// ticket order by the storage-turn holder and never blocks on a
// subscriber.
class ReplicationHub {
 public:
  // Queue-depth gauge slots ("replication.sub<k>.queue_depth").
  static constexpr int kGaugeSlots = 16;

  explicit ReplicationHub(ReplicationHubOptions options);

  // Anchors the history window at the store's durable cursor; called by
  // Server::Start before any subscriber or publisher exists.
  void Initialize(uint64_t base_ticket) PQIDX_EXCLUDES(mutex_);

  enum class Resume : uint8_t { kDelta = 0, kSnapshot = 1 };

  // Registers a subscriber resuming after `from_ticket`. kDelta: the
  // retained frames past the cursor were enqueued and the stream
  // continues seamlessly. kSnapshot: the caller must send its current
  // replica image (as of `snapshot_ticket`, which the caller reads
  // under the lock that orders it against Publish); frames at or below
  // that ticket are filtered out of this subscriber's queue.
  Resume Register(Subscription* sub, uint64_t from_ticket,
                  bool force_snapshot, uint64_t snapshot_ticket)
      PQIDX_EXCLUDES(mutex_);

  void Unregister(Subscription* sub) PQIDX_EXCLUDES(mutex_);

  // Fans one committed batch out to every live subscriber and appends
  // it to the history window. Tickets must be strictly increasing.
  void Publish(uint64_t ticket, std::vector<std::string> chunks)
      PQIDX_EXCLUDES(mutex_);

  // Ends every subscription (Wait returns kDone); Register afterwards
  // yields immediately-finished subscriptions.
  void Shutdown() PQIDX_EXCLUDES(mutex_);

  // The newest published ticket (the Initialize base before the first
  // Publish); heartbeat frames carry it.
  uint64_t last_ticket() const {
    return last_ticket_.load(std::memory_order_relaxed);
  }

 private:
  const ReplicationHubOptions options_;

  Gauge* m_subscribers_;
  Counter* m_frames_published_;
  Counter* m_subscribers_dropped_;
  Gauge* m_slot_depth_[kGaugeSlots];

  mutable Mutex mutex_;
  std::vector<Subscription*> subscribers_ PQIDX_GUARDED_BY(mutex_);
  std::deque<ReplicatedFrame> history_ PQIDX_GUARDED_BY(mutex_);
  // A cursor >= history_base_ (and <= last_ticket_) can delta-resume:
  // every frame past it is still retained.
  uint64_t history_base_ PQIDX_GUARDED_BY(mutex_) = 0;
  uint32_t slots_used_ PQIDX_GUARDED_BY(mutex_) = 0;
  bool shutdown_ PQIDX_GUARDED_BY(mutex_) = false;
  std::atomic<uint64_t> last_ticket_{0};
};

struct FollowerOptions {
  // Dials the leader's replication endpoint; required.
  Dialer dial;
  // Creates the listener the follower's own read-only Server accepts
  // on. Called each time the serving stack is (re)built -- a snapshot
  // resync tears the old server down -- so TCP users that need a stable
  // port should bind a fixed one here. Null serves no connections (the
  // follower is then only reachable in-process via server()).
  std::function<StatusOr<std::unique_ptr<Listener>>()> listen;
  // The follower's durable store. Reopened across restarts -- its
  // replication cursor is the subscribe cursor -- and recreated
  // (truncated) when the leader answers with a snapshot.
  std::string store_path;
  int pool_pages = 256;
  // Shard count of the follower's local store when it is (re)created
  // (subscribe-from-zero or snapshot install). An existing store keeps
  // its own layout; a follower may shard differently from its leader
  // (replication is layout-agnostic -- the cursor is a single ticket).
  int store_shards = 1;
  // Options for the follower's own Server. read_only is forced on
  // (client edits are rejected); its replication hub stays live, so a
  // follower can itself feed further followers.
  ServerOptions server;
  // Reconnect policy: max_attempts bounds dial+handshake attempts per
  // outage (0 retries forever; Stop() interrupts either way).
  BackoffPolicy backoff;
  uint64_t backoff_seed = 1;
  // Streamed frames coalesced into one local WAL transaction by the
  // apply thread (the fsync amortization that makes catch-up O(delta)).
  int max_apply_batch = 256;
  // Assembled-but-unapplied frames buffered between the recv and apply
  // threads; when full the recv thread stops reading and TCP
  // backpressure engages the leader's slow-subscriber policy.
  int max_pending = 1024;
};

// A warm standby: replicates one leader into a local store and serves
// lock-free reads from it at the streamed epoch.
class Follower {
 public:
  explicit Follower(FollowerOptions options);
  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  // Opens (or creates) the local store, performs the initial
  // dial + subscribe handshake (honoring the backoff policy; blocks
  // until it succeeds, the attempt budget is spent, or Stop()), builds
  // the serving stack, and starts the streaming threads. On success the
  // follower is serving and catching up.
  Status Start();

  // Stops streaming and serving; joins all threads. Idempotent.
  void Stop();

  // The follower's serving Server (null before Start). The returned
  // pointer shares ownership of the whole serving stack, so it stays
  // valid across a snapshot resync (it then points at the retired
  // stack; call again for the current one).
  std::shared_ptr<Server> server() const PQIDX_EXCLUDES(serving_mutex_);

  // The durably applied replication cursor.
  uint64_t cursor() const { return cursor_.load(std::memory_order_relaxed); }

  // Blocks until the applied cursor reaches `ticket` (true) or
  // `timeout_ms` elapses (false).
  bool WaitForCursor(uint64_t ticket, int64_t timeout_ms) const;

  // OK while streaming (or reconnecting); the terminal error once the
  // reconnect budget is spent (the server keeps serving stale reads).
  Status stream_status() const PQIDX_EXCLUDES(status_mutex_);

  int64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  // Snapshot installs, whether at Start (the leader compacted past our
  // cursor, or we had no store worth keeping) or mid-stream (resync
  // after divergence). Zero means every byte arrived as a delta.
  int64_t snapshot_resyncs() const {
    return snapshot_resyncs_.load(std::memory_order_relaxed);
  }

 private:
  // The serving stack: declaration order makes the server (which holds
  // a raw pointer into the store) destroy first.
  struct Serving {
    std::unique_ptr<ShardedStore> store;
    std::unique_ptr<Server> server;
  };

  struct Handshake {
    std::unique_ptr<Connection> conn;
    SubscribeAck ack;
  };

  // One full dial + subscribe exchange per backoff attempt.
  StatusOr<Handshake> ConnectWithRetry(uint64_t from_ticket,
                                       bool force_snapshot);
  // Receives and assembles one complete (possibly chunked) delta frame.
  Status ReceiveDeltaFrame(Connection* conn, DeltaFrame* out);
  // Builds a fresh store from a streamed snapshot image (add entries),
  // durably stamped with the snapshot's ticket.
  StatusOr<std::unique_ptr<ShardedStore>> InstallSnapshot(
      const SubscribeAck& ack, DeltaFrame image);
  // Wraps `store` in a started read-only Server.
  StatusOr<std::shared_ptr<Serving>> BuildServing(
      std::unique_ptr<ShardedStore> store);
  // Drains the current connection until it breaks; queues frames.
  Status StreamFrames() PQIDX_EXCLUDES(pending_mutex_, conn_mutex_);
  // Snapshot resync: quiesces the apply thread, rebuilds the store from
  // the handshake's streamed image, and swaps the serving stack.
  Status Resync(Handshake handshake)
      PQIDX_EXCLUDES(pending_mutex_, serving_mutex_, conn_mutex_);
  void RecvLoop();
  void ApplyLoop() PQIDX_EXCLUDES(pending_mutex_, serving_mutex_);
  void CloseConn() PQIDX_EXCLUDES(conn_mutex_);
  void SetStreamStatus(Status status) PQIDX_EXCLUDES(status_mutex_);

  FollowerOptions options_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  mutable Mutex serving_mutex_;
  std::shared_ptr<Serving> serving_ PQIDX_GUARDED_BY(serving_mutex_);

  mutable Mutex conn_mutex_;
  std::shared_ptr<Connection> conn_ PQIDX_GUARDED_BY(conn_mutex_);

  // recv -> apply queue of assembled frames.
  Mutex pending_mutex_;
  CondVar pending_cv_;
  std::deque<DeltaFrame> pending_ PQIDX_GUARDED_BY(pending_mutex_);
  bool applying_ PQIDX_GUARDED_BY(pending_mutex_) = false;

  // Divergence flag: set by the apply thread when a streamed batch
  // fails locally; the recv thread then forces a snapshot handshake.
  std::atomic<bool> divergence_{false};

  mutable Mutex status_mutex_;
  Status stream_status_ PQIDX_GUARDED_BY(status_mutex_);

  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> last_seen_{0};
  std::atomic<int64_t> reconnects_{0};
  std::atomic<int64_t> snapshot_resyncs_{0};

  std::thread recv_thread_;
  std::thread apply_thread_;

  // Registry cells ("replication.*"); lag gauges compare the leader's
  // publish clock with ours, which is meaningful on one host (the
  // loopback/test topology this targets).
  Gauge* m_lag_tickets_;
  Gauge* m_lag_us_;
  Counter* m_reconnects_;
  Counter* m_snapshot_resyncs_;
  Counter* m_frames_applied_;
  Histogram* m_apply_us_;
  Histogram* m_frame_bytes_;
  Histogram* m_frame_delay_us_;
};

}  // namespace pqidx

#endif  // PQIDX_SERVICE_REPLICATION_H_
