#include "service/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"

namespace pqidx {

Backoff::Backoff(const BackoffPolicy& policy, uint64_t seed)
    : policy_(policy), rng_(seed) {
  PQIDX_CHECK(policy_.initial_backoff_us >= 0);
  PQIDX_CHECK(policy_.max_backoff_us >= policy_.initial_backoff_us);
  PQIDX_CHECK(policy_.multiplier >= 1.0);
  PQIDX_CHECK(policy_.jitter >= 0.0 && policy_.jitter < 1.0);
  PQIDX_CHECK(policy_.max_attempts >= 0);
  Reset();
}

void Backoff::Reset() {
  attempts_ = 0;
  next_backoff_us_ = policy_.initial_backoff_us;
}

bool Backoff::Exhausted() const {
  return policy_.max_attempts > 0 && attempts_ >= policy_.max_attempts;
}

int64_t Backoff::NextDelayUs() {
  ++attempts_;
  const int64_t base = next_backoff_us_;
  next_backoff_us_ = std::min<int64_t>(
      policy_.max_backoff_us,
      static_cast<int64_t>(static_cast<double>(base) * policy_.multiplier) +
          1);
  // Uniform perturbation in [1 - jitter, 1 + jitter].
  const double factor =
      1.0 + policy_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  return std::max<int64_t>(
      0, static_cast<int64_t>(static_cast<double>(base) * factor));
}

StatusOr<std::unique_ptr<Connection>> DialWithRetry(
    const Dialer& dial, const BackoffPolicy& policy, uint64_t seed,
    const std::atomic<bool>* cancel) {
  Backoff backoff(policy, seed);
  for (int attempt = 1;; ++attempt) {
    if (cancel != nullptr && cancel->load()) {
      return UnavailableError("dial cancelled");
    }
    StatusOr<std::unique_ptr<Connection>> conn = dial();
    if (conn.ok()) return conn;
    if (policy.max_attempts > 0 && attempt >= policy.max_attempts) {
      return conn;
    }
    // Sleep in short slices so cancellation (follower Stop, ^C in a
    // tool) never waits out a long backoff.
    int64_t remaining_us = backoff.NextDelayUs();
    while (remaining_us > 0) {
      if (cancel != nullptr && cancel->load()) {
        return UnavailableError("dial cancelled");
      }
      const int64_t slice_us = std::min<int64_t>(remaining_us, 10'000);
      std::this_thread::sleep_for(std::chrono::microseconds(slice_us));
      remaining_us -= slice_us;
    }
  }
}

}  // namespace pqidx
