#include "service/replication.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/serde.h"

namespace pqidx {

// --- Subscription -------------------------------------------------------

Subscription::Next Subscription::Wait(int64_t timeout_us,
                                      ReplicatedFrame* out) {
  const int64_t deadline_us = Metrics::NowUs() + timeout_us;
  MutexLock lock(&mutex_);
  for (;;) {
    if (!queue_.empty()) {
      *out = std::move(queue_.front());
      queue_.pop_front();
      if (depth_gauge_ != nullptr) {
        depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
      }
      return Next::kFrame;
    }
    if (finished_) return Next::kDone;
    const int64_t remaining_us = deadline_us - Metrics::NowUs();
    if (remaining_us <= 0) return Next::kTimeout;
    cv_.WaitFor(&mutex_, remaining_us);
  }
}

// --- ReplicationHub -----------------------------------------------------

ReplicationHub::ReplicationHub(ReplicationHubOptions options)
    : options_(options) {
  PQIDX_CHECK(options_.history >= 0);
  PQIDX_CHECK(options_.max_queue >= 1);
  Metrics& metrics = Metrics::Default();
  m_subscribers_ = metrics.gauge("replication.subscribers");
  m_frames_published_ = metrics.counter("replication.frames_published");
  m_subscribers_dropped_ =
      metrics.counter("replication.subscribers_dropped");
  for (int i = 0; i < kGaugeSlots; ++i) {
    m_slot_depth_[i] = metrics.gauge("replication.sub" + std::to_string(i) +
                                     ".queue_depth");
  }
}

void ReplicationHub::Initialize(uint64_t base_ticket) {
  MutexLock lock(&mutex_);
  history_.clear();
  history_base_ = base_ticket;
  last_ticket_.store(base_ticket, std::memory_order_relaxed);
}

ReplicationHub::Resume ReplicationHub::Register(Subscription* sub,
                                                uint64_t from_ticket,
                                                bool force_snapshot,
                                                uint64_t snapshot_ticket) {
  MutexLock lock(&mutex_);
  sub->slot_ = -1;
  for (int i = 0; i < kGaugeSlots; ++i) {
    if ((slots_used_ & (1u << i)) == 0) {
      sub->slot_ = i;
      slots_used_ |= 1u << i;
      break;
    }
  }
  sub->depth_gauge_ = sub->slot_ >= 0 ? m_slot_depth_[sub->slot_] : nullptr;
  const uint64_t last = last_ticket_.load(std::memory_order_relaxed);
  bool delta =
      !force_snapshot && from_ticket >= history_base_ && from_ticket <= last;
  if (delta) {
    size_t backlog = 0;
    for (const ReplicatedFrame& frame : history_) {
      if (frame.ticket > from_ticket) ++backlog;
    }
    // A backlog the queue bound cannot hold would drop the subscriber
    // on its first Publish; a snapshot is the honest answer.
    if (backlog > static_cast<size_t>(options_.max_queue)) delta = false;
  }
  {
    MutexLock sub_lock(&sub->mutex_);
    sub->skip_to_ = delta ? from_ticket : snapshot_ticket;
    sub->finished_ = shutdown_;
    if (delta) {
      for (const ReplicatedFrame& frame : history_) {
        if (frame.ticket > from_ticket) sub->queue_.push_back(frame);
      }
      if (sub->depth_gauge_ != nullptr) {
        sub->depth_gauge_->Set(static_cast<int64_t>(sub->queue_.size()));
      }
    }
  }
  subscribers_.push_back(sub);
  m_subscribers_->Set(static_cast<int64_t>(subscribers_.size()));
  return delta ? Resume::kDelta : Resume::kSnapshot;
}

void ReplicationHub::Unregister(Subscription* sub) {
  MutexLock lock(&mutex_);
  std::erase(subscribers_, sub);
  if (sub->slot_ >= 0) {
    slots_used_ &= ~(1u << sub->slot_);
    m_slot_depth_[sub->slot_]->Set(0);
    sub->slot_ = -1;
  }
  {
    MutexLock sub_lock(&sub->mutex_);
    sub->finished_ = true;
    sub->cv_.NotifyAll();
  }
  m_subscribers_->Set(static_cast<int64_t>(subscribers_.size()));
}

void ReplicationHub::Publish(uint64_t ticket,
                             std::vector<std::string> chunks) {
  ReplicatedFrame frame;
  frame.ticket = ticket;
  frame.chunks = std::make_shared<const std::vector<std::string>>(
      std::move(chunks));
  MutexLock lock(&mutex_);
  PQIDX_DCHECK(ticket > last_ticket_.load(std::memory_order_relaxed));
  last_ticket_.store(ticket, std::memory_order_relaxed);
  if (options_.history > 0) {
    history_.push_back(frame);
    if (static_cast<int>(history_.size()) > options_.history) {
      // The evicted ticket stays resumable: every frame past it is
      // still retained.
      history_base_ = history_.front().ticket;
      history_.pop_front();
    }
  } else {
    history_base_ = ticket;
  }
  m_frames_published_->Increment();
  for (Subscription* sub : subscribers_) {
    MutexLock sub_lock(&sub->mutex_);
    if (sub->finished_ || ticket <= sub->skip_to_) continue;
    if (static_cast<int>(sub->queue_.size()) >= options_.max_queue) {
      // Slow-subscriber policy: disconnect instead of blocking the
      // commit path or growing without bound. The follower reconnects
      // and the history window decides delta vs. snapshot.
      sub->queue_.clear();
      sub->finished_ = true;
      sub->dropped_.store(true, std::memory_order_relaxed);
      if (sub->depth_gauge_ != nullptr) sub->depth_gauge_->Set(0);
      m_subscribers_dropped_->Increment();
      sub->cv_.NotifyAll();
      continue;
    }
    sub->queue_.push_back(frame);
    if (sub->depth_gauge_ != nullptr) {
      sub->depth_gauge_->Set(static_cast<int64_t>(sub->queue_.size()));
    }
    sub->cv_.NotifyAll();
  }
}

void ReplicationHub::Shutdown() {
  MutexLock lock(&mutex_);
  shutdown_ = true;
  for (Subscription* sub : subscribers_) {
    MutexLock sub_lock(&sub->mutex_);
    sub->finished_ = true;
    sub->cv_.NotifyAll();
  }
}

// --- Follower -----------------------------------------------------------

Follower::Follower(FollowerOptions options) : options_(std::move(options)) {
  PQIDX_CHECK(options_.dial != nullptr);
  PQIDX_CHECK(!options_.store_path.empty());
  PQIDX_CHECK(options_.max_apply_batch >= 1);
  PQIDX_CHECK(options_.max_pending >= 1);
  options_.server.read_only = true;
  Metrics& metrics = Metrics::Default();
  m_lag_tickets_ = metrics.gauge("replication.lag_tickets");
  m_lag_us_ = metrics.gauge("replication.lag_us");
  m_reconnects_ = metrics.counter("replication.reconnects");
  m_snapshot_resyncs_ = metrics.counter("replication.snapshot_resyncs");
  m_frames_applied_ = metrics.counter("replication.frames_applied");
  m_apply_us_ = metrics.histogram("replication.apply_us");
  m_frame_bytes_ = metrics.histogram("replication.frame_bytes");
  m_frame_delay_us_ = metrics.histogram("replication.frame_delay_us");
}

Follower::~Follower() { Stop(); }

namespace {

// One dial + subscribe exchange against the leader.
StatusOr<std::pair<std::unique_ptr<Connection>, SubscribeAck>> TrySubscribe(
    const Dialer& dial, uint64_t from_ticket, bool force_snapshot) {
  StatusOr<std::unique_ptr<Connection>> dialed = dial();
  PQIDX_RETURN_IF_ERROR(dialed.status());
  std::unique_ptr<Connection> conn = std::move(dialed).value();
  SubscribeRequest request;
  request.from_ticket = from_ticket;
  request.force_snapshot = force_snapshot;
  ByteWriter writer;
  request.Encode(&writer);
  const std::string payload = writer.Release();
  FrameHeader header;
  header.type = MessageType::kSubscribe;
  header.request_id = 1;
  header.payload_size = static_cast<uint32_t>(payload.size());
  PQIDX_RETURN_IF_ERROR(conn->Send(EncodeFrame(header, payload)));
  std::string buffer;
  PQIDX_RETURN_IF_ERROR(conn->ReceiveExact(kFrameHeaderSize, &buffer));
  FrameHeader response_header;
  PQIDX_RETURN_IF_ERROR(DecodeFrameHeader(buffer, &response_header));
  if (!response_header.is_response()) {
    return DataLossError("request frame in reply to subscribe");
  }
  std::string body;
  if (response_header.payload_size > 0) {
    PQIDX_RETURN_IF_ERROR(
        conn->ReceiveExact(response_header.payload_size, &body));
  }
  ByteReader reader(body);
  Status transported;
  PQIDX_RETURN_IF_ERROR(DecodeStatus(&reader, &transported));
  // Covers both a kSubscribeAck error and the server's request_id-0
  // admission-control rejection.
  PQIDX_RETURN_IF_ERROR(transported);
  if (response_header.type != MessageType::kSubscribeAck) {
    return DataLossError("unexpected reply to subscribe");
  }
  StatusOr<SubscribeAck> ack = SubscribeAck::Decode(&reader);
  PQIDX_RETURN_IF_ERROR(ack.status());
  if (reader.remaining() != 0) {
    return DataLossError("trailing bytes after subscribe ack");
  }
  return std::make_pair(std::move(conn), *ack);
}

}  // namespace

StatusOr<Follower::Handshake> Follower::ConnectWithRetry(
    uint64_t from_ticket, bool force_snapshot) {
  Backoff backoff(options_.backoff,
                  options_.backoff_seed +
                      static_cast<uint64_t>(
                          reconnects_.load(std::memory_order_relaxed)));
  for (int attempt = 1;; ++attempt) {
    if (stopped_.load()) return UnavailableError("follower stopped");
    StatusOr<std::pair<std::unique_ptr<Connection>, SubscribeAck>> tried =
        TrySubscribe(options_.dial, from_ticket, force_snapshot);
    if (tried.ok()) {
      Handshake handshake;
      handshake.conn = std::move(tried->first);
      handshake.ack = tried->second;
      return handshake;
    }
    if (options_.backoff.max_attempts > 0 &&
        attempt >= options_.backoff.max_attempts) {
      return tried.status();
    }
    // Sleep in short slices so Stop() never waits out a long backoff.
    int64_t remaining_us = backoff.NextDelayUs();
    while (remaining_us > 0 && !stopped_.load()) {
      const int64_t slice_us = std::min<int64_t>(remaining_us, 10'000);
      std::this_thread::sleep_for(std::chrono::microseconds(slice_us));
      remaining_us -= slice_us;
    }
  }
}

Status Follower::ReceiveDeltaFrame(Connection* conn, DeltaFrame* out) {
  out->entries.clear();
  bool first = true;
  for (;;) {
    std::string buffer;
    PQIDX_RETURN_IF_ERROR(conn->ReceiveExact(kFrameHeaderSize, &buffer));
    FrameHeader header;
    PQIDX_RETURN_IF_ERROR(DecodeFrameHeader(buffer, &header));
    if (header.type != MessageType::kDeltaFrame || !header.is_response()) {
      return DataLossError("unexpected frame in replication stream");
    }
    std::string payload;
    if (header.payload_size > 0) {
      PQIDX_RETURN_IF_ERROR(
          conn->ReceiveExact(header.payload_size, &payload));
    }
    StatusOr<DeltaFrame> chunk = DeltaFrame::Decode(payload);
    PQIDX_RETURN_IF_ERROR(chunk.status());
    if (Metrics::enabled()) {
      m_frame_bytes_->Record(static_cast<int64_t>(payload.size()));
      m_frame_delay_us_->Record(
          std::max<int64_t>(0, Metrics::NowUs() - chunk->publish_us));
    }
    if (first) {
      out->ticket = chunk->ticket;
      out->publish_us = chunk->publish_us;
      first = false;
    } else if (chunk->ticket != out->ticket) {
      return DataLossError("delta chunk ticket mismatch");
    }
    for (DeltaEntry& entry : chunk->entries) {
      out->entries.push_back(std::move(entry));
    }
    if (chunk->last_chunk) {
      out->last_chunk = true;
      return Status::Ok();
    }
  }
}

StatusOr<std::unique_ptr<ShardedStore>> Follower::InstallSnapshot(
    const SubscribeAck& ack, DeltaFrame image) {
  if (image.ticket != ack.ticket) {
    return DataLossError("snapshot image ticket mismatch");
  }
  PqShape shape;
  shape.p = ack.p;
  shape.q = ack.q;
  if (!shape.Valid()) return DataLossError("bad snapshot shape");
  std::vector<std::pair<TreeId, const PqGramIndex*>> bags;
  bags.reserve(image.entries.size());
  for (const DeltaEntry& entry : image.entries) {
    if (!entry.is_add) {
      return DataLossError("snapshot image carries a non-add entry");
    }
    bags.emplace_back(entry.tree_id, &entry.plus);
  }
  StatusOr<std::unique_ptr<ShardedStore>> created =
      ShardedStore::Create(options_.store_path, shape,
                           options_.store_shards, options_.pool_pages);
  PQIDX_RETURN_IF_ERROR(created.status());
  PQIDX_RETURN_IF_ERROR((*created)->BulkAdd(bags, nullptr, ack.ticket));
  return created;
}

StatusOr<std::shared_ptr<Follower::Serving>> Follower::BuildServing(
    std::unique_ptr<ShardedStore> store) {
  auto serving = std::make_shared<Serving>();
  serving->store = std::move(store);
  serving->server =
      std::make_unique<Server>(serving->store.get(), options_.server);
  std::unique_ptr<Listener> listener;
  if (options_.listen != nullptr) {
    StatusOr<std::unique_ptr<Listener>> made = options_.listen();
    PQIDX_RETURN_IF_ERROR(made.status());
    listener = std::move(made).value();
  }
  PQIDX_RETURN_IF_ERROR(serving->server->Start(std::move(listener)));
  return serving;
}

Status Follower::Start() {
  if (started_.exchange(true)) {
    return FailedPreconditionError("follower already started");
  }
  std::unique_ptr<ShardedStore> store;
  uint64_t from_ticket = 0;
  {
    // An absent (or unreadable) store subscribes from zero; the leader
    // then answers with a snapshot that recreates it.
    StatusOr<std::unique_ptr<ShardedStore>> opened =
        ShardedStore::Open(options_.store_path, options_.pool_pages);
    if (opened.ok()) {
      store = std::move(opened).value();
      from_ticket = store->replication_cursor();
    }
  }
  StatusOr<Handshake> handshake = ConnectWithRetry(from_ticket, false);
  PQIDX_RETURN_IF_ERROR(handshake.status());
  const SubscribeAck ack = handshake->ack;
  if (store != nullptr && (store->shape().p != static_cast<int>(ack.p) ||
                           store->shape().q != static_cast<int>(ack.q))) {
    return FailedPreconditionError(
        "local store shape differs from the leader's");
  }
  if (ack.mode == SubscribeAck::Mode::kSnapshot) {
    DeltaFrame image;
    PQIDX_RETURN_IF_ERROR(ReceiveDeltaFrame(handshake->conn.get(), &image));
    store.reset();  // release the file before Create replaces it
    StatusOr<std::unique_ptr<ShardedStore>> installed =
        InstallSnapshot(ack, std::move(image));
    PQIDX_RETURN_IF_ERROR(installed.status());
    store = std::move(installed).value();
    snapshot_resyncs_.fetch_add(1, std::memory_order_relaxed);
    m_snapshot_resyncs_->Increment();
  } else if (store == nullptr) {
    PqShape shape;
    shape.p = ack.p;
    shape.q = ack.q;
    if (!shape.Valid()) return DataLossError("bad subscribe ack shape");
    StatusOr<std::unique_ptr<ShardedStore>> created =
        ShardedStore::Create(options_.store_path, shape,
                             options_.store_shards, options_.pool_pages);
    PQIDX_RETURN_IF_ERROR(created.status());
    store = std::move(created).value();
  }
  cursor_.store(store->replication_cursor(), std::memory_order_relaxed);
  last_seen_.store(std::max(ack.ticket, store->replication_cursor()),
                   std::memory_order_relaxed);
  StatusOr<std::shared_ptr<Serving>> serving =
      BuildServing(std::move(store));
  PQIDX_RETURN_IF_ERROR(serving.status());
  {
    MutexLock lock(&serving_mutex_);
    serving_ = std::move(serving).value();
  }
  {
    MutexLock lock(&conn_mutex_);
    conn_ = std::move(handshake->conn);
  }
  recv_thread_ = std::thread([this] { RecvLoop(); });
  apply_thread_ = std::thread([this] { ApplyLoop(); });
  return Status::Ok();
}

Status Follower::StreamFrames() {
  std::shared_ptr<Connection> conn;
  {
    MutexLock lock(&conn_mutex_);
    conn = conn_;
  }
  if (conn == nullptr) return UnavailableError("no connection");
  for (;;) {
    DeltaFrame frame;
    PQIDX_RETURN_IF_ERROR(ReceiveDeltaFrame(conn.get(), &frame));
    if (frame.ticket > last_seen_.load(std::memory_order_relaxed)) {
      last_seen_.store(frame.ticket, std::memory_order_relaxed);
    }
    const uint64_t seen = last_seen_.load(std::memory_order_relaxed);
    const uint64_t applied = cursor_.load(std::memory_order_relaxed);
    m_lag_tickets_->Set(
        seen > applied ? static_cast<int64_t>(seen - applied) : 0);
    if (frame.entries.empty()) {
      // Heartbeat: a freshness signal, never queued or applied. When
      // fully caught up the lag is the heartbeat's wire delay.
      if (seen <= applied) {
        m_lag_us_->Set(
            std::max<int64_t>(0, Metrics::NowUs() - frame.publish_us));
      }
      continue;
    }
    MutexLock lock(&pending_mutex_);
    while (static_cast<int>(pending_.size()) >= options_.max_pending &&
           !stopped_.load() && !divergence_.load()) {
      // Backpressure: stop reading; the kernel buffers fill and the
      // leader's slow-subscriber policy takes over.
      pending_cv_.Wait(&pending_mutex_);
    }
    if (stopped_.load()) return UnavailableError("follower stopped");
    if (divergence_.load()) return DataLossError("stream diverged");
    pending_.push_back(std::move(frame));
    pending_cv_.NotifyAll();
  }
}

Status Follower::Resync(Handshake handshake) {
  // Quiesce the apply thread: no batch may straddle the store swap.
  {
    MutexLock lock(&pending_mutex_);
    pending_.clear();
    while (applying_ && !stopped_.load()) pending_cv_.Wait(&pending_mutex_);
  }
  if (stopped_.load()) return UnavailableError("follower stopped");
  DeltaFrame image;
  PQIDX_RETURN_IF_ERROR(ReceiveDeltaFrame(handshake.conn.get(), &image));
  // Stop the retired stack first so a fixed-port listen() can rebind.
  std::shared_ptr<Serving> retired;
  {
    MutexLock lock(&serving_mutex_);
    retired = std::move(serving_);
  }
  if (retired != nullptr) retired->server->Stop();
  retired.reset();
  StatusOr<std::unique_ptr<ShardedStore>> installed =
      InstallSnapshot(handshake.ack, std::move(image));
  PQIDX_RETURN_IF_ERROR(installed.status());
  StatusOr<std::shared_ptr<Serving>> serving =
      BuildServing(std::move(installed).value());
  PQIDX_RETURN_IF_ERROR(serving.status());
  {
    MutexLock lock(&serving_mutex_);
    serving_ = std::move(serving).value();
  }
  cursor_.store(handshake.ack.ticket, std::memory_order_relaxed);
  if (handshake.ack.ticket > last_seen_.load(std::memory_order_relaxed)) {
    last_seen_.store(handshake.ack.ticket, std::memory_order_relaxed);
  }
  snapshot_resyncs_.fetch_add(1, std::memory_order_relaxed);
  m_snapshot_resyncs_->Increment();
  {
    MutexLock lock(&conn_mutex_);
    conn_ = std::move(handshake.conn);
  }
  return Status::Ok();
}

void Follower::RecvLoop() {
  for (;;) {
    const Status streamed = StreamFrames();
    (void)streamed;  // outage errors are retried, not terminal
    if (stopped_.load()) return;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    m_reconnects_->Increment();
    const bool force = divergence_.exchange(false);
    StatusOr<Handshake> handshake =
        ConnectWithRetry(cursor_.load(std::memory_order_relaxed), force);
    if (!handshake.ok()) {
      if (stopped_.load()) return;
      // Reconnect budget spent: the stream ends; the server keeps
      // serving reads at the last applied epoch.
      SetStreamStatus(handshake.status());
      return;
    }
    if (handshake->ack.mode == SubscribeAck::Mode::kSnapshot) {
      Status resynced = Resync(std::move(handshake).value());
      if (!resynced.ok()) {
        if (stopped_.load()) return;
        SetStreamStatus(std::move(resynced));
        return;
      }
    } else {
      MutexLock lock(&conn_mutex_);
      conn_ = std::move(handshake->conn);
    }
  }
}

void Follower::ApplyLoop() {
  for (;;) {
    std::vector<DeltaFrame> frames;
    {
      MutexLock lock(&pending_mutex_);
      while (pending_.empty() && !stopped_.load()) {
        pending_cv_.Wait(&pending_mutex_);
      }
      if (stopped_.load()) return;
      // Drain everything pending (bounded) into ONE local WAL
      // transaction: the fsync amortization that makes catch-up beat
      // per-batch replay.
      while (!pending_.empty() &&
             static_cast<int>(frames.size()) < options_.max_apply_batch) {
        frames.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      applying_ = true;
      pending_cv_.NotifyAll();
    }
    std::shared_ptr<Serving> serving;
    {
      MutexLock lock(&serving_mutex_);
      serving = serving_;
    }
    const int64_t frame_count = static_cast<int64_t>(frames.size());
    const int64_t newest_publish_us = frames.back().publish_us;
    Status applied;
    {
      ScopedTimer timer(m_apply_us_);
      applied = serving->server->ApplyReplicated(std::move(frames));
    }
    {
      MutexLock lock(&pending_mutex_);
      applying_ = false;
      if (!applied.ok()) pending_.clear();
      pending_cv_.NotifyAll();
    }
    if (!applied.ok()) {
      // Divergence: drop the stream; the recv thread reconnects with a
      // forced snapshot and rebuilds the serving stack.
      divergence_.store(true);
      CloseConn();
      continue;
    }
    cursor_.store(serving->store->replication_cursor(),
                  std::memory_order_relaxed);
    m_frames_applied_->Add(frame_count);
    const uint64_t seen = last_seen_.load(std::memory_order_relaxed);
    const uint64_t applied_ticket = cursor_.load(std::memory_order_relaxed);
    m_lag_tickets_->Set(seen > applied_ticket
                            ? static_cast<int64_t>(seen - applied_ticket)
                            : 0);
    m_lag_us_->Set(std::max<int64_t>(0, Metrics::NowUs() - newest_publish_us));
  }
}

void Follower::CloseConn() {
  MutexLock lock(&conn_mutex_);
  if (conn_ != nullptr) conn_->Close();
}

void Follower::SetStreamStatus(Status status) {
  MutexLock lock(&status_mutex_);
  stream_status_ = std::move(status);
}

Status Follower::stream_status() const {
  MutexLock lock(&status_mutex_);
  return stream_status_;
}

std::shared_ptr<Server> Follower::server() const {
  MutexLock lock(&serving_mutex_);
  if (serving_ == nullptr) return nullptr;
  return std::shared_ptr<Server>(serving_, serving_->server.get());
}

bool Follower::WaitForCursor(uint64_t ticket, int64_t timeout_ms) const {
  const int64_t deadline_us = Metrics::NowUs() + timeout_ms * 1000;
  while (cursor_.load(std::memory_order_relaxed) < ticket) {
    if (Metrics::NowUs() >= deadline_us) {
      return cursor_.load(std::memory_order_relaxed) >= ticket;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

void Follower::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  CloseConn();
  {
    MutexLock lock(&pending_mutex_);
    pending_cv_.NotifyAll();
  }
  if (recv_thread_.joinable()) recv_thread_.join();
  if (apply_thread_.joinable()) apply_thread_.join();
  std::shared_ptr<Serving> serving;
  {
    MutexLock lock(&serving_mutex_);
    serving = serving_;
  }
  if (serving != nullptr) serving->server->Stop();
}

}  // namespace pqidx
