#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <utility>

#include "common/check.h"
#include "service/replication.h"

namespace pqidx {
namespace {

// Response payload carrying only a status (Ping, AddTree, ApplyEdits, and
// every error case).
std::string StatusPayload(const Status& status) {
  ByteWriter writer;
  EncodeStatus(status, &writer);
  return writer.Release();
}

// Registry/slow-op-log name of one opcode.
const char* OpcodeName(MessageType type) {
  switch (type) {
    case MessageType::kPing:
      return "ping";
    case MessageType::kLookup:
      return "lookup";
    case MessageType::kAddTree:
      return "add_tree";
    case MessageType::kApplyEdits:
      return "apply_edits";
    case MessageType::kStats:
      return "stats";
    case MessageType::kStatsSnapshot:
      return "stats_snapshot";
    case MessageType::kSubscribe:
      return "subscribe";
    case MessageType::kSubscribeAck:
      return "subscribe_ack";
    case MessageType::kDeltaFrame:
      return "delta_frame";
    case MessageType::kTopK:
      return "topk";
  }
  PQIDX_CHECK_MSG(false, "unreachable message type");
  return "";
}

}  // namespace

Server::Server(ShardedStore* index, ServerOptions options)
    : index_(index), options_(options) {
  PQIDX_CHECK(options_.max_connections >= 1);
  PQIDX_CHECK(options_.max_write_queue >= 0);
  PQIDX_CHECK(options_.max_group_commit >= 1);
  PQIDX_CHECK(options_.lookup_threads >= 0);
  PQIDX_CHECK(options_.lookup_shards >= 0);
  PQIDX_CHECK(options_.commit_pipeline_depth >= 1);
  PQIDX_CHECK(options_.snapshot_full_rebuild_every >= 0);
  PQIDX_CHECK(options_.staging_threads >= 0);
  Metrics& metrics = Metrics::Default();
  PQIDX_CHECK(options_.replication_history >= 0);
  PQIDX_CHECK(options_.replication_max_queue >= 1);
  for (uint8_t t = static_cast<uint8_t>(MessageType::kPing);
       t <= static_cast<uint8_t>(MessageType::kTopK); ++t) {
    m_request_us_[t] = metrics.histogram(
        std::string("server.") + OpcodeName(static_cast<MessageType>(t)) +
        "_us");
  }
  m_batch_edits_ = metrics.histogram("server.group_commit_batch");
  m_rebuild_us_ = metrics.histogram("server.snapshot_rebuild_us");
  m_snapshot_incremental_us_ =
      metrics.histogram("server.snapshot_incremental_us");
  m_snapshot_full_us_ = metrics.histogram("server.snapshot_full_us");
  m_pipeline_depth_ = metrics.gauge("server.pipeline_depth");
  m_queue_depth_ = metrics.gauge("server.write_queue_depth");
  m_active_connections_ = metrics.gauge("server.active_connections");
  m_snapshot_epoch_ = metrics.gauge("server.snapshot_epoch");
  m_lookups_ = metrics.counter("server.lookups");
  m_edits_applied_ = metrics.counter("server.edits_applied");
  m_edit_commits_ = metrics.counter("server.edit_commits");
  m_rejected_ = metrics.counter("server.rejected");
  m_protocol_errors_ = metrics.counter("server.protocol_errors");
  slow_us_ = options_.slow_op_us != 0 ? options_.slow_op_us
                                      : SlowOpLog::Default().threshold_us();
  PQIDX_CHECK(options_.query_cache_mb >= 0);
  if (!options_.query_cache_off && options_.query_cache_mb > 0) {
    QueryCache::Options cache_options;
    cache_options.max_bytes =
        static_cast<size_t>(options_.query_cache_mb) << 20;
    query_cache_ = std::make_unique<QueryCache>(cache_options);
  }
}

Server::~Server() { Stop(); }

Status Server::Start(std::unique_ptr<Listener> listener) {
  if (started_.exchange(true)) {
    // A second Start used to CHECK-abort; a caller bug this cheap to
    // report must not take the process down.
    return FailedPreconditionError("server already started");
  }
  StatusOr<ForestIndex> replica = index_->MaterializeForest();
  PQIDX_RETURN_IF_ERROR(replica.status());
  cursor_base_ = index_->replication_cursor();
  // A store populated outside replication (bulk ingest) still sits at
  // cursor 0 -- the ticket that also means "follower with nothing".
  // Serve it as logical cursor 1 so the snapshots it ships are stamped
  // with a resumable ticket; otherwise every reconnecting follower
  // would re-snapshot forever. Deterministic across leader restarts
  // (the first commit durably advances the cursor past 1).
  if (cursor_base_ == 0 && replica->size() > 0) cursor_base_ = 1;
  {
    // No handler threads exist yet; the lock satisfies the analysis and
    // costs one uncontended acquire.
    WriterLock lock(&index_mutex_);
    replica_ = *std::move(replica);
    shape_ = replica_.shape();
    replica_ticket_ = cursor_base_;
  }
  if (options_.lookup_threads > 0) {
    lookup_pool_ = std::make_unique<ThreadPool>(options_.lookup_threads);
  }
  if (options_.staging_threads > 0) {
    staging_pool_ = std::make_unique<ThreadPool>(options_.staging_threads);
  }
  if (options_.replication) {
    ReplicationHubOptions hub_options;
    hub_options.history = options_.replication_history;
    hub_options.max_queue = options_.replication_max_queue;
    hub_ = std::make_unique<ReplicationHub>(hub_options);
    hub_->Initialize(cursor_base_);
  }
  PublishEngine({});  // epoch 1: the initial snapshot of the store
  if (listener != nullptr) {
    listener_ = std::move(listener);
    pool_ = std::make_unique<ThreadPool>(options_.max_connections);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }
  return Status::Ok();
}

std::shared_ptr<const LookupEngine> Server::EngineSnapshot() const {
  MutexLock lock(&engine_mutex_);
  return engine_;
}

void Server::PublishEngine(const std::vector<TreeId>& changed) {
  const auto start = std::chrono::steady_clock::now();
  int shards = options_.lookup_shards;
  if (shards == 0) {
    // A one-shard snapshot would make every incremental publish a full
    // recompile (the lone shard owns every tree), so the default keeps
    // enough shards for copy-on-write sharing even without lookup
    // threads. Build() clamps to the tree count for tiny forests.
    shards = std::max(16, options_.lookup_threads * 2);
  }
  std::shared_ptr<const LookupEngine> prev = EngineSnapshot();
  // Full builds: the initial snapshot, and every Nth publish thereafter
  // (cadence 1 rebuilds every time; 0 never after the first). Everything
  // in between derives the next epoch from the previous one by
  // copy-on-write, recompiling only the shards owning changed trees.
  bool full = prev == nullptr || changed.empty();
  if (!full && options_.snapshot_full_rebuild_every > 0 &&
      publishes_since_full_ + 1 >= options_.snapshot_full_rebuild_every) {
    full = true;
  }
  const ForestIndex& replica = replica_for_publish();
  std::shared_ptr<const LookupEngine> next =
      full ? LookupEngine::Build(replica, shards)
           : LookupEngine::ApplyDelta(prev, replica, changed);
  publishes_since_full_ = full ? 0 : publishes_since_full_ + 1;
  const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  {
    MutexLock lock(&engine_mutex_);
    engine_ = next;
  }
  // Reconcile the result cache with the new epoch's shard set: entries
  // for shards the publish recompiled (or, on a full build, all of
  // them) are dead by uid and reclaimed here; shared shards stay warm.
  if (query_cache_ != nullptr) query_cache_->OnPublish(next->ShardUids());
  snapshot_epoch_.fetch_add(1);
  last_rebuild_us_.store(us);
  snapshot_rebuild_us_.fetch_add(us);
  m_snapshot_epoch_->Set(snapshot_epoch_.load());
  if (Metrics::enabled()) {
    m_rebuild_us_->Record(us);
    (full ? m_snapshot_full_us_ : m_snapshot_incremental_us_)->Record(us);
  }
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  if (listener_ != nullptr) listener_->Close();
  {
    MutexLock lock(&connections_mutex_);
    for (const std::weak_ptr<Connection>& weak : connections_) {
      if (std::shared_ptr<Connection> conn = weak.lock()) conn->Close();
    }
  }
  // End every subscription so ServeSubscriber handlers stop waiting for
  // frames and observe their closed connections.
  if (hub_ != nullptr) hub_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Joining the pool drains the handlers; their connections are already
  // shut down, so every blocked Send/ReceiveExact has returned.
  pool_.reset();
}

ServiceStats Server::stats() const {
  ServiceStats stats;
  // shape_ is immutable after Start(); reading replica_.shape() here
  // without the lock used to race the storage turns mutating replica_.
  stats.p = shape_.p;
  stats.q = shape_.q;
  {
    ReaderLock lock(&index_mutex_);
    stats.tree_count = replica_.size();
  }
  stats.lookups = lookups_.load();
  stats.edits_applied = edits_applied_.load();
  stats.edit_commits = edit_commits_.load();
  stats.max_batch = max_batch_.load();
  stats.rejected = rejected_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.snapshot_epoch = snapshot_epoch_.load();
  stats.candidates_pruned = candidates_pruned_.load();
  stats.candidates_scored = candidates_scored_.load();
  stats.snapshot_rebuild_us = snapshot_rebuild_us_.load();
  stats.last_rebuild_us = last_rebuild_us_.load();
  return stats;
}

void Server::AcceptLoop() {
  for (;;) {
    StatusOr<std::unique_ptr<Connection>> accepted = listener_->Accept();
    if (!accepted.ok()) return;  // listener closed (or broken): stop
    std::shared_ptr<Connection> conn = std::move(accepted).value();
    if (active_connections_.load() >= options_.max_connections) {
      // Admission control: reject before reading anything. request_id 0
      // marks a connection-level rejection (no request carries id 0).
      rejected_.fetch_add(1);
      m_rejected_->Increment();
      FrameHeader header;
      header.type = MessageType::kPing;
      header.flags = kFrameFlagResponse;
      header.request_id = 0;
      std::string payload =
          StatusPayload(UnavailableError("server at connection capacity"));
      header.payload_size = static_cast<uint32_t>(payload.size());
      // Best-effort courtesy reply; the connection is being refused
      // either way, so a send failure changes nothing.
      (void)conn->Send(EncodeFrame(header, payload));
      conn->Close();
      continue;
    }
    active_connections_.fetch_add(1);
    m_active_connections_->Set(active_connections_.load());
    {
      MutexLock lock(&connections_mutex_);
      std::erase_if(connections_,
                    [](const std::weak_ptr<Connection>& w) {
                      return w.expired();
                    });
      connections_.push_back(conn);
    }
    pool_->Schedule([this, conn] { HandleConnection(conn); });
  }
}

void Server::HandleConnection(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  for (;;) {
    Status received = conn->ReceiveExact(kFrameHeaderSize, &buffer);
    if (!received.ok()) {
      // OUT_OF_RANGE is a clean close between frames; anything else is a
      // torn connection. Either way this handler is done.
      if (received.code() != StatusCode::kOutOfRange &&
          !stopped_.load()) {
        protocol_errors_.fetch_add(1);
        m_protocol_errors_->Increment();
      }
      break;
    }
    FrameHeader header;
    Status decoded = DecodeFrameHeader(buffer, &header);
    if (decoded.ok() && header.is_response()) {
      decoded = DataLossError("response frame sent to server");
    }
    if (!decoded.ok()) {
      // The stream cannot be resynchronized after a bad header: report
      // the error on request_id 0 and drop the connection.
      protocol_errors_.fetch_add(1);
      m_protocol_errors_->Increment();
      FrameHeader error_header;
      error_header.type = MessageType::kPing;
      error_header.flags = kFrameFlagResponse;
      error_header.request_id = 0;
      std::string payload = StatusPayload(decoded);
      error_header.payload_size = static_cast<uint32_t>(payload.size());
      // Best-effort error report; the handler tears the stream down on
      // the next line regardless of whether the peer saw it.
      (void)conn->Send(EncodeFrame(error_header, payload));
      break;
    }
    std::string payload;
    if (header.payload_size > 0) {
      Status body = conn->ReceiveExact(header.payload_size, &payload);
      if (!body.ok()) {
        if (!stopped_.load()) {
          protocol_errors_.fetch_add(1);
          m_protocol_errors_->Increment();
        }
        break;
      }
    }
    if (header.type == MessageType::kSubscribe) {
      // A subscription takes over the connection: the peer sends
      // nothing further and this end streams delta frames until one
      // side drops.
      ServeSubscriber(conn, header, payload);
      break;
    }
    const int64_t request_start_us =
        Metrics::enabled() ? Metrics::NowUs() : 0;
    std::string response = HandleRequest(header.type, payload);
    if (Metrics::enabled()) {
      const int64_t us = Metrics::NowUs() - request_start_us;
      m_request_us_[static_cast<uint8_t>(header.type)]->Record(us);
      if (slow_us_ > 0 && us >= slow_us_) {
        // ForceReport: slow_us_ (ServerOptions::slow_op_us) is this
        // server's threshold; the default log's must not re-filter.
        SlowOpLog::Default().ForceReport(
            std::string("server.") + OpcodeName(header.type), us,
            "payload_bytes=" + std::to_string(payload.size()));
      }
    }
    FrameHeader response_header;
    response_header.type = header.type;
    response_header.flags = kFrameFlagResponse;
    response_header.request_id = header.request_id;
    response_header.payload_size = static_cast<uint32_t>(response.size());
    if (!conn->Send(EncodeFrame(response_header, response)).ok()) break;
  }
  conn->Close();
  active_connections_.fetch_sub(1);
  m_active_connections_->Set(active_connections_.load());
}

std::string Server::HandleRequest(MessageType type,
                                  std::string_view payload) {
  switch (type) {
    case MessageType::kPing:
      return StatusPayload(Status::Ok());
    case MessageType::kLookup:
      return HandleLookup(payload);
    case MessageType::kTopK:
      return HandleTopK(payload);
    case MessageType::kAddTree:
      return HandleAddTree(payload);
    case MessageType::kApplyEdits:
      return HandleApplyEdits(payload);
    case MessageType::kStats:
      return HandleStats();
    case MessageType::kStatsSnapshot:
      return HandleStatsSnapshot(payload);
    case MessageType::kSubscribe:
    case MessageType::kSubscribeAck:
    case MessageType::kDeltaFrame:
      // kSubscribe is intercepted before dispatch (HandleConnection);
      // the stream messages are only ever valid leader -> follower.
      protocol_errors_.fetch_add(1);
      m_protocol_errors_->Increment();
      return StatusPayload(InvalidArgumentError(
          "replication opcode outside a subscription stream"));
  }
  // DecodeFrameHeader admits only the enumerated types.
  PQIDX_CHECK_MSG(false, "unreachable message type");
  return std::string();
}

std::string Server::HandleLookup(std::string_view payload) {
  StatusOr<LookupRequest> request = LookupRequest::Decode(payload);
  if (!request.ok()) {
    protocol_errors_.fetch_add(1);
    m_protocol_errors_->Increment();
    return StatusPayload(request.status());
  }
  // LookupEngine::Lookup CHECK-fails on a shape mismatch; a remote
  // caller must never be able to trip that, so validate here.
  std::shared_ptr<const LookupEngine> engine = EngineSnapshot();
  if (!(request->query.shape() == engine->shape())) {
    return StatusPayload(InvalidArgumentError("query shape mismatch"));
  }
  // Scoring runs on the private snapshot copy with no lock held:
  // concurrent commits publish new snapshots without ever blocking this.
  LookupEngineStats engine_stats;
  LookupResponse response;
  response.results =
      engine->Lookup(request->query, request->tau, lookup_pool_.get(),
                     &engine_stats, query_cache_.get());
  lookups_.fetch_add(1);
  m_lookups_->Increment();
  candidates_pruned_.fetch_add(engine_stats.pruned);
  candidates_scored_.fetch_add(engine_stats.scored);
  ByteWriter writer;
  EncodeStatus(Status::Ok(), &writer);
  response.Encode(&writer);
  return writer.Release();
}

std::string Server::HandleTopK(std::string_view payload) {
  StatusOr<TopKRequest> request = TopKRequest::Decode(payload);
  if (!request.ok()) {
    protocol_errors_.fetch_add(1);
    m_protocol_errors_->Increment();
    return StatusPayload(request.status());
  }
  std::shared_ptr<const LookupEngine> engine = EngineSnapshot();
  if (!(request->query.shape() == engine->shape())) {
    return StatusPayload(InvalidArgumentError("query shape mismatch"));
  }
  LookupEngineStats engine_stats;
  LookupResponse response;
  response.results =
      engine->TopK(request->query, request->k, lookup_pool_.get(),
                   &engine_stats, query_cache_.get());
  lookups_.fetch_add(1);
  m_lookups_->Increment();
  candidates_pruned_.fetch_add(engine_stats.pruned);
  candidates_scored_.fetch_add(engine_stats.scored);
  ByteWriter writer;
  EncodeStatus(Status::Ok(), &writer);
  response.Encode(&writer);
  return writer.Release();
}

std::string Server::HandleAddTree(std::string_view payload) {
  if (options_.read_only) {
    return StatusPayload(
        FailedPreconditionError("read-only follower rejects edits"));
  }
  if (payload.size() > kMaxEditPayload) {
    // The cap (wire.h) keeps a committed batch re-encodable into delta
    // frames: every chunk fits under the frame limit.
    protocol_errors_.fetch_add(1);
    m_protocol_errors_->Increment();
    return StatusPayload(InvalidArgumentError("edit payload too large"));
  }
  StatusOr<AddTreeRequest> request = AddTreeRequest::Decode(payload);
  if (!request.ok()) {
    protocol_errors_.fetch_add(1);
    m_protocol_errors_->Increment();
    return StatusPayload(request.status());
  }
  if (!(request->bag.shape() == shape_)) {
    return StatusPayload(InvalidArgumentError("bag shape mismatch"));
  }
  PendingEdit edit;
  edit.id = request->tree_id;
  edit.is_add = true;
  edit.add_or_plus = std::move(request->bag);
  return StatusPayload(SubmitEdit(&edit));
}

std::string Server::HandleApplyEdits(std::string_view payload) {
  if (options_.read_only) {
    return StatusPayload(
        FailedPreconditionError("read-only follower rejects edits"));
  }
  if (payload.size() > kMaxEditPayload) {
    protocol_errors_.fetch_add(1);
    m_protocol_errors_->Increment();
    return StatusPayload(InvalidArgumentError("edit payload too large"));
  }
  StatusOr<ApplyEditsRequest> request = ApplyEditsRequest::Decode(payload);
  if (!request.ok()) {
    protocol_errors_.fetch_add(1);
    m_protocol_errors_->Increment();
    return StatusPayload(request.status());
  }
  if (!(request->plus.shape() == shape_) ||
      !(request->minus.shape() == shape_)) {
    return StatusPayload(InvalidArgumentError("delta bag shape mismatch"));
  }
  PendingEdit edit;
  edit.id = request->tree_id;
  edit.is_add = false;
  edit.add_or_plus = std::move(request->plus);
  edit.minus = std::move(request->minus);
  return StatusPayload(SubmitEdit(&edit));
}

std::string Server::HandleStats() {
  ByteWriter writer;
  EncodeStatus(Status::Ok(), &writer);
  stats().Encode(&writer);
  return writer.Release();
}

std::string Server::HandleStatsSnapshot(std::string_view payload) {
  // The request carries no body; reject anything else so a confused
  // client fails loudly instead of having bytes silently ignored.
  if (!payload.empty()) {
    protocol_errors_.fetch_add(1);
    m_protocol_errors_->Increment();
    return StatusPayload(
        InvalidArgumentError("stats snapshot request carries a payload"));
  }
  ByteWriter writer;
  EncodeStatus(Status::Ok(), &writer);
  EncodeMetricsSnapshot(Metrics::Default().Snapshot(), &writer);
  return writer.Release();
}

Status Server::SubmitEdit(PendingEdit* edit) {
  MutexLock lock(&write_mutex_);
  if (static_cast<int>(write_queue_.size()) >= options_.max_write_queue) {
    rejected_.fetch_add(1);
    m_rejected_->Increment();
    return UnavailableError("write queue full");
  }
  write_queue_.push_back(edit);
  m_queue_depth_->Set(static_cast<int64_t>(write_queue_.size()));
  for (;;) {
    if (edit->done) return edit->result;
    if (active_commits_ < options_.commit_pipeline_depth &&
        !write_queue_.empty()) {
      // Become a batch leader. Optionally hold leadership so concurrent
      // writers can pile into this batch -- the same window a slow fsync
      // opens naturally.
      ++active_commits_;
      m_pipeline_depth_->Set(active_commits_);
      if (options_.commit_hold_us > 0) {
        lock.Unlock();
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.commit_hold_us));
        lock.Lock();
      }
      std::vector<PendingEdit*> batch;
      while (!write_queue_.empty() &&
             static_cast<int>(batch.size()) < options_.max_group_commit) {
        batch.push_back(write_queue_.front());
        write_queue_.pop_front();
      }
      m_queue_depth_->Set(static_cast<int64_t>(write_queue_.size()));
      if (batch.empty()) {
        // Another leader drained the queue during the hold window.
        --active_commits_;
        m_pipeline_depth_->Set(active_commits_);
        continue;
      }
      // The ticket is drawn under write_mutex_ together with the drain,
      // so ticket order == queue order and the pipeline's turnstiles
      // replay the exact serial-leader commit order.
      const uint64_t ticket = next_ticket_++;
      lock.Unlock();
      // The durable replication cursor for this batch: pipeline tickets
      // restart at 0 every Start, so offset them past the store's
      // cursor (+1 keeps cursor 0 meaning "nothing replicated").
      CommitBatch(batch, ticket, cursor_base_ + ticket + 1);
      lock.Lock();
      for (PendingEdit* done : batch) done->done = true;
      --active_commits_;
      m_pipeline_depth_->Set(active_commits_);
      write_cv_.NotifyAll();
      continue;  // our own edit is usually in `batch`; re-check
    }
    write_cv_.Wait(&write_mutex_);
  }
}

void Server::ValidateGroup(const std::vector<PendingEdit*>& batch,
                           const std::vector<size_t>& group,
                           std::vector<uint8_t>* edit_ok,
                           std::unique_ptr<PqGramIndex>* composed) const {
  const TreeId id = batch[group.front()]->id;
  auto pending = overlay_.find(id);
  const PqGramIndex* current = pending != overlay_.end()
                                   ? &pending->second.bag
                                   : replica_.Find(id);
  for (size_t i : group) {
    PendingEdit& edit = *batch[i];
    const PqGramIndex* cur =
        *composed != nullptr ? composed->get() : current;
    if (edit.is_add) {
      if (cur != nullptr) {
        edit.result = FailedPreconditionError("tree already indexed");
        continue;
      }
      *composed = std::make_unique<PqGramIndex>(edit.add_or_plus);
    } else {
      if (cur == nullptr) {
        edit.result = NotFoundError("tree not indexed");
        continue;
      }
      bool sub_bag = true;
      for (const auto& [fp, count] : edit.minus.counts()) {
        if (cur->Count(fp) < count) {
          sub_bag = false;
          break;
        }
      }
      if (!sub_bag) {
        edit.result = InvalidArgumentError(
            "minus bag is not a sub-bag of the stored bag");
        continue;
      }
      auto next = std::make_unique<PqGramIndex>(*cur);
      for (const auto& [fp, count] : edit.minus.counts()) {
        next->Remove(fp, count);
      }
      for (const auto& [fp, count] : edit.add_or_plus.counts()) {
        next->Add(fp, count);
      }
      *composed = std::move(next);
    }
    (*edit_ok)[i] = 1;
  }
}

void Server::ValidateBatch(const std::vector<PendingEdit*>& batch,
                           uint64_t ticket, StagedBatch* staged) {
  // Validation runs with the index exclusively locked: it reads replica_
  // and overlay_, and installs this batch's pending bags into overlay_.
  // The staging workers only *read* shared state (each works on its own
  // tree group and its own PendingEdit objects), so fanning out under
  // the exclusive lock is safe.
  WriterLock lock(&index_mutex_);

  // Group the batch by tree id (batch order preserved within a group):
  // distinct trees are independent by contract, so their validation +
  // next-bag materialization parallelize; edits of one tree chain
  // sequentially, mirroring the catalog checks inside
  // PersistentForestIndex::ApplyBatch. Crucially this proves minus is a
  // sub-bag of the stored bag, which the storage layer's UpdateTree
  // contract requires of its callers.
  std::vector<std::vector<size_t>> groups;
  {
    std::map<TreeId, size_t> group_of;
    for (size_t i = 0; i < batch.size(); ++i) {
      auto [it, inserted] = group_of.try_emplace(batch[i]->id, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(i);
    }
  }
  std::vector<uint8_t> edit_ok(batch.size(), 0);
  // One composed next bag per group that staged anything.
  std::vector<std::unique_ptr<PqGramIndex>> group_bags(groups.size());
  // no-tsa: the lambda runs on staging workers that do not themselves
  // hold index_mutex_ -- the leader (this thread) holds it exclusively
  // for the whole fan-out and the workers touch disjoint slots, which
  // is ValidateGroup's documented PQIDX_REQUIRES contract.
  auto validate_group = [&](int64_t g) PQIDX_NO_THREAD_SAFETY_ANALYSIS {
    ValidateGroup(batch, groups[static_cast<size_t>(g)], &edit_ok,
                  &group_bags[static_cast<size_t>(g)]);
  };
  if (staging_pool_ != nullptr && groups.size() > 1) {
    staging_pool_->ParallelFor(static_cast<int64_t>(groups.size()),
                               validate_group);
  } else {
    for (size_t g = 0; g < groups.size(); ++g) {
      validate_group(static_cast<int64_t>(g));
    }
  }

  // Assemble the store edits in batch order and stage the composed bags:
  // `scratch` owns the copy this batch will apply to replica_ in its
  // storage turn; overlay_ gets its own copy tagged with our ticket so
  // successor batches validate against the pending state. (Two copies on
  // purpose: a successor may overwrite the overlay entry with a further
  // composed bag before our storage turn runs.)
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!edit_ok[i]) continue;
    PendingEdit& edit = *batch[i];
    PersistentForestIndex::BatchEdit batch_edit;
    batch_edit.id = edit.id;
    if (edit.is_add) {
      batch_edit.add = &edit.add_or_plus;
    } else {
      batch_edit.plus = &edit.add_or_plus;
      batch_edit.minus = &edit.minus;
    }
    staged->edits.push_back(batch_edit);
    staged->edit_to_batch.push_back(i);
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    if (group_bags[g] == nullptr) continue;
    const TreeId id = batch[groups[g].front()]->id;
    overlay_.insert_or_assign(id, PendingBag{*group_bags[g], ticket});
    staged->scratch.insert_or_assign(id, std::move(*group_bags[g]));
  }
  staged->failure_stamp = failure_stamp_;
}

void Server::CommitBatch(const std::vector<PendingEdit*>& batch,
                         uint64_t ticket, uint64_t cursor) {
  const int64_t start_us = Metrics::enabled() ? Metrics::NowUs() : 0;
  PersistentForestIndex::ApplyBatchTimings timings;

  // Phase V (ticket-ordered): validation + δ-materialization. At
  // pipeline depth d this overlaps the WAL write/fsync of up to d-1
  // predecessor batches.
  validate_turnstile_.Await(ticket);
  StagedBatch staged;
  ValidateBatch(batch, ticket, &staged);
  validate_turnstile_.Finish();

  // Re-encode the batch's bags as delta-frame chunks in the overlap
  // zone (off both turnstiles, so it costs pipelined batches nothing).
  // Pre-encoding before the commit is exact: a staged edit only fails
  // together with its whole batch, which then publishes nothing.
  std::vector<std::string> chunks;
  if (hub_ != nullptr && !staged.edits.empty()) {
    std::vector<DeltaEntryView> views;
    views.reserve(staged.edits.size());
    for (const PersistentForestIndex::BatchEdit& edit : staged.edits) {
      DeltaEntryView view;
      view.tree_id = edit.id;
      view.is_add = edit.add != nullptr;
      view.plus = view.is_add ? edit.add : edit.plus;
      view.minus = view.is_add ? nullptr : edit.minus;
      views.push_back(view);
    }
    chunks = EncodeDeltaFrameChunks(cursor, Metrics::NowUs(), views);
  }

  // Phase S (ticket-ordered): the WAL transaction, the replica delta,
  // and the snapshot publish. Storage commits run strictly in ticket
  // order, so the on-disk WAL sees the same atomic, ordered transactions
  // as the serial leader and the crash matrix's before/after-batch
  // guarantee carries over unchanged.
  storage_turnstile_.Await(ticket);
  int64_t applied = 0;
  if (!staged.edits.empty()) {
    // A predecessor batch that failed after our validation invalidates
    // our premises (we validated against its pending overlay bags):
    // abort before touching the store.
    bool aborted;
    {
      ReaderLock lock(&index_mutex_);
      aborted = failure_stamp_ != staged.failure_stamp;
    }
    Status committed;
    std::vector<Status> results;
    if (aborted) {
      committed = FailedPreconditionError(
          "aborted: an earlier pipelined batch failed");
      results.assign(staged.edits.size(), committed);
    } else {
      committed = index_->ApplyBatch(staged.edits, &results, &timings,
                                     staging_pool_.get(), cursor);
    }
    for (size_t j = 0; j < staged.edits.size(); ++j) {
      PendingEdit& edit = *batch[staged.edit_to_batch[j]];
      edit.result = results[j];
      // The replica validation mirrors the catalog validation inside
      // ApplyBatch, so a staged edit can only fail with the whole batch.
      PQIDX_DCHECK(results[j].ok() == committed.ok());
      if (results[j].ok()) ++applied;
    }
    if (committed.ok() && applied > 0) {
      std::vector<TreeId> changed;
      changed.reserve(staged.scratch.size());
      {
        WriterLock lock(&index_mutex_);
        for (auto& [id, bag] : staged.scratch) {
          changed.push_back(id);
          replica_.AddIndex(id, std::move(bag));
          // Retire our overlay entries; a successor batch may already
          // have replaced one with its own further-composed bag, in
          // which case it stays (tagged with the successor's ticket).
          auto it = overlay_.find(id);
          if (it != overlay_.end() && it->second.ticket == ticket) {
            overlay_.erase(it);
          }
        }
        // Advance before Publish (below) so a subscriber registering
        // under a ReaderLock either sees this cursor in replica_ or
        // gets this frame from the hub -- never neither.
        replica_ticket_ = cursor;
      }
      // Publish the batch to readers: swap in the next snapshot epoch.
      // This runs OUTSIDE index_mutex_ (it only reads replica_, and
      // storage turns are the sole replica_ mutators, strictly ordered)
      // but INSIDE the storage turn so epochs advance in ticket order.
      PublishEngine(changed);
      // Fan out to followers, also inside the storage turn so the hub
      // sees strictly increasing tickets. Publish never blocks on a
      // subscriber (bounded queues + drop policy), so this adds only
      // the fan-out memcpys to the commit path.
      if (hub_ != nullptr) hub_->Publish(cursor, std::move(chunks));
    } else {
      // The store rolled the whole batch back. Successors may have
      // validated against our (now vacuous) overlay bags: clear the
      // overlay and bump the failure stamp so they abort at their
      // storage turn instead of applying edits premised on ours.
      WriterLock lock(&index_mutex_);
      overlay_.clear();
      ++failure_stamp_;
      applied = 0;
    }
  }
  storage_turnstile_.Finish();

  if (applied == 0) return;
  edits_applied_.fetch_add(applied);
  edit_commits_.fetch_add(1);
  m_edits_applied_->Add(applied);
  m_edit_commits_->Increment();
  int64_t seen = max_batch_.load();
  while (applied > seen && !max_batch_.compare_exchange_weak(seen, applied)) {
  }
  if (Metrics::enabled()) {
    m_batch_edits_->Record(applied);
    const int64_t total_us = Metrics::NowUs() - start_us;
    if (slow_us_ > 0 && total_us >= slow_us_) {
      // The leader's phase breakdown: store apply split + snapshot
      // publish, which together dominate a slow commit.
      SlowOpLog::Default().ForceReport(
          "server.commit_batch", total_us,
          "batch=" + std::to_string(applied) +
              " validate_us=" + std::to_string(timings.validate_us) +
              " delta_us=" + std::to_string(timings.delta_us) +
              " update_us=" + std::to_string(timings.update_us) +
              " storage_us=" + std::to_string(timings.storage_us) +
              " publish_us=" + std::to_string(last_rebuild_us_.load()));
    }
  }
}

void Server::ServeSubscriber(const std::shared_ptr<Connection>& conn,
                             const FrameHeader& header,
                             std::string_view payload) {
  auto send_ack = [&](const Status& status, const SubscribeAck& ack) {
    ByteWriter writer;
    EncodeStatus(status, &writer);
    if (status.ok()) ack.Encode(&writer);
    const std::string body = writer.Release();
    FrameHeader response_header;
    response_header.type = MessageType::kSubscribeAck;
    response_header.flags = kFrameFlagResponse;
    response_header.request_id = header.request_id;
    response_header.payload_size = static_cast<uint32_t>(body.size());
    return conn->Send(EncodeFrame(response_header, body));
  };
  StatusOr<SubscribeRequest> request = SubscribeRequest::Decode(payload);
  if (!request.ok()) {
    protocol_errors_.fetch_add(1);
    m_protocol_errors_->Increment();
    (void)send_ack(request.status(), SubscribeAck());
    return;
  }
  if (hub_ == nullptr) {
    (void)send_ack(FailedPreconditionError("replication is disabled"),
                   SubscribeAck());
    return;
  }
  Subscription sub;
  SubscribeAck ack;
  ack.p = static_cast<uint8_t>(shape_.p);
  ack.q = static_cast<uint8_t>(shape_.q);
  std::vector<std::string> snapshot_chunks;
  {
    // Register-then-capture under one reader scope: the storage turn
    // advances replica_ + replica_ticket_ under the writer lock BEFORE
    // its hub Publish, so a frame is either reflected in the image
    // encoded here or enqueued on the fresh subscription -- never lost,
    // and duplicates are filtered by the subscription's skip_to_.
    ReaderLock lock(&index_mutex_);
    // Cursor 0 means "nothing replicated yet". That only delta-resumes
    // against a leader that was empty at its own cursor 0; a store
    // populated before replication existed (cursor_base_ 0 with trees)
    // must ship a snapshot or the follower would silently miss them.
    const bool force_snapshot =
        request->force_snapshot ||
        (request->from_ticket == 0 && replica_.size() > 0);
    const ReplicationHub::Resume resume = hub_->Register(
        &sub, request->from_ticket, force_snapshot, replica_ticket_);
    if (resume == ReplicationHub::Resume::kSnapshot) {
      ack.mode = SubscribeAck::Mode::kSnapshot;
      ack.ticket = replica_ticket_;
      const std::vector<TreeId> ids = replica_.TreeIds();
      std::vector<DeltaEntryView> views;
      views.reserve(ids.size());
      for (TreeId id : ids) {
        DeltaEntryView view;
        view.tree_id = id;
        view.is_add = true;
        view.plus = replica_.Find(id);
        views.push_back(view);
      }
      snapshot_chunks =
          EncodeDeltaFrameChunks(ack.ticket, Metrics::NowUs(), views);
    } else {
      ack.mode = SubscribeAck::Mode::kDelta;
      ack.ticket = request->from_ticket;
    }
  }
  auto send_chunks = [&](const std::vector<std::string>& chunks) {
    for (const std::string& chunk : chunks) {
      FrameHeader frame_header;
      frame_header.type = MessageType::kDeltaFrame;
      frame_header.flags = kFrameFlagResponse;
      frame_header.request_id = header.request_id;
      frame_header.payload_size = static_cast<uint32_t>(chunk.size());
      if (!conn->Send(EncodeFrame(frame_header, chunk)).ok()) return false;
    }
    return true;
  };
  bool live = send_ack(Status::Ok(), ack).ok();
  if (live) live = send_chunks(snapshot_chunks);
  // Stream until the subscriber drops, the hub drops it (slow), or the
  // server stops. Quiet periods send heartbeat frames: the newest
  // ticket with no entries, so the follower can compute freshness lag.
  constexpr int64_t kHeartbeatUs = 500'000;
  while (live && !stopped_.load()) {
    ReplicatedFrame frame;
    const Subscription::Next next = sub.Wait(kHeartbeatUs, &frame);
    if (next == Subscription::Next::kDone) break;
    if (next == Subscription::Next::kTimeout) {
      live = send_chunks(
          EncodeDeltaFrameChunks(hub_->last_ticket(), Metrics::NowUs(), {}));
      continue;
    }
    live = send_chunks(*frame.chunks);
  }
  hub_->Unregister(&sub);
}

Status Server::ApplyReplicated(std::vector<DeltaFrame> frames) {
  if (!started_.load() || stopped_.load()) {
    return FailedPreconditionError("server not running");
  }
  if (!options_.read_only) {
    return FailedPreconditionError(
        "ApplyReplicated requires a read-only (follower) server");
  }
  // Coalesce the run into one group-commit batch stamped with the
  // newest ticket. Frames at or below the durable cursor are replays
  // the leader re-sent across a reconnect.
  const uint64_t durable = index_->replication_cursor();
  uint64_t cursor = durable;
  std::deque<PendingEdit> edits;  // deque: stable addresses for `batch`
  std::vector<PendingEdit*> batch;
  for (DeltaFrame& frame : frames) {
    if (frame.ticket <= durable) continue;
    if (frame.ticket > cursor) cursor = frame.ticket;
    for (DeltaEntry& entry : frame.entries) {
      PendingEdit& edit = edits.emplace_back();
      edit.id = entry.tree_id;
      edit.is_add = entry.is_add;
      edit.add_or_plus = std::move(entry.plus);
      edit.minus = std::move(entry.minus);
      batch.push_back(&edit);
    }
  }
  if (batch.empty()) return Status::Ok();
  uint64_t ticket;
  {
    MutexLock lock(&write_mutex_);
    while (active_commits_ >= options_.commit_pipeline_depth) {
      write_cv_.Wait(&write_mutex_);
    }
    ++active_commits_;
    m_pipeline_depth_->Set(active_commits_);
    ticket = next_ticket_++;
  }
  CommitBatch(batch, ticket, cursor);
  {
    MutexLock lock(&write_mutex_);
    --active_commits_;
    m_pipeline_depth_->Set(active_commits_);
    write_cv_.NotifyAll();
  }
  for (const PendingEdit* edit : batch) {
    if (!edit->result.ok()) {
      // The leader committed this edit; a local rejection means the
      // stores diverged -- the follower must resync from a snapshot.
      return DataLossError("replicated batch diverged: " +
                           edit->result.message());
    }
  }
  return Status::Ok();
}

}  // namespace pqidx
