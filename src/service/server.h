// pqidxd: a concurrent index service over one ShardedStore (one or
// more PersistentForestIndex shards under a per-batch group commit).
//
// Request pipeline (docs/ARCHITECTURE.md, "The service"):
//
//   * thread-per-connection on the shared ThreadPool: the accept loop
//     hands each connection to a worker, which decodes frames (wire.h)
//     and serves them sequentially for that client;
//   * admission control: connections beyond `max_connections` are
//     rejected with a connection-level UNAVAILABLE frame, and edits
//     beyond `max_write_queue` pending entries get an UNAVAILABLE
//     response (backpressure instead of unbounded queues);
//   * lookups run lock-free against an epoch-published LookupEngine
//     snapshot (core/lookup_engine.h): readers grab the current
//     shared_ptr<const LookupEngine> and score without touching
//     index_mutex_, so read throughput scales with reader threads. The
//     group-commit leader compiles a fresh snapshot from the mutable
//     ForestIndex replica after each batch and atomically swaps it in
//     (the replica itself is only read by the write path's validation);
//   * writes go through group commit: a writer enqueues its edit and the
//     first free writer becomes a batch leader, drains the queue, and
//     applies the whole batch as ONE WAL transaction
//     (PersistentForestIndex::ApplyBatch -- one fsync pair for the
//     entire batch). Writers submitted while a leader is committing are
//     coalesced into the next batch, amortizing durability cost exactly
//     where the paper's incremental update makes the writes themselves
//     cheap;
//   * group commits pipeline (`commit_pipeline_depth`): up to that many
//     batch leaders run at once, each batch holding a ticket drawn in
//     queue order. Validation + δ-materialization run in ticket order
//     against the replica plus an overlay of the predecessors' pending
//     bags, overlapping the predecessor's WAL write/fsync; the storage
//     commits themselves also run in ticket order, so the WAL sees the
//     same strictly ordered, atomic transactions as the serial leader
//     and the crash guarantee (a recovered store is exactly the state
//     before or after a batch) is unchanged. If a batch fails at the
//     storage layer, in-flight successors that validated against its
//     pending bags abort with an error before touching the store;
//   * snapshots are published incrementally: the leader derives the next
//     LookupEngine epoch from the previous one via
//     LookupEngine::ApplyDelta (copy-on-write: only shards owning
//     touched trees recompile), with a full Build every
//     `snapshot_full_rebuild_every` publishes as defragmentation.
//
// Responses are sent only after the edit is durable (commit before ack).
// Invalid edits (unknown tree, duplicate add, minus bag not a sub-bag of
// the stored bag) fail individually with an error response and never
// disturb the other edits of a batch.

#ifndef PQIDX_SERVICE_SERVER_H_
#define PQIDX_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/lookup_engine.h"
#include "service/transport.h"
#include "service/wire.h"
#include "storage/sharded_store.h"

namespace pqidx {

class ReplicationHub;

struct ServerOptions {
  // Concurrent connections == handler threads (thread-per-connection).
  int max_connections = 8;
  // Pending group-commit entries before edit requests are rejected with
  // UNAVAILABLE (admission control).
  int max_write_queue = 256;
  // Upper bound on edits coalesced into one WAL transaction.
  int max_group_commit = 64;
  // Test/bench aid: the group-commit leader holds leadership this long
  // before draining the queue, magnifying the batching window the same
  // way a slow fsync would. 0 in production.
  int commit_hold_us = 0;
  // Dedicated threads for shard-parallel scoring of one lookup; 0 scores
  // in the handler thread (throughput then comes purely from concurrent
  // connections, which is usually the right trade for small queries).
  int lookup_threads = 0;
  // Slow-op threshold in microseconds: requests and group commits at or
  // over it log their phase breakdown through SlowOpLog::Default()
  // (common/metrics.h). 0 inherits that log's threshold (the
  // PQIDX_SLOW_OP_US environment variable, default 100ms); negative
  // disables slow-op logging for this server.
  int64_t slow_op_us = 0;
  // Shards the lookup snapshot is compiled into; 0 derives a default:
  // at least 16 (so incremental publication has shards to share; a
  // single-shard snapshot would recompile everything on every commit),
  // or 2x lookup_threads when that is larger. Results never depend on
  // the shard count.
  //
  // Trade-off: snapshot publication sits on the write-ack path (outside
  // index_mutex_, so concurrent lookups and stats() never wait on it):
  // a committed edit is always visible to the next lookup once its
  // response arrives (read-your-writes). Incremental publication
  // (LookupEngine::ApplyDelta) makes that cost O(shards touched by the
  // batch) instead of O(total postings).
  int lookup_shards = 0;
  // How many group-commit batches may be in flight at once (>= 1).
  // 1 is the classic serial leader. At depth d, batch N+1's validation
  // and δ-materialization overlap batch N's WAL write + fsync; the WAL
  // transactions themselves stay strictly ordered.
  int commit_pipeline_depth = 1;
  // Publish a full LookupEngine::Build every N snapshot publishes,
  // deriving the ones in between incrementally from the previous epoch
  // (copy-on-write shard reuse). 1 rebuilds fully every time (the
  // pre-incremental behavior); 0 never rebuilds fully after the initial
  // snapshot. The periodic full build re-balances shard tree ranges
  // that incremental routing slowly skews and doubles as a validation /
  // defragmentation pass.
  int snapshot_full_rebuild_every = 64;
  // Dedicated threads for the write path's parallel work: per-tree
  // validation + δ-materialization during group commit, and the
  // flatten/hash/merge half of PersistentForestIndex::ApplyBatch's
  // δ-staging. 0 stages inline on the leader thread. This pool is
  // separate from the connection pool (leaders run on connection
  // threads and a pool must not wait on itself).
  int staging_threads = 0;
  // Replication fan-out (service/replication.h): when on, every
  // committed batch is published to subscribed followers and kSubscribe
  // connections are served. Off removes the hub (and the per-commit
  // re-encode of the batch's bags) entirely.
  bool replication = true;
  // ReplicationHubOptions::history / ::max_queue.
  int replication_history = 256;
  int replication_max_queue = 256;
  // Read-only follower mode: edit requests (kAddTree / kApplyEdits) are
  // rejected with FAILED_PRECONDITION; the only writer is then
  // ApplyReplicated (the replication stream). Forced on by Follower.
  bool read_only = false;
  // Byte budget (MiB) of the epoch-keyed query-result cache serving
  // kLookup / kTopK (core/query_cache.h). Entries are keyed per engine
  // shard, so incremental snapshot publishes keep results for untouched
  // shards warm; full rebuilds invalidate wholesale. 0 (or
  // query_cache_off) disables the cache entirely.
  int query_cache_mb = 32;
  bool query_cache_off = false;
};

class Server {
 public:
  // Serves `index`, which must outlive the server and must not be used
  // by anyone else while the server runs.
  Server(ShardedStore* index, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Builds the serving replica and starts accepting on `listener`. A
  // null listener starts the server without a network endpoint (it is
  // then driven in-process: lookups via a follower's streamed state,
  // writes via ApplyReplicated). Starting a started server returns
  // FAILED_PRECONDITION.
  Status Start(std::unique_ptr<Listener> listener);

  // Stops accepting, interrupts every live connection, and joins all
  // handlers. Idempotent; also run by the destructor.
  void Stop() PQIDX_EXCLUDES(connections_mutex_);

  ServiceStats stats() const PQIDX_EXCLUDES(index_mutex_);

  // Applies a run of streamed delta frames (ascending tickets) as ONE
  // group-commit batch: one WAL transaction stamped with the newest
  // ticket, one replica delta, one snapshot epoch, one hub publish per
  // frame's worth of state (coalesced under the newest ticket). Frames
  // at or below the store's durable cursor are skipped (duplicates
  // after a reconnect). Only valid on a read-only server; any edit the
  // leader committed but this store rejects means divergence and
  // returns DATA_LOSS.
  Status ApplyReplicated(std::vector<DeltaFrame> frames)
      PQIDX_EXCLUDES(write_mutex_, index_mutex_, engine_mutex_);

  // The replication hub (null when ServerOptions::replication is off).
  ReplicationHub* hub() const { return hub_.get(); }

  // Testing hook: the current epoch-published snapshot. The workload
  // harness (bench/workload) pins it on both sides of an ephemeral
  // apply-then-revert burst to prove the post-revert epoch serves
  // bit-identical content from freshly recompiled shards.
  std::shared_ptr<const LookupEngine> EngineSnapshotForTesting() const
      PQIDX_EXCLUDES(engine_mutex_) {
    return EngineSnapshot();
  }

  // Testing hook: the epoch-keyed result cache (null when disabled).
  // Internally synchronized; tests read its hit/miss/stale counters.
  QueryCache* query_cache_for_testing() const { return query_cache_.get(); }

 private:
  struct PendingEdit {
    TreeId id = 0;
    bool is_add = false;
    PqGramIndex add_or_plus;
    PqGramIndex minus;
    Status result;
    bool done = false;
  };

  void AcceptLoop() PQIDX_EXCLUDES(connections_mutex_);
  void HandleConnection(const std::shared_ptr<Connection>& conn);

  // Decodes and serves one request; returns the response payload.
  std::string HandleRequest(MessageType type, std::string_view payload);
  std::string HandleLookup(std::string_view payload);
  std::string HandleTopK(std::string_view payload);
  std::string HandleAddTree(std::string_view payload);
  std::string HandleApplyEdits(std::string_view payload);
  std::string HandleStats();
  std::string HandleStatsSnapshot(std::string_view payload);

  // Serves one kSubscribe request: registers with the hub, sends the
  // ack (plus the snapshot image when the cursor cannot delta-resume),
  // then streams frames and heartbeats until the subscriber drops, the
  // hub drops it, or the server stops. Takes over the connection; the
  // handler loop ends when this returns.
  void ServeSubscriber(const std::shared_ptr<Connection>& conn,
                       const FrameHeader& header, std::string_view payload)
      PQIDX_EXCLUDES(index_mutex_);

  // Group commit: blocks until `edit` is durable (or rejected) and
  // returns its result. The calling thread may serve as batch leader.
  Status SubmitEdit(PendingEdit* edit) PQIDX_EXCLUDES(write_mutex_);

  // One validated batch between its two pipeline phases: the composed
  // next bag per touched tree, the store edits in batch order, and the
  // failure stamp observed at validation (a stamp change before the
  // storage turn means a predecessor batch this validation may have
  // depended on failed, so the batch must abort).
  struct StagedBatch {
    std::map<TreeId, PqGramIndex> scratch;
    std::vector<PersistentForestIndex::BatchEdit> edits;
    std::vector<size_t> edit_to_batch;
    uint64_t failure_stamp = 0;
  };

  // Runs one batch through the pipeline: awaits the validate turn for
  // `ticket`, validates + materializes (ValidateBatch), then awaits the
  // storage turn, commits the WAL transaction (durably stamped with
  // `cursor`, the replication cursor), applies the replica delta,
  // publishes the next snapshot epoch, and hands the batch's delta
  // frame to the hub.
  void CommitBatch(const std::vector<PendingEdit*>& batch, uint64_t ticket,
                   uint64_t cursor)
      PQIDX_EXCLUDES(index_mutex_, engine_mutex_);

  // Validation + δ-materialization under index_mutex_ held exclusively:
  // checks each edit against the replica overlaid with the predecessors'
  // pending bags (and a local overlay so edits earlier in the batch are
  // visible to later ones), composes the next bag per touched tree, and
  // installs those bags into overlay_ tagged with `ticket` for successor
  // batches. Independent trees fan out across staging_pool_.
  void ValidateBatch(const std::vector<PendingEdit*>& batch,
                     uint64_t ticket, StagedBatch* staged)
      PQIDX_EXCLUDES(index_mutex_);

  // Validates + composes the next bag for one same-tree group of a
  // batch. Requires the leader's exclusive index_mutex_: it reads
  // replica_ and overlay_ and writes only its own group's slots in
  // `edit_ok` / `composed` (which is how fanning the groups across
  // staging workers while the *leader* holds the lock stays sound --
  // see the no-tsa escape at the call site in ValidateBatch).
  void ValidateGroup(const std::vector<PendingEdit*>& batch,
                     const std::vector<size_t>& group,
                     std::vector<uint8_t>* edit_ok,
                     std::unique_ptr<PqGramIndex>* composed) const
      PQIDX_REQUIRES(index_mutex_);

  // The current lookup snapshot (never null after Start()).
  std::shared_ptr<const LookupEngine> EngineSnapshot() const
      PQIDX_EXCLUDES(engine_mutex_);
  // Publishes the next snapshot epoch: derived incrementally from the
  // previous one for the trees in `changed`, or compiled from scratch
  // when `changed` is empty / the full-rebuild cadence is due. Takes no
  // lock on replica_ (see replica_for_publish): the caller must be the
  // sole thread mutating it for the duration (true in Start(), before
  // handlers exist, and for the storage-turn holder until it finishes
  // its turn).
  void PublishEngine(const std::vector<TreeId>& changed)
      PQIDX_EXCLUDES(index_mutex_, engine_mutex_);

  // no-tsa: replica_ is guarded by index_mutex_, but PublishEngine
  // compiles snapshots from it with no lock held -- its caller is the
  // storage-turn holder (or Start before handlers exist), the only
  // thread that may mutate replica_, and taking even the shared lock
  // for the O(postings) build would block successor batches' validation
  // and defeat the commit pipeline.
  const ForestIndex& replica_for_publish() const
      PQIDX_NO_THREAD_SAFETY_ANALYSIS {
    return replica_;
  }

  ShardedStore* const index_;
  const ServerOptions options_;

  // The forest's pq-gram shape: set once by Start() from the store,
  // before any handler thread exists, and immutable afterwards, so
  // request handlers read it lock-free.
  PqShape shape_;

  // Write-path state: replica_ is the mutable bag-level view batch
  // leaders validate against and mutate together with the store;
  // overlay_ holds the pending (validated, not yet committed) next bags
  // of in-flight batches, keyed by tree and tagged with the staging
  // batch's ticket. Both live under index_mutex_; replica_ mutation is
  // additionally serialized by the storage turnstile. Lookups do NOT
  // read either.
  mutable SharedMutex index_mutex_;
  ForestIndex replica_ PQIDX_GUARDED_BY(index_mutex_);
  struct PendingBag {
    PqGramIndex bag;
    uint64_t ticket;
  };
  std::map<TreeId, PendingBag> overlay_ PQIDX_GUARDED_BY(index_mutex_);
  // Bumped whenever a batch fails after validation; successors compare
  // their validation-time snapshot of it before touching the store.
  uint64_t failure_stamp_ PQIDX_GUARDED_BY(index_mutex_) = 0;
  // The replication cursor replica_ reflects: the storage-turn holder
  // advances it together with the replica delta, so a subscriber that
  // registers and snapshots replica_ under one ReaderLock gets an image
  // consistent with this ticket (service/replication.h).
  uint64_t replica_ticket_ PQIDX_GUARDED_BY(index_mutex_) = 0;

  // Read-path state: the immutable snapshot lookups score against.
  // engine_mutex_ only guards the pointer swap/copy (nanoseconds);
  // scoring itself runs on a private shared_ptr copy with no lock held.
  mutable Mutex engine_mutex_;
  std::shared_ptr<const LookupEngine> engine_ PQIDX_GUARDED_BY(engine_mutex_);
  // Epoch-keyed result cache for kLookup / kTopK (null when disabled).
  // Internally synchronized; PublishEngine reconciles it against the
  // new snapshot's shard uids after every swap.
  std::unique_ptr<QueryCache> query_cache_;
  std::unique_ptr<ThreadPool> lookup_pool_;
  // Write-path staging workers (ServerOptions::staging_threads).
  std::unique_ptr<ThreadPool> staging_pool_;
  // Publishes since the last full Build; only the storage-turn holder
  // (or Start, before handlers exist) touches it.
  int64_t publishes_since_full_ = 0;

  // Group-commit queue. Tickets are drawn under write_mutex_ at batch
  // drain time, so ticket order == queue order.
  Mutex write_mutex_;
  CondVar write_cv_;
  std::deque<PendingEdit*> write_queue_ PQIDX_GUARDED_BY(write_mutex_);
  int active_commits_ PQIDX_GUARDED_BY(write_mutex_) = 0;
  uint64_t next_ticket_ PQIDX_GUARDED_BY(write_mutex_) = 0;

  // Pipeline turnstiles (common/sync.h): each phase of batch N starts
  // only after the same phase of batch N-1 finished its turn.
  Turnstile validate_turnstile_;
  Turnstile storage_turnstile_;

  // Replication fan-out (null when disabled). Pipeline tickets restart
  // at 0 every Start, so the durable replication cursor is derived:
  // cursor_base_ (the store's cursor at Start) + ticket + 1 on a
  // leader, the streamed frame's own ticket on a follower.
  std::unique_ptr<ReplicationHub> hub_;
  uint64_t cursor_base_ = 0;

  // Lifecycle.
  std::unique_ptr<Listener> listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<int> active_connections_{0};
  Mutex connections_mutex_;
  std::vector<std::weak_ptr<Connection>> connections_
      PQIDX_GUARDED_BY(connections_mutex_);

  // Counters (see ServiceStats).
  std::atomic<int64_t> lookups_{0};
  std::atomic<int64_t> edits_applied_{0};
  std::atomic<int64_t> edit_commits_{0};
  std::atomic<int64_t> max_batch_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> snapshot_epoch_{0};
  std::atomic<int64_t> candidates_pruned_{0};
  std::atomic<int64_t> candidates_scored_{0};
  std::atomic<int64_t> snapshot_rebuild_us_{0};
  std::atomic<int64_t> last_rebuild_us_{0};

  // Registry cells (common/metrics.h, "server.*"): the per-server
  // atomics above stay authoritative for ServiceStats (a binary may run
  // several servers); these mirror the same events into the
  // process-wide registry, plus per-opcode latency histograms indexed
  // by MessageType value.
  Histogram* m_request_us_[11] = {};
  Histogram* m_batch_edits_;
  Histogram* m_rebuild_us_;
  Histogram* m_snapshot_incremental_us_;
  Histogram* m_snapshot_full_us_;
  Gauge* m_pipeline_depth_;
  Gauge* m_queue_depth_;
  Gauge* m_active_connections_;
  Gauge* m_snapshot_epoch_;
  Counter* m_lookups_;
  Counter* m_edits_applied_;
  Counter* m_edit_commits_;
  Counter* m_rejected_;
  Counter* m_protocol_errors_;
  // Resolved slow-op threshold (<= 0: disabled).
  int64_t slow_us_ = 0;
};

}  // namespace pqidx

#endif  // PQIDX_SERVICE_SERVER_H_
