// pqidxd: a concurrent index service over one PersistentForestIndex.
//
// Request pipeline (docs/ARCHITECTURE.md, "The service"):
//
//   * thread-per-connection on the shared ThreadPool: the accept loop
//     hands each connection to a worker, which decodes frames (wire.h)
//     and serves them sequentially for that client;
//   * admission control: connections beyond `max_connections` are
//     rejected with a connection-level UNAVAILABLE frame, and edits
//     beyond `max_write_queue` pending entries get an UNAVAILABLE
//     response (backpressure instead of unbounded queues);
//   * lookups run lock-free against an epoch-published LookupEngine
//     snapshot (core/lookup_engine.h): readers grab the current
//     shared_ptr<const LookupEngine> and score without touching
//     index_mutex_, so read throughput scales with reader threads. The
//     group-commit leader compiles a fresh snapshot from the mutable
//     ForestIndex replica after each batch and atomically swaps it in
//     (the replica itself is only read by the write path's validation);
//   * writes go through group commit: a writer enqueues its edit and the
//     first free writer becomes the leader, drains the queue, and
//     applies the whole batch as ONE WAL transaction
//     (PersistentForestIndex::ApplyBatch -- one fsync pair for the
//     entire batch). Writers submitted while a leader is committing are
//     coalesced into the next batch, amortizing durability cost exactly
//     where the paper's incremental update makes the writes themselves
//     cheap.
//
// Responses are sent only after the edit is durable (commit before ack).
// Invalid edits (unknown tree, duplicate add, minus bag not a sub-bag of
// the stored bag) fail individually with an error response and never
// disturb the other edits of a batch.

#ifndef PQIDX_SERVICE_SERVER_H_
#define PQIDX_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/lookup_engine.h"
#include "service/transport.h"
#include "service/wire.h"
#include "storage/persistent_forest_index.h"

namespace pqidx {

struct ServerOptions {
  // Concurrent connections == handler threads (thread-per-connection).
  int max_connections = 8;
  // Pending group-commit entries before edit requests are rejected with
  // UNAVAILABLE (admission control).
  int max_write_queue = 256;
  // Upper bound on edits coalesced into one WAL transaction.
  int max_group_commit = 64;
  // Test/bench aid: the group-commit leader holds leadership this long
  // before draining the queue, magnifying the batching window the same
  // way a slow fsync would. 0 in production.
  int commit_hold_us = 0;
  // Dedicated threads for shard-parallel scoring of one lookup; 0 scores
  // in the handler thread (throughput then comes purely from concurrent
  // connections, which is usually the right trade for small queries).
  int lookup_threads = 0;
  // Slow-op threshold in microseconds: requests and group commits at or
  // over it log their phase breakdown through SlowOpLog::Default()
  // (common/metrics.h). 0 inherits that log's threshold (the
  // PQIDX_SLOW_OP_US environment variable, default 100ms); negative
  // disables slow-op logging for this server.
  int64_t slow_op_us = 0;
  // Shards the lookup snapshot is compiled into; 0 derives a default
  // from lookup_threads. Results never depend on the shard count.
  //
  // Trade-off: the group-commit leader recompiles the whole snapshot --
  // O(total postings) -- after every committed batch (outside
  // index_mutex_, so concurrent lookups and stats() never wait on it),
  // which puts snapshot compilation on the write-ack path: write
  // latency grows with forest size, group commit amortizes it across
  // the batch, and a committed edit is always visible to the next
  // lookup once its response arrives (read-your-writes).
  int lookup_shards = 0;
};

class Server {
 public:
  // Serves `index`, which must outlive the server and must not be used
  // by anyone else while the server runs.
  Server(PersistentForestIndex* index, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Builds the serving replica and starts accepting on `listener`.
  Status Start(std::unique_ptr<Listener> listener);

  // Stops accepting, interrupts every live connection, and joins all
  // handlers. Idempotent; also run by the destructor.
  void Stop();

  ServiceStats stats() const;

 private:
  struct PendingEdit {
    TreeId id = 0;
    bool is_add = false;
    PqGramIndex add_or_plus;
    PqGramIndex minus;
    Status result;
    bool done = false;
  };

  void AcceptLoop();
  void HandleConnection(std::shared_ptr<Connection> conn);

  // Decodes and serves one request; returns the response payload.
  std::string HandleRequest(MessageType type, std::string_view payload);
  std::string HandleLookup(std::string_view payload);
  std::string HandleAddTree(std::string_view payload);
  std::string HandleApplyEdits(std::string_view payload);
  std::string HandleStats();
  std::string HandleStatsSnapshot(std::string_view payload);

  // Group commit: blocks until `edit` is durable (or rejected) and
  // returns its result. The calling thread may serve as batch leader.
  Status SubmitEdit(PendingEdit* edit);
  void CommitBatch(const std::vector<PendingEdit*>& batch);
  // The store-and-replica mutation half of CommitBatch, run under
  // index_mutex_ held exclusively; returns how many edits were applied
  // (0 when the replica is unchanged). `timings` receives the store's
  // ApplyBatch phase split for the slow-op log.
  int64_t CommitBatchLocked(
      const std::vector<PendingEdit*>& batch,
      PersistentForestIndex::ApplyBatchTimings* timings);

  // The current lookup snapshot (never null after Start()).
  std::shared_ptr<const LookupEngine> EngineSnapshot() const;
  // Compiles a snapshot from replica_ and publishes it. Takes no lock:
  // the caller must be the sole thread mutating replica_ for the
  // duration (true in Start(), before handlers exist, and for the
  // group-commit leader until its batch is acknowledged).
  void PublishEngine();

  PersistentForestIndex* const index_;
  const ServerOptions options_;

  // Write-path state: replica_ is the mutable bag-level view the
  // group-commit leader validates and mutates together with the store,
  // both under index_mutex_ held exclusively. Lookups do NOT read it.
  mutable std::shared_mutex index_mutex_;
  ForestIndex replica_;

  // Read-path state: the immutable snapshot lookups score against.
  // engine_mutex_ only guards the pointer swap/copy (nanoseconds);
  // scoring itself runs on a private shared_ptr copy with no lock held.
  mutable std::mutex engine_mutex_;
  std::shared_ptr<const LookupEngine> engine_;
  std::unique_ptr<ThreadPool> lookup_pool_;

  // Group-commit queue.
  std::mutex write_mutex_;
  std::condition_variable write_cv_;
  std::deque<PendingEdit*> write_queue_;
  bool leader_active_ = false;

  // Lifecycle.
  std::unique_ptr<Listener> listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<int> active_connections_{0};
  std::mutex connections_mutex_;
  std::vector<std::weak_ptr<Connection>> connections_;

  // Counters (see ServiceStats).
  std::atomic<int64_t> lookups_{0};
  std::atomic<int64_t> edits_applied_{0};
  std::atomic<int64_t> edit_commits_{0};
  std::atomic<int64_t> max_batch_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> snapshot_epoch_{0};
  std::atomic<int64_t> candidates_pruned_{0};
  std::atomic<int64_t> candidates_scored_{0};
  std::atomic<int64_t> snapshot_rebuild_us_{0};
  std::atomic<int64_t> last_rebuild_us_{0};

  // Registry cells (common/metrics.h, "server.*"): the per-server
  // atomics above stay authoritative for ServiceStats (a binary may run
  // several servers); these mirror the same events into the
  // process-wide registry, plus per-opcode latency histograms indexed
  // by MessageType value.
  Histogram* m_request_us_[8] = {};
  Histogram* m_batch_edits_;
  Histogram* m_rebuild_us_;
  Gauge* m_queue_depth_;
  Gauge* m_active_connections_;
  Gauge* m_snapshot_epoch_;
  Counter* m_lookups_;
  Counter* m_edits_applied_;
  Counter* m_edit_commits_;
  Counter* m_rejected_;
  Counter* m_protocol_errors_;
  // Resolved slow-op threshold (<= 0: disabled).
  int64_t slow_us_ = 0;
};

}  // namespace pqidx

#endif  // PQIDX_SERVICE_SERVER_H_
