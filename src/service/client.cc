#include "service/client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "core/incremental.h"
#include "core/pqgram.h"

namespace pqidx {

StatusOr<std::unique_ptr<Client>> Client::Connect(
    std::unique_ptr<Connection> connection) {
  std::unique_ptr<Client> client(
      new Client(std::move(connection)));  // lint:allow-new (private ctor)
  StatusOr<ServiceStats> stats = client->Stats();
  PQIDX_RETURN_IF_ERROR(stats.status());
  PqShape shape;
  shape.p = stats->p;
  shape.q = stats->q;
  if (!shape.Valid()) {
    return DataLossError("server reported an invalid index shape");
  }
  client->shape_ = shape;
  return client;
}

StatusOr<std::unique_ptr<Client>> Client::ConnectWithRetry(
    const Dialer& dial, const BackoffPolicy& policy, uint64_t seed) {
  // The whole dial + handshake retries as a unit: the Stats round trip
  // inside Connect is where an admission-control rejection surfaces,
  // and that is as transient as a refused dial.
  Backoff backoff(policy, seed);
  for (int attempt = 1;; ++attempt) {
    StatusOr<std::unique_ptr<Connection>> conn = dial();
    if (conn.ok()) {
      StatusOr<std::unique_ptr<Client>> client =
          Connect(std::move(conn).value());
      if (client.ok()) return client;
      if (policy.max_attempts > 0 && attempt >= policy.max_attempts) {
        return client;
      }
    } else if (policy.max_attempts > 0 && attempt >= policy.max_attempts) {
      return conn.status();
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(backoff.NextDelayUs()));
  }
}

Status Client::RoundTrip(MessageType type, std::string_view payload,
                         std::string* response_payload) {
  FrameHeader header;
  header.type = type;
  header.flags = 0;
  header.request_id = next_request_id_++;
  header.payload_size = static_cast<uint32_t>(payload.size());
  PQIDX_RETURN_IF_ERROR(connection_->Send(EncodeFrame(header, payload)));

  std::string bytes;
  PQIDX_RETURN_IF_ERROR(connection_->ReceiveExact(kFrameHeaderSize, &bytes));
  FrameHeader response;
  PQIDX_RETURN_IF_ERROR(DecodeFrameHeader(bytes, &response));
  if (!response.is_response()) {
    return DataLossError("request frame received from server");
  }
  std::string body;
  if (response.payload_size > 0) {
    PQIDX_RETURN_IF_ERROR(
        connection_->ReceiveExact(response.payload_size, &body));
  }
  ByteReader reader(body);
  Status transported;
  PQIDX_RETURN_IF_ERROR(DecodeStatus(&reader, &transported));
  if (response.request_id == 0) {
    // Connection-level rejection (admission control): the server never
    // read our request.
    if (transported.ok()) return DataLossError("rejection frame carried OK");
    return transported;
  }
  if (response.request_id != header.request_id) {
    return DataLossError("response id does not match request id");
  }
  if (response.type != type) {
    return DataLossError("response type does not match request type");
  }
  PQIDX_RETURN_IF_ERROR(transported);
  response_payload->assign(body, body.size() - reader.remaining(),
                           reader.remaining());
  return Status::Ok();
}

Status Client::Ping() {
  std::string body;
  return RoundTrip(MessageType::kPing, std::string_view(), &body);
}

StatusOr<std::vector<LookupResult>> Client::Lookup(const PqGramIndex& query,
                                                   double tau) {
  if (!(query.shape() == shape_)) {
    return InvalidArgumentError("query shape does not match server shape");
  }
  LookupRequest request;
  request.query = query;
  request.tau = tau;
  ByteWriter writer;
  request.Encode(&writer);
  std::string payload = writer.Release();
  std::string body;
  PQIDX_RETURN_IF_ERROR(RoundTrip(MessageType::kLookup, payload, &body));
  ByteReader reader(body);
  StatusOr<LookupResponse> response = LookupResponse::Decode(&reader);
  PQIDX_RETURN_IF_ERROR(response.status());
  if (!reader.AtEnd()) return DataLossError("trailing bytes after payload");
  return std::move(response->results);
}

StatusOr<std::vector<LookupResult>> Client::Lookup(const Tree& query,
                                                   double tau) {
  return Lookup(BuildIndex(query, shape_), tau);
}

StatusOr<std::vector<LookupResult>> Client::TopK(const PqGramIndex& query,
                                                 int k) {
  if (!(query.shape() == shape_)) {
    return InvalidArgumentError("query shape does not match server shape");
  }
  if (k < 0 || k > TopKRequest::kMaxK) {
    return InvalidArgumentError("top-k count out of range");
  }
  TopKRequest request;
  request.query = query;
  request.k = k;
  ByteWriter writer;
  request.Encode(&writer);
  std::string payload = writer.Release();
  std::string body;
  PQIDX_RETURN_IF_ERROR(RoundTrip(MessageType::kTopK, payload, &body));
  ByteReader reader(body);
  StatusOr<LookupResponse> response = LookupResponse::Decode(&reader);
  PQIDX_RETURN_IF_ERROR(response.status());
  if (!reader.AtEnd()) return DataLossError("trailing bytes after payload");
  return std::move(response->results);
}

StatusOr<std::vector<LookupResult>> Client::TopK(const Tree& query, int k) {
  return TopK(BuildIndex(query, shape_), k);
}

Status Client::AddTree(TreeId id, const Tree& tree) {
  return AddIndex(id, BuildIndex(tree, shape_));
}

Status Client::AddIndex(TreeId id, const PqGramIndex& bag) {
  if (!(bag.shape() == shape_)) {
    return InvalidArgumentError("bag shape does not match server shape");
  }
  AddTreeRequest request;
  request.tree_id = id;
  request.bag = bag;
  ByteWriter writer;
  request.Encode(&writer);
  std::string payload = writer.Release();
  std::string body;
  return RoundTrip(MessageType::kAddTree, payload, &body);
}

Status Client::ApplyEdits(TreeId id, const Tree& tn, const EditLog& log) {
  PqGramIndex plus(shape_);
  PqGramIndex minus(shape_);
  PQIDX_RETURN_IF_ERROR(
      ComputeIndexDeltas(tn, log, shape_, &plus, &minus, nullptr));
  return ApplyDeltas(id, plus, minus, static_cast<int64_t>(log.size()));
}

Status Client::ApplyDeltas(TreeId id, const PqGramIndex& plus,
                           const PqGramIndex& minus, int64_t log_ops) {
  if (!(plus.shape() == shape_) || !(minus.shape() == shape_)) {
    return InvalidArgumentError("delta shape does not match server shape");
  }
  ApplyEditsRequest request;
  request.tree_id = id;
  request.plus = plus;
  request.minus = minus;
  request.log_ops = log_ops;
  ByteWriter writer;
  request.Encode(&writer);
  std::string payload = writer.Release();
  std::string body;
  return RoundTrip(MessageType::kApplyEdits, payload, &body);
}

StatusOr<ServiceStats> Client::Stats() {
  std::string body;
  PQIDX_RETURN_IF_ERROR(RoundTrip(MessageType::kStats, std::string_view(),
                                  &body));
  ByteReader reader(body);
  StatusOr<ServiceStats> stats = ServiceStats::Decode(&reader);
  PQIDX_RETURN_IF_ERROR(stats.status());
  if (!reader.AtEnd()) return DataLossError("trailing bytes after payload");
  return stats;
}

StatusOr<MetricsSnapshot> Client::StatsSnapshot() {
  std::string body;
  PQIDX_RETURN_IF_ERROR(RoundTrip(MessageType::kStatsSnapshot,
                                  std::string_view(), &body));
  ByteReader reader(body);
  StatusOr<MetricsSnapshot> snapshot = DecodeMetricsSnapshot(&reader);
  PQIDX_RETURN_IF_ERROR(snapshot.status());
  if (!reader.AtEnd()) return DataLossError("trailing bytes after payload");
  return snapshot;
}

void Client::Close() {
  if (connection_ != nullptr) connection_->Close();
}

}  // namespace pqidx
