// The pqidxd wire protocol: versioned, length-framed binary messages.
//
// Every message on a connection is one frame: a fixed 20-byte header
// followed by `payload_size` payload bytes. Payloads are encoded with the
// serde primitives (common/serde.h); all decode paths treat their input
// as untrusted and report malformed, truncated, or oversized bytes with a
// Status -- never UB or an abort (fuzz/fuzz_wire.cc holds that line).
//
// Frame header (little-endian, see docs/FORMATS.md):
//
//   off 0  u32 magic "PQRW"      off 4  u8 version (1)
//   off 5  u8 type               off 6  u8 flags (bit 0: response)
//   off 7  u8 reserved (0)       off 8  u64 request_id
//   off 16 u32 payload_size      (<= kMaxFramePayload)
//
// The protocol never carries trees: clients reduce their work to pq-gram
// bags (PqGramIndex) locally and ship those, so the server only ever
// decodes the already-hardened bag format and the paper's incremental
// update travels as the (I+, I-) delta bags of Algorithm 1.
//
// Response payloads start with a status (code byte + message string);
// request-specific result bytes follow only when the status is OK. A
// response with request_id 0 is a connection-level rejection (admission
// control before any request was read).

#ifndef PQIDX_SERVICE_WIRE_H_
#define PQIDX_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/serde.h"
#include "common/status.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"

namespace pqidx {

inline constexpr uint32_t kWireMagic = 0x57525150;  // "PQRW" little-endian
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderSize = 20;
// Frames larger than this are rejected before the payload is read: a
// single bag tuple costs ~11 bytes, so 64 MiB bounds any sane request.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class MessageType : uint8_t {
  kPing = 1,
  kLookup = 2,
  kAddTree = 3,
  kApplyEdits = 4,
  kStats = 5,
  kStatsSnapshot = 6,  // full metrics registry (common/metrics.h)
  // Replication (service/replication.h): a follower subscribes with its
  // durable cursor; the leader answers with a kSubscribeAck (delta
  // resume or full-snapshot fallback) and then pushes one kDeltaFrame
  // per committed batch on the same connection.
  kSubscribe = 7,
  kSubscribeAck = 8,
  kDeltaFrame = 9,
  // The engine's adaptive-tau-bound top-k over the wire: best K matches
  // instead of the full result set of a threshold lookup.
  kTopK = 10,
};

// Edit requests (kAddTree / kApplyEdits) are capped below the frame
// limit so a committed batch's bags always re-encode into delta-frame
// chunks that themselves fit under kMaxFramePayload (a delta entry
// costs at most the original request payload plus a few bytes).
inline constexpr uint32_t kMaxEditPayload = kMaxFramePayload - 4096;

inline constexpr uint8_t kFrameFlagResponse = 0x01;

struct FrameHeader {
  MessageType type = MessageType::kPing;
  uint8_t flags = 0;
  uint64_t request_id = 0;
  uint32_t payload_size = 0;

  bool is_response() const { return (flags & kFrameFlagResponse) != 0; }
};

// Serializes header + payload into one contiguous frame.
std::string EncodeFrame(const FrameHeader& header, std::string_view payload);

// Strict decode of an untrusted header (exactly kFrameHeaderSize bytes):
// rejects short input, bad magic, unknown version/type, nonzero reserved
// bits, and oversized payload declarations.
Status DecodeFrameHeader(std::string_view bytes, FrameHeader* out);

// --- request payloads ---------------------------------------------------

struct LookupRequest {
  PqGramIndex query;
  double tau = 0;

  void Encode(ByteWriter* writer) const;
  static StatusOr<LookupRequest> Decode(std::string_view payload);
};

// The k most similar trees to `query` (kTopK). The response reuses
// LookupResponse. `k` is bounded on decode: a hostile k must not drive
// the server's per-shard heaps.
struct TopKRequest {
  PqGramIndex query;
  int32_t k = 0;

  // Requests above this are rejected on decode; a client wanting more
  // than a million results should use a threshold lookup.
  static constexpr int32_t kMaxK = 1 << 20;

  void Encode(ByteWriter* writer) const;
  static StatusOr<TopKRequest> Decode(std::string_view payload);
};

struct AddTreeRequest {
  TreeId tree_id = 0;
  PqGramIndex bag;

  void Encode(ByteWriter* writer) const;
  static StatusOr<AddTreeRequest> Decode(std::string_view payload);
};

// The (I+, I-) bags of one updateIndex run (paper Algorithm 1), computed
// client-side from the resulting tree and the inverse-operation log.
struct ApplyEditsRequest {
  TreeId tree_id = 0;
  PqGramIndex plus;
  PqGramIndex minus;
  int64_t log_ops = 0;  // |L|, reported for server statistics only

  void Encode(ByteWriter* writer) const;
  static StatusOr<ApplyEditsRequest> Decode(std::string_view payload);
};

// --- replication payloads -----------------------------------------------

// Follower -> leader: stream every batch committed with a replication
// ticket > `from_ticket` (the follower's durable cursor; 0 subscribes
// from the beginning). `force_snapshot` demands a full-snapshot resync
// even when the leader could resume by delta -- the follower's recovery
// path when it detects divergence from the stream.
struct SubscribeRequest {
  uint64_t from_ticket = 0;
  bool force_snapshot = false;

  void Encode(ByteWriter* writer) const;
  static StatusOr<SubscribeRequest> Decode(std::string_view payload);
};

// Leader -> follower: the response to kSubscribe (after the transported
// status). kDelta resumes the stream right after the follower's cursor.
// kSnapshot means the leader cannot resume by delta (it no longer
// retains the frames the follower is missing, the cursor is from
// another history, or the follower forced a resync): the first streamed
// kDeltaFrame (ticket == `ticket`, chunked like any large batch) then
// carries the leader's full state as add entries, and the follower must
// install it into a fresh store before applying later frames.
struct SubscribeAck {
  enum class Mode : uint8_t { kDelta = 0, kSnapshot = 1 };

  Mode mode = Mode::kDelta;
  uint64_t ticket = 0;  // the stream cursor; frames after it follow
  uint8_t p = 0;        // index shape (the follower must match it)
  uint8_t q = 0;

  void Encode(ByteWriter* writer) const;
  static StatusOr<SubscribeAck> Decode(ByteReader* reader);
};

// One edit of a committed batch as it travels in a delta frame: either
// a whole-tree bag (`is_add`, AddTree) or the paper's (I+, I-) bags of
// one updateIndex run.
struct DeltaEntry {
  TreeId tree_id = 0;
  bool is_add = false;
  PqGramIndex plus;   // the whole bag for is_add
  PqGramIndex minus;  // empty for is_add

  bool operator==(const DeltaEntry& other) const {
    return tree_id == other.tree_id && is_add == other.is_add &&
           plus == other.plus && minus == other.minus;
  }
};

// One committed batch's delta bags, pushed leader -> follower. A batch
// whose bags exceed the frame limit is split into several chunks that
// carry the same ticket; the follower accumulates entries until it sees
// `last_chunk` and applies the assembled batch atomically at `ticket`.
struct DeltaFrame {
  uint64_t ticket = 0;
  int64_t publish_us = 0;  // leader Metrics::NowUs() at publish time
  bool last_chunk = true;
  std::vector<DeltaEntry> entries;

  void Encode(ByteWriter* writer) const;
  static StatusOr<DeltaFrame> Decode(std::string_view payload);
};

// Borrowed view of a DeltaEntry: what the leader encodes straight from
// a committed batch's staged bags without copying them. `minus` is
// ignored (may be null) when `is_add`.
struct DeltaEntryView {
  TreeId tree_id = 0;
  bool is_add = false;
  const PqGramIndex* plus = nullptr;
  const PqGramIndex* minus = nullptr;
};

// Splits one batch into one or more encoded chunk payloads, each at
// most `max_payload` bytes (oversized single entries get a chunk of
// their own; kMaxEditPayload guarantees those still fit a frame).
// Exactly the last chunk has last_chunk set; an empty entry list
// yields a single empty chunk (the heartbeat frame).
std::vector<std::string> EncodeDeltaFrameChunks(
    uint64_t ticket, int64_t publish_us,
    const std::vector<DeltaEntryView>& entries,
    size_t max_payload = kMaxFramePayload - 64);

// Convenience over the view-based encoder.
std::vector<std::string> EncodeDeltaFrameChunks(
    const DeltaFrame& frame, size_t max_payload = kMaxFramePayload - 64);

// --- response payloads --------------------------------------------------

// Every response payload starts with this: code byte + message string.
void EncodeStatus(const Status& status, ByteWriter* writer);
// Outer Status: malformed bytes. `*out` receives the transported status.
Status DecodeStatus(ByteReader* reader, Status* out);

struct LookupResponse {
  std::vector<LookupResult> results;

  void Encode(ByteWriter* writer) const;
  static StatusOr<LookupResponse> Decode(ByteReader* reader);
};

// Service counters exposed over the wire; the group-commit efficiency the
// loadgen asserts on is edits_applied / edit_commits, and the lookup
// engine's read-path health shows in candidates_pruned vs. _scored.
struct ServiceStats {
  int p = 0;
  int q = 0;
  int64_t tree_count = 0;
  int64_t lookups = 0;
  int64_t edits_applied = 0;   // successful AddTree + ApplyEdits requests
  int64_t edit_commits = 0;    // WAL commits that carried those edits
  int64_t max_batch = 0;       // largest single group-commit batch
  int64_t rejected = 0;        // admission-control rejections
  int64_t protocol_errors = 0;
  // Lookup-engine snapshot counters (core/lookup_engine.h).
  int64_t snapshot_epoch = 0;       // snapshots published since Start()
  int64_t candidates_pruned = 0;    // dropped by the tau count filter
  int64_t candidates_scored = 0;    // candidates fully scored
  int64_t snapshot_rebuild_us = 0;  // total snapshot compile time
  int64_t last_rebuild_us = 0;      // most recent snapshot compile time

  void Encode(ByteWriter* writer) const;
  static StatusOr<ServiceStats> Decode(ByteReader* reader);
};

// The full observability registry for kStatsSnapshot responses: every
// counter/gauge/histogram the process registered (common/metrics.h),
// including per-opcode latency histograms and the ApplyBatch phase
// split. A kStatsSnapshot *request* carries an empty payload. The
// decoder treats its input as untrusted: sample counts are bounded by
// the remaining bytes and histogram bucket indices by
// Histogram::kNumBuckets.
void EncodeMetricsSnapshot(const MetricsSnapshot& snapshot,
                           ByteWriter* writer);
StatusOr<MetricsSnapshot> DecodeMetricsSnapshot(ByteReader* reader);

}  // namespace pqidx

#endif  // PQIDX_SERVICE_WIRE_H_
