// The pqidxd client library: a blocking, single-connection view of the
// service that mirrors the in-process index API (Lookup, AddTree,
// ApplyEdits), so callers can swap a ForestIndex for a remote index with
// the same call shapes.
//
// The heavy lifting stays client-side, matching the protocol's "ship
// bags, not trees" rule: AddTree builds the pq-gram bag locally and
// ApplyEdits runs the paper's Algorithm 1 locally (ComputeIndexDeltas) to
// reduce (tn, log) to the (I+, I-) delta bags before anything touches the
// wire. The server only ever validates and merges bags.
//
// A Client is not thread-safe: one request in flight per connection.
// Concurrency comes from opening one connection per thread (the loadgen
// and the stress tests do exactly that).

#ifndef PQIDX_SERVICE_CLIENT_H_
#define PQIDX_SERVICE_CLIENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "edit/edit_log.h"
#include "service/retry.h"
#include "service/transport.h"
#include "service/wire.h"
#include "tree/tree.h"

namespace pqidx {

class Client {
 public:
  // Takes ownership of `connection` and performs a Stats round trip to
  // learn the server's index shape (every later bag is built with it).
  // Fails with UNAVAILABLE if the server rejected the connection at
  // admission control.
  static StatusOr<std::unique_ptr<Client>> Connect(
      std::unique_ptr<Connection> connection);

  // Dial + Connect with exponential backoff + jitter (service/retry.h):
  // retries transient failures -- connection refused while the server
  // is still binding, admission-control rejection under load -- until
  // the policy's attempt budget is spent (max_attempts 0 retries
  // forever). Returns the last error when the budget runs out.
  static StatusOr<std::unique_ptr<Client>> ConnectWithRetry(
      const Dialer& dial, const BackoffPolicy& policy = BackoffPolicy(),
      uint64_t seed = 1);

  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // The server's index shape, learned at Connect().
  const PqShape& shape() const { return shape_; }

  Status Ping();

  // Approximate lookup on the server: all trees within pq-gram distance
  // `tau` of the query, most similar first.
  StatusOr<std::vector<LookupResult>> Lookup(const PqGramIndex& query,
                                             double tau);
  StatusOr<std::vector<LookupResult>> Lookup(const Tree& query, double tau);

  // The k most similar trees to `query` on the server (kTopK), most
  // similar first; fewer when the index holds fewer trees. `k` must be
  // in [0, TopKRequest::kMaxK].
  StatusOr<std::vector<LookupResult>> TopK(const PqGramIndex& query, int k);
  StatusOr<std::vector<LookupResult>> TopK(const Tree& query, int k);

  // Registers a tree under `id`. The bag is built locally.
  Status AddTree(TreeId id, const Tree& tree);
  // Registers a prebuilt bag (must have the server's shape).
  Status AddIndex(TreeId id, const PqGramIndex& bag);

  // Incrementally maintains tree `id` on the server from the resulting
  // tree and the log of inverse edit operations: computes the (I+, I-)
  // bags locally and ships only those.
  Status ApplyEdits(TreeId id, const Tree& tn, const EditLog& log);
  // Lower-level variant for callers that already hold the delta bags.
  Status ApplyDeltas(TreeId id, const PqGramIndex& plus,
                     const PqGramIndex& minus, int64_t log_ops = 0);

  StatusOr<ServiceStats> Stats();

  // The server's full observability registry (kStatsSnapshot): every
  // counter/gauge/histogram, including per-opcode latency histograms
  // and the ApplyBatch phase split.
  StatusOr<MetricsSnapshot> StatsSnapshot();

  // Shuts the connection down; everything after fails. Idempotent.
  void Close();

 private:
  explicit Client(std::unique_ptr<Connection> connection)
      : connection_(std::move(connection)) {}

  // Sends one request frame and receives the matching response frame,
  // returning the transported status and leaving `reader` positioned at
  // the response body.
  Status RoundTrip(MessageType type, std::string_view payload,
                   std::string* response_payload);

  std::unique_ptr<Connection> connection_;
  PqShape shape_;
  uint64_t next_request_id_ = 1;  // 0 is the connection-rejection id
};

}  // namespace pqidx

#endif  // PQIDX_SERVICE_CLIENT_H_
