#include "service/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace pqidx {
namespace {

Status EndOfStream() { return OutOfRangeError("end of stream"); }

// Maps both strerror_r flavors onto the caller's buffer: the XSI
// variant returns int and fills the buffer, the GNU variant returns the
// message pointer directly (and may ignore the buffer). Only one
// overload is instantiated per libc, hence [[maybe_unused]].
[[maybe_unused]] const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char* StrerrorResult(const char* msg,
                                            const char* /*buf*/) {
  return msg;
}

// "<prefix>: <errno message>" via the thread-safe strerror_r (plain
// strerror shares a static buffer across threads; clang-tidy's
// concurrency-mt-unsafe flags it).
std::string ErrnoMessage(const char* prefix, int err) {
  char buf[128] = {};
  const char* msg = StrerrorResult(strerror_r(err, buf, sizeof(buf)), buf);
  return std::string(prefix) + ": " + msg;
}

// --- pipe ---------------------------------------------------------------

// One direction of a pipe: a bounded byte buffer with blocking
// backpressure. `closed` means no more bytes will ever be appended.
struct PipeQueue {
  explicit PipeQueue(size_t capacity) : capacity(capacity) {}

  Mutex mutex;
  CondVar cv;
  std::string buffer PQIDX_GUARDED_BY(mutex);
  size_t read_pos PQIDX_GUARDED_BY(mutex) = 0;  // consumed buffer prefix
  size_t capacity;
  bool closed PQIDX_GUARDED_BY(mutex) = false;

  size_t available() const PQIDX_REQUIRES(mutex) {
    return buffer.size() - read_pos;
  }

  void Compact() PQIDX_REQUIRES(mutex) {
    if (read_pos > 0 && read_pos >= buffer.size() / 2) {
      buffer.erase(0, read_pos);
      read_pos = 0;
    }
  }
};

class PipeConnection : public Connection {
 public:
  PipeConnection(std::shared_ptr<PipeQueue> read_queue,
                 std::shared_ptr<PipeQueue> write_queue)
      : read_queue_(std::move(read_queue)),
        write_queue_(std::move(write_queue)) {}

  ~PipeConnection() override { Close(); }

  Status Send(std::string_view bytes) override {
    PipeQueue& q = *write_queue_;
    size_t sent = 0;
    while (sent < bytes.size()) {
      MutexLock lock(&q.mutex);
      while (!q.closed && q.available() >= q.capacity) q.cv.Wait(&q.mutex);
      if (q.closed) return IoError("pipe closed");
      size_t room = q.capacity - q.available();
      size_t n = std::min(room, bytes.size() - sent);
      q.buffer.append(bytes.data() + sent, n);
      sent += n;
      q.cv.NotifyAll();
    }
    return Status::Ok();
  }

  Status ReceiveExact(size_t n, std::string* out) override {
    out->clear();
    PipeQueue& q = *read_queue_;
    while (out->size() < n) {
      MutexLock lock(&q.mutex);
      while (!q.closed && q.available() == 0) q.cv.Wait(&q.mutex);
      if (q.available() == 0) {
        // closed and drained
        if (out->empty()) return EndOfStream();
        return DataLossError("stream closed mid-message");
      }
      size_t take = std::min(n - out->size(), q.available());
      out->append(q.buffer, q.read_pos, take);
      q.read_pos += take;
      q.Compact();
      q.cv.NotifyAll();
    }
    return Status::Ok();
  }

  void Close() override {
    for (PipeQueue* q : {read_queue_.get(), write_queue_.get()}) {
      MutexLock lock(&q->mutex);
      q->closed = true;
      q->cv.NotifyAll();
    }
  }

 private:
  std::shared_ptr<PipeQueue> read_queue_;
  std::shared_ptr<PipeQueue> write_queue_;
};

// --- TCP ----------------------------------------------------------------

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {
    int one = 1;
    // Frames are written whole; disable Nagle so small request frames
    // are not delayed behind unacked responses.
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override {
    Close();
    ::close(fd_);
  }

  Status Send(std::string_view bytes) override {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return IoError(ErrnoMessage("send", errno));
      }
      sent += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status ReceiveExact(size_t n, std::string* out) override {
    out->clear();
    out->reserve(n);
    char chunk[1 << 16];
    while (out->size() < n) {
      size_t want = std::min(n - out->size(), sizeof(chunk));
      ssize_t got = ::recv(fd_, chunk, want, 0);
      if (got < 0) {
        if (errno == EINTR) continue;
        return IoError(ErrnoMessage("recv", errno));
      }
      if (got == 0) {
        if (out->empty()) return EndOfStream();
        return DataLossError("stream closed mid-message");
      }
      out->append(chunk, static_cast<size_t>(got));
    }
    return Status::Ok();
  }

  void Close() override {
    // shutdown (not close) so a concurrent blocked recv/send returns;
    // the descriptor itself is released by the destructor only.
    ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  int fd_;
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
MakePipePair(size_t capacity) {
  auto a_to_b = std::make_shared<PipeQueue>(capacity);
  auto b_to_a = std::make_shared<PipeQueue>(capacity);
  return {std::make_unique<PipeConnection>(b_to_a, a_to_b),
          std::make_unique<PipeConnection>(a_to_b, b_to_a)};
}

StatusOr<std::unique_ptr<Connection>> PipeListener::Connect() {
  auto [client_end, server_end] = MakePipePair(capacity_);
  {
    MutexLock lock(&mutex_);
    if (closed_) return UnavailableError("listener closed");
    pending_.push_back(std::move(server_end));
  }
  cv_.NotifyOne();
  return std::move(client_end);
}

StatusOr<std::unique_ptr<Connection>> PipeListener::Accept() {
  MutexLock lock(&mutex_);
  while (!closed_ && pending_.empty()) cv_.Wait(&mutex_);
  if (!pending_.empty()) {
    std::unique_ptr<Connection> conn = std::move(pending_.front());
    pending_.pop_front();
    return conn;
  }
  return UnavailableError("listener closed");
}

void PipeListener::Close() {
  {
    MutexLock lock(&mutex_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

StatusOr<std::unique_ptr<TcpListener>> TcpListener::Listen(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoError(ErrnoMessage("socket", errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = IoError(ErrnoMessage("bind", errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    Status status = IoError(ErrnoMessage("listen", errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    Status status = IoError(ErrnoMessage("getsockname", errno));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));  // lint:allow-new
}

TcpListener::~TcpListener() {
  Close();
  ::close(fd_);
}

StatusOr<std::unique_ptr<Connection>> TcpListener::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      std::unique_ptr<Connection> conn = std::make_unique<TcpConnection>(fd);
      return conn;
    }
    if (errno == EINTR) continue;
    MutexLock lock(&mutex_);
    if (closed_) return UnavailableError("listener closed");
    return IoError(ErrnoMessage("accept", errno));
  }
}

void TcpListener::Close() {
  MutexLock lock(&mutex_);
  if (closed_) return;
  closed_ = true;
  // Unblocks a pending accept() (Linux returns EINVAL after shutdown on a
  // listening socket); the fd is closed by the destructor.
  ::shutdown(fd_, SHUT_RDWR);
}

StatusOr<std::unique_ptr<Connection>> TcpConnect(const std::string& host,
                                                 uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("not a numeric IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IoError(ErrnoMessage("socket", errno));
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      break;
    }
    if (errno == EINTR) continue;
    Status status = IoError(ErrnoMessage("connect", errno));
    ::close(fd);
    return status;
  }
  std::unique_ptr<Connection> conn = std::make_unique<TcpConnection>(fd);
  return conn;
}

}  // namespace pqidx
