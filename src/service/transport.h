// Byte-stream transports for pqidxd: an in-process pipe pair for
// deterministic tests and a TCP loopback for real serving.
//
// A Connection is a reliable, ordered, bidirectional byte stream. Send
// and ReceiveExact are blocking; Close() may be called from any thread
// and unblocks both directions on both ends (the shutdown idiom), which
// is how the server interrupts handlers at Stop(). A Connection is not
// otherwise thread-safe: one sender and one receiver at a time.
//
// A clean close between frames surfaces as OUT_OF_RANGE from
// ReceiveExact ("end of stream"); any other failure is an IO_ERROR or
// DATA_LOSS. Listeners block in Accept() until a peer connects or
// Close() aborts the wait.

#ifndef PQIDX_SERVICE_TRANSPORT_H_
#define PQIDX_SERVICE_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "common/sync.h"

namespace pqidx {

class Connection {
 public:
  virtual ~Connection() = default;

  // Writes all of `bytes`, blocking as needed.
  virtual Status Send(std::string_view bytes) = 0;

  // Reads exactly `n` bytes into `*out` (replacing its contents). A close
  // arriving before the first byte returns OUT_OF_RANGE ("end of
  // stream"); a close mid-read returns DATA_LOSS.
  virtual Status ReceiveExact(size_t n, std::string* out) = 0;

  // Shuts the stream down in both directions; safe from any thread and
  // idempotent. Blocked Send/ReceiveExact calls on either end return.
  virtual void Close() = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  // Blocks until a peer connects. Fails after Close().
  virtual StatusOr<std::unique_ptr<Connection>> Accept() = 0;

  // Stops accepting; safe from any thread, unblocks a pending Accept().
  virtual void Close() = 0;
};

// --- in-process pipe transport ------------------------------------------

// Creates a connected pair of in-process stream ends. Each direction is a
// bounded buffer (`capacity` bytes) with blocking backpressure.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
MakePipePair(size_t capacity = 1 << 20);

// In-process listener: Connect() hands the server end to Accept() and
// returns the client end.
class PipeListener : public Listener {
 public:
  explicit PipeListener(size_t capacity = 1 << 20) : capacity_(capacity) {}

  StatusOr<std::unique_ptr<Connection>> Connect() PQIDX_EXCLUDES(mutex_);

  StatusOr<std::unique_ptr<Connection>> Accept() override
      PQIDX_EXCLUDES(mutex_);
  void Close() override PQIDX_EXCLUDES(mutex_);

 private:
  size_t capacity_;
  Mutex mutex_;
  CondVar cv_;
  std::deque<std::unique_ptr<Connection>> pending_ PQIDX_GUARDED_BY(mutex_);
  bool closed_ PQIDX_GUARDED_BY(mutex_) = false;
};

// --- TCP loopback transport ---------------------------------------------

class TcpListener : public Listener {
 public:
  // Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral
  // port, readable from port() afterwards.
  static StatusOr<std::unique_ptr<TcpListener>> Listen(uint16_t port);

  ~TcpListener() override;

  int port() const { return port_; }

  StatusOr<std::unique_ptr<Connection>> Accept() override
      PQIDX_EXCLUDES(mutex_);
  void Close() override PQIDX_EXCLUDES(mutex_);

 private:
  TcpListener(int fd, int port) : fd_(fd), port_(port) {}

  // The listening socket; Close() only shuts it down (never closes),
  // so concurrent Accept()/Close() may use the fd without locking.
  int fd_;
  int port_;
  Mutex mutex_;
  bool closed_ PQIDX_GUARDED_BY(mutex_) = false;
};

// Connects to a pqidxd TCP endpoint (numeric IPv4 host, e.g. 127.0.0.1).
StatusOr<std::unique_ptr<Connection>> TcpConnect(const std::string& host,
                                                 uint16_t port);

}  // namespace pqidx

#endif  // PQIDX_SERVICE_TRANSPORT_H_
