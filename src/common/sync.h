// Capability-annotated synchronization primitives: thin, header-only
// wrappers over the std types that carry the Clang thread-safety
// attributes from common/thread_annotations.h. All locking in the
// project goes through these -- tools/lint.py rule R6 forbids the raw
// std primitives outside this header -- so -DPQIDX_THREAD_SAFETY=ON
// (CMakeLists.txt) can prove every guarded access holds the right lock
// at compile time. On non-Clang compilers the attributes vanish and
// each wrapper inlines to the std call it wraps.
//
// Conventions (docs/ARCHITECTURE.md, "Locking model"):
//
//   * every Mutex / SharedMutex member documents what it guards by
//     putting PQIDX_GUARDED_BY on those members (lint rule R8 requires
//     at least one reference per mutex member);
//   * condition waits are written as explicit loops --
//     `while (!pred) cv.Wait(&mu);` -- not predicate lambdas: the
//     analysis is intra-procedural, so a lambda reading guarded state
//     would need its own escape hatch;
//   * MutexLock supports Unlock()/Lock() for windows where a blocking
//     call must run unlocked (group-commit leaders); the reader/writer
//     scopes are plain RAII.

#ifndef PQIDX_COMMON_SYNC_H_
#define PQIDX_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace pqidx {

class CondVar;

// Exclusive mutex (std::mutex) as a Clang capability.
class PQIDX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PQIDX_ACQUIRE() { mu_.lock(); }
  void Unlock() PQIDX_RELEASE() { mu_.unlock(); }
  bool TryLock() PQIDX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Reader/writer mutex (std::shared_mutex) as a Clang capability.
class PQIDX_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PQIDX_ACQUIRE() { mu_.lock(); }
  void Unlock() PQIDX_RELEASE() { mu_.unlock(); }
  void LockShared() PQIDX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() PQIDX_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive scope over a Mutex. Unlock()/Lock() reopen the scope
// around blocking calls that must run unlocked; the destructor releases
// only if currently held.
class PQIDX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PQIDX_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() PQIDX_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() PQIDX_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }
  void Lock() PQIDX_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* const mu_;
  bool held_ = true;
};

// RAII exclusive scope over a SharedMutex.
class PQIDX_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) PQIDX_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() PQIDX_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// RAII shared (reader) scope over a SharedMutex.
class PQIDX_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) PQIDX_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  // Generic (not exclusive) release: the scope holds the capability
  // shared, and the analysis rejects an exclusive release of it.
  ~ReaderLock() PQIDX_RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable bound to Mutex. Wait() takes the Mutex the caller
// holds; spurious wakeups are possible, so callers loop:
//   MutexLock lock(&mu);
//   while (!condition) cv.Wait(&mu);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases *mu, sleeps, and reacquires *mu before
  // returning.
  void Wait(Mutex* mu) PQIDX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // As Wait, but returns after at most `timeout_us` microseconds.
  // Returns false on timeout, true when notified (spurious wakeups
  // count as notifications; callers loop on their predicate either
  // way).
  bool WaitFor(Mutex* mu, int64_t timeout_us) PQIDX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::microseconds(timeout_us));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// Ticket-ordered turnstile: Await(t) blocks until every holder of a
// smaller ticket has called Finish(), which admits ticket t+1. The
// group-commit pipeline (service/server.cc) runs its validate and
// storage phases through one turnstile each so phase N of batch B
// starts only after phase N of batch B-1 finished, while the other
// phases overlap freely.
class Turnstile {
 public:
  Turnstile() = default;
  Turnstile(const Turnstile&) = delete;
  Turnstile& operator=(const Turnstile&) = delete;

  // Blocks until it is `ticket`'s turn. Tickets must be taken in order
  // starting at 0; each must be finished exactly once.
  void Await(uint64_t ticket) PQIDX_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    while (turn_ != ticket) cv_.Wait(&mutex_);
  }

  // Ends the current turn, admitting the next ticket.
  void Finish() PQIDX_EXCLUDES(mutex_) {
    {
      MutexLock lock(&mutex_);
      ++turn_;
    }
    cv_.NotifyAll();
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  uint64_t turn_ PQIDX_GUARDED_BY(mutex_) = 0;
};

}  // namespace pqidx

#endif  // PQIDX_COMMON_SYNC_H_
