// A small fixed-size thread pool for embarrassingly parallel work
// (collection indexing, bulk distance computation). Tasks are void
// closures; Wait() blocks until the queue drains. No work stealing, no
// priorities -- the workloads here are uniform batches.

#ifndef PQIDX_COMMON_THREAD_POOL_H_
#define PQIDX_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/sync.h"

namespace pqidx {

class ThreadPool {
 public:
  // Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  // Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Tasks must not throw (the library is exception-free)
  // and must not enqueue into the pool they run on while Wait() is
  // pending completion accounting -- plain fan-out/fan-in only. Debug
  // builds enforce the no-re-entrancy rule with a check; release builds
  // would deadlock in Wait() instead, so the rule is load-bearing.
  void Schedule(std::function<void()> task) PQIDX_EXCLUDES(mutex_);

  // Blocks until every scheduled task has finished. Calling this from a
  // worker of the same pool would self-deadlock (the waiter occupies the
  // thread that must drain the queue); debug builds check against it.
  void Wait() PQIDX_EXCLUDES(mutex_);

  // Convenience fan-out: runs fn(i) for i in [0, count) across the pool
  // and waits for completion.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn)
      PQIDX_EXCLUDES(mutex_);

 private:
  void WorkerLoop() PQIDX_EXCLUDES(mutex_);

  // The pool whose WorkerLoop is running on the current thread, if any;
  // lets debug builds detect re-entrant Schedule/Wait calls.
  static thread_local const ThreadPool* current_pool_;

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ PQIDX_GUARDED_BY(mutex_);
  // Written only by the constructor, before any other thread can hold a
  // reference to the pool; joined by the destructor. num_threads()
  // reads it lock-free under that immutable-after-construction contract.
  std::vector<std::thread> workers_;
  int in_flight_ PQIDX_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ PQIDX_GUARDED_BY(mutex_) = false;
};

}  // namespace pqidx

#endif  // PQIDX_COMMON_THREAD_POOL_H_
