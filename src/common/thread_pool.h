// A small fixed-size thread pool for embarrassingly parallel work
// (collection indexing, bulk distance computation). Tasks are void
// closures; Wait() blocks until the queue drains. No work stealing, no
// priorities -- the workloads here are uniform batches.

#ifndef PQIDX_COMMON_THREAD_POOL_H_
#define PQIDX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace pqidx {

class ThreadPool {
 public:
  // Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  // Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Tasks must not throw (the library is exception-free)
  // and must not enqueue into the pool they run on while Wait() is
  // pending completion accounting -- plain fan-out/fan-in only. Debug
  // builds enforce the no-re-entrancy rule with a check; release builds
  // would deadlock in Wait() instead, so the rule is load-bearing.
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has finished. Calling this from a
  // worker of the same pool would self-deadlock (the waiter occupies the
  // thread that must drain the queue); debug builds check against it.
  void Wait();

  // Convenience fan-out: runs fn(i) for i in [0, count) across the pool
  // and waits for completion.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  // The pool whose WorkerLoop is running on the current thread, if any;
  // lets debug builds detect re-entrant Schedule/Wait calls.
  static thread_local const ThreadPool* current_pool_;

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace pqidx

#endif  // PQIDX_COMMON_THREAD_POOL_H_
