#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/check.h"

namespace pqidx {
namespace {

// Names come from instrumentation call sites, but they still pass
// through JSON exposition, so escape the two structural characters and
// drop control bytes.
std::string JsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

// Shared quantile walk over (bucket index, count) pairs in index order.
int64_t QuantileFromBuckets(
    const std::vector<std::pair<uint32_t, int64_t>>& buckets, double q) {
  int64_t total = 0;
  for (const auto& [index, count] : buckets) total += count;
  if (total <= 0) return 0;
  double want = q * static_cast<double>(total);
  int64_t rank = want <= 1 ? 1 : static_cast<int64_t>(want);
  if (static_cast<double>(rank) < want) ++rank;  // ceil
  if (rank > total) rank = total;
  int64_t seen = 0;
  for (const auto& [index, count] : buckets) {
    seen += count;
    if (seen >= rank) {
      return Histogram::BucketUpperBound(static_cast<int>(index));
    }
  }
  return Histogram::BucketUpperBound(Histogram::kNumBuckets - 1);
}

void AppendHistogramFields(const MetricSample& sample, std::string* out) {
  out->append("count=").append(std::to_string(sample.count));
  out->append(" sum=").append(std::to_string(sample.sum));
  out->append(" max=").append(std::to_string(sample.max));
  out->append(" p50=").append(std::to_string(sample.Quantile(0.50)));
  out->append(" p95=").append(std::to_string(sample.Quantile(0.95)));
  out->append(" p99=").append(std::to_string(sample.Quantile(0.99)));
}

}  // namespace

std::atomic<bool> Metrics::enabled_{true};

int Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  int width = std::bit_width(static_cast<uint64_t>(value));
  return width < kNumBuckets ? width : kNumBuckets - 1;
}

int64_t Histogram::BucketUpperBound(int index) {
  PQIDX_DCHECK(index >= 0 && index < kNumBuckets);
  if (index == 0) return 0;
  if (index >= kNumBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << index) - 1;
}

void Histogram::Record(int64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

int64_t Histogram::Quantile(double q) const {
  std::vector<std::pair<uint32_t, int64_t>> buckets;
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t n = bucket(i);
    if (n > 0) buckets.emplace_back(static_cast<uint32_t>(i), n);
  }
  return QuantileFromBuckets(buckets, q);
}

int64_t MetricSample::Quantile(double q) const {
  if (kind != Kind::kHistogram) return 0;
  return QuantileFromBuckets(buckets, q);
}

bool MetricSample::operator==(const MetricSample& other) const {
  return kind == other.kind && name == other.name && value == other.value &&
         count == other.count && sum == other.sum && max == other.max &&
         buckets == other.buckets;
}

const MetricSample* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricSample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const MetricSample& sample : samples) {
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        out.append("counter ").append(sample.name).append(" ");
        out.append(std::to_string(sample.value)).append("\n");
        break;
      case MetricSample::Kind::kGauge:
        out.append("gauge ").append(sample.name).append(" ");
        out.append(std::to_string(sample.value)).append("\n");
        break;
      case MetricSample::Kind::kHistogram:
        out.append("histogram ").append(sample.name).append(" ");
        AppendHistogramFields(sample, &out);
        out.append("\n");
        break;
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string counters, gauges, histograms;
  for (const MetricSample& sample : samples) {
    std::string entry = "\"" + JsonEscaped(sample.name) + "\":";
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        if (!counters.empty()) counters.push_back(',');
        counters.append(entry).append(std::to_string(sample.value));
        break;
      case MetricSample::Kind::kGauge:
        if (!gauges.empty()) gauges.push_back(',');
        gauges.append(entry).append(std::to_string(sample.value));
        break;
      case MetricSample::Kind::kHistogram: {
        if (!histograms.empty()) histograms.push_back(',');
        entry.append("{\"count\":").append(std::to_string(sample.count));
        entry.append(",\"sum\":").append(std::to_string(sample.sum));
        entry.append(",\"max\":").append(std::to_string(sample.max));
        entry.append(",\"p50\":")
            .append(std::to_string(sample.Quantile(0.50)));
        entry.append(",\"p95\":")
            .append(std::to_string(sample.Quantile(0.95)));
        entry.append(",\"p99\":")
            .append(std::to_string(sample.Quantile(0.99)));
        entry.append(",\"buckets\":{");
        for (size_t i = 0; i < sample.buckets.size(); ++i) {
          if (i > 0) entry.push_back(',');
          entry.append("\"")
              .append(std::to_string(Histogram::BucketUpperBound(
                  static_cast<int>(sample.buckets[i].first))))
              .append("\":")
              .append(std::to_string(sample.buckets[i].second));
        }
        entry.append("}}");
        histograms.append(entry);
        break;
      }
    }
  }
  std::string out = "{\"counters\":{";
  out.append(counters).append("},\"gauges\":{").append(gauges);
  out.append("},\"histograms\":{").append(histograms).append("}}");
  return out;
}

Metrics& Metrics::Default() {
  static Metrics instance;
  return instance;
}

Counter* Metrics::counter(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* Metrics::gauge(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return it->second.get();
}

Histogram* Metrics::histogram(std::string_view name) {
  MutexLock lock(&mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram()))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(&mutex_);
  for (const auto& [name, counter] : counters_) {
    MetricSample sample;
    sample.kind = MetricSample::Kind::kCounter;
    sample.name = name;
    sample.value = counter->value();
    snapshot.samples.push_back(std::move(sample));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample sample;
    sample.kind = MetricSample::Kind::kGauge;
    sample.name = name;
    sample.value = gauge->value();
    snapshot.samples.push_back(std::move(sample));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSample sample;
    sample.kind = MetricSample::Kind::kHistogram;
    sample.name = name;
    sample.count = hist->count();
    sample.sum = hist->sum();
    sample.max = hist->max();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      int64_t n = hist->bucket(i);
      if (n > 0) sample.buckets.emplace_back(static_cast<uint32_t>(i), n);
    }
    snapshot.samples.push_back(std::move(sample));
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return snapshot;
}

void Metrics::Reset() {
  MutexLock lock(&mutex_);
  for (auto& [name, counter] : counters_) {
    counter->v_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->v_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, hist] : histograms_) {
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      hist->buckets_[i].store(0, std::memory_order_relaxed);
    }
    hist->count_.store(0, std::memory_order_relaxed);
    hist->sum_.store(0, std::memory_order_relaxed);
    hist->max_.store(0, std::memory_order_relaxed);
  }
}

int64_t Metrics::NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SlowOpLog& SlowOpLog::Default() {
  static SlowOpLog instance = [] {
    int64_t threshold_us = 100 * 1000;  // 100ms
    // getenv races with setenv, but this runs once (static init, under
    // the C++ magic-static lock) and nothing in the process calls
    // setenv, so the mt-unsafe warning does not apply here.
    if (const char* env = std::getenv("PQIDX_SLOW_OP_US")) {  // NOLINT(concurrency-mt-unsafe)
      char* end = nullptr;
      long long parsed = std::strtoll(env, &end, 10);
      if (end != env) threshold_us = parsed;
    }
    return SlowOpLog(threshold_us);
  }();
  return instance;
}

void SlowOpLog::Report(std::string_view op, int64_t total_us,
                       std::string_view detail) {
  int64_t threshold = threshold_us();
  if (threshold <= 0 || total_us < threshold) return;
  ForceReport(op, total_us, detail);
}

void SlowOpLog::ForceReport(std::string_view op, int64_t total_us,
                            std::string_view detail) {
  std::fprintf(stderr, "pqidx slow-op: %.*s %lldus %.*s\n",
               static_cast<int>(op.size()), op.data(),
               static_cast<long long>(total_us),
               static_cast<int>(detail.size()), detail.data());
  Entry entry{std::string(op), total_us, std::string(detail)};
  MutexLock lock(&mutex_);
  if (ring_.size() < kRingCapacity) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[next_] = std::move(entry);
    next_ = (next_ + 1) % kRingCapacity;
    ++dropped_;
  }
}

std::vector<SlowOpLog::Entry> SlowOpLog::Entries() const {
  MutexLock lock(&mutex_);
  // Oldest first: once the ring wraps, next_ points at the oldest slot.
  std::vector<Entry> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<ptrdiff_t>(next_));
  return out;
}

void SlowOpLog::Clear() {
  MutexLock lock(&mutex_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

}  // namespace pqidx
