#include "common/fingerprint.h"

namespace pqidx {
namespace {

// 2^61 - 1, a Mersenne prime: reduction needs no division.
constexpr uint64_t kMersenne61 = (uint64_t{1} << 61) - 1;

// Fixed base for the polynomial; coprime with the modulus and large enough
// that short labels spread across the field.
constexpr uint64_t kBase = 0x1fffffffffffffe7ULL % kMersenne61;

uint64_t MulMod(uint64_t a, uint64_t b) {
  __uint128_t prod = static_cast<__uint128_t>(a) * b;
  uint64_t lo = static_cast<uint64_t>(prod & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t sum = lo + hi;
  if (sum >= kMersenne61) sum -= kMersenne61;
  return sum;
}

}  // namespace

LabelHash KarpRabinFingerprint(std::string_view label) {
  uint64_t hash = 0;
  uint64_t power = 1;
  for (unsigned char c : label) {
    // + 1 so that trailing NULs and the empty string are distinguished.
    hash = (hash + MulMod(power, static_cast<uint64_t>(c) + 1)) % kMersenne61;
    power = MulMod(power, kBase);
  }
  // Mix in the length to separate prefixes, then shift into [1, 2^61-1] so
  // that no real label collides with kNullLabelHash (= 0).
  hash = (hash + MulMod(power, label.size() + 1)) % kMersenne61;
  return hash + 1;
}

PqGramFingerprint FingerprintLabelTuple(const LabelHash* labels, int count) {
  TupleFingerprinter fp;
  for (int i = 0; i < count; ++i) {
    fp.Add(labels[i]);
  }
  return fp.Finish();
}

}  // namespace pqidx
