#include "common/serde.h"

#include <cstdio>

namespace pqidx {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutSignedVarint(int64_t v) {
  uint64_t zigzag =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint(zigzag);
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buf_.append(s.data(), s.size());
}

Status ByteReader::GetU8(uint8_t* out) {
  if (pos_ >= data_.size()) return DataLossError("truncated input (u8)");
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::Ok();
}

Status ByteReader::GetU32(uint32_t* out) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    uint8_t b;
    PQIDX_RETURN_IF_ERROR(GetU8(&b));
    v |= static_cast<uint32_t>(b) << (8 * i);
  }
  *out = v;
  return Status::Ok();
}

Status ByteReader::GetU64(uint64_t* out) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    uint8_t b;
    PQIDX_RETURN_IF_ERROR(GetU8(&b));
    v |= static_cast<uint64_t>(b) << (8 * i);
  }
  *out = v;
  return Status::Ok();
}

Status ByteReader::GetVarint(uint64_t* out) {
  // A uint64 needs at most 10 LEB128 bytes; the 10th may only carry the
  // top bit (64 = 9*7 + 1). Both over-length encodings and a 10th byte
  // with payload above bit 63 are malformed: without these guards the
  // high bits would be shifted out silently (and a naive `<< shift`
  // with shift >= 64 is UB), turning corrupt input into a wrong value
  // instead of an error.
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) return DataLossError("varint too long");
    uint8_t b;
    PQIDX_RETURN_IF_ERROR(GetU8(&b));
    uint64_t chunk = b & 0x7f;
    if (shift > 57 && (chunk >> (64 - shift)) != 0) {
      return DataLossError("varint overflows 64 bits");
    }
    v |= chunk << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::Ok();
}

Status ByteReader::GetSignedVarint(int64_t* out) {
  uint64_t zigzag;
  PQIDX_RETURN_IF_ERROR(GetVarint(&zigzag));
  *out = static_cast<int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
  return Status::Ok();
}

Status ByteReader::GetString(std::string* out) {
  uint64_t len;
  PQIDX_RETURN_IF_ERROR(GetVarint(&len));
  if (len > remaining()) return DataLossError("truncated input (string)");
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::Ok();
}

Status WriteFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IoError("cannot open for write: " + path);
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return IoError("short write: " + path);
  }
  return Status::Ok();
}

Status ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoError("cannot open for read: " + path);
  out->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return IoError("read error: " + path);
  return Status::Ok();
}

}  // namespace pqidx
