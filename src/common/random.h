// Deterministic random number helpers for workload generation and tests.
//
// All generators in the library take an explicit Rng so that experiments
// and property tests are reproducible from a seed.

#ifndef PQIDX_COMMON_RANDOM_H_
#define PQIDX_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace pqidx {

// xoshiro256** generator: fast, high-quality, value-semantics, and stable
// across platforms (unlike std::mt19937 distributions, whose outputs vary
// between standard library implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Returns the next raw 64-bit value.
  uint64_t Next();

  // Returns a uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  // Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  // Returns a uniform double in [0, 1).
  double NextDouble();

  // Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  // Returns an index in [0, weights.size()) with probability proportional
  // to weights[i]. Requires a non-empty vector with a positive sum.
  int WeightedPick(const std::vector<double>& weights);

  // Returns a value from an (approximately) Zipfian distribution over
  // [0, n) with exponent `s`. Used for skewed label alphabets.
  int Zipf(int n, double s);

 private:
  uint64_t s_[4];
};

}  // namespace pqidx

#endif  // PQIDX_COMMON_RANDOM_H_
