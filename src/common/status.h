// Status and StatusOr: exception-free error propagation.
//
// Library code reports recoverable failures (malformed XML, bad edit
// operations, I/O errors) by returning Status or StatusOr<T>. Callers must
// consult ok() before using a StatusOr value; accessing the value of a
// failed StatusOr aborts.

#ifndef PQIDX_COMMON_STATUS_H_
#define PQIDX_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace pqidx {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kDataLoss,
  kIoError,
  // The operation was refused because the receiver is at capacity
  // (service admission control); retrying later may succeed.
  kUnavailable,
};

// Returns a short stable name for `code`, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// Value type describing the outcome of an operation. Cheap to copy in the
// OK case; carries a message otherwise.
//
// [[nodiscard]] at class level: every function returning a Status (or
// StatusOr) must have its result examined. Call sites that deliberately
// drop an error write `(void)Fn();` with a comment saying why.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status DataLossError(std::string message);
Status IoError(std::string message);
Status UnavailableError(std::string message);

// Union of a Status and a T. Either holds a value (and status().ok()) or an
// error status. Move-friendly; `value()` aborts if not ok.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr: allows
  // `return some_value;` and `return some_error();` from the same function.
  StatusOr(Status status) : data_(std::move(status)) {  // NOLINT
    PQIDX_CHECK_MSG(!std::get<Status>(data_).ok(),
                    "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value) : data_(std::move(value)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    PQIDX_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    PQIDX_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    PQIDX_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

// Propagates a non-OK status to the caller.
#define PQIDX_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::pqidx::Status pqidx_status_tmp_ = (expr);     \
    if (!pqidx_status_tmp_.ok()) {                  \
      return pqidx_status_tmp_;                     \
    }                                               \
  } while (false)

}  // namespace pqidx

#endif  // PQIDX_COMMON_STATUS_H_
