// Binary serialization primitives used by the persistent index and the tree
// store: little-endian fixed-width integers, LEB128 varints, and
// length-prefixed strings, over an in-memory buffer or a file.

#ifndef PQIDX_COMMON_SERDE_H_
#define PQIDX_COMMON_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace pqidx {

// Append-only byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  // Unsigned LEB128.
  void PutVarint(uint64_t v);
  // Zig-zag + LEB128 for signed values.
  void PutSignedVarint(int64_t v);
  // Varint length prefix followed by the raw bytes.
  void PutString(std::string_view s);

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Sequential byte source over a borrowed buffer. All getters return a
// non-OK status on truncated or malformed input; the cursor position is
// unspecified after a failure.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetSignedVarint(int64_t* out);
  Status GetString(std::string* out);

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// Writes `data` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, std::string_view data);

// Reads the whole file at `path` into `*out`.
Status ReadFile(const std::string& path, std::string* out);

}  // namespace pqidx

#endif  // PQIDX_COMMON_SERDE_H_
