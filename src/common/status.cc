#include "common/status.h"

namespace pqidx {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

}  // namespace pqidx
