#include "common/thread_pool.h"

#include <algorithm>

namespace pqidx {

thread_local const ThreadPool* ThreadPool::current_pool_ = nullptr;

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(num_threads, 1);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(&mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Schedule(std::function<void()> task) {
  PQIDX_CHECK(task != nullptr);
  // Re-entrant scheduling from a worker of this pool races with Wait()'s
  // completion accounting; release builds would hang, so fail loudly here.
  PQIDX_DCHECK(current_pool_ != this);
  {
    MutexLock lock(&mutex_);
    PQIDX_CHECK_MSG(!shutting_down_, "Schedule after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  // Waiting from a worker of this pool deadlocks: the waiter occupies a
  // thread the queue needs to drain.
  PQIDX_DCHECK(current_pool_ != this);
  MutexLock lock(&mutex_);
  while (in_flight_ != 0) all_done_.Wait(&mutex_);
}

void ThreadPool::ParallelFor(int64_t count,
                             const std::function<void(int64_t)>& fn) {
  // Chunk to keep queue overhead negligible for large counts.
  int64_t chunks = std::min<int64_t>(count, num_threads() * 4);
  if (chunks <= 0) return;
  int64_t per_chunk = (count + chunks - 1) / chunks;
  for (int64_t begin = 0; begin < count; begin += per_chunk) {
    int64_t end = std::min(begin + per_chunk, count);
    Schedule([begin, end, &fn] {
      for (int64_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  current_pool_ = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait(&mutex_);
      }
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(&mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace pqidx
