#include "common/random.h"

#include <cmath>

namespace pqidx {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four words via splitmix64, as recommended by the xoshiro
  // authors; guarantees a nonzero state.
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PQIDX_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  PQIDX_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 top bits scaled into [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int Rng::WeightedPick(const std::vector<double>& weights) {
  PQIDX_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  PQIDX_CHECK(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

int Rng::Zipf(int n, double s) {
  PQIDX_CHECK(n > 0);
  // Inverse-CDF on the (truncated) continuous approximation; adequate for
  // workload skew, not for statistical studies.
  double u = NextDouble();
  if (s == 1.0) s = 1.0000001;
  double h = (std::pow(static_cast<double>(n), 1.0 - s) - 1.0) / (1.0 - s);
  double x = std::pow(u * h * (1.0 - s) + 1.0, 1.0 / (1.0 - s));
  int k = static_cast<int>(x);
  if (k < 0) k = 0;
  if (k >= n) k = n - 1;
  return k;
}

}  // namespace pqidx
