// Process-wide, lock-cheap observability registry: named counters,
// gauges, and power-of-2-bucket latency histograms, plus a ScopedTimer
// RAII helper and a slow-operation log.
//
// Design (docs/ARCHITECTURE.md, "Observability"):
//
//   * the hot path is wait-free: Counter::Add, Gauge::Set and
//     Histogram::Record are relaxed atomic operations on pre-registered
//     cells -- no locks, no allocation, no string hashing. The
//     registry's mutex is only taken at registration time (once per
//     call site, pointers are stable for the registry's lifetime) and
//     when a snapshot is cut;
//   * histograms use fixed power-of-2 buckets: value v lands in bucket
//     bit_width(v) (0 stays in bucket 0), so bucket i > 0 covers
//     [2^(i-1), 2^i - 1]. Quantiles report the upper bound of the
//     bucket holding the target rank -- deterministic, and never an
//     underestimate, which is the right bias for latency SLO checks;
//   * exposition is deterministic: Snapshot() sorts samples by name,
//     and ToText()/ToJson() are pure functions of the snapshot, so
//     goldens in tests and diffs between BENCH_*.json artifacts are
//     stable;
//   * a global kill switch (set_enabled(false)) turns Record and the
//     ScopedTimer clock reads into no-ops, which is how
//     bench_service_loadgen measures the instrumentation overhead
//     itself.
//
// Components instrument against Metrics::Default(); tests that need
// golden output build their own Metrics instance instead.

#ifndef PQIDX_COMMON_METRICS_H_
#define PQIDX_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace pqidx {

// Monotonically increasing event count.
class Counter {
 public:
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Metrics;
  Counter() = default;
  std::atomic<int64_t> v_{0};
};

// Point-in-time level (queue depth, epoch, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Metrics;
  Gauge() = default;
  std::atomic<int64_t> v_{0};
};

// Fixed power-of-2 bucket histogram. Bucket 0 holds values <= 0;
// bucket i in [1, kNumBuckets-2] holds [2^(i-1), 2^i - 1]; the last
// bucket holds everything at or above 2^(kNumBuckets-2).
class Histogram {
 public:
  static constexpr int kNumBuckets = 48;

  // The bucket `value` lands in.
  static int BucketIndex(int64_t value);
  // Largest value of bucket `index` (INT64_MAX for the overflow
  // bucket); quantiles report this bound.
  static int64_t BucketUpperBound(int index);

  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  int64_t bucket(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  // Upper bound of the bucket holding the rank-ceil(q * count) value
  // (q in [0, 1]); 0 when the histogram is empty. Deterministic for a
  // fixed set of recorded values.
  int64_t Quantile(double q) const;

 private:
  friend class Metrics;
  Histogram() = default;

  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

// One metric in a snapshot. For histograms, `buckets` holds the
// non-empty buckets as (bucket index, count) pairs in index order.
struct MetricSample {
  enum class Kind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

  Kind kind = Kind::kCounter;
  std::string name;
  int64_t value = 0;  // counter/gauge value; unused for histograms
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  std::vector<std::pair<uint32_t, int64_t>> buckets;

  // Histogram quantile from the sampled buckets (same semantics as
  // Histogram::Quantile); 0 for counters/gauges.
  int64_t Quantile(double q) const;

  bool operator==(const MetricSample& other) const;
};

// A consistent-enough point-in-time copy of a registry: samples sorted
// by (name, kind), so exposition is deterministic.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  const MetricSample* Find(std::string_view name) const;

  // One line per metric:
  //   counter <name> <value>
  //   gauge <name> <value>
  //   histogram <name> count=N sum=S max=M p50=A p95=B p99=C
  std::string ToText() const;
  // {"counters":{...},"gauges":{...},"histograms":{"n":{"count":...,
  // "sum":...,"max":...,"p50":...,"p95":...,"p99":...,
  // "buckets":{"<upper bound>":count,...}}}} -- keys sorted, no
  // whitespace, stable across runs.
  std::string ToJson() const;

  bool operator==(const MetricsSnapshot& other) const {
    return samples == other.samples;
  }
};

// The registry. Lookup-or-register by name; returned pointers stay
// valid for the registry's lifetime. Names are independent per kind
// (but instrumentation should not reuse a name across kinds).
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // The process-wide registry every component instruments against.
  static Metrics& Default();

  Counter* counter(std::string_view name) PQIDX_EXCLUDES(mutex_);
  Gauge* gauge(std::string_view name) PQIDX_EXCLUDES(mutex_);
  Histogram* histogram(std::string_view name) PQIDX_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const PQIDX_EXCLUDES(mutex_);

  // Zeroes every registered metric (registrations survive). Test aid;
  // do not call while other threads are recording.
  void Reset() PQIDX_EXCLUDES(mutex_);

  // Global instrumentation kill switch: when off, Histogram::Record via
  // ScopedTimer and the timer's clock reads are skipped. Counters and
  // gauges stay live (they are single relaxed adds; the switch exists
  // to measure the timing overhead, which is where the cost is).
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Monotonic clock in microseconds (steady, comparable across calls
  // within the process).
  static int64_t NowUs();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      PQIDX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      PQIDX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      PQIDX_GUARDED_BY(mutex_);

  static std::atomic<bool> enabled_;
};

// Records the scope's wall time, in microseconds, into a histogram on
// destruction. A null histogram or a disabled registry makes it a
// no-op (no clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(Metrics::enabled() ? hist : nullptr),
        start_us_(hist_ != nullptr ? Metrics::NowUs() : 0) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Record(Metrics::NowUs() - start_us_);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Microseconds since construction (0 when disabled).
  int64_t ElapsedUs() const {
    return hist_ != nullptr ? Metrics::NowUs() - start_us_ : 0;
  }

 private:
  Histogram* hist_;
  int64_t start_us_;
};

// Slow-operation log: operations over a threshold log their phase
// breakdown to stderr and into a bounded in-memory ring (tests read
// the ring). The default instance's threshold comes from the
// PQIDX_SLOW_OP_US environment variable (microseconds; default 100ms;
// <= 0 disables).
class SlowOpLog {
 public:
  static constexpr size_t kRingCapacity = 128;

  struct Entry {
    std::string op;
    int64_t total_us = 0;
    std::string detail;  // phase breakdown, "delta_us=12 storage_us=80 ..."
  };

  explicit SlowOpLog(int64_t threshold_us) : threshold_us_(threshold_us) {}

  static SlowOpLog& Default();

  int64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }
  void set_threshold_us(int64_t us) {
    threshold_us_.store(us, std::memory_order_relaxed);
  }

  // Logs when `total_us` >= the threshold (and the threshold is > 0).
  void Report(std::string_view op, int64_t total_us,
              std::string_view detail) PQIDX_EXCLUDES(mutex_);
  // Logs unconditionally: for callers that apply their own threshold
  // (ServerOptions::slow_op_us overrides the log's).
  void ForceReport(std::string_view op, int64_t total_us,
                   std::string_view detail) PQIDX_EXCLUDES(mutex_);

  std::vector<Entry> Entries() const PQIDX_EXCLUDES(mutex_);
  void Clear() PQIDX_EXCLUDES(mutex_);

 private:
  std::atomic<int64_t> threshold_us_;
  mutable Mutex mutex_;
  // Newest appended; bounded to kRingCapacity.
  std::vector<Entry> ring_ PQIDX_GUARDED_BY(mutex_);
  // Ring write position once full.
  size_t next_ PQIDX_GUARDED_BY(mutex_) = 0;
  int64_t dropped_ PQIDX_GUARDED_BY(mutex_) = 0;
};

}  // namespace pqidx

#endif  // PQIDX_COMMON_METRICS_H_
