// Lightweight CHECK macros for invariant enforcement.
//
// The library does not use exceptions (Google C++ style); logic errors are
// programming bugs and abort the process with a diagnostic. Recoverable
// failures (parsing, I/O, invalid user input) are reported through Status
// instead (see common/status.h).

#ifndef PQIDX_COMMON_CHECK_H_
#define PQIDX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a file/line diagnostic when `condition` is false. Active in
// all build modes: index corruption is far more expensive than the branch.
#define PQIDX_CHECK(condition)                                              \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "PQIDX_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

// CHECK with an extra human-readable message.
#define PQIDX_CHECK_MSG(condition, msg)                                    \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "PQIDX_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #condition, msg);                    \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

// Debug-only check for hot paths.
#ifdef NDEBUG
#define PQIDX_DCHECK(condition) \
  do {                          \
  } while (false)
#else
#define PQIDX_DCHECK(condition) PQIDX_CHECK(condition)
#endif

#endif  // PQIDX_COMMON_CHECK_H_
