// Fingerprint hashing for labels and pq-gram label-tuples.
//
// The paper (Section 3.2) stores hashed labels instead of variable-length
// label strings, using a Karp-Rabin fingerprint function [Karp & Rabin,
// IBM JRD 1987] that maps a label to a fixed-length value that is unique
// with high probability. The only operation ever performed on labels by the
// index is an equality check, so fingerprints suffice.
//
// Two layers are provided:
//  * KarpRabinFingerprint: polynomial fingerprint of a byte string modulo a
//    61-bit Mersenne prime. Used to hash label strings.
//  * TupleFingerprint*: mixes a sequence of label hashes (the p+q labels of
//    a pq-gram) into one 64-bit key, the `pqg` column of the index relation.

#ifndef PQIDX_COMMON_FINGERPRINT_H_
#define PQIDX_COMMON_FINGERPRINT_H_

#include <cstdint>
#include <string_view>

namespace pqidx {

// Hash of one node label. The null label * hashes to kNullLabelHash.
using LabelHash = uint64_t;

// Hash of a full pq-gram label-tuple (the index key).
using PqGramFingerprint = uint64_t;

// Fingerprint of the null node label `*`. Real labels never hash to this
// value (KarpRabinFingerprint maps into [1, 2^61-1]).
inline constexpr LabelHash kNullLabelHash = 0;

// Returns the Karp-Rabin polynomial fingerprint of `label`:
//   h(l) = (sum_i l[i] * b^i) mod (2^61 - 1), offset into [1, 2^61-1].
// Deterministic across runs so persisted indexes remain valid.
LabelHash KarpRabinFingerprint(std::string_view label);

// Incremental mixer for a pq-gram label-tuple. Order-sensitive: the tuples
// (a,b) and (b,a) get different fingerprints. Based on a 64-bit
// multiply-xor mix (splitmix64 finalizer) chained over the labels.
class TupleFingerprinter {
 public:
  TupleFingerprinter() = default;

  // Mixes in the next label hash of the tuple.
  void Add(LabelHash h) {
    state_ = Mix(state_ ^ Mix(h + kGolden));
  }

  // Returns the fingerprint of the labels added so far.
  PqGramFingerprint Finish() const { return Mix(state_ + kGolden); }

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

  static uint64_t Mix(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  uint64_t state_ = 0x243f6a8885a308d3ULL;
};

// Convenience: fingerprints the label-tuple `labels[0..count-1]`.
PqGramFingerprint FingerprintLabelTuple(const LabelHash* labels, int count);

}  // namespace pqidx

#endif  // PQIDX_COMMON_FINGERPRINT_H_
