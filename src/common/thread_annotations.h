// Clang thread-safety-analysis attribute macros (the compile-time lock
// discipline layer; see docs/ARCHITECTURE.md, "Locking model").
//
// The attributes drive Clang's -Wthread-safety analysis: members declare
// which capability (mutex) guards them, functions declare which
// capabilities they require, acquire, or release, and the compiler
// proves every access consistent with those declarations. On compilers
// without the attribute (GCC, MSVC) every macro expands to nothing, so
// annotated code builds identically everywhere; the dedicated
// -DPQIDX_THREAD_SAFETY=ON Clang build (CMakeLists.txt) turns the
// analysis into hard errors.
//
// The attributes only fire on types themselves marked as capabilities,
// which is why the project wraps the std primitives in common/sync.h
// (PQIDX_CAPABILITY Mutex / SharedMutex) and tools/lint.py rule R6
// forbids the raw std types outside that header.
//
// PQIDX_NO_THREAD_SAFETY_ANALYSIS is the escape hatch for contracts the
// analysis cannot express (e.g. "the ticket-ordered storage turn
// serializes access"). Every use must carry a `no-tsa:` justification
// comment on the same or the preceding line -- tools/lint.py rule R7
// rejects bare escapes.

#ifndef PQIDX_COMMON_THREAD_ANNOTATIONS_H_
#define PQIDX_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define PQIDX_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PQIDX_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

// Marks a class as a capability (lockable). The given string names the
// capability kind in diagnostics ("mutex").
#define PQIDX_CAPABILITY(x) PQIDX_THREAD_ANNOTATION_(capability(x))

// Marks an RAII class whose constructor acquires and destructor
// releases a capability.
#define PQIDX_SCOPED_CAPABILITY PQIDX_THREAD_ANNOTATION_(scoped_lockable)

// The member may only be read or written while holding `x`.
#define PQIDX_GUARDED_BY(x) PQIDX_THREAD_ANNOTATION_(guarded_by(x))

// The pointee may only be accessed while holding `x` (the pointer
// itself is unguarded).
#define PQIDX_PT_GUARDED_BY(x) PQIDX_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations: this capability must be acquired before /
// after the listed ones (deadlock detection with -Wthread-safety-beta).
#define PQIDX_ACQUIRED_BEFORE(...) \
  PQIDX_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define PQIDX_ACQUIRED_AFTER(...) \
  PQIDX_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// The function may only be called while holding the listed capabilities
// exclusively / shared; it does not acquire or release them.
#define PQIDX_REQUIRES(...) \
  PQIDX_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define PQIDX_REQUIRES_SHARED(...) \
  PQIDX_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability and holds it on return.
#define PQIDX_ACQUIRE(...) \
  PQIDX_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define PQIDX_ACQUIRE_SHARED(...) \
  PQIDX_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

// The function releases a capability the caller holds.
#define PQIDX_RELEASE(...) \
  PQIDX_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define PQIDX_RELEASE_SHARED(...) \
  PQIDX_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define PQIDX_RELEASE_GENERIC(...) \
  PQIDX_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// The function acquires the capability iff it returns the given value.
#define PQIDX_TRY_ACQUIRE(...) \
  PQIDX_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define PQIDX_TRY_ACQUIRE_SHARED(...) \
  PQIDX_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

// The function may not be called while holding the listed capabilities
// (self-deadlock prevention for functions that acquire them).
#define PQIDX_EXCLUDES(...) \
  PQIDX_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Tells the analysis the capability is held without acquiring it
// (runtime-checked assertions).
#define PQIDX_ASSERT_CAPABILITY(x) \
  PQIDX_THREAD_ANNOTATION_(assert_capability(x))
#define PQIDX_ASSERT_SHARED_CAPABILITY(x) \
  PQIDX_THREAD_ANNOTATION_(assert_shared_capability(x))

// The function returns a reference to the given capability.
#define PQIDX_RETURN_CAPABILITY(x) \
  PQIDX_THREAD_ANNOTATION_(lock_returned(x))

// Disables the analysis for one function. A contract the analysis
// cannot see must exist and must be stated in a `no-tsa:` comment on
// the same or preceding line (enforced by tools/lint.py rule R7).
#define PQIDX_NO_THREAD_SAFETY_ANALYSIS \
  PQIDX_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // PQIDX_COMMON_THREAD_ANNOTATIONS_H_
