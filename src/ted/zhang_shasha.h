// Exact tree edit distance after Zhang & Shasha, "Simple fast algorithms
// for the editing distance between trees and related problems", SIAM J.
// Comput. 18(6), 1989 -- reference [20] of the paper and the distance that
// the pq-gram distance approximates.
//
// Unit cost model: insert = delete = 1, rename = 1 when labels differ.
// Complexity O(|T1|·|T2|·min(depth,leaves)^2) time, O(|T1|·|T2|) space;
// intended for validation, ablation studies, and change detection on
// small to medium trees.

#ifndef PQIDX_TED_ZHANG_SHASHA_H_
#define PQIDX_TED_ZHANG_SHASHA_H_

#include <utility>
#include <vector>

#include "tree/tree.h"

namespace pqidx {

// An optimal edit mapping together with its cost. The mapping is a set of
// (node of t1, node of t2) pairs that is one-to-one and preserves both the
// ancestor and the left-to-right sibling order; unmapped t1 nodes are
// deleted, unmapped t2 nodes inserted, mapped pairs with different labels
// renamed. For the unit cost model an optimal mapping always pairs the
// two roots.
struct TreeEditResult {
  int distance = 0;
  std::vector<std::pair<NodeId, NodeId>> mapping;
};

// Returns the exact tree edit distance between `t1` and `t2`. Both trees
// must be non-empty. Labels are compared via their dictionary strings, so
// the trees may use different dictionaries.
int TreeEditDistance(const Tree& t1, const Tree& t2);

// As TreeEditDistance, but also reconstructs an optimal edit mapping by
// backtracking through the dynamic program. Note: Zhang-Shasha's model
// permits editing the roots, so the optimal mapping may leave a root
// unmapped (it is never the case that *both* roots are unmapped under
// unit costs).
TreeEditResult TreeEditDistanceWithMapping(const Tree& t1, const Tree& t2);

// An optimal mapping among those that pair the two roots -- the edit
// model of the paper, where the root is never edited (Section 3.1).
// `distance` is the cost of the best root-preserving script, which can
// exceed TreeEditDistance by at most 2.
TreeEditResult RootPreservingEditMapping(const Tree& t1, const Tree& t2);

}  // namespace pqidx

#endif  // PQIDX_TED_ZHANG_SHASHA_H_
