#include "ted/zhang_shasha.h"

#include <algorithm>
#include <vector>

#include "common/fingerprint.h"

namespace pqidx {
namespace {

// Post-order view of a tree: for each node (1-based post-order position i)
// the label hash, the originating node id, and l(i), the post-order
// position of the leftmost leaf descendant. `keyroots` are the positions
// with a left sibling, plus the root (Zhang & Shasha, Section 3).
struct PostOrderView {
  std::vector<LabelHash> labels;  // 1-based
  std::vector<NodeId> node_ids;   // 1-based
  std::vector<int> lld;           // 1-based
  std::vector<int> keyroots;      // ascending

  int size() const { return static_cast<int>(labels.size()) - 1; }
};

PostOrderView BuildView(const Tree& tree) {
  PostOrderView view;
  view.labels.assign(1, kNullLabelHash);
  view.node_ids.assign(1, kNullNodeId);
  view.lld.assign(1, 0);
  // Iterative post-order with explicit stack: (node, next child index).
  struct Frame {
    NodeId node;
    size_t child = 0;
    int lld = 0;  // filled when first child returns
  };
  std::vector<Frame> stack;
  stack.push_back({tree.root()});
  std::vector<bool> has_left_sibling_at_pos(1, false);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto kids = tree.children(frame.node);
    if (frame.child < kids.size()) {
      NodeId next = kids[frame.child];
      ++frame.child;
      stack.push_back({next});
      continue;
    }
    // All children done: assign this node's post-order position.
    int pos = static_cast<int>(view.labels.size());
    view.labels.push_back(
        KarpRabinFingerprint(tree.LabelString(frame.node)));
    view.node_ids.push_back(frame.node);
    view.lld.push_back(frame.lld == 0 ? pos : frame.lld);
    has_left_sibling_at_pos.push_back(tree.SiblingIndex(frame.node) > 0);
    stack.pop_back();
    if (!stack.empty() && stack.back().lld == 0) {
      // First completed child propagates its leftmost leaf upward.
      stack.back().lld = view.lld[pos];
    }
  }
  for (int i = 1; i <= view.size(); ++i) {
    if (has_left_sibling_at_pos[i] || i == view.size()) {
      view.keyroots.push_back(i);
    }
  }
  return view;
}

class ZhangShasha {
 public:
  ZhangShasha(const PostOrderView& a, const PostOrderView& b)
      : a_(a),
        b_(b),
        treedist_(static_cast<size_t>(a.size()) + 1,
                  std::vector<int>(static_cast<size_t>(b.size()) + 1, 0)) {}

  int Run() {
    for (int i : a_.keyroots) {
      for (int j : b_.keyroots) {
        std::vector<std::vector<int>> fd;
        ComputeForestDist(i, j, &fd, /*record_treedist=*/true);
      }
    }
    return treedist_[a_.size()][b_.size()];
  }

  // Reconstructs an optimal mapping as (post-order in a, post-order in b)
  // pairs. Run() must have been called.
  std::vector<std::pair<int, int>> Backtrace() {
    std::vector<std::pair<int, int>> mapping;
    BacktraceBox(a_.size(), b_.size(), -1, -1, &mapping);
    return mapping;
  }

  // Cost and mapping of the best *root-preserving* script: the roots are
  // paired unconditionally and the child forests aligned optimally
  // underneath (the forest distance of the top box plus the root rename).
  // Run() must have been called.
  int ConstrainedDistance() {
    std::vector<std::vector<int>> fd;
    ComputeForestDist(a_.size(), b_.size(), &fd,
                      /*record_treedist=*/false);
    int rename =
        a_.labels[a_.size()] == b_.labels[b_.size()] ? 0 : 1;
    return fd[a_.size() - a_.lld[a_.size()]][b_.size() - b_.lld[b_.size()]] +
           rename;
  }

  std::vector<std::pair<int, int>> BacktraceConstrained() {
    std::vector<std::pair<int, int>> mapping;
    mapping.emplace_back(a_.size(), b_.size());
    BacktraceBox(a_.size(), b_.size(),
                 a_.size() - a_.lld[a_.size()],
                 b_.size() - b_.lld[b_.size()], &mapping);
    return mapping;
  }

 private:
  // Fills the forest-distance matrix for the subtree pair (i, j):
  // fd[x][y] = distance between the forests a[li..li+x-1], b[lj..lj+y-1].
  // When `record_treedist` is set, permanent tree distances discovered
  // along the way are written to treedist_ (the forward pass); the
  // backtrace recomputes matrices read-only.
  void ComputeForestDist(int i, int j, std::vector<std::vector<int>>* fd_out,
                         bool record_treedist) {
    int li = a_.lld[i];
    int lj = b_.lld[j];
    int rows = i - li + 2;
    int cols = j - lj + 2;
    std::vector<std::vector<int>>& fd = *fd_out;
    fd.assign(rows, std::vector<int>(cols, 0));
    for (int x = 1; x < rows; ++x) fd[x][0] = fd[x - 1][0] + 1;
    for (int y = 1; y < cols; ++y) fd[0][y] = fd[0][y - 1] + 1;
    for (int x = 1; x < rows; ++x) {
      int ai = li + x - 1;
      for (int y = 1; y < cols; ++y) {
        int bj = lj + y - 1;
        if (a_.lld[ai] == li && b_.lld[bj] == lj) {
          int rename = a_.labels[ai] == b_.labels[bj] ? 0 : 1;
          fd[x][y] = std::min({fd[x - 1][y] + 1, fd[x][y - 1] + 1,
                               fd[x - 1][y - 1] + rename});
          if (record_treedist) treedist_[ai][bj] = fd[x][y];
        } else {
          int xa = a_.lld[ai] - li;
          int yb = b_.lld[bj] - lj;
          fd[x][y] = std::min({fd[x - 1][y] + 1, fd[x][y - 1] + 1,
                               fd[xa][yb] + treedist_[ai][bj]});
        }
      }
    }
  }

  // Walks the decision path of the subtree problem (i, j) starting at
  // forest coordinates (start_x, start_y) -- or the full subtree pair when
  // negative -- emitting matched pairs and recursing into nested boxes.
  void BacktraceBox(int i, int j, int start_x, int start_y,
                    std::vector<std::pair<int, int>>* out) {
    std::vector<std::vector<int>> fd;
    ComputeForestDist(i, j, &fd, /*record_treedist=*/false);
    int li = a_.lld[i];
    int lj = b_.lld[j];
    int x = start_x >= 0 ? start_x : i - li + 1;
    int y = start_y >= 0 ? start_y : j - lj + 1;
    while (x > 0 && y > 0) {
      int ai = li + x - 1;
      int bj = lj + y - 1;
      if (a_.lld[ai] == li && b_.lld[bj] == lj) {
        int rename = a_.labels[ai] == b_.labels[bj] ? 0 : 1;
        if (fd[x][y] == fd[x - 1][y - 1] + rename) {
          out->emplace_back(ai, bj);
          --x;
          --y;
        } else if (fd[x][y] == fd[x - 1][y] + 1) {
          --x;  // delete ai
        } else {
          PQIDX_DCHECK(fd[x][y] == fd[x][y - 1] + 1);
          --y;  // insert bj
        }
      } else {
        if (fd[x][y] == fd[x - 1][y] + 1) {
          --x;
        } else if (fd[x][y] == fd[x][y - 1] + 1) {
          --y;
        } else {
          int xa = a_.lld[ai] - li;
          int yb = b_.lld[bj] - lj;
          PQIDX_DCHECK(fd[x][y] == fd[xa][yb] + treedist_[ai][bj]);
          BacktraceBox(ai, bj, -1, -1, out);
          x = xa;
          y = yb;
        }
      }
    }
    // Leftover prefix: pure deletions or insertions, no pairs.
  }

  const PostOrderView& a_;
  const PostOrderView& b_;
  std::vector<std::vector<int>> treedist_;
};

}  // namespace

int TreeEditDistance(const Tree& t1, const Tree& t2) {
  PQIDX_CHECK(t1.root() != kNullNodeId && t2.root() != kNullNodeId);
  PostOrderView a = BuildView(t1);
  PostOrderView b = BuildView(t2);
  return ZhangShasha(a, b).Run();
}

TreeEditResult TreeEditDistanceWithMapping(const Tree& t1, const Tree& t2) {
  PQIDX_CHECK(t1.root() != kNullNodeId && t2.root() != kNullNodeId);
  PostOrderView a = BuildView(t1);
  PostOrderView b = BuildView(t2);
  ZhangShasha zs(a, b);
  TreeEditResult result;
  result.distance = zs.Run();
  for (auto [pa, pb] : zs.Backtrace()) {
    result.mapping.emplace_back(a.node_ids[pa], b.node_ids[pb]);
  }
  return result;
}

TreeEditResult RootPreservingEditMapping(const Tree& t1, const Tree& t2) {
  PQIDX_CHECK(t1.root() != kNullNodeId && t2.root() != kNullNodeId);
  PostOrderView a = BuildView(t1);
  PostOrderView b = BuildView(t2);
  ZhangShasha zs(a, b);
  zs.Run();  // fills the tree-distance table the backtrace reads
  TreeEditResult result;
  result.distance = zs.ConstrainedDistance();
  for (auto [pa, pb] : zs.BacktraceConstrained()) {
    result.mapping.emplace_back(a.node_ids[pa], b.node_ids[pb]);
  }
  return result;
}

}  // namespace pqidx
