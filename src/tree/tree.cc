#include "tree/tree.h"

#include <algorithm>

namespace pqidx {

Tree::Tree(std::shared_ptr<LabelDict> dict) : dict_(std::move(dict)) {
  PQIDX_CHECK(dict_ != nullptr);
  nodes_.resize(1);  // slot 0 unused: kNullNodeId
}

Tree Tree::Clone() const {
  Tree copy(dict_);
  copy.nodes_ = nodes_;
  copy.root_ = root_;
  copy.next_id_ = next_id_;
  copy.alive_count_ = alive_count_;
  return copy;
}

void Tree::Reserve(NodeId n) {
  if (static_cast<size_t>(n) >= nodes_.size()) {
    nodes_.resize(static_cast<size_t>(n) + 1);
  }
  if (n >= next_id_) next_id_ = n + 1;
}

NodeId Tree::CreateRoot(LabelId label) {
  PQIDX_CHECK_MSG(root_ == kNullNodeId, "root already exists");
  NodeId id = next_id_++;
  Reserve(id);
  NodeData& node = nodes_[id];
  node.label = label;
  node.parent = kNullNodeId;
  node.sibling_index = 0;
  node.alive = true;
  root_ = id;
  ++alive_count_;
  return id;
}

NodeId Tree::AddChild(NodeId parent, LabelId label) {
  PQIDX_CHECK(Contains(parent));
  NodeId id = next_id_++;
  Reserve(id);
  NodeData& node = nodes_[id];
  node.label = label;
  node.parent = parent;
  node.alive = true;
  NodeData& par = nodes_[parent];
  node.sibling_index = static_cast<int32_t>(par.children.size());
  par.children.push_back(id);
  ++alive_count_;
  return id;
}

Status Tree::ApplyInsert(NodeId n, LabelId label, NodeId v, int k,
                         int count) {
  if (n < 1) return InvalidArgumentError("insert: invalid node id");
  if (!Contains(v)) return InvalidArgumentError("insert: parent not in tree");
  if (static_cast<size_t>(n) < nodes_.size() && nodes_[n].alive) {
    return FailedPreconditionError("insert: node id already in use");
  }
  NodeData& par = nodes_[v];
  int f = static_cast<int>(par.children.size());
  if (k < 0 || count < 0 || k + count > f) {
    return OutOfRangeError("insert: child range out of bounds");
  }
  Reserve(n);
  // Reserve() may reallocate nodes_, so re-fetch the parent reference.
  NodeData& parent_node = nodes_[v];
  NodeData& node = nodes_[n];
  node.label = label;
  node.parent = v;
  node.sibling_index = k;
  node.alive = true;
  node.children.assign(parent_node.children.begin() + k,
                       parent_node.children.begin() + k + count);
  for (int i = 0; i < count; ++i) {
    NodeData& adopted = nodes_[node.children[i]];
    adopted.parent = n;
    adopted.sibling_index = i;
  }
  parent_node.children.erase(parent_node.children.begin() + k,
                             parent_node.children.begin() + k + count);
  parent_node.children.insert(parent_node.children.begin() + k, n);
  for (size_t i = static_cast<size_t>(k) + 1; i < parent_node.children.size();
       ++i) {
    nodes_[parent_node.children[i]].sibling_index = static_cast<int32_t>(i);
  }
  ++alive_count_;
  return Status::Ok();
}

Status Tree::ApplyDelete(NodeId n) {
  if (!Contains(n)) return NotFoundError("delete: node not in tree");
  if (n == root_) return FailedPreconditionError("delete: cannot delete root");
  NodeData& node = nodes_[n];
  NodeData& par = nodes_[node.parent];
  int k = node.sibling_index;
  PQIDX_DCHECK(par.children[k] == n);
  std::vector<NodeId> grandchildren = std::move(node.children);
  node.children.clear();
  for (NodeId c : grandchildren) {
    nodes_[c].parent = node.parent;
  }
  par.children.erase(par.children.begin() + k);
  par.children.insert(par.children.begin() + k, grandchildren.begin(),
                      grandchildren.end());
  for (size_t i = static_cast<size_t>(k); i < par.children.size(); ++i) {
    nodes_[par.children[i]].sibling_index = static_cast<int32_t>(i);
  }
  node.alive = false;
  node.parent = kNullNodeId;
  --alive_count_;
  return Status::Ok();
}

Status Tree::ApplyRename(NodeId n, LabelId label) {
  if (!Contains(n)) return NotFoundError("rename: node not in tree");
  NodeData& node = nodes_[n];
  if (node.label == label) {
    return FailedPreconditionError("rename: label unchanged");
  }
  node.label = label;
  return Status::Ok();
}

NodeId Tree::Ancestor(NodeId n, int k) const {
  PQIDX_DCHECK(Contains(n));
  NodeId cur = n;
  for (int i = 0; i < k && cur != kNullNodeId; ++i) {
    cur = nodes_[cur].parent;
  }
  return cur;
}

void Tree::DescendantsWithin(NodeId n, int d,
                             std::vector<NodeId>* out) const {
  if (d < 0) return;
  PQIDX_DCHECK(Contains(n));
  size_t frontier_begin = out->size();
  out->push_back(n);
  for (int depth = 0; depth < d; ++depth) {
    size_t frontier_end = out->size();
    if (frontier_begin == frontier_end) break;
    for (size_t i = frontier_begin; i < frontier_end; ++i) {
      const NodeData& node = nodes_[(*out)[i]];
      out->insert(out->end(), node.children.begin(), node.children.end());
    }
    frontier_begin = frontier_end;
  }
}

void Tree::CheckConsistency() const {
  int counted = 0;
  for (NodeId n = 1; static_cast<size_t>(n) < nodes_.size(); ++n) {
    const NodeData& node = nodes_[n];
    if (!node.alive) {
      PQIDX_CHECK(node.children.empty());
      continue;
    }
    ++counted;
    if (n == root_) {
      PQIDX_CHECK(node.parent == kNullNodeId);
    } else {
      PQIDX_CHECK(Contains(node.parent));
      const NodeData& par = nodes_[node.parent];
      PQIDX_CHECK(node.sibling_index >= 0 &&
                  static_cast<size_t>(node.sibling_index) <
                      par.children.size());
      PQIDX_CHECK(par.children[node.sibling_index] == n);
    }
    for (size_t i = 0; i < node.children.size(); ++i) {
      NodeId c = node.children[i];
      PQIDX_CHECK(Contains(c));
      PQIDX_CHECK(nodes_[c].parent == n);
      PQIDX_CHECK(nodes_[c].sibling_index == static_cast<int32_t>(i));
    }
  }
  PQIDX_CHECK(counted == alive_count_);
  if (alive_count_ > 0) PQIDX_CHECK(Contains(root_));
}

}  // namespace pqidx
