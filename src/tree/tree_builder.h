// Compact textual tree notation for tests, examples, and debugging.
//
// Grammar:  tree  := label [ '(' tree (',' tree)* ')' ]
//           label := [^(),\s]+  (surrounding whitespace ignored)
//
// Example: "a(b,c(e,f),d)" is the tree T0 of Figure 2 in the paper.

#ifndef PQIDX_TREE_TREE_BUILDER_H_
#define PQIDX_TREE_TREE_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "tree/tree.h"

namespace pqidx {

// Parses `notation` into a tree over `dict` (a fresh dictionary is created
// when null). Node ids are assigned in pre-order starting at 1.
StatusOr<Tree> ParseTreeNotation(std::string_view notation,
                                 std::shared_ptr<LabelDict> dict = nullptr);

// Renders `tree` in the notation accepted by ParseTreeNotation.
std::string ToNotation(const Tree& tree);

// Renders `tree` with node ids, e.g. "a#1(b#2,c#3)". Useful in test
// failure messages.
std::string ToNotationWithIds(const Tree& tree);

// True iff the trees are isomorphic as ordered labeled trees: same shape
// and the same label *strings* position by position (node ids and
// dictionaries may differ). Robust against labels containing notation
// metacharacters, unlike comparing ToNotation() strings.
bool TreesIsomorphic(const Tree& a, const Tree& b);

}  // namespace pqidx

#endif  // PQIDX_TREE_TREE_BUILDER_H_
