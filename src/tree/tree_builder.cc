#include "tree/tree_builder.h"

#include <cctype>

namespace pqidx {
namespace {

// Recursive-descent parser over the notation grammar.
class NotationParser {
 public:
  NotationParser(std::string_view input, Tree* tree)
      : input_(input), tree_(tree) {}

  Status Parse() {
    SkipSpace();
    std::string label;
    PQIDX_RETURN_IF_ERROR(ReadLabel(&label));
    NodeId root = tree_->CreateRoot(label);
    PQIDX_RETURN_IF_ERROR(ParseChildren(root));
    SkipSpace();
    if (pos_ != input_.size()) {
      return InvalidArgumentError("trailing characters in tree notation");
    }
    return Status::Ok();
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Status ReadLabel(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '(' || c == ')' || c == ',' ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      ++pos_;
    }
    if (pos_ == start) return InvalidArgumentError("expected a label");
    out->assign(input_.substr(start, pos_ - start));
    return Status::Ok();
  }

  // Parses an optional parenthesized child list under `parent`.
  Status ParseChildren(NodeId parent) {
    SkipSpace();
    if (pos_ >= input_.size() || input_[pos_] != '(') return Status::Ok();
    ++pos_;  // consume '('
    for (;;) {
      std::string label;
      PQIDX_RETURN_IF_ERROR(ReadLabel(&label));
      NodeId child = tree_->AddChild(parent, label);
      PQIDX_RETURN_IF_ERROR(ParseChildren(child));
      SkipSpace();
      if (pos_ >= input_.size()) {
        return InvalidArgumentError("unterminated child list");
      }
      if (input_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (input_[pos_] == ')') {
        ++pos_;
        return Status::Ok();
      }
      return InvalidArgumentError("expected ',' or ')' in child list");
    }
  }

  std::string_view input_;
  Tree* tree_;
  size_t pos_ = 0;
};

void RenderNode(const Tree& tree, NodeId n, bool with_ids, std::string* out) {
  out->append(tree.LabelString(n));
  if (with_ids) {
    out->push_back('#');
    out->append(std::to_string(n));
  }
  auto kids = tree.children(n);
  if (kids.empty()) return;
  out->push_back('(');
  for (size_t i = 0; i < kids.size(); ++i) {
    if (i > 0) out->push_back(',');
    RenderNode(tree, kids[i], with_ids, out);
  }
  out->push_back(')');
}

}  // namespace

StatusOr<Tree> ParseTreeNotation(std::string_view notation,
                                 std::shared_ptr<LabelDict> dict) {
  if (dict == nullptr) dict = std::make_shared<LabelDict>();
  Tree tree(std::move(dict));
  NotationParser parser(notation, &tree);
  PQIDX_RETURN_IF_ERROR(parser.Parse());
  return tree;
}

std::string ToNotation(const Tree& tree) {
  std::string out;
  if (tree.root() != kNullNodeId) {
    RenderNode(tree, tree.root(), /*with_ids=*/false, &out);
  }
  return out;
}

bool TreesIsomorphic(const Tree& a, const Tree& b) {
  if (a.size() != b.size()) return false;
  if (a.root() == kNullNodeId) return b.root() == kNullNodeId;
  if (b.root() == kNullNodeId) return false;
  std::vector<std::pair<NodeId, NodeId>> stack{{a.root(), b.root()}};
  while (!stack.empty()) {
    auto [na, nb] = stack.back();
    stack.pop_back();
    if (a.LabelString(na) != b.LabelString(nb)) return false;
    auto ka = a.children(na);
    auto kb = b.children(nb);
    if (ka.size() != kb.size()) return false;
    for (size_t i = 0; i < ka.size(); ++i) {
      stack.emplace_back(ka[i], kb[i]);
    }
  }
  return true;
}

std::string ToNotationWithIds(const Tree& tree) {
  std::string out;
  if (tree.root() != kNullNodeId) {
    RenderNode(tree, tree.root(), /*with_ids=*/true, &out);
  }
  return out;
}

}  // namespace pqidx
