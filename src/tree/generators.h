// Workload generators.
//
// The paper evaluates on (a) synthetic XML produced by the XMark benchmark
// generator `xmlgen` and (b) the real DBLP bibliography (211 MB, ~11M
// nodes). Neither resource ships with this repository, so the generators
// here synthesize structurally equivalent documents (see DESIGN.md,
// "Substitutions"):
//
//  * GenerateXmarkLike: an auction-site document following the XMark schema
//    outline (site / regions / people / open_auctions / closed_auctions /
//    catgraph / categories), moderately deep with mixed fanout.
//  * GenerateDblpLike: a bibliography with a huge-fanout root over many
//    small publication records -- the structural signature of DBLP that the
//    paper's scaling experiments depend on.
//  * GenerateRandomTree: uniform random tree shapes with a configurable
//    label alphabet, for property tests.

#ifndef PQIDX_TREE_GENERATORS_H_
#define PQIDX_TREE_GENERATORS_H_

#include <memory>

#include "common/random.h"
#include "tree/tree.h"

namespace pqidx {

struct RandomTreeOptions {
  int num_nodes = 50;
  // Labels are drawn Zipfian from an alphabet of this size.
  int alphabet_size = 8;
  double zipf_exponent = 1.1;
  // Maximum fanout per node; 0 means unbounded (uniform attachment).
  int max_fanout = 0;
};

// Generates a uniformly attached random tree with `options.num_nodes` nodes.
// Node ids are 1..num_nodes in creation order.
Tree GenerateRandomTree(std::shared_ptr<LabelDict> dict, Rng* rng,
                        const RandomTreeOptions& options);

// Generates an XMark-like auction document with approximately
// `approx_nodes` nodes (always at least the fixed schema skeleton).
Tree GenerateXmarkLike(std::shared_ptr<LabelDict> dict, Rng* rng,
                       int approx_nodes);

// Generates a DBLP-like bibliography with `num_records` publication
// records under a single root (roughly 8-14 nodes per record).
Tree GenerateDblpLike(std::shared_ptr<LabelDict> dict, Rng* rng,
                      int num_records);

}  // namespace pqidx

#endif  // PQIDX_TREE_GENERATORS_H_
