#include "tree/stats.h"

#include <algorithm>
#include <unordered_map>

namespace pqidx {

TreeStats ComputeTreeStats(const Tree& tree, int top_k) {
  TreeStats stats;
  if (tree.root() == kNullNodeId) return stats;

  std::unordered_map<LabelId, int> label_counts;
  // Depth per node computed iteratively along the pre-order walk.
  std::unordered_map<NodeId, int> depth;
  int64_t depth_sum = 0;
  int64_t fanout_sum = 0;

  tree.PreOrder([&](NodeId n) {
    ++stats.nodes;
    int d = n == tree.root() ? 0 : depth.at(tree.parent(n)) + 1;
    depth.emplace(n, d);
    stats.depth = std::max(stats.depth, d);
    depth_sum += d;
    ++stats.depth_histogram[d];

    int f = tree.fanout(n);
    ++stats.fanout_histogram[f];
    stats.max_fanout = std::max(stats.max_fanout, f);
    if (f == 0) {
      ++stats.leaves;
    } else {
      ++stats.internal;
      fanout_sum += f;
    }
    ++label_counts[tree.label(n)];
  });

  stats.avg_depth = static_cast<double>(depth_sum) / stats.nodes;
  stats.avg_fanout =
      stats.internal > 0
          ? static_cast<double>(fanout_sum) / stats.internal
          : 0.0;
  stats.distinct_labels = static_cast<int>(label_counts.size());

  std::vector<std::pair<std::string, int>> labels;
  labels.reserve(label_counts.size());
  for (const auto& [label, count] : label_counts) {
    labels.emplace_back(tree.dict().LabelString(label), count);
  }
  std::sort(labels.begin(), labels.end(),
            [](const auto& a, const auto& b) {
              return a.second > b.second ||
                     (a.second == b.second && a.first < b.first);
            });
  if (static_cast<int>(labels.size()) > top_k) labels.resize(top_k);
  stats.top_labels = std::move(labels);
  return stats;
}

int64_t ProfileSizeFromStats(const TreeStats& stats, const PqShape& shape) {
  int64_t total = 0;
  for (const auto& [fanout, count] : stats.fanout_histogram) {
    int64_t per_node = fanout == 0 ? 1 : fanout + shape.q - 1;
    total += per_node * count;
  }
  return total;
}

std::string TreeStats::ToString() const {
  std::string out;
  out += "nodes: " + std::to_string(nodes) + " (" +
         std::to_string(leaves) + " leaves, " + std::to_string(internal) +
         " internal)\n";
  out += "depth: max " + std::to_string(depth) + ", avg " +
         std::to_string(avg_depth) + "\n";
  out += "fanout: max " + std::to_string(max_fanout) + ", avg " +
         std::to_string(avg_fanout) + " (internal nodes)\n";
  out += "distinct labels: " + std::to_string(distinct_labels) + "\n";
  out += "top labels:";
  for (const auto& [label, count] : top_labels) {
    out += " " + label + "(" + std::to_string(count) + ")";
  }
  out += "\n";
  return out;
}

}  // namespace pqidx
