#include "tree/generators.h"

#include <string>
#include <vector>

namespace pqidx {
namespace {

// Short word pool for pseudo-text content (author names, titles, ...).
constexpr const char* kWords[] = {
    "data",    "tree",   "index",  "query",   "xml",     "join",
    "stream",  "graph",  "cache",  "storage", "pattern", "update",
    "edit",    "gram",   "lookup", "distance", "system", "model",
    "search",  "log",
};
constexpr int kNumWords = sizeof(kWords) / sizeof(kWords[0]);

std::string RandomWord(Rng* rng) {
  return kWords[rng->NextBounded(kNumWords)];
}

std::string RandomName(Rng* rng) {
  return RandomWord(rng) + "_" + std::to_string(rng->NextBounded(5000));
}

}  // namespace

Tree GenerateRandomTree(std::shared_ptr<LabelDict> dict, Rng* rng,
                        const RandomTreeOptions& options) {
  PQIDX_CHECK(options.num_nodes >= 1);
  if (dict == nullptr) dict = std::make_shared<LabelDict>();
  // Pre-intern the alphabet: L0, L1, ...
  std::vector<LabelId> alphabet;
  alphabet.reserve(options.alphabet_size);
  for (int i = 0; i < options.alphabet_size; ++i) {
    alphabet.push_back(dict->Intern("L" + std::to_string(i)));
  }
  auto pick_label = [&]() {
    return alphabet[rng->Zipf(options.alphabet_size, options.zipf_exponent)];
  };

  Tree tree(dict);
  std::vector<NodeId> attachable{tree.CreateRoot(pick_label())};
  std::vector<int> fanouts{0};
  while (tree.size() < options.num_nodes) {
    size_t slot = rng->NextBounded(attachable.size());
    NodeId parent = attachable[slot];
    NodeId child = tree.AddChild(parent, pick_label());
    ++fanouts[slot];
    if (options.max_fanout > 0 && fanouts[slot] >= options.max_fanout) {
      attachable[slot] = attachable.back();
      fanouts[slot] = fanouts.back();
      attachable.pop_back();
      fanouts.pop_back();
    }
    attachable.push_back(child);
    fanouts.push_back(0);
  }
  return tree;
}

Tree GenerateXmarkLike(std::shared_ptr<LabelDict> dict, Rng* rng,
                       int approx_nodes) {
  if (dict == nullptr) dict = std::make_shared<LabelDict>();
  Tree tree(dict);
  NodeId site = tree.CreateRoot("site");

  // The XMark document has six top-level sections; items/people/auctions
  // carry the bulk of the nodes. Budget the remaining nodes over the
  // repeating record types in roughly XMark's proportions.
  NodeId regions = tree.AddChild(site, "regions");
  std::vector<NodeId> region_nodes;
  for (const char* r :
       {"africa", "asia", "australia", "europe", "namerica", "samerica"}) {
    region_nodes.push_back(tree.AddChild(regions, r));
  }
  NodeId categories = tree.AddChild(site, "categories");
  NodeId catgraph = tree.AddChild(site, "catgraph");
  NodeId people = tree.AddChild(site, "people");
  NodeId open_auctions = tree.AddChild(site, "open_auctions");
  NodeId closed_auctions = tree.AddChild(site, "closed_auctions");

  auto add_item = [&](NodeId region) {
    NodeId item = tree.AddChild(region, "item");
    tree.AddChild(item, "location");
    tree.AddChild(item, "quantity");
    tree.AddChild(item, "name");
    tree.AddChild(item, "payment");
    NodeId desc = tree.AddChild(item, "description");
    NodeId text = tree.AddChild(desc, "text");
    int words = 1 + static_cast<int>(rng->NextBounded(4));
    for (int w = 0; w < words; ++w) tree.AddChild(text, RandomWord(rng));
    tree.AddChild(item, "shipping");
    NodeId mailbox = tree.AddChild(item, "mailbox");
    if (rng->Bernoulli(0.4)) {
      NodeId mail = tree.AddChild(mailbox, "mail");
      tree.AddChild(mail, "from");
      tree.AddChild(mail, "to");
      tree.AddChild(mail, "date");
    }
  };
  auto add_person = [&]() {
    NodeId person = tree.AddChild(people, "person");
    tree.AddChild(person, RandomName(rng));
    tree.AddChild(person, "emailaddress");
    if (rng->Bernoulli(0.5)) tree.AddChild(person, "phone");
    if (rng->Bernoulli(0.3)) {
      NodeId address = tree.AddChild(person, "address");
      tree.AddChild(address, "street");
      tree.AddChild(address, "city");
      tree.AddChild(address, "country");
      tree.AddChild(address, "zipcode");
    }
    if (rng->Bernoulli(0.4)) {
      NodeId watches = tree.AddChild(person, "watches");
      int n = 1 + static_cast<int>(rng->NextBounded(3));
      for (int w = 0; w < n; ++w) tree.AddChild(watches, "watch");
    }
  };
  auto add_open_auction = [&]() {
    NodeId auction = tree.AddChild(open_auctions, "open_auction");
    tree.AddChild(auction, "initial");
    tree.AddChild(auction, "reserve");
    int bids = 1 + static_cast<int>(rng->NextBounded(5));
    for (int b = 0; b < bids; ++b) {
      NodeId bid = tree.AddChild(auction, "bidder");
      tree.AddChild(bid, "date");
      tree.AddChild(bid, "increase");
      tree.AddChild(bid, "personref");
    }
    tree.AddChild(auction, "itemref");
    tree.AddChild(auction, "seller");
    tree.AddChild(auction, "quantity");
    tree.AddChild(auction, "type");
    tree.AddChild(auction, "interval");
  };
  auto add_closed_auction = [&]() {
    NodeId auction = tree.AddChild(closed_auctions, "closed_auction");
    tree.AddChild(auction, "seller");
    tree.AddChild(auction, "buyer");
    tree.AddChild(auction, "itemref");
    tree.AddChild(auction, "price");
    tree.AddChild(auction, "date");
    tree.AddChild(auction, "quantity");
    tree.AddChild(auction, "type");
  };
  auto add_category = [&]() {
    NodeId cat = tree.AddChild(categories, "category");
    tree.AddChild(cat, "name");
    NodeId desc = tree.AddChild(cat, "description");
    tree.AddChild(desc, "text");
    NodeId edge = tree.AddChild(catgraph, "edge");
    tree.AddChild(edge, "from");
    tree.AddChild(edge, "to");
  };

  while (tree.size() < approx_nodes) {
    // Proportions loosely follow the XMark generator: items dominate,
    // followed by people and auctions.
    switch (rng->WeightedPick({4.0, 2.5, 2.0, 1.0, 0.5})) {
      case 0:
        add_item(region_nodes[rng->NextBounded(region_nodes.size())]);
        break;
      case 1:
        add_person();
        break;
      case 2:
        add_open_auction();
        break;
      case 3:
        add_closed_auction();
        break;
      default:
        add_category();
        break;
    }
  }
  return tree;
}

Tree GenerateDblpLike(std::shared_ptr<LabelDict> dict, Rng* rng,
                      int num_records) {
  if (dict == nullptr) dict = std::make_shared<LabelDict>();
  Tree tree(dict);
  NodeId dblp = tree.CreateRoot("dblp");
  for (int i = 0; i < num_records; ++i) {
    const char* kind;
    switch (rng->WeightedPick({5.0, 4.0, 1.0, 0.5, 0.3})) {
      case 0:
        kind = "article";
        break;
      case 1:
        kind = "inproceedings";
        break;
      case 2:
        kind = "book";
        break;
      case 3:
        kind = "phdthesis";
        break;
      default:
        kind = "www";
        break;
    }
    NodeId rec = tree.AddChild(dblp, kind);
    int authors = 1 + static_cast<int>(rng->NextBounded(4));
    for (int a = 0; a < authors; ++a) {
      NodeId author = tree.AddChild(rec, "author");
      tree.AddChild(author, RandomName(rng));
    }
    NodeId title = tree.AddChild(rec, "title");
    tree.AddChild(title, RandomWord(rng) + " " + RandomWord(rng));
    NodeId year = tree.AddChild(rec, "year");
    tree.AddChild(year, std::to_string(1970 + rng->NextBounded(56)));
    if (rng->Bernoulli(0.7)) {
      NodeId venue = tree.AddChild(
          rec, std::string(kind) == "article" ? "journal" : "booktitle");
      tree.AddChild(venue, RandomWord(rng));
    }
    if (rng->Bernoulli(0.5)) tree.AddChild(rec, "pages");
    if (rng->Bernoulli(0.4)) tree.AddChild(rec, "ee");
    if (rng->Bernoulli(0.3)) tree.AddChild(rec, "url");
  }
  return tree;
}

}  // namespace pqidx
