#include "tree/label_dict.h"

namespace pqidx {

LabelDict::LabelDict() {
  strings_.push_back("*");
  hashes_.push_back(kNullLabelHash);
}

LabelId LabelDict::Intern(std::string_view label) {
  auto it = by_string_.find(std::string(label));
  if (it != by_string_.end()) return it->second;
  LabelId id = static_cast<LabelId>(strings_.size());
  strings_.emplace_back(label);
  hashes_.push_back(KarpRabinFingerprint(label));
  by_string_.emplace(std::string(label), id);
  return id;
}

LabelId LabelDict::Find(std::string_view label) const {
  auto it = by_string_.find(std::string(label));
  if (it == by_string_.end()) return kNullLabelId;
  return it->second;
}

const std::string& LabelDict::LabelString(LabelId id) const {
  PQIDX_CHECK(id >= 0 && static_cast<size_t>(id) < strings_.size());
  return strings_[id];
}

void LabelDict::Serialize(ByteWriter* writer) const {
  // Slot 0 (the null label) is implicit.
  writer->PutVarint(strings_.size() - 1);
  for (size_t i = 1; i < strings_.size(); ++i) {
    writer->PutString(strings_[i]);
  }
}

StatusOr<LabelDict> LabelDict::Deserialize(ByteReader* reader) {
  uint64_t count;
  PQIDX_RETURN_IF_ERROR(reader->GetVarint(&count));
  LabelDict dict;
  std::string label;
  for (uint64_t i = 0; i < count; ++i) {
    PQIDX_RETURN_IF_ERROR(reader->GetString(&label));
    LabelId id = dict.Intern(label);
    if (static_cast<uint64_t>(id) != i + 1) {
      return DataLossError("duplicate label in serialized dictionary");
    }
  }
  return dict;
}

}  // namespace pqidx
