// Structural statistics of a tree: the workload characteristics (size,
// depth, fanout, label distribution) that determine pq-gram profile size
// and index behaviour. Used by the CLI, the benchmarks' workload
// descriptions, and tests that validate the generators' shapes.

#ifndef PQIDX_TREE_STATS_H_
#define PQIDX_TREE_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "core/pqgram.h"
#include "tree/tree.h"

namespace pqidx {

struct TreeStats {
  int nodes = 0;
  int leaves = 0;
  int internal = 0;
  int depth = 0;           // root = depth 0; max over nodes
  int max_fanout = 0;
  double avg_fanout = 0;   // over internal nodes
  double avg_depth = 0;    // over all nodes
  int distinct_labels = 0;

  // fanout -> number of nodes with that fanout (0 = leaves).
  std::map<int, int> fanout_histogram;
  // depth -> number of nodes at that depth.
  std::map<int, int> depth_histogram;
  // The most frequent labels, descending by count (ties by label).
  std::vector<std::pair<std::string, int>> top_labels;

  // Human-readable multi-line rendering.
  std::string ToString() const;
};

// Computes the statistics of `tree` in one pass. `top_k` bounds the
// top_labels list.
TreeStats ComputeTreeStats(const Tree& tree, int top_k = 10);

// Number of pq-grams per (p,q) shape derived from the fanout histogram
// alone (equals ProfileSize without touching the tree again).
int64_t ProfileSizeFromStats(const TreeStats& stats, const PqShape& shape);

}  // namespace pqidx

#endif  // PQIDX_TREE_STATS_H_
