// Ordered labeled tree: the hierarchical-data substrate of the paper.
//
// A node is an (identifier, label) pair (paper Section 3.1). Identifiers
// are externally meaningful: edit logs reference nodes by id, and ids stay
// stable across edit operations. Siblings are ordered; every node knows its
// parent and its position among its siblings, so the navigation primitives
// used by the delta function (parent, k-th child, sibling position, fanout,
// descendants within distance d) are all O(1) or output-sensitive.
//
// Structural mutation happens exclusively through the three standard tree
// edit operations of Zhang & Shasha [20] (ApplyInsert / ApplyDelete /
// ApplyRename), mirroring the paper's INS / DEL / REN semantics, plus
// AddChild for initial construction. Positions are 0-based in this API; the
// paper uses 1-based positions.

#ifndef PQIDX_TREE_TREE_H_
#define PQIDX_TREE_TREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/fingerprint.h"
#include "common/status.h"
#include "tree/label_dict.h"

namespace pqidx {

// Node identifier, unique and stable within a tree. kNullNodeId denotes
// "no node" (the null node of extended trees); real ids are >= 1.
using NodeId = int32_t;
inline constexpr NodeId kNullNodeId = 0;

class Tree {
 public:
  // Creates an empty tree whose labels live in `dict` (shared with the
  // other trees of a forest).
  explicit Tree(std::shared_ptr<LabelDict> dict);

  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;
  Tree(Tree&&) = default;
  Tree& operator=(Tree&&) = default;

  // Deep copy sharing the same label dictionary.
  Tree Clone() const;

  // --- Construction -------------------------------------------------------

  // Creates the root node. Must be called exactly once, before any other
  // construction. Returns the root id.
  NodeId CreateRoot(LabelId label);
  NodeId CreateRoot(std::string_view label) {
    return CreateRoot(dict_->Intern(label));
  }

  // Appends a new node with `label` as the last child of `parent` and
  // returns its id. `parent` must be alive.
  NodeId AddChild(NodeId parent, LabelId label);
  NodeId AddChild(NodeId parent, std::string_view label) {
    return AddChild(parent, dict_->Intern(label));
  }

  // Returns an id that is not and has never been used in this tree.
  NodeId AllocateId() { return next_id_++; }

  // --- Edit operations (paper Section 3.1) --------------------------------

  // INS(n, v, k, m): inserts node `n` with `label` as the child of `v` at
  // 0-based position `k`, adopting the `count` existing children of `v` at
  // positions [k, k+count) as the children of `n` (order preserved).
  // Fails if `n` is in use, `v` is not alive, or the range is invalid.
  Status ApplyInsert(NodeId n, LabelId label, NodeId v, int k, int count);

  // DEL(n): removes `n`, splicing its children into its parent at n's
  // position (order preserved). Fails on the root or unknown nodes.
  Status ApplyDelete(NodeId n);

  // REN(n, label): replaces n's label. Fails if the label is unchanged
  // (the paper requires l != l') or `n` is not alive.
  Status ApplyRename(NodeId n, LabelId label);

  // --- Navigation ----------------------------------------------------------

  NodeId root() const { return root_; }
  bool Contains(NodeId n) const {
    // Ids from AllocateId() may exceed the arena until they are inserted.
    return n >= 1 && static_cast<size_t>(n) < nodes_.size() &&
           nodes_[n].alive;
  }

  LabelId label(NodeId n) const { return NodeRef(n).label; }
  LabelHash LabelHashOf(NodeId n) const { return dict_->Hash(label(n)); }
  const std::string& LabelString(NodeId n) const {
    return dict_->LabelString(label(n));
  }

  // Parent of `n`, or kNullNodeId for the root.
  NodeId parent(NodeId n) const { return NodeRef(n).parent; }

  // Children of `n`, in sibling order.
  std::span<const NodeId> children(NodeId n) const {
    const NodeData& node = NodeRef(n);
    return {node.children.data(), node.children.size()};
  }

  int fanout(NodeId n) const {
    return static_cast<int>(NodeRef(n).children.size());
  }
  bool IsLeaf(NodeId n) const { return NodeRef(n).children.empty(); }

  // i-th child (0-based). Requires 0 <= i < fanout(n).
  NodeId child(NodeId n, int i) const {
    const NodeData& node = NodeRef(n);
    PQIDX_DCHECK(i >= 0 && static_cast<size_t>(i) < node.children.size());
    return node.children[i];
  }

  // 0-based position of `n` among its siblings (0 for the root). O(1).
  int SiblingIndex(NodeId n) const { return NodeRef(n).sibling_index; }

  // Ancestor of `n` at distance `k` (k = 0 returns n); kNullNodeId if the
  // path leaves the tree above the root.
  NodeId Ancestor(NodeId n, int k) const;

  // Appends `n` and all its descendants within distance `d` to `*out`, in
  // BFS order (n first). d = 0 appends just n; negative d appends nothing.
  void DescendantsWithin(NodeId n, int d, std::vector<NodeId>* out) const;

  // Number of alive nodes.
  int size() const { return alive_count_; }
  // Upper bound (exclusive) on node ids ever used.
  NodeId id_bound() const { return next_id_; }

  const LabelDict& dict() const { return *dict_; }
  LabelDict* mutable_dict() { return dict_.get(); }
  const std::shared_ptr<LabelDict>& dict_ptr() const { return dict_; }

  // Pre-order (document order) traversal; `visit(id)` is called for every
  // alive node starting at the root. No-op on an empty tree.
  template <typename Visitor>
  void PreOrder(Visitor&& visit) const {
    if (root_ == kNullNodeId) return;
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
      NodeId n = stack.back();
      stack.pop_back();
      visit(n);
      const NodeData& node = NodeRef(n);
      for (auto it = node.children.rbegin(); it != node.children.rend();
           ++it) {
        stack.push_back(*it);
      }
    }
  }

  // Verifies all internal invariants (parent/child symmetry, sibling
  // indexes, alive counts). Aborts on violation. Intended for tests.
  void CheckConsistency() const;

 private:
  struct NodeData {
    LabelId label = kNullLabelId;
    NodeId parent = kNullNodeId;
    int32_t sibling_index = 0;
    bool alive = false;
    std::vector<NodeId> children;
  };

  const NodeData& NodeRef(NodeId n) const {
    PQIDX_DCHECK(Contains(n));
    return nodes_[n];
  }
  NodeData& MutableNodeRef(NodeId n) {
    PQIDX_DCHECK(Contains(n));
    return nodes_[n];
  }

  // Ensures the arena covers id `n`.
  void Reserve(NodeId n);

  std::shared_ptr<LabelDict> dict_;
  std::vector<NodeData> nodes_;  // indexed by NodeId; slot 0 unused
  NodeId root_ = kNullNodeId;
  NodeId next_id_ = 1;
  int alive_count_ = 0;
};

}  // namespace pqidx

#endif  // PQIDX_TREE_TREE_H_
