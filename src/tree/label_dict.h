// Label dictionary: interns label strings into dense LabelId values and
// caches their Karp-Rabin fingerprints.
//
// Trees store LabelId (4 bytes) per node instead of strings; the index and
// the delta tables work with LabelHash fingerprints. A dictionary is shared
// by all trees of a forest so that equal labels in different documents get
// equal ids and hashes.

#ifndef PQIDX_TREE_LABEL_DICT_H_
#define PQIDX_TREE_LABEL_DICT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/fingerprint.h"
#include "common/serde.h"
#include "common/status.h"

namespace pqidx {

// Dense identifier of an interned label. kNullLabelId denotes the null
// label `*` of extended trees; real labels have ids >= 1.
using LabelId = int32_t;
inline constexpr LabelId kNullLabelId = 0;

class LabelDict {
 public:
  // Constructs a dictionary containing only the null label.
  LabelDict();

  LabelDict(const LabelDict&) = delete;
  LabelDict& operator=(const LabelDict&) = delete;
  LabelDict(LabelDict&&) = default;
  LabelDict& operator=(LabelDict&&) = default;

  // Returns the id of `label`, interning it on first use.
  LabelId Intern(std::string_view label);

  // Returns the id of `label` or kNullLabelId if it was never interned.
  // (The null label itself is represented by the empty dictionary slot and
  // cannot be interned as a string.)
  LabelId Find(std::string_view label) const;

  // Returns the label string for `id`. `id` must be valid; the null label
  // renders as "*".
  const std::string& LabelString(LabelId id) const;

  // Returns the Karp-Rabin fingerprint of `id`'s label. O(1) (cached).
  LabelHash Hash(LabelId id) const {
    PQIDX_DCHECK(id >= 0 && static_cast<size_t>(id) < hashes_.size());
    return hashes_[id];
  }

  // Number of labels including the null label.
  int size() const { return static_cast<int>(strings_.size()); }

  // Serialization, used by the tree store.
  void Serialize(ByteWriter* writer) const;
  static StatusOr<LabelDict> Deserialize(ByteReader* reader);

 private:
  std::vector<std::string> strings_;   // indexed by LabelId
  std::vector<LabelHash> hashes_;      // indexed by LabelId
  std::unordered_map<std::string, LabelId> by_string_;
};

}  // namespace pqidx

#endif  // PQIDX_TREE_LABEL_DICT_H_
