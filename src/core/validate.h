// Debug invariant validators: cross-check an incrementally maintained
// index against a from-scratch rebuild of the same tree (the paper's
// headline identity In = I0 \ lambda(Delta-) u+ lambda(Delta+), Theorems
// 1-2), plus the internal bag invariants every PqGramIndex must satisfy.
//
// Validators return Status instead of aborting so tests can assert on
// them and fuzz/stress harnesses can call them on arbitrary states; the
// failure message carries a bounded diff of the first mismatching
// fingerprints for diagnosis. These checks are O(tree) per call --
// intended for tests and debug sweeps, not production hot paths.

#ifndef PQIDX_CORE_VALIDATE_H_
#define PQIDX_CORE_VALIDATE_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "tree/tree.h"

namespace pqidx {

// Internal bag invariants: every stored count is positive and size()
// equals the sum of the counts.
Status ValidatePqGramIndex(const PqGramIndex& index);

// Full cross-check: `index` must equal BuildIndex(tree, index.shape())
// as a bag. This is the Theorem 1/2 oracle the incremental-maintenance
// tests run after every UpdateIndex.
Status ValidateIndexAgainstTree(const PqGramIndex& index, const Tree& tree);

// Per-tree shape agreement plus internal invariants of every bag.
Status ValidateForestIndex(const ForestIndex& forest);

// The forest must index exactly `trees` (same ids), and each per-tree
// bag must match a rebuild of its tree.
Status ValidateForestAgainstTrees(
    const ForestIndex& forest,
    const std::vector<std::pair<TreeId, const Tree*>>& trees);

}  // namespace pqidx

#endif  // PQIDX_CORE_VALIDATE_H_
