#include "core/profile.h"

#include <algorithm>

namespace pqidx {

std::vector<PqGram> ComputeProfile(const Tree& tree, const PqShape& shape) {
  std::vector<PqGram> out;
  ForEachPqGram(tree, shape, [&](const PqGramView& view) {
    PqGram gram;
    gram.ids.assign(view.ids, view.ids + shape.tuple_size());
    gram.labels.assign(view.labels, view.labels + shape.tuple_size());
    out.push_back(std::move(gram));
  });
  return out;
}

std::set<PqGram> ComputeProfileSet(const Tree& tree, const PqShape& shape) {
  std::set<PqGram> out;
  ForEachPqGram(tree, shape, [&](const PqGramView& view) {
    PqGram gram;
    gram.ids.assign(view.ids, view.ids + shape.tuple_size());
    gram.labels.assign(view.labels, view.labels + shape.tuple_size());
    bool inserted = out.insert(std::move(gram)).second;
    PQIDX_CHECK_MSG(inserted, "profile enumerated a duplicate pq-gram");
  });
  return out;
}

std::vector<PqGram> ComputeProfileBruteForce(const Tree& tree,
                                             const PqShape& shape) {
  PQIDX_CHECK(shape.Valid());
  std::vector<PqGram> out;
  if (tree.root() == kNullNodeId) return out;
  const int p = shape.p;
  const int q = shape.q;

  std::vector<NodeId> all_nodes;
  tree.PreOrder([&](NodeId n) { all_nodes.push_back(n); });

  for (NodeId anchor : all_nodes) {
    // Extended ancestor chain: p entries ending at the anchor.
    std::vector<NodeId> chain;
    for (NodeId cur = anchor; cur != kNullNodeId; cur = tree.parent(cur)) {
      chain.push_back(cur);
    }
    std::reverse(chain.begin(), chain.end());
    std::vector<NodeId> ppart(static_cast<size_t>(p), kNullNodeId);
    for (int j = 0; j < p; ++j) {
      int idx = static_cast<int>(chain.size()) - p + j;
      if (idx >= 0) ppart[j] = chain[idx];
    }
    // Extended child sequence (Definition 1): q-1 nulls on each side of a
    // non-leaf's children; q nulls under a leaf.
    std::vector<NodeId> extended;
    if (tree.IsLeaf(anchor)) {
      extended.assign(static_cast<size_t>(q), kNullNodeId);
    } else {
      extended.assign(static_cast<size_t>(q) - 1, kNullNodeId);
      for (NodeId c : tree.children(anchor)) extended.push_back(c);
      extended.insert(extended.end(), static_cast<size_t>(q) - 1,
                      kNullNodeId);
    }
    for (size_t start = 0; start + q <= extended.size(); ++start) {
      PqGram gram;
      gram.ids = ppart;
      gram.ids.insert(gram.ids.end(), extended.begin() + start,
                      extended.begin() + start + q);
      gram.labels.reserve(gram.ids.size());
      for (NodeId id : gram.ids) {
        gram.labels.push_back(id == kNullNodeId ? kNullLabelHash
                                                : tree.LabelHashOf(id));
      }
      out.push_back(std::move(gram));
    }
  }
  return out;
}

int64_t ProfileSize(const Tree& tree, const PqShape& shape) {
  int64_t total = 0;
  tree.PreOrder([&](NodeId n) {
    int f = tree.fanout(n);
    total += f == 0 ? 1 : f + shape.q - 1;
  });
  return total;
}

}  // namespace pqidx
