#include "core/lookup_engine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <iterator>
#include <limits>
#include <utility>

#include "common/metrics.h"
#include "core/simd_intersect.h"

namespace pqidx {
namespace {

// The SIMD kernels read the arena as interleaved int32 pairs.
static_assert(sizeof(PqGramFingerprint) == sizeof(uint64_t),
              "galloping search assumes 64-bit fingerprints");

// Shard uids are minted here and never reused, so a QueryCache entry
// keyed by a uid can only ever match the exact frozen arena it was
// computed from (no ABA across snapshot epochs).
std::atomic<uint64_t> g_next_shard_uid{1};

// The pq-gram distance formula, exactly as PqGramDistance computes it:
// lookup results must be bit-identical to the scanning baseline, so the
// engine never deviates from this double arithmetic.
inline double BagDistance(int64_t shared, int64_t union_size) {
  return union_size == 0
             ? 0.0
             : 1.0 - 2.0 * static_cast<double>(shared) /
                         static_cast<double>(union_size);
}

// Smallest integer overlap for which BagDistance(overlap, u) <= tau,
// for tau < 1 and u > 0. Derived from shared >= (1-tau)*u/2 but settled
// with the actual double predicate: BagDistance is monotone nonincreasing
// in `shared`, so walking up from slightly below the algebraic bound
// finds the exact floating-point threshold and the count filter can never
// disagree with the final test.
int64_t MinQualifyingOverlap(double tau, int64_t u) {
  // Distances are never negative, so no overlap qualifies for tau < 0
  // (or NaN). Without this guard a hostile tau would overflow the cast
  // below (-1e308 -> need > int64) or spin the walk forever (-inf).
  if (!(tau >= 0.0)) return std::numeric_limits<int64_t>::max();
  // From here tau >= 0, so need <= u/2 and the cast cannot overflow.
  double need = (1.0 - tau) * 0.5 * static_cast<double>(u);
  int64_t shared = static_cast<int64_t>(need) - 2;
  if (shared < 0) shared = 0;
  while (BagDistance(shared, u) > tau) ++shared;
  return shared;
}

// "a ranks before b": the comparator of every lookup result ordering.
inline bool RanksBefore(const LookupResult& a, const LookupResult& b) {
  return a.distance < b.distance ||
         (a.distance == b.distance && a.tree_id < b.tree_id);
}

// Folds one query's work accounting into the "lookup_engine.*" registry
// cells and records its latency.
void RecordQueryMetrics(const LookupEngineStats& stats, int64_t start_us) {
  static Counter* const m_queries =
      Metrics::Default().counter("lookup_engine.queries");
  static Counter* const m_candidates =
      Metrics::Default().counter("lookup_engine.candidates");
  static Counter* const m_pruned =
      Metrics::Default().counter("lookup_engine.candidates_pruned");
  static Counter* const m_scored =
      Metrics::Default().counter("lookup_engine.candidates_scored");
  static Counter* const m_postings =
      Metrics::Default().counter("lookup_engine.postings_scanned");
  static Histogram* const m_query_us =
      Metrics::Default().histogram("lookup_engine.query_us");
  m_queries->Increment();
  m_candidates->Add(stats.candidates);
  m_pruned->Add(stats.pruned);
  m_scored->Add(stats.scored);
  m_postings->Add(stats.postings_scanned);
  if (Metrics::enabled()) {
    m_query_us->Record(Metrics::NowUs() - start_us);
  }
}

uint64_t MixFingerprint(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::shared_ptr<const LookupEngine> LookupEngine::Build(
    const ForestIndex& forest, int num_shards) {
  std::vector<TreeId> ids = forest.TreeIds();  // ascending
  std::vector<int64_t> sizes;
  sizes.reserve(ids.size());
  std::vector<RawPosting> raw;
  for (size_t slot = 0; slot < ids.size(); ++slot) {
    const PqGramIndex* bag = forest.Find(ids[slot]);
    sizes.push_back(bag->size());
    for (const auto& [fp, count] : bag->counts()) {
      raw.push_back({fp, static_cast<int32_t>(slot), count});
    }
  }
  return Compile(forest.shape(), ids, sizes, std::move(raw), num_shards);
}

std::shared_ptr<const LookupEngine> LookupEngine::Build(
    const InvertedForestIndex& inverted, int num_shards) {
  std::vector<std::pair<TreeId, int64_t>> trees(
      inverted.tree_sizes().begin(), inverted.tree_sizes().end());
  std::sort(trees.begin(), trees.end());
  std::vector<TreeId> ids;
  std::vector<int64_t> sizes;
  ids.reserve(trees.size());
  sizes.reserve(trees.size());
  std::unordered_map<TreeId, int32_t> slot_of;
  slot_of.reserve(trees.size());
  for (const auto& [id, size] : trees) {
    slot_of.emplace(id, static_cast<int32_t>(ids.size()));
    ids.push_back(id);
    sizes.push_back(size);
  }
  std::vector<RawPosting> raw;
  raw.reserve(static_cast<size_t>(inverted.posting_entries()));
  for (const auto& [fp, list] : inverted.postings()) {
    for (const InvertedForestIndex::Posting& posting : list) {
      raw.push_back({fp, slot_of.at(posting.tree_id), posting.count});
    }
  }
  return Compile(inverted.shape(), ids, sizes, std::move(raw), num_shards);
}

void LookupEngine::FreezeShard(Shard* shard, std::vector<RawPosting> part) {
  shard->uid = g_next_shard_uid.fetch_add(1, std::memory_order_relaxed);
  std::sort(part.begin(), part.end(),
            [](const RawPosting& a, const RawPosting& b) {
              return a.fp < b.fp || (a.fp == b.fp && a.slot < b.slot);
            });
  PQIDX_CHECK_MSG(part.size() <= UINT32_MAX,
                  "shard posting arena exceeds 32-bit offsets");
  shard->entries.reserve(part.size());
  shard->offsets.push_back(0);
  for (size_t i = 0; i < part.size(); ++i) {
    const RawPosting& p = part[i];
    PQIDX_CHECK_MSG(p.count > 0, "nonpositive posting count");
    if (shard->fps.empty() || shard->fps.back() != p.fp) {
      if (!shard->fps.empty()) {
        shard->offsets.push_back(static_cast<uint32_t>(i));
      }
      shard->fps.push_back(p.fp);
    }
    // Counts beyond int32 are legitimate (accumulated edit deltas) but
    // rare; spill them to the side map rather than abort a build that
    // may be publishing a live server's next snapshot.
    if (p.count <= INT32_MAX) {
      shard->entries.push_back({p.slot, static_cast<int32_t>(p.count)});
    } else {
      shard->wide_counts.emplace(static_cast<uint32_t>(i), p.count);
      shard->entries.push_back({p.slot, kWideCount});
    }
  }
  shard->offsets.push_back(static_cast<uint32_t>(part.size()));
  if (shard->fps.empty()) shard->offsets.assign(1, 0);
}

std::shared_ptr<const LookupEngine> LookupEngine::Compile(
    const PqShape& shape, const std::vector<TreeId>& tree_ids,
    const std::vector<int64_t>& tree_sizes, std::vector<RawPosting> raw,
    int num_shards) {
  static Counter* const m_builds =
      Metrics::Default().counter("lookup_engine.builds");
  static Histogram* const m_build_us =
      Metrics::Default().histogram("lookup_engine.build_us");
  const int64_t start_us = Metrics::enabled() ? Metrics::NowUs() : 0;
  // Private constructor; the factory idiom owns the allocation directly.
  std::shared_ptr<LookupEngine> engine(new LookupEngine());
  engine->shape_ = shape;
  const int n = static_cast<int>(tree_ids.size());
  engine->num_trees_ = n;
  int shard_count = std::clamp(num_shards, 1, std::max(1, n));
  engine->shards_.resize(static_cast<size_t>(shard_count));

  // Contiguous slot ranges per shard; slots follow ascending tree id.
  std::vector<int> shard_begin(static_cast<size_t>(shard_count) + 1);
  for (int s = 0; s <= shard_count; ++s) {
    shard_begin[s] = static_cast<int>(static_cast<int64_t>(s) * n /
                                      shard_count);
  }
  std::vector<std::shared_ptr<Shard>> shards(
      static_cast<size_t>(shard_count));
  std::vector<int32_t> slot_shard(static_cast<size_t>(n));
  for (int s = 0; s < shard_count; ++s) {
    shards[static_cast<size_t>(s)] = std::make_shared<Shard>();
    Shard& shard = *shards[static_cast<size_t>(s)];
    for (int slot = shard_begin[s]; slot < shard_begin[s + 1]; ++slot) {
      slot_shard[slot] = s;
      shard.tree_ids.push_back(tree_ids[static_cast<size_t>(slot)]);
      shard.tree_sizes.push_back(tree_sizes[static_cast<size_t>(slot)]);
    }
  }

  // Partition the postings by shard, rebase slots, and freeze each
  // shard's arena grouped by fingerprint (entries slot-ascending within
  // a group, for deterministic scans).
  std::vector<std::vector<RawPosting>> shard_raw(
      static_cast<size_t>(shard_count));
  for (const RawPosting& p : raw) {
    int s = slot_shard[static_cast<size_t>(p.slot)];
    RawPosting local = p;
    local.slot = p.slot - shard_begin[s];
    shard_raw[static_cast<size_t>(s)].push_back(local);
  }
  raw.clear();
  raw.shrink_to_fit();
  for (int s = 0; s < shard_count; ++s) {
    std::vector<RawPosting>& part = shard_raw[static_cast<size_t>(s)];
    engine->posting_entries_ += static_cast<int64_t>(part.size());
    FreezeShard(shards[static_cast<size_t>(s)].get(), std::move(part));
    engine->shards_[static_cast<size_t>(s)] =
        std::move(shards[static_cast<size_t>(s)]);
  }
  m_builds->Increment();
  if (Metrics::enabled()) {
    m_build_us->Record(Metrics::NowUs() - start_us);
  }
  return engine;
}

std::shared_ptr<const LookupEngine> LookupEngine::ApplyDelta(
    const std::shared_ptr<const LookupEngine>& prev,
    const ForestIndex& forest, const std::vector<TreeId>& changed) {
  static Counter* const m_incremental =
      Metrics::Default().counter("lookup_engine.incremental_builds");
  static Counter* const m_reused =
      Metrics::Default().counter("lookup_engine.shards_reused");
  static Counter* const m_recompiled =
      Metrics::Default().counter("lookup_engine.shards_recompiled");
  static Histogram* const m_incremental_us =
      Metrics::Default().histogram("lookup_engine.incremental_us");
  PQIDX_CHECK_MSG(prev != nullptr, "ApplyDelta needs a previous snapshot");
  PQIDX_CHECK_MSG(prev->shape_ == forest.shape(),
                  "delta forest shape does not match the snapshot");
  if (changed.empty()) return prev;
  if (prev->num_trees_ == 0) {
    // No shard tree-id ranges exist yet to route the delta into.
    return Build(forest, prev->num_shards());
  }
  const int64_t start_us = Metrics::enabled() ? Metrics::NowUs() : 0;
  const size_t shard_count = prev->shards_.size();

  // Route every changed id to the shard whose ascending tree-id range
  // (would) contain it: the last nonempty shard whose first id <= id,
  // else the first nonempty shard. Ranges start contiguous (Build) and
  // this routing keeps them disjoint and ascending, so an id already in
  // the snapshot always routes to the shard that holds it.
  std::vector<std::pair<TreeId, size_t>> firsts;
  for (size_t s = 0; s < shard_count; ++s) {
    if (!prev->shards_[s]->tree_ids.empty()) {
      firsts.emplace_back(prev->shards_[s]->tree_ids.front(), s);
    }
  }
  std::vector<std::vector<TreeId>> incoming(shard_count);
  for (TreeId id : changed) {
    auto it = std::upper_bound(
        firsts.begin(), firsts.end(),
        std::make_pair(id, std::numeric_limits<size_t>::max()));
    size_t s = it == firsts.begin() ? firsts.front().second
                                    : std::prev(it)->second;
    incoming[s].push_back(id);
  }

  std::shared_ptr<LookupEngine> engine(new LookupEngine());
  engine->shape_ = prev->shape_;
  engine->shards_.resize(shard_count);
  int64_t trees = 0;
  int64_t postings = 0;
  for (size_t s = 0; s < shard_count; ++s) {
    if (incoming[s].empty()) {
      // Untouched: share the frozen arena with the previous epoch.
      engine->shards_[s] = prev->shards_[s];
      trees += static_cast<int64_t>(engine->shards_[s]->tree_ids.size());
      postings += static_cast<int64_t>(engine->shards_[s]->entries.size());
      m_reused->Increment();
      continue;
    }
    // Dirty: recompile from the forest. The shard's new tree set is the
    // union of its previous ids and the changed ids routed here; any of
    // them absent from the forest is a removal.
    const Shard& old = *prev->shards_[s];
    std::vector<TreeId> ids = old.tree_ids;
    ids.insert(ids.end(), incoming[s].begin(), incoming[s].end());
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    auto shard = std::make_shared<Shard>();
    std::vector<RawPosting> part;
    for (TreeId id : ids) {
      const PqGramIndex* bag = forest.Find(id);
      if (bag == nullptr) continue;  // removed
      const int32_t slot = static_cast<int32_t>(shard->tree_ids.size());
      shard->tree_ids.push_back(id);
      shard->tree_sizes.push_back(bag->size());
      for (const auto& [fp, count] : bag->counts()) {
        part.push_back({fp, slot, count});
      }
    }
    trees += static_cast<int64_t>(shard->tree_ids.size());
    postings += static_cast<int64_t>(part.size());
    FreezeShard(shard.get(), std::move(part));
    engine->shards_[s] = std::move(shard);
    m_recompiled->Increment();
  }
  engine->num_trees_ = static_cast<int>(trees);
  engine->posting_entries_ = postings;
  m_incremental->Increment();
  if (Metrics::enabled()) {
    m_incremental_us->Record(Metrics::NowUs() - start_us);
  }
  return engine;
}

std::vector<uint64_t> LookupEngine::ShardUids() const {
  std::vector<uint64_t> uids;
  uids.reserve(shards_.size());
  for (const std::shared_ptr<const Shard>& shard : shards_) {
    uids.push_back(shard->uid);
  }
  return uids;
}

QueryFingerprint LookupEngine::FingerprintQuery(
    const std::vector<QueryTuple>& tuples, int64_t query_size, uint64_t op,
    uint64_t param) {
  // Two independently seeded lanes over the same sequence; both are
  // compared on a cache hit, so a collision needs both to collide.
  uint64_t lo = MixFingerprint(op ^ 0x243f6a8885a308d3ULL);
  uint64_t hi = MixFingerprint(op + 0x452821e638d01377ULL);
  lo = MixFingerprint(lo ^ param);
  hi = MixFingerprint(hi + param);
  lo = MixFingerprint(lo ^ static_cast<uint64_t>(query_size));
  hi = MixFingerprint(hi + static_cast<uint64_t>(query_size));
  for (const QueryTuple& t : tuples) {
    lo = MixFingerprint(lo ^ t.fp);
    lo = MixFingerprint(lo ^ static_cast<uint64_t>(t.count));
    hi = MixFingerprint(hi + (t.fp * 0x9e3779b97f4a7c15ULL));
    hi = MixFingerprint(hi + static_cast<uint64_t>(t.count));
  }
  return {lo, hi};
}

std::vector<LookupEngine::QueryTuple> LookupEngine::QueryTuples(
    const PqGramIndex& query) {
  std::vector<QueryTuple> tuples;
  tuples.reserve(query.counts().size());
  for (const auto& [fp, count] : query.counts()) {
    tuples.push_back({fp, count});
  }
  // Deterministic processing order (the bag map iterates in hash order).
  std::sort(tuples.begin(), tuples.end(),
            [](const QueryTuple& a, const QueryTuple& b) {
              return a.fp < b.fp;
            });
  return tuples;
}

void LookupEngine::ScoreShard(const Shard& shard,
                              const std::vector<QueryTuple>& tuples,
                              int64_t query_size, double tau,
                              std::vector<LookupResult>* out,
                              LookupEngineStats* stats) const {
  const size_t n = shard.tree_ids.size();
  static_assert(sizeof(Entry) == 2 * sizeof(int32_t),
                "kernels read the arena as interleaved int32 pairs");
  struct List {
    uint32_t begin;
    uint32_t length;
    int64_t qcount;
    PqGramFingerprint fp;
  };
  // Query tuples arrive fingerprint-ascending and shard.fps is sorted,
  // so each tuple's list is found by galloping forward from the
  // previous position instead of bisecting the whole array.
  std::vector<List> lists;
  lists.reserve(tuples.size());
  size_t pos = 0;
  for (const QueryTuple& t : tuples) {
    pos = GallopLowerBound(shard.fps.data(), shard.fps.size(), pos, t.fp);
    if (pos == shard.fps.size()) break;
    if (shard.fps[pos] != t.fp) continue;
    lists.push_back({shard.offsets[pos],
                     shard.offsets[pos + 1] - shard.offsets[pos], t.count,
                     t.fp});
  }
  // Rarest posting list first: the large lists then run with the small
  // remaining-gain bound, which is where the count filter prunes.
  std::sort(lists.begin(), lists.end(), [](const List& a, const List& b) {
    return a.length < b.length || (a.length == b.length && a.fp < b.fp);
  });
  // rest[j] = maximum further overlap attainable after list j-1: each
  // remaining tuple contributes at most its query multiplicity.
  std::vector<int64_t> rest(lists.size() + 1, 0);
  for (size_t j = lists.size(); j-- > 0;) {
    rest[j] = rest[j + 1] + lists[j].qcount;
  }

  const bool filter = tau < 1.0;
  std::vector<int64_t> overlap(n, 0);
  std::vector<int64_t> required(filter ? n : 0, 0);
  std::vector<uint8_t> pruned(n, 0);
  std::vector<int32_t> touched;

  // The SIMD kernel deinterleaves each block and clamps every count
  // against the query multiplicity up front; the scalar pass below only
  // scatters the precomputed contributions into the accumulators. A
  // negative contribution is the wide-count sentinel surviving the
  // clamp and is resolved exactly from the side map.
  constexpr size_t kBlock = 256;
  int32_t slot_buf[kBlock];
  int32_t contrib_buf[kBlock];

  for (size_t j = 0; j < lists.size(); ++j) {
    const List& list = lists[j];
    const int64_t gain_after = rest[j + 1];
    stats->postings_scanned += list.length;
    const int32_t qc32 = static_cast<int32_t>(
        std::min<int64_t>(list.qcount, INT32_MAX));
    for (size_t base = 0; base < list.length; base += kBlock) {
      const size_t m = std::min<size_t>(kBlock, list.length - base);
      ComputeContribs(
          reinterpret_cast<const int32_t*>(shard.entries.data() +
                                           list.begin + base),
          m, qc32, slot_buf, contrib_buf);
      for (size_t i = 0; i < m; ++i) {
        const int32_t slot = slot_buf[i];
        if (pruned[static_cast<size_t>(slot)]) continue;
        int64_t& acc = overlap[static_cast<size_t>(slot)];
        if (acc == 0) {
          touched.push_back(slot);
          if (filter) {
            required[static_cast<size_t>(slot)] = MinQualifyingOverlap(
                tau,
                query_size + shard.tree_sizes[static_cast<size_t>(slot)]);
          }
        }
        int64_t contrib = contrib_buf[i];
        if (contrib < 0) {
          contrib = std::min<int64_t>(
              list.qcount, shard.EntryCount(list.begin + base + i));
        }
        acc += contrib;
        if (filter &&
            acc + gain_after < required[static_cast<size_t>(slot)]) {
          pruned[static_cast<size_t>(slot)] = 1;
          ++stats->pruned;
        }
      }
    }
  }
  stats->candidates += static_cast<int64_t>(touched.size());

  if (!filter) {
    // tau >= 1: every tree qualifies by definition (distance <= 1), the
    // zero-overlap ones included; score the whole shard.
    stats->scored += static_cast<int64_t>(n);
    for (size_t slot = 0; slot < n; ++slot) {
      out->push_back({shard.tree_ids[slot],
                      BagDistance(overlap[slot],
                                  query_size + shard.tree_sizes[slot])});
    }
    return;
  }
  for (int32_t slot : touched) {
    if (pruned[static_cast<size_t>(slot)]) continue;
    ++stats->scored;
    if (overlap[static_cast<size_t>(slot)] >=
        required[static_cast<size_t>(slot)]) {
      out->push_back(
          {shard.tree_ids[static_cast<size_t>(slot)],
           BagDistance(overlap[static_cast<size_t>(slot)],
                       query_size +
                           shard.tree_sizes[static_cast<size_t>(slot)])});
    }
  }
  if (query_size == 0 && tau >= 0.0) {
    // An empty query is at distance 0 from every empty tree (empty
    // union); those trees own no postings, so the scan above cannot see
    // them. Distance 0 only qualifies for tau >= 0, exactly as the
    // scanning baseline's `distance <= tau` test decides.
    for (size_t slot = 0; slot < n; ++slot) {
      if (shard.tree_sizes[slot] == 0) {
        out->push_back({shard.tree_ids[slot], 0.0});
      }
    }
  }
}

std::vector<LookupResult> LookupEngine::Lookup(
    const PqGramIndex& query, double tau, ThreadPool* pool,
    LookupEngineStats* stats, QueryCache* cache) const {
  PQIDX_CHECK_MSG(query.shape() == shape_,
                  "query shape does not match lookup engine shape");
  // Distances are never negative, so tau < 0 (or NaN) matches nothing.
  // The scanning baseline reaches the same answer through its
  // `distance <= tau` test; deciding it up front keeps hostile tau
  // values (-inf, -1e308, NaN) out of the scoring machinery.
  if (!(tau >= 0.0)) return {};
  const int64_t start_us = Metrics::enabled() ? Metrics::NowUs() : 0;
  const std::vector<QueryTuple> tuples = QueryTuples(query);
  QueryFingerprint qfp;
  if (cache != nullptr) {
    qfp = FingerprintQuery(tuples, query.size(), /*op=*/0,
                           std::bit_cast<uint64_t>(tau));
  }
  const size_t shard_count = shards_.size();
  std::vector<std::vector<LookupResult>> parts(shard_count);
  std::vector<LookupEngineStats> part_stats(shard_count);
  auto score = [&](int64_t s) {
    const Shard& shard = *shards_[static_cast<size_t>(s)];
    if (cache != nullptr &&
        cache->Get(qfp, shard.uid, &parts[static_cast<size_t>(s)])) {
      return;
    }
    ScoreShard(shard, tuples, query.size(), tau,
               &parts[static_cast<size_t>(s)],
               &part_stats[static_cast<size_t>(s)]);
    if (cache != nullptr) {
      cache->Put(qfp, shard.uid, parts[static_cast<size_t>(s)]);
    }
  };
  if (pool != nullptr && shard_count > 1) {
    pool->ParallelFor(static_cast<int64_t>(shard_count), score);
  } else {
    for (size_t s = 0; s < shard_count; ++s) {
      score(static_cast<int64_t>(s));
    }
  }
  size_t total = 0;
  for (const std::vector<LookupResult>& part : parts) total += part.size();
  std::vector<LookupResult> results;
  results.reserve(total);
  for (const std::vector<LookupResult>& part : parts) {
    results.insert(results.end(), part.begin(), part.end());
  }
  std::sort(results.begin(), results.end(), RanksBefore);
  LookupEngineStats folded;
  for (const LookupEngineStats& part : part_stats) folded += part;
  RecordQueryMetrics(folded, start_us);
  if (stats != nullptr) *stats += folded;
  return results;
}

std::vector<LookupResult> LookupEngine::Lookup(
    const Tree& query, double tau, ThreadPool* pool,
    LookupEngineStats* stats, QueryCache* cache) const {
  return Lookup(BuildIndex(query, shape_), tau, pool, stats, cache);
}

void LookupEngine::ScoreShardTopK(const Shard& shard,
                                  const std::vector<QueryTuple>& tuples,
                                  int64_t query_size, int k,
                                  std::vector<LookupResult>* heap,
                                  LookupEngineStats* stats) const {
  const size_t n = shard.tree_ids.size();
  struct List {
    uint32_t begin;
    uint32_t length;
    int64_t qcount;
    PqGramFingerprint fp;
  };
  std::vector<List> lists;
  lists.reserve(tuples.size());
  size_t pos = 0;
  for (const QueryTuple& t : tuples) {
    pos = GallopLowerBound(shard.fps.data(), shard.fps.size(), pos, t.fp);
    if (pos == shard.fps.size()) break;
    if (shard.fps[pos] != t.fp) continue;
    lists.push_back({shard.offsets[pos],
                     shard.offsets[pos + 1] - shard.offsets[pos], t.count,
                     t.fp});
  }
  std::sort(lists.begin(), lists.end(), [](const List& a, const List& b) {
    return a.length < b.length || (a.length == b.length && a.fp < b.fp);
  });
  std::vector<int64_t> rest(lists.size() + 1, 0);
  for (size_t j = lists.size(); j-- > 0;) {
    rest[j] = rest[j + 1] + lists[j].qcount;
  }

  std::vector<int64_t> overlap(n, 0);
  std::vector<uint8_t> pruned(n, 0);
  int64_t candidates = 0;
  constexpr size_t kBlock = 256;
  int32_t slot_buf[kBlock];
  int32_t contrib_buf[kBlock];
  for (size_t j = 0; j < lists.size(); ++j) {
    const List& list = lists[j];
    const int64_t gain_after = rest[j + 1];
    stats->postings_scanned += list.length;
    const int32_t qc32 = static_cast<int32_t>(
        std::min<int64_t>(list.qcount, INT32_MAX));
    for (size_t base = 0; base < list.length; base += kBlock) {
      const size_t m = std::min<size_t>(kBlock, list.length - base);
      ComputeContribs(
          reinterpret_cast<const int32_t*>(shard.entries.data() +
                                           list.begin + base),
          m, qc32, slot_buf, contrib_buf);
      for (size_t i = 0; i < m; ++i) {
        const int32_t slot = slot_buf[i];
        if (pruned[static_cast<size_t>(slot)]) continue;
        int64_t& acc = overlap[static_cast<size_t>(slot)];
        if (acc == 0) ++candidates;
        int64_t contrib = contrib_buf[i];
        if (contrib < 0) {
          contrib = std::min<int64_t>(
              list.qcount, shard.EntryCount(list.begin + base + i));
        }
        acc += contrib;
        // Adaptive bound: once the heap holds k results, a candidate
        // whose best attainable rank cannot beat the current k-th best
        // is dead. The k-th best only improves, so the decision stays
        // valid.
        if (static_cast<int>(heap->size()) == k) {
          const LookupResult& worst = heap->front();
          LookupResult best_attainable{
              shard.tree_ids[static_cast<size_t>(slot)],
              BagDistance(acc + gain_after,
                          query_size +
                              shard.tree_sizes[static_cast<size_t>(slot)])};
          if (!RanksBefore(best_attainable, worst)) {
            pruned[static_cast<size_t>(slot)] = 1;
            ++stats->pruned;
          }
        }
      }
    }
  }
  stats->candidates += candidates;

  // TopK ranks every tree (a zero-overlap tree still has a distance), so
  // the emit pass walks all slots, skipping only the provably beaten.
  for (size_t slot = 0; slot < n; ++slot) {
    if (pruned[slot]) continue;
    ++stats->scored;
    LookupResult candidate{
        shard.tree_ids[slot],
        BagDistance(overlap[slot], query_size + shard.tree_sizes[slot])};
    if (static_cast<int>(heap->size()) < k) {
      heap->push_back(candidate);
      std::push_heap(heap->begin(), heap->end(), RanksBefore);
    } else if (RanksBefore(candidate, heap->front())) {
      std::pop_heap(heap->begin(), heap->end(), RanksBefore);
      heap->back() = candidate;
      std::push_heap(heap->begin(), heap->end(), RanksBefore);
    }
  }
}

std::vector<LookupResult> LookupEngine::TopK(const PqGramIndex& query,
                                             int k, ThreadPool* pool,
                                             LookupEngineStats* stats,
                                             QueryCache* cache) const {
  PQIDX_CHECK_MSG(query.shape() == shape_,
                  "query shape does not match lookup engine shape");
  if (k <= 0) return {};
  const int64_t start_us = Metrics::enabled() ? Metrics::NowUs() : 0;
  const std::vector<QueryTuple> tuples = QueryTuples(query);
  QueryFingerprint qfp;
  if (cache != nullptr) {
    qfp = FingerprintQuery(tuples, query.size(), /*op=*/1,
                           static_cast<uint64_t>(k));
  }
  LookupEngineStats local_stats;
  std::vector<LookupResult> merged;
  if (cache != nullptr || (pool != nullptr && shards_.size() > 1)) {
    // Independent per-shard heaps; the global top k is a subset of the
    // union of the per-shard top k. The cache requires this mode even
    // sequentially: a cached partial must not depend on the heap state
    // other shards left behind.
    std::vector<std::vector<LookupResult>> heaps(shards_.size());
    std::vector<LookupEngineStats> part_stats(shards_.size());
    auto score = [&](int64_t s) {
      const Shard& shard = *shards_[static_cast<size_t>(s)];
      if (cache != nullptr &&
          cache->Get(qfp, shard.uid, &heaps[static_cast<size_t>(s)])) {
        return;
      }
      ScoreShardTopK(shard, tuples, query.size(), k,
                     &heaps[static_cast<size_t>(s)],
                     &part_stats[static_cast<size_t>(s)]);
      if (cache != nullptr) {
        cache->Put(qfp, shard.uid, heaps[static_cast<size_t>(s)]);
      }
    };
    if (pool != nullptr && shards_.size() > 1) {
      pool->ParallelFor(static_cast<int64_t>(shards_.size()), score);
    } else {
      for (size_t s = 0; s < shards_.size(); ++s) {
        score(static_cast<int64_t>(s));
      }
    }
    for (const std::vector<LookupResult>& heap : heaps) {
      merged.insert(merged.end(), heap.begin(), heap.end());
    }
    for (const LookupEngineStats& part : part_stats) local_stats += part;
  } else {
    for (const std::shared_ptr<const Shard>& shard : shards_) {
      ScoreShardTopK(*shard, tuples, query.size(), k, &merged,
                     &local_stats);
    }
  }
  std::sort(merged.begin(), merged.end(), RanksBefore);
  if (static_cast<int>(merged.size()) > k) {
    merged.resize(static_cast<size_t>(k));
  }
  RecordQueryMetrics(local_stats, start_us);
  if (stats != nullptr) *stats += local_stats;
  return merged;
}

}  // namespace pqidx
