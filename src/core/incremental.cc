#include "core/incremental.h"

#include <chrono>

#include "core/delta.h"
#include "core/profile_updater.h"

namespace pqidx {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void CollectLambda(const DeltaStore& store, const PqShape& shape,
                   PqGramIndex* out) {
  store.ForEachPqGram([&](const PqGramView& view) {
    out->Add(FingerprintLabelTuple(view.labels, shape.tuple_size()));
  });
}

}  // namespace

Status ComputeIndexDeltas(const Tree& tn, const EditLog& log,
                          const PqShape& shape, PqGramIndex* plus,
                          PqGramIndex* minus, UpdateTimings* timings) {
  PQIDX_CHECK(plus != nullptr && minus != nullptr);
  PQIDX_CHECK(plus->shape() == shape && minus->shape() == shape);
  if (tn.root() == kNullNodeId) {
    return InvalidArgumentError("cannot update the index of an empty tree");
  }
  auto total_start = std::chrono::steady_clock::now();
  UpdateTimings local;
  DeltaStore store(shape);

  // Step 1: Delta+ = union_k delta(Tn, e-bar_k), evaluated on Tn only.
  auto start = std::chrono::steady_clock::now();
  for (const EditOperation& op : log.inverse_ops()) {
    ComputeDelta(tn, op, &store);
  }
  local.delta_plus_s = SecondsSince(start);
  local.delta_plus_pqgrams = store.CountPqGrams();

  // Step 2: I+ = lambda(Delta+).
  start = std::chrono::steady_clock::now();
  CollectLambda(store, shape, plus);
  local.lambda_plus_s = SecondsSince(start);

  // Step 3: Delta- by applying U for e-bar_n, ..., e-bar_1.
  start = std::chrono::steady_clock::now();
  ProfileUpdater updater(&store, &tn.dict());
  const std::vector<EditOperation>& ops = log.inverse_ops();
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    updater.Apply(*it);
  }
  local.delta_minus_s = SecondsSince(start);
  local.delta_minus_pqgrams = store.CountPqGrams();

  // Step 4: I- = lambda(Delta-).
  start = std::chrono::steady_clock::now();
  CollectLambda(store, shape, minus);
  local.lambda_minus_s = SecondsSince(start);

  local.total_s = SecondsSince(total_start);
  if (timings != nullptr) *timings = local;
  return Status::Ok();
}

Status UpdateIndex(PqGramIndex* index, const Tree& tn, const EditLog& log,
                   UpdateTimings* timings) {
  PQIDX_CHECK(index != nullptr);
  const PqShape shape = index->shape();
  PqGramIndex plus(shape);
  PqGramIndex minus(shape);
  UpdateTimings local;
  PQIDX_RETURN_IF_ERROR(
      ComputeIndexDeltas(tn, log, shape, &plus, &minus, &local));

  // Step 5: In = I0 \ lambda(Delta-) bag-union lambda(Delta+).
  auto start = std::chrono::steady_clock::now();
  for (const auto& [fp, count] : minus.counts()) {
    index->Remove(fp, count);
  }
  for (const auto& [fp, count] : plus.counts()) {
    index->Add(fp, count);
  }
  local.apply_s = SecondsSince(start);
  local.total_s += local.apply_s;
  if (timings != nullptr) *timings = local;
  return Status::Ok();
}

}  // namespace pqidx
