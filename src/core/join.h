// Approximate joins between forests (the application context of the
// paper's Section 2: approximate XML joins a la Guha et al.).
//
// An approximate join of forests F1 and F2 under threshold tau returns
// every pair (T1, T2) with pq-gram distance <= tau. The naive evaluation
// compares all |F1| x |F2| bag pairs; the index-based evaluation probes
// the inverted postings of one side with the bags of the other, touching
// only pairs that share at least one pq-gram -- dissimilar pairs cost
// nothing. Results are identical.

#ifndef PQIDX_CORE_JOIN_H_
#define PQIDX_CORE_JOIN_H_

#include <vector>

#include "core/forest_index.h"
#include "core/inverted_index.h"

namespace pqidx {

struct JoinResult {
  TreeId left;
  TreeId right;
  double distance;
};

// Nested-loop reference evaluation: all pairs, O(|F1|·|F2|) bag
// intersections. Shapes must match. Pairs ordered by (left, right).
std::vector<JoinResult> NestedLoopJoin(const ForestIndex& left,
                                       const ForestIndex& right,
                                       double tau);

// Index-based evaluation: builds (or reuses) inverted postings over
// `right` and probes them with every bag of `left`. Same result set as
// NestedLoopJoin, same order.
std::vector<JoinResult> IndexJoin(const ForestIndex& left,
                                  const InvertedForestIndex& right,
                                  double tau);
std::vector<JoinResult> IndexJoin(const ForestIndex& left,
                                  const ForestIndex& right, double tau);

// Self-join: all unordered pairs (a < b) within one forest under tau.
std::vector<JoinResult> SelfJoin(const ForestIndex& forest, double tau);

}  // namespace pqidx

#endif  // PQIDX_CORE_JOIN_H_
