// Incremental index maintenance (paper Algorithm 1, Theorems 1-2, Lemma 2).
//
//   updateIndex(I0, Tn, L):
//     1. Delta+ <- union over log entries of delta(Tn, e-bar_i)   (Thm. 1)
//     2. I+ <- lambda(P, Q)
//     3. for i = n .. 1: U(P, Q, e-bar_i)                          (Thm. 2)
//     4. I- <- lambda(P, Q)
//     5. In <- I0 \ I-  bag-union  I+                              (Lemma 2)
//
// Only the resulting tree Tn, the log of inverse operations, and the old
// index are consulted; no intermediate tree version is ever rebuilt. The
// per-phase wall-clock breakdown mirrors the rows of the paper's Table 2.

#ifndef PQIDX_CORE_INCREMENTAL_H_
#define PQIDX_CORE_INCREMENTAL_H_

#include "common/status.h"
#include "core/delta_store.h"
#include "core/pqgram_index.h"
#include "edit/edit_log.h"
#include "tree/tree.h"

namespace pqidx {

// Wall-clock breakdown of one updateIndex call (seconds), matching the
// actions of the paper's Table 2.
struct UpdateTimings {
  double delta_plus_s = 0;    // computing Delta+ on Tn
  double lambda_plus_s = 0;   // I+ = lambda(Delta+)
  double delta_minus_s = 0;   // transforming Delta+ into Delta-
  double lambda_minus_s = 0;  // I- = lambda(Delta-)
  double apply_s = 0;         // I0 \ I- bag-union I+
  double total_s = 0;

  int64_t delta_plus_pqgrams = 0;   // |Delta+|
  int64_t delta_minus_pqgrams = 0;  // |Delta-|
};

// Updates `index` (the index of T0) in place so that it equals the index
// of `tn`, using only the log of inverse edit operations. The index shape
// is taken from `index`.
Status UpdateIndex(PqGramIndex* index, const Tree& tn, const EditLog& log,
                   UpdateTimings* timings = nullptr);

// Lower-level variant: computes I+ and I- (as bags over the shared shape)
// without touching an index. Useful for updating several replicas or for
// inspection.
Status ComputeIndexDeltas(const Tree& tn, const EditLog& log,
                          const PqShape& shape, PqGramIndex* plus,
                          PqGramIndex* minus,
                          UpdateTimings* timings = nullptr);

}  // namespace pqidx

#endif  // PQIDX_CORE_INCREMENTAL_H_
