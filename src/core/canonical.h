// Canonical-order pq-grams: approximate matching for *unordered* trees.
//
// The pq-gram distance is defined over ordered trees: permuting siblings
// changes the q-part windows and therefore the distance, even though for
// data-centric XML (attribute-like children, bibliography fields) sibling
// order often carries no meaning. The follow-up work on windowed pq-grams
// (Augsten et al., ICDE'08) addresses this; here we implement the
// canonical-order variant of that idea: children are visited in a
// deterministic order that depends only on the subtree *content* -- sorted
// by (label hash, canonical subtree fingerprint) -- so any two trees that
// are equal up to sibling permutations produce identical profiles, while
// the pq-grams otherwise keep their shape and cost.
//
// The canonical index is built with the same machinery and compared with
// the same bag distance as the ordered one. It is NOT incrementally
// maintainable by the delta/update algorithms: a single edit can reorder
// a whole child list in canonical space, which breaks the locality the
// paper's Theorems rely on. Rebuild per document version, or keep the
// ordered index for maintenance and the canonical one for unordered
// queries.

#ifndef PQIDX_CORE_CANONICAL_H_
#define PQIDX_CORE_CANONICAL_H_

#include <vector>

#include "core/pqgram.h"
#include "core/pqgram_index.h"
#include "tree/tree.h"

namespace pqidx {

// Content fingerprint of the subtree rooted at `n`: label plus the
// *sorted* multiset of child fingerprints, so it is invariant under
// sibling permutations. Two subtrees get equal fingerprints iff they are
// equal as unordered labeled trees (up to hash collisions).
uint64_t CanonicalSubtreeFingerprint(const Tree& tree, NodeId n);

// The canonical sibling order of every node: children sorted by
// (label hash, canonical fingerprint). Returns, per node id, the sorted
// child vector (indexed like the tree's arena; helper for tests).
std::vector<NodeId> CanonicalChildOrder(const Tree& tree, NodeId n);

// Builds the pq-gram index over the canonically ordered view of `tree`
// (the tree itself is not modified).
PqGramIndex BuildCanonicalIndex(const Tree& tree, const PqShape& shape);

// Distance over canonical indexes: 0 for trees equal up to sibling
// permutations.
double CanonicalPqGramDistance(const Tree& a, const Tree& b,
                               const PqShape& shape);

}  // namespace pqidx

#endif  // PQIDX_CORE_CANONICAL_H_
