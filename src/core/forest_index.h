// The forest-level pq-gram index and approximate lookup (paper Sections
// 3.2 and 9.1).
//
// Stores one PqGramIndex per tree of a forest -- the paper's relation
// (treeId, pqg, cnt) -- and answers approximate lookups: all trees whose
// pq-gram distance to a query tree is below a threshold. With the index
// precomputed, a lookup touches only the (small) per-tree bags; without
// it, every lookup has to recompute every profile, which the paper shows
// dominates the cost.

#ifndef PQIDX_CORE_FOREST_INDEX_H_
#define PQIDX_CORE_FOREST_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "core/pqgram_index.h"
#include "edit/edit_log.h"
#include "tree/tree.h"

namespace pqidx {

// Identifier of a tree within a forest.
using TreeId = int32_t;

struct LookupResult {
  TreeId tree_id;
  double distance;
};

class ForestIndex {
 public:
  explicit ForestIndex(PqShape shape = PqShape{}) : shape_(shape) {
    PQIDX_CHECK(shape.Valid());
  }

  const PqShape& shape() const { return shape_; }
  int size() const { return static_cast<int>(indexes_.size()); }

  // Indexes `tree` under `id`, replacing any previous index for `id`.
  void AddTree(TreeId id, const Tree& tree);

  // Adopts a prebuilt index (shape must match).
  void AddIndex(TreeId id, PqGramIndex index);

  // Returns true if `id` was present.
  bool RemoveTree(TreeId id);

  // The index of `id`, or nullptr.
  const PqGramIndex* Find(TreeId id) const;

  // Incrementally maintains the index of `id` from the resulting tree and
  // the log of inverse edit operations (Algorithm 1).
  Status ApplyLog(TreeId id, const Tree& tn, const EditLog& log);

  // Approximate lookup: all trees T with dist(query, T) <= tau, most
  // similar first. `query` must have this forest's shape.
  std::vector<LookupResult> Lookup(const PqGramIndex& query,
                                   double tau) const;
  std::vector<LookupResult> Lookup(const Tree& query, double tau) const;

  // The k most similar trees (fewer if the forest is smaller), most
  // similar first; ties broken by tree id.
  std::vector<LookupResult> TopK(const PqGramIndex& query, int k) const;
  std::vector<LookupResult> TopK(const Tree& query, int k) const;

  // All indexed tree ids, ascending.
  std::vector<TreeId> TreeIds() const;

  int64_t SerializedBytes() const;
  void Serialize(ByteWriter* writer) const;
  static StatusOr<ForestIndex> Deserialize(ByteReader* reader);

  friend bool operator==(const ForestIndex& a, const ForestIndex& b) {
    return a.shape_ == b.shape_ && a.indexes_ == b.indexes_;
  }

 private:
  PqShape shape_;
  std::map<TreeId, PqGramIndex> indexes_;
};

}  // namespace pqidx

#endif  // PQIDX_CORE_FOREST_INDEX_H_
