// Record-level indexing: treat selected subtrees of one large document as
// the units of similarity search.
//
// Flat archives (DBLP-style bibliographies, log files, product catalogs)
// are one huge tree whose *records* -- the root's subtrees, or any
// predicate-selected subtrees -- are what users actually match against
// each other. This module extracts record subtrees as standalone trees
// (keyed by their root's node id in the host document) and builds a
// forest index over them, enabling record-granular approximate lookups,
// joins, and duplicate detection on top of the ordinary machinery.

#ifndef PQIDX_CORE_RECORD_INDEX_H_
#define PQIDX_CORE_RECORD_INDEX_H_

#include <functional>
#include <utility>
#include <vector>

#include "core/forest_index.h"
#include "tree/tree.h"

namespace pqidx {

// Selects the record roots of `doc`. The default picks every child of the
// document root (the DBLP shape).
using RecordPredicate = std::function<bool(const Tree&, NodeId)>;

// Returns the node ids of all record roots in document order: nodes for
// which `predicate` holds; descendants of a selected node are not visited
// (records do not nest).
std::vector<NodeId> SelectRecordRoots(const Tree& doc,
                                      const RecordPredicate& predicate);

// Copies the subtree rooted at `record_root` into a standalone tree
// (sharing the document's label dictionary; fresh pre-order node ids).
Tree ExtractRecord(const Tree& doc, NodeId record_root);

// Builds a forest index whose TreeIds are the record roots' node ids in
// `doc`. With a null predicate, every child of the root is a record.
ForestIndex BuildRecordIndex(const Tree& doc, const PqShape& shape,
                             const RecordPredicate& predicate = nullptr);

// All record pairs of `doc` within pq-gram distance `tau` (left < right,
// ids = record-root node ids): record-level duplicate detection.
std::vector<std::pair<std::pair<NodeId, NodeId>, double>>
FindSimilarRecordPairs(const Tree& doc, const PqShape& shape, double tau,
                       const RecordPredicate& predicate = nullptr);

}  // namespace pqidx

#endif  // PQIDX_CORE_RECORD_INDEX_H_
