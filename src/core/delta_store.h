// The paper's temporary table pair (P, Q) (Section 8.1), which holds the
// pq-grams of the delta while the incremental update runs.
//
// A pq-gram is stored factored: its p-part once per anchor node (table P)
// and one row per q-part window (table Q); the join P |x| Q on the anchor
// reconstructs the pq-grams (Equation 31). P-parts shared by many pq-grams
// are therefore stored and updated once.
//
// Rows carry full node-id chains next to the hashed label chains (a strict
// superset of the paper's (anchId, sibPos, parId, ppart) columns, see
// DESIGN.md): the profile update function can then locate the node an edit
// operation refers to by id instead of by position arithmetic. Each P-row
// also tracks the anchor's fanout in the current intermediate tree, which
// resolves the leaf/non-leaf transitions during updates (a node whose last
// child is deleted anchors the special all-null q-part afterwards).
//
// A P-row with no matching Q-rows represents no pq-grams (the join is
// empty) but is legal and necessary: Algorithm 2 inserts P(v) even when
// the Q^{k..m}(v) selection is empty, and later update steps read it.
//
// Indexes maintained:
//   * P by anchor (primary);
//   * inverted index node id -> P-rows whose chain contains the id (drives
//     the changePParts selections of Algorithm 4);
//   * parent id -> child anchors (drives sibling-position shifts);
//   * Q by (anchor, row) with ordered rows per anchor (drives the
//     Q^{k..m}(v) range selections and renumbering).

#ifndef PQIDX_CORE_DELTA_STORE_H_
#define PQIDX_CORE_DELTA_STORE_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/fingerprint.h"
#include "core/pqgram.h"
#include "tree/tree.h"

namespace pqidx {

// One row of table P: the p-part of all pq-grams anchored at `anchor`,
// plus the anchor's structural bookkeeping in the current intermediate
// tree.
struct PRow {
  NodeId anchor = kNullNodeId;
  NodeId parent = kNullNodeId;  // kNullNodeId for the root
  int sib_pos = 0;              // 0-based position under `parent`
  int fanout = 0;               // anchor's fanout
  std::vector<NodeId> ids;        // size p; ids[p-1] == anchor
  std::vector<LabelHash> labels;  // size p

  friend bool operator==(const PRow& a, const PRow& b) = default;
};

// One row of table Q: window `row` of the anchor's q-matrix.
struct QRow {
  int row = 0;                    // 0-based window index
  std::vector<NodeId> ids;        // size q
  std::vector<LabelHash> labels;  // size q

  friend bool operator==(const QRow& a, const QRow& b) = default;
};

class DeltaStore {
 public:
  explicit DeltaStore(PqShape shape) : shape_(shape) {
    PQIDX_CHECK(shape.Valid());
  }

  DeltaStore(const DeltaStore&) = delete;
  DeltaStore& operator=(const DeltaStore&) = delete;

  const PqShape& shape() const { return shape_; }

  // --- P table --------------------------------------------------------------

  // Returns the row anchored at `anchor`, or nullptr.
  const PRow* FindPRow(NodeId anchor) const;

  // Set-semantics insert: a second insert for the same anchor must carry an
  // identical row (deltas of different log operations are snapshots of the
  // same tree); a contradicting row aborts.
  void InsertPRow(PRow row);

  void ErasePRow(NodeId anchor);

  // Replaces the id/label chain of an existing row (re-indexes).
  void ReplacePRowChain(NodeId anchor, std::vector<NodeId> ids,
                        std::vector<LabelHash> labels);

  // Updates the label of chain entry `pos` (ids unchanged, e.g. rename).
  void SetPRowLabel(NodeId anchor, int pos, LabelHash label);

  void SetPRowParentAndPos(NodeId anchor, NodeId parent, int sib_pos);
  void SetPRowFanout(NodeId anchor, int fanout);

  // Anchors whose chain contains `id` (including `id` itself when it has a
  // row). Unordered.
  std::vector<NodeId> PRowAnchorsContaining(NodeId id) const;

  // Anchors whose P-row has parent == v. Unordered.
  std::vector<NodeId> ChildAnchorsOf(NodeId v) const;

  int64_t p_row_count() const { return static_cast<int64_t>(p_rows_.size()); }

  // --- Q table --------------------------------------------------------------

  // Rows of `anchor`, ordered by row index; nullptr if none.
  const std::map<int, QRow>* QRowsOf(NodeId anchor) const;

  const QRow* FindQRow(NodeId anchor, int row) const;

  // Set-semantics insert (same contract as InsertPRow).
  void InsertQRow(NodeId anchor, QRow row);

  void EraseQRow(NodeId anchor, int row);
  void EraseAllQRows(NodeId anchor);

  // Updates column `col` of an existing row.
  void SetQRowEntry(NodeId anchor, int row, int col, NodeId id,
                    LabelHash label);

  // Adds `delta` to the row index of every row of `anchor` with
  // row >= from_row.
  void RenumberQRows(NodeId anchor, int from_row, int delta);

  int64_t q_row_count() const { return q_row_count_; }

  // --- lambda: pq-grams of the store -----------------------------------------

  // Join P |x| Q: emits fn(const PqGramView&) per pq-gram. Anchors without
  // a P-row contribute nothing (and indicate a bug; checked).
  template <typename Fn>
  void ForEachPqGram(Fn&& fn) const {
    const int p = shape_.p;
    const int q = shape_.q;
    std::vector<NodeId> ids(static_cast<size_t>(p) + q);
    std::vector<LabelHash> labels(static_cast<size_t>(p) + q);
    for (const auto& [anchor, rows] : q_rows_) {
      if (rows.empty()) continue;
      auto pit = p_rows_.find(anchor);
      PQIDX_CHECK_MSG(pit != p_rows_.end(),
                      "q-rows without a matching p-part");
      const PRow& prow = pit->second;
      for (int j = 0; j < p; ++j) {
        ids[j] = prow.ids[j];
        labels[j] = prow.labels[j];
      }
      for (const auto& [row, qrow] : rows) {
        for (int j = 0; j < q; ++j) {
          ids[p + j] = qrow.ids[j];
          labels[p + j] = qrow.labels[j];
        }
        PqGramView view{anchor, row, ids.data(), labels.data()};
        fn(static_cast<const PqGramView&>(view));
      }
    }
  }

  // Number of pq-grams represented (= number of joinable Q rows).
  int64_t CountPqGrams() const { return q_row_count_; }

  // Verifies index integrity (inverted indexes match row contents).
  // Aborts on violation; intended for tests.
  void CheckConsistency() const;

 private:
  void IndexChain(const PRow& row);
  void UnindexChain(const PRow& row);

  PqShape shape_;
  std::unordered_map<NodeId, PRow> p_rows_;
  std::unordered_map<NodeId, std::map<int, QRow>> q_rows_;
  std::unordered_map<NodeId, std::unordered_set<NodeId>> chain_index_;
  std::unordered_map<NodeId, std::unordered_set<NodeId>> parent_index_;
  int64_t q_row_count_ = 0;
};

}  // namespace pqidx

#endif  // PQIDX_CORE_DELTA_STORE_H_
