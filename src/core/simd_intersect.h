// Runtime-dispatched SIMD kernels for the lookup hot path.
//
// The lookup engine's inner loop walks a posting list of interleaved
// {slot, count} int32 pairs and accumulates min(query multiplicity,
// posting multiplicity) per candidate. Two pieces of that loop
// vectorize cleanly and are provided here:
//
//   * ComputeContribs deinterleaves a run of {slot, count} pairs and
//     clamps every count against the query multiplicity in one SIMD
//     min -- the per-entry branch-free part of the accumulation. The
//     wide-count sentinel (-1, see LookupEngine) survives the min
//     untouched (counts are positive, the clamp is >= 0), so the
//     caller patches sentinel contributions from the exact side map
//     and results stay bit-identical to the scalar path;
//   * GallopLowerBound replaces the per-tuple binary search over a
//     shard's sorted fingerprint array: query tuples arrive in
//     ascending fingerprint order, so each search gallops forward from
//     the previous match instead of bisecting the whole array.
//
// Kernels are selected once at runtime (AVX2 > SSE4.1 > NEON > scalar;
// x86 detection via __builtin_cpu_supports) and every variant computes
// the same values in the same order, so which one runs never changes a
// result. Building with -DPQIDX_DISABLE_SIMD=ON compiles the scalar
// kernel only; SetSimdKernelForTesting forces a specific variant so
// tests and benches can compare them on the same machine.

#ifndef PQIDX_CORE_SIMD_INTERSECT_H_
#define PQIDX_CORE_SIMD_INTERSECT_H_

#include <cstddef>
#include <cstdint>

namespace pqidx {

enum class SimdKernel : uint8_t {
  kScalar = 0,
  kSse41 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

// The kernel the dispatcher resolved for this process (the best variant
// the CPU supports, or whatever SetSimdKernelForTesting forced).
SimdKernel ActiveSimdKernel();
const char* SimdKernelName(SimdKernel kernel);

// Forces `kernel` for subsequent ComputeContribs calls. Returns false
// (and changes nothing) when this build or CPU does not support it.
// For tests and benches; not intended for concurrent use with lookups.
bool SetSimdKernelForTesting(SimdKernel kernel);

// Deinterleaves `n` {slot, count} int32 pairs from `pairs` (the posting
// arena layout) into `slots` and writes
//   contribs[i] = min(count_i, qcount)
// for each. `qcount` must be the query multiplicity clamped to
// [0, INT32_MAX]; counts above INT32_MAX are stored as the sentinel -1
// and come out as -1 (the only negative contribution possible), for the
// caller to resolve exactly. Dispatches to the active SIMD kernel.
void ComputeContribs(const int32_t* pairs, size_t n, int32_t qcount,
                     int32_t* slots, int32_t* contribs);

// First index in the ascending array `data[0, n)` at or after `begin`
// whose value is >= `target`: lower_bound semantics, but galloping
// forward from `begin` (doubling steps, then a binary search inside the
// final gap), so a run of searches with ascending targets costs
// O(log gap) each instead of O(log n).
size_t GallopLowerBound(const uint64_t* data, size_t n, size_t begin,
                        uint64_t target);

}  // namespace pqidx

#endif  // PQIDX_CORE_SIMD_INTERSECT_H_
