// The pq-gram index of one tree (paper Definition 3).
//
// The index is the *bag* of label-tuples of the tree's pq-grams: while a
// pq-gram is unique within a tree, different pq-grams may carry identical
// label-tuples, so the index stores (fingerprint, count) pairs -- the
// paper's (treeId, pqg, cnt) relation restricted to one tree. Only label
// information survives into the index; node identities live in profiles
// and deltas.

#ifndef PQIDX_CORE_PQGRAM_INDEX_H_
#define PQIDX_CORE_PQGRAM_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/fingerprint.h"
#include "common/serde.h"
#include "common/status.h"
#include "core/pqgram.h"
#include "tree/tree.h"

namespace pqidx {

class PqGramIndex {
 public:
  explicit PqGramIndex(PqShape shape = PqShape{}) : shape_(shape) {
    PQIDX_CHECK(shape.Valid());
  }

  const PqShape& shape() const { return shape_; }

  // Bag cardinality |I| (pq-grams counted with multiplicity).
  int64_t size() const { return size_; }
  // Number of distinct label-tuples.
  int64_t distinct() const { return static_cast<int64_t>(counts_.size()); }
  bool empty() const { return size_ == 0; }

  // Multiplicity of `fp` in the bag (0 if absent).
  int64_t Count(PqGramFingerprint fp) const {
    auto it = counts_.find(fp);
    return it == counts_.end() ? 0 : it->second;
  }

  // Bag insertion of `n` occurrences of `fp`.
  void Add(PqGramFingerprint fp, int64_t n = 1);

  // Bag removal of `n` occurrences. The incremental maintenance math
  // guarantees presence (Lemma 2: lambda(Delta-) is a sub-bag of I0);
  // removing more occurrences than present aborts.
  void Remove(PqGramFingerprint fp, int64_t n = 1);

  // Iteration over (fingerprint, count).
  const std::unordered_map<PqGramFingerprint, int64_t>& counts() const {
    return counts_;
  }

  // Serialized size in bytes (what the paper's Figure 14 (left) compares
  // against the document size).
  int64_t SerializedBytes() const;

  void Serialize(ByteWriter* writer) const;
  static StatusOr<PqGramIndex> Deserialize(ByteReader* reader);

  friend bool operator==(const PqGramIndex& a, const PqGramIndex& b) {
    return a.shape_ == b.shape_ && a.size_ == b.size_ &&
           a.counts_ == b.counts_;
  }

 private:
  PqShape shape_;
  std::unordered_map<PqGramFingerprint, int64_t> counts_;
  int64_t size_ = 0;
};

// Introspection summary of a bag: how much deduplication the
// fingerprint/count representation buys and how skewed the tuple
// multiplicities are (Figure 14 (left) attributes the index's sub-linear
// growth to exactly this duplication).
struct IndexStats {
  int64_t size = 0;          // bag cardinality
  int64_t distinct = 0;      // distinct label-tuples
  double dedup_ratio = 1.0;  // size / distinct (>= 1)
  int64_t max_count = 0;     // most frequent tuple's multiplicity
  int64_t singletons = 0;    // tuples with count == 1

  std::string ToString() const;
};

IndexStats ComputeIndexStats(const PqGramIndex& index);

// Builds the index of `tree` from scratch (one profile pass).
PqGramIndex BuildIndex(const Tree& tree, const PqShape& shape);

// |I1 bag-intersect I2| = sum over tuples of min(count1, count2).
int64_t BagIntersectionSize(const PqGramIndex& a, const PqGramIndex& b);

}  // namespace pqidx

#endif  // PQIDX_CORE_PQGRAM_INDEX_H_
