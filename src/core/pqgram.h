// pq-gram primitives (paper Definition 1).
//
// For a tree T extended with null nodes (p-1 null ancestors above the root,
// q-1 null children before and after the children of every non-leaf, q null
// children under every leaf), a pq-gram with anchor node a consists of
//  * the p-part: a's p-1 ancestors and a itself, and
//  * the q-part: q contiguous (extended) children of a.
//
// A node a with fanout f > 0 anchors f+q-1 pq-grams (the q-wide windows
// over its null-padded child sequence); a leaf anchors exactly one pq-gram
// whose q-part is all nulls. We address the pq-grams of an anchor by their
// 0-based window index `row`: row r covers child positions [r-q+1, r]
// (positions outside [0, f) are nulls); a leaf's single pq-gram has row 0.
//
// A pq-gram is identified by its nodes (ids and labels); rows are
// addressing, not identity.

#ifndef PQIDX_CORE_PQGRAM_H_
#define PQIDX_CORE_PQGRAM_H_

#include <string>
#include <vector>

#include "common/check.h"
#include "common/fingerprint.h"
#include "tree/tree.h"

namespace pqidx {

// The (p, q) configuration of an index. The paper's experiments use 3,3
// (default) and 1,2.
struct PqShape {
  int p = 3;
  int q = 3;

  bool Valid() const { return p >= 1 && q >= 1; }
  int tuple_size() const { return p + q; }

  friend bool operator==(const PqShape& a, const PqShape& b) = default;
};

// A materialized pq-gram: node ids and label hashes in linear encoding
// (a_{p-1}, ..., a_1, a, c_i, ..., c_{i+q-1}). Null nodes have id
// kNullNodeId and label kNullLabelHash. Used by tests, reference
// implementations, and debugging; the index itself only stores
// fingerprints.
struct PqGram {
  std::vector<NodeId> ids;        // size p+q
  std::vector<LabelHash> labels;  // size p+q

  // The anchor is the last node of the p-part.
  NodeId anchor(const PqShape& shape) const { return ids[shape.p - 1]; }

  PqGramFingerprint Fingerprint() const {
    return FingerprintLabelTuple(labels.data(),
                                 static_cast<int>(labels.size()));
  }

  // Identity of a pq-gram is its node content (paper: two nodes are equal
  // iff identifier and label match).
  friend bool operator==(const PqGram& a, const PqGram& b) = default;
  friend auto operator<=>(const PqGram& a, const PqGram& b) = default;
};

// Borrowed view of one pq-gram during an enumeration (profile pass or
// delta-store join): the anchor node, the 0-based window row, and the
// linear encoding (p-part then q-part) as parallel id/label-hash arrays of
// length shape.tuple_size(). The arrays are only valid during the callback.
struct PqGramView {
  NodeId anchor;
  int row;
  const NodeId* ids;
  const LabelHash* labels;
};

// Renders a pq-gram as "(*,*,1:a,2:b,*,*)" given the owning tree's
// dictionary (labels are resolved from `dict` by re-hashing, so unknown
// hashes render as "?").
std::string PqGramToString(const PqGram& gram, const LabelDict& dict);

}  // namespace pqidx

#endif  // PQIDX_CORE_PQGRAM_H_
