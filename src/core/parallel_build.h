// Parallel collection indexing: builds the per-tree bags of a forest (or
// the distances of one query against many bags) across a thread pool.
// Profile computation is read-only over each tree and dominates indexing
// cost (paper Section 9.1), so the batch parallelizes perfectly.
//
// Every entry point takes a caller-owned ThreadPool so long-lived callers
// (the server, the tools, the benches) amortize worker startup across
// calls; the `num_threads` overloads remain for one-shot use and spin up
// a pool just for that call.
//
// Thread-safety note: the trees' shared LabelDict is only *read* here
// (all labels were interned at construction), which is safe; interning
// while a parallel build runs is not.

#ifndef PQIDX_CORE_PARALLEL_BUILD_H_
#define PQIDX_CORE_PARALLEL_BUILD_H_

#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "tree/tree.h"

namespace pqidx {

// Builds a forest index over `trees` with ids 0..n-1 on a caller-owned
// pool (must not be null).
ForestIndex BuildForestIndexParallel(const std::vector<Tree>& trees,
                                     const PqShape& shape, ThreadPool* pool);

// As above with explicit (id, tree) pairs.
ForestIndex BuildForestIndexParallel(
    const std::vector<std::pair<TreeId, const Tree*>>& trees,
    const PqShape& shape, ThreadPool* pool);

// Distances of `query` against every tree bag of `forest`, in TreeIds()
// order, computed across a caller-owned pool (must not be null).
std::vector<double> AllDistancesParallel(const ForestIndex& forest,
                                         const PqGramIndex& query,
                                         ThreadPool* pool);

// One-shot conveniences: construct a fresh pool of `num_threads` workers
// for the duration of the call.
ForestIndex BuildForestIndexParallel(const std::vector<Tree>& trees,
                                     const PqShape& shape, int num_threads);
ForestIndex BuildForestIndexParallel(
    const std::vector<std::pair<TreeId, const Tree*>>& trees,
    const PqShape& shape, int num_threads);
std::vector<double> AllDistancesParallel(const ForestIndex& forest,
                                         const PqGramIndex& query,
                                         int num_threads);

}  // namespace pqidx

#endif  // PQIDX_CORE_PARALLEL_BUILD_H_
