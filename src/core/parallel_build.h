// Parallel collection indexing: builds the per-tree bags of a forest (or
// the distances of one query against many bags) across a thread pool.
// Profile computation is read-only over each tree and dominates indexing
// cost (paper Section 9.1), so the batch parallelizes perfectly.
//
// Thread-safety note: the trees' shared LabelDict is only *read* here
// (all labels were interned at construction), which is safe; interning
// while a parallel build runs is not.

#ifndef PQIDX_CORE_PARALLEL_BUILD_H_
#define PQIDX_CORE_PARALLEL_BUILD_H_

#include <utility>
#include <vector>

#include "core/forest_index.h"
#include "tree/tree.h"

namespace pqidx {

// Builds a forest index over `trees` with ids 0..n-1 using `num_threads`
// workers.
ForestIndex BuildForestIndexParallel(const std::vector<Tree>& trees,
                                     const PqShape& shape, int num_threads);

// As above with explicit (id, tree) pairs.
ForestIndex BuildForestIndexParallel(
    const std::vector<std::pair<TreeId, const Tree*>>& trees,
    const PqShape& shape, int num_threads);

// Distances of `query` against every tree bag of `forest`, in TreeIds()
// order, computed across `num_threads` workers.
std::vector<double> AllDistancesParallel(const ForestIndex& forest,
                                         const PqGramIndex& query,
                                         int num_threads);

}  // namespace pqidx

#endif  // PQIDX_CORE_PARALLEL_BUILD_H_
