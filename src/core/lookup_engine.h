// Read-optimized approximate-lookup engine: an immutable, compact
// snapshot of a forest's pq-gram postings.
//
// The maintainable structures (ForestIndex, InvertedForestIndex) are
// built for cheap incremental updates: node-based maps whose postings
// scatter across the heap. This engine compiles either of them into a
// read-only snapshot laid out for the lookup hot path:
//
//   * postings live in flat arena-backed arrays -- per shard one sorted
//     fingerprint array, a parallel offset array, and one contiguous
//     {slot, count} entry buffer -- so accumulating a query is sequential
//     pointer walks over dense memory, not hash-map hopping;
//   * trees are renumbered into dense slots, making the per-lookup
//     accumulator a flat array indexed by slot;
//   * query tuples are processed rarest-posting-first, and a tau-derived
//     count filter prunes candidates mid-accumulation: from
//     dist = 1 - 2*shared/(|Q|+s), a tree with bag size s qualifies only
//     with shared >= (1-tau)*(|Q|+s)/2, so once a candidate's overlap
//     plus the maximum gain still attainable from the remaining (rarer
//     processed first, so larger) lists falls below that bound, it is
//     dropped without finishing its accumulation;
//   * the trees are split into shards with independent posting arenas
//     and accumulators, so large lookups score shards in parallel via
//     ThreadPool::ParallelFor and merge at the end;
//   * TopK tightens the pruning bound adaptively from the current k-th
//     best result instead of a fixed tau.
//
// Results are bit-identical to ForestIndex::Lookup -- same distances
// (identical double arithmetic), same ordering, same tie-breaks -- for
// every tau including tau >= 1 (everything qualifies), tau < 0 or NaN
// (distances are never negative, so nothing qualifies), and empty bags
// (two empty bags are at distance 0). The count filter is exact: a
// candidate is only pruned when even its maximum attainable overlap
// fails the same floating-point test that gates the final result.
//
// A snapshot is immutable after Build, so concurrent lookups need no
// locking; writers publish a fresh snapshot (see service/server.h for
// the epoch-published shared_ptr protocol pqidxd uses).
//
// Snapshots are maintained the same way the paper maintains the index
// itself (Lemma 2: In = I0 \ lambda(Delta-) |+| lambda(Delta+)):
// ApplyDelta derives the next snapshot from the previous one by
// copy-on-write -- only the shards whose tree-id range owns a changed
// tree are recompiled into fresh arenas, every untouched shard is shared
// with the previous epoch through its shared_ptr -- so publishing a
// commit of k edits costs O(shards touched by k), not O(total postings).

#ifndef PQIDX_CORE_LOOKUP_ENGINE_H_
#define PQIDX_CORE_LOOKUP_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/inverted_index.h"
#include "core/pqgram_index.h"
#include "core/query_cache.h"

namespace pqidx {

// Work accounting for one lookup (or one TopK). All counters are sums
// over the shards the lookup touched.
struct LookupEngineStats {
  int64_t candidates = 0;        // trees reached by at least one posting
  int64_t pruned = 0;            // dropped mid-accumulation by the filter
  int64_t scored = 0;            // candidates that reached the final test
  int64_t postings_scanned = 0;  // posting entries visited

  LookupEngineStats& operator+=(const LookupEngineStats& other) {
    candidates += other.candidates;
    pruned += other.pruned;
    scored += other.scored;
    postings_scanned += other.postings_scanned;
    return *this;
  }
};

class LookupEngine {
 public:
  // Compiles a snapshot of `forest` split into `num_shards` shards
  // (clamped to [1, max(1, #trees)]). Shard count trades parallelism
  // against per-shard setup cost; results never depend on it.
  static std::shared_ptr<const LookupEngine> Build(const ForestIndex& forest,
                                                   int num_shards = 1);
  static std::shared_ptr<const LookupEngine> Build(
      const InvertedForestIndex& inverted, int num_shards = 1);

  // Derives the next snapshot from `prev` by copy-on-write. `changed`
  // lists every tree id whose bag differs between the snapshot and
  // `forest` (Lemma 2's lambda(Delta+) and lambda(Delta-)): an id
  // present in `forest` is an insert or update, an id absent from it is
  // a removal. Only the shards owning a changed id are recompiled from
  // `forest`; every other shard is shared with `prev`. The caller must
  // list every differing id -- an unlisted change would be silently
  // missed in a shared shard. Falls back to a full Build when `prev` is
  // empty (there are no shard ranges to route into).
  static std::shared_ptr<const LookupEngine> ApplyDelta(
      const std::shared_ptr<const LookupEngine>& prev,
      const ForestIndex& forest, const std::vector<TreeId>& changed);

  const PqShape& shape() const { return shape_; }
  int size() const { return num_trees_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int64_t posting_entries() const { return posting_entries_; }

  // The process-unique ids of this snapshot's shards, in shard order.
  // A shard shared with a previous epoch (ApplyDelta copy-on-write)
  // keeps its uid; a recompiled or freshly built shard gets a new one.
  // QueryCache keys embed these, which is the whole epoch protocol.
  std::vector<uint64_t> ShardUids() const;

  // Approximate lookup: all trees T with dist(query, T) <= tau, most
  // similar first (ties by tree id) -- bit-identical to
  // ForestIndex::Lookup. With `pool`, shards are scored in parallel;
  // `stats`, when non-null, receives the work counters of this call.
  // With `cache`, per-shard partial results are served from / inserted
  // into it (cached shards contribute no work counters).
  std::vector<LookupResult> Lookup(const PqGramIndex& query, double tau,
                                   ThreadPool* pool = nullptr,
                                   LookupEngineStats* stats = nullptr,
                                   QueryCache* cache = nullptr) const;
  std::vector<LookupResult> Lookup(const Tree& query, double tau,
                                   ThreadPool* pool = nullptr,
                                   LookupEngineStats* stats = nullptr,
                                   QueryCache* cache = nullptr) const;

  // The k most similar trees, most similar first (ties by tree id);
  // identical to ForestIndex::TopK. Sequentially the pruning bound
  // tightens from the current k-th best across shards; with `pool` (or
  // `cache`, whose entries must not depend on cross-shard state),
  // shards compute independent top-k heaps that are merged at the end.
  std::vector<LookupResult> TopK(const PqGramIndex& query, int k,
                                 ThreadPool* pool = nullptr,
                                 LookupEngineStats* stats = nullptr,
                                 QueryCache* cache = nullptr) const;

 private:
  // One posting: tree (as a shard-local slot) and tuple multiplicity.
  // Slots and counts are narrowed to 32 bits for density; the rare
  // count that does not fit stores kWideCount and its exact value lives
  // in the shard's wide_counts side map, so Compile never rejects a
  // legitimate bag and results stay exact.
  struct Entry {
    int32_t slot;
    int32_t count;
  };

  // Sentinel Entry::count for a multiplicity above INT32_MAX (real
  // counts are always positive).
  static constexpr int32_t kWideCount = -1;

  // An independent slice of the forest: dense slots, own posting arena.
  struct Shard {
    // Process-unique id minted at freeze time, never reused. Shards
    // shared across epochs keep theirs; see ShardUids().
    uint64_t uid = 0;
    std::vector<TreeId> tree_ids;             // slot -> tree id (ascending)
    std::vector<int64_t> tree_sizes;          // slot -> |I(T)|
    std::vector<PqGramFingerprint> fps;       // sorted ascending
    std::vector<uint32_t> offsets;            // fps.size() + 1 prefix sums
    std::vector<Entry> entries;               // arena, grouped by fps order
    // Exact values of kWideCount entries, keyed by arena index.
    std::unordered_map<uint32_t, int64_t> wide_counts;

    // The multiplicity of the arena entry at `index`, resolving the
    // kWideCount indirection.
    int64_t EntryCount(size_t index) const {
      int32_t narrow = entries[index].count;
      return narrow != kWideCount
                 ? narrow
                 : wide_counts.at(static_cast<uint32_t>(index));
    }
  };

  // A query tuple after shape validation: fingerprint + multiplicity.
  struct QueryTuple {
    PqGramFingerprint fp;
    int64_t count;
  };

  // A posting during one build: global-slot form before sharding.
  struct RawPosting {
    PqGramFingerprint fp;
    int32_t slot;
    int64_t count;
  };

  LookupEngine() = default;

  static std::shared_ptr<const LookupEngine> Compile(
      const PqShape& shape, const std::vector<TreeId>& tree_ids,
      const std::vector<int64_t>& tree_sizes, std::vector<RawPosting> raw,
      int num_shards);

  // Freezes one shard's posting arena from its local-slot raw postings
  // (sorts by (fp, slot), builds fps/offsets/entries with the wide-count
  // spill). tree_ids/tree_sizes must already be filled in.
  static void FreezeShard(Shard* shard, std::vector<RawPosting> part);

  static std::vector<QueryTuple> QueryTuples(const PqGramIndex& query);

  // 128-bit cache fingerprint of (op, param, query size, sorted query
  // tuples). `op` separates Lookup from TopK keys; `param` carries the
  // tau bit pattern or k.
  static QueryFingerprint FingerprintQuery(
      const std::vector<QueryTuple>& tuples, int64_t query_size,
      uint64_t op, uint64_t param);

  // Scores one shard for Lookup: accumulates overlaps rarest-first with
  // the tau-derived count filter and appends qualifying results.
  void ScoreShard(const Shard& shard, const std::vector<QueryTuple>& tuples,
                  int64_t query_size, double tau,
                  std::vector<LookupResult>* out,
                  LookupEngineStats* stats) const;

  // Scores one shard for TopK into `heap` (worst-first heap of size <=
  // k), pruning against the heap's current worst entry.
  void ScoreShardTopK(const Shard& shard,
                      const std::vector<QueryTuple>& tuples,
                      int64_t query_size, int k,
                      std::vector<LookupResult>* heap,
                      LookupEngineStats* stats) const;

  PqShape shape_;
  int num_trees_ = 0;
  int64_t posting_entries_ = 0;
  // Shards are individually refcounted so ApplyDelta can share the
  // untouched ones between consecutive snapshot epochs.
  std::vector<std::shared_ptr<const Shard>> shards_;
};

}  // namespace pqidx

#endif  // PQIDX_CORE_LOOKUP_ENGINE_H_
