// Inverted postings over a forest's pq-gram label-tuples: a lookup
// accelerator beyond the paper.
//
// The plain ForestIndex::Lookup intersects the query bag with every tree's
// bag, so a lookup costs the sum of all distinct-tuple counts in the
// forest. This index inverts the relation (treeId, pqg, cnt) into
// pqg -> [(treeId, cnt)] postings: a lookup only touches the postings of
// the query's own tuples, i.e. work proportional to the actual overlap --
// dissimilar trees are never visited. Results are identical to the scan.
//
// The structure stays incrementally maintainable: UpdateTree consumes the
// same lambda(Delta+) / lambda(Delta-) bags that Algorithm 1 produces.

#ifndef PQIDX_CORE_INVERTED_INDEX_H_
#define PQIDX_CORE_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "edit/edit_log.h"
#include "tree/tree.h"

namespace pqidx {

class InvertedForestIndex {
 public:
  struct Posting {
    TreeId tree_id;
    int64_t count;
  };
  explicit InvertedForestIndex(PqShape shape = PqShape{}) : shape_(shape) {
    PQIDX_CHECK(shape.Valid());
  }

  // Builds the postings from an existing forest index.
  explicit InvertedForestIndex(const ForestIndex& forest);

  const PqShape& shape() const { return shape_; }
  int size() const { return static_cast<int>(tree_sizes_.size()); }

  // Adds / replaces a tree's bag.
  void AddIndex(TreeId id, const PqGramIndex& index);
  void AddTree(TreeId id, const Tree& tree);
  bool RemoveTree(TreeId id);

  // Incremental maintenance: applies the I+ / I- bags of one updateIndex
  // run (paper Algorithm 1) to tree `id`. Equivalent to re-adding the
  // updated bag, but touches only the changed postings.
  Status UpdateTree(TreeId id, const PqGramIndex& plus,
                    const PqGramIndex& minus);

  // Convenience: runs ComputeIndexDeltas on (tn, log) and applies them.
  Status ApplyLog(TreeId id, const Tree& tn, const EditLog& log);

  // Approximate lookup; same results as ForestIndex::Lookup, most similar
  // first. For tau >= 1 every indexed tree qualifies by definition.
  std::vector<LookupResult> Lookup(const PqGramIndex& query,
                                   double tau) const;
  std::vector<LookupResult> Lookup(const Tree& query, double tau) const;

  // The k most similar trees, most similar first (ties by tree id).
  std::vector<LookupResult> TopK(const PqGramIndex& query, int k) const;

  // |I(id)|, or -1 if the tree is unknown.
  int64_t TreeBagSize(TreeId id) const;

  int64_t posting_entries() const { return posting_entries_; }
  int64_t distinct_tuples() const {
    return static_cast<int64_t>(postings_.size());
  }

  // Read access for snapshot compilation (core/lookup_engine.cc) and
  // introspection.
  const std::unordered_map<PqGramFingerprint, std::vector<Posting>>&
  postings() const {
    return postings_;
  }
  const std::unordered_map<TreeId, int64_t>& tree_sizes() const {
    return tree_sizes_;
  }

  // Verifies postings/tree-size/reverse-map consistency. Aborts on
  // violation; tests.
  void CheckConsistency() const;

 private:
  // Adds `delta` (may be negative) to the (fp, id) posting, creating or
  // erasing entries as needed (reverse map maintained alongside).
  Status AdjustPosting(PqGramFingerprint fp, TreeId id, int64_t delta);

  PqShape shape_;
  std::unordered_map<PqGramFingerprint, std::vector<Posting>> postings_;
  std::unordered_map<TreeId, int64_t> tree_sizes_;  // |I(T)| per tree
  // Reverse map: the distinct tuples of each tree, so RemoveTree (and
  // AddIndex's replace path) touches only that tree's own postings
  // instead of sweeping the whole posting table. A tree appears here iff
  // it owns at least one posting (empty bags have no entry).
  std::unordered_map<TreeId, std::unordered_set<PqGramFingerprint>>
      tree_tuples_;
  int64_t posting_entries_ = 0;
};

}  // namespace pqidx

#endif  // PQIDX_CORE_INVERTED_INDEX_H_
