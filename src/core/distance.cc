#include "core/distance.h"

namespace pqidx {

double PqGramDistance(const PqGramIndex& a, const PqGramIndex& b) {
  PQIDX_CHECK_MSG(a.shape() == b.shape(),
                  "pq-gram distance requires equal shapes");
  int64_t union_size = a.size() + b.size();  // |I1 ⊎ I2|
  if (union_size == 0) return 0.0;           // two empty trees
  int64_t intersection = BagIntersectionSize(a, b);
  return 1.0 - 2.0 * static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

double PqGramDistance(const Tree& a, const Tree& b, const PqShape& shape) {
  return PqGramDistance(BuildIndex(a, shape), BuildIndex(b, shape));
}

double PqGramContainment(const PqGramIndex& part, const PqGramIndex& whole) {
  PQIDX_CHECK_MSG(part.shape() == whole.shape(),
                  "pq-gram containment requires equal shapes");
  if (part.size() == 0) return 1.0;
  return static_cast<double>(BagIntersectionSize(part, whole)) /
         static_cast<double>(part.size());
}

double PqGramContainment(const Tree& part, const Tree& whole,
                         const PqShape& shape) {
  return PqGramContainment(BuildIndex(part, shape),
                           BuildIndex(whole, shape));
}

}  // namespace pqidx
