#include "core/join.h"

#include <algorithm>

#include "core/distance.h"

namespace pqidx {
namespace {

void SortPairs(std::vector<JoinResult>* results) {
  std::sort(results->begin(), results->end(),
            [](const JoinResult& a, const JoinResult& b) {
              return a.left < b.left ||
                     (a.left == b.left && a.right < b.right);
            });
}

}  // namespace

std::vector<JoinResult> NestedLoopJoin(const ForestIndex& left,
                                       const ForestIndex& right,
                                       double tau) {
  PQIDX_CHECK(left.shape() == right.shape());
  std::vector<JoinResult> results;
  for (TreeId l : left.TreeIds()) {
    const PqGramIndex* lbag = left.Find(l);
    for (TreeId r : right.TreeIds()) {
      double d = PqGramDistance(*lbag, *right.Find(r));
      if (d <= tau) results.push_back({l, r, d});
    }
  }
  SortPairs(&results);
  return results;
}

std::vector<JoinResult> IndexJoin(const ForestIndex& left,
                                  const InvertedForestIndex& right,
                                  double tau) {
  PQIDX_CHECK(left.shape() == right.shape());
  std::vector<JoinResult> results;
  for (TreeId l : left.TreeIds()) {
    for (const LookupResult& hit : right.Lookup(*left.Find(l), tau)) {
      results.push_back({l, hit.tree_id, hit.distance});
    }
  }
  SortPairs(&results);
  return results;
}

std::vector<JoinResult> IndexJoin(const ForestIndex& left,
                                  const ForestIndex& right, double tau) {
  InvertedForestIndex inverted(right);
  return IndexJoin(left, inverted, tau);
}

std::vector<JoinResult> SelfJoin(const ForestIndex& forest, double tau) {
  InvertedForestIndex inverted(forest);
  std::vector<JoinResult> results;
  for (TreeId l : forest.TreeIds()) {
    for (const LookupResult& hit : inverted.Lookup(*forest.Find(l), tau)) {
      if (hit.tree_id > l) results.push_back({l, hit.tree_id, hit.distance});
    }
  }
  SortPairs(&results);
  return results;
}

}  // namespace pqidx
