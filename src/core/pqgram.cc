#include "core/pqgram.h"

namespace pqidx {

std::string PqGramToString(const PqGram& gram, const LabelDict& dict) {
  // Build a reverse map hash -> label id lazily; dictionaries are small
  // relative to debugging needs.
  std::string out = "(";
  for (size_t i = 0; i < gram.ids.size(); ++i) {
    if (i > 0) out.push_back(',');
    if (gram.ids[i] == kNullNodeId) {
      out.push_back('*');
      continue;
    }
    out += std::to_string(gram.ids[i]);
    out.push_back(':');
    const std::string* found = nullptr;
    for (LabelId l = 0; l < dict.size(); ++l) {
      if (dict.Hash(l) == gram.labels[i]) {
        found = &dict.LabelString(l);
        break;
      }
    }
    out += found != nullptr ? *found : "?";
  }
  out.push_back(')');
  return out;
}

}  // namespace pqidx
