#include "core/delta_store.h"

#include <algorithm>

namespace pqidx {

const PRow* DeltaStore::FindPRow(NodeId anchor) const {
  auto it = p_rows_.find(anchor);
  return it == p_rows_.end() ? nullptr : &it->second;
}

void DeltaStore::InsertPRow(PRow row) {
  PQIDX_CHECK(row.anchor != kNullNodeId);
  PQIDX_CHECK(static_cast<int>(row.ids.size()) == shape_.p &&
              static_cast<int>(row.labels.size()) == shape_.p);
  PQIDX_CHECK(row.ids[shape_.p - 1] == row.anchor);
  auto [it, inserted] = p_rows_.emplace(row.anchor, row);
  if (!inserted) {
    PQIDX_CHECK_MSG(it->second == row,
                    "conflicting p-row for the same anchor");
    return;
  }
  IndexChain(it->second);
  if (row.parent != kNullNodeId) {
    parent_index_[row.parent].insert(row.anchor);
  }
}

void DeltaStore::ErasePRow(NodeId anchor) {
  auto it = p_rows_.find(anchor);
  PQIDX_CHECK_MSG(it != p_rows_.end(), "erase of absent p-row");
  UnindexChain(it->second);
  if (it->second.parent != kNullNodeId) {
    auto pit = parent_index_.find(it->second.parent);
    if (pit != parent_index_.end()) {
      pit->second.erase(anchor);
      if (pit->second.empty()) parent_index_.erase(pit);
    }
  }
  p_rows_.erase(it);
}

void DeltaStore::ReplacePRowChain(NodeId anchor, std::vector<NodeId> ids,
                                  std::vector<LabelHash> labels) {
  auto it = p_rows_.find(anchor);
  PQIDX_CHECK_MSG(it != p_rows_.end(), "chain update of absent p-row");
  PQIDX_CHECK(static_cast<int>(ids.size()) == shape_.p &&
              static_cast<int>(labels.size()) == shape_.p);
  PQIDX_CHECK(ids[shape_.p - 1] == anchor);
  UnindexChain(it->second);
  it->second.ids = std::move(ids);
  it->second.labels = std::move(labels);
  IndexChain(it->second);
}

void DeltaStore::SetPRowLabel(NodeId anchor, int pos, LabelHash label) {
  auto it = p_rows_.find(anchor);
  PQIDX_CHECK_MSG(it != p_rows_.end(), "label update of absent p-row");
  PQIDX_CHECK(pos >= 0 && pos < shape_.p);
  it->second.labels[pos] = label;
}

void DeltaStore::SetPRowParentAndPos(NodeId anchor, NodeId parent,
                                     int sib_pos) {
  auto it = p_rows_.find(anchor);
  PQIDX_CHECK_MSG(it != p_rows_.end(), "parent update of absent p-row");
  if (it->second.parent != parent) {
    if (it->second.parent != kNullNodeId) {
      auto pit = parent_index_.find(it->second.parent);
      if (pit != parent_index_.end()) {
        pit->second.erase(anchor);
        if (pit->second.empty()) parent_index_.erase(pit);
      }
    }
    if (parent != kNullNodeId) parent_index_[parent].insert(anchor);
    it->second.parent = parent;
  }
  it->second.sib_pos = sib_pos;
}

void DeltaStore::SetPRowFanout(NodeId anchor, int fanout) {
  auto it = p_rows_.find(anchor);
  PQIDX_CHECK_MSG(it != p_rows_.end(), "fanout update of absent p-row");
  PQIDX_CHECK(fanout >= 0);
  it->second.fanout = fanout;
}

std::vector<NodeId> DeltaStore::PRowAnchorsContaining(NodeId id) const {
  auto it = chain_index_.find(id);
  if (it == chain_index_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<NodeId> DeltaStore::ChildAnchorsOf(NodeId v) const {
  auto it = parent_index_.find(v);
  if (it == parent_index_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

const std::map<int, QRow>* DeltaStore::QRowsOf(NodeId anchor) const {
  auto it = q_rows_.find(anchor);
  return it == q_rows_.end() ? nullptr : &it->second;
}

const QRow* DeltaStore::FindQRow(NodeId anchor, int row) const {
  auto it = q_rows_.find(anchor);
  if (it == q_rows_.end()) return nullptr;
  auto rit = it->second.find(row);
  return rit == it->second.end() ? nullptr : &rit->second;
}

void DeltaStore::InsertQRow(NodeId anchor, QRow row) {
  PQIDX_CHECK(anchor != kNullNodeId);
  PQIDX_CHECK(static_cast<int>(row.ids.size()) == shape_.q &&
              static_cast<int>(row.labels.size()) == shape_.q);
  auto [it, inserted] = q_rows_[anchor].emplace(row.row, row);
  if (!inserted) {
    PQIDX_CHECK_MSG(it->second == row,
                    "conflicting q-row for the same (anchor, row)");
    return;
  }
  ++q_row_count_;
}

void DeltaStore::EraseQRow(NodeId anchor, int row) {
  auto it = q_rows_.find(anchor);
  PQIDX_CHECK_MSG(it != q_rows_.end(), "erase of absent q-row (anchor)");
  size_t erased = it->second.erase(row);
  PQIDX_CHECK_MSG(erased == 1, "erase of absent q-row (row)");
  q_row_count_ -= static_cast<int64_t>(erased);
  if (it->second.empty()) q_rows_.erase(it);
}

void DeltaStore::EraseAllQRows(NodeId anchor) {
  auto it = q_rows_.find(anchor);
  if (it == q_rows_.end()) return;
  q_row_count_ -= static_cast<int64_t>(it->second.size());
  q_rows_.erase(it);
}

void DeltaStore::SetQRowEntry(NodeId anchor, int row, int col, NodeId id,
                              LabelHash label) {
  auto it = q_rows_.find(anchor);
  PQIDX_CHECK_MSG(it != q_rows_.end(), "entry update of absent q-row");
  auto rit = it->second.find(row);
  PQIDX_CHECK_MSG(rit != it->second.end(), "entry update of absent q-row");
  PQIDX_CHECK(col >= 0 && col < shape_.q);
  rit->second.ids[col] = id;
  rit->second.labels[col] = label;
}

void DeltaStore::RenumberQRows(NodeId anchor, int from_row, int delta) {
  if (delta == 0) return;
  auto it = q_rows_.find(anchor);
  if (it == q_rows_.end()) return;
  std::map<int, QRow>& rows = it->second;
  std::vector<QRow> moved;
  for (auto rit = rows.lower_bound(from_row); rit != rows.end();) {
    moved.push_back(std::move(rit->second));
    rit = rows.erase(rit);
  }
  for (QRow& row : moved) {
    row.row += delta;
    PQIDX_CHECK(row.row >= 0);
    bool inserted = rows.emplace(row.row, std::move(row)).second;
    PQIDX_CHECK_MSG(inserted, "q-row renumbering collision");
  }
}

void DeltaStore::IndexChain(const PRow& row) {
  for (NodeId id : row.ids) {
    if (id != kNullNodeId) chain_index_[id].insert(row.anchor);
  }
}

void DeltaStore::UnindexChain(const PRow& row) {
  for (NodeId id : row.ids) {
    if (id == kNullNodeId) continue;
    auto it = chain_index_.find(id);
    if (it == chain_index_.end()) continue;
    it->second.erase(row.anchor);
    if (it->second.empty()) chain_index_.erase(it);
  }
}

void DeltaStore::CheckConsistency() const {
  // Every chain entry is indexed, and every index entry is backed by a row.
  int64_t q_count = 0;
  for (const auto& [anchor, rows] : q_rows_) {
    q_count += static_cast<int64_t>(rows.size());
    for (const auto& [row_idx, row] : rows) {
      PQIDX_CHECK(row.row == row_idx);
      PQIDX_CHECK(static_cast<int>(row.ids.size()) == shape_.q);
    }
  }
  PQIDX_CHECK(q_count == q_row_count_);
  for (const auto& [anchor, row] : p_rows_) {
    PQIDX_CHECK(row.anchor == anchor);
    PQIDX_CHECK(row.ids[shape_.p - 1] == anchor);
    for (NodeId id : row.ids) {
      if (id == kNullNodeId) continue;
      auto it = chain_index_.find(id);
      PQIDX_CHECK(it != chain_index_.end() && it->second.contains(anchor));
    }
    if (row.parent != kNullNodeId) {
      auto it = parent_index_.find(row.parent);
      PQIDX_CHECK(it != parent_index_.end() && it->second.contains(anchor));
    }
  }
  for (const auto& [id, anchors] : chain_index_) {
    for (NodeId anchor : anchors) {
      auto it = p_rows_.find(anchor);
      PQIDX_CHECK(it != p_rows_.end());
      PQIDX_CHECK(std::find(it->second.ids.begin(), it->second.ids.end(),
                            id) != it->second.ids.end());
    }
  }
  for (const auto& [parent, anchors] : parent_index_) {
    for (NodeId anchor : anchors) {
      auto it = p_rows_.find(anchor);
      PQIDX_CHECK(it != p_rows_.end() && it->second.parent == parent);
    }
  }
}

}  // namespace pqidx
