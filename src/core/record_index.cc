#include "core/record_index.h"

#include "core/join.h"

namespace pqidx {
namespace {

RecordPredicate DefaultPredicate(const Tree& doc) {
  NodeId root = doc.root();
  return [root](const Tree& tree, NodeId n) {
    return tree.parent(n) == root;
  };
}

}  // namespace

std::vector<NodeId> SelectRecordRoots(const Tree& doc,
                                      const RecordPredicate& predicate) {
  std::vector<NodeId> records;
  if (doc.root() == kNullNodeId) return records;
  // Document-order walk that does not descend into selected records.
  std::vector<NodeId> stack{doc.root()};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    if (n != doc.root() && predicate(doc, n)) {
      records.push_back(n);
      continue;  // records do not nest
    }
    auto kids = doc.children(n);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return records;
}

Tree ExtractRecord(const Tree& doc, NodeId record_root) {
  PQIDX_CHECK(doc.Contains(record_root));
  Tree record(doc.dict_ptr());
  record.CreateRoot(doc.label(record_root));
  struct Frame {
    NodeId src;
    NodeId dst;
    size_t child = 0;
  };
  std::vector<Frame> stack{{record_root, record.root()}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto kids = doc.children(frame.src);
    if (frame.child < kids.size()) {
      NodeId next = kids[frame.child++];
      stack.push_back({next, record.AddChild(frame.dst, doc.label(next))});
      continue;
    }
    stack.pop_back();
  }
  return record;
}

ForestIndex BuildRecordIndex(const Tree& doc, const PqShape& shape,
                             const RecordPredicate& predicate) {
  const RecordPredicate& pred =
      predicate ? predicate : DefaultPredicate(doc);
  ForestIndex forest(shape);
  for (NodeId record_root : SelectRecordRoots(doc, pred)) {
    // Build the bag without materializing a copy: the record's pq-grams
    // are the subtree's pq-grams with the ancestor chain cut at the
    // record root, which is what ExtractRecord's standalone tree yields.
    forest.AddTree(static_cast<TreeId>(record_root),
                   ExtractRecord(doc, record_root));
  }
  return forest;
}

std::vector<std::pair<std::pair<NodeId, NodeId>, double>>
FindSimilarRecordPairs(const Tree& doc, const PqShape& shape, double tau,
                       const RecordPredicate& predicate) {
  ForestIndex forest = BuildRecordIndex(doc, shape, predicate);
  std::vector<std::pair<std::pair<NodeId, NodeId>, double>> pairs;
  for (const JoinResult& hit : SelfJoin(forest, tau)) {
    pairs.push_back({{static_cast<NodeId>(hit.left),
                      static_cast<NodeId>(hit.right)},
                     hit.distance});
  }
  return pairs;
}

}  // namespace pqidx
