// The pq-gram distance (paper Section 3.2, after Augsten et al., VLDB'05):
//
//   dist(T, T') = 1 - 2 * |I(T) bag-intersect I(T')| / |I(T) bag-union I(T')|
//
// A pseudo-metric in [0, 1]: 0 for trees with identical indexes, 1 for
// trees sharing no pq-grams. It approximates (and for unit costs lower
// bounds the effect of) the tree edit distance: few edit operations touch
// few pq-grams.

#ifndef PQIDX_CORE_DISTANCE_H_
#define PQIDX_CORE_DISTANCE_H_

#include "core/pqgram_index.h"
#include "tree/tree.h"

namespace pqidx {

// Distance between two prebuilt indexes. Shapes must match. O(min distinct
// sizes) expected time.
double PqGramDistance(const PqGramIndex& a, const PqGramIndex& b);

// Convenience: builds both indexes (the expensive part, per the paper's
// Section 9.1) and compares them.
double PqGramDistance(const Tree& a, const Tree& b, const PqShape& shape);

// Containment score |I(part) bag-intersect I(whole)| / |I(part)| in
// [0, 1]: how much of `part`'s pq-gram bag also occurs in `whole`. Near 1
// when `part` appears (approximately) as a fragment of `whole`, even if
// `whole` is much larger -- the asymmetric counterpart of the distance
// for sub-document search. 1.0 for an empty `part` bag.
double PqGramContainment(const PqGramIndex& part, const PqGramIndex& whole);
double PqGramContainment(const Tree& part, const Tree& whole,
                         const PqShape& shape);

}  // namespace pqidx

#endif  // PQIDX_CORE_DISTANCE_H_
