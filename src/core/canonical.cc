#include "core/canonical.h"

#include <algorithm>
#include <unordered_map>

#include "core/distance.h"

namespace pqidx {
namespace {

uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Bottom-up canonical fingerprints for every node of the tree.
// Iterative post-order (trees can be deep).
std::unordered_map<NodeId, uint64_t> AllCanonicalFingerprints(
    const Tree& tree) {
  std::unordered_map<NodeId, uint64_t> fp;
  if (tree.root() == kNullNodeId) return fp;
  struct Frame {
    NodeId node;
    size_t child = 0;
  };
  std::vector<Frame> stack{{tree.root()}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    auto kids = tree.children(frame.node);
    if (frame.child < kids.size()) {
      stack.push_back({kids[frame.child++]});
      continue;
    }
    // Children done: combine their fingerprints order-independently by
    // sorting them first.
    std::vector<uint64_t> child_fps;
    child_fps.reserve(kids.size());
    for (NodeId c : kids) child_fps.push_back(fp.at(c));
    std::sort(child_fps.begin(), child_fps.end());
    uint64_t hash = Mix(tree.LabelHashOf(frame.node) ^
                        0x9e3779b97f4a7c15ULL * (child_fps.size() + 1));
    for (uint64_t child_fp : child_fps) {
      hash = Mix(hash ^ Mix(child_fp + 0x9e3779b97f4a7c15ULL));
    }
    fp.emplace(frame.node, hash);
    stack.pop_back();
  }
  return fp;
}

// Sorted-children comparator under precomputed fingerprints.
struct CanonicalLess {
  const Tree* tree;
  const std::unordered_map<NodeId, uint64_t>* fp;

  bool operator()(NodeId a, NodeId b) const {
    LabelHash la = tree->LabelHashOf(a);
    LabelHash lb = tree->LabelHashOf(b);
    if (la != lb) return la < lb;
    // Equal fingerprints mean equal unordered subtrees: their relative
    // order cannot change the profile, so no further tie-break is needed.
    return fp->at(a) < fp->at(b);
  }
};

}  // namespace

uint64_t CanonicalSubtreeFingerprint(const Tree& tree, NodeId n) {
  PQIDX_CHECK(tree.Contains(n));
  return AllCanonicalFingerprints(tree).at(n);
}

std::vector<NodeId> CanonicalChildOrder(const Tree& tree, NodeId n) {
  PQIDX_CHECK(tree.Contains(n));
  auto fp = AllCanonicalFingerprints(tree);
  auto kids = tree.children(n);
  std::vector<NodeId> sorted(kids.begin(), kids.end());
  std::sort(sorted.begin(), sorted.end(), CanonicalLess{&tree, &fp});
  return sorted;
}

PqGramIndex BuildCanonicalIndex(const Tree& tree, const PqShape& shape) {
  PQIDX_CHECK(shape.Valid());
  PqGramIndex index(shape);
  if (tree.root() == kNullNodeId) return index;
  auto fp = AllCanonicalFingerprints(tree);
  CanonicalLess less{&tree, &fp};

  const int p = shape.p;
  const int q = shape.q;
  std::vector<LabelHash> labels(static_cast<size_t>(p) + q,
                                kNullLabelHash);
  // Pre-order over the canonical view; the p-part (ancestor chain) is
  // order-independent, so only the q-part windows change.
  tree.PreOrder([&](NodeId anchor) {
    NodeId cur = anchor;
    for (int j = p - 1; j >= 0; --j) {
      labels[j] = cur == kNullNodeId ? kNullLabelHash
                                     : tree.LabelHashOf(cur);
      if (cur != kNullNodeId) cur = tree.parent(cur);
    }
    auto kids = tree.children(anchor);
    if (kids.empty()) {
      for (int j = 0; j < q; ++j) labels[p + j] = kNullLabelHash;
      index.Add(FingerprintLabelTuple(labels.data(), p + q));
      return;
    }
    std::vector<NodeId> sorted(kids.begin(), kids.end());
    std::sort(sorted.begin(), sorted.end(), less);
    const int f = static_cast<int>(sorted.size());
    for (int r = 0; r < f + q - 1; ++r) {
      for (int j = 0; j < q; ++j) {
        int pos = r - q + 1 + j;
        labels[p + j] = (pos < 0 || pos >= f)
                            ? kNullLabelHash
                            : tree.LabelHashOf(sorted[pos]);
      }
      index.Add(FingerprintLabelTuple(labels.data(), p + q));
    }
  });
  return index;
}

double CanonicalPqGramDistance(const Tree& a, const Tree& b,
                               const PqShape& shape) {
  return PqGramDistance(BuildCanonicalIndex(a, shape),
                        BuildCanonicalIndex(b, shape));
}

}  // namespace pqidx
