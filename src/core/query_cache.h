// Epoch-keyed query-result cache for the lookup read path.
//
// Caches per-(query, engine-shard) partial results so repeated queries
// skip scoring entirely. The granularity is deliberate: LookupEngine
// snapshots evolve by copy-on-write (`ApplyDelta` recompiles only the
// shards a commit touched and shares every other shard with the
// previous epoch), and each compiled shard carries a process-unique id
// (`uid`) minted at freeze time. Cache keys embed that uid, so the
// epoch protocol falls out of the snapshot lifecycle with no
// invalidation hooks on the hot path:
//
//   * an incremental publish keeps every untouched shard's uid alive --
//     entries for those shards stay warm and keep hitting;
//   * a recompiled shard gets a fresh uid -- entries for its
//     predecessor can never match again (uids are never reused, so
//     there is no ABA across epochs);
//   * a full rebuild mints all-new uids -- the whole cache goes cold
//     wholesale.
//
// Dead entries are reclaimed by OnPublish(live_uids): the publisher
// passes the new snapshot's uid set and the cache drops (and counts as
// stale) everything outside it. Reclamation is an optimization only;
// correctness needs nothing beyond the uid match.
//
// The cache is sharded by key hash: each internal shard is an
// independently locked LRU map with a byte budget, so concurrent
// readers rarely contend. Hit/miss/evict/stale counters are wait-free
// relaxed atomics mirrored into the process metrics registry
// ("query_cache.*"), which is how `pqidx stats` surfaces them.
//
// Results cached for a shard uid are immutable once inserted (the
// engine's partial results for a frozen shard are deterministic), so a
// hit copies the vector out and never returns references into the map.

#ifndef PQIDX_CORE_QUERY_CACHE_H_
#define PQIDX_CORE_QUERY_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "core/forest_index.h"

namespace pqidx {

// 128-bit fingerprint of one query + its parameters (tau or k, lookup
// vs top-k). Two lanes of independent mixing make an accidental
// collision astronomically unlikely; both lanes are compared on hit.
struct QueryFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

class QueryCache {
 public:
  struct Options {
    // Total byte budget across all internal shards (entries' result
    // payloads plus bookkeeping overhead).
    size_t max_bytes = size_t{32} << 20;
  };

  explicit QueryCache(const Options& options);
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // Copies the cached partial results for (query, engine shard `uid`)
  // into `out` and returns true; false on miss (`out` untouched).
  bool Get(const QueryFingerprint& fp, uint64_t uid,
           std::vector<LookupResult>* out);

  // Inserts the partial results for (query, engine shard `uid`),
  // evicting least-recently-used entries past the byte budget. An entry
  // already present is left as-is (both sides computed the same value).
  void Put(const QueryFingerprint& fp, uint64_t uid,
           const std::vector<LookupResult>& results);

  // Reclaims entries whose shard uid is not in `live_uids` (ascending
  // order not required), counting them as stale. Publishers call this
  // after swapping in a snapshot; a full rebuild's all-new uid set
  // empties the cache wholesale.
  void OnPublish(const std::vector<uint64_t>& live_uids);

  // Drops everything (counted as stale).
  void Clear();

  size_t max_bytes() const { return max_bytes_; }

  // Wait-free counter reads (mirrored in the metrics registry as
  // query_cache.hits / misses / evictions / stale).
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  int64_t stale() const { return stale_.load(std::memory_order_relaxed); }
  int64_t entries() const {
    return entries_.load(std::memory_order_relaxed);
  }
  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  struct Key {
    uint64_t lo;
    uint64_t hi;
    uint64_t uid;

    bool operator==(const Key& other) const {
      return lo == other.lo && hi == other.hi && uid == other.uid;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // The fingerprint lanes are already well mixed; fold in the uid.
      uint64_t h = k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL) ^
                   (k.uid * 0xbf58476d1ce4e5b9ULL);
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  struct Entry {
    Key key;
    std::vector<LookupResult> results;
    size_t bytes = 0;
  };

  // One independently locked LRU map. list front = most recent.
  struct Shard {
    Mutex mutex;
    std::list<Entry> lru PQIDX_GUARDED_BY(mutex);
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map
        PQIDX_GUARDED_BY(mutex);
    size_t bytes PQIDX_GUARDED_BY(mutex) = 0;
  };

  static constexpr size_t kNumShards = 16;

  static size_t EntryBytes(const std::vector<LookupResult>& results);
  Shard& ShardFor(const Key& key);

  const size_t max_bytes_;
  const size_t shard_budget_;
  std::vector<Shard> shards_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> stale_{0};
  std::atomic<int64_t> entries_{0};
  std::atomic<int64_t> bytes_{0};
};

}  // namespace pqidx

#endif  // PQIDX_CORE_QUERY_CACHE_H_
