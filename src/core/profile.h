// pq-gram profile computation (paper Definition 2).
//
// The profile of a tree is the set of all its pq-grams. ForEachPqGram
// enumerates them in a single O(|T|·(p+q)) pass without materializing
// anything; ComputeProfile materializes them for tests and reference
// computations; ComputeProfileBruteForce is an intentionally naive
// implementation straight from Definition 1, used to cross-validate the
// fast path.

#ifndef PQIDX_CORE_PROFILE_H_
#define PQIDX_CORE_PROFILE_H_

#include <set>
#include <vector>

#include "core/pqgram.h"
#include "tree/tree.h"

namespace pqidx {

// Invokes `fn(const PqGramView&)` for every pq-gram of `tree` (see
// PqGramView in core/pqgram.h). Empty trees
// produce nothing.
template <typename Fn>
void ForEachPqGram(const Tree& tree, const PqShape& shape, Fn&& fn);

// Materializes the profile (set semantics; every enumerated pq-gram is
// distinct by construction).
std::vector<PqGram> ComputeProfile(const Tree& tree, const PqShape& shape);

// As ComputeProfile, but as an ordered set keyed by node content. Useful
// for the set algebra in tests (P_j \ P_i etc.).
std::set<PqGram> ComputeProfileSet(const Tree& tree, const PqShape& shape);

// Reference implementation following Definition 1 literally: explicitly
// null-extends each node's ancestor chain and child list. Quadratic-ish
// constants; tests only.
std::vector<PqGram> ComputeProfileBruteForce(const Tree& tree,
                                             const PqShape& shape);

// Number of pq-grams of `tree` without enumerating them:
// sum over nodes (leaf ? 1 : fanout + q - 1).
int64_t ProfileSize(const Tree& tree, const PqShape& shape);

// --- implementation ---------------------------------------------------------

template <typename Fn>
void ForEachPqGram(const Tree& tree, const PqShape& shape, Fn&& fn) {
  PQIDX_CHECK(shape.Valid());
  if (tree.root() == kNullNodeId) return;
  const int p = shape.p;
  const int q = shape.q;
  std::vector<NodeId> ids(static_cast<size_t>(p) + q, kNullNodeId);
  std::vector<LabelHash> labels(static_cast<size_t>(p) + q, kNullLabelHash);

  tree.PreOrder([&](NodeId anchor) {
    // p-part: walk the ancestor chain; ids[p-1] is the anchor.
    NodeId cur = anchor;
    for (int j = p - 1; j >= 0; --j) {
      ids[j] = cur;
      labels[j] = cur == kNullNodeId ? kNullLabelHash : tree.LabelHashOf(cur);
      if (cur != kNullNodeId) cur = tree.parent(cur);
    }
    PqGramView view{anchor, 0, ids.data(), labels.data()};
    auto kids = tree.children(anchor);
    if (kids.empty()) {
      for (int j = 0; j < q; ++j) {
        ids[p + j] = kNullNodeId;
        labels[p + j] = kNullLabelHash;
      }
      view.row = 0;
      fn(static_cast<const PqGramView&>(view));
      return;
    }
    const int f = static_cast<int>(kids.size());
    // Row r covers child positions [r-q+1, r].
    for (int r = 0; r < f + q - 1; ++r) {
      for (int j = 0; j < q; ++j) {
        int pos = r - q + 1 + j;
        if (pos < 0 || pos >= f) {
          ids[p + j] = kNullNodeId;
          labels[p + j] = kNullLabelHash;
        } else {
          ids[p + j] = kids[pos];
          labels[p + j] = tree.LabelHashOf(kids[pos]);
        }
      }
      view.row = r;
      fn(static_cast<const PqGramView&>(view));
    }
  });
}

}  // namespace pqidx

#endif  // PQIDX_CORE_PROFILE_H_
