#include "core/forest_index.h"

#include <algorithm>
#include <cstdint>

#include "core/distance.h"
#include "core/incremental.h"

namespace pqidx {

void ForestIndex::AddTree(TreeId id, const Tree& tree) {
  AddIndex(id, BuildIndex(tree, shape_));
}

void ForestIndex::AddIndex(TreeId id, PqGramIndex index) {
  PQIDX_CHECK_MSG(index.shape() == shape_,
                  "index shape does not match forest shape");
  indexes_.insert_or_assign(id, std::move(index));
}

bool ForestIndex::RemoveTree(TreeId id) { return indexes_.erase(id) > 0; }

const PqGramIndex* ForestIndex::Find(TreeId id) const {
  auto it = indexes_.find(id);
  return it == indexes_.end() ? nullptr : &it->second;
}

Status ForestIndex::ApplyLog(TreeId id, const Tree& tn, const EditLog& log) {
  auto it = indexes_.find(id);
  if (it == indexes_.end()) {
    return NotFoundError("no index for tree " + std::to_string(id));
  }
  return UpdateIndex(&it->second, tn, log);
}

std::vector<LookupResult> ForestIndex::Lookup(const PqGramIndex& query,
                                              double tau) const {
  std::vector<LookupResult> results;
  for (const auto& [id, index] : indexes_) {
    double d = PqGramDistance(query, index);
    if (d <= tau) results.push_back({id, d});
  }
  std::sort(results.begin(), results.end(),
            [](const LookupResult& a, const LookupResult& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.tree_id < b.tree_id);
            });
  return results;
}

std::vector<LookupResult> ForestIndex::Lookup(const Tree& query,
                                              double tau) const {
  return Lookup(BuildIndex(query, shape_), tau);
}

std::vector<LookupResult> ForestIndex::TopK(const PqGramIndex& query,
                                            int k) const {
  std::vector<LookupResult> all = Lookup(query, 1.0);
  if (k < static_cast<int>(all.size())) {
    all.resize(static_cast<size_t>(k < 0 ? 0 : k));
  }
  return all;
}

std::vector<LookupResult> ForestIndex::TopK(const Tree& query,
                                            int k) const {
  return TopK(BuildIndex(query, shape_), k);
}

std::vector<TreeId> ForestIndex::TreeIds() const {
  std::vector<TreeId> ids;
  ids.reserve(indexes_.size());
  for (const auto& [id, index] : indexes_) ids.push_back(id);
  return ids;
}

int64_t ForestIndex::SerializedBytes() const {
  ByteWriter writer;
  Serialize(&writer);
  return static_cast<int64_t>(writer.data().size());
}

void ForestIndex::Serialize(ByteWriter* writer) const {
  writer->PutU8(static_cast<uint8_t>(shape_.p));
  writer->PutU8(static_cast<uint8_t>(shape_.q));
  writer->PutVarint(indexes_.size());
  for (const auto& [id, index] : indexes_) {
    writer->PutVarint(static_cast<uint64_t>(id));
    index.Serialize(writer);
  }
}

StatusOr<ForestIndex> ForestIndex::Deserialize(ByteReader* reader) {
  uint8_t p, q;
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&p));
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&q));
  if (p < 1 || q < 1) return DataLossError("bad forest index shape");
  ForestIndex forest(PqShape{p, q});
  uint64_t count;
  PQIDX_RETURN_IF_ERROR(reader->GetVarint(&count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id;
    PQIDX_RETURN_IF_ERROR(reader->GetVarint(&id));
    // Tree ids are int32; anything wider is corrupt, and a narrowing cast
    // would silently collide distinct trees.
    if (id > static_cast<uint64_t>(INT32_MAX)) {
      return DataLossError("tree id overflows int32 in serialized forest");
    }
    StatusOr<PqGramIndex> index = PqGramIndex::Deserialize(reader);
    PQIDX_RETURN_IF_ERROR(index.status());
    if (!(index->shape() == forest.shape_)) {
      return DataLossError("per-tree index shape mismatch");
    }
    forest.AddIndex(static_cast<TreeId>(id), *std::move(index));
  }
  return forest;
}

}  // namespace pqidx
