#include "core/delta.h"

#include <algorithm>
#include <vector>

namespace pqidx {
namespace {

// Inserts Q-rows [from, to] of node `n` (clamped to the rows that exist).
// For a leaf the single all-null row 0 is inserted regardless of the
// requested range (the paper's Q^{k..m}(leaf) = (*..*) special case).
int64_t AddQRowRange(const Tree& tree, NodeId n, int from, int to,
                     const PqShape& shape, DeltaStore* store) {
  int64_t added = 0;
  if (tree.IsLeaf(n)) {
    if (store->FindQRow(n, 0) == nullptr) {
      store->InsertQRow(n, MakeQRow(tree, n, 0, shape));
      ++added;
    }
    return added;
  }
  int max_row = tree.fanout(n) + shape.q - 2;
  from = std::max(from, 0);
  to = std::min(to, max_row);
  for (int r = from; r <= to; ++r) {
    if (store->FindQRow(n, r) == nullptr) {
      store->InsertQRow(n, MakeQRow(tree, n, r, shape));
      ++added;
    }
  }
  return added;
}

int64_t AddAllQRows(const Tree& tree, NodeId n, const PqShape& shape,
                    DeltaStore* store) {
  return AddQRowRange(tree, n, 0, tree.fanout(n) + shape.q - 2, shape,
                      store);
}

void AddPRow(const Tree& tree, NodeId n, const PqShape& shape,
             DeltaStore* store) {
  if (store->FindPRow(n) == nullptr) {
    store->InsertPRow(MakePRow(tree, n, shape));
  }
}

}  // namespace

PRow MakePRow(const Tree& tree, NodeId n, const PqShape& shape) {
  PRow row;
  row.anchor = n;
  row.parent = tree.parent(n);
  row.sib_pos = tree.SiblingIndex(n);
  row.fanout = tree.fanout(n);
  row.ids.assign(static_cast<size_t>(shape.p), kNullNodeId);
  row.labels.assign(static_cast<size_t>(shape.p), kNullLabelHash);
  NodeId cur = n;
  for (int j = shape.p - 1; j >= 0 && cur != kNullNodeId; --j) {
    row.ids[j] = cur;
    row.labels[j] = tree.LabelHashOf(cur);
    cur = tree.parent(cur);
  }
  return row;
}

QRow MakeQRow(const Tree& tree, NodeId n, int row, const PqShape& shape) {
  QRow out;
  out.row = row;
  out.ids.assign(static_cast<size_t>(shape.q), kNullNodeId);
  out.labels.assign(static_cast<size_t>(shape.q), kNullLabelHash);
  if (tree.IsLeaf(n)) {
    PQIDX_CHECK(row == 0);
    return out;
  }
  int f = tree.fanout(n);
  PQIDX_CHECK(row >= 0 && row <= f + shape.q - 2);
  for (int j = 0; j < shape.q; ++j) {
    int pos = row - shape.q + 1 + j;
    if (pos >= 0 && pos < f) {
      NodeId c = tree.child(n, pos);
      out.ids[j] = c;
      out.labels[j] = tree.LabelHashOf(c);
    }
  }
  return out;
}

// Follows Algorithm 2's relational reading: select the rows that exist in
// Tn for the operation's node references, without first checking that the
// operation as a whole is applicable. This yields a *superset* of the
// paper's Definition 4 delta when a later log operation has shrunk the
// context (e.g. an INS whose adopted-child range exceeds the fanout in Tn
// still fetches the children that do exist). The superset is required for
// correctness -- Definition 4's empty delta loses pq-grams from Delta+ in
// exactly that case -- and is harmless: extra pq-grams lie in the
// invariant set C_n, pass through every update step with their content
// untouched, and cancel between lambda(Delta+) and lambda(Delta-) in the
// final bag update (see DESIGN.md, "Clamped delta semantics").
int64_t ComputeDelta(const Tree& tn, const EditOperation& inverse_op,
                     DeltaStore* store) {
  const PqShape& shape = store->shape();
  int64_t added = 0;
  std::vector<NodeId> descendants;
  switch (inverse_op.kind) {
    case EditOpKind::kRename:
    case EditOpKind::kDelete: {
      NodeId n = inverse_op.node;
      // Node vanished from Tn (a later operation deleted it): nothing to
      // select; the later operation's delta covers the region.
      if (!tn.Contains(n) || n == tn.root()) return 0;
      NodeId v = tn.parent(n);
      int k = tn.SiblingIndex(n);
      AddPRow(tn, v, shape, store);
      added += AddQRowRange(tn, v, k, k + shape.q - 1, shape, store);
      tn.DescendantsWithin(n, shape.p - 1, &descendants);
      for (NodeId x : descendants) {
        AddPRow(tn, x, shape, store);
        added += AddAllQRows(tn, x, shape, store);
      }
      break;
    }
    case EditOpKind::kInsert: {
      NodeId v = inverse_op.parent;
      if (!tn.Contains(v)) return 0;
      if (inverse_op.node >= 1 && tn.Contains(inverse_op.node)) {
        // The id to insert is still alive in Tn: only possible when node
        // ids are recycled, which the log discipline forbids.
        return 0;
      }
      AddPRow(tn, v, shape, store);
      if (!inverse_op.anchored) {
        // Positional selection, clamped to what exists in Tn. Only exact
        // when no later log operation shuffled v's child list; logs
        // recorded through InverseOn always carry id anchors instead.
        int k = inverse_op.position;
        int count = inverse_op.count;
        added +=
            AddQRowRange(tn, v, k, k + count + shape.q - 2, shape, store);
        int clamped_count = std::min(count, std::max(0, tn.fanout(v) - k));
        for (int i = 0; i < clamped_count; ++i) {
          tn.DescendantsWithin(tn.child(v, k + i), shape.p - 2,
                               &descendants);
        }
      } else if (inverse_op.adopted_ids.empty()) {
        // Leaf insertion: the affected rows are the windows spanning the
        // insertion gap, located through the recorded neighbor ids (their
        // Tn positions are authoritative; the recorded position is not).
        if (tn.IsLeaf(v)) {
          added += AddQRowRange(tn, v, 0, 0, shape, store);
        } else {
          const NodeId left = inverse_op.left_neighbor;
          const NodeId right = inverse_op.right_neighbor;
          int lo = -1, hi = -1;
          auto note_edge = [&](int edge) {
            lo = lo < 0 ? edge : std::min(lo, edge);
            hi = hi < 0 ? edge : std::max(hi, edge);
          };
          if (left == kNullNodeId) {
            note_edge(0);
          } else if (tn.Contains(left) && tn.parent(left) == v) {
            note_edge(tn.SiblingIndex(left) + 1);
          }
          if (right == kNullNodeId) {
            note_edge(tn.fanout(v));
          } else if (tn.Contains(right) && tn.parent(right) == v) {
            note_edge(tn.SiblingIndex(right));
          }
          // Both neighbors gone from v: the operations that removed them
          // cover the region, nothing to select here.
          if (lo >= 0) {
            added += AddQRowRange(tn, v, lo, hi + shape.q - 2, shape, store);
          }
        }
      } else {
        // Adopting insertion: the affected rows are the windows touching
        // an adopted child (the node set C of Lemma 1), located by id.
        // Children that a later operation removed from v are covered by
        // that operation's delta.
        for (NodeId c : inverse_op.adopted_ids) {
          if (!tn.Contains(c) || tn.parent(c) != v) continue;
          int pos = tn.SiblingIndex(c);
          added += AddQRowRange(tn, v, pos, pos + shape.q - 1, shape, store);
          tn.DescendantsWithin(c, shape.p - 2, &descendants);
        }
      }
      for (NodeId x : descendants) {
        AddPRow(tn, x, shape, store);
        added += AddAllQRows(tn, x, shape, store);
      }
      break;
    }
  }
  return added;
}

}  // namespace pqidx
