#include "core/parallel_build.h"

#include "core/distance.h"

namespace pqidx {

ForestIndex BuildForestIndexParallel(
    const std::vector<std::pair<TreeId, const Tree*>>& trees,
    const PqShape& shape, ThreadPool* pool) {
  PQIDX_CHECK(pool != nullptr);
  std::vector<PqGramIndex> bags(trees.size(), PqGramIndex(shape));
  pool->ParallelFor(static_cast<int64_t>(trees.size()), [&](int64_t i) {
    bags[static_cast<size_t>(i)] = BuildIndex(*trees[i].second, shape);
  });
  ForestIndex forest(shape);
  for (size_t i = 0; i < trees.size(); ++i) {
    forest.AddIndex(trees[i].first, std::move(bags[i]));
  }
  return forest;
}

ForestIndex BuildForestIndexParallel(const std::vector<Tree>& trees,
                                     const PqShape& shape,
                                     ThreadPool* pool) {
  std::vector<std::pair<TreeId, const Tree*>> refs;
  refs.reserve(trees.size());
  for (size_t i = 0; i < trees.size(); ++i) {
    refs.emplace_back(static_cast<TreeId>(i), &trees[i]);
  }
  return BuildForestIndexParallel(refs, shape, pool);
}

std::vector<double> AllDistancesParallel(const ForestIndex& forest,
                                         const PqGramIndex& query,
                                         ThreadPool* pool) {
  PQIDX_CHECK(pool != nullptr);
  std::vector<TreeId> ids = forest.TreeIds();
  std::vector<double> distances(ids.size(), 0.0);
  pool->ParallelFor(static_cast<int64_t>(ids.size()), [&](int64_t i) {
    distances[static_cast<size_t>(i)] =
        PqGramDistance(query, *forest.Find(ids[static_cast<size_t>(i)]));
  });
  return distances;
}

ForestIndex BuildForestIndexParallel(
    const std::vector<std::pair<TreeId, const Tree*>>& trees,
    const PqShape& shape, int num_threads) {
  ThreadPool pool(num_threads);
  return BuildForestIndexParallel(trees, shape, &pool);
}

ForestIndex BuildForestIndexParallel(const std::vector<Tree>& trees,
                                     const PqShape& shape,
                                     int num_threads) {
  ThreadPool pool(num_threads);
  return BuildForestIndexParallel(trees, shape, &pool);
}

std::vector<double> AllDistancesParallel(const ForestIndex& forest,
                                         const PqGramIndex& query,
                                         int num_threads) {
  ThreadPool pool(num_threads);
  return AllDistancesParallel(forest, query, &pool);
}

}  // namespace pqidx
