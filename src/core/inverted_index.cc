#include "core/inverted_index.h"

#include <algorithm>

#include "core/incremental.h"

namespace pqidx {

InvertedForestIndex::InvertedForestIndex(const ForestIndex& forest)
    : shape_(forest.shape()) {
  for (TreeId id : forest.TreeIds()) {
    AddIndex(id, *forest.Find(id));
  }
}

void InvertedForestIndex::AddIndex(TreeId id, const PqGramIndex& index) {
  PQIDX_CHECK_MSG(index.shape() == shape_,
                  "index shape does not match inverted index shape");
  RemoveTree(id);
  for (const auto& [fp, count] : index.counts()) {
    Status status = AdjustPosting(fp, id, count);
    PQIDX_CHECK(status.ok());
  }
  tree_sizes_[id] = index.size();
}

void InvertedForestIndex::AddTree(TreeId id, const Tree& tree) {
  AddIndex(id, BuildIndex(tree, shape_));
}

bool InvertedForestIndex::RemoveTree(TreeId id) {
  auto it = tree_sizes_.find(id);
  if (it == tree_sizes_.end()) return false;
  tree_sizes_.erase(it);
  // The reverse map names exactly this tree's distinct tuples, so
  // removal touches only its own postings -- O(|I(T)| distinct) instead
  // of a sweep over every posting list in the forest.
  auto tuples_it = tree_tuples_.find(id);
  if (tuples_it == tree_tuples_.end()) return true;  // empty bag
  for (PqGramFingerprint fp : tuples_it->second) {
    auto pit = postings_.find(fp);
    PQIDX_CHECK_MSG(pit != postings_.end(),
                    "reverse map names a tuple with no posting list");
    std::vector<Posting>& list = pit->second;
    size_t before = list.size();
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].tree_id == id) {
        list[i] = list.back();
        list.pop_back();
        --posting_entries_;
        break;
      }
    }
    PQIDX_CHECK_MSG(list.size() + 1 == before,
                    "reverse map names a tuple the tree does not post");
    if (list.empty()) postings_.erase(pit);
  }
  tree_tuples_.erase(tuples_it);
  return true;
}

Status InvertedForestIndex::AdjustPosting(PqGramFingerprint fp, TreeId id,
                                          int64_t delta) {
  if (delta == 0) return Status::Ok();
  std::vector<Posting>& list = postings_[fp];
  for (size_t i = 0; i < list.size(); ++i) {
    if (list[i].tree_id != id) continue;
    list[i].count += delta;
    if (list[i].count < 0) {
      return FailedPreconditionError(
          "posting count would become negative (stale delta?)");
    }
    if (list[i].count == 0) {
      list[i] = list.back();
      list.pop_back();
      --posting_entries_;
      if (list.empty()) postings_.erase(fp);
      auto tuples_it = tree_tuples_.find(id);
      tuples_it->second.erase(fp);
      if (tuples_it->second.empty()) tree_tuples_.erase(tuples_it);
    }
    return Status::Ok();
  }
  if (delta < 0) {
    // operator[] above may have created an empty list for an unknown
    // tuple; do not leave it behind on the error path.
    if (list.empty()) postings_.erase(fp);
    return FailedPreconditionError(
        "removing a pq-gram tuple the tree does not have");
  }
  list.push_back({id, delta});
  ++posting_entries_;
  tree_tuples_[id].insert(fp);
  return Status::Ok();
}

Status InvertedForestIndex::UpdateTree(TreeId id, const PqGramIndex& plus,
                                       const PqGramIndex& minus) {
  auto it = tree_sizes_.find(id);
  if (it == tree_sizes_.end()) {
    return NotFoundError("unknown tree in inverted index");
  }
  PQIDX_CHECK(plus.shape() == shape_ && minus.shape() == shape_);
  for (const auto& [fp, count] : minus.counts()) {
    PQIDX_RETURN_IF_ERROR(AdjustPosting(fp, id, -count));
  }
  for (const auto& [fp, count] : plus.counts()) {
    PQIDX_RETURN_IF_ERROR(AdjustPosting(fp, id, count));
  }
  it->second += plus.size() - minus.size();
  PQIDX_CHECK(it->second >= 0);
  return Status::Ok();
}

Status InvertedForestIndex::ApplyLog(TreeId id, const Tree& tn,
                                     const EditLog& log) {
  if (!tree_sizes_.contains(id)) {
    return NotFoundError("unknown tree in inverted index");
  }
  PqGramIndex plus(shape_);
  PqGramIndex minus(shape_);
  PQIDX_RETURN_IF_ERROR(
      ComputeIndexDeltas(tn, log, shape_, &plus, &minus, nullptr));
  return UpdateTree(id, plus, minus);
}

std::vector<LookupResult> InvertedForestIndex::Lookup(
    const PqGramIndex& query, double tau) const {
  PQIDX_CHECK_MSG(query.shape() == shape_,
                  "query shape does not match inverted index shape");
  // Accumulate bag-intersection sizes over the query's postings only.
  std::unordered_map<TreeId, int64_t> intersection;
  for (const auto& [fp, qcount] : query.counts()) {
    auto it = postings_.find(fp);
    if (it == postings_.end()) continue;
    for (const Posting& posting : it->second) {
      intersection[posting.tree_id] += std::min(qcount, posting.count);
    }
  }
  std::vector<LookupResult> results;
  auto consider = [&](TreeId id, int64_t shared) {
    int64_t union_size = query.size() + tree_sizes_.at(id);
    double distance =
        union_size == 0
            ? 0.0
            : 1.0 - 2.0 * static_cast<double>(shared) /
                        static_cast<double>(union_size);
    if (distance <= tau) results.push_back({id, distance});
  };
  if (tau >= 1.0) {
    // Distance 1 trees (no shared tuple) qualify too: visit everything.
    for (const auto& [id, size] : tree_sizes_) {
      auto it = intersection.find(id);
      consider(id, it == intersection.end() ? 0 : it->second);
    }
  } else {
    for (const auto& [id, shared] : intersection) {
      consider(id, shared);
    }
    if (query.size() == 0 && tau >= 0.0) {
      // An empty query is at distance 0 from every empty tree (the scan
      // baseline computes union 0 -> distance 0); such trees own no
      // postings, so the intersection pass cannot reach them. Distance 0
      // only qualifies for tau >= 0, matching the baseline's
      // `distance <= tau` test (which admits nothing for negative or
      // NaN tau).
      for (const auto& [id, size] : tree_sizes_) {
        if (size == 0) results.push_back({id, 0.0});
      }
    }
  }
  std::sort(results.begin(), results.end(),
            [](const LookupResult& a, const LookupResult& b) {
              return a.distance < b.distance ||
                     (a.distance == b.distance && a.tree_id < b.tree_id);
            });
  return results;
}

std::vector<LookupResult> InvertedForestIndex::Lookup(const Tree& query,
                                                      double tau) const {
  return Lookup(BuildIndex(query, shape_), tau);
}

std::vector<LookupResult> InvertedForestIndex::TopK(
    const PqGramIndex& query, int k) const {
  std::vector<LookupResult> all = Lookup(query, 1.0);
  if (k < static_cast<int>(all.size())) {
    all.resize(static_cast<size_t>(k < 0 ? 0 : k));
  }
  return all;
}

int64_t InvertedForestIndex::TreeBagSize(TreeId id) const {
  auto it = tree_sizes_.find(id);
  return it == tree_sizes_.end() ? -1 : it->second;
}

void InvertedForestIndex::CheckConsistency() const {
  std::unordered_map<TreeId, int64_t> totals;
  std::unordered_map<TreeId, int64_t> distinct_per_tree;
  int64_t entries = 0;
  for (const auto& [fp, list] : postings_) {
    PQIDX_CHECK(!list.empty());
    entries += static_cast<int64_t>(list.size());
    std::unordered_map<TreeId, int> seen;
    for (const Posting& posting : list) {
      PQIDX_CHECK(posting.count > 0);
      PQIDX_CHECK(++seen[posting.tree_id] == 1);
      PQIDX_CHECK(tree_sizes_.contains(posting.tree_id));
      totals[posting.tree_id] += posting.count;
      ++distinct_per_tree[posting.tree_id];
      // The reverse map names every posted (tree, tuple) pair.
      auto tuples_it = tree_tuples_.find(posting.tree_id);
      PQIDX_CHECK(tuples_it != tree_tuples_.end());
      PQIDX_CHECK(tuples_it->second.contains(fp));
    }
  }
  PQIDX_CHECK(entries == posting_entries_);
  for (const auto& [id, size] : tree_sizes_) {
    auto it = totals.find(id);
    PQIDX_CHECK((it == totals.end() ? 0 : it->second) == size);
  }
  // ... and nothing more: per-tree distinct counts match, and no entry
  // survives for unknown or empty trees.
  PQIDX_CHECK(tree_tuples_.size() == distinct_per_tree.size());
  for (const auto& [id, tuples] : tree_tuples_) {
    auto it = distinct_per_tree.find(id);
    PQIDX_CHECK(it != distinct_per_tree.end());
    PQIDX_CHECK(static_cast<int64_t>(tuples.size()) == it->second);
  }
}

}  // namespace pqidx
