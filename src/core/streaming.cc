#include "core/streaming.h"

#include "common/serde.h"
#include "xml/xml_scanner.h"

namespace pqidx {

void StreamingIndexBuilder::Open(std::string_view label) {
  Open(KarpRabinFingerprint(label));
}

void StreamingIndexBuilder::Open(LabelHash label_hash) {
  PQIDX_CHECK_MSG(!(finished_root_ && stack_.empty()),
                  "document already has a closed root");
  if (!stack_.empty()) {
    // The parent's window row ending at this child is now complete.
    EmitWindow(stack_.back(), label_hash);
    OpenElement& parent = stack_.back();
    if (shape_.q > 1) {
      parent.window.erase(parent.window.begin());
      parent.window.push_back(label_hash);
    }
    ++parent.fanout;
  }
  OpenElement element;
  element.label = label_hash;
  element.window.assign(static_cast<size_t>(shape_.q) - 1, kNullLabelHash);
  stack_.push_back(std::move(element));
}

void StreamingIndexBuilder::Close() {
  PQIDX_CHECK_MSG(!stack_.empty(), "Close without a matching Open");
  OpenElement& element = stack_.back();
  if (element.fanout == 0) {
    // Leaf: the single all-null q-part.
    EmitWindow(element, kNullLabelHash);
  } else {
    // Trailing windows: the last q-1 rows, each one more null.
    for (int j = 1; j <= shape_.q - 1; ++j) {
      EmitWindow(element, kNullLabelHash);
      element.window.erase(element.window.begin());
      element.window.push_back(kNullLabelHash);
    }
  }
  stack_.pop_back();
  if (stack_.empty()) finished_root_ = true;
}

void StreamingIndexBuilder::EmitWindow(const OpenElement& element,
                                       LabelHash next) {
  TupleFingerprinter fp;
  // p-part: the ancestor chain ending at the anchor (= `element`, which
  // is on top of the stack when called).
  int depth = static_cast<int>(stack_.size());
  for (int j = depth - shape_.p; j < depth; ++j) {
    fp.Add(j < 0 ? kNullLabelHash : stack_[static_cast<size_t>(j)].label);
  }
  // q-part: the trailing window plus the next child (or null padding).
  for (LabelHash h : element.window) fp.Add(h);
  fp.Add(next);
  index_.Add(fp.Finish());
}

PqGramIndex StreamingIndexBuilder::Finish() && {
  PQIDX_CHECK_MSG(stack_.empty(), "unclosed elements at Finish");
  PQIDX_CHECK_MSG(finished_root_, "empty document at Finish");
  return std::move(index_);
}

namespace {

// Adapts XML events to the builder, applying the ParseXml mapping
// (attributes as "@name" children, text as leaves).
class IndexingHandler : public XmlEventHandler {
 public:
  IndexingHandler(const XmlParseOptions& options,
                  StreamingIndexBuilder* builder)
      : options_(options), builder_(builder) {}

  Status OnOpen(std::string_view name) override {
    builder_->Open(name);
    return Status::Ok();
  }
  Status OnAttribute(std::string_view name,
                     std::string_view value) override {
    if (options_.include_attributes) {
      builder_->Open("@" + std::string(name));
      builder_->Leaf(value);
      builder_->Close();
    }
    return Status::Ok();
  }
  Status OnText(std::string_view text) override {
    if (options_.include_text) builder_->Leaf(text);
    return Status::Ok();
  }
  Status OnClose(std::string_view name) override {
    (void)name;
    builder_->Close();
    return Status::Ok();
  }

 private:
  const XmlParseOptions& options_;
  StreamingIndexBuilder* builder_;
};

}  // namespace

StatusOr<PqGramIndex> BuildIndexFromXml(std::string_view xml,
                                        const PqShape& shape,
                                        const XmlParseOptions& options) {
  StreamingIndexBuilder builder(shape);
  IndexingHandler handler(options, &builder);
  PQIDX_RETURN_IF_ERROR(ScanXml(xml, &handler));
  return std::move(builder).Finish();
}

StatusOr<PqGramIndex> BuildIndexFromXmlFile(const std::string& path,
                                            const PqShape& shape,
                                            const XmlParseOptions& options) {
  std::string content;
  PQIDX_RETURN_IF_ERROR(ReadFile(path, &content));
  return BuildIndexFromXml(content, shape, options);
}

}  // namespace pqidx
