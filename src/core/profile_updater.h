// The profile update function U (paper Definition 5, Table 1, Algorithms
// 3-4).
//
// U(P, Q, e-bar) rewrites the delta tables in place: the pq-grams that the
// operation reversed by e-bar introduced (the "new" pq-grams,
// delta(Tj, e-bar)) are replaced by the pq-grams the operation destroyed
// (the "old" pq-grams, delta(Ti, e), where Ti = e-bar(Tj)); every other
// row is left untouched except for positional bookkeeping (row numbers and
// sibling positions shift when siblings appear or disappear). The tree is
// never accessed: everything is derived from the rows themselves, which is
// exactly what makes maintenance without intermediate tree versions
// possible (Theorem 2).
//
// Applied once per log entry, from the last operation to the first
// (Algorithm 1 line 4), this turns the stored Delta+ into Delta-.

#ifndef PQIDX_CORE_PROFILE_UPDATER_H_
#define PQIDX_CORE_PROFILE_UPDATER_H_

#include "core/delta_store.h"
#include "edit/edit_operation.h"
#include "tree/label_dict.h"

namespace pqidx {

class ProfileUpdater {
 public:
  // `store` must outlive the updater; `dict` resolves the label hashes of
  // rename/insert labels.
  ProfileUpdater(DeltaStore* store, const LabelDict* dict)
      : store_(store), dict_(dict) {
    PQIDX_CHECK(store != nullptr && dict != nullptr);
  }

  // Applies U for one inverse-log operation. The store must be coherent
  // with the intermediate tree the operation applies to (guaranteed when
  // operations are applied in log order e-bar_n .. e-bar_1 over a store
  // initialized with Delta+; Lemma 7). Violations abort.
  void Apply(const EditOperation& op);

 private:
  void ApplyRename(const EditOperation& op);
  void ApplyDelete(const EditOperation& op);
  void ApplyInsert(const EditOperation& op);

  // Reads column `col` of row (anchor, row); the row must exist.
  const QRow& QRowOrDie(NodeId anchor, int row) const;

  DeltaStore* store_;
  const LabelDict* dict_;
};

}  // namespace pqidx

#endif  // PQIDX_CORE_PROFILE_UPDATER_H_
