#include "core/simd_intersect.h"

#include <algorithm>
#include <atomic>

#if !defined(PQIDX_DISABLE_SIMD)
#if defined(__x86_64__) || defined(__i386__)
#define PQIDX_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define PQIDX_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif  // !PQIDX_DISABLE_SIMD

namespace pqidx {
namespace {

using ContribsFn = void (*)(const int32_t*, size_t, int32_t, int32_t*,
                            int32_t*);

// Reference kernel; every SIMD variant computes exactly these values.
// The sentinel count -1 survives the min because qcount >= 0.
void ContribsScalar(const int32_t* pairs, size_t n, int32_t qcount,
                    int32_t* slots, int32_t* contribs) {
  for (size_t i = 0; i < n; ++i) {
    slots[i] = pairs[2 * i];
    contribs[i] = std::min(pairs[2 * i + 1], qcount);
  }
}

#if defined(PQIDX_SIMD_X86)

// 4 pairs (one 128-bit lane pair) per iteration.
__attribute__((target("sse4.1"))) void ContribsSse41(
    const int32_t* pairs, size_t n, int32_t qcount, int32_t* slots,
    int32_t* contribs) {
  const __m128i q = _mm_set1_epi32(qcount);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pairs + 2 * i));      // s0 c0 s1 c1
    const __m128i v1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(pairs + 2 * i + 4));  // s2 c2 s3 c3
    const __m128i a = _mm_shuffle_epi32(v0, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i b = _mm_shuffle_epi32(v1, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i s = _mm_unpacklo_epi64(a, b);  // s0 s1 s2 s3
    const __m128i c = _mm_unpackhi_epi64(a, b);  // c0 c1 c2 c3
    _mm_storeu_si128(reinterpret_cast<__m128i*>(slots + i), s);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(contribs + i),
                     _mm_min_epi32(c, q));
  }
  ContribsScalar(pairs + 2 * i, n - i, qcount, slots + i, contribs + i);
}

// 8 pairs (two 256-bit loads) per iteration.
__attribute__((target("avx2"))) void ContribsAvx2(
    const int32_t* pairs, size_t n, int32_t qcount, int32_t* slots,
    int32_t* contribs) {
  const __m256i q = _mm256_set1_epi32(qcount);
  // Gathers a register's even lanes (slots) into its low 128 bits and
  // its odd lanes (counts) into the high 128 bits.
  const __m256i deinterleave = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pairs + 2 * i));
    const __m256i v1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pairs + 2 * i + 8));
    const __m256i a = _mm256_permutevar8x32_epi32(v0, deinterleave);
    const __m256i b = _mm256_permutevar8x32_epi32(v1, deinterleave);
    const __m256i s = _mm256_permute2x128_si256(a, b, 0x20);  // s0..s7
    const __m256i c = _mm256_permute2x128_si256(a, b, 0x31);  // c0..c7
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(slots + i), s);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(contribs + i),
                        _mm256_min_epi32(c, q));
  }
  ContribsScalar(pairs + 2 * i, n - i, qcount, slots + i, contribs + i);
}

#endif  // PQIDX_SIMD_X86

#if defined(PQIDX_SIMD_NEON)

// 4 pairs per iteration; vld2q deinterleaves {slot, count} directly.
void ContribsNeon(const int32_t* pairs, size_t n, int32_t qcount,
                  int32_t* slots, int32_t* contribs) {
  const int32x4_t q = vdupq_n_s32(qcount);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int32x4x2_t v = vld2q_s32(pairs + 2 * i);
    vst1q_s32(slots + i, v.val[0]);
    vst1q_s32(contribs + i, vminq_s32(v.val[1], q));
  }
  ContribsScalar(pairs + 2 * i, n - i, qcount, slots + i, contribs + i);
}

#endif  // PQIDX_SIMD_NEON

bool KernelSupported(SimdKernel kernel) {
  switch (kernel) {
    case SimdKernel::kScalar:
      return true;
#if defined(PQIDX_SIMD_X86)
    case SimdKernel::kSse41:
      return __builtin_cpu_supports("sse4.1") != 0;
    case SimdKernel::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(PQIDX_SIMD_NEON)
    case SimdKernel::kNeon:
      return true;
#endif
    default:
      return false;
  }
}

ContribsFn KernelFn(SimdKernel kernel) {
  switch (kernel) {
#if defined(PQIDX_SIMD_X86)
    case SimdKernel::kSse41:
      return &ContribsSse41;
    case SimdKernel::kAvx2:
      return &ContribsAvx2;
#endif
#if defined(PQIDX_SIMD_NEON)
    case SimdKernel::kNeon:
      return &ContribsNeon;
#endif
    default:
      return &ContribsScalar;
  }
}

SimdKernel BestKernel() {
#if defined(PQIDX_SIMD_X86)
  if (KernelSupported(SimdKernel::kAvx2)) return SimdKernel::kAvx2;
  if (KernelSupported(SimdKernel::kSse41)) return SimdKernel::kSse41;
#elif defined(PQIDX_SIMD_NEON)
  return SimdKernel::kNeon;
#endif
  return SimdKernel::kScalar;
}

struct Dispatch {
  std::atomic<SimdKernel> kernel;
  std::atomic<ContribsFn> fn;

  Dispatch() {
    const SimdKernel best = BestKernel();
    kernel.store(best, std::memory_order_relaxed);
    fn.store(KernelFn(best), std::memory_order_relaxed);
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

}  // namespace

SimdKernel ActiveSimdKernel() {
  return dispatch().kernel.load(std::memory_order_relaxed);
}

const char* SimdKernelName(SimdKernel kernel) {
  switch (kernel) {
    case SimdKernel::kScalar:
      return "scalar";
    case SimdKernel::kSse41:
      return "sse4.1";
    case SimdKernel::kAvx2:
      return "avx2";
    case SimdKernel::kNeon:
      return "neon";
  }
  return "unknown";
}

bool SetSimdKernelForTesting(SimdKernel kernel) {
  if (!KernelSupported(kernel)) return false;
  dispatch().kernel.store(kernel, std::memory_order_relaxed);
  dispatch().fn.store(KernelFn(kernel), std::memory_order_relaxed);
  return true;
}

void ComputeContribs(const int32_t* pairs, size_t n, int32_t qcount,
                     int32_t* slots, int32_t* contribs) {
  dispatch().fn.load(std::memory_order_relaxed)(pairs, n, qcount, slots,
                                                contribs);
}

size_t GallopLowerBound(const uint64_t* data, size_t n, size_t begin,
                        uint64_t target) {
  if (begin >= n || data[begin] >= target) return begin;
  // Invariant: data[lo] < target. Double the step until it overshoots.
  size_t lo = begin;
  size_t step = 1;
  while (lo + step < n && data[lo + step] < target) {
    lo += step;
    step <<= 1;
  }
  const size_t hi = std::min(n, lo + step);
  return static_cast<size_t>(
      std::lower_bound(data + lo + 1, data + hi, target) - data);
}

}  // namespace pqidx
