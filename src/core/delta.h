// The delta function (paper Definition 4, Lemma 1, Table 1, Algorithm 2).
//
// delta(Tn, e-bar) computes the pq-grams of Tn that the (forward) edit
// operation introduced -- equivalently, the pq-grams that applying the
// inverse operation e-bar to Tn would destroy -- and stores them in the
// (P, Q) table pair:
//
//   REN(n,l') / DEL(n):  P(v) o Q^{k..k}(v)  u  P(x) o Q(x)
//                        for all x in desc_{p-1}(n),
//                        v = parent(n), n the k-th child of v;
//   INS(n,v,k,count):    P(v) o Q^{k..m}(v)  u  P(x) o Q(x)
//                        for all x in desc_{p-2}(c_k .. c_{k+count-1}).
//
// When e-bar's node references are partially stale on Tn (a later log
// operation changed the region), the selections are evaluated against what
// exists in Tn -- Algorithm 2's relational reading -- rather than
// Definition 4's all-or-nothing "empty if undefined". This matters: an
// INS whose adopted-child range exceeds the fanout in Tn must still fetch
// the surviving children, or Theorem 1's union misses pq-grams (see
// DESIGN.md, "Clamped delta semantics", for the counterexample and why the
// resulting superset is harmless). Operations whose target node or parent
// no longer exists in Tn select nothing.
//
// Following Algorithm 2, the anchor P-rows are inserted even when the
// corresponding Q-row selection is empty (leaf insertion with small q):
// they carry no pq-grams but later update steps read them.

#ifndef PQIDX_CORE_DELTA_H_
#define PQIDX_CORE_DELTA_H_

#include "core/delta_store.h"
#include "edit/edit_operation.h"
#include "tree/tree.h"

namespace pqidx {

// Adds delta(tn, inverse_op) to `store` (set semantics; rows already
// present are skipped). Returns the number of pq-grams (Q-rows) added.
int64_t ComputeDelta(const Tree& tn, const EditOperation& inverse_op,
                     DeltaStore* store);

// Builds the P-row of `n` as of `tree` (ancestor chain, parent, sibling
// position, fanout). Shared with tests.
PRow MakePRow(const Tree& tree, NodeId n, const PqShape& shape);

// Builds Q-row `row` of `n` as of `tree`. For a leaf, only row 0 (all
// nulls) exists.
QRow MakeQRow(const Tree& tree, NodeId n, int row, const PqShape& shape);

}  // namespace pqidx

#endif  // PQIDX_CORE_DELTA_H_
