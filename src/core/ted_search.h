// Filter-and-verify search for the exact tree edit distance.
//
// The pq-gram distance exists to make TED-flavored search affordable: it
// is cheap, index-backed, and correlates strongly with TED (see
// bench_ablation_pq), while Zhang-Shasha verification is quadratic per
// pair. The classic pipeline ranks the collection by pq-gram distance and
// verifies only the best candidates:
//
//   * TedTopKExhaustive: verifies every tree -- exact, the baseline.
//   * TedTopK: verifies ceil(k * oversample) pq-gram-ranked candidates --
//     usually exact in practice, but the pq-gram distance is an
//     approximation, not a bound, so a true top-k member can in principle
//     be ranked out; raise `oversample` (or use the exhaustive variant)
//     when exactness is mandatory.

#ifndef PQIDX_CORE_TED_SEARCH_H_
#define PQIDX_CORE_TED_SEARCH_H_

#include <utility>
#include <vector>

#include "core/forest_index.h"
#include "tree/tree.h"

namespace pqidx {

struct TedSearchHit {
  TreeId tree_id;
  int ted;              // exact tree edit distance to the query
  double pq_distance;   // the filter score
};

struct TedSearchStats {
  int collection_size = 0;
  int verified = 0;  // Zhang-Shasha invocations
};

// The `k` collection trees with the smallest exact TED to `query`,
// ascending by TED (ties by tree id). Verifies only the
// ceil(k * oversample) best trees under the pq-gram distance.
std::vector<TedSearchHit> TedTopK(
    const std::vector<std::pair<TreeId, const Tree*>>& collection,
    const Tree& query, int k, const PqShape& shape, double oversample = 3.0,
    TedSearchStats* stats = nullptr);

// Exact baseline: verifies the whole collection.
std::vector<TedSearchHit> TedTopKExhaustive(
    const std::vector<std::pair<TreeId, const Tree*>>& collection,
    const Tree& query, int k, const PqShape& shape,
    TedSearchStats* stats = nullptr);

}  // namespace pqidx

#endif  // PQIDX_CORE_TED_SEARCH_H_
