#include "core/pqgram_index.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/profile.h"

namespace pqidx {

void PqGramIndex::Add(PqGramFingerprint fp, int64_t n) {
  PQIDX_CHECK(n >= 0);
  if (n == 0) return;
  counts_[fp] += n;
  size_ += n;
}

void PqGramIndex::Remove(PqGramFingerprint fp, int64_t n) {
  PQIDX_CHECK(n >= 0);
  if (n == 0) return;
  auto it = counts_.find(fp);
  PQIDX_CHECK_MSG(it != counts_.end() && it->second >= n,
                  "bag removal of absent pq-gram label-tuple");
  it->second -= n;
  size_ -= n;
  if (it->second == 0) counts_.erase(it);
}

int64_t PqGramIndex::SerializedBytes() const {
  ByteWriter writer;
  Serialize(&writer);
  return static_cast<int64_t>(writer.data().size());
}

void PqGramIndex::Serialize(ByteWriter* writer) const {
  writer->PutU8(static_cast<uint8_t>(shape_.p));
  writer->PutU8(static_cast<uint8_t>(shape_.q));
  writer->PutVarint(counts_.size());
  // Sorted by fingerprint: equal bags serialize to identical bytes
  // regardless of hash-table iteration order (reproducible files).
  std::vector<std::pair<PqGramFingerprint, int64_t>> entries(
      counts_.begin(), counts_.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [fp, count] : entries) {
    writer->PutU64(fp);
    writer->PutVarint(static_cast<uint64_t>(count));
  }
}

StatusOr<PqGramIndex> PqGramIndex::Deserialize(ByteReader* reader) {
  uint8_t p, q;
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&p));
  PQIDX_RETURN_IF_ERROR(reader->GetU8(&q));
  if (p < 1 || q < 1) return DataLossError("bad pq-gram shape");
  PqGramIndex index(PqShape{p, q});
  uint64_t entries;
  PQIDX_RETURN_IF_ERROR(reader->GetVarint(&entries));
  int64_t total = 0;
  for (uint64_t i = 0; i < entries; ++i) {
    uint64_t fp, count;
    PQIDX_RETURN_IF_ERROR(reader->GetU64(&fp));
    PQIDX_RETURN_IF_ERROR(reader->GetVarint(&count));
    if (count == 0) return DataLossError("zero count in serialized index");
    // Counts are int64 internally; a count above int64 max, a duplicate
    // fingerprint pushing one tuple over it, or a bag cardinality
    // overflowing the running total are all corrupt input, and must fail
    // here rather than trip the (abort-on-failure) bag invariants.
    if (count > static_cast<uint64_t>(INT64_MAX)) {
      return DataLossError("count overflows int64 in serialized index");
    }
    int64_t n = static_cast<int64_t>(count);
    if (__builtin_add_overflow(total, n, &total) ||
        index.Count(fp) > INT64_MAX - n) {
      return DataLossError("total pq-gram count overflows int64");
    }
    index.Add(fp, n);
  }
  return index;
}

IndexStats ComputeIndexStats(const PqGramIndex& index) {
  IndexStats stats;
  stats.size = index.size();
  stats.distinct = index.distinct();
  for (const auto& [fp, count] : index.counts()) {
    stats.max_count = std::max(stats.max_count, count);
    if (count == 1) ++stats.singletons;
  }
  stats.dedup_ratio =
      stats.distinct > 0
          ? static_cast<double>(stats.size) / stats.distinct
          : 1.0;
  return stats;
}

std::string IndexStats::ToString() const {
  return std::to_string(size) + " pq-grams, " + std::to_string(distinct) +
         " distinct (dedup " + std::to_string(dedup_ratio) + "x), max count " +
         std::to_string(max_count) + ", " + std::to_string(singletons) +
         " singletons";
}

PqGramIndex BuildIndex(const Tree& tree, const PqShape& shape) {
  PqGramIndex index(shape);
  ForEachPqGram(tree, shape, [&](const PqGramView& view) {
    index.Add(FingerprintLabelTuple(view.labels, shape.tuple_size()));
  });
  return index;
}

int64_t BagIntersectionSize(const PqGramIndex& a, const PqGramIndex& b) {
  const PqGramIndex& small = a.distinct() <= b.distinct() ? a : b;
  const PqGramIndex& large = a.distinct() <= b.distinct() ? b : a;
  int64_t total = 0;
  for (const auto& [fp, count] : small.counts()) {
    int64_t other = large.Count(fp);
    total += count < other ? count : other;
  }
  return total;
}

}  // namespace pqidx
