// Streaming pq-gram index construction: build I(T) directly from a
// document event stream in O(depth · (p+q)) memory, without ever
// materializing the tree.
//
// The paper indexes a 211 MB DBLP file (11M nodes); materializing such
// documents costs orders of magnitude more memory than their indexes.
// Because a pq-gram depends only on the anchor's ancestor chain (the
// p-part) and a q-window of its children, both of which are available
// incrementally during a document-order traversal, the whole index can be
// emitted from SAX-style open/close events:
//
//   StreamingIndexBuilder builder(shape);
//   builder.Open("dblp"); builder.Open("article"); ... builder.Close();
//   PqGramIndex index = std::move(builder).Finish();
//
// Per open element the builder keeps its label hash and the last q-1
// child label hashes -- nothing else. The result equals
// BuildIndex(ParseXml(doc), shape) exactly.
//
// BuildIndexFromXml() runs the builder off a lightweight XML event
// scanner (same dialect as xml/xml_parser.h) so multi-hundred-MB files
// index in streaming fashion.

#ifndef PQIDX_CORE_STREAMING_H_
#define PQIDX_CORE_STREAMING_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/pqgram_index.h"
#include "xml/xml_parser.h"

namespace pqidx {

class StreamingIndexBuilder {
 public:
  explicit StreamingIndexBuilder(PqShape shape)
      : shape_(shape), index_(shape) {
    PQIDX_CHECK(shape.Valid());
  }

  // Starts an element with `label` (a child of the currently open
  // element; the first Open starts the root).
  void Open(std::string_view label);
  void Open(LabelHash label_hash);

  // Ends the innermost open element.
  void Close();

  // A leaf child shorthand: Open + Close.
  void Leaf(std::string_view label) {
    Open(label);
    Close();
  }

  int depth() const { return static_cast<int>(stack_.size()); }

  // Finishes the document (all elements must be closed) and returns the
  // index. The builder is consumed.
  PqGramIndex Finish() &&;

 private:
  struct OpenElement {
    LabelHash label;
    // The last q-1 child label hashes, oldest first, plus the fanout so
    // far. Null-padded while fewer than q-1 children have been seen.
    std::vector<LabelHash> window;
    int64_t fanout = 0;
  };

  // Emits the pq-gram whose q-part is the current window of the top
  // element extended by `next` (kNullLabelHash for trailing windows).
  void EmitWindow(const OpenElement& element, LabelHash next);

  PqShape shape_;
  PqGramIndex index_;
  std::vector<OpenElement> stack_;
  bool finished_root_ = false;
};

// Streams `xml` through the builder: an order-of-magnitude memory
// reduction versus ParseXml + BuildIndex for large documents, with
// identical results. Applies the same attribute/text mapping as
// ParseXml (attributes as "@name" children, trimmed text as leaves),
// honoring `options`.
StatusOr<PqGramIndex> BuildIndexFromXml(std::string_view xml,
                                        const PqShape& shape,
                                        const XmlParseOptions& options = {});

// Convenience: reads and streams the file at `path`.
StatusOr<PqGramIndex> BuildIndexFromXmlFile(
    const std::string& path, const PqShape& shape,
    const XmlParseOptions& options = {});

}  // namespace pqidx

#endif  // PQIDX_CORE_STREAMING_H_
