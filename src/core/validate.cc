#include "core/validate.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>

namespace pqidx {
namespace {

std::string FpToString(PqGramFingerprint fp) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

// Bounded bag diff: the first few fingerprints whose multiplicities
// disagree, rendered as "fp: got g, want w".
std::string DescribeBagDiff(const PqGramIndex& got, const PqGramIndex& want,
                            int limit = 5) {
  std::set<PqGramFingerprint> keys;
  for (const auto& [fp, count] : got.counts()) keys.insert(fp);
  for (const auto& [fp, count] : want.counts()) keys.insert(fp);
  std::string out;
  int shown = 0, mismatched = 0;
  for (PqGramFingerprint fp : keys) {
    if (got.Count(fp) == want.Count(fp)) continue;
    ++mismatched;
    if (shown >= limit) continue;
    out += (shown == 0 ? "" : "; ") + FpToString(fp) + ": got " +
           std::to_string(got.Count(fp)) + ", want " +
           std::to_string(want.Count(fp));
    ++shown;
  }
  if (mismatched > shown) {
    out += " (+" + std::to_string(mismatched - shown) + " more)";
  }
  return out;
}

}  // namespace

Status ValidatePqGramIndex(const PqGramIndex& index) {
  if (!index.shape().Valid()) {
    return FailedPreconditionError("pq-gram index has an invalid shape");
  }
  int64_t total = 0;
  for (const auto& [fp, count] : index.counts()) {
    if (count <= 0) {
      return FailedPreconditionError("non-positive count " +
                                     std::to_string(count) +
                                     " for fingerprint " + FpToString(fp));
    }
    if (__builtin_add_overflow(total, count, &total)) {
      return FailedPreconditionError("bag cardinality overflows int64");
    }
  }
  if (total != index.size()) {
    return FailedPreconditionError(
        "size() = " + std::to_string(index.size()) +
        " does not match the sum of counts " + std::to_string(total));
  }
  if (index.distinct() != static_cast<int64_t>(index.counts().size())) {
    return FailedPreconditionError("distinct() disagrees with the bag");
  }
  return Status::Ok();
}

Status ValidateIndexAgainstTree(const PqGramIndex& index, const Tree& tree) {
  PQIDX_RETURN_IF_ERROR(ValidatePqGramIndex(index));
  PqGramIndex rebuilt = BuildIndex(tree, index.shape());
  if (index == rebuilt) return Status::Ok();
  return FailedPreconditionError(
      "maintained index diverges from a from-scratch rebuild (shape " +
      std::to_string(index.shape().p) + "," +
      std::to_string(index.shape().q) + "): " +
      DescribeBagDiff(index, rebuilt));
}

Status ValidateForestIndex(const ForestIndex& forest) {
  for (TreeId id : forest.TreeIds()) {
    const PqGramIndex* index = forest.Find(id);
    if (index == nullptr) {
      return FailedPreconditionError("TreeIds lists tree " +
                                     std::to_string(id) +
                                     " but Find returns null");
    }
    if (!(index->shape() == forest.shape())) {
      return FailedPreconditionError(
          "tree " + std::to_string(id) +
          " is indexed with a shape different from the forest's");
    }
    Status status = ValidatePqGramIndex(*index);
    if (!status.ok()) {
      return FailedPreconditionError("tree " + std::to_string(id) + ": " +
                                     status.message());
    }
  }
  return Status::Ok();
}

Status ValidateForestAgainstTrees(
    const ForestIndex& forest,
    const std::vector<std::pair<TreeId, const Tree*>>& trees) {
  PQIDX_RETURN_IF_ERROR(ValidateForestIndex(forest));
  if (static_cast<size_t>(forest.size()) != trees.size()) {
    return FailedPreconditionError(
        "forest indexes " + std::to_string(forest.size()) + " trees, " +
        std::to_string(trees.size()) + " expected");
  }
  for (const auto& [id, tree] : trees) {
    const PqGramIndex* index = forest.Find(id);
    if (index == nullptr) {
      return FailedPreconditionError("no index for tree " +
                                     std::to_string(id));
    }
    Status status = ValidateIndexAgainstTree(*index, *tree);
    if (!status.ok()) {
      return FailedPreconditionError("tree " + std::to_string(id) + ": " +
                                     status.message());
    }
  }
  return Status::Ok();
}

}  // namespace pqidx
