#include "core/profile_updater.h"

#include <algorithm>
#include <vector>

namespace pqidx {
namespace {

// A sequence of (id, label) pairs: a stretch of an (extended) child list
// from which q-wide windows are cut.
struct NodeSeq {
  std::vector<NodeId> ids;
  std::vector<LabelHash> labels;

  void Push(NodeId id, LabelHash label) {
    ids.push_back(id);
    labels.push_back(label);
  }
  void PushNulls(int n) {
    for (int i = 0; i < n; ++i) Push(kNullNodeId, kNullLabelHash);
  }
  void Append(const NodeSeq& other) {
    ids.insert(ids.end(), other.ids.begin(), other.ids.end());
    labels.insert(labels.end(), other.labels.begin(), other.labels.end());
  }
  int size() const { return static_cast<int>(ids.size()); }
};

// Returns the position of `id` in `ids`; aborts if absent.
int FindIdOrDie(const std::vector<NodeId>& ids, NodeId id) {
  auto it = std::find(ids.begin(), ids.end(), id);
  PQIDX_CHECK_MSG(it != ids.end(), "node id not found in row");
  return static_cast<int>(it - ids.begin());
}

}  // namespace

const QRow& ProfileUpdater::QRowOrDie(NodeId anchor, int row) const {
  const QRow* qrow = store_->FindQRow(anchor, row);
  PQIDX_CHECK_MSG(qrow != nullptr,
                  "q-row required by the update function is missing");
  return *qrow;
}

void ProfileUpdater::Apply(const EditOperation& op) {
  switch (op.kind) {
    case EditOpKind::kRename:
      ApplyRename(op);
      break;
    case EditOpKind::kDelete:
      ApplyDelete(op);
      break;
    case EditOpKind::kInsert:
      ApplyInsert(op);
      break;
  }
}

// U for e-bar = REN(n, l'): relabel n everywhere it occurs -- in the q-rows
// of its parent that cover its position, and in every stored p-part chain
// that passes through n (Algorithm 3 lines 2-7).
void ProfileUpdater::ApplyRename(const EditOperation& op) {
  const int q = store_->shape().q;
  const NodeId n = op.node;
  const LabelHash new_hash = dict_->Hash(op.label);

  const PRow* pn = store_->FindPRow(n);
  PQIDX_CHECK_MSG(pn != nullptr, "rename: anchor p-row missing");
  const NodeId v = pn->parent;
  const int k = pn->sib_pos;
  PQIDX_CHECK_MSG(v != kNullNodeId, "rename: edit operations never touch the root");

  // Q side: rows k .. k+q-1 of Q(v) are exactly the windows containing n.
  for (int r = k; r <= k + q - 1; ++r) {
    const QRow& row = QRowOrDie(v, r);
    int col = FindIdOrDie(row.ids, n);
    store_->SetQRowEntry(v, r, col, n, new_hash);
  }
  // P side: changePParts(P, n, .., p-1) -- every chain containing n.
  for (NodeId anchor : store_->PRowAnchorsContaining(n)) {
    const PRow* pa = store_->FindPRow(anchor);
    store_->SetPRowLabel(anchor, FindIdOrDie(pa->ids, n), new_hash);
  }
}

// U for e-bar = DEL(n): splice n's children into its parent v. The q-rows
// of v around n's position merge with Q(n) (the paper's
// Q^{k..k}(v) // Q(n) diagonal replacement), chains drop n, and sibling
// positions / row numbers shift by fanout(n) - 1.
void ProfileUpdater::ApplyDelete(const EditOperation& op) {
  const int p = store_->shape().p;
  const int q = store_->shape().q;
  const NodeId n = op.node;

  const PRow* pn_ptr = store_->FindPRow(n);
  PQIDX_CHECK_MSG(pn_ptr != nullptr, "delete: anchor p-row missing");
  const PRow pn = *pn_ptr;  // copied: the row is erased below
  const NodeId v = pn.parent;
  const int k = pn.sib_pos;
  const int fn = pn.fanout;
  PQIDX_CHECK_MSG(v != kNullNodeId, "delete: edit operations never touch the root");

  // Gather n's child diagonal d_0..d_{fn-1}: column q-1 of Q(n) row i is
  // child position i.
  NodeSeq mid;
  for (int i = 0; i < fn; ++i) {
    const QRow& row = QRowOrDie(n, i);
    mid.Push(row.ids[q - 1], row.labels[q - 1]);
  }
  // Context around position k in Q(v).
  NodeSeq left, right;
  if (q >= 2) {
    const QRow& lrow = QRowOrDie(v, k);
    for (int j = 0; j <= q - 2; ++j) left.Push(lrow.ids[j], lrow.labels[j]);
    const QRow& rrow = QRowOrDie(v, k + q - 1);
    for (int j = 1; j <= q - 1; ++j) {
      right.Push(rrow.ids[j], rrow.labels[j]);
    }
  }

  const PRow* pv = store_->FindPRow(v);
  PQIDX_CHECK_MSG(pv != nullptr, "delete: parent p-row missing");
  const int fv_new = pv->fanout + fn - 1;
  PQIDX_CHECK(fv_new >= 0);
  store_->SetPRowFanout(v, fv_new);

  // Replace the windows of v that contained n.
  for (int r = k; r <= k + q - 1; ++r) store_->EraseQRow(v, r);
  store_->EraseAllQRows(n);
  store_->RenumberQRows(v, k + q, fn - 1);
  if (fv_new == 0) {
    // v becomes a leaf: the special all-null q-part (paper's
    // A // (*..*) = (*..*) case, decided here by the tracked fanout).
    PQIDX_CHECK(fn == 0 && k == 0);
    QRow null_row;
    null_row.row = 0;
    null_row.ids.assign(static_cast<size_t>(q), kNullNodeId);
    null_row.labels.assign(static_cast<size_t>(q), kNullLabelHash);
    store_->InsertQRow(v, std::move(null_row));
  } else {
    NodeSeq s = left;
    s.Append(mid);
    s.Append(right);
    for (int o = 0; o + q <= s.size(); ++o) {
      QRow row;
      row.row = k + o;
      row.ids.assign(s.ids.begin() + o, s.ids.begin() + o + q);
      row.labels.assign(s.labels.begin() + o, s.labels.begin() + o + q);
      store_->InsertQRow(v, std::move(row));
    }
  }

  // changePParts: drop n from every chain through it. The replacement
  // ancestors come from n's own chain: s = (*, a_{p-1}, ..., a_1).
  NodeSeq tmpl;
  tmpl.PushNulls(1);
  for (int j = 0; j <= p - 2; ++j) tmpl.Push(pn.ids[j], pn.labels[j]);
  for (NodeId anchor : store_->PRowAnchorsContaining(n)) {
    if (anchor == n) continue;
    const PRow* pa = store_->FindPRow(anchor);
    int pos = FindIdOrDie(pa->ids, n);
    int dd = (p - 1) - pos;  // distance from n to this anchor
    std::vector<NodeId> ids(tmpl.ids.begin() + dd, tmpl.ids.end());
    std::vector<LabelHash> labels(tmpl.labels.begin() + dd,
                                  tmpl.labels.end());
    ids.insert(ids.end(), pa->ids.end() - dd, pa->ids.end());
    labels.insert(labels.end(), pa->labels.end() - dd, pa->labels.end());
    store_->ReplacePRowChain(anchor, std::move(ids), std::move(labels));
  }

  // Structural bookkeeping: n's children become children of v at position
  // k; later siblings of n shift by fn - 1.
  const std::vector<NodeId> v_children = store_->ChildAnchorsOf(v);
  const std::vector<NodeId> n_children = store_->ChildAnchorsOf(n);
  for (NodeId c : v_children) {
    if (c == n) continue;
    const PRow* pc = store_->FindPRow(c);
    if (pc->sib_pos > k) {
      store_->SetPRowParentAndPos(c, v, pc->sib_pos + fn - 1);
    }
  }
  for (NodeId c : n_children) {
    const PRow* pc = store_->FindPRow(c);
    store_->SetPRowParentAndPos(c, v, k + pc->sib_pos);
  }
  store_->ErasePRow(n);
}

// U for e-bar = INS(n, v, k, count): insert n under v at position k,
// adopting the `count` children at positions [k, k+count). The affected
// windows of v collapse into q windows around n, n receives its own q-rows
// over the adopted children, and chains gain n between v and each adopted
// child.
void ProfileUpdater::ApplyInsert(const EditOperation& op) {
  const int q = store_->shape().q;
  const NodeId n = op.node;
  const NodeId v = op.parent;
  const int k = op.position;
  const int count = op.count;
  const LabelHash new_hash = dict_->Hash(op.label);

  const PRow* pv = store_->FindPRow(v);
  PQIDX_CHECK_MSG(pv != nullptr, "insert: parent p-row missing");
  const int fv_old = pv->fanout;
  PQIDX_CHECK_MSG(k >= 0 && count >= 0 && k + count <= fv_old,
                  "insert: child range incoherent with tracked fanout");
  const std::vector<NodeId> pv_ids = pv->ids;  // copied before mutations
  const std::vector<LabelHash> pv_labels = pv->labels;

  // Gather moved-children diagonal and the window context.
  NodeSeq mid;
  for (int i = 0; i < count; ++i) {
    const QRow& row = QRowOrDie(v, k + i);
    mid.Push(row.ids[q - 1], row.labels[q - 1]);
  }
  NodeSeq left, right;
  if (fv_old > 0 && q >= 2) {
    const QRow& lrow = QRowOrDie(v, k);
    for (int j = 0; j <= q - 2; ++j) left.Push(lrow.ids[j], lrow.labels[j]);
    const QRow& rrow = QRowOrDie(v, k + count + q - 2);
    for (int j = 1; j <= q - 1; ++j) {
      right.Push(rrow.ids[j], rrow.labels[j]);
    }
  } else {
    left.PushNulls(q - 1);
    right.PushNulls(q - 1);
  }

  // Replace the affected windows of v.
  if (fv_old == 0) {
    PQIDX_CHECK(k == 0 && count == 0);
    store_->EraseQRow(v, 0);  // the all-null leaf row
  } else {
    for (int r = k; r <= k + count + q - 2; ++r) store_->EraseQRow(v, r);
  }
  store_->RenumberQRows(v, k + count + q - 1, 1 - count);
  NodeSeq s = left;
  s.Push(n, new_hash);
  s.Append(right);
  for (int o = 0; o + q <= s.size(); ++o) {
    QRow row;
    row.row = k + o;
    row.ids.assign(s.ids.begin() + o, s.ids.begin() + o + q);
    row.labels.assign(s.labels.begin() + o, s.labels.begin() + o + q);
    store_->InsertQRow(v, std::move(row));
  }

  // n's own q-rows: windows over the adopted children (all-null when n is
  // inserted as a leaf).
  if (count == 0) {
    QRow null_row;
    null_row.row = 0;
    null_row.ids.assign(static_cast<size_t>(q), kNullNodeId);
    null_row.labels.assign(static_cast<size_t>(q), kNullLabelHash);
    store_->InsertQRow(n, std::move(null_row));
  } else {
    NodeSeq sn;
    sn.PushNulls(q - 1);
    sn.Append(mid);
    sn.PushNulls(q - 1);
    for (int o = 0; o + q <= sn.size(); ++o) {
      QRow row;
      row.row = o;
      row.ids.assign(sn.ids.begin() + o, sn.ids.begin() + o + q);
      row.labels.assign(sn.labels.begin() + o, sn.labels.begin() + o + q);
      store_->InsertQRow(n, std::move(row));
    }
  }

  // changePParts: insert n between v and each adopted child in every chain
  // through that child (including the child's own anchor row).
  for (int i = 0; i < count; ++i) {
    NodeId c = mid.ids[i];
    PQIDX_CHECK(c != kNullNodeId);
    for (NodeId anchor : store_->PRowAnchorsContaining(c)) {
      const PRow* pa = store_->FindPRow(anchor);
      int pc = FindIdOrDie(pa->ids, c);
      if (pc == 0) continue;  // n lands above the chain window
      PQIDX_CHECK_MSG(pa->ids[pc - 1] == v,
                      "insert: chain does not pass through the parent");
      std::vector<NodeId> ids(pa->ids.begin() + 1, pa->ids.begin() + pc);
      std::vector<LabelHash> labels(pa->labels.begin() + 1,
                                    pa->labels.begin() + pc);
      ids.push_back(n);
      labels.push_back(new_hash);
      ids.insert(ids.end(), pa->ids.begin() + pc, pa->ids.end());
      labels.insert(labels.end(), pa->labels.begin() + pc,
                    pa->labels.end());
      store_->ReplacePRowChain(anchor, std::move(ids), std::move(labels));
    }
  }

  // Structural bookkeeping.
  const std::vector<NodeId> v_children = store_->ChildAnchorsOf(v);
  for (NodeId c : v_children) {
    const PRow* pc = store_->FindPRow(c);
    if (pc->sib_pos >= k && pc->sib_pos < k + count) {
      store_->SetPRowParentAndPos(c, n, pc->sib_pos - k);
    } else if (pc->sib_pos >= k + count) {
      store_->SetPRowParentAndPos(c, v, pc->sib_pos - count + 1);
    }
  }
  // New p-row for n, derived from v's chain.
  PRow pn;
  pn.anchor = n;
  pn.parent = v;
  pn.sib_pos = k;
  pn.fanout = count;
  pn.ids.assign(pv_ids.begin() + 1, pv_ids.end());
  pn.ids.push_back(n);
  pn.labels.assign(pv_labels.begin() + 1, pv_labels.end());
  pn.labels.push_back(new_hash);
  store_->InsertPRow(std::move(pn));
  store_->SetPRowFanout(v, fv_old - count + 1);
}

}  // namespace pqidx
