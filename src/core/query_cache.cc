#include "core/query_cache.h"

#include <algorithm>

#include "common/metrics.h"

namespace pqidx {
namespace {

// Registry cells mirroring the local atomics; registered once.
struct CacheMetrics {
  Counter* hits = Metrics::Default().counter("query_cache.hits");
  Counter* misses = Metrics::Default().counter("query_cache.misses");
  Counter* evictions = Metrics::Default().counter("query_cache.evictions");
  Counter* stale = Metrics::Default().counter("query_cache.stale");
  Gauge* entries = Metrics::Default().gauge("query_cache.entries");
  Gauge* bytes = Metrics::Default().gauge("query_cache.bytes");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

// Fixed per-entry bookkeeping estimate: list node + map slot + key.
constexpr size_t kEntryOverhead = 128;

}  // namespace

QueryCache::QueryCache(const Options& options)
    : max_bytes_(std::max<size_t>(options.max_bytes, kEntryOverhead)),
      shard_budget_(std::max<size_t>(max_bytes_ / kNumShards,
                                     kEntryOverhead)),
      shards_(kNumShards) {
  cache_metrics();  // registers the cells before the first lookup
}

size_t QueryCache::EntryBytes(const std::vector<LookupResult>& results) {
  return kEntryOverhead + results.size() * sizeof(LookupResult);
}

QueryCache::Shard& QueryCache::ShardFor(const Key& key) {
  return shards_[KeyHash{}(key) % kNumShards];
}

bool QueryCache::Get(const QueryFingerprint& fp, uint64_t uid,
                     std::vector<LookupResult>* out) {
  const Key key{fp.lo, fp.hi, uid};
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(&shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Refresh recency, then copy the payload out under the lock.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->results;
      hits_.fetch_add(1, std::memory_order_relaxed);
      cache_metrics().hits->Increment();
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  cache_metrics().misses->Increment();
  return false;
}

void QueryCache::Put(const QueryFingerprint& fp, uint64_t uid,
                     const std::vector<LookupResult>& results) {
  const Key key{fp.lo, fp.hi, uid};
  const size_t entry_bytes = EntryBytes(results);
  if (entry_bytes > shard_budget_) return;  // would evict everything
  Shard& shard = ShardFor(key);
  int64_t evicted = 0;
  int64_t delta_entries = 0;
  int64_t delta_bytes = 0;
  {
    MutexLock lock(&shard.mutex);
    if (shard.map.find(key) != shard.map.end()) return;
    while (shard.bytes + entry_bytes > shard_budget_ &&
           !shard.lru.empty()) {
      const Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      delta_bytes -= static_cast<int64_t>(victim.bytes);
      shard.map.erase(victim.key);
      shard.lru.pop_back();
      ++evicted;
      --delta_entries;
    }
    shard.lru.push_front(Entry{key, results, entry_bytes});
    shard.map.emplace(key, shard.lru.begin());
    shard.bytes += entry_bytes;
    delta_bytes += static_cast<int64_t>(entry_bytes);
    ++delta_entries;
  }
  entries_.fetch_add(delta_entries, std::memory_order_relaxed);
  bytes_.fetch_add(delta_bytes, std::memory_order_relaxed);
  cache_metrics().entries->Add(delta_entries);
  cache_metrics().bytes->Add(delta_bytes);
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    cache_metrics().evictions->Add(evicted);
  }
}

void QueryCache::OnPublish(const std::vector<uint64_t>& live_uids) {
  std::vector<uint64_t> live = live_uids;
  std::sort(live.begin(), live.end());
  int64_t dropped = 0;
  int64_t delta_bytes = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (std::binary_search(live.begin(), live.end(), it->key.uid)) {
        ++it;
        continue;
      }
      shard.bytes -= it->bytes;
      delta_bytes -= static_cast<int64_t>(it->bytes);
      shard.map.erase(it->key);
      it = shard.lru.erase(it);
      ++dropped;
    }
  }
  if (dropped > 0) {
    stale_.fetch_add(dropped, std::memory_order_relaxed);
    entries_.fetch_add(-dropped, std::memory_order_relaxed);
    bytes_.fetch_add(delta_bytes, std::memory_order_relaxed);
    cache_metrics().stale->Add(dropped);
    cache_metrics().entries->Add(-dropped);
    cache_metrics().bytes->Add(delta_bytes);
  }
}

void QueryCache::Clear() { OnPublish({}); }

}  // namespace pqidx
