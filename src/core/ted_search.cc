#include "core/ted_search.h"

#include <algorithm>
#include <cmath>

#include "core/distance.h"
#include "ted/zhang_shasha.h"

namespace pqidx {
namespace {

std::vector<TedSearchHit> VerifyAndRank(
    const std::vector<std::pair<TreeId, const Tree*>>& collection,
    const std::vector<std::pair<double, size_t>>& candidates,
    const Tree& query, int k, TedSearchStats* stats) {
  std::vector<TedSearchHit> hits;
  hits.reserve(candidates.size());
  for (const auto& [pq_distance, index] : candidates) {
    const auto& [id, tree] = collection[index];
    hits.push_back({id, TreeEditDistance(query, *tree), pq_distance});
    if (stats != nullptr) ++stats->verified;
  }
  std::sort(hits.begin(), hits.end(),
            [](const TedSearchHit& a, const TedSearchHit& b) {
              return a.ted < b.ted ||
                     (a.ted == b.ted && a.tree_id < b.tree_id);
            });
  if (static_cast<int>(hits.size()) > k) {
    hits.resize(static_cast<size_t>(k < 0 ? 0 : k));
  }
  return hits;
}

}  // namespace

std::vector<TedSearchHit> TedTopK(
    const std::vector<std::pair<TreeId, const Tree*>>& collection,
    const Tree& query, int k, const PqShape& shape, double oversample,
    TedSearchStats* stats) {
  PQIDX_CHECK(oversample >= 1.0);
  if (stats != nullptr) {
    *stats = TedSearchStats{static_cast<int>(collection.size()), 0};
  }
  if (k <= 0 || collection.empty()) return {};

  PqGramIndex query_bag = BuildIndex(query, shape);
  std::vector<std::pair<double, size_t>> ranked;
  ranked.reserve(collection.size());
  for (size_t i = 0; i < collection.size(); ++i) {
    ranked.emplace_back(
        PqGramDistance(query_bag, BuildIndex(*collection[i].second, shape)),
        i);
  }
  size_t budget = std::min(
      collection.size(),
      static_cast<size_t>(std::ceil(static_cast<double>(k) * oversample)));
  std::partial_sort(ranked.begin(), ranked.begin() + budget, ranked.end());
  ranked.resize(budget);
  return VerifyAndRank(collection, ranked, query, k, stats);
}

std::vector<TedSearchHit> TedTopKExhaustive(
    const std::vector<std::pair<TreeId, const Tree*>>& collection,
    const Tree& query, int k, const PqShape& shape,
    TedSearchStats* stats) {
  if (stats != nullptr) {
    *stats = TedSearchStats{static_cast<int>(collection.size()), 0};
  }
  if (k <= 0 || collection.empty()) return {};
  PqGramIndex query_bag = BuildIndex(query, shape);
  std::vector<std::pair<double, size_t>> all;
  all.reserve(collection.size());
  for (size_t i = 0; i < collection.size(); ++i) {
    all.emplace_back(
        PqGramDistance(query_bag, BuildIndex(*collection[i].second, shape)),
        i);
  }
  return VerifyAndRank(collection, all, query, k, stats);
}

}  // namespace pqidx
