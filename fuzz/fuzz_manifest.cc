// Fuzz harness for the sharded-store manifest codec
// (storage/shard_manifest.h). DecodeShardManifest is the first thing a
// sharded open trusts from disk, so it must bounds-check every field and
// reject torn slot images via the per-slot checksum -- never crash, never
// accept an out-of-range shard count or routing mode. Accepted inputs are
// re-encoded and must decode back to the same commit point (slot identity
// aside: re-encoding writes both slots from the winner).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "storage/shard_manifest.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string input(reinterpret_cast<const char*>(data), size);
  pqidx::StatusOr<pqidx::ShardManifest> decoded =
      pqidx::DecodeShardManifest(input);
  if (!decoded.ok()) return 0;

  // Everything a caller acts on must be in range.
  if (decoded->shard_count < 1 ||
      decoded->shard_count > pqidx::kMaxStoreShards) {
    std::abort();
  }
  if (decoded->routing != pqidx::kShardRoutingModulo) std::abort();

  // Round-trip: the surviving commit point re-encodes losslessly.
  std::string bytes = pqidx::EncodeShardManifest(*decoded);
  if (bytes.size() != pqidx::kShardManifestSize) std::abort();
  pqidx::StatusOr<pqidx::ShardManifest> again =
      pqidx::DecodeShardManifest(bytes);
  if (!again.ok()) std::abort();
  if (again->shard_count != decoded->shard_count ||
      again->committed_ticket != decoded->committed_ticket ||
      again->committed_cursor != decoded->committed_cursor) {
    std::abort();
  }
  return 0;
}
