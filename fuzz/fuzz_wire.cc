// Fuzz harness for the pqidxd wire protocol (src/service/wire.h): the
// frame header decoder and every request/response payload decoder. These
// are the bytes an index server reads from untrusted network peers, so
// every outcome must be a clean Status or a valid value -- never UB, an
// abort, or an allocation driven by an attacker-declared length.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/serde.h"
#include "service/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // Frame header: exactly the first kFrameHeaderSize bytes, the way the
  // server slices them off the stream. Also feed the raw (possibly short
  // or long) input to pin the length check itself.
  {
    pqidx::FrameHeader header;
    (void)pqidx::DecodeFrameHeader(input, &header);
    if (input.size() >= pqidx::kFrameHeaderSize) {
      if (pqidx::DecodeFrameHeader(input.substr(0, pqidx::kFrameHeaderSize),
                                   &header)
              .ok()) {
        // Accepted headers must round-trip through the encoder.
        std::string reencoded = pqidx::EncodeFrame(header, std::string_view());
        pqidx::FrameHeader again;
        pqidx::Status ok = pqidx::DecodeFrameHeader(
            std::string_view(reencoded).substr(0, pqidx::kFrameHeaderSize),
            &again);
        if (!ok.ok()) __builtin_trap();
      }
    }
  }

  // Request payload decoders over the remaining bytes (the server hands
  // them the payload that followed an accepted header).
  std::string_view payload =
      input.size() > pqidx::kFrameHeaderSize
          ? input.substr(pqidx::kFrameHeaderSize)
          : input;
  { (void)pqidx::LookupRequest::Decode(payload); }
  { (void)pqidx::AddTreeRequest::Decode(payload); }
  { (void)pqidx::ApplyEditsRequest::Decode(payload); }

  // Top-k requests (kTopK): accepted payloads carry a bounded k and
  // must round-trip.
  {
    pqidx::StatusOr<pqidx::TopKRequest> request =
        pqidx::TopKRequest::Decode(payload);
    if (request.ok()) {
      if (request->k < 0 || request->k > pqidx::TopKRequest::kMaxK) {
        __builtin_trap();
      }
      pqidx::ByteWriter writer;
      request->Encode(&writer);
      pqidx::StatusOr<pqidx::TopKRequest> again =
          pqidx::TopKRequest::Decode(writer.data());
      if (!again.ok() || again->k != request->k ||
          !(again->query == request->query)) {
        __builtin_trap();
      }
    }
  }

  // Replication handshake (kSubscribe): what the leader reads from an
  // untrusted subscriber. Accepted requests must round-trip.
  {
    pqidx::StatusOr<pqidx::SubscribeRequest> request =
        pqidx::SubscribeRequest::Decode(payload);
    if (request.ok()) {
      pqidx::ByteWriter writer;
      request->Encode(&writer);
      pqidx::StatusOr<pqidx::SubscribeRequest> again =
          pqidx::SubscribeRequest::Decode(writer.data());
      if (!again.ok() || again->from_ticket != request->from_ticket ||
          again->force_snapshot != request->force_snapshot) {
        __builtin_trap();
      }
    }
  }

  // Replication stream (kSubscribeAck / kDeltaFrame): what a follower
  // reads from a malicious or corrupted leader before applying it to
  // its local store. Accepted frames must round-trip entry for entry.
  {
    pqidx::ByteReader reader(payload);
    pqidx::Status transported;
    if (pqidx::DecodeStatus(&reader, &transported).ok()) {
      (void)pqidx::SubscribeAck::Decode(&reader);
    }
  }
  {
    pqidx::StatusOr<pqidx::DeltaFrame> frame =
        pqidx::DeltaFrame::Decode(payload);
    if (frame.ok()) {
      pqidx::ByteWriter writer;
      frame->Encode(&writer);
      pqidx::StatusOr<pqidx::DeltaFrame> again =
          pqidx::DeltaFrame::Decode(writer.data());
      if (!again.ok() || again->ticket != frame->ticket ||
          again->publish_us != frame->publish_us ||
          again->last_chunk != frame->last_chunk ||
          !(again->entries == frame->entries)) {
        __builtin_trap();
      }
    }
  }

  // Response decoders (the client's attack surface: a malicious or
  // corrupted server).
  {
    pqidx::ByteReader reader(payload);
    pqidx::Status transported;
    if (pqidx::DecodeStatus(&reader, &transported).ok()) {
      (void)pqidx::LookupResponse::Decode(&reader);
    }
  }
  {
    pqidx::ByteReader reader(payload);
    (void)pqidx::ServiceStats::Decode(&reader);
  }
  {
    // Metrics snapshots (kStatsSnapshot responses): accepted snapshots
    // must re-encode and decode to the same samples, and exposition must
    // not trip on hostile names or bucket layouts.
    pqidx::ByteReader reader(payload);
    pqidx::StatusOr<pqidx::MetricsSnapshot> snapshot =
        pqidx::DecodeMetricsSnapshot(&reader);
    if (snapshot.ok()) {
      (void)snapshot->ToText();
      (void)snapshot->ToJson();
      pqidx::ByteWriter writer;
      pqidx::EncodeMetricsSnapshot(*snapshot, &writer);
      std::string bytes = writer.Release();
      pqidx::ByteReader again(bytes);
      pqidx::StatusOr<pqidx::MetricsSnapshot> redecoded =
          pqidx::DecodeMetricsSnapshot(&again);
      if (!redecoded.ok() || !(*redecoded == *snapshot)) __builtin_trap();
    }
  }
  return 0;
}
