// Fuzz harness for the SAX-style XML scanner and the tree parser built
// on it. Arbitrary bytes must scan to either a clean event stream or a
// Status error; accepted documents must materialize into a consistent
// tree. Event payloads are touched byte-by-byte so ASan sees any view
// that outlives or overruns its backing buffer.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "tree/tree.h"
#include "xml/xml_parser.h"
#include "xml/xml_scanner.h"

namespace {

// Checksums every byte of every callback payload: forces the compiler to
// actually read the string_views the scanner hands out.
class ChecksummingHandler : public pqidx::XmlEventHandler {
 public:
  pqidx::Status OnOpen(std::string_view name) override {
    ++depth_;
    Mix(name);
    return pqidx::Status::Ok();
  }
  pqidx::Status OnAttribute(std::string_view name,
                            std::string_view value) override {
    Mix(name);
    Mix(value);
    return pqidx::Status::Ok();
  }
  pqidx::Status OnText(std::string_view text) override {
    Mix(text);
    return pqidx::Status::Ok();
  }
  pqidx::Status OnClose(std::string_view name) override {
    Mix(name);
    // The scanner must never report more closes than opens.
    if (--depth_ < 0) {
      return pqidx::DataLossError("scanner emitted unbalanced OnClose");
    }
    return pqidx::Status::Ok();
  }

  uint64_t checksum() const { return checksum_; }

 private:
  void Mix(std::string_view s) {
    for (char c : s) {
      checksum_ = checksum_ * 1099511628211ULL + static_cast<uint8_t>(c);
    }
  }
  uint64_t checksum_ = 1469598103934665603ULL;
  int depth_ = 0;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view xml(reinterpret_cast<const char*>(data), size);

  ChecksummingHandler handler;
  pqidx::Status scanned = pqidx::ScanXml(xml, &handler);
  (void)scanned;
  // Keep the checksum observable so the Mix loops are not dead code.
  volatile uint64_t sink = handler.checksum();
  (void)sink;

  pqidx::StatusOr<pqidx::Tree> parsed = pqidx::ParseXml(xml);
  if (parsed.ok()) {
    parsed->CheckConsistency();
  }
  return 0;
}
