// Fuzz harness for linear-hash page images: the input bytes become the
// page file (page 0 = the table's meta page), and the table is attached
// and exercised on top of them. Corrupt counts, dangling or cyclic chain
// pointers, and inconsistent meta fields must all surface as Status
// errors -- never as out-of-bounds page access or unbounded loops.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/serde.h"
#include "storage/linear_hash.h"
#include "storage/pager.h"

namespace {

std::string TempPath() {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/pqidx_fuzz_lh_" + std::to_string(getpid()) +
         ".pages";
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Round the image up to whole pages (zero-padded) so Pager::Open gets
  // past the size check and the linear-hash validation runs.
  std::string image(reinterpret_cast<const char*>(data), size);
  size_t pages = (size + pqidx::kPageSize - 1) / pqidx::kPageSize;
  if (pages == 0) pages = 1;
  if (pages > 64) pages = 64;  // bound harness I/O, not a parser limit
  image.resize(pages * pqidx::kPageSize, '\0');

  const std::string path = TempPath();
  if (!pqidx::WriteFile(path, image).ok()) return 0;
  std::remove((path + ".wal").c_str());

  {
    pqidx::Pager pager(/*pool_pages=*/16);
    if (pager.Open(path, /*create=*/false).ok()) {
      pqidx::LinearHashTable table(&pager);
      if (table.Attach(0).ok()) {
        // Reads: a probe key, then a full sweep. Both may fail with
        // Status on corrupt chains; neither may crash or hang.
        (void)table.Get(1, 0x1234567890abcdefULL);
        uint64_t seen = 0;
        (void)table.ForEach([&seen](uint32_t, uint64_t, int64_t) { ++seen; });
        // Writes through the validated paths, including a split-prone
        // insert burst and a decrement of a (probably absent) key.
        for (uint32_t i = 0; i < 8; ++i) {
          if (!table.AddDelta(i, 0x9e3779b97f4a7c15ULL * (i + 1), 1).ok()) {
            break;
          }
        }
        (void)table.AddDelta(2, 42, -1);
        (void)table.Get(3, 99);
        (void)pager.Commit();
      }
      (void)pager.Close();
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return 0;
}
