// Fuzz harness for the byte-level decode surfaces built on ByteReader:
// the LEB128/fixed-width primitives themselves and the record decoders
// layered on them (pq-gram index, forest index, serialized trees). Every
// outcome must be a clean Status or a valid value -- never UB, an abort,
// or an out-of-bounds read (the sanitizers watch for all three).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/serde.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "storage/tree_store.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // Primitive decode loop: the input drives both the operation sequence
  // and the bytes being decoded.
  {
    pqidx::ByteReader reader(input);
    uint8_t tag;
    while (reader.GetU8(&tag).ok()) {
      switch (tag % 6) {
        case 0: {
          uint8_t v;
          if (!reader.GetU8(&v).ok()) return 0;
          break;
        }
        case 1: {
          uint32_t v;
          if (!reader.GetU32(&v).ok()) return 0;
          break;
        }
        case 2: {
          uint64_t v;
          if (!reader.GetU64(&v).ok()) return 0;
          break;
        }
        case 3: {
          uint64_t v;
          if (!reader.GetVarint(&v).ok()) return 0;
          break;
        }
        case 4: {
          int64_t v;
          if (!reader.GetSignedVarint(&v).ok()) return 0;
          break;
        }
        default: {
          std::string s;
          if (!reader.GetString(&s).ok()) return 0;
          break;
        }
      }
    }
  }

  // Record decoders over the raw input. Accepted values must satisfy
  // their own invariants (checked cheaply here; aborts would surface).
  {
    pqidx::ByteReader reader(input);
    pqidx::StatusOr<pqidx::PqGramIndex> index =
        pqidx::PqGramIndex::Deserialize(&reader);
    if (index.ok()) {
      pqidx::ComputeIndexStats(*index);
      index->SerializedBytes();
    }
  }
  {
    pqidx::ByteReader reader(input);
    pqidx::StatusOr<pqidx::ForestIndex> forest =
        pqidx::ForestIndex::Deserialize(&reader);
    if (forest.ok()) {
      forest->TreeIds();
      forest->SerializedBytes();
    }
  }
  {
    pqidx::ByteReader reader(input);
    pqidx::StatusOr<pqidx::Tree> tree = pqidx::DeserializeTree(&reader);
    if (tree.ok()) {
      tree->CheckConsistency();
    }
  }
  return 0;
}
