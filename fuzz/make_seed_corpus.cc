// Regenerates the checked-in seed corpora under fuzz/corpus/ from the
// current serialization formats, so seeds stay valid when formats evolve:
//
//   ./build/fuzz/make_seed_corpus fuzz/corpus
//
// Each seed is a *valid* artifact (serialized index, well-formed XML,
// committed hash-table image, sealed WAL): coverage-guided fuzzers
// mutate outward from the accepting paths, which reaches far deeper than
// random bytes, and the standalone smoke mode replays them to pin the
// happy paths under sanitizers.

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/metrics.h"
#include "common/random.h"
#include "common/serde.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"
#include "service/wire.h"
#include "storage/linear_hash.h"
#include "storage/pager.h"
#include "storage/shard_manifest.h"
#include "storage/tree_store.h"
#include "tree/generators.h"
#include "xml/xml_writer.h"

namespace pqidx {
namespace {

Status WriteSeed(const std::string& dir, const std::string& name,
                 std::string_view bytes) {
  std::filesystem::create_directories(dir);
  return WriteFile(dir + "/" + name, bytes);
}

Status MakeSerdeSeeds(const std::string& dir) {
  Rng rng(41);
  {
    Tree tree = GenerateDblpLike(nullptr, &rng, 6);
    ByteWriter writer;
    BuildIndex(tree, PqShape{3, 3}).Serialize(&writer);
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "pqgram_index.bin", writer.data()));
  }
  {
    ForestIndex forest(PqShape{2, 2});
    for (TreeId id = 0; id < 3; ++id) {
      forest.AddTree(id, GenerateXmarkLike(nullptr, &rng, 12));
    }
    ByteWriter writer;
    forest.Serialize(&writer);
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "forest_index.bin", writer.data()));
  }
  {
    Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = 25});
    ByteWriter writer;
    SerializeTree(tree, &writer);
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "tree.bin", writer.data()));
  }
  {
    // A primitive stream in the harness's tag-driven format.
    ByteWriter writer;
    writer.PutU8(3);  // tag: varint
    writer.PutVarint(1u << 20);
    writer.PutU8(5);  // tag: string
    writer.PutString("seed");
    writer.PutU8(2);  // tag: u64
    writer.PutU64(0x0123456789abcdefULL);
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "primitives.bin", writer.data()));
  }
  return Status::Ok();
}

Status MakeXmlSeeds(const std::string& dir) {
  Rng rng(42);
  PQIDX_RETURN_IF_ERROR(WriteSeed(
      dir, "generated.xml", WriteXml(GenerateXmarkLike(nullptr, &rng, 30))));
  PQIDX_RETURN_IF_ERROR(WriteSeed(
      dir, "features.xml",
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE doc>\n"
      "<doc id=\"1\" kind='seed'>\n"
      "  <!-- comment -->\n"
      "  <a>text &amp; entities &lt;here&gt; &#65; &#x42;</a>\n"
      "  <b><![CDATA[raw <cdata> & bytes]]></b>\n"
      "  <empty/>\n"
      "</doc>\n"));
  PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "minimal.xml", "<r/>"));
  return Status::Ok();
}

Status MakeLinearHashSeeds(const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string tmp = dir + "/.tmp_lh.pages";
  {
    Pager pager(64);
    PQIDX_RETURN_IF_ERROR(pager.Open(tmp, /*create=*/true));
    StatusOr<PageId> meta = pager.AllocatePage();
    PQIDX_RETURN_IF_ERROR(meta.status());
    LinearHashTable table(&pager);
    PQIDX_RETURN_IF_ERROR(table.Create(*meta));
    // Enough entries to force overflow chains and at least one split.
    for (uint32_t i = 0; i < 1500; ++i) {
      PQIDX_RETURN_IF_ERROR(
          table.AddDelta(i % 7, 0x9e3779b97f4a7c15ULL * i, 1 + i % 3));
    }
    PQIDX_RETURN_IF_ERROR(pager.Commit());
    PQIDX_RETURN_IF_ERROR(pager.Close());
  }
  std::string image;
  PQIDX_RETURN_IF_ERROR(ReadFile(tmp, &image));
  std::remove(tmp.c_str());
  std::remove((tmp + ".wal").c_str());
  return WriteSeed(dir, "table.pages", image);
}

Status MakePagerSeeds(const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string tmp = dir + "/.tmp_pg.pages";
  // A commit "crashed" after the WAL seal leaves a valid sealed WAL next
  // to a stale file: the exact state ReplayOrDiscardWal exists for.
  {
    Pager pager(16);
    PQIDX_RETURN_IF_ERROR(pager.Open(tmp, /*create=*/true));
    for (int i = 0; i < 3; ++i) {
      StatusOr<PageId> id = pager.AllocatePage();
      PQIDX_RETURN_IF_ERROR(id.status());
      StatusOr<uint8_t*> page = pager.MutablePage(*id);
      PQIDX_RETURN_IF_ERROR(page.status());
      (*page)[0] = static_cast<uint8_t>(0x10 + i);
      (*page)[kPageSize - 1] = static_cast<uint8_t>(0xf0 + i);
    }
    PQIDX_RETURN_IF_ERROR(pager.Commit());
    StatusOr<uint8_t*> page = pager.MutablePage(1);
    PQIDX_RETURN_IF_ERROR(page.status());
    (*page)[7] = 0x77;
    PQIDX_RETURN_IF_ERROR(
        pager.CommitWithCrash(Pager::CrashPoint::kAfterWalSeal));
  }
  std::string file_image, wal_image;
  PQIDX_RETURN_IF_ERROR(ReadFile(tmp, &file_image));
  PQIDX_RETURN_IF_ERROR(ReadFile(tmp + ".wal", &wal_image));
  std::remove(tmp.c_str());
  std::remove((tmp + ".wal").c_str());

  // Seed for the harness's WAL surface: one size byte, then the WAL.
  PQIDX_RETURN_IF_ERROR(
      WriteSeed(dir, "sealed_wal.bin", std::string(1, '\x02') + wal_image));
  // Seed for the page-file surface: a committed 3-page file.
  PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "page_file.bin", file_image));
  return Status::Ok();
}

Status MakeManifestSeeds(const std::string& dir) {
  {
    // A fresh store's manifest: both slots at ticket 0.
    ShardManifest manifest;
    manifest.shard_count = 4;
    PQIDX_RETURN_IF_ERROR(
        WriteSeed(dir, "fresh.manifest", EncodeShardManifest(manifest)));
  }
  {
    // A lived-in manifest with distinct slot generations: slot A holds
    // the previous commit, slot B the latest, as after a group commit.
    ShardManifest manifest;
    manifest.shard_count = 16;
    manifest.committed_ticket = 41;
    manifest.committed_cursor = 1000;
    std::string bytes = EncodeShardManifest(manifest);
    uint8_t slot[kShardManifestSlotSize];
    EncodeShardManifestSlot(42, 1007, slot);
    bytes.replace(kShardManifestSlotBOff, kShardManifestSlotSize,
                  reinterpret_cast<const char*>(slot), kShardManifestSlotSize);
    PQIDX_RETURN_IF_ERROR(
        WriteSeed(dir, "two_generations.manifest", bytes));
  }
  {
    // A torn slot-B write: decode must fall back to slot A. Seeds the
    // checksum-rejection path the fuzzer mutates outward from.
    ShardManifest manifest;
    manifest.shard_count = 2;
    manifest.committed_ticket = 9;
    manifest.committed_cursor = 9;
    std::string bytes = EncodeShardManifest(manifest);
    bytes[kShardManifestSlotBOff + 3] =
        static_cast<char>(bytes[kShardManifestSlotBOff + 3] ^ 0x40);
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "torn_slot.manifest", bytes));
  }
  return Status::Ok();
}

Status MakeWireSeeds(const std::string& dir) {
  Rng rng(44);
  const PqShape shape{2, 3};
  Tree tree = GenerateDblpLike(nullptr, &rng, 8);
  PqGramIndex bag = BuildIndex(tree, shape);

  // Full frames (header + payload), the shape the harness slices.
  {
    LookupRequest request;
    request.query = bag;
    request.tau = 0.5;
    ByteWriter writer;
    request.Encode(&writer);
    FrameHeader header;
    header.type = MessageType::kLookup;
    header.request_id = 1;
    header.payload_size = static_cast<uint32_t>(writer.data().size());
    PQIDX_RETURN_IF_ERROR(
        WriteSeed(dir, "lookup_frame.bin", EncodeFrame(header, writer.data())));
  }
  {
    TopKRequest request;
    request.query = bag;
    request.k = 10;
    ByteWriter writer;
    request.Encode(&writer);
    FrameHeader header;
    header.type = MessageType::kTopK;
    header.request_id = 6;
    header.payload_size = static_cast<uint32_t>(writer.data().size());
    PQIDX_RETURN_IF_ERROR(
        WriteSeed(dir, "topk_frame.bin", EncodeFrame(header, writer.data())));
  }
  {
    AddTreeRequest request;
    request.tree_id = 7;
    request.bag = bag;
    ByteWriter writer;
    request.Encode(&writer);
    FrameHeader header;
    header.type = MessageType::kAddTree;
    header.request_id = 2;
    header.payload_size = static_cast<uint32_t>(writer.data().size());
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "add_tree_frame.bin",
                                    EncodeFrame(header, writer.data())));
  }
  {
    ApplyEditsRequest request;
    request.tree_id = 7;
    request.plus = bag;
    request.minus = PqGramIndex(shape);
    request.log_ops = 3;
    ByteWriter writer;
    request.Encode(&writer);
    FrameHeader header;
    header.type = MessageType::kApplyEdits;
    header.request_id = 3;
    header.payload_size = static_cast<uint32_t>(writer.data().size());
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "apply_edits_frame.bin",
                                    EncodeFrame(header, writer.data())));
  }
  {
    // A response frame: status + lookup results after the header.
    ByteWriter writer;
    EncodeStatus(Status::Ok(), &writer);
    LookupResponse response;
    response.results.push_back(LookupResult{7, 0.25});
    response.results.push_back(LookupResult{9, 0.5});
    response.Encode(&writer);
    FrameHeader header;
    header.type = MessageType::kLookup;
    header.flags = kFrameFlagResponse;
    header.request_id = 1;
    header.payload_size = static_cast<uint32_t>(writer.data().size());
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "lookup_response_frame.bin",
                                    EncodeFrame(header, writer.data())));
  }
  {
    ByteWriter writer;
    EncodeStatus(Status::Ok(), &writer);
    ServiceStats stats;
    stats.p = shape.p;
    stats.q = shape.q;
    stats.tree_count = 5;
    stats.lookups = 100;
    stats.edits_applied = 40;
    stats.edit_commits = 9;
    stats.max_batch = 8;
    stats.Encode(&writer);
    FrameHeader header;
    header.type = MessageType::kStats;
    header.flags = kFrameFlagResponse;
    header.request_id = 4;
    header.payload_size = static_cast<uint32_t>(writer.data().size());
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "stats_response_frame.bin",
                                    EncodeFrame(header, writer.data())));
  }
  {
    // A kStatsSnapshot request is an empty-payload frame; mutations of
    // this seed exercise the server's non-empty-payload rejection.
    FrameHeader header;
    header.type = MessageType::kStatsSnapshot;
    header.request_id = 5;
    header.payload_size = 0;
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "stats_snapshot_request_frame.bin",
                                    EncodeFrame(header, std::string_view())));
  }
  {
    // A kStatsSnapshot response: status + one sample of each kind, so
    // the fuzzer starts from an accepting path through every branch of
    // DecodeMetricsSnapshot (including histogram bucket pairs).
    MetricsSnapshot snapshot;
    MetricSample lookups;
    lookups.kind = MetricSample::Kind::kCounter;
    lookups.name = "server.lookups";
    lookups.value = 100;
    snapshot.samples.push_back(lookups);
    MetricSample epoch;
    epoch.kind = MetricSample::Kind::kGauge;
    epoch.name = "server.snapshot_epoch";
    epoch.value = 9;
    snapshot.samples.push_back(epoch);
    MetricSample latency;
    latency.kind = MetricSample::Kind::kHistogram;
    latency.name = "server.lookup_us";
    latency.count = 3;
    latency.sum = 106;
    latency.max = 100;
    latency.buckets = {{1, 1}, {2, 1}, {7, 1}};
    snapshot.samples.push_back(latency);
    ByteWriter writer;
    EncodeStatus(Status::Ok(), &writer);
    EncodeMetricsSnapshot(snapshot, &writer);
    FrameHeader header;
    header.type = MessageType::kStatsSnapshot;
    header.flags = kFrameFlagResponse;
    header.request_id = 5;
    header.payload_size = static_cast<uint32_t>(writer.data().size());
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "stats_snapshot_response_frame.bin",
                                    EncodeFrame(header, writer.data())));
  }
  {
    // A kSubscribe handshake frame (replication follower -> leader).
    SubscribeRequest request;
    request.from_ticket = 42;
    request.force_snapshot = false;
    ByteWriter writer;
    request.Encode(&writer);
    FrameHeader header;
    header.type = MessageType::kSubscribe;
    header.request_id = 6;
    header.payload_size = static_cast<uint32_t>(writer.data().size());
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "subscribe_frame.bin",
                                    EncodeFrame(header, writer.data())));
  }
  {
    // The matching kSubscribeAck response (status + ack).
    SubscribeAck ack;
    ack.mode = SubscribeAck::Mode::kSnapshot;
    ack.ticket = 42;
    ack.p = static_cast<uint8_t>(shape.p);
    ack.q = static_cast<uint8_t>(shape.q);
    ByteWriter writer;
    EncodeStatus(Status::Ok(), &writer);
    ack.Encode(&writer);
    FrameHeader header;
    header.type = MessageType::kSubscribeAck;
    header.flags = kFrameFlagResponse;
    header.request_id = 6;
    header.payload_size = static_cast<uint32_t>(writer.data().size());
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "subscribe_ack_frame.bin",
                                    EncodeFrame(header, writer.data())));
  }
  {
    // A kDeltaFrame with both entry kinds (a whole-bag add and an
    // (I+, I-) update), so mutations start from an accepting path
    // through DecodeDeltaEntry's branches.
    DeltaFrame frame;
    frame.ticket = 43;
    frame.publish_us = 1234567;
    frame.last_chunk = true;
    DeltaEntry add;
    add.tree_id = 7;
    add.is_add = true;
    add.plus = bag;
    frame.entries.push_back(std::move(add));
    DeltaEntry update;
    update.tree_id = 9;
    update.is_add = false;
    update.plus = bag;
    update.minus = PqGramIndex(shape);
    frame.entries.push_back(std::move(update));
    ByteWriter writer;
    frame.Encode(&writer);
    FrameHeader header;
    header.type = MessageType::kDeltaFrame;
    header.flags = kFrameFlagResponse;
    header.request_id = 6;
    header.payload_size = static_cast<uint32_t>(writer.data().size());
    PQIDX_RETURN_IF_ERROR(WriteSeed(dir, "delta_frame.bin",
                                    EncodeFrame(header, writer.data())));
  }
  return Status::Ok();
}

}  // namespace
}  // namespace pqidx

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : "fuzz/corpus";
  struct Job {
    const char* name;
    pqidx::Status (*make)(const std::string&);
  };
  const Job jobs[] = {
      {"serde", pqidx::MakeSerdeSeeds},
      {"xml_scanner", pqidx::MakeXmlSeeds},
      {"linear_hash", pqidx::MakeLinearHashSeeds},
      {"pager", pqidx::MakePagerSeeds},
      {"manifest", pqidx::MakeManifestSeeds},
      {"wire", pqidx::MakeWireSeeds},
  };
  for (const Job& job : jobs) {
    pqidx::Status status = job.make(root + "/" + job.name);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", job.name, status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s/%s\n", root.c_str(), job.name);
  }
  return 0;
}
