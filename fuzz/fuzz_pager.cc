// Fuzz harness for pager file headers and WAL recovery. Two surfaces per
// input: (1) the bytes as a WAL sidecar next to a small valid page file,
// driving ReplayOrDiscardWal through torn tails, forged seals, and
// out-of-range record ids; (2) the bytes as the page file itself,
// driving Open's size/header validation. Recovery must end in either a
// usable pager or a Status error; it must never write outside the page
// space or trust unchecksummed lengths.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/serde.h"
#include "storage/pager.h"

namespace {

std::string TempPath(const char* tag) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/pqidx_fuzz_pg_" + std::to_string(getpid()) +
         "_" + tag + ".pages";
}

void ExerciseOpenPager(pqidx::Pager* pager) {
  pqidx::PageId count = pager->page_count();
  if (count > 64) count = 64;  // bound harness work on huge sparse files
  for (pqidx::PageId id = 0; id < count; ++id) {
    pqidx::StatusOr<const uint8_t*> page = pager->ReadPage(id);
    if (!page.ok()) break;
    // Touch both ends so ASan sees the whole frame.
    volatile uint8_t sink = (*page)[0] ^ (*page)[pqidx::kPageSize - 1];
    (void)sink;
  }
  pqidx::StatusOr<pqidx::PageId> fresh = pager->AllocatePage();
  if (fresh.ok()) {
    pqidx::StatusOr<uint8_t*> writable = pager->MutablePage(*fresh);
    if (writable.ok()) {
      (*writable)[0] = 0xab;
      (*writable)[pqidx::kPageSize - 1] = 0xcd;
    }
    (void)pager->Commit();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string input(reinterpret_cast<const char*>(data), size);

  // Surface 1: input as the WAL beside a 2-page zero file. First byte
  // (when present) sizes the main file so replay interacts with several
  // committed-page-count states.
  {
    const std::string path = TempPath("wal");
    size_t main_pages = 1 + (size > 0 ? data[0] % 4 : 0);
    std::string main_file(main_pages * pqidx::kPageSize, '\0');
    std::string wal = size > 1 ? input.substr(1) : std::string();
    if (pqidx::WriteFile(path, main_file).ok() &&
        pqidx::WriteFile(path + ".wal", wal).ok()) {
      pqidx::Pager pager(/*pool_pages=*/8);
      if (pager.Open(path, /*create=*/false).ok()) {
        ExerciseOpenPager(&pager);
        (void)pager.Close();
      }
    }
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
  }

  // Surface 2: input as the page file itself (no WAL): header and size
  // validation, then reads of whatever was accepted.
  {
    const std::string path = TempPath("file");
    if (pqidx::WriteFile(path, input).ok()) {
      std::remove((path + ".wal").c_str());
      pqidx::Pager pager(/*pool_pages=*/8);
      if (pager.Open(path, /*create=*/false).ok()) {
        ExerciseOpenPager(&pager);
        (void)pager.Rollback();
        (void)pager.Close();
      }
    }
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
  }
  return 0;
}
