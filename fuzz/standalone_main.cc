// Standalone driver for the libFuzzer-style harnesses in this directory.
//
// Each harness defines LLVMFuzzerTestOneInput; when clang's libFuzzer is
// available the harness links against -fsanitize=fuzzer instead of this
// file and explores coverage-guided inputs. This driver provides the
// toolchain-independent short-run mode used by ctest and CI:
//
//   fuzz_serde [--smoke N] [path-or-dir ...]
//
// runs every file in the given corpus paths, then N deterministic
// pseudo-random inputs, and exits non-zero only if a harness misbehaves
// (sanitizers abort the process on their own).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open corpus file: %s\n", path.c_str());
    return false;
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    std::fprintf(stderr, "read error: %s\n", path.c_str());
    return false;
  }
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

// xorshift64*: deterministic input generator for the smoke mode, so two
// runs of the same binary always exercise identical byte streams.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t smoke = 0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0 && i + 1 < argc) {
      smoke = std::strtoull(argv[++i], nullptr, 10);
    } else {
      paths.push_back(argv[i]);
    }
  }

  size_t executed = 0;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::string> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      std::sort(files.begin(), files.end());  // deterministic order
      for (const std::string& file : files) {
        if (!RunFile(file)) return 1;
        ++executed;
      }
    } else {
      if (!RunFile(path)) return 1;
      ++executed;
    }
  }

  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (uint64_t i = 0; i < smoke; ++i) {
    size_t len = static_cast<size_t>(NextRand(&state) % 2048);
    std::vector<uint8_t> bytes(len);
    for (size_t b = 0; b < len; ++b) {
      bytes[b] = static_cast<uint8_t>(NextRand(&state));
    }
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++executed;
  }

  std::printf("ran %zu inputs\n", executed);
  return 0;
}
