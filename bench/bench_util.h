// Shared helpers for the paper-reproduction bench binaries: wall-clock
// timing, workload scaling via the PQIDX_BENCH_SCALE environment variable,
// aligned table output, and machine-readable JSON result capture.

#ifndef PQIDX_BENCH_BENCH_UTIL_H_
#define PQIDX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace pqidx::bench {

// Multiplies workload sizes by PQIDX_BENCH_SCALE (default 1.0). Scale 10+
// approaches the paper's original sizes; the defaults keep every binary
// in the tens of seconds on a laptop.
inline double Scale() {
  const char* env = std::getenv("PQIDX_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

inline int Scaled(int base) {
  double v = base * Scale();
  return v < 1 ? 1 : static_cast<int>(v);
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Runs `fn` and returns its wall-clock time in seconds.
template <typename Fn>
double TimeIt(Fn&& fn) {
  WallTimer timer;
  fn();
  return timer.Seconds();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Nearest-rank percentile over per-op samples; sorts in place.
inline double Percentile(std::vector<double>* sorted_in_place, double pct) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t rank = static_cast<size_t>(pct / 100.0 * (v.size() - 1) + 0.5);
  return v[std::min(rank, v.size() - 1)];
}

// Machine-readable bench output. Construct with the bench name and main's
// (argc, argv); metrics accumulate via Add() and are written as JSON when
// Write() runs (the destructor calls it too). Capture is off unless the
// binary ran with `--json[=PATH]` or PQIDX_BENCH_JSON names a path; the
// default path is BENCH_<name>.json in the working directory, so CI can
// glob BENCH_*.json after a bench run.
class JsonReport {
 public:
  JsonReport(std::string bench_name, int argc = 0, char** argv = nullptr)
      : bench_name_(std::move(bench_name)) {
    if (const char* env = std::getenv("PQIDX_BENCH_JSON")) {
      path_ = env;
    }
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json") {
        path_ = "BENCH_" + bench_name_ + ".json";
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      }
    }
  }

  ~JsonReport() { Write(); }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& name, double value,
           const std::string& unit = "") {
    metrics_.push_back(Metric{name, unit, value});
  }

  // Embeds `raw_json` (already-valid JSON, e.g. MetricsSnapshot::ToJson())
  // as an extra top-level key. Later calls with the same key overwrite.
  void AddRawSection(const std::string& key, std::string raw_json) {
    for (RawSection& section : raw_sections_) {
      if (section.key == key) {
        section.json = std::move(raw_json);
        return;
      }
    }
    raw_sections_.push_back(RawSection{key, std::move(raw_json)});
  }

  // Writes all metrics collected so far; returns false on I/O failure.
  // Idempotent: later calls rewrite the file with the full metric list.
  bool Write() {
    if (!enabled() || metrics_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"scale\": %g,\n"
                 "  \"metrics\": [\n",
                 Escaped(bench_name_).c_str(), Scale());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.17g, "
                   "\"unit\": \"%s\"}%s\n",
                   Escaped(m.name).c_str(), m.value,
                   Escaped(m.unit).c_str(),
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  ]");
    for (const RawSection& section : raw_sections_) {
      std::fprintf(f, ",\n  \"%s\": %s", Escaped(section.key).c_str(),
                   section.json.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Metric {
    std::string name;
    std::string unit;
    double value;
  };

  struct RawSection {
    std::string key;
    std::string json;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // drop controls
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  std::string path_;
  std::vector<Metric> metrics_;
  std::vector<RawSection> raw_sections_;
};

// The shared per-bench report shell: wraps JsonReport with the
// boilerplate every bench used to hand-roll -- latency-percentile rows,
// the embedded metrics registry, and within-run acceptance gates with a
// single exit code. Gates follow the committed convention: Require()
// always fails the run; RequireAtScale() enforces only at (near) full
// scale and reports-but-waives below it, so CI's reduced
// PQIDX_BENCH_SCALE smokes the sweep without flaking on machine noise.
class ReportBuilder {
 public:
  ReportBuilder(std::string bench_name, int argc = 0, char** argv = nullptr)
      : name_(bench_name), report_(std::move(bench_name), argc, argv) {}

  JsonReport& json() { return report_; }

  void Add(const std::string& name, double value,
           const std::string& unit = "") {
    report_.Add(name, value, unit);
  }

  // Records <prefix>_p50/_p95/_p99 (milliseconds) from per-op latencies
  // in seconds and prints the aligned row.
  void AddLatencyMs(const std::string& prefix, std::vector<double>* seconds) {
    const double p50 = Percentile(seconds, 50) * 1e3;
    const double p95 = Percentile(seconds, 95) * 1e3;
    const double p99 = Percentile(seconds, 99) * 1e3;
    std::printf("%-28s %10.3f ms  p95 %.3f  p99 %.3f\n",
                (prefix + " latency p50").c_str(), p50, p95, p99);
    report_.Add(prefix + "_p50", p50, "ms");
    report_.Add(prefix + "_p95", p95, "ms");
    report_.Add(prefix + "_p99", p99, "ms");
  }

  // Embeds the full process-wide metrics registry, which is what CI
  // parse-asserts in every BENCH_*.json.
  void AddRegistry() {
    report_.AddRawSection("registry", Metrics::Default().Snapshot().ToJson());
  }

  // Within-run acceptance gate: a false `ok` fails the run (ExitCode 1).
  void Require(bool ok, const std::string& message) {
    if (ok) return;
    failed_ = true;
    std::fprintf(stderr, "%s: FAILED: %s\n", name_.c_str(), message.c_str());
  }

  // Enforces the gate only at PQIDX_BENCH_SCALE >= min_scale; below it
  // a failing condition is reported and waived.
  void RequireAtScale(bool ok, double min_scale, const std::string& message) {
    if (Scale() >= min_scale) {
      Require(ok, message);
      return;
    }
    if (!ok) {
      std::printf("%s: gate waived at scale %g (< %g): %s\n", name_.c_str(),
                  Scale(), min_scale, message.c_str());
    }
  }

  bool failed() const { return failed_; }
  int ExitCode() const { return failed_ ? 1 : 0; }

 private:
  std::string name_;
  JsonReport report_;
  bool failed_ = false;
};

}  // namespace pqidx::bench

#endif  // PQIDX_BENCH_BENCH_UTIL_H_
