// Shared helpers for the paper-reproduction bench binaries: wall-clock
// timing, workload scaling via the PQIDX_BENCH_SCALE environment variable,
// and aligned table output.

#ifndef PQIDX_BENCH_BENCH_UTIL_H_
#define PQIDX_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace pqidx::bench {

// Multiplies workload sizes by PQIDX_BENCH_SCALE (default 1.0). Scale 10+
// approaches the paper's original sizes; the defaults keep every binary
// in the tens of seconds on a laptop.
inline double Scale() {
  const char* env = std::getenv("PQIDX_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

inline int Scaled(int base) {
  double v = base * Scale();
  return v < 1 ? 1 : static_cast<int>(v);
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Runs `fn` and returns its wall-clock time in seconds.
template <typename Fn>
double TimeIt(Fn&& fn) {
  WallTimer timer;
  fn();
  return timer.Seconds();
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace pqidx::bench

#endif  // PQIDX_BENCH_BENCH_UTIL_H_
