// Figure 14 (left): index size vs. document size.
//
// Paper setup: serialized index sizes for 1,2-grams and 3,3-grams compared
// with the tree (document) size across tree sizes. Both indexes are
// significantly smaller than the document, and the index size grows
// sub-linearly (duplicate pq-grams become more frequent in larger trees,
// and the index stores label-tuple fingerprints with counts).

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/pqgram_index.h"
#include "storage/tree_store.h"
#include "tree/generators.h"
#include "xml/xml_writer.h"

using namespace pqidx;
using namespace pqidx::bench;

int main() {
  const int max_nodes = Scaled(1 << 20);

  PrintHeader("Figure 14 (left): index size vs document size (bytes)");
  std::printf("the paper compares against the XML file size (DBLP: 211MB); "
              "the binary tree encoding is shown as a tighter baseline\n\n");
  std::printf("%12s %14s %14s %14s %14s %9s %9s\n", "tree nodes",
              "xml bytes", "binary tree", "1,2-index", "3,3-index",
              "1,2/xml", "3,3/xml");

  for (int nodes = 1 << 13; nodes <= max_nodes; nodes *= 2) {
    Rng rng(nodes + 7);
    Tree doc = GenerateXmarkLike(nullptr, &rng, nodes);
    int64_t xml_bytes = static_cast<int64_t>(WriteXml(doc).size());
    int64_t doc_bytes = TreeSerializedBytes(doc);
    int64_t idx12 = BuildIndex(doc, PqShape{1, 2}).SerializedBytes();
    int64_t idx33 = BuildIndex(doc, PqShape{3, 3}).SerializedBytes();
    std::printf("%12d %14lld %14lld %14lld %14lld %8.3f %8.3f\n", doc.size(),
                static_cast<long long>(xml_bytes),
                static_cast<long long>(doc_bytes),
                static_cast<long long>(idx12),
                static_cast<long long>(idx33),
                static_cast<double>(idx12) / xml_bytes,
                static_cast<double>(idx33) / xml_bytes);
  }
  std::printf("\npaper shape: both indexes significantly smaller than the "
              "document; index growth sub-linear (ratios fall with size).\n");
  return 0;
}
