// Figure 13 (right): index construction vs. incremental update across
// tree sizes.
//
// Paper setup: trees up to 27M nodes; build-from-scratch time grows
// linearly with the tree size (log-scale y axis), while the incremental
// update time for a fixed log is nearly independent of the tree size.
//
// Scaled setup: XMark-like trees from 2^13 up to 2^20 nodes (the top end
// scales with PQIDX_BENCH_SCALE), one 100-operation log per tree.

#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

int main() {
  const PqShape shape{3, 3};
  const int log_size = 100;
  const int max_nodes = Scaled(1 << 20);

  PrintHeader(
      "Figure 13 (right): build from scratch vs incremental update");
  std::printf("3,3-grams, log of %d edit operations per tree\n\n", log_size);
  std::printf("%12s %14s %18s %14s\n", "tree nodes", "build [s]",
              "incr update [s]", "build/update");

  for (int nodes = 1 << 13; nodes <= max_nodes; nodes *= 2) {
    Rng rng(nodes);
    Tree doc = GenerateXmarkLike(nullptr, &rng, nodes);

    PqGramIndex index(shape);
    double build_s = TimeIt([&] { index = BuildIndex(doc, shape); });

    EditLog log;
    GenerateEditScript(&doc, &rng, log_size, EditScriptOptions{}, &log);
    UpdateTimings timings;
    Status status = UpdateIndex(&index, doc, log, &timings);
    if (!status.ok()) {
      std::printf("update failed: %s\n", status.ToString().c_str());
      return 1;
    }

    std::printf("%12d %14.4f %18.4f %13.1fx\n", doc.size(), build_s,
                timings.total_s,
                timings.total_s > 0 ? build_s / timings.total_s : 0.0);
  }
  std::printf("\npaper shape: build time linear in tree size; update time "
              "nearly independent of it.\n");
  return 0;
}
