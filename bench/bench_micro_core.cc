// Microbenchmarks (google-benchmark) for the core primitives, including
// the paper's Section 2 observation that computing the pq-grams is by far
// the most expensive part of the distance computation (compare
// ProfileBuild against BagDistance at equal tree sizes).

#include <benchmark/benchmark.h>

#include <memory>

#include "common/random.h"
#include "core/delta.h"
#include "core/delta_store.h"
#include "core/distance.h"
#include "core/forest_index.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "core/profile.h"
#include "edit/edit_script.h"
#include "tree/generators.h"

namespace pqidx {
namespace {

void BM_KarpRabinFingerprint(benchmark::State& state) {
  std::string label = "inproceedings_with_a_long_label";
  for (auto _ : state) {
    benchmark::DoNotOptimize(KarpRabinFingerprint(label));
  }
}
BENCHMARK(BM_KarpRabinFingerprint);

void BM_ProfileBuild(benchmark::State& state) {
  Rng rng(1);
  Tree doc = GenerateXmarkLike(nullptr, &rng,
                               static_cast<int>(state.range(0)));
  const PqShape shape{3, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildIndex(doc, shape));
  }
  state.SetItemsProcessed(state.iterations() * doc.size());
}
BENCHMARK(BM_ProfileBuild)->Range(1 << 10, 1 << 17);

void BM_BagDistance(benchmark::State& state) {
  Rng rng(2);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{3, 3};
  Tree a = GenerateXmarkLike(dict, &rng, static_cast<int>(state.range(0)));
  Tree b = GenerateXmarkLike(dict, &rng, static_cast<int>(state.range(0)));
  PqGramIndex ia = BuildIndex(a, shape);
  PqGramIndex ib = BuildIndex(b, shape);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PqGramDistance(ia, ib));
  }
}
BENCHMARK(BM_BagDistance)->Range(1 << 10, 1 << 17);

void BM_DeltaSingleOp(benchmark::State& state) {
  // Delta computation for one edit operation: near-constant in tree size
  // (paper Section 8.2).
  Rng rng(3);
  Tree doc = GenerateXmarkLike(nullptr, &rng,
                               static_cast<int>(state.range(0)));
  Tree scratch = doc.Clone();
  EditLog log;
  GenerateEditScript(&scratch, &rng, 1, EditScriptOptions{}, &log);
  const EditOperation op = log.inverse(0);
  const PqShape shape{3, 3};
  for (auto _ : state) {
    DeltaStore store(shape);
    // The inverse op applies to `scratch` (the edited tree).
    benchmark::DoNotOptimize(ComputeDelta(scratch, op, &store));
  }
}
BENCHMARK(BM_DeltaSingleOp)->Range(1 << 10, 1 << 17);

// Per-operation-kind delta + update costs (the paper's Section 8.2
// claims both are near-constant per operation).
void BM_UpdatePerOpKind(benchmark::State& state) {
  const PqShape shape{3, 3};
  Rng rng(7);
  Tree doc = GenerateXmarkLike(nullptr, &rng, 1 << 15);
  EditScriptOptions options;
  options.insert_weight = state.range(0) == 0 ? 1 : 0;
  options.delete_weight = state.range(0) == 1 ? 1 : 0;
  options.rename_weight = state.range(0) == 2 ? 1 : 0;
  PqGramIndex index = BuildIndex(doc, shape);
  for (auto _ : state) {
    state.PauseTiming();
    EditLog log;
    GenerateEditScript(&doc, &rng, 20, options, &log);
    state.ResumeTiming();
    Status status = UpdateIndex(&index, doc, log);
    benchmark::DoNotOptimize(status);
  }
  static const char* kNames[] = {"insert", "delete", "rename"};
  state.SetLabel(std::string("20 ") + kNames[state.range(0)] +
                 " ops per iteration");
}
BENCHMARK(BM_UpdatePerOpKind)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalUpdate100Ops(benchmark::State& state) {
  const PqShape shape{3, 3};
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(4 + state.iterations());
    Tree doc = GenerateXmarkLike(nullptr, &rng,
                                 static_cast<int>(state.range(0)));
    PqGramIndex index = BuildIndex(doc, shape);
    EditLog log;
    GenerateEditScript(&doc, &rng, 100, EditScriptOptions{}, &log);
    state.ResumeTiming();
    Status status = UpdateIndex(&index, doc, log);
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_IncrementalUpdate100Ops)->Range(1 << 12, 1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_ForestLookup(benchmark::State& state) {
  Rng rng(5);
  auto dict = std::make_shared<LabelDict>();
  const PqShape shape{3, 3};
  ForestIndex forest(shape);
  for (int i = 0; i < state.range(0); ++i) {
    forest.AddTree(i, GenerateXmarkLike(dict, &rng, 500));
  }
  Tree query = GenerateXmarkLike(dict, &rng, 500);
  PqGramIndex qi = BuildIndex(query, shape);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Lookup(qi, 0.5));
  }
}
BENCHMARK(BM_ForestLookup)->Range(8, 512);

}  // namespace
}  // namespace pqidx

BENCHMARK_MAIN();
