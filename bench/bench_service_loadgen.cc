// Load generator for pqidxd (src/service): N client threads fire a mixed
// lookup/edit workload at one in-process server and report throughput,
// latency percentiles, and -- the number this bench exists for -- the
// group-commit batching factor edits_applied / edit_commits. With many
// concurrent writers that factor must be well above 1: independent edits
// of different trees ride the same WAL transaction and fsync pair.
//
// Not in the paper: the paper measures the index algorithms themselves;
// this measures the serving layer built on top of them. Workload knobs:
// PQIDX_BENCH_SCALE multiplies request counts; --json[=PATH] or
// PQIDX_BENCH_JSON captures the metrics as BENCH_*.json.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "core/pqgram_index.h"
#include "service/client.h"
#include "service/server.h"
#include "service/transport.h"
#include "storage/sharded_store.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

namespace {

struct ClientResult {
  std::vector<double> lookup_s;
  std::vector<double> edit_s;
  int failures = 0;
};

// Transient connect failures (e.g. admission control while client
// threads ramp up) retry with backoff instead of failing the run.
BackoffPolicy ConnectRetryPolicy() {
  BackoffPolicy policy;
  policy.max_attempts = 5;
  return policy;
}

// Lookup-only sweep: `readers` concurrent clients hammer a read-only
// server with lookups against an established forest. Since the server
// scores against its epoch-published snapshot without taking index_mutex_,
// throughput should grow with the reader count. With `topk` >= 0 the
// readers issue kTopK requests (the wire-level top-k opcode) instead of
// threshold lookups. Returns requests/second, or a negative value on
// failure.
double RunReaderSweep(int readers, const PqShape& shape,
                      std::vector<double>* latencies, int topk = -1) {
  const int kForestTrees = 64;
  const int kLookupsPerReader = Scaled(200);
  const int kTreeNodes = 60;
  const std::string path = "/tmp/pqidx_bench_service_readers.idx";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  StatusOr<std::unique_ptr<ShardedStore>> index =
      ShardedStore::Create(path, shape);
  if (!index.ok()) return -1;
  ServerOptions options;
  options.max_connections = readers + 1;
  Server server(index->get(), options);
  auto listener = std::make_unique<PipeListener>();
  PipeListener* connect_point = listener.get();
  if (!server.Start(std::move(listener)).ok()) return -1;

  // One writer seeds the forest, then the sweep is pure reads.
  Rng seed_rng(7000);
  auto dict = std::make_shared<LabelDict>();
  {
    StatusOr<std::unique_ptr<Client>> client = Client::ConnectWithRetry(
        [&] { return connect_point->Connect(); }, ConnectRetryPolicy());
    if (!client.ok()) return -1;
    for (TreeId id = 0; id < kForestTrees; ++id) {
      Tree tree = GenerateDblpLike(dict, &seed_rng, kTreeNodes);
      if (!(*client)->AddIndex(id, BuildIndex(tree, shape)).ok()) return -1;
    }
    (*client)->Close();
  }

  std::vector<ClientResult> results(static_cast<size_t>(readers));
  std::atomic<bool> ok{true};
  WallTimer total;
  std::vector<std::thread> threads;
  for (int c = 0; c < readers; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<std::unique_ptr<Client>> client = Client::ConnectWithRetry(
          [&] { return connect_point->Connect(); }, ConnectRetryPolicy());
      if (!client.ok()) { ok.store(false); return; }
      Rng rng(8000 + c);
      PqGramIndex query =
          BuildIndex(GenerateDblpLike(dict, &rng, kTreeNodes), shape);
      ClientResult& r = results[static_cast<size_t>(c)];
      for (int i = 0; i < kLookupsPerReader; ++i) {
        WallTimer timer;
        StatusOr<std::vector<LookupResult>> hits =
            topk >= 0 ? (*client)->TopK(query, topk)
                      : (*client)->Lookup(query, 0.6);
        r.lookup_s.push_back(timer.Seconds());
        if (!hits.ok()) ++r.failures;
      }
      (*client)->Close();
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = total.Seconds();
  server.Stop();
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  double requests = 0;
  for (ClientResult& r : results) {
    if (r.failures > 0) ok.store(false);
    requests += static_cast<double>(r.lookup_s.size());
    latencies->insert(latencies->end(), r.lookup_s.begin(),
                      r.lookup_s.end());
  }
  if (!ok.load() || wall_s <= 0) return -1;
  return requests / wall_s;
}

// One configuration of the write workload: `writers` concurrent clients,
// each owning a disjoint tree range, fire a write_pct% edit / rest lookup
// mix at a server configured with the given pipeline depth, staging pool,
// and snapshot rebuild cadence. The (depth 1, staging 0, rebuild-every 1)
// point reproduces the pre-pipelining write path exactly, so the sweep
// doubles as the committed baseline for the write-throughput bar.
struct WriteWorkloadConfig {
  int writers = 4;
  int write_pct = 90;
  int pipeline_depth = 1;
  int staging_threads = 0;
  int full_rebuild_every = 1;
};

// Returns requests/second (negative on failure); appends edit latencies
// and reports the group-commit batching factor and the total time the
// server spent publishing snapshots through the out-params.
double RunWriteWorkload(const WriteWorkloadConfig& cfg, const PqShape& shape,
                        std::vector<double>* edit_latencies,
                        double* batching_out, double* publish_s_out) {
  const int kSeedTrees = 512;  // big enough that full rebuilds cost real time
  const int kTreesPerWriter = 8;
  const int kRequestsPerWriter = Scaled(150);
  const int kTreeNodes = 50;
  const std::string path = "/tmp/pqidx_bench_service_write.idx";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  StatusOr<std::unique_ptr<ShardedStore>> index =
      ShardedStore::Create(path, shape);
  if (!index.ok()) return -1;
  ServerOptions options;
  options.max_connections = cfg.writers + 1;
  options.commit_pipeline_depth = cfg.pipeline_depth;
  options.staging_threads = cfg.staging_threads;
  options.snapshot_full_rebuild_every = cfg.full_rebuild_every;
  Server server(index->get(), options);
  auto listener = std::make_unique<PipeListener>();
  PipeListener* connect_point = listener.get();
  if (!server.Start(std::move(listener)).ok()) return -1;

  // Seed a background forest so every snapshot publish has real weight:
  // with rebuild-every 1 each commit recompiles all of it, with the
  // incremental path only the touched shard.
  {
    Rng rng(9100);
    auto dict = std::make_shared<LabelDict>();
    StatusOr<std::unique_ptr<Client>> client = Client::ConnectWithRetry(
        [&] { return connect_point->Connect(); }, ConnectRetryPolicy());
    if (!client.ok()) return -1;
    for (TreeId id = 0; id < kSeedTrees; ++id) {
      Tree tree = GenerateDblpLike(dict, &rng, kTreeNodes);
      TreeId seed_id = static_cast<TreeId>(1000000 + id);
      if (!(*client)->AddIndex(seed_id, BuildIndex(tree, shape)).ok()) {
        return -1;
      }
    }
    (*client)->Close();
  }

  std::vector<ClientResult> results(static_cast<size_t>(cfg.writers));
  std::atomic<bool> ok{true};
  WallTimer total;
  std::vector<std::thread> threads;
  for (int c = 0; c < cfg.writers; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<std::unique_ptr<Client>> client = Client::ConnectWithRetry(
          [&] { return connect_point->Connect(); }, ConnectRetryPolicy());
      if (!client.ok()) { ok.store(false); return; }
      Rng rng(9200 + c);
      auto dict = std::make_shared<LabelDict>();
      ClientResult& r = results[static_cast<size_t>(c)];
      std::vector<PqGramIndex> bags;
      for (int t = 0; t < kTreesPerWriter; ++t) {
        TreeId id = static_cast<TreeId>(c * kTreesPerWriter + t);
        Tree tree = GenerateDblpLike(dict, &rng, kTreeNodes);
        PqGramIndex bag = BuildIndex(tree, shape);
        if (!(*client)->AddIndex(id, bag).ok()) ++r.failures;
        bags.push_back(std::move(bag));
      }
      for (int i = 0; i < kRequestsPerWriter; ++i) {
        int t = static_cast<int>(rng.NextBounded(kTreesPerWriter));
        TreeId id = static_cast<TreeId>(c * kTreesPerWriter + t);
        PqGramIndex& bag = bags[static_cast<size_t>(t)];
        if (static_cast<int>(rng.NextBounded(100)) < cfg.write_pct) {
          PqGramIndex plus(shape);
          PqGramIndex minus(shape);
          if (!bag.counts().empty()) {
            auto tuple = bag.counts().begin();
            minus.Add(tuple->first, 1);
            plus.Add(tuple->first, 1);
          }
          plus.Add(static_cast<PqGramFingerprint>(rng.Next()), 1);
          WallTimer timer;
          Status s = (*client)->ApplyDeltas(id, plus, minus, 1);
          r.edit_s.push_back(timer.Seconds());
          if (s.ok()) {
            for (const auto& [fp, count] : plus.counts()) bag.Add(fp, count);
            for (const auto& [fp, count] : minus.counts()) {
              bag.Remove(fp, count);
            }
          } else {
            ++r.failures;
          }
        } else {
          WallTimer timer;
          StatusOr<std::vector<LookupResult>> hits =
              (*client)->Lookup(bag, 0.6);
          r.lookup_s.push_back(timer.Seconds());
          if (!hits.ok()) ++r.failures;
        }
      }
      (*client)->Close();
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = total.Seconds();
  ServiceStats stats = server.stats();
  server.Stop();
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  double requests = 0;
  for (ClientResult& r : results) {
    if (r.failures > 0) ok.store(false);
    requests += static_cast<double>(r.lookup_s.size() + r.edit_s.size());
    edit_latencies->insert(edit_latencies->end(), r.edit_s.begin(),
                           r.edit_s.end());
  }
  *batching_out = stats.edit_commits > 0
                      ? static_cast<double>(stats.edits_applied) /
                            static_cast<double>(stats.edit_commits)
                      : 0;
  *publish_s_out = static_cast<double>(stats.snapshot_rebuild_us) * 1e-6;
  if (!ok.load() || wall_s <= 0) return -1;
  return requests / wall_s;
}

}  // namespace

int main(int argc, char** argv) {
  ReportBuilder report("service_loadgen", argc, argv);
  const PqShape shape{2, 3};
  const int kClients = 8;
  const int kTreesPerClient = 8;
  const int kRequestsPerClient = Scaled(300);
  const int kTreeNodes = 60;
  const std::string path = "/tmp/pqidx_bench_service.idx";

  StatusOr<std::unique_ptr<ShardedStore>> index =
      ShardedStore::Create(path, shape);
  if (!index.ok()) {
    std::fprintf(stderr, "create: %s\n", index.status().ToString().c_str());
    return 1;
  }

  ServerOptions options;
  options.max_connections = kClients;
  // A small leadership hold magnifies the batching window the same way a
  // real disk's fsync latency would (these runs sit on tmpfs-fast SSDs).
  options.commit_hold_us = 200;
  Server server(index->get(), options);
  auto listener = std::make_unique<PipeListener>();
  PipeListener* connect_point = listener.get();
  if (Status s = server.Start(std::move(listener)); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }

  PrintHeader("pqidxd load generator (in-process pipe transport)");
  std::printf("%d clients x %d requests, %d trees/client of ~%d nodes, "
              "mixed ~70%% lookups / ~30%% incremental edits\n\n",
              kClients, kRequestsPerClient, kTreesPerClient, kTreeNodes);

  std::vector<ClientResult> results(kClients);
  std::atomic<bool> ok{true};
  WallTimer total;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<std::unique_ptr<Client>> client = Client::ConnectWithRetry(
          [&] { return connect_point->Connect(); }, ConnectRetryPolicy());
      if (!client.ok()) { ok.store(false); return; }
      Rng rng(1000 + c);
      auto dict = std::make_shared<LabelDict>();
      ClientResult& r = results[static_cast<size_t>(c)];

      // Each client owns a disjoint id range, so every edit is
      // independent and the group-commit batches are pure win.
      std::vector<PqGramIndex> bags;
      for (int t = 0; t < kTreesPerClient; ++t) {
        TreeId id = static_cast<TreeId>(c * kTreesPerClient + t);
        Tree tree = GenerateDblpLike(dict, &rng, kTreeNodes);
        PqGramIndex bag = BuildIndex(tree, shape);
        if (!(*client)->AddIndex(id, bag).ok()) ++r.failures;
        bags.push_back(std::move(bag));
      }

      for (int i = 0; i < kRequestsPerClient; ++i) {
        int t = static_cast<int>(rng.NextBounded(kTreesPerClient));
        TreeId id = static_cast<TreeId>(c * kTreesPerClient + t);
        PqGramIndex& bag = bags[static_cast<size_t>(t)];
        if (rng.NextBounded(10) < 7) {
          WallTimer timer;
          StatusOr<std::vector<LookupResult>> hits =
              (*client)->Lookup(bag, 0.6);
          r.lookup_s.push_back(timer.Seconds());
          if (!hits.ok()) ++r.failures;
        } else {
          // Synthesize a small independent delta: retract one tuple
          // occurrence and add it back plus a fresh synthetic tuple.
          PqGramIndex plus(shape);
          PqGramIndex minus(shape);
          if (!bag.counts().empty()) {
            auto tuple = bag.counts().begin();
            minus.Add(tuple->first, 1);
            plus.Add(tuple->first, 1);
          }
          plus.Add(static_cast<PqGramFingerprint>(rng.Next()), 1);
          WallTimer timer;
          Status s = (*client)->ApplyDeltas(id, plus, minus, 1);
          r.edit_s.push_back(timer.Seconds());
          if (s.ok()) {
            for (const auto& [fp, count] : plus.counts()) {
              bag.Add(fp, count);
            }
            for (const auto& [fp, count] : minus.counts()) {
              bag.Remove(fp, count);
            }
          } else {
            ++r.failures;
          }
        }
      }
      (*client)->Close();
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_s = total.Seconds();
  server.Stop();

  std::vector<double> lookups, edits;
  int failures = 0;
  for (ClientResult& r : results) {
    lookups.insert(lookups.end(), r.lookup_s.begin(), r.lookup_s.end());
    edits.insert(edits.end(), r.edit_s.begin(), r.edit_s.end());
    failures += r.failures;
  }
  ServiceStats stats = server.stats();
  double requests = static_cast<double>(lookups.size() + edits.size());
  double batching =
      stats.edit_commits > 0
          ? static_cast<double>(stats.edits_applied) / stats.edit_commits
          : 0;

  std::printf("%-28s %10.0f req/s\n", "throughput",
              ok.load() ? requests / wall_s : 0);
  report.Add("throughput", requests / wall_s, "req/s");
  report.AddLatencyMs("lookup", &lookups);
  report.AddLatencyMs("edit", &edits);
  std::printf("%-28s %10lld edits / %lld commits = %.2f edits/commit "
              "(largest batch %lld)\n",
              "group commit",
              static_cast<long long>(stats.edits_applied),
              static_cast<long long>(stats.edit_commits), batching,
              static_cast<long long>(stats.max_batch));
  std::printf("%-28s %10d\n", "client-visible failures", failures);

  report.Add("edits_applied", static_cast<double>(stats.edits_applied));
  report.Add("edit_commits", static_cast<double>(stats.edit_commits));
  report.Add("edits_per_commit", batching);
  report.Add("max_batch", static_cast<double>(stats.max_batch));
  report.Add("failures", failures);

  report.Require(ok.load() && failures == 0, "loadgen saw failures");
  // With 8 concurrent writers and a 200us hold, batches of one mean
  // group commit is broken; fail loudly so CI notices.
  report.Require(!(stats.edit_commits > 0 && stats.max_batch < 2),
                 "group commit did not batch (max batch " +
                     std::to_string(stats.max_batch) + ")");
  std::remove(path.c_str());

  // Reader scaling: lookup-only throughput as concurrent readers grow.
  // Every lookup scores a private snapshot copy, so more readers should
  // mean more throughput, not more contention. --topk[=K] switches the
  // readers to the wire-level kTopK opcode (default K 10), exercising
  // the per-shard heap path end to end.
  int sweep_topk = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--topk") {
      sweep_topk = 10;
    } else if (arg.rfind("--topk=", 0) == 0) {
      sweep_topk = std::atoi(arg.c_str() + 7);
      if (sweep_topk < 0) sweep_topk = 10;
    }
  }
  PrintHeader(sweep_topk >= 0
                  ? "top-k reader scaling (kTopK, k=" +
                        std::to_string(sweep_topk) + ")"
                  : "lookup-only reader scaling (snapshot reads)");
  std::printf("%10s %14s %12s %12s\n", "readers",
              sweep_topk >= 0 ? "topk/s" : "lookups/s", "p50 [ms]",
              "p99 [ms]");
  double single_reader = 0;
  for (int readers : {1, 4, 8}) {
    std::vector<double> latencies;
    const double rate = RunReaderSweep(readers, shape, &latencies, sweep_topk);
    if (rate < 0) {
      std::fprintf(stderr, "reader sweep failed at %d readers\n", readers);
      return 1;
    }
    if (readers == 1) single_reader = rate;
    std::printf("%10d %14.0f %12.3f %12.3f\n", readers, rate,
                Percentile(&latencies, 50) * 1e3,
                Percentile(&latencies, 99) * 1e3);
    const std::string cell = "_r" + std::to_string(readers);
    report.Add("read_throughput" + cell, rate, "req/s");
    report.Add("read_p50" + cell, Percentile(&latencies, 50) * 1e3, "ms");
    report.Add("read_p99" + cell, Percentile(&latencies, 99) * 1e3, "ms");
    if (single_reader > 0) {
      report.Add("read_scaling" + cell, rate / single_reader, "x");
    }
  }

  // Instrumentation overhead: the same lookup-only sweep with the
  // registry's timing hot path on vs off (counters stay live either way;
  // the switch gates clock reads and histogram records). The issue's
  // acceptance bar is < 3%; this reports the measured figure so CI can
  // track it without flaking on machine noise.
  PrintHeader("metrics instrumentation overhead (4 readers, lookups only)");
  const int kOverheadReaders = 4;
  double rate_enabled = 0, rate_disabled = 0;
  {
    std::vector<double> scratch;
    Metrics::set_enabled(true);
    rate_enabled = RunReaderSweep(kOverheadReaders, shape, &scratch);
    scratch.clear();
    Metrics::set_enabled(false);
    rate_disabled = RunReaderSweep(kOverheadReaders, shape, &scratch);
    Metrics::set_enabled(true);
  }
  if (rate_enabled < 0 || rate_disabled < 0) {
    std::fprintf(stderr, "overhead sweep failed\n");
    return 1;
  }
  const double overhead_pct =
      rate_disabled > 0 ? (rate_disabled - rate_enabled) / rate_disabled * 100
                        : 0;
  std::printf("%-28s %10.0f req/s enabled, %.0f req/s disabled "
              "(%.2f%% overhead)\n",
              "instrumented vs bare", rate_enabled, rate_disabled,
              overhead_pct);
  report.Add("metrics_on_throughput", rate_enabled, "req/s");
  report.Add("metrics_off_throughput", rate_disabled, "req/s");
  report.Add("metrics_overhead_pct", overhead_pct, "%");

  // Write-path sweep: the same write-heavy workload (default 90% edits;
  // --write-pct=N picks any read/write mix) against (a) the pre-pipelining
  // configuration -- depth 1, serial staging, full snapshot rebuild per
  // commit -- and (b) the pipelined configuration with parallel staging
  // and incremental snapshots. (a) is the committed baseline the
  // write-throughput acceptance bar compares against.
  int write_pct = 90;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--write-pct=", 0) == 0) {
      write_pct = std::atoi(arg.c_str() + 12);
    }
  }
  if (write_pct < 0 || write_pct > 100) write_pct = 90;
  PrintHeader("write-heavy workload (4 writers, " +
              std::to_string(write_pct) + "% edits)");
  std::printf("%-44s %12s %12s %10s %12s\n", "configuration", "req/s",
              "edit p50", "batching", "publish [s]");
  struct SweepPoint {
    const char* label;
    const char* cell;
    WriteWorkloadConfig cfg;
  };
  const SweepPoint kSweep[] = {
      // Pre-PR write path: one commit in flight, serial staging, full
      // snapshot rebuild after every batch.
      {"baseline: depth 1, serial, full rebuild",
       "write_baseline",
       {4, write_pct, 1, 0, 1}},
      // Incremental snapshots alone: same serial commit loop, but each
      // publish recompiles only the touched shard.
      {"incremental snapshots only",
       "write_incremental",
       {4, write_pct, 1, 0, 64}},
      // The full PR configuration: pipelined commits overlap validation
      // and delta staging with the predecessor's WAL fsync.
      {"pipelined: depth 2, staging 2, incremental",
       "write_pipelined",
       {4, write_pct, 2, 2, 64}},
  };
  double base_rate = 0, piped_rate = 0;
  for (const SweepPoint& point : kSweep) {
    std::vector<double> edit_lat;
    double batching_factor = 0;
    double publish_s = 0;
    const double rate = RunWriteWorkload(point.cfg, shape, &edit_lat,
                                         &batching_factor, &publish_s);
    if (rate < 0) {
      std::fprintf(stderr, "write workload failed (%s)\n", point.label);
      return 1;
    }
    if (point.cfg.full_rebuild_every == 1) base_rate = rate;
    if (point.cfg.pipeline_depth > 1) piped_rate = rate;
    std::printf("%-44s %12.0f %10.3fms %9.2fx %12.3f\n", point.label, rate,
                Percentile(&edit_lat, 50) * 1e3, batching_factor, publish_s);
    const std::string cell = point.cell;
    report.Add(cell + "_throughput", rate, "req/s");
    report.Add(cell + "_edit_p50", Percentile(&edit_lat, 50) * 1e3, "ms");
    report.Add(cell + "_edit_p99", Percentile(&edit_lat, 99) * 1e3, "ms");
    report.Add(cell + "_batching", batching_factor, "x");
  }
  if (base_rate > 0) {
    std::printf("%-44s %11.2fx\n", "write speedup (pipelined / baseline)",
                piped_rate / base_rate);
    report.Add("write_speedup", piped_rate / base_rate, "x");
  }
  report.Add("write_pct", write_pct, "%");

  // Embed the full process-wide registry so the BENCH json carries every
  // counter/gauge/histogram the run produced.
  report.AddRegistry();
  return report.ExitCode();
}
