#include "workload/workload.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/fingerprint.h"
#include "tree/generators.h"
#include "tree/tree.h"

namespace pqidx::workload {

namespace {

// Domain-separation salts so the query, edit, and stream generators
// never reuse each other's randomness for the same seed.
constexpr uint64_t kStreamSalt = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kTreeSalt = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kQuerySalt = 0x94d049bb133111ebULL;
constexpr uint64_t kEditSalt = 0x2545f4914f6cdd1dULL;
constexpr uint64_t kBurstSalt = 0xd6e8feb86659fd93ULL;

uint64_t MixSeed(uint64_t seed, uint64_t salt, uint64_t lane) {
  uint64_t x = seed ^ salt ^ (lane * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// The `rank`-th smallest fingerprint of `bag` (rank taken mod distinct).
// Content-ranked selection is what keeps delta synthesis deterministic:
// unordered_map iteration order depends on insertion history, which
// differs between the driver's bag replica and the oracle's mirror.
PqGramFingerprint FingerprintByRank(const PqGramIndex& bag, uint64_t rank) {
  std::vector<PqGramFingerprint> fps;
  fps.reserve(static_cast<size_t>(bag.distinct()));
  for (const auto& [fp, count] : bag.counts()) fps.push_back(fp);
  size_t nth = static_cast<size_t>(rank % fps.size());
  std::nth_element(fps.begin(), fps.begin() + static_cast<ptrdiff_t>(nth),
                   fps.end());
  return fps[nth];
}

}  // namespace

WorkloadSpec PresetSpec(char preset) {
  WorkloadSpec spec;
  spec.preset = preset;
  switch (preset) {
    case 'B':  // mixed
      spec.mix = OpMix{0.50, 0.10, 0.40};
      break;
    case 'C':  // write-heavy
      spec.mix = OpMix{0.10, 0.05, 0.85};
      break;
    default:  // 'A': read-heavy
      spec.preset = 'A';
      spec.mix = OpMix{0.90, 0.05, 0.05};
      break;
  }
  return spec;
}

void OwnedRange(const WorkloadSpec& spec, int client, TreeId* begin,
                TreeId* end) {
  int64_t n = spec.num_trees;
  int64_t c = spec.num_clients;
  *begin = static_cast<TreeId>(client * n / c);
  *end = static_cast<TreeId>((client + 1) * n / c);
}

std::vector<Op> ClientOps(const WorkloadSpec& spec, int client) {
  Rng rng(MixSeed(spec.seed, kStreamSalt, static_cast<uint64_t>(client)));
  TreeId own_begin = 0;
  TreeId own_end = 0;
  OwnedRange(spec, client, &own_begin, &own_end);
  const int own_count = own_end - own_begin;

  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(spec.ops_per_client));
  const double total = spec.mix.lookup + spec.mix.topk + spec.mix.edit;
  const double p_lookup = spec.mix.lookup / total;
  const double p_topk = spec.mix.topk / total;
  for (int i = 0; i < spec.ops_per_client; ++i) {
    Op op;
    const double roll = rng.NextDouble();
    if (roll < p_lookup || own_count == 0) {
      op.kind = OpKind::kLookup;
      op.tree = static_cast<TreeId>(rng.Zipf(spec.num_trees, spec.theta));
      op.tau = spec.taus[rng.NextBounded(spec.taus.size())];
    } else if (roll < p_lookup + p_topk) {
      op.kind = OpKind::kTopK;
      op.tree = static_cast<TreeId>(rng.Zipf(spec.num_trees, spec.theta));
      op.k = spec.topk_k;
    } else {
      op.kind = OpKind::kEdit;
      op.tree = own_begin +
                static_cast<TreeId>(rng.Zipf(own_count, spec.theta));
    }
    op.noise_seed = rng.Next();
    ops.push_back(op);
  }
  return ops;
}

PqGramIndex SeedBag(const WorkloadSpec& spec, TreeId id) {
  Rng rng(MixSeed(spec.seed, kTreeSalt, static_cast<uint64_t>(id)));
  auto dict = std::make_shared<LabelDict>();
  Tree tree = GenerateDblpLike(dict, &rng, spec.tree_records);
  return BuildIndex(tree, spec.shape);
}

ForestIndex SeedForest(const WorkloadSpec& spec) {
  ForestIndex forest(spec.shape);
  for (TreeId id = 0; id < spec.num_trees; ++id) {
    forest.AddIndex(id, SeedBag(spec, id));
  }
  return forest;
}

PqGramIndex MakeQuery(const PqGramIndex& base, uint64_t noise_seed) {
  PqGramIndex query = base;
  Rng rng(MixSeed(noise_seed, kQuerySalt, 0));
  const int extra = 1 + static_cast<int>(rng.NextBounded(2));
  for (int i = 0; i < extra; ++i) {
    query.Add(static_cast<PqGramFingerprint>(rng.Next()), 1);
  }
  if (!query.empty() && rng.Bernoulli(0.5)) {
    query.Remove(FingerprintByRank(query, rng.Next()), 1);
  }
  return query;
}

BagDelta SynthesizeDelta(const PqGramIndex& bag, uint64_t noise_seed) {
  BagDelta delta{PqGramIndex(bag.shape()), PqGramIndex(bag.shape())};
  Rng rng(MixSeed(noise_seed, kEditSalt, 0));
  if (!bag.empty()) {
    PqGramFingerprint victim = FingerprintByRank(bag, rng.Next());
    delta.minus.Add(victim, 1);
    // Usually the retraction is churn (the occurrence comes right
    // back); one in four sticks, so bags shrink as well as grow.
    if (!rng.Bernoulli(0.25)) delta.plus.Add(victim, 1);
  }
  delta.plus.Add(static_cast<PqGramFingerprint>(rng.Next()), 1);
  return delta;
}

void ApplyDeltaToBag(PqGramIndex* bag, const BagDelta& delta) {
  for (const auto& [fp, count] : delta.minus.counts()) bag->Remove(fp, count);
  for (const auto& [fp, count] : delta.plus.counts()) bag->Add(fp, count);
}

BagDelta Inverse(const BagDelta& delta) {
  return BagDelta{delta.minus, delta.plus};
}

std::vector<BurstPlan> PlanBursts(const WorkloadSpec& spec,
                                  const ForestIndex& current,
                                  uint64_t burst_seed) {
  Rng rng(MixSeed(spec.seed, kBurstSalt, burst_seed));
  std::vector<BurstPlan> plans;
  plans.reserve(static_cast<size_t>(spec.burst_trees));
  for (int b = 0; b < spec.burst_trees; ++b) {
    BurstPlan plan;
    plan.tree = static_cast<TreeId>(rng.Zipf(spec.num_trees, spec.theta));
    const PqGramIndex* found = current.Find(plan.tree);
    if (found == nullptr) continue;  // never removed today, but stay safe
    PqGramIndex bag = *found;
    for (int d = 0; d < spec.burst_depth; ++d) {
      BagDelta delta = SynthesizeDelta(bag, rng.Next());
      ApplyDeltaToBag(&bag, delta);
      plan.deltas.push_back(std::move(delta));
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::string DescribeSpec(const WorkloadSpec& spec) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "preset %c seed %llu: %d trees, %d clients x %d ops "
                "(%.0f/%.0f/%.0f lookup/topk/edit, theta %.2f), "
                "bursts %dx depth %d",
                spec.preset, static_cast<unsigned long long>(spec.seed),
                spec.num_trees, spec.num_clients, spec.ops_per_client,
                spec.mix.lookup * 100, spec.mix.topk * 100,
                spec.mix.edit * 100, spec.theta, spec.burst_trees,
                spec.burst_depth);
  return buf;
}

}  // namespace pqidx::workload
