// Deterministic workload generation for the pqidxd harness
// (bench/workload): seeded scenario presets that compose zipfian
// tree/query skew, read/write/topk mix presets, and ephemeral
// apply-then-revert edit bursts.
//
// Everything here is a pure function of (spec, seed): the driver
// (driver.h) and the differential oracle (oracle.h) both replay the same
// op streams -- the driver against a live server over the wire, the
// oracle against a mirror ForestIndex -- and the two must agree
// bit-for-bit. Determinism rests on three rules:
//
//   * the seeded forest is a pure function of (seed, tree id), so driver
//     and oracle build identical initial bags without coordinating;
//   * each client owns a disjoint contiguous tree-id range and only
//     edits its own trees, so cross-client edit interleavings commute
//     and the per-client sequential replay the oracle performs reaches
//     the same forest state as any concurrent execution;
//   * edit deltas are synthesized from (current bag content, op seed)
//     with fingerprint selection by sorted rank -- never by hash-map
//     iteration order -- so both sides derive the same (I+, I-) bags.

#ifndef PQIDX_BENCH_WORKLOAD_WORKLOAD_H_
#define PQIDX_BENCH_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/forest_index.h"
#include "core/pqgram_index.h"

namespace pqidx::workload {

// Fractions of lookup / top-k / edit requests in an op stream.
// Normalized at use; preset mixes sum to 1 already.
struct OpMix {
  double lookup = 0.90;
  double topk = 0.05;
  double edit = 0.05;
};

// One scenario: forest shape and size, client count, op mix, skew, and
// the ephemeral-burst knobs. Everything downstream derives from this
// plus `seed`, so a failing run reproduces from the spec alone.
struct WorkloadSpec {
  uint64_t seed = 1;
  PqShape shape{2, 3};
  // Preset tag ('A' read-heavy, 'B' mixed, 'C' write-heavy) -- purely
  // informational; the mix field is authoritative.
  char preset = 'A';
  OpMix mix;

  int num_trees = 256;     // seeded forest size
  int tree_records = 6;    // DBLP-like records per seeded tree
  int num_clients = 4;
  int ops_per_client = 400;
  int rounds = 4;          // oracle checks at each round boundary

  // Zipf exponent for tree/query skew (YCSB's theta knob): lookups and
  // edits concentrate on low-rank trees as theta grows; 0 is uniform.
  double theta = 0.99;
  std::vector<double> taus{0.2, 0.5, 0.8};
  int topk_k = 10;

  // Ephemeral edits: at each round boundary, `burst_trees` trees get
  // `burst_depth` edits applied and then reverted in reverse order; the
  // post-revert index must serve bit-identical results. 0 disables.
  int burst_trees = 0;
  int burst_depth = 0;
};

// The canonical presets: A = read-heavy 90/5/5, B = mixed 50/10/40,
// C = write-heavy 10/5/85 (lookup/topk/edit). Anything else returns A.
WorkloadSpec PresetSpec(char preset);

enum class OpKind : uint8_t { kLookup, kTopK, kEdit };

// One generated request. `tree` is the edit target (owned by the
// issuing client) or the query-basis tree; `noise_seed` drives the
// query perturbation / delta synthesis for this op.
struct Op {
  OpKind kind;
  TreeId tree;
  double tau = 0;
  int k = 0;
  uint64_t noise_seed = 0;
};

// The contiguous tree-id range client `client` owns (and is alone in
// editing): [*begin, *end).
void OwnedRange(const WorkloadSpec& spec, int client, TreeId* begin,
                TreeId* end);

// The full deterministic op stream of one client.
std::vector<Op> ClientOps(const WorkloadSpec& spec, int client);

// The initial bag of tree `id`: a DBLP-like tree generated from
// (seed, id) alone.
PqGramIndex SeedBag(const WorkloadSpec& spec, TreeId id);

// The full seeded forest (ids [0, num_trees)).
ForestIndex SeedForest(const WorkloadSpec& spec);

// A query near `base`: the base bag perturbed by a couple of seeded
// tuple insertions/retractions, so lookups hit real neighborhoods
// instead of exact matches.
PqGramIndex MakeQuery(const PqGramIndex& base, uint64_t noise_seed);

// An (I+, I-) delta pair, the unit both ApplyDeltas and the mirror
// replay consume.
struct BagDelta {
  PqGramIndex plus;
  PqGramIndex minus;
};

// Synthesizes the delta of one edit op from the target's current bag:
// retract one content-ranked tuple occurrence (sometimes for good, so
// bags shrink too) and insert a fresh seeded tuple. minus is always a
// sub-bag of `bag` (Lemma 2's precondition).
BagDelta SynthesizeDelta(const PqGramIndex& bag, uint64_t noise_seed);

// bag := bag \ minus |+| plus.
void ApplyDeltaToBag(PqGramIndex* bag, const BagDelta& delta);

// The inverse delta: applying Inverse(d) after d restores the bag
// exactly (bag arithmetic over integer counts is exact).
BagDelta Inverse(const BagDelta& delta);

// One ephemeral burst against one tree: `deltas` applied in order, then
// reverted via Inverse in reverse order.
struct BurstPlan {
  TreeId tree;
  std::vector<BagDelta> deltas;
};

// Plans the bursts for one round boundary from the current forest state
// (the oracle mirror at the quiesce point). Burst targets are drawn
// zipfian over the whole forest; depth comes from the spec.
std::vector<BurstPlan> PlanBursts(const WorkloadSpec& spec,
                                  const ForestIndex& current,
                                  uint64_t burst_seed);

// Human-readable one-line scenario description for logs.
std::string DescribeSpec(const WorkloadSpec& spec);

}  // namespace pqidx::workload

#endif  // PQIDX_BENCH_WORKLOAD_WORKLOAD_H_
