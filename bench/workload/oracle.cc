#include "workload/oracle.h"

#include <algorithm>
#include <cstdio>

namespace pqidx::workload {

namespace {

std::string DescribeResult(const LookupResult& r) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(tree %d, dist %.17g)", r.tree_id,
                r.distance);
  return buf;
}

}  // namespace

std::string DescribeResultDiff(const std::vector<LookupResult>& expect,
                               const std::vector<LookupResult>& got) {
  if (expect.size() != got.size()) {
    return "expected " + std::to_string(expect.size()) + " results, got " +
           std::to_string(got.size());
  }
  for (size_t i = 0; i < expect.size(); ++i) {
    // Exact comparison on the raw doubles: the engine is documented
    // bit-identical and the wire ships bit_cast doubles.
    if (expect[i].tree_id != got[i].tree_id ||
        expect[i].distance != got[i].distance) {
      return "result " + std::to_string(i) + ": expected " +
             DescribeResult(expect[i]) + ", got " + DescribeResult(got[i]);
    }
  }
  return "";
}

Oracle::Oracle(const WorkloadSpec& spec)
    : spec_(spec), mirror_(SeedForest(spec)) {
  streams_.reserve(static_cast<size_t>(spec.num_clients));
  for (int c = 0; c < spec.num_clients; ++c) {
    streams_.push_back(ClientOps(spec, c));
  }
}

void Oracle::Advance(int begin, int end) {
  for (const std::vector<Op>& stream : streams_) {
    const int stop = std::min(end, static_cast<int>(stream.size()));
    for (int i = begin; i < stop; ++i) {
      const Op& op = stream[static_cast<size_t>(i)];
      if (op.kind != OpKind::kEdit) continue;
      const PqGramIndex* found = mirror_.Find(op.tree);
      if (found == nullptr) continue;
      PqGramIndex bag = *found;
      ApplyDeltaToBag(&bag, SynthesizeDelta(bag, op.noise_seed));
      mirror_.AddIndex(op.tree, std::move(bag));
    }
  }
}

Status Oracle::Diverged(const std::string& what, uint64_t check_seed) const {
  return DataLossError(
      "oracle divergence [" + DescribeSpec(spec_) + ", check_seed " +
      std::to_string(check_seed) + "]: " + what +
      " (reproduce: rerun with the same --seed and preset)");
}

Status Oracle::Check(Client* client, uint64_t check_seed) {
  ++checks_;
  Rng rng(check_seed ^ spec_.seed);

  // Served tree count must match the mirror (no tree lost or invented).
  StatusOr<ServiceStats> stats = client->Stats();
  if (!stats.ok()) return stats.status();
  if (stats->tree_count != mirror_.size()) {
    return Diverged("server tree_count " + std::to_string(stats->tree_count) +
                        " != mirror " + std::to_string(mirror_.size()),
                    check_seed);
  }

  // Sweep taus for a seeded set of queries drawn near zipfian-hot trees.
  std::vector<double> taus = spec_.taus;
  taus.push_back(1.0);  // tau >= 1 returns the full ranking
  const int kQueriesPerCheck = 6;
  for (int q = 0; q < kQueriesPerCheck; ++q) {
    TreeId base_id =
        static_cast<TreeId>(rng.Zipf(spec_.num_trees, spec_.theta));
    const PqGramIndex* base = mirror_.Find(base_id);
    if (base == nullptr) continue;
    PqGramIndex query = MakeQuery(*base, rng.Next());

    std::vector<LookupResult> full;  // server's tau = 1 answer
    for (double tau : taus) {
      std::vector<LookupResult> expect = mirror_.Lookup(query, tau);
      // Cold pass: may score every shard and populate the cache.
      StatusOr<std::vector<LookupResult>> cold = client->Lookup(query, tau);
      if (!cold.ok()) return cold.status();
      ++comparisons_;
      std::string diff = DescribeResultDiff(expect, *cold);
      if (!diff.empty()) {
        return Diverged("Lookup(base tree " + std::to_string(base_id) +
                            ", tau " + std::to_string(tau) + ") cold: " + diff,
                        check_seed);
      }
      // Warm pass: same query again, now likely served from the
      // epoch-keyed cache. A stale or corrupt entry shows up here.
      StatusOr<std::vector<LookupResult>> warm = client->Lookup(query, tau);
      if (!warm.ok()) return warm.status();
      ++comparisons_;
      diff = DescribeResultDiff(expect, *warm);
      if (!diff.empty()) {
        return Diverged("Lookup(base tree " + std::to_string(base_id) +
                            ", tau " + std::to_string(tau) + ") warm: " + diff,
                        check_seed);
      }
      if (tau >= 1.0) full = std::move(*cold);
    }

    // TopK must be the first k of the full similarity ranking and match
    // the mirror's TopK exactly.
    const int k = spec_.topk_k;
    StatusOr<std::vector<LookupResult>> topk = client->TopK(query, k);
    if (!topk.ok()) return topk.status();
    std::vector<LookupResult> prefix(
        full.begin(),
        full.begin() + std::min<size_t>(static_cast<size_t>(k), full.size()));
    ++comparisons_;
    std::string diff = DescribeResultDiff(prefix, *topk);
    if (!diff.empty()) {
      return Diverged("TopK(base tree " + std::to_string(base_id) +
                          ", k " + std::to_string(k) +
                          ") vs full-Lookup prefix: " + diff,
                      check_seed);
    }
    ++comparisons_;
    diff = DescribeResultDiff(mirror_.TopK(query, k), *topk);
    if (!diff.empty()) {
      return Diverged("TopK(base tree " + std::to_string(base_id) +
                          ", k " + std::to_string(k) + ") vs mirror: " + diff,
                      check_seed);
    }
  }
  return Status::Ok();
}

}  // namespace pqidx::workload
