#include "workload/driver.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "core/lookup_engine.h"
#include "service/client.h"
#include "workload/oracle.h"

namespace pqidx::workload {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Per-client execution state: its connection, its slice of the op
// stream, its owned bags (the client-side replica every ApplyDeltas
// call is synthesized from), and its share of the measurements.
struct ClientState {
  std::unique_ptr<Client> client;
  std::vector<Op> ops;
  std::map<TreeId, PqGramIndex> bags;
  std::vector<double> lookup_s;
  std::vector<double> topk_s;
  std::vector<double> edit_s;
  int failures = 0;
};

// Runs ops [begin, end) of one client's stream. Queries are anchored on
// the *initial* seeded bags (`forest`), so they are well-defined even
// while concurrent edits keep the served state in flux; the oracle's
// quiesce-point sweeps are where answers are checked.
void RunSlice(const ForestIndex& forest, ClientState* state, int begin,
              int end) {
  for (int i = begin; i < end && i < static_cast<int>(state->ops.size());
       ++i) {
    const Op& op = state->ops[static_cast<size_t>(i)];
    switch (op.kind) {
      case OpKind::kLookup: {
        const PqGramIndex* base = forest.Find(op.tree);
        if (base == nullptr) { ++state->failures; break; }
        PqGramIndex query = MakeQuery(*base, op.noise_seed);
        auto start = std::chrono::steady_clock::now();
        StatusOr<std::vector<LookupResult>> hits =
            state->client->Lookup(query, op.tau);
        state->lookup_s.push_back(SecondsSince(start));
        if (!hits.ok()) ++state->failures;
        break;
      }
      case OpKind::kTopK: {
        const PqGramIndex* base = forest.Find(op.tree);
        if (base == nullptr) { ++state->failures; break; }
        PqGramIndex query = MakeQuery(*base, op.noise_seed);
        auto start = std::chrono::steady_clock::now();
        StatusOr<std::vector<LookupResult>> hits =
            state->client->TopK(query, op.k);
        state->topk_s.push_back(SecondsSince(start));
        if (!hits.ok()) ++state->failures;
        break;
      }
      case OpKind::kEdit: {
        auto it = state->bags.find(op.tree);
        if (it == state->bags.end()) { ++state->failures; break; }
        BagDelta delta = SynthesizeDelta(it->second, op.noise_seed);
        auto start = std::chrono::steady_clock::now();
        Status s = state->client->ApplyDeltas(op.tree, delta.plus,
                                              delta.minus, 1);
        state->edit_s.push_back(SecondsSince(start));
        if (s.ok()) {
          ApplyDeltaToBag(&it->second, delta);
        } else {
          ++state->failures;
        }
        break;
      }
    }
  }
}

// Applies `burst_trees` x `burst_depth` ephemeral deltas through
// `control` and reverts them in exact reverse order, asserting the
// post-revert index answers a pinned query grid bit-identically. With
// an in-process server, also pins the engine snapshots on both sides of
// the burst and proves the reverted epoch carries identical content in
// freshly recompiled shards.
Status RunBursts(const WorkloadSpec& spec, const DriverOptions& options,
                 const ForestIndex& mirror, Client* control, int round,
                 RunResult* result) {
  std::vector<BurstPlan> plans =
      PlanBursts(spec, mirror, static_cast<uint64_t>(round));
  if (plans.empty()) return Status::Ok();

  auto diverged = [&](const std::string& what) {
    return DataLossError("ephemeral burst divergence [" + DescribeSpec(spec) +
                         ", round " + std::to_string(round) + "]: " + what);
  };

  // Pin the query grid and the pre-burst answers.
  std::vector<double> taus = spec.taus;
  taus.push_back(1.0);
  Rng rng(spec.seed ^ (0xb57ULL + static_cast<uint64_t>(round) * 0x9e3779b97f4a7c15ULL));
  std::vector<PqGramIndex> queries;
  for (const BurstPlan& plan : plans) {
    const PqGramIndex* base = mirror.Find(plan.tree);
    if (base != nullptr) queries.push_back(MakeQuery(*base, rng.Next()));
  }
  std::vector<std::vector<LookupResult>> pre;
  std::vector<std::vector<LookupResult>> pre_topk;
  for (const PqGramIndex& query : queries) {
    for (double tau : taus) {
      StatusOr<std::vector<LookupResult>> hits = control->Lookup(query, tau);
      if (!hits.ok()) return hits.status();
      pre.push_back(std::move(*hits));
    }
    StatusOr<std::vector<LookupResult>> hits =
        control->TopK(query, spec.topk_k);
    if (!hits.ok()) return hits.status();
    pre_topk.push_back(std::move(*hits));
  }
  StatusOr<ServiceStats> pre_stats = control->Stats();
  if (!pre_stats.ok()) return pre_stats.status();
  std::shared_ptr<const LookupEngine> pre_engine;
  if (options.server != nullptr) {
    pre_engine = options.server->EngineSnapshotForTesting();
  }

  // Apply, then revert in exact reverse order with inverted deltas.
  for (const BurstPlan& plan : plans) {
    for (const BagDelta& delta : plan.deltas) {
      PQIDX_RETURN_IF_ERROR(
          control->ApplyDeltas(plan.tree, delta.plus, delta.minus, 1));
    }
  }
  for (auto plan = plans.rbegin(); plan != plans.rend(); ++plan) {
    for (auto delta = plan->deltas.rbegin(); delta != plan->deltas.rend();
         ++delta) {
      BagDelta inverse = Inverse(*delta);
      PQIDX_RETURN_IF_ERROR(
          control->ApplyDeltas(plan->tree, inverse.plus, inverse.minus, 1));
    }
  }

  // Post-revert, the served answers must be bit-identical to the
  // pre-burst ones (commit-before-ack + publish-before-ack: the last
  // revert's response means the reverted snapshot is live).
  size_t slot = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    for (double tau : taus) {
      StatusOr<std::vector<LookupResult>> hits =
          control->Lookup(queries[q], tau);
      if (!hits.ok()) return hits.status();
      ++result->burst_comparisons;
      std::string diff = DescribeResultDiff(pre[slot++], *hits);
      if (!diff.empty()) {
        return diverged("post-revert Lookup(tau " + std::to_string(tau) +
                        ") differs from pre-burst: " + diff);
      }
    }
    StatusOr<std::vector<LookupResult>> hits =
        control->TopK(queries[q], spec.topk_k);
    if (!hits.ok()) return hits.status();
    ++result->burst_comparisons;
    std::string diff = DescribeResultDiff(pre_topk[q], *hits);
    if (!diff.empty()) {
      return diverged("post-revert TopK differs from pre-burst: " + diff);
    }
  }

  // The burst must have really gone through the publish path: every
  // apply and revert is a committed batch, so the epoch advanced.
  StatusOr<ServiceStats> post_stats = control->Stats();
  if (!post_stats.ok()) return post_stats.status();
  if (post_stats->snapshot_epoch <= pre_stats->snapshot_epoch) {
    return diverged("snapshot_epoch did not advance across the burst (" +
                    std::to_string(pre_stats->snapshot_epoch) + " -> " +
                    std::to_string(post_stats->snapshot_epoch) + ")");
  }

  // In-process deep check: the reverted epoch's snapshot serves content
  // identical to the pinned pre-burst snapshot -- same tree count, same
  // posting volume, same answers when scored directly (no cache in the
  // way) -- even though the touched shards were recompiled under fresh
  // uids (which is what keeps the query cache from ever serving a
  // pre-revert entry).
  if (pre_engine != nullptr) {
    std::shared_ptr<const LookupEngine> post_engine =
        options.server->EngineSnapshotForTesting();
    if (post_engine->size() != pre_engine->size() ||
        post_engine->posting_entries() != pre_engine->posting_entries()) {
      return diverged(
          "post-revert snapshot shape differs: size " +
          std::to_string(pre_engine->size()) + " -> " +
          std::to_string(post_engine->size()) + ", posting entries " +
          std::to_string(pre_engine->posting_entries()) + " -> " +
          std::to_string(post_engine->posting_entries()));
    }
    if (post_engine->ShardUids() == pre_engine->ShardUids()) {
      return diverged(
          "burst published no new shard uids -- the apply/revert epochs "
          "never recompiled a shard");
    }
    for (const PqGramIndex& query : queries) {
      for (double tau : taus) {
        ++result->burst_comparisons;
        std::string diff = DescribeResultDiff(pre_engine->Lookup(query, tau),
                                              post_engine->Lookup(query, tau));
        if (!diff.empty()) {
          return diverged("pinned pre-burst engine vs post-revert engine "
                          "(tau " + std::to_string(tau) + "): " + diff);
        }
      }
    }
  }

  result->bursts += static_cast<int64_t>(plans.size());
  return Status::Ok();
}

}  // namespace

StatusOr<RunResult> RunWorkload(const WorkloadSpec& spec, const Dialer& dial,
                                const DriverOptions& options) {
  if (spec.num_trees < 1 || spec.num_clients < 1 ||
      spec.num_trees < spec.num_clients) {
    return InvalidArgumentError(
        "workload spec needs num_trees >= num_clients >= 1");
  }
  if (spec.rounds < 1 || spec.taus.empty()) {
    return InvalidArgumentError("workload spec needs rounds >= 1 and taus");
  }

  // The control connection seeds the forest and later carries oracle
  // sweeps and bursts.
  StatusOr<std::unique_ptr<Client>> control =
      Client::ConnectWithRetry(dial, options.connect_policy, spec.seed);
  if (!control.ok()) return control.status();
  const ForestIndex forest = SeedForest(spec);
  for (TreeId id = 0; id < spec.num_trees; ++id) {
    PQIDX_RETURN_IF_ERROR((*control)->AddIndex(id, *forest.Find(id)));
  }

  std::unique_ptr<Oracle> oracle;
  if (options.oracle) oracle = std::make_unique<Oracle>(spec);

  std::vector<ClientState> states(static_cast<size_t>(spec.num_clients));
  for (int c = 0; c < spec.num_clients; ++c) {
    ClientState& state = states[static_cast<size_t>(c)];
    StatusOr<std::unique_ptr<Client>> client = Client::ConnectWithRetry(
        dial, options.connect_policy, spec.seed + 100 + static_cast<uint64_t>(c));
    if (!client.ok()) return client.status();
    state.client = std::move(client).value();
    state.ops = ClientOps(spec, c);
    TreeId begin = 0;
    TreeId end = 0;
    OwnedRange(spec, c, &begin, &end);
    for (TreeId id = begin; id < end; ++id) {
      state.bags.emplace(id, *forest.Find(id));
    }
  }

  RunResult result;
  const int chunk = (spec.ops_per_client + spec.rounds - 1) / spec.rounds;
  for (int round = 0; round < spec.rounds; ++round) {
    const int begin = round * chunk;
    const int end = std::min(spec.ops_per_client, begin + chunk);
    if (begin < end) {
      auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> threads;
      threads.reserve(states.size());
      for (ClientState& state : states) {
        threads.emplace_back([&forest, &state, begin, end] {
          RunSlice(forest, &state, begin, end);
        });
      }
      for (std::thread& t : threads) t.join();
      result.work_s += SecondsSince(start);
    }

    // Quiesce point: every edit of the round is acked (and published --
    // pqidxd publishes before the ack), so the served state equals the
    // mirror after the same slice.
    if (oracle != nullptr) {
      oracle->Advance(begin, end);
      PQIDX_RETURN_IF_ERROR(oracle->Check(
          control->get(), static_cast<uint64_t>(round)));
    }
    if (spec.burst_trees > 0 && spec.burst_depth > 0) {
      // Bursts need a bag-accurate view of the forest to synthesize
      // valid deltas; that is the oracle's mirror.
      if (oracle == nullptr) {
        return FailedPreconditionError(
            "ephemeral bursts require the oracle (the mirror supplies "
            "current bag state)");
      }
      PQIDX_RETURN_IF_ERROR(RunBursts(spec, options, oracle->mirror(),
                                      control->get(), round, &result));
      // The burst is ephemeral by construction: the mirror is untouched.
      PQIDX_RETURN_IF_ERROR(oracle->Check(
          control->get(), 0x5000 + static_cast<uint64_t>(round)));
    }
  }

  for (ClientState& state : states) {
    result.lookups += static_cast<int64_t>(state.lookup_s.size());
    result.topks += static_cast<int64_t>(state.topk_s.size());
    result.edits += static_cast<int64_t>(state.edit_s.size());
    result.failures += state.failures;
    result.lookup_s.insert(result.lookup_s.end(), state.lookup_s.begin(),
                           state.lookup_s.end());
    result.topk_s.insert(result.topk_s.end(), state.topk_s.begin(),
                         state.topk_s.end());
    result.edit_s.insert(result.edit_s.end(), state.edit_s.begin(),
                         state.edit_s.end());
    state.client->Close();
  }
  if (oracle != nullptr) {
    result.oracle_checks = oracle->checks();
    result.oracle_comparisons = oracle->comparisons();
  }
  StatusOr<ServiceStats> stats = (*control)->Stats();
  if (!stats.ok()) return stats.status();
  result.stats = *stats;
  (*control)->Close();
  return result;
}

}  // namespace pqidx::workload
