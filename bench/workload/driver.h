// The workload driver: executes a WorkloadSpec against a live pqidxd
// endpoint (pipe or TCP -- anything a Dialer can reach) with one
// connection per client thread, and interleaves differential-oracle
// checks and ephemeral-edit bursts at quiesce points.
//
// Execution is round-based: every client runs the same slice of its
// seeded op stream concurrently, the driver joins them (a quiesce --
// every edit is acked, and pqidxd publishes the snapshot before the
// ack, so the served state is exactly the mirror's state), then the
// oracle advances its mirror through the same slice and sweeps the
// server (oracle.h). Mid-round lookups are throughput traffic over an
// index in flux; correctness is asserted at the quiesce points, where
// the state is uniquely determined by the spec.
//
// Ephemeral bursts run at round boundaries on the control connection:
// `burst_trees` trees each get `burst_depth` deltas applied and then
// reverted in reverse order (bag arithmetic over integer counts is
// exact, so the inverse run restores every bag bit-for-bit). The driver
// pins a set of seeded queries before the burst and asserts the
// post-revert answers are bit-identical; with an in-process Server it
// additionally pins the pre-burst engine snapshot and proves the
// post-revert epoch serves identical content from recompiled (fresh
// uid) shards.

#ifndef PQIDX_BENCH_WORKLOAD_DRIVER_H_
#define PQIDX_BENCH_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "service/retry.h"
#include "service/server.h"
#include "service/wire.h"
#include "workload/workload.h"

namespace pqidx::workload {

struct DriverOptions {
  // Run the differential oracle (mirror replay + sweeps at every round
  // boundary). Requires the server to start empty: the driver seeds it
  // from the spec. Off turns the run into a pure load generator.
  bool oracle = true;
  // When the server runs in-process, passing it enables the deep burst
  // checks (pinned snapshot content, fresh shard uids after revert).
  Server* server = nullptr;
  // Connect retry policy for every connection the driver opens.
  BackoffPolicy connect_policy;

  DriverOptions() { connect_policy.max_attempts = 5; }
};

// Everything one run produced. Latency vectors are per-opcode
// wall-clock seconds, one entry per request, across all clients.
struct RunResult {
  double work_s = 0;  // summed round execution time (excludes checks)
  int64_t lookups = 0;
  int64_t topks = 0;
  int64_t edits = 0;
  int failures = 0;  // client-visible request failures
  std::vector<double> lookup_s;
  std::vector<double> topk_s;
  std::vector<double> edit_s;
  int64_t oracle_checks = 0;
  int64_t oracle_comparisons = 0;
  int64_t bursts = 0;             // burst trees applied + reverted
  int64_t burst_comparisons = 0;  // pre/post result-list comparisons
  ServiceStats stats{};           // server stats after the run

  double throughput() const {
    const double ops = static_cast<double>(lookups + topks + edits);
    return work_s > 0 ? ops / work_s : 0;
  }
};

// Runs the full scenario: seeds the forest through `dial`, executes
// every client's stream in `spec.rounds` rounds, and runs oracle sweeps
// and bursts at the boundaries. Returns the run's measurements, or the
// first error -- oracle divergence comes back as DATA_LOSS with a
// reproduction hint.
StatusOr<RunResult> RunWorkload(const WorkloadSpec& spec, const Dialer& dial,
                                const DriverOptions& options);

}  // namespace pqidx::workload

#endif  // PQIDX_BENCH_WORKLOAD_DRIVER_H_
