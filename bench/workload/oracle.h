// The differential oracle of the workload harness: a mirror ForestIndex
// replayed from the same seeded op streams the driver ships over the
// wire, plus full-tau-sweep equality checks against the served
// LookupEngine.
//
// Soundness of exact comparison: the wire protocol transports distances
// via bit_cast (service/wire.cc), the LookupEngine documents
// bit-identical results to ForestIndex::Lookup for every tau, and the
// workload's determinism rules (workload.h) make the mirror reach the
// same forest state as the server at every quiesce point -- so every
// comparison below is `==` on tree ids and on raw double distances, no
// epsilons anywhere. Any mismatch is a real divergence.
//
// Each Check() performs, for a seeded set of queries:
//   * per tau: server Lookup vs mirror Lookup, bit-identical;
//   * the same Lookup again -- the first answer may have been scored
//     cold and inserted into the query cache, the second served warm;
//     both must match the mirror (cache-warm vs cache-cold);
//   * TopK(k) vs the first k of the full Lookup at tau = 1 (every tree
//     qualifies at tau >= 1, so that is the total similarity ranking)
//     and vs the mirror's TopK;
//   * served tree_count vs the mirror's size.

#ifndef PQIDX_BENCH_WORKLOAD_ORACLE_H_
#define PQIDX_BENCH_WORKLOAD_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/forest_index.h"
#include "service/client.h"
#include "workload/workload.h"

namespace pqidx::workload {

// Compares two result lists exactly; on mismatch returns a description
// of the first difference ("" when equal). Shared by the oracle and the
// burst pre/post comparison in the driver.
std::string DescribeResultDiff(const std::vector<LookupResult>& expect,
                               const std::vector<LookupResult>& got);

class Oracle {
 public:
  explicit Oracle(const WorkloadSpec& spec);

  // Advances the mirror through ops [begin, end) of every client's
  // stream (edits only; reads do not change state). The driver calls
  // this at a quiesce point after all clients finished the same range.
  void Advance(int begin, int end);

  // The mirror at the current quiesce point.
  const ForestIndex& mirror() const { return mirror_; }

  // Runs one full differential sweep through `client`. `check_seed`
  // varies the query set between checks. Returns DATA_LOSS with a
  // reproduction hint on any divergence.
  Status Check(Client* client, uint64_t check_seed);

  // How many sweeps ran and how many exact result-list comparisons they
  // performed (for reporting; a sweep that compares nothing is a bug).
  int64_t checks() const { return checks_; }
  int64_t comparisons() const { return comparisons_; }

 private:
  Status Diverged(const std::string& what, uint64_t check_seed) const;

  WorkloadSpec spec_;
  ForestIndex mirror_;
  std::vector<std::vector<Op>> streams_;  // per client
  int64_t checks_ = 0;
  int64_t comparisons_ = 0;
};

}  // namespace pqidx::workload

#endif  // PQIDX_BENCH_WORKLOAD_ORACLE_H_
