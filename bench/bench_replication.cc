// Replication bench: what a warm standby buys over rebuilding readers
// from scratch (src/service/replication.h). Two numbers on one
// 10k-tree leader:
//
//   1. full-scan bootstrap -- MaterializeForest + LookupEngine::Build
//      over the whole store: the no-replication way to stand up a
//      reader, and the cost any follower restart would pay if catch-up
//      re-scanned everything.
//   2. warm catch-up -- a standby provisioned from a backup of the
//      leader (same content, same cursor) restarts having missed ~1%
//      of the committed batches; the leader streams only those deltas
//      and the follower's apply thread coalesces them into a handful
//      of WAL transactions (the O(delta) claim).
//
// The gate (this PR's acceptance bar): streaming + applying the missed
// 1% must be at least 5x faster than the full scan. The warm restart's
// end-to-end time still includes reopening the store and rebuilding the
// serving snapshot -- costs any restart pays regardless of mechanism --
// so the gate compares the catch-up mechanism itself (post-handshake
// stream + apply) against the full scan it replaces. Catch-up has a
// near-constant fsync floor while the full scan grows with the forest,
// so the bar is only meaningful near full scale; shrunken runs
// (PQIDX_BENCH_SCALE < 0.5) report the ratio without enforcing it.
//
// Not in the paper: the paper covers the index algorithms; this
// measures the serving layer's replication path. --json[=PATH] or
// PQIDX_BENCH_JSON captures BENCH_REPL.json, registry included.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/incremental.h"
#include "core/lookup_engine.h"
#include "service/client.h"
#include "service/replication.h"
#include "service/server.h"
#include "service/transport.h"
#include "storage/sharded_store.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

namespace {

void RemoveStore(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// Page pool sized for the 10k-tree store: the default 256 pages
// thrashes a forest this large into pathological numbers.
constexpr int kPoolPages = 16384;

// 10k trees across the default 16 shards puts ~600 trees in every
// shard, so each single-batch commit recompiles ~600 postings lists.
// Sharding harder keeps the incremental publish incremental.
constexpr int kLookupShards = 64;

FollowerOptions MakeFollowerOptions(PipeListener* leader_point,
                                    const std::string& store_path) {
  FollowerOptions options;
  options.dial = [leader_point] { return leader_point->Connect(); };
  options.store_path = store_path;
  options.pool_pages = kPoolPages;
  options.server.slow_op_us = -1;
  options.server.lookup_shards = kLookupShards;
  options.backoff.initial_backoff_us = 1000;
  options.backoff.max_backoff_us = 50000;
  return options;
}

// Bulk-loads `bags` into a fresh store at `path`, stamping the given
// replication cursor, then closes it (ingest at 10k trees dominates the
// bench's wall clock, so the store is seeded once and cloned).
bool SeedStore(const std::string& path, const PqShape& shape,
               const std::vector<PqGramIndex>& bags, uint64_t cursor) {
  StatusOr<std::unique_ptr<ShardedStore>> created =
      ShardedStore::Create(path, shape, /*shards=*/1, kPoolPages);
  if (!created.ok()) return false;
  std::unique_ptr<ShardedStore> store = std::move(created).value();
  std::vector<std::pair<TreeId, const PqGramIndex*>> pairs;
  pairs.reserve(bags.size());
  for (size_t i = 0; i < bags.size(); ++i) {
    pairs.emplace_back(static_cast<TreeId>(i), &bags[i]);
  }
  ThreadPool pool(4);
  return store->BulkAdd(pairs, &pool, cursor).ok();
}

// Byte-for-byte store clone: how a real standby gets provisioned from a
// backup. The source must be closed (no WAL outstanding).
bool CloneStore(const std::string& from, const std::string& to) {
  std::FILE* in = std::fopen(from.c_str(), "rb");
  if (in == nullptr) return false;
  std::FILE* out = std::fopen(to.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    return false;
  }
  std::vector<char> buffer(1 << 20);
  bool ok = true;
  for (;;) {
    size_t n = std::fread(buffer.data(), 1, buffer.size(), in);
    if (n == 0) break;
    if (std::fwrite(buffer.data(), 1, n, out) != n) {
      ok = false;
      break;
    }
  }
  ok = ok && std::ferror(in) == 0;
  std::fclose(in);
  ok = std::fclose(out) == 0 && ok;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  ReportBuilder report("REPL", argc, argv);
  const PqShape shape{2, 3};
  const int kTrees = Scaled(10000);
  const int kNodes = 30;
  const int kMissed = kTrees / 100 > 0 ? kTrees / 100 : 1;
  // The fsync floor under catch-up makes the 5x bar unreachable on tiny
  // forests; only enforce it when the run is at (near) full scale
  // (RequireAtScale below uses the matching scale threshold).
  const bool kEnforceGate = kTrees >= 5000;
  const std::string leader_path = "/tmp/pqidx_bench_repl_leader.idx";
  const std::string follower_path = "/tmp/pqidx_bench_repl_follower.idx";
  RemoveStore(leader_path);
  RemoveStore(follower_path);

  // Seed the leader with the forest at cursor 1, then clone the file as
  // the standby (a restored backup of the leader, not an empty store --
  // cold snapshot bootstrap is a different, test-covered path).
  Rng rng(4242);
  auto dict = std::make_shared<LabelDict>();
  std::vector<PqGramIndex> bags;
  bags.reserve(static_cast<size_t>(kTrees));
  for (int i = 0; i < kTrees; ++i) {
    bags.push_back(BuildIndex(GenerateDblpLike(dict, &rng, kNodes), shape));
  }
  if (!SeedStore(leader_path, shape, bags, 1)) return 1;
  bags.clear();
  bags.shrink_to_fit();
  if (!CloneStore(leader_path, follower_path)) return 1;
  StatusOr<std::unique_ptr<ShardedStore>> opened =
      ShardedStore::Open(leader_path, kPoolPages);
  if (!opened.ok()) return 1;
  std::unique_ptr<ShardedStore> store = std::move(opened).value();

  PrintHeader("replication: bootstrap and catch-up (" +
              std::to_string(kTrees) + " trees)");

  // --- Section 1: full-scan bootstrap ------------------------------------
  const double full_scan_s = TimeIt([&] {
    StatusOr<ForestIndex> forest = store->MaterializeForest();
    if (!forest.ok()) std::exit(1);
    std::shared_ptr<const LookupEngine> engine =
        LookupEngine::Build(*forest, 16);
    if (engine == nullptr) std::exit(1);
  });
  std::printf("%-32s %11.1f ms\n", "full-scan bootstrap", full_scan_s * 1e3);
  report.Add("forest_trees", kTrees);
  report.Add("bootstrap_full_scan_ms", full_scan_s * 1e3, "ms");

  ServerOptions options;
  options.max_connections = 4;
  options.slow_op_us = -1;
  options.lookup_shards = kLookupShards;
  Server server(store.get(), options);
  auto listener = std::make_unique<PipeListener>();
  PipeListener* connect_point = listener.get();
  if (!server.Start(std::move(listener)).ok()) return 1;

  // --- Section 2: warm catch-up ------------------------------------------
  // The standby is down while the leader commits kMissed more batches
  // (~1% of the forest); on restart the leader streams only those.
  {
    StatusOr<std::unique_ptr<Client>> client =
        Client::ConnectWithRetry([&] { return connect_point->Connect(); });
    if (!client.ok()) return 1;
    const double missed_s = TimeIt([&] {
      for (int i = 0; i < kMissed; ++i) {
        const TreeId id = static_cast<TreeId>(kTrees + i);
        PqGramIndex bag =
            BuildIndex(GenerateDblpLike(dict, &rng, kNodes), shape);
        if (!(*client)->AddIndex(id, bag).ok()) std::exit(1);
      }
    });
    (*client)->Close();
    std::printf("%-32s %11.1f ms  (%d batches)\n", "leader missed traffic",
                missed_s * 1e3, kMissed);
  }
  {
    Follower warm(MakeFollowerOptions(connect_point, follower_path));
    WallTimer timer;
    if (!warm.Start().ok()) return 1;
    const double start_s = timer.Seconds();
    if (!warm.WaitForCursor(server.hub()->last_ticket(), 300000)) {
      std::fprintf(stderr, "warm catch-up never converged\n");
      return 1;
    }
    const double total_s = timer.Seconds();
    const double apply_s = total_s - start_s;
    const bool delta_only = warm.snapshot_resyncs() == 0;
    warm.Stop();
    if (!delta_only) {
      std::fprintf(stderr, "warm catch-up fell back to a snapshot\n");
      return 1;
    }
    std::printf("%-32s %11.1f ms\n", "warm restart (end to end)",
                total_s * 1e3);
    std::printf("%-32s %11.1f ms  (%d missed batches)\n",
                "warm catch-up (stream + apply)", apply_s * 1e3, kMissed);
    report.Add("missed_batches", kMissed);
    report.Add("catchup_warm_total_ms", total_s * 1e3, "ms");
    report.Add("catchup_warm_ms", apply_s * 1e3, "ms");
    const double speedup = apply_s > 0 ? full_scan_s / apply_s : 0;
    std::printf("%-32s %11.1fx%s\n", "catch-up vs full scan", speedup,
                kEnforceGate ? "" : "  (gate waived at reduced scale)");
    report.Add("catchup_vs_full_scan", speedup, "x");

    server.Stop();
    RemoveStore(leader_path);
    RemoveStore(follower_path);
    report.AddRegistry();

    report.RequireAtScale(speedup >= 5.0, 0.5,
                          "catch-up speedup below the 5x bar");
  }
  return report.ExitCode();
}
