// Ablation: persisting the index incrementally (paged store + WAL)
// vs. rewriting a snapshot file per update.
//
// The paper calls the index "persistent"; the simplest persistence --
// serialize the whole forest index after every change -- costs O(index)
// I/O per update regardless of how small the change is. The page-based
// store updates only the pages holding affected tuples, so the on-disk
// update cost tracks the *delta* size, like the in-memory algorithm.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/random.h"
#include "core/forest_index.h"
#include "core/incremental.h"
#include "edit/edit_script.h"
#include "storage/index_store.h"
#include "storage/persistent_forest_index.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

int main() {
  const PqShape shape{3, 3};
  const int log_size = 100;

  PrintHeader("Ablation: on-disk maintenance, paged store vs snapshot");
  std::printf("one %d-operation log per document size; time includes all "
              "I/O and fsyncs\n\n",
              log_size);
  std::printf("%12s %16s %18s %20s\n", "tree nodes", "snapshot [s]",
              "paged store [s]", "snapshot/paged");

  for (int records : {2000, 8000, 32000, Scaled(128000)}) {
    Rng rng(records);
    Tree doc = GenerateDblpLike(nullptr, &rng, records);
    EditLog log;
    Tree edited = doc.Clone();
    GenerateEditScript(&edited, &rng, log_size, EditScriptOptions{}, &log);

    // Snapshot persistence: in-memory update + full file rewrite.
    std::string snap_path = "/tmp/pqidx_bench_snapshot.idx";
    ForestIndex forest(shape);
    forest.AddTree(1, doc);
    if (!SaveForestIndex(forest, snap_path).ok()) return 1;
    double snapshot_s = TimeIt([&] {
      if (!forest.ApplyLog(1, edited, log).ok()) std::abort();
      if (!SaveForestIndex(forest, snap_path).ok()) std::abort();
    });

    // Paged store: delta-sized page writes through the WAL.
    std::string paged_path = "/tmp/pqidx_bench_paged.db";
    auto store = PersistentForestIndex::Create(paged_path, shape);
    if (!store.ok() || !(*store)->AddTree(1, doc).ok()) return 1;
    double paged_s = TimeIt([&] {
      if (!(*store)->ApplyLog(1, edited, log).ok()) std::abort();
    });

    std::printf("%12d %16.4f %18.4f %19.1fx\n", doc.size(), snapshot_s,
                paged_s, paged_s > 0 ? snapshot_s / paged_s : 0.0);
  }
  std::printf("\nreading: snapshot cost grows linearly with the index; "
              "the paged store pays fixed fsync overhead plus delta-sized "
              "page traffic, so it wins once the index outgrows a few "
              "hundred thousand tuples.\n");
  return 0;
}
