// Write-path microbench: the halves of a pqidxd commit, measured in
// isolation. Section 1 times snapshot publish on a 10k-tree forest --
// full LookupEngine::Build versus the copy-on-write ApplyDelta a
// single-edit commit performs -- and reports the speedup (the acceptance
// bar is >= 5x; only 1 of ~16 shards recompiles). Section 2 sweeps
// PersistentForestIndex::ApplyBatch over batch size x edit size x staging
// threads, showing how the parallel delta phase scales, plus BulkAdd
// ingest serial vs pooled. Section 3 isolates the bucket-clustered
// staged-delta apply order (arrival order vs sorted). Section 4 is this
// PR's acceptance gate: the same batched-update workload against a
// single-shard store and a 4-shard ShardedStore -- one pager, WAL, and
// group-commit lane per shard -- must clear a 2x throughput bar at full
// scale.
//
// Not in the paper: the paper's update experiments (Figs 13-14) measure
// the algorithmic log-update; this measures the serving substrate this
// repo builds around it. Emits BENCH_WRITE.json with --json[=PATH] or
// PQIDX_BENCH_JSON, including the full metrics registry section.

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/lookup_engine.h"
#include "core/pqgram_index.h"
#include "storage/persistent_forest_index.h"
#include "storage/sharded_store.h"

using namespace pqidx;
using namespace pqidx::bench;

namespace {

PqGramIndex RandomBag(const PqShape& shape, Rng* rng, int tuples) {
  PqGramIndex bag(shape);
  for (int i = 0; i < tuples; ++i) {
    bag.Add(static_cast<PqGramFingerprint>(rng->Next()), 1);
  }
  return bag;
}

}  // namespace

int main(int argc, char** argv) {
  ReportBuilder report("WRITE", argc, argv);
  const PqShape shape{2, 3};

  // --- Section 1: incremental vs full snapshot publish -----------------
  // The server publishes a fresh immutable lookup snapshot after every
  // committed batch. Pre-PR that was a full Build over the whole replica;
  // now a single-edit commit recompiles only the one shard owning the
  // edited tree and shares the other shards with the previous epoch.
  const int kForestTrees = Scaled(10000);
  const int kBagTuples = 40;
  const int kShards = 16;
  const int kFullReps = 3;
  const int kIncrReps = 32;

  Rng rng(42);
  ForestIndex forest(shape);
  for (TreeId id = 0; id < kForestTrees; ++id) {
    forest.AddIndex(id, RandomBag(shape, &rng, kBagTuples));
  }

  std::shared_ptr<const LookupEngine> engine;
  double full_s = 0;
  for (int rep = 0; rep < kFullReps; ++rep) {
    const double s = TimeIt([&] { engine = LookupEngine::Build(forest, kShards); });
    if (rep == 0 || s < full_s) full_s = s;
  }

  double incr_s_total = 0;
  for (int rep = 0; rep < kIncrReps; ++rep) {
    // One single-tree edit per publish, the common interactive case.
    TreeId id = static_cast<TreeId>(rng.NextBounded(
        static_cast<uint64_t>(kForestTrees)));
    forest.AddIndex(id, RandomBag(shape, &rng, kBagTuples));
    incr_s_total += TimeIt([&] {
      engine = LookupEngine::ApplyDelta(engine, forest, {id});
    });
  }
  const double incr_s = incr_s_total / kIncrReps;
  const double publish_speedup = incr_s > 0 ? full_s / incr_s : 0;

  PrintHeader("snapshot publish: full Build vs incremental ApplyDelta");
  std::printf("%d trees, %d shards, single-edit commits\n", kForestTrees,
              kShards);
  std::printf("%-32s %12.3f ms\n", "full Build (best of 3)", full_s * 1e3);
  std::printf("%-32s %12.3f ms\n", "incremental ApplyDelta (mean)",
              incr_s * 1e3);
  std::printf("%-32s %11.1fx\n", "publish speedup", publish_speedup);
  report.Add("publish_forest_trees", kForestTrees);
  report.Add("publish_full_ms", full_s * 1e3, "ms");
  report.Add("publish_incremental_ms", incr_s * 1e3, "ms");
  report.Add("publish_speedup", publish_speedup, "x");

  // --- Section 2: ApplyBatch staging sweep ------------------------------
  // Batched edits against the persistent store: the delta phase
  // (flatten, hash, region-group, net-merge) fans out across a pool; the
  // WAL transaction and table apply stay serial. Edits/s per cell.
  PrintHeader("ApplyBatch: batch size x edit size x staging threads");
  const int kStoreTrees = 512;
  const int kStoreBagTuples = 40;
  const int kStagingThreads = 4;
  const std::string path = "/tmp/pqidx_bench_apply_batch.idx";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  StatusOr<std::unique_ptr<PersistentForestIndex>> store =
      PersistentForestIndex::Create(path, shape);
  if (!store.ok()) {
    std::fprintf(stderr, "create: %s\n", store.status().ToString().c_str());
    return 1;
  }
  ThreadPool pool(kStagingThreads);

  // Seed via BulkAdd, timing serial vs pooled ingest on the way.
  std::vector<PqGramIndex> seed_bags;
  seed_bags.reserve(static_cast<size_t>(kStoreTrees));
  for (int i = 0; i < kStoreTrees; ++i) {
    seed_bags.push_back(RandomBag(shape, &rng, kStoreBagTuples));
  }
  std::vector<std::pair<TreeId, const PqGramIndex*>> refs;
  for (int i = 0; i < kStoreTrees; ++i) {
    refs.emplace_back(static_cast<TreeId>(i), &seed_bags[static_cast<size_t>(i)]);
  }
  const double ingest_pooled_s = TimeIt([&] {
    if (Status s = (*store)->BulkAdd(refs, &pool); !s.ok()) {
      std::fprintf(stderr, "bulk add: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  });
  // Serial comparison point on a second store.
  {
    const std::string path2 = path + ".serial";
    std::remove(path2.c_str());
    std::remove((path2 + ".wal").c_str());
    StatusOr<std::unique_ptr<PersistentForestIndex>> store2 =
        PersistentForestIndex::Create(path2, shape);
    if (store2.ok()) {
      const double ingest_serial_s =
          TimeIt([&] { (void)(*store2)->BulkAdd(refs, nullptr); });
      std::printf("%-32s %12.3f ms serial, %.3f ms pooled (%d bags)\n",
                  "BulkAdd ingest", ingest_serial_s * 1e3,
                  ingest_pooled_s * 1e3, kStoreTrees);
      report.Add("bulk_add_serial_ms", ingest_serial_s * 1e3, "ms");
      report.Add("bulk_add_pooled_ms", ingest_pooled_s * 1e3, "ms");
    }
    std::remove(path2.c_str());
    std::remove((path2 + ".wal").c_str());
  }

  std::printf("\n%10s %10s %10s %14s %12s\n", "batch", "tuples", "threads",
              "edits/s", "delta [us]");
  for (int batch_size : {1, 16, 128}) {
    for (int edit_tuples : {4, 32}) {
      for (int threads : {0, kStagingThreads}) {
        const int kRounds = Scaled(8);
        double total_s = 0;
        int64_t total_edits = 0;
        int64_t delta_us = 0;
        for (int round = 0; round < kRounds; ++round) {
          // Fresh plus-bags each round; empty minus keeps every edit a
          // valid update without tracking store contents.
          std::vector<PqGramIndex> plus;
          PqGramIndex minus(shape);
          plus.reserve(static_cast<size_t>(batch_size));
          for (int b = 0; b < batch_size; ++b) {
            plus.push_back(RandomBag(shape, &rng, edit_tuples));
          }
          std::vector<PersistentForestIndex::BatchEdit> edits;
          for (int b = 0; b < batch_size; ++b) {
            PersistentForestIndex::BatchEdit edit;
            edit.id = static_cast<TreeId>(
                (round * batch_size + b) % kStoreTrees);
            edit.plus = &plus[static_cast<size_t>(b)];
            edit.minus = &minus;
            edits.push_back(edit);
          }
          std::vector<Status> results;
          PersistentForestIndex::ApplyBatchTimings timings;
          total_s += TimeIt([&] {
            Status s = (*store)->ApplyBatch(edits, &results, &timings,
                                            threads > 0 ? &pool : nullptr);
            if (!s.ok()) {
              std::fprintf(stderr, "apply: %s\n", s.ToString().c_str());
              std::exit(1);
            }
          });
          total_edits += batch_size;
          delta_us += timings.delta_us;
        }
        const double edits_per_s = total_s > 0 ? total_edits / total_s : 0;
        std::printf("%10d %10d %10d %14.0f %12lld\n", batch_size,
                    edit_tuples, threads, edits_per_s,
                    static_cast<long long>(delta_us / kRounds));
        const std::string cell = "_b" + std::to_string(batch_size) + "_e" +
                                 std::to_string(edit_tuples) + "_t" +
                                 std::to_string(threads);
        report.Add("apply_edits_per_s" + cell, edits_per_s, "edits/s");
        report.Add("apply_delta_us" + cell,
                   static_cast<double>(delta_us / kRounds), "us");
      }
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  // --- Section 3: bucket-clustered staged deltas ------------------------
  // The staging phase clusters each transaction's postings deltas by
  // destination hash bucket before the in-WAL apply, so the table walks
  // each touched page region once instead of hopping in arrival order.
  // Same ingest + update workload with the clustering off, then on.
  PrintHeader("staged deltas: arrival order vs bucket-clustered");
  {
    const int kSortBatch = 128;
    const int kSortTuples = 32;
    const int kSortRounds = Scaled(8);
    double ms[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
      const bool sorted = pass == 1;
      PersistentForestIndex::SetBucketSortEnabled(sorted);
      const std::string pass_path = path + (sorted ? ".bs_on" : ".bs_off");
      std::remove(pass_path.c_str());
      std::remove((pass_path + ".wal").c_str());
      StatusOr<std::unique_ptr<PersistentForestIndex>> bs_store =
          PersistentForestIndex::Create(pass_path, shape);
      if (!bs_store.ok()) return 1;
      double total_s = TimeIt([&] {
        if (!(*bs_store)->BulkAdd(refs, &pool).ok()) std::exit(1);
      });
      for (int round = 0; round < kSortRounds; ++round) {
        std::vector<PqGramIndex> plus;
        PqGramIndex minus(shape);
        plus.reserve(static_cast<size_t>(kSortBatch));
        for (int b = 0; b < kSortBatch; ++b) {
          plus.push_back(RandomBag(shape, &rng, kSortTuples));
        }
        std::vector<PersistentForestIndex::BatchEdit> edits;
        for (int b = 0; b < kSortBatch; ++b) {
          PersistentForestIndex::BatchEdit edit;
          edit.id = static_cast<TreeId>(
              (round * kSortBatch + b) % kStoreTrees);
          edit.plus = &plus[static_cast<size_t>(b)];
          edit.minus = &minus;
          edits.push_back(edit);
        }
        std::vector<Status> results;
        total_s += TimeIt([&] {
          if (!(*bs_store)->ApplyBatch(edits, &results, nullptr, &pool).ok()) {
            std::exit(1);
          }
        });
      }
      ms[pass] = total_s * 1e3;
      std::remove(pass_path.c_str());
      std::remove((pass_path + ".wal").c_str());
    }
    PersistentForestIndex::SetBucketSortEnabled(true);
    const double sort_speedup = ms[1] > 0 ? ms[0] / ms[1] : 0;
    std::printf("%-32s %12.3f ms\n", "ingest+update, arrival order", ms[0]);
    std::printf("%-32s %12.3f ms\n", "ingest+update, bucket-sorted", ms[1]);
    std::printf("%-32s %11.2fx\n", "bucket-sort speedup", sort_speedup);
    report.Add("bucket_sort_off_ms", ms[0], "ms");
    report.Add("bucket_sort_on_ms", ms[1], "ms");
    report.Add("bucket_sort_speedup", sort_speedup, "x");
  }

  // --- Section 4: sharded store write throughput (the PR gate) ----------
  // Identical write traffic against one store and a 4-shard
  // ShardedStore. Each shard owns a pager, WAL, and hash table, so a
  // group commit runs 4 independent prepare lanes (delta staging, WAL
  // write, in-WAL table apply) across the pool where the single store
  // serializes everything behind one WAL. The gate is ingest (BulkAdd),
  // whose serial insert loop is the single store's CPU bottleneck; the
  // batched-update numbers ride along with a per-phase split -- their
  // commit cost is WAL bytes, which sharding spreads but the shared
  // disk still absorbs, so the update speedup is reported, not gated.
  PrintHeader("sharded store: 1 shard vs 4 shards, same write traffic");
  const int kGateTrees = Scaled(8192);
  const int kGateBatch = 256;
  const int kGateTuples = 32;
  const int kGateRounds = Scaled(12);
  std::vector<PqGramIndex> gate_bags;
  gate_bags.reserve(static_cast<size_t>(kGateTrees));
  for (int i = 0; i < kGateTrees; ++i) {
    gate_bags.push_back(RandomBag(shape, &rng, kStoreBagTuples));
  }
  std::vector<std::pair<TreeId, const PqGramIndex*>> gate_refs;
  for (int i = 0; i < kGateTrees; ++i) {
    gate_refs.emplace_back(static_cast<TreeId>(i),
                           &gate_bags[static_cast<size_t>(i)]);
  }
  double trees_per_s[2] = {0, 0};
  double edits_per_s[2] = {0, 0};
  int64_t phase_us[2][4] = {{0, 0, 0, 0}, {0, 0, 0, 0}};
  for (int pass = 0; pass < 2; ++pass) {
    const int shards = pass == 0 ? 1 : 4;
    // tmpfs when available: the gate measures the store's commit lanes,
    // not the box's disk bandwidth (WAL bytes are identical either way).
    const std::string store_path =
        (::access("/dev/shm", W_OK) == 0 ? std::string("/dev/shm")
                                         : std::string("/tmp")) +
        "/pqidx_bench_sharded.store";
    // Same total page-cache budget either way: one 16k-page pool, or
    // 4k pages per shard (the default 256 thrashes at this scale).
    StatusOr<std::unique_ptr<ShardedStore>> sharded = ShardedStore::Create(
        store_path, shape, shards, /*pool_pages=*/16384 / shards);
    if (!sharded.ok()) {
      std::fprintf(stderr, "create: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }
    const double ingest_s = TimeIt([&] {
      if (!(*sharded)->BulkAdd(gate_refs, &pool).ok()) std::exit(1);
    });
    trees_per_s[pass] = ingest_s > 0 ? kGateTrees / ingest_s : 0;
    double total_s = 0;
    int64_t total_edits = 0;
    for (int round = 0; round < kGateRounds; ++round) {
      std::vector<PqGramIndex> plus;
      PqGramIndex minus(shape);
      plus.reserve(static_cast<size_t>(kGateBatch));
      for (int b = 0; b < kGateBatch; ++b) {
        plus.push_back(RandomBag(shape, &rng, kGateTuples));
      }
      std::vector<PersistentForestIndex::BatchEdit> edits;
      for (int b = 0; b < kGateBatch; ++b) {
        PersistentForestIndex::BatchEdit edit;
        edit.id = static_cast<TreeId>((round * kGateBatch + b) % kGateTrees);
        edit.plus = &plus[static_cast<size_t>(b)];
        edit.minus = &minus;
        edits.push_back(edit);
      }
      std::vector<Status> results;
      PersistentForestIndex::ApplyBatchTimings timings;
      total_s += TimeIt([&] {
        if (!(*sharded)->ApplyBatch(edits, &results, &timings, &pool).ok()) {
          std::exit(1);
        }
      });
      total_edits += kGateBatch;
      phase_us[pass][0] += timings.validate_us;
      phase_us[pass][1] += timings.delta_us;
      phase_us[pass][2] += timings.update_us;
      phase_us[pass][3] += timings.storage_us;
    }
    edits_per_s[pass] = total_s > 0 ? total_edits / total_s : 0;
    std::printf("%d shard%s ingest %12.0f trees/s   update %10.0f edits/s\n"
                "          (val %lld  delta %lld  update %lld  storage %lld "
                "us/batch)\n",
                shards, shards == 1 ? ", " : "s,", trees_per_s[pass],
                edits_per_s[pass],
                static_cast<long long>(phase_us[pass][0] / kGateRounds),
                static_cast<long long>(phase_us[pass][1] / kGateRounds),
                static_cast<long long>(phase_us[pass][2] / kGateRounds),
                static_cast<long long>(phase_us[pass][3] / kGateRounds));
    report.Add(std::string("sharded_ingest_trees_per_s_n") +
                   std::to_string(shards),
               trees_per_s[pass], "trees/s");
    report.Add(std::string("sharded_edits_per_s_n") + std::to_string(shards),
               edits_per_s[pass], "edits/s");
    sharded->reset();
    std::remove((store_path + "/MANIFEST").c_str());
    for (int k = 0; k < shards; ++k) {
      char name[16];
      std::snprintf(name, sizeof(name), "shard-%04d", k);
      const std::string shard_file = store_path + "/" + name;
      std::remove(shard_file.c_str());
      std::remove((shard_file + ".wal").c_str());
    }
    ::rmdir(store_path.c_str());
    std::remove(store_path.c_str());
    std::remove((store_path + ".wal").c_str());
  }
  const double shard_speedup =
      trees_per_s[0] > 0 ? trees_per_s[1] / trees_per_s[0] : 0;
  const double update_speedup =
      edits_per_s[0] > 0 ? edits_per_s[1] / edits_per_s[0] : 0;
  std::printf("%-32s %11.2fx\n", "4-shard ingest speedup", shard_speedup);
  std::printf("%-32s %11.2fx\n", "4-shard update speedup", update_speedup);
  report.Add("sharded_write_speedup", shard_speedup, "x");
  report.Add("sharded_update_speedup", update_speedup, "x");

  report.AddRegistry();

  report.Require(publish_speedup >= 5.0,
                 "incremental publish speedup below the 5x bar");
  // The 2x bar needs the shard lanes to actually run concurrently: on a
  // machine with fewer cores than lanes the sweep measures the CPU, not
  // the commit protocol, so the gate is waived the same way reduced
  // scale waives the others (the ratio is still reported above).
  const unsigned kCores = std::thread::hardware_concurrency();
  if (kCores >= 4) {
    report.RequireAtScale(shard_speedup >= 2.0, 0.5,
                          "4-shard ingest throughput below the 2x bar");
  } else {
    std::printf("(2x shard gate waived: %u core%s cannot run 4 commit "
                "lanes concurrently)\n",
                kCores, kCores == 1 ? "" : "s");
  }
  return report.ExitCode();
}
