// Write-path microbench: the two halves of a pqidxd commit, measured in
// isolation. Section 1 times snapshot publish on a 10k-tree forest --
// full LookupEngine::Build versus the copy-on-write ApplyDelta a
// single-edit commit performs -- and reports the speedup (the acceptance
// bar is >= 5x; only 1 of ~16 shards recompiles). Section 2 sweeps
// PersistentForestIndex::ApplyBatch over batch size x edit size x staging
// threads, showing how the parallel delta phase scales, plus BulkAdd
// ingest serial vs pooled.
//
// Not in the paper: the paper's update experiments (Figs 13-14) measure
// the algorithmic log-update; this measures the serving substrate this
// repo builds around it. Emits BENCH_WRITE.json with --json[=PATH] or
// PQIDX_BENCH_JSON, including the full metrics registry section.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/lookup_engine.h"
#include "core/pqgram_index.h"
#include "storage/persistent_forest_index.h"

using namespace pqidx;
using namespace pqidx::bench;

namespace {

PqGramIndex RandomBag(const PqShape& shape, Rng* rng, int tuples) {
  PqGramIndex bag(shape);
  for (int i = 0; i < tuples; ++i) {
    bag.Add(static_cast<PqGramFingerprint>(rng->Next()), 1);
  }
  return bag;
}

}  // namespace

int main(int argc, char** argv) {
  ReportBuilder report("WRITE", argc, argv);
  const PqShape shape{2, 3};

  // --- Section 1: incremental vs full snapshot publish -----------------
  // The server publishes a fresh immutable lookup snapshot after every
  // committed batch. Pre-PR that was a full Build over the whole replica;
  // now a single-edit commit recompiles only the one shard owning the
  // edited tree and shares the other shards with the previous epoch.
  const int kForestTrees = Scaled(10000);
  const int kBagTuples = 40;
  const int kShards = 16;
  const int kFullReps = 3;
  const int kIncrReps = 32;

  Rng rng(42);
  ForestIndex forest(shape);
  for (TreeId id = 0; id < kForestTrees; ++id) {
    forest.AddIndex(id, RandomBag(shape, &rng, kBagTuples));
  }

  std::shared_ptr<const LookupEngine> engine;
  double full_s = 0;
  for (int rep = 0; rep < kFullReps; ++rep) {
    const double s = TimeIt([&] { engine = LookupEngine::Build(forest, kShards); });
    if (rep == 0 || s < full_s) full_s = s;
  }

  double incr_s_total = 0;
  for (int rep = 0; rep < kIncrReps; ++rep) {
    // One single-tree edit per publish, the common interactive case.
    TreeId id = static_cast<TreeId>(rng.NextBounded(
        static_cast<uint64_t>(kForestTrees)));
    forest.AddIndex(id, RandomBag(shape, &rng, kBagTuples));
    incr_s_total += TimeIt([&] {
      engine = LookupEngine::ApplyDelta(engine, forest, {id});
    });
  }
  const double incr_s = incr_s_total / kIncrReps;
  const double publish_speedup = incr_s > 0 ? full_s / incr_s : 0;

  PrintHeader("snapshot publish: full Build vs incremental ApplyDelta");
  std::printf("%d trees, %d shards, single-edit commits\n", kForestTrees,
              kShards);
  std::printf("%-32s %12.3f ms\n", "full Build (best of 3)", full_s * 1e3);
  std::printf("%-32s %12.3f ms\n", "incremental ApplyDelta (mean)",
              incr_s * 1e3);
  std::printf("%-32s %11.1fx\n", "publish speedup", publish_speedup);
  report.Add("publish_forest_trees", kForestTrees);
  report.Add("publish_full_ms", full_s * 1e3, "ms");
  report.Add("publish_incremental_ms", incr_s * 1e3, "ms");
  report.Add("publish_speedup", publish_speedup, "x");

  // --- Section 2: ApplyBatch staging sweep ------------------------------
  // Batched edits against the persistent store: the delta phase
  // (flatten, hash, region-group, net-merge) fans out across a pool; the
  // WAL transaction and table apply stay serial. Edits/s per cell.
  PrintHeader("ApplyBatch: batch size x edit size x staging threads");
  const int kStoreTrees = 512;
  const int kStoreBagTuples = 40;
  const int kStagingThreads = 4;
  const std::string path = "/tmp/pqidx_bench_apply_batch.idx";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  StatusOr<std::unique_ptr<PersistentForestIndex>> store =
      PersistentForestIndex::Create(path, shape);
  if (!store.ok()) {
    std::fprintf(stderr, "create: %s\n", store.status().ToString().c_str());
    return 1;
  }
  ThreadPool pool(kStagingThreads);

  // Seed via BulkAdd, timing serial vs pooled ingest on the way.
  std::vector<PqGramIndex> seed_bags;
  seed_bags.reserve(static_cast<size_t>(kStoreTrees));
  for (int i = 0; i < kStoreTrees; ++i) {
    seed_bags.push_back(RandomBag(shape, &rng, kStoreBagTuples));
  }
  std::vector<std::pair<TreeId, const PqGramIndex*>> refs;
  for (int i = 0; i < kStoreTrees; ++i) {
    refs.emplace_back(static_cast<TreeId>(i), &seed_bags[static_cast<size_t>(i)]);
  }
  const double ingest_pooled_s = TimeIt([&] {
    if (Status s = (*store)->BulkAdd(refs, &pool); !s.ok()) {
      std::fprintf(stderr, "bulk add: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  });
  // Serial comparison point on a second store.
  {
    const std::string path2 = path + ".serial";
    std::remove(path2.c_str());
    std::remove((path2 + ".wal").c_str());
    StatusOr<std::unique_ptr<PersistentForestIndex>> store2 =
        PersistentForestIndex::Create(path2, shape);
    if (store2.ok()) {
      const double ingest_serial_s =
          TimeIt([&] { (void)(*store2)->BulkAdd(refs, nullptr); });
      std::printf("%-32s %12.3f ms serial, %.3f ms pooled (%d bags)\n",
                  "BulkAdd ingest", ingest_serial_s * 1e3,
                  ingest_pooled_s * 1e3, kStoreTrees);
      report.Add("bulk_add_serial_ms", ingest_serial_s * 1e3, "ms");
      report.Add("bulk_add_pooled_ms", ingest_pooled_s * 1e3, "ms");
    }
    std::remove(path2.c_str());
    std::remove((path2 + ".wal").c_str());
  }

  std::printf("\n%10s %10s %10s %14s %12s\n", "batch", "tuples", "threads",
              "edits/s", "delta [us]");
  for (int batch_size : {1, 16, 128}) {
    for (int edit_tuples : {4, 32}) {
      for (int threads : {0, kStagingThreads}) {
        const int kRounds = Scaled(8);
        double total_s = 0;
        int64_t total_edits = 0;
        int64_t delta_us = 0;
        for (int round = 0; round < kRounds; ++round) {
          // Fresh plus-bags each round; empty minus keeps every edit a
          // valid update without tracking store contents.
          std::vector<PqGramIndex> plus;
          PqGramIndex minus(shape);
          plus.reserve(static_cast<size_t>(batch_size));
          for (int b = 0; b < batch_size; ++b) {
            plus.push_back(RandomBag(shape, &rng, edit_tuples));
          }
          std::vector<PersistentForestIndex::BatchEdit> edits;
          for (int b = 0; b < batch_size; ++b) {
            PersistentForestIndex::BatchEdit edit;
            edit.id = static_cast<TreeId>(
                (round * batch_size + b) % kStoreTrees);
            edit.plus = &plus[static_cast<size_t>(b)];
            edit.minus = &minus;
            edits.push_back(edit);
          }
          std::vector<Status> results;
          PersistentForestIndex::ApplyBatchTimings timings;
          total_s += TimeIt([&] {
            Status s = (*store)->ApplyBatch(edits, &results, &timings,
                                            threads > 0 ? &pool : nullptr);
            if (!s.ok()) {
              std::fprintf(stderr, "apply: %s\n", s.ToString().c_str());
              std::exit(1);
            }
          });
          total_edits += batch_size;
          delta_us += timings.delta_us;
        }
        const double edits_per_s = total_s > 0 ? total_edits / total_s : 0;
        std::printf("%10d %10d %10d %14.0f %12lld\n", batch_size,
                    edit_tuples, threads, edits_per_s,
                    static_cast<long long>(delta_us / kRounds));
        const std::string cell = "_b" + std::to_string(batch_size) + "_e" +
                                 std::to_string(edit_tuples) + "_t" +
                                 std::to_string(threads);
        report.Add("apply_edits_per_s" + cell, edits_per_s, "edits/s");
        report.Add("apply_delta_us" + cell,
                   static_cast<double>(delta_us / kRounds), "us");
      }
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  report.AddRegistry();

  report.Require(publish_speedup >= 5.0,
                 "incremental publish speedup below the 5x bar");
  return report.ExitCode();
}
