// The workload harness runner: seeded YCSB-style scenarios against an
// in-process pqidxd, every one with the differential oracle on, so this
// binary is simultaneously a throughput bench and a correctness gate.
//
// Scenarios (all from one fixed seed, reproducible bit-for-bit):
//   * presets A (read-heavy 90/5/5), B (mixed 50/10/40), C (write-heavy
//     10/5/85) over the pipe transport, zipfian tree/query skew, with
//     ephemeral apply-then-revert bursts at every round boundary;
//   * preset A end to end over loopback TCP (the full wire path);
//   * a multi-client ramp (1 -> 4 -> 8 clients, preset A).
//
// Any oracle divergence exits nonzero unconditionally. The >20%
// throughput-regression gate against --baseline=PATH (the committed
// bench/baselines/BENCH_WORKLOAD.json) is enforced at full scale and
// reported-but-waived below it, per the bench gate convention.
//
// Not in the paper: the paper measures the index algorithms; this
// stresses the serving stack (pending-bag overlay, incremental
// ApplyDelta publishes, epoch-keyed query cache) under skewed and
// revert-heavy traffic. Knobs: PQIDX_BENCH_SCALE, --json[=PATH],
// --seed=N, --baseline=PATH.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "service/server.h"
#include "service/transport.h"
#include "storage/sharded_store.h"
#include "workload/driver.h"
#include "workload/oracle.h"
#include "workload/workload.h"

using namespace pqidx;
using namespace pqidx::bench;
using namespace pqidx::workload;

namespace {

constexpr uint64_t kDefaultSeed = 20260809;

// Pulls one metric value out of a committed BENCH_*.json baseline. The
// format is the fixed shape JsonReport writes, so a targeted scan
// beats pulling in a JSON parser: find the name, read the next value.
bool BaselineMetric(const std::string& doc, const std::string& name,
                    double* value) {
  const std::string needle = "\"name\": \"" + name + "\"";
  size_t at = doc.find(needle);
  if (at == std::string::npos) return false;
  const std::string value_key = "\"value\": ";
  at = doc.find(value_key, at);
  if (at == std::string::npos) return false;
  *value = std::atof(doc.c_str() + at + value_key.size());
  return true;
}

// One in-process server over a fresh store, reachable through `dial`.
struct Harness {
  std::string path;
  std::unique_ptr<ShardedStore> index;
  std::unique_ptr<Server> server;
  std::unique_ptr<TcpListener> tcp_keepalive;  // owns nothing for pipe
  Dialer dial;

  ~Harness() {
    if (server != nullptr) server->Stop();
    if (!path.empty()) {
      index.reset();
      std::remove((path + "/MANIFEST").c_str());
      for (int k = 0; k < 64; ++k) {
        char name[16];
        std::snprintf(name, sizeof(name), "shard-%04d", k);
        const std::string shard = path + "/" + name;
        std::remove(shard.c_str());
        std::remove((shard + ".wal").c_str());
      }
      ::rmdir(path.c_str());
      std::remove(path.c_str());
      std::remove((path + ".wal").c_str());
    }
  }
};

std::unique_ptr<Harness> StartHarness(const PqShape& shape, int clients,
                                      bool tcp, int store_shards) {
  auto harness = std::make_unique<Harness>();
  harness->path = "/tmp/pqidx_bench_workload.idx";

  StatusOr<std::unique_ptr<ShardedStore>> index =
      ShardedStore::Create(harness->path, shape, store_shards);
  if (!index.ok()) {
    std::fprintf(stderr, "create: %s\n", index.status().ToString().c_str());
    return nullptr;
  }
  harness->index = std::move(index).value();
  ServerOptions options;
  options.max_connections = clients + 2;  // clients + control
  harness->server = std::make_unique<Server>(harness->index.get(), options);

  if (tcp) {
    StatusOr<std::unique_ptr<TcpListener>> listener = TcpListener::Listen(0);
    if (!listener.ok()) {
      std::fprintf(stderr, "listen: %s\n",
                   listener.status().ToString().c_str());
      return nullptr;
    }
    const int port = (*listener)->port();
    harness->dial = [port] {
      return TcpConnect("127.0.0.1", static_cast<uint16_t>(port));
    };
    if (Status s = harness->server->Start(std::move(listener).value());
        !s.ok()) {
      std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
      return nullptr;
    }
  } else {
    auto listener = std::make_unique<PipeListener>();
    PipeListener* connect_point = listener.get();
    harness->dial = [connect_point] { return connect_point->Connect(); };
    if (Status s = harness->server->Start(std::move(listener)); !s.ok()) {
      std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
      return nullptr;
    }
  }
  return harness;
}

WorkloadSpec ScenarioSpec(char preset, uint64_t seed) {
  WorkloadSpec spec = PresetSpec(preset);
  spec.seed = seed;
  spec.num_trees = 192;
  spec.tree_records = 6;
  spec.num_clients = 4;
  spec.ops_per_client = Scaled(240);
  spec.rounds = 3;
  spec.theta = 0.99;
  spec.burst_trees = 4;
  spec.burst_depth = 3;
  return spec;
}

// Runs one scenario end to end; false means the run (or the oracle)
// failed and the binary must exit nonzero.
bool RunScenario(const WorkloadSpec& spec, bool tcp, const std::string& cell,
                 ReportBuilder* report, double* throughput_out,
                 int store_shards = 1) {
  std::unique_ptr<Harness> harness =
      StartHarness(spec.shape, spec.num_clients, tcp, store_shards);
  if (harness == nullptr) return false;

  DriverOptions options;
  options.oracle = true;
  options.server = harness->server.get();
  StatusOr<RunResult> run = RunWorkload(spec, harness->dial, options);
  if (!run.ok()) {
    std::fprintf(stderr, "%s: %s\n", cell.c_str(),
                 run.status().ToString().c_str());
    return false;
  }

  std::printf("%-28s %10.0f req/s  (%lld lookups, %lld topk, %lld edits; "
              "%lld oracle sweeps / %lld comparisons; %lld burst trees)\n",
              (cell + " throughput").c_str(), run->throughput(),
              static_cast<long long>(run->lookups),
              static_cast<long long>(run->topks),
              static_cast<long long>(run->edits),
              static_cast<long long>(run->oracle_checks),
              static_cast<long long>(run->oracle_comparisons),
              static_cast<long long>(run->bursts));
  report->Add(cell + "_throughput", run->throughput(), "req/s");
  report->AddLatencyMs(cell + "_lookup", &run->lookup_s);
  if (!run->topk_s.empty()) report->AddLatencyMs(cell + "_topk", &run->topk_s);
  if (!run->edit_s.empty()) report->AddLatencyMs(cell + "_edit", &run->edit_s);
  report->Add(cell + "_oracle_checks",
              static_cast<double>(run->oracle_checks));
  report->Add(cell + "_oracle_comparisons",
              static_cast<double>(run->oracle_comparisons));
  report->Add(cell + "_bursts", static_cast<double>(run->bursts));
  report->Add(cell + "_burst_comparisons",
              static_cast<double>(run->burst_comparisons));
  report->Add(cell + "_failures", run->failures);

  report->Require(run->failures == 0,
                  cell + ": client-visible request failures");
  report->Require(run->oracle_checks > 0 && run->oracle_comparisons > 0,
                  cell + ": oracle ran no comparisons");
  report->Require(run->bursts > 0 && run->burst_comparisons > 0,
                  cell + ": ephemeral bursts ran no comparisons");
  if (throughput_out != nullptr) *throughput_out = run->throughput();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ReportBuilder report("WORKLOAD", argc, argv);
  uint64_t seed = kDefaultSeed;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    }
  }

  PrintHeader("workload harness (differential oracle on)");
  std::printf("seed %llu, scale %g\n\n",
              static_cast<unsigned long long>(seed), Scale());
  report.Add("seed", static_cast<double>(seed));

  // Presets A/B/C over the pipe transport, bursts at every boundary.
  double throughput_a = 0;
  for (char preset : {'A', 'B', 'C'}) {
    WorkloadSpec spec = ScenarioSpec(preset, seed);
    std::printf("%s\n", DescribeSpec(spec).c_str());
    const std::string cell = std::string("preset_") +
                             static_cast<char>(preset + ('a' - 'A'));
    double throughput = 0;
    if (!RunScenario(spec, /*tcp=*/false, cell, &report, &throughput)) {
      return 1;
    }
    if (preset == 'A') throughput_a = throughput;
    std::printf("\n");
  }

  // The same read-heavy preset end to end over loopback TCP.
  PrintHeader("preset A over loopback TCP");
  {
    WorkloadSpec spec = ScenarioSpec('A', seed + 1);
    spec.ops_per_client = Scaled(120);
    if (!RunScenario(spec, /*tcp=*/true, "tcp_a", &report, nullptr)) {
      return 1;
    }
  }

  // The mixed preset against a 4-shard store: every edit routes through
  // the group-commit protocol and the differential oracle still has to
  // match the single-store semantics bit for bit.
  PrintHeader("preset B on a 4-shard store");
  {
    WorkloadSpec spec = ScenarioSpec('B', seed + 3);
    spec.ops_per_client = Scaled(120);
    if (!RunScenario(spec, /*tcp=*/false, "sharded_b", &report, nullptr,
                     /*store_shards=*/4)) {
      return 1;
    }
  }

  // Multi-client ramp: preset A at 1, 4, 8 clients.
  PrintHeader("multi-client ramp (preset A)");
  double single = 0;
  for (int clients : {1, 4, 8}) {
    WorkloadSpec spec = ScenarioSpec('A', seed + 2);
    spec.num_clients = clients;
    spec.ops_per_client = Scaled(160);
    const std::string cell = "ramp_c" + std::to_string(clients);
    double throughput = 0;
    if (!RunScenario(spec, /*tcp=*/false, cell, &report, &throughput)) {
      return 1;
    }
    if (clients == 1) single = throughput;
    if (single > 0) {
      report.Add(cell + "_scaling", throughput / single, "x");
    }
  }

  // Regression gate against the committed baseline: >20% below the
  // recorded preset-A throughput fails at full scale (waived below, so
  // CI's reduced-scale smoke still parses and reports the baseline).
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    double base_a = 0;
    if (!BaselineMetric(buf.str(), "preset_a_throughput", &base_a) ||
        base_a <= 0) {
      std::fprintf(stderr, "baseline %s lacks preset_a_throughput\n",
                   baseline_path.c_str());
      return 1;
    }
    const double ratio = throughput_a / base_a;
    std::printf("\npreset A throughput vs baseline: %.0f / %.0f = %.2fx\n",
                throughput_a, base_a, ratio);
    report.Add("baseline_ratio_a", ratio, "x");
    report.RequireAtScale(ratio >= 0.8, 1.0,
                          "preset A regressed >20% against the committed "
                          "baseline");
  }

  report.AddRegistry();
  return report.ExitCode();
}
