// Figure 14 (right): incremental update time vs. number of edit
// operations on real-world-shaped data.
//
// Paper setup: the DBLP dataset (211MB, 11M nodes); update time is linear
// in the number of edit operations in the log.
//
// Scaled setup: a DBLP-like bibliography (default ~300k nodes,
// PQIDX_BENCH_SCALE multiplies), log sizes 1 .. 2000.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

int main() {
  const PqShape shape{3, 3};
  const int records = Scaled(30000);
  Rng rng(11);

  Tree doc = GenerateDblpLike(nullptr, &rng, records);
  PqGramIndex index = BuildIndex(doc, shape);
  PrintHeader("Figure 14 (right): update time vs number of edit operations");
  std::printf("DBLP-like document: %d nodes (root fanout %d), 3,3-grams\n\n",
              doc.size(), doc.fanout(doc.root()));
  std::printf("%10s %14s %16s\n", "edit ops", "update [s]", "s per 1k ops");

  for (int ops : {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}) {
    EditLog log;
    GenerateEditScript(&doc, &rng, ops, EditScriptOptions{}, &log);
    UpdateTimings timings;
    Status status = UpdateIndex(&index, doc, log, &timings);
    if (!status.ok()) {
      std::printf("update failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%10d %14.4f %16.4f\n", ops, timings.total_s,
                timings.total_s * 1000.0 / ops);
  }
  std::printf("\npaper shape: update time linear in the log size.\n");
  return 0;
}
