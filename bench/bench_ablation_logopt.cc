// Ablation: log preprocessing (the paper's Section 10 future work).
//
// Logs with redundancy -- rename chains, inserts that are deleted again --
// waste update work: every log entry costs one delta evaluation and one
// update-function pass. This bench generates logs with controlled
// redundancy (hot-spot editing on a small node population) and compares
// the incremental update time with and without the OptimizeLog
// preprocessing pass, verifying both produce the rebuilt index.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "edit/log_optimizer.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

namespace {

// Hot-spot editing: bursts of renames on the same node and insert/delete
// pairs, the redundancy patterns Section 10 proposes to eliminate. Mimics
// repeated saves of a document editor touching the same elements.
int GenerateRedundantScript(Tree* doc, Rng* rng, int target_ops,
                            EditLog* log) {
  std::vector<LabelId> alphabet;
  for (int i = 0; i < 6; ++i) {
    alphabet.push_back(doc->mutable_dict()->Intern("hot" + std::to_string(i)));
  }
  int ops = 0;
  while (ops < target_ops) {
    NodeId victim;
    do {
      victim = static_cast<NodeId>(rng->Uniform(1, doc->id_bound() - 1));
    } while (!doc->Contains(victim) || victim == doc->root());
    if (rng->Bernoulli(0.6)) {
      // A rename chain on one node.
      int chain = 2 + static_cast<int>(rng->NextBounded(4));
      for (int i = 0; i < chain && ops < target_ops; ++i) {
        LabelId next = alphabet[rng->NextBounded(alphabet.size())];
        if (next == doc->label(victim)) continue;
        if (ApplyAndLog(EditOperation::Rename(victim, next), doc, log).ok()) {
          ++ops;
        }
      }
    } else {
      // Insert a node, maybe rename it, then delete it again.
      NodeId fresh = doc->AllocateId();
      int k = static_cast<int>(rng->Uniform(0, doc->fanout(victim)));
      if (!ApplyAndLog(EditOperation::Insert(
                           fresh, alphabet[rng->NextBounded(alphabet.size())],
                           victim, k, 0),
                       doc, log)
               .ok()) {
        continue;
      }
      ++ops;
      if (rng->Bernoulli(0.5) && ops < target_ops) {
        LabelId next = alphabet[rng->NextBounded(alphabet.size())];
        if (next != doc->label(fresh) &&
            ApplyAndLog(EditOperation::Rename(fresh, next), doc, log).ok()) {
          ++ops;
        }
      }
      if (ops < target_ops &&
          ApplyAndLog(EditOperation::Delete(fresh), doc, log).ok()) {
        ++ops;
      }
    }
  }
  return ops;
}

}  // namespace

int main() {
  const PqShape shape{3, 3};
  const int records = Scaled(8000);

  PrintHeader("Ablation: log preprocessing (Section 10)");
  std::printf("%10s %12s %14s %16s %12s %10s\n", "log ops", "after opt",
              "update [s]", "opt+update [s]", "opt [s]", "speedup");

  {
    // Warm-up so first-touch costs do not pollute the smallest run.
    Rng rng(7);
    Tree doc = GenerateDblpLike(nullptr, &rng, records / 4);
    EditLog log;
    GenerateRedundantScript(&doc, &rng, 50, &log);
    OptimizeLog(&doc, log);
  }

  for (int ops : {100, 300, 1000, 3000}) {
    Rng rng(31 + ops);
    Tree doc = GenerateDblpLike(nullptr, &rng, records);
    PqGramIndex base = BuildIndex(doc, shape);

    EditLog log;
    GenerateRedundantScript(&doc, &rng, ops, &log);

    LogOptimizerStats stats;
    EditLog optimized;
    double optimize_s =
        TimeIt([&] { optimized = OptimizeLog(&doc, log, &stats); });

    PqGramIndex plain = base;
    UpdateTimings t_plain;
    Status s1 = UpdateIndex(&plain, doc, log, &t_plain);
    PqGramIndex preprocessed = base;
    UpdateTimings t_opt;
    Status s2 = UpdateIndex(&preprocessed, doc, optimized, &t_opt);
    if (!s1.ok() || !s2.ok() || !(plain == preprocessed)) {
      std::printf("FAILED: optimized log diverges\n");
      return 1;
    }

    double combined = optimize_s + t_opt.total_s;
    std::printf("%10d %12d %14.4f %16.4f %12.4f %9.2fx\n", log.size(),
                optimized.size(), t_plain.total_s, combined, optimize_s,
                combined > 0 ? t_plain.total_s / combined : 0.0);
  }
  std::printf("\nreading: preprocessing pays off once logs carry real "
              "redundancy; the optimized path never changes the result.\n");
  return 0;
}
