// Figure 13 (left): lookup efficiency with and without a precomputed
// index.
//
// Paper setup: three XML collections with a similar overall number of
// nodes (~50M) but different document counts (31 .. 1999); wall-clock time
// of an approximate lookup of one document, (a) against the persistent
// pq-gram index and (b) computing the indexes on the fly (the VLDB'05
// approach without persistence).
//
// Expected shape: the with-index lookup time is flat in the number of
// documents (the per-tree bags together have bounded size), while the
// on-the-fly lookup pays the full profile computation for every document
// and dominates.
//
// Scaled setup here: collections of XMark-like documents sharing a total
// node budget (default ~1.2M nodes; PQIDX_BENCH_SCALE multiplies), with
// document counts {32, 256, 2048}.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/distance.h"
#include "core/forest_index.h"
#include "core/inverted_index.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

int main() {
  const PqShape shape{3, 3};
  const int total_nodes = Scaled(1200000);
  const std::vector<int> doc_counts = {32, 256, 2048};

  PrintHeader("Figure 13 (left): approximate lookup wall-clock (seconds)");
  std::printf("total nodes per collection: ~%d, 3,3-grams; the inverted "
              "column is this library's postings accelerator (not in the "
              "paper)\n\n",
              total_nodes);
  std::printf("%10s %12s %16s %14s %18s %10s\n", "documents", "nodes/doc",
              "with index [s]", "inverted [s]", "on-the-fly [s]", "speedup");

  for (int docs : doc_counts) {
    Rng rng(500 + docs);
    auto dict = std::make_shared<LabelDict>();
    int per_doc = total_nodes / docs;
    std::vector<Tree> collection;
    collection.reserve(docs);
    for (int i = 0; i < docs; ++i) {
      collection.push_back(GenerateXmarkLike(dict, &rng, per_doc));
    }
    Tree query = GenerateXmarkLike(dict, &rng, per_doc);
    PqGramIndex query_index = BuildIndex(query, shape);

    // Precomputed persistent index.
    ForestIndex forest(shape);
    for (int i = 0; i < docs; ++i) {
      forest.AddTree(i, collection[i]);
    }
    size_t sink = 0;
    double with_index = TimeIt([&] {
      sink += forest.Lookup(query_index, 0.6).size();
      benchmark::DoNotOptimize(sink);
    });

    InvertedForestIndex inverted(forest);
    double with_inverted = TimeIt([&] {
      sink += inverted.Lookup(query_index, 0.6).size();
      benchmark::DoNotOptimize(sink);
    });

    // On-the-fly: profiles of all collection trees computed per lookup
    // (the expensive part per the paper's Section 9.1).
    double on_the_fly = TimeIt([&] {
      size_t hits = 0;
      for (const Tree& doc : collection) {
        if (PqGramDistance(query_index, BuildIndex(doc, shape)) <= 0.6) {
          ++hits;
        }
      }
      sink += hits;
      benchmark::DoNotOptimize(sink);
    });

    std::printf("%10d %12d %16.4f %14.4f %18.4f %9.1fx\n", docs, per_doc,
                with_index, with_inverted, on_the_fly,
                with_index > 0 ? on_the_fly / with_index : 0.0);
  }
  std::printf("\npaper shape: with-index lookup flat across collections; "
              "on-the-fly dominated by index construction.\n");
  return 0;
}
