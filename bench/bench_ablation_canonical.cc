// Ablation: ordered vs canonical (unordered) pq-gram distance.
//
// Data-centric documents often permute record fields freely. This bench
// measures how the ordered distance and the canonical-order distance
// (core/canonical.h) react to (a) pure sibling shuffles -- noise for
// unordered data -- and (b) real edits, plus the cost of building each
// index.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/canonical.h"
#include "core/distance.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

namespace {

// Copy of `tree` with every child list randomly permuted.
Tree PermutedCopy(const Tree& tree, Rng* rng) {
  Tree copy(tree.dict_ptr());
  copy.CreateRoot(tree.label(tree.root()));
  std::vector<std::pair<NodeId, NodeId>> stack{{tree.root(), copy.root()}};
  while (!stack.empty()) {
    auto [src, dst] = stack.back();
    stack.pop_back();
    auto kids = tree.children(src);
    std::vector<NodeId> order(kids.begin(), kids.end());
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng->NextBounded(i)]);
    }
    for (NodeId c : order) {
      stack.push_back({c, copy.AddChild(dst, tree.label(c))});
    }
  }
  return copy;
}

}  // namespace

int main() {
  const PqShape shape{3, 3};
  const int records = Scaled(2000);
  Rng rng(17);

  Tree doc = GenerateDblpLike(nullptr, &rng, records);
  std::printf("\n=== Ablation: ordered vs canonical pq-grams ===\n");
  std::printf("DBLP-like document, %d nodes, 3,3-grams\n\n", doc.size());

  PqGramIndex ordered(shape), canonical(shape);
  double ordered_build =
      TimeIt([&] { ordered = BuildIndex(doc, shape); });
  double canonical_build =
      TimeIt([&] { canonical = BuildCanonicalIndex(doc, shape); });
  std::printf("index build: ordered %.4fs, canonical %.4fs (%.1fx for the "
              "sibling sort)\n\n",
              ordered_build, canonical_build,
              ordered_build > 0 ? canonical_build / ordered_build : 0.0);

  std::printf("%26s %12s %14s\n", "perturbation", "ordered", "canonical");
  // (a) pure sibling shuffles.
  {
    double ord = 0, can = 0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      Tree shuffled = PermutedCopy(doc, &rng);
      ord += PqGramDistance(doc, shuffled, shape);
      can += CanonicalPqGramDistance(doc, shuffled, shape);
    }
    std::printf("%26s %12.4f %14.4f\n", "sibling shuffle only", ord / trials,
                can / trials);
  }
  // (b) real edits at increasing volume.
  for (int ops : {10, 100, 1000}) {
    Tree edited = doc.Clone();
    EditLog log;
    GenerateEditScript(&edited, &rng, ops, EditScriptOptions{}, &log);
    std::printf("%21d ops %12.4f %14.4f\n", ops,
                PqGramDistance(doc, edited, shape),
                CanonicalPqGramDistance(doc, edited, shape));
  }
  // (c) shuffle + edits: the unordered use case.
  {
    Tree edited = doc.Clone();
    EditLog log;
    GenerateEditScript(&edited, &rng, 100, EditScriptOptions{}, &log);
    Tree shuffled = PermutedCopy(edited, &rng);
    std::printf("%26s %12.4f %14.4f\n", "shuffle + 100 ops",
                PqGramDistance(doc, shuffled, shape),
                CanonicalPqGramDistance(doc, shuffled, shape));
  }
  std::printf("\nreading: the canonical distance ignores order noise "
              "entirely while tracking real edits like the ordered one.\n");
  return 0;
}
