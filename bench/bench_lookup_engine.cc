// Lookup engine benchmark: the compiled read-optimized snapshot
// (core/lookup_engine.h) against the maintainable structures it is built
// from -- the scanning ForestIndex and the inverted-postings
// InvertedForestIndex -- across forest sizes, tau selectivities, and
// scoring thread counts.
//
// Expected shape: the scan grows linearly with the forest; the inverted
// index only touches overlapping postings; the engine beats both through
// dense arenas plus the tau-derived count filter, and its parallel mode
// splits shards across a pool. For selective tau at the 10k-tree point
// the engine should clear 5x over the scan. TopK rides the adaptive
// bound instead of a fixed tau.
//
// The gate (the query-path PR's acceptance bar): the dispatched SIMD
// kernel plus a warm epoch-keyed result cache must clear 3x over the
// forced-scalar, uncached engine on the 10k-tree tau-sweep, with
// bit-identical results. Enforced (exit nonzero) at full scale; waived
// when PQIDX_BENCH_SCALE shrinks the forest, where fixed per-query
// costs dominate and the bar is not meaningful.
//
// Run:  build/bench/bench_lookup_engine [--json[=PATH]]
// PQIDX_BENCH_SCALE scales forest sizes; results also land in
// BENCH_lookup_engine.json with --json for CI artifact upload
// (reference run: bench/baselines/BENCH_LOOKUP.json).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "core/forest_index.h"
#include "core/inverted_index.h"
#include "core/lookup_engine.h"
#include "core/query_cache.h"
#include "core/simd_intersect.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

namespace {

constexpr int kQueries = 8;

// Times `queries` lookups through `fn` and folds the hit count into a
// sink so nothing is optimized away. Returns seconds for the whole batch.
template <typename Fn>
double TimeQueries(const std::vector<PqGramIndex>& queries, size_t* sink,
                   Fn&& fn) {
  return TimeIt([&] {
    for (const PqGramIndex& query : queries) {
      *sink += fn(query);
      benchmark::DoNotOptimize(*sink);
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("lookup_engine", argc, argv);
  const PqShape shape{2, 3};
  const int nodes_per_doc = 100;
  const std::vector<int> forest_sizes = {Scaled(1000), Scaled(10000)};
  const std::vector<double> taus = {0.2, 0.4, 0.6, 1.0};

  PrintHeader("Lookup engine: scan vs inverted vs compiled snapshot");
  std::printf("XMark-like docs of ~%d nodes, %d queries per cell, "
              "(2,3)-grams\n\n",
              nodes_per_doc, kQueries);

  size_t sink = 0;
  for (int n : forest_sizes) {
    Rng rng(900 + n);
    auto dict = std::make_shared<LabelDict>();
    ForestIndex forest(shape);
    for (TreeId id = 0; id < n; ++id) {
      forest.AddTree(id, GenerateXmarkLike(dict, &rng, nodes_per_doc));
    }
    InvertedForestIndex inverted(forest);
    std::vector<PqGramIndex> queries;
    for (int i = 0; i < kQueries; ++i) {
      queries.push_back(
          BuildIndex(GenerateXmarkLike(dict, &rng, nodes_per_doc), shape));
    }

    // Snapshot compilation cost (what pqidxd pays once per group commit).
    std::shared_ptr<const LookupEngine> engine;
    const double build_s =
        TimeIt([&] { engine = LookupEngine::Build(inverted, 16); });
    std::printf("forest %6d: engine build %.4fs (%lld posting entries)\n",
                n, build_s,
                static_cast<long long>(engine->posting_entries()));
    report.Add("build_s_n" + std::to_string(n), build_s, "s");

    ThreadPool pool4(4);
    ThreadPool pool8(8);
    std::printf("%6s %10s %10s %10s %10s %10s %9s %9s\n", "tau", "scan [s]",
                "inv [s]", "eng1 [s]", "eng4 [s]", "eng8 [s]", "vs scan",
                "pruned%");
    for (double tau : taus) {
      const double scan_s = TimeQueries(queries, &sink, [&](const auto& q) {
        return forest.Lookup(q, tau).size();
      });
      const double inv_s = TimeQueries(queries, &sink, [&](const auto& q) {
        return inverted.Lookup(q, tau).size();
      });
      const double eng1_s = TimeQueries(queries, &sink, [&](const auto& q) {
        return engine->Lookup(q, tau).size();
      });
      const double eng4_s = TimeQueries(queries, &sink, [&](const auto& q) {
        return engine->Lookup(q, tau, &pool4).size();
      });
      const double eng8_s = TimeQueries(queries, &sink, [&](const auto& q) {
        return engine->Lookup(q, tau, &pool8).size();
      });

      LookupEngineStats stats;
      size_t engine_hits = 0, scan_hits = 0;
      for (const PqGramIndex& query : queries) {
        engine_hits += engine->Lookup(query, tau, nullptr, &stats).size();
        scan_hits += forest.Lookup(query, tau).size();
      }
      if (engine_hits != scan_hits) {
        std::printf("RESULT MISMATCH: engine %zu vs scan %zu at tau %.2f\n",
                    engine_hits, scan_hits, tau);
        return 1;
      }
      const double pruned_pct =
          stats.candidates > 0
              ? 100.0 * static_cast<double>(stats.pruned) /
                    static_cast<double>(stats.candidates)
              : 0.0;
      std::printf("%6.2f %10.4f %10.4f %10.4f %10.4f %10.4f %8.1fx %8.1f\n",
                  tau, scan_s, inv_s, eng1_s, eng4_s, eng8_s,
                  eng1_s > 0 ? scan_s / eng1_s : 0.0, pruned_pct);

      char cell_buf[48];
      std::snprintf(cell_buf, sizeof(cell_buf), "_n%d_tau%.2f", n, tau);
      const std::string cell = cell_buf;
      report.Add("scan_s" + cell, scan_s, "s");
      report.Add("inverted_s" + cell, inv_s, "s");
      report.Add("engine_seq_s" + cell, eng1_s, "s");
      report.Add("engine_t4_s" + cell, eng4_s, "s");
      report.Add("engine_t8_s" + cell, eng8_s, "s");
      report.Add("engine_speedup_vs_scan" + cell,
                 eng1_s > 0 ? scan_s / eng1_s : 0.0, "x");
      report.Add("pruned_pct" + cell, pruned_pct, "%");
    }

    // TopK: the adaptive bound against the forest's full-sort TopK.
    const int k = 10;
    const double topk_scan_s = TimeQueries(
        queries, &sink, [&](const auto& q) { return forest.TopK(q, k).size(); });
    const double topk_eng_s = TimeQueries(
        queries, &sink, [&](const auto& q) { return engine->TopK(q, k).size(); });
    std::printf("top-%d: scan %.4fs, engine %.4fs (%.1fx)\n\n", k,
                topk_scan_s, topk_eng_s,
                topk_eng_s > 0 ? topk_scan_s / topk_eng_s : 0.0);
    report.Add("topk_scan_s_n" + std::to_string(n), topk_scan_s, "s");
    report.Add("topk_engine_s_n" + std::to_string(n), topk_eng_s, "s");

    // --- query-path gate: SIMD + warm cache vs scalar, uncached -------
    // The full tau-sweep through the same snapshot, twice: once under
    // the forced-scalar kernel with no cache (the engine's read path
    // before vectorization), once under the dispatched native kernel
    // with a primed epoch-keyed result cache (how a server answers a
    // repeated query). Results must be bit-identical; at full scale the
    // speedup must clear the 3x bar.
    if (n == forest_sizes.back()) {
      const SimdKernel native = ActiveSimdKernel();
      std::printf("query-path gate (native kernel: %s)\n",
                  SimdKernelName(native));
      report.AddRawSection(
          "kernel", "\"" + std::string(SimdKernelName(native)) + "\"");

      SetSimdKernelForTesting(SimdKernel::kScalar);
      std::vector<std::vector<LookupResult>> want;
      double scalar_s = 0;
      for (double tau : taus) {
        scalar_s += TimeQueries(queries, &sink, [&](const auto& q) {
          return engine->Lookup(q, tau).size();
        });
        for (const PqGramIndex& query : queries) {
          want.push_back(engine->Lookup(query, tau));
        }
      }

      SetSimdKernelForTesting(native);
      QueryCache cache(QueryCache::Options{});
      for (double tau : taus) {  // prime every (query, tau) key
        for (const PqGramIndex& query : queries) {
          (void)engine->Lookup(query, tau, nullptr, nullptr, &cache);
        }
      }
      double warm_s = 0;
      size_t cell = 0;
      for (double tau : taus) {
        warm_s += TimeQueries(queries, &sink, [&](const auto& q) {
          return engine->Lookup(q, tau, nullptr, nullptr, &cache).size();
        });
        for (const PqGramIndex& query : queries) {
          const std::vector<LookupResult> got =
              engine->Lookup(query, tau, nullptr, nullptr, &cache);
          const std::vector<LookupResult>& ref = want[cell++];
          bool same = got.size() == ref.size();
          for (size_t i = 0; same && i < got.size(); ++i) {
            same = got[i].tree_id == ref[i].tree_id &&
                   got[i].distance == ref[i].distance;
          }
          if (!same) {
            std::printf("RESULT MISMATCH: SIMD+cache diverges from the "
                        "scalar path at tau %.2f\n", tau);
            return 1;
          }
        }
      }

      const double speedup = warm_s > 0 ? scalar_s / warm_s : 0.0;
      const bool enforce = Scale() >= 1.0;
      std::printf("  scalar uncached sweep %.4fs, SIMD warm-cache sweep "
                  "%.4fs: %.1fx%s\n",
                  scalar_s, warm_s, speedup,
                  enforce ? "" : "  (gate waived at reduced scale)");
      std::printf("  cache: %lld hits, %lld misses, %lld entries, "
                  "%lld bytes\n",
                  static_cast<long long>(cache.hits()),
                  static_cast<long long>(cache.misses()),
                  static_cast<long long>(cache.entries()),
                  static_cast<long long>(cache.bytes()));
      report.Add("gate_scalar_uncached_s", scalar_s, "s");
      report.Add("gate_simd_warm_cache_s", warm_s, "s");
      report.Add("query_path_speedup", speedup, "x");
      report.Add("gate_cache_hits", static_cast<double>(cache.hits()));
      report.Add("gate_cache_bytes", static_cast<double>(cache.bytes()),
                 "B");
      if (enforce && speedup < 3.0) {
        report.Write();
        std::fprintf(stderr,
                     "GATE FAILED: query-path speedup %.1fx below the 3x "
                     "bar\n", speedup);
        return 1;
      }
    }
  }

  std::printf("expected shape: scan linear in forest size; engine ahead of "
              "both maintainable structures, widening for selective tau.\n");
  // The registry accumulated lookup_engine.* cells (builds, queries,
  // candidate counts, latency histograms) across every run above; embed
  // it so the BENCH json carries the full observability picture.
  report.AddRawSection("registry", Metrics::Default().Snapshot().ToJson());
  return report.Write() ? 0 : 1;
}
