// Microbenchmarks (google-benchmark) for the storage substrate: pager
// commit costs, linear-hash point operations, persistent-index updates,
// and streaming vs. materializing XML indexing.

#include <benchmark/benchmark.h>

#include <string>

#include "common/random.h"
#include "core/pqgram_index.h"
#include "core/streaming.h"
#include "edit/edit_script.h"
#include "storage/linear_hash.h"
#include "storage/pager.h"
#include "storage/persistent_forest_index.h"
#include "tree/generators.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace pqidx {
namespace {

std::string BenchPath(const std::string& name) {
  return "/tmp/pqidx_bench_" + name;
}

void BM_PagerCommitDirtyPages(benchmark::State& state) {
  Pager pager(1024);
  PQIDX_CHECK(pager.Open(BenchPath("pager.db"), true).ok());
  const int pages = static_cast<int>(state.range(0));
  for (int i = 0; i < pages; ++i) PQIDX_CHECK(pager.AllocatePage().ok());
  PQIDX_CHECK(pager.Commit().ok());
  Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < pages; ++i) {
      uint8_t* page = pager.MutablePage(static_cast<PageId>(i)).value();
      page[rng.NextBounded(kPageSize)] = static_cast<uint8_t>(rng.Next());
    }
    benchmark::DoNotOptimize(pager.Commit().ok());
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_PagerCommitDirtyPages)->Arg(1)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_LinearHashGet(benchmark::State& state) {
  Pager pager(4096);
  PQIDX_CHECK(pager.Open(BenchPath("lh_get.db"), true).ok());
  LinearHashTable table(&pager);
  PQIDX_CHECK(table.Create(pager.AllocatePage().value()).ok());
  Rng rng(2);
  const int64_t entries = state.range(0);
  for (int64_t i = 0; i < entries; ++i) {
    PQIDX_CHECK(table.AddDelta(1, rng.Next(), 1).ok());
  }
  Rng probe(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Get(1, probe.Next()).value());
  }
}
BENCHMARK(BM_LinearHashGet)->Range(1 << 10, 1 << 18);

void BM_LinearHashInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Pager pager(4096);
    PQIDX_CHECK(pager.Open(BenchPath("lh_ins.db"), true).ok());
    LinearHashTable table(&pager);
    PQIDX_CHECK(table.Create(pager.AllocatePage().value()).ok());
    Rng rng(4);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      PQIDX_CHECK(table.AddDelta(1, rng.Next(), 1).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinearHashInsert)->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_PersistentIndexApplyLog(benchmark::State& state) {
  const PqShape shape{3, 3};
  Rng rng(5);
  Tree doc = GenerateDblpLike(nullptr, &rng,
                              static_cast<int>(state.range(0)));
  auto store = PersistentForestIndex::Create(BenchPath("pfi.db"), shape);
  PQIDX_CHECK(store.ok());
  PQIDX_CHECK((*store)->AddTree(1, doc).ok());
  for (auto _ : state) {
    state.PauseTiming();
    EditLog log;
    GenerateEditScript(&doc, &rng, 50, EditScriptOptions{}, &log);
    state.ResumeTiming();
    PQIDX_CHECK((*store)->ApplyLog(1, doc, log).ok());
  }
  state.SetLabel("50 ops per iteration");
}
BENCHMARK(BM_PersistentIndexApplyLog)->Arg(2000)->Arg(16000)
    ->Unit(benchmark::kMillisecond);

void BM_IndexXmlMaterialized(benchmark::State& state) {
  Rng rng(6);
  Tree doc = GenerateXmarkLike(nullptr, &rng,
                               static_cast<int>(state.range(0)));
  std::string xml = WriteXml(doc);
  const PqShape shape{3, 3};
  for (auto _ : state) {
    StatusOr<Tree> parsed = ParseXml(xml);
    PQIDX_CHECK(parsed.ok());
    benchmark::DoNotOptimize(BuildIndex(*parsed, shape));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_IndexXmlMaterialized)->Range(1 << 12, 1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_IndexXmlStreaming(benchmark::State& state) {
  Rng rng(6);
  Tree doc = GenerateXmarkLike(nullptr, &rng,
                               static_cast<int>(state.range(0)));
  std::string xml = WriteXml(doc);
  const PqShape shape{3, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildIndexFromXml(xml, shape).value());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_IndexXmlStreaming)->Range(1 << 12, 1 << 16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pqidx

BENCHMARK_MAIN();
