// Ablation: the effect of the p and q parameters.
//
// The paper fixes 3,3-grams for most experiments and uses 1,2-grams for
// the size comparison, without studying the parameter space. This bench
// sweeps (p, q) and reports, per shape:
//   * profile size and build time (cost),
//   * index size (space),
//   * the rank correlation between the pq-gram distance and the exact
//     Zhang-Shasha tree edit distance over a set of perturbed document
//     pairs (quality: does the approximation order documents like the
//     real distance does?).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/distance.h"
#include "core/pqgram_index.h"
#include "core/profile.h"
#include "edit/edit_script.h"
#include "ted/zhang_shasha.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

namespace {

// Spearman rank correlation between two equally long vectors.
double SpearmanRank(std::vector<double> a, std::vector<double> b) {
  auto ranks = [](std::vector<double>& v) {
    std::vector<int> order(v.size());
    for (size_t i = 0; i < v.size(); ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(),
              [&](int x, int y) { return v[x] < v[y]; });
    std::vector<double> rank(v.size());
    for (size_t i = 0; i < order.size(); ++i) rank[order[i]] = i;
    v = rank;
  };
  ranks(a);
  ranks(b);
  double ma = 0, mb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= a.size();
  mb /= b.size();
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / std::sqrt(va * vb);
}

}  // namespace

int main() {
  const int doc_nodes = Scaled(4000);
  const int pairs = 60;

  // A pool of (T, T') pairs at varying edit distances.
  Rng rng(21);
  std::vector<std::pair<Tree, Tree>> pool;
  std::vector<double> ted;
  for (int i = 0; i < pairs; ++i) {
    Tree base = GenerateRandomTree(
        nullptr, &rng, {.num_nodes = 120, .alphabet_size = 12});
    Tree edited = base.Clone();
    EditLog log;
    GenerateEditScript(&edited, &rng,
                       1 + static_cast<int>(rng.NextBounded(40)),
                       EditScriptOptions{}, &log);
    ted.push_back(TreeEditDistance(base, edited));
    pool.emplace_back(std::move(base), std::move(edited));
  }

  Rng doc_rng(22);
  Tree doc = GenerateXmarkLike(nullptr, &doc_rng, doc_nodes);

  PrintHeader("Ablation: pq-gram shape (p, q)");
  std::printf("cost columns on a %d-node XMark-like document; quality = "
              "Spearman rank corr. with Zhang-Shasha TED over %d pairs\n\n",
              doc.size(), pairs);
  std::printf("%6s %14s %12s %14s %14s\n", "(p,q)", "profile size",
              "build [s]", "index bytes", "TED rank corr");

  for (int p = 1; p <= 4; ++p) {
    for (int q = 1; q <= 4; ++q) {
      const PqShape shape{p, q};
      PqGramIndex index(shape);
      double build_s = TimeIt([&] { index = BuildIndex(doc, shape); });

      std::vector<double> pq_dist;
      pq_dist.reserve(pool.size());
      for (const auto& [a, b] : pool) {
        pq_dist.push_back(PqGramDistance(a, b, shape));
      }
      std::printf("%6s %14lld %12.4f %14lld %14.3f\n",
                  ("(" + std::to_string(p) + "," + std::to_string(q) + ")")
                      .c_str(),
                  static_cast<long long>(ProfileSize(doc, shape)), build_s,
                  static_cast<long long>(index.SerializedBytes()),
                  SpearmanRank(pq_dist, ted));
    }
  }
  std::printf("\nreading: larger p,q cost more and react more strongly to "
              "structural change; the paper's 3,3 balances cost and "
              "sensitivity.\n");
  return 0;
}
