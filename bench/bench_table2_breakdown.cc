// Table 2: breakdown of the index update time.
//
// Paper setup: DBLP; for |L| in {1, 10, 100, 1000}, the time spent in each
// phase of Algorithm 1 -- computing Delta+, lambda(Delta+), transforming
// to Delta-, lambda(Delta-), and applying I0 \ I- u I+ -- plus the total.
//
// Paper shape: Delta+ and Delta- roughly linear in |L|; the lambda
// conversions negligible; the final index update sublinear in |L|.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "edit/edit_script.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

int main() {
  const PqShape shape{3, 3};
  const int records = Scaled(30000);
  Rng rng(13);

  Tree doc = GenerateDblpLike(nullptr, &rng, records);
  PqGramIndex index = BuildIndex(doc, shape);

  PrintHeader("Table 2: breakdown of the index update time (seconds)");
  std::printf("DBLP-like document: %d nodes, 3,3-grams\n\n", doc.size());

  const std::vector<int> log_sizes = {1, 10, 100, 1000};
  std::vector<UpdateTimings> results;
  for (int ops : log_sizes) {
    EditLog log;
    GenerateEditScript(&doc, &rng, ops, EditScriptOptions{}, &log);
    UpdateTimings timings;
    Status status = UpdateIndex(&index, doc, log, &timings);
    if (!status.ok()) {
      std::printf("update failed: %s\n", status.ToString().c_str());
      return 1;
    }
    results.push_back(timings);
  }

  std::printf("%-22s", "Action");
  for (int ops : log_sizes) std::printf(" %10d", ops);
  std::printf("\n");
  auto row = [&](const char* name, auto getter) {
    std::printf("%-22s", name);
    for (const UpdateTimings& t : results) std::printf(" %9.4fs", getter(t));
    std::printf("\n");
  };
  row("Delta+", [](const UpdateTimings& t) { return t.delta_plus_s; });
  row("I+ = lambda(Delta+)",
      [](const UpdateTimings& t) { return t.lambda_plus_s; });
  row("Delta-", [](const UpdateTimings& t) { return t.delta_minus_s; });
  row("I- = lambda(Delta-)",
      [](const UpdateTimings& t) { return t.lambda_minus_s; });
  row("I0 \\ I- u I+", [](const UpdateTimings& t) { return t.apply_s; });
  row("total", [](const UpdateTimings& t) { return t.total_s; });

  std::printf("\n%-22s", "|Delta+| pq-grams");
  for (const UpdateTimings& t : results) {
    std::printf(" %10lld", static_cast<long long>(t.delta_plus_pqgrams));
  }
  std::printf("\n%-22s", "|Delta-| pq-grams");
  for (const UpdateTimings& t : results) {
    std::printf(" %10lld", static_cast<long long>(t.delta_minus_pqgrams));
  }
  std::printf("\n\npaper shape: Delta+/Delta- approximately linear in |L|; "
              "lambda() negligible; final update sublinear.\n");
  return 0;
}
