// Ablation: approximate join evaluation strategies.
//
// The paper's Section 2 frames the pq-gram index in the context of
// approximate XML joins (Guha et al.). This bench joins two collections
// of documents -- a fraction of the right side are noisy copies of left
// documents -- and compares the nested-loop evaluation (all bag pairs)
// against the inverted-postings evaluation (only pairs sharing at least
// one pq-gram). Result sets are identical; the gap grows with collection
// size since most pairs share nothing.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/join.h"
#include "edit/edit_script.h"
#include "tree/generators.h"

using namespace pqidx;
using namespace pqidx::bench;

int main() {
  const PqShape shape{3, 3};
  const int nodes_per_doc = 200;
  const double tau = 0.35;

  PrintHeader("Ablation: approximate join, nested loop vs inverted index");
  std::printf("XMark-like documents (~%d nodes), tau = %.2f, 20%% of the "
              "right side are perturbed copies\n\n",
              nodes_per_doc, tau);
  std::printf("%8s %8s %8s %16s %14s %10s\n", "left", "right", "pairs",
              "nested loop [s]", "inverted [s]", "speedup");

  for (int docs : {32, 64, 128, Scaled(256)}) {
    Rng rng(docs);
    auto dict = std::make_shared<LabelDict>();
    ForestIndex left(shape), right(shape);
    std::vector<Tree> left_docs;
    for (TreeId id = 0; id < docs; ++id) {
      left_docs.push_back(GenerateXmarkLike(dict, &rng, nodes_per_doc));
      left.AddTree(id, left_docs.back());
    }
    for (TreeId id = 0; id < docs; ++id) {
      if (id % 5 == 0) {
        Tree twin = left_docs[id].Clone();
        EditLog log;
        GenerateEditScript(&twin, &rng, 5, EditScriptOptions{}, &log);
        right.AddTree(1000 + id, twin);
      } else {
        right.AddTree(1000 + id, GenerateXmarkLike(dict, &rng,
                                                   nodes_per_doc));
      }
    }

    std::vector<JoinResult> nested, indexed;
    double nested_s =
        TimeIt([&] { nested = NestedLoopJoin(left, right, tau); });
    InvertedForestIndex inverted(right);
    double inverted_s =
        TimeIt([&] { indexed = IndexJoin(left, inverted, tau); });
    if (nested.size() != indexed.size()) {
      std::printf("RESULT MISMATCH\n");
      return 1;
    }
    std::printf("%8d %8d %8zu %16.4f %14.4f %9.1fx\n", docs, docs,
                nested.size(), nested_s, inverted_s,
                inverted_s > 0 ? nested_s / inverted_s : 0.0);
  }
  std::printf("\nreading: identical result sets; the inverted evaluation "
              "scales with the matching pairs, not with all pairs.\n");
  return 0;
}
