#!/usr/bin/env bash
# End-to-end replication smoke over real loopback TCP: a leader pqidxd,
# a --follow warm standby, and the acceptance check that both answer a
# lookup bit-identically. CI runs this in the plain, ASan, and TSan
# jobs; locally:
#
#   tools/replication_smoke.sh [path-to-pqidx]
#
# Ports can be overridden with LEADER_PORT / FOLLOWER_PORT.
set -eu

PQIDX=${1:-./build/tools/pqidx}
LEADER_PORT=${LEADER_PORT:-17391}
FOLLOWER_PORT=${FOLLOWER_PORT:-17392}
DIR=$(mktemp -d)
LEADER_PID=""
FOLLOWER_PID=""
cleanup() {
  [ -n "$FOLLOWER_PID" ] && kill "$FOLLOWER_PID" 2>/dev/null
  [ -n "$LEADER_PID" ] && kill "$LEADER_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$DIR"
  return 0
}
trap cleanup EXIT

cat > "$DIR/a.xml" <<'XML'
<library><book><title>algorithms</title><year>2006</year></book></library>
XML
cat > "$DIR/b.xml" <<'XML'
<library><journal><title>vldb</title><volume>32</volume></journal></library>
XML
cat > "$DIR/query.xml" <<'XML'
<library><book><title>algorithm</title><year>2006</year></book></library>
XML

# Seed a paged store through the document-store CLI, then serve its
# index.db as the leader; the standby bootstraps over TCP from nothing.
"$PQIDX" store create "$DIR/db" -p 2 -q 3
"$PQIDX" store ingest "$DIR/db" "$DIR/a.xml" "$DIR/b.xml"

"$PQIDX" serve "$DIR/db/index.db" --port "$LEADER_PORT" &
LEADER_PID=$!
"$PQIDX" serve "$DIR/standby.idx" --follow "127.0.0.1:$LEADER_PORT" \
  --port "$FOLLOWER_PORT" &
FOLLOWER_PID=$!

# pqidx lookup host:port retries the connect, so this also waits for
# the leader to come up.
"$PQIDX" lookup "127.0.0.1:$LEADER_PORT" "$DIR/query.xml" 0.6 \
  > "$DIR/leader.out"
grep -q "tree " "$DIR/leader.out"

# The standby converges asynchronously: poll until its lookup answer is
# byte-identical to the leader's.
for _ in $(seq 1 120); do
  if "$PQIDX" lookup "127.0.0.1:$FOLLOWER_PORT" "$DIR/query.xml" 0.6 \
      > "$DIR/follower.out" 2>/dev/null &&
      cmp -s "$DIR/leader.out" "$DIR/follower.out"; then
    echo "replication smoke: follower converged, lookups identical:"
    cat "$DIR/follower.out"
    "$PQIDX" stats "127.0.0.1:$FOLLOWER_PORT" | grep replication || true
    exit 0
  fi
  sleep 0.5
done
echo "replication smoke: follower never converged" >&2
exit 1
