#!/usr/bin/env bash
# End-to-end replication smoke over real loopback TCP: a leader pqidxd,
# a --follow warm standby, and the acceptance check that both answer a
# lookup bit-identically. Scenario 1 serves a legacy single-file store;
# scenario 2 serves a 4-shard leader seeded over the wire, with the
# standby keeping a different shard count (2) to prove replication is
# layout-agnostic. CI runs this in the plain, ASan, and TSan jobs;
# locally:
#
#   tools/replication_smoke.sh [path-to-pqidx]
#
# Ports can be overridden with LEADER_PORT / FOLLOWER_PORT.
set -eu

PQIDX=${1:-./build/tools/pqidx}
LEADER_PORT=${LEADER_PORT:-17391}
FOLLOWER_PORT=${FOLLOWER_PORT:-17392}
SHARDED_LEADER_PORT=${SHARDED_LEADER_PORT:-17393}
SHARDED_FOLLOWER_PORT=${SHARDED_FOLLOWER_PORT:-17394}
DIR=$(mktemp -d)
LEADER_PID=""
FOLLOWER_PID=""
cleanup() {
  [ -n "$FOLLOWER_PID" ] && kill "$FOLLOWER_PID" 2>/dev/null
  [ -n "$LEADER_PID" ] && kill "$LEADER_PID" 2>/dev/null
  wait 2>/dev/null
  rm -rf "$DIR"
  return 0
}
trap cleanup EXIT

cat > "$DIR/a.xml" <<'XML'
<library><book><title>algorithms</title><year>2006</year></book></library>
XML
cat > "$DIR/b.xml" <<'XML'
<library><journal><title>vldb</title><volume>32</volume></journal></library>
XML
cat > "$DIR/query.xml" <<'XML'
<library><book><title>algorithm</title><year>2006</year></book></library>
XML

# Seed a paged store through the document-store CLI, then serve its
# index.db as the leader; the standby bootstraps over TCP from nothing.
"$PQIDX" store create "$DIR/db" -p 2 -q 3
"$PQIDX" store ingest "$DIR/db" "$DIR/a.xml" "$DIR/b.xml"

"$PQIDX" serve "$DIR/db/index.db" --port "$LEADER_PORT" &
LEADER_PID=$!
"$PQIDX" serve "$DIR/standby.idx" --follow "127.0.0.1:$LEADER_PORT" \
  --port "$FOLLOWER_PORT" &
FOLLOWER_PID=$!

# pqidx lookup host:port retries the connect, so this also waits for
# the leader to come up.
"$PQIDX" lookup "127.0.0.1:$LEADER_PORT" "$DIR/query.xml" 0.6 \
  > "$DIR/leader.out"
grep -q "tree " "$DIR/leader.out"

# The standby converges asynchronously: poll until its lookup answer is
# byte-identical to the leader's.
converged=0
for _ in $(seq 1 120); do
  if "$PQIDX" lookup "127.0.0.1:$FOLLOWER_PORT" "$DIR/query.xml" 0.6 \
      > "$DIR/follower.out" 2>/dev/null &&
      cmp -s "$DIR/leader.out" "$DIR/follower.out"; then
    echo "replication smoke: follower converged, lookups identical:"
    cat "$DIR/follower.out"
    "$PQIDX" stats "127.0.0.1:$FOLLOWER_PORT" | grep replication || true
    converged=1
    break
  fi
  sleep 0.5
done
if [ "$converged" -ne 1 ]; then
  echo "replication smoke: follower never converged" >&2
  exit 1
fi
kill "$FOLLOWER_PID" 2>/dev/null; FOLLOWER_PID=""
kill "$LEADER_PID" 2>/dev/null; LEADER_PID=""
wait 2>/dev/null || true

# --- Scenario 2: sharded leader, differently-sharded standby ------------
# A fresh 4-shard leader seeded over the wire by the workload driver;
# the standby builds its own 2-shard store from the replication stream.
"$PQIDX" serve "$DIR/sharded.store" --store-shards 4 \
  --port "$SHARDED_LEADER_PORT" &
LEADER_PID=$!
"$PQIDX" workload "127.0.0.1:$SHARDED_LEADER_PORT" --preset B --no-oracle \
  --trees 48 --ops 30 --rounds 1 --clients 2 --seed 7
"$PQIDX" serve "$DIR/sharded_standby.store" --store-shards 2 \
  --follow "127.0.0.1:$SHARDED_LEADER_PORT" \
  --port "$SHARDED_FOLLOWER_PORT" &
FOLLOWER_PID=$!

# tau 1.0 covers the whole unit-normalized distance range, so the
# byte-identity check compares a full result list, not an empty one.
"$PQIDX" lookup "127.0.0.1:$SHARDED_LEADER_PORT" "$DIR/query.xml" 1.0 \
  > "$DIR/sharded_leader.out"
grep -q "tree " "$DIR/sharded_leader.out"

for _ in $(seq 1 120); do
  if "$PQIDX" lookup "127.0.0.1:$SHARDED_FOLLOWER_PORT" "$DIR/query.xml" 1.0 \
      > "$DIR/sharded_follower.out" 2>/dev/null &&
      cmp -s "$DIR/sharded_leader.out" "$DIR/sharded_follower.out"; then
    echo "replication smoke: sharded leader (4) -> standby (2) identical:"
    head -3 "$DIR/sharded_follower.out"
    exit 0
  fi
  sleep 0.5
done
echo "replication smoke: sharded follower never converged" >&2
exit 1
