// pqidx command-line tool: build, query, and incrementally maintain
// pq-gram indexes over XML documents.
//
//   pqidx build  <index-file> [-p P] [-q Q] <doc.xml>...
//       Parses the documents (tree ids are assigned in argument order,
//       starting at 0) and writes the forest index.
//
//   pqidx info   <index-file>
//       Prints per-tree and total index statistics.
//
//   pqidx lookup <index-file | host:port> <query.xml> [tau] [--topk K]
//       Approximate lookup: all indexed trees within pq-gram distance tau
//       (default 0.5) of the query document, most similar first. With
//       host:port, runs the lookup against a live pqidxd (a leader or a
//       --follow standby) instead of a snapshot file. --topk K asks for
//       the K most similar trees instead of a distance threshold (the
//       kTopK opcode when remote); tau is then ignored.
//
//   pqidx update <index-file> <tree-id> <old.xml> <new.xml>
//       Diffs the two versions (optimal root-preserving edit script),
//       replays the script to record the inverse log, and maintains the
//       index incrementally -- the tree is never re-indexed from scratch.
//
//   pqidx dist   <a.xml> <b.xml> [-p P] [-q Q] [--ted] [--canonical]
//       pq-gram distance between two documents; --ted adds the exact tree
//       edit distance (slow for large documents), --canonical adds the
//       sibling-order-invariant canonical distance.
//
//   pqidx topk   <index-file> <query.xml> <k>
//       The k most similar indexed trees.
//
//   pqidx diff   <old.xml> <new.xml>
//       Prints a minimal edit script transforming old into new.
//
//   pqidx stats  <doc.xml | host:port>
//       With a document: structural statistics and per-shape pq-gram
//       profile sizes. With host:port: fetches a live pqidxd metrics
//       snapshot (kStatsSnapshot) and prints the registry in text form.
//
//   pqidx join   <left-index> <right-index> [tau]
//       Approximate join: all pairs within pq-gram distance tau
//       (default 0.5). Use the same index file twice for a self-join.
//
//   pqidx serve <index-file> [-p P] [-q Q] [--port N] [-t THREADS]
//               [--lookup-threads N] [--stats-interval SECS]
//               [--commit-pipeline-depth D] [--full-rebuild-every N]
//               [--staging-threads N] [--replication-history N]
//               [--replication-max-queue N] [--follow HOST:PORT]
//               [--query-cache-mb N] [--query-cache-off]
//               [--store-shards N]
//       Serves a persistent forest index over the pqidxd wire protocol on
//       127.0.0.1 (an ephemeral port unless --port is given). Creates the
//       store with the given shape if nothing exists at the path yet:
//       --store-shards N > 1 creates a sharded store (a directory of N
//       independent page files committed as a group; docs/FORMATS.md),
//       N = 1 (the default) the classic single file. An existing store
//       keeps its layout; --store-shards is then ignored. With
//       --stats-interval, dumps the metrics registry to stdout every
//       SECS seconds. --commit-pipeline-depth D overlaps up to D group
//       commits (validation + delta staging of batch N+1 runs while batch
//       N is inside its WAL fsync); --staging-threads adds a pool that
//       parallelizes delta staging within each batch; lookup snapshots
//       are maintained incrementally (copy-on-write per shard), with a
//       full defragmenting rebuild every --full-rebuild-every publishes
//       (0 = never). Stop with SIGINT/SIGTERM; final service statistics
//       and the full registry are printed on exit. --query-cache-mb N
//       sizes the epoch-keyed query-result cache serving kLookup/kTopK
//       (default 32 MiB; hit/miss/evict/stale counters show up as
//       query_cache.* in `pqidx stats host:port`); --query-cache-off
//       disables it.
//
//       Any serving pqidxd is also a replication leader: followers
//       subscribe to its committed-batch stream. --replication-history N
//       bounds how many recent batches are kept for delta resume (an
//       older cursor forces a snapshot); --replication-max-queue N
//       disconnects a subscriber that falls N frames behind (it will
//       reconnect and resume by cursor).
//
//       --follow HOST:PORT runs a warm standby instead of a leader: it
//       subscribes to the pqidxd at HOST:PORT from its local store's
//       durable cursor (streaming only the missed batches; a full
//       snapshot only when the leader cannot delta-resume), applies the
//       streamed deltas to <index-file>, and serves read-only lookups
//       at the streamed epoch. The index shape comes from the leader;
//       -p/-q are ignored. docs/USAGE.md has a walkthrough.
//
//   pqidx store <subcommand> ...
//       Manage a durable document store (crash-safe paged index plus the
//       documents themselves):
//         store create <dir> [-p P] [-q Q]
//         store ingest <dir> <doc.xml>...
//         store commit <dir> <id> <new.xml>   (diff-driven incremental)
//         store lookup <dir> <query.xml> [tau]
//         store ls     <dir>
//         store verify <dir>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <unistd.h>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/canonical.h"
#include "core/distance.h"
#include "core/forest_index.h"
#include "core/join.h"
#include "core/incremental.h"
#include "core/parallel_build.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "edit/tree_diff.h"
#include "service/client.h"
#include "service/replication.h"
#include "service/retry.h"
#include "service/server.h"
#include "service/transport.h"
#include "storage/document_store.h"
#include "storage/index_store.h"
#include "storage/persistent_forest_index.h"
#include "storage/sharded_store.h"
#include "bench_util.h"
#include "ted/zhang_shasha.h"
#include "tree/stats.h"
#include "workload/driver.h"
#include "workload/workload.h"
#include "xml/xml_parser.h"

namespace pqidx {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pqidx build  <index-file> [-p P] [-q Q] [-t THREADS] "
               "<doc.xml>...\n"
               "  pqidx info   <index-file>\n"
               "  pqidx lookup <index-file | host:port> <query.xml> [tau] "
               "[--topk K]\n"
               "  pqidx update <index-file> <tree-id> <old.xml> <new.xml>\n"
               "  pqidx dist   <a.xml> <b.xml> [-p P] [-q Q] [--ted] "
               "[--canonical]\n"
               "  pqidx topk   <index-file> <query.xml> <k>\n"
               "  pqidx diff   <old.xml> <new.xml>\n"
               "  pqidx stats  <doc.xml | host:port>\n"
               "  pqidx join   <left-index> <right-index> [tau]\n"
               "  pqidx serve  <index-file> [-p P] [-q Q] [--port N] "
               "[-t THREADS] [--lookup-threads N] [--stats-interval SECS]\n"
               "               [--commit-pipeline-depth D] "
               "[--full-rebuild-every N] [--staging-threads N]\n"
               "               [--replication-history N] "
               "[--replication-max-queue N] [--follow HOST:PORT]\n"
               "               [--query-cache-mb N] [--query-cache-off] "
               "[--store-shards N]\n"
               "  pqidx store  create|ingest|commit|lookup|ls|verify ...\n"
               "  pqidx workload [host:port] [--preset A|B|C] [--seed N] "
               "[--clients N] [--ops N]\n"
               "               [--trees N] [--theta X] [--rounds N] "
               "[--burst-trees N] [--burst-depth D]\n"
               "               [--tcp] [--no-oracle] [--store-shards N]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "pqidx: %s\n", status.ToString().c_str());
  return 1;
}

// Consumes -p/-q flags from args (in place); returns the shape.
PqShape ParseShapeFlags(std::vector<std::string>* args) {
  PqShape shape{3, 3};
  std::vector<std::string> rest;
  for (size_t i = 0; i < args->size(); ++i) {
    if ((*args)[i] == "-p" && i + 1 < args->size()) {
      shape.p = std::atoi((*args)[++i].c_str());
    } else if ((*args)[i] == "-q" && i + 1 < args->size()) {
      shape.q = std::atoi((*args)[++i].c_str());
    } else {
      rest.push_back((*args)[i]);
    }
  }
  *args = rest;
  if (!shape.Valid()) {
    std::fprintf(stderr, "pqidx: p and q must be >= 1; using 3,3\n");
    shape = PqShape{3, 3};
  }
  return shape;
}

int CmdBuild(std::vector<std::string> args) {
  PqShape shape = ParseShapeFlags(&args);
  int threads = 1;
  std::vector<std::string> rest;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-t" && i + 1 < args.size()) {
      threads = std::atoi(args[++i].c_str());
    } else {
      rest.push_back(args[i]);
    }
  }
  args = std::move(rest);
  if (args.size() < 2 || threads < 1) return Usage();
  const std::string index_path = args[0];
  // Parse serially (XML parsing interns labels into the shared dict,
  // which is not thread-safe), then compute the per-tree profiles across
  // a pool -- profile computation dominates build cost (paper S9.1).
  auto dict = std::make_shared<LabelDict>();
  std::vector<Tree> trees;
  trees.reserve(args.size() - 1);
  for (size_t i = 1; i < args.size(); ++i) {
    StatusOr<Tree> tree = ParseXmlFile(args[i], dict);
    if (!tree.ok()) return Fail(tree.status());
    trees.push_back(std::move(*tree));
  }
  ThreadPool pool(threads);
  ForestIndex forest = BuildForestIndexParallel(trees, shape, &pool);
  for (size_t i = 1; i < args.size(); ++i) {
    TreeId id = static_cast<TreeId>(i - 1);
    std::printf("tree %-4d %-40s %d nodes, %lld pq-grams\n", id,
                args[i].c_str(), trees[id].size(),
                static_cast<long long>(forest.Find(id)->size()));
  }
  if (Status s = SaveForestIndex(forest, index_path); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %s (%d trees, %lld bytes, %d,%d-grams)\n",
              index_path.c_str(), forest.size(),
              static_cast<long long>(forest.SerializedBytes()), shape.p,
              shape.q);
  return 0;
}

int CmdInfo(std::vector<std::string> args) {
  if (args.size() != 1) return Usage();
  StatusOr<ForestIndex> forest = LoadForestIndex(args[0]);
  if (!forest.ok()) return Fail(forest.status());
  std::printf("%s: %d trees, %d,%d-grams, %lld bytes\n", args[0].c_str(),
              forest->size(), forest->shape().p, forest->shape().q,
              static_cast<long long>(forest->SerializedBytes()));
  for (TreeId id : forest->TreeIds()) {
    const PqGramIndex* index = forest->Find(id);
    std::printf("  tree %-4d %10lld pq-grams, %10lld distinct tuples\n", id,
                static_cast<long long>(index->size()),
                static_cast<long long>(index->distinct()));
  }
  return 0;
}

void PrintHits(const std::vector<LookupResult>& hits, double tau) {
  if (hits.empty()) {
    std::printf("no tree within distance %.3f\n", tau);
    return;
  }
  for (const LookupResult& hit : hits) {
    std::printf("tree %-4d dist %.4f\n", hit.tree_id, hit.distance);
  }
}

// `pqidx lookup host:port query.xml [tau] [--topk K]`: run the lookup
// (or, with --topk, the kTopK request) on a live pqidxd (a leader or a
// --follow standby) instead of a snapshot file. The query tree parses
// locally; only its pq-gram bag crosses the wire.
int CmdRemoteLookup(const std::string& endpoint, const std::string& query_path,
                    double tau, int topk) {
  size_t colon = endpoint.rfind(':');
  std::string host = endpoint.substr(0, colon);
  int port = std::atoi(endpoint.c_str() + colon + 1);
  if (host.empty() || port < 1 || port > 65535) {
    return Fail(InvalidArgumentError("expected host:port, got " + endpoint));
  }
  StatusOr<Tree> query = ParseXmlFile(query_path);
  if (!query.ok()) return Fail(query.status());
  BackoffPolicy policy;
  policy.max_attempts = 5;
  StatusOr<std::unique_ptr<Client>> client = Client::ConnectWithRetry(
      [&host, port]() { return TcpConnect(host, static_cast<uint16_t>(port)); },
      policy);
  if (!client.ok()) return Fail(client.status());
  if (topk >= 0) {
    StatusOr<std::vector<LookupResult>> hits = (*client)->TopK(*query, topk);
    if (!hits.ok()) return Fail(hits.status());
    for (const LookupResult& hit : *hits) {
      std::printf("tree %-4d dist %.4f\n", hit.tree_id, hit.distance);
    }
    return 0;
  }
  StatusOr<std::vector<LookupResult>> hits = (*client)->Lookup(*query, tau);
  if (!hits.ok()) return Fail(hits.status());
  PrintHits(*hits, tau);
  return 0;
}

int CmdLookup(std::vector<std::string> args) {
  int topk = -1;  // < 0: threshold lookup
  std::vector<std::string> rest;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--topk" && i + 1 < args.size()) {
      topk = std::atoi(args[++i].c_str());
      if (topk < 0) return Usage();
    } else {
      rest.push_back(args[i]);
    }
  }
  args = std::move(rest);
  if (args.size() < 2 || args.size() > 3) return Usage();
  double tau = args.size() == 3 ? std::atof(args[2].c_str()) : 0.5;
  // host:port targets a live server; anything else is an index file.
  if (args[0].find(':') != std::string::npos) {
    return CmdRemoteLookup(args[0], args[1], tau, topk);
  }
  StatusOr<ForestIndex> forest = LoadForestIndex(args[0]);
  if (!forest.ok()) return Fail(forest.status());
  StatusOr<Tree> query = ParseXmlFile(args[1]);
  if (!query.ok()) return Fail(query.status());
  if (topk >= 0) {
    for (const LookupResult& hit : forest->TopK(*query, topk)) {
      std::printf("tree %-4d dist %.4f\n", hit.tree_id, hit.distance);
    }
    return 0;
  }
  PrintHits(forest->Lookup(*query, tau), tau);
  return 0;
}

int CmdUpdate(std::vector<std::string> args) {
  if (args.size() != 4) return Usage();
  const std::string index_path = args[0];
  const TreeId id = static_cast<TreeId>(std::atoi(args[1].c_str()));
  StatusOr<ForestIndex> forest = LoadForestIndex(index_path);
  if (!forest.ok()) return Fail(forest.status());
  if (forest->Find(id) == nullptr) {
    return Fail(NotFoundError("no tree with id " + args[1] + " in index"));
  }
  auto dict = std::make_shared<LabelDict>();
  StatusOr<Tree> old_tree = ParseXmlFile(args[2], dict);
  if (!old_tree.ok()) return Fail(old_tree.status());
  StatusOr<Tree> new_tree = ParseXmlFile(args[3], dict);
  if (!new_tree.ok()) return Fail(new_tree.status());

  TreeDiff diff = ComputeEditScript(*old_tree, *new_tree);
  EditLog log;
  if (Status s = ApplyDiff(diff, &old_tree.value(), &log); !s.ok()) {
    return Fail(s);
  }
  UpdateTimings timings;
  // old_tree has been transformed into (an id-stable copy of) new_tree.
  Tree& tn = old_tree.value();
  PqGramIndex index = *forest->Find(id);
  if (Status s = UpdateIndex(&index, tn, log, &timings); !s.ok()) {
    return Fail(s);
  }
  forest->AddIndex(id, std::move(index));
  if (Status s = SaveForestIndex(*forest, index_path); !s.ok()) {
    return Fail(s);
  }
  std::printf("tree %d: %d edit operations reconstructed, index updated "
              "in %.4fs (Delta+ %lld, Delta- %lld)\n",
              id, diff.distance, timings.total_s,
              static_cast<long long>(timings.delta_plus_pqgrams),
              static_cast<long long>(timings.delta_minus_pqgrams));
  return 0;
}

int CmdDist(std::vector<std::string> args) {
  bool with_ted = false;
  bool with_canonical = false;
  std::vector<std::string> rest;
  for (const std::string& arg : args) {
    if (arg == "--ted") {
      with_ted = true;
    } else if (arg == "--canonical") {
      with_canonical = true;
    } else {
      rest.push_back(arg);
    }
  }
  PqShape shape = ParseShapeFlags(&rest);
  if (rest.size() != 2) return Usage();
  auto dict = std::make_shared<LabelDict>();
  StatusOr<Tree> a = ParseXmlFile(rest[0], dict);
  if (!a.ok()) return Fail(a.status());
  StatusOr<Tree> b = ParseXmlFile(rest[1], dict);
  if (!b.ok()) return Fail(b.status());
  std::printf("pq-gram distance (%d,%d): %.4f\n", shape.p, shape.q,
              PqGramDistance(*a, *b, shape));
  if (with_canonical) {
    std::printf("canonical (unordered):   %.4f\n",
                CanonicalPqGramDistance(*a, *b, shape));
  }
  if (with_ted) {
    std::printf("tree edit distance:      %d\n", TreeEditDistance(*a, *b));
  }
  return 0;
}

int CmdTopK(std::vector<std::string> args) {
  if (args.size() != 3) return Usage();
  StatusOr<ForestIndex> forest = LoadForestIndex(args[0]);
  if (!forest.ok()) return Fail(forest.status());
  StatusOr<Tree> query = ParseXmlFile(args[1]);
  if (!query.ok()) return Fail(query.status());
  int k = std::atoi(args[2].c_str());
  for (const LookupResult& hit : forest->TopK(*query, k)) {
    std::printf("tree %-4d dist %.4f\n", hit.tree_id, hit.distance);
  }
  return 0;
}

int CmdDiff(std::vector<std::string> args) {
  if (args.size() != 2) return Usage();
  auto dict = std::make_shared<LabelDict>();
  StatusOr<Tree> old_tree = ParseXmlFile(args[0], dict);
  if (!old_tree.ok()) return Fail(old_tree.status());
  StatusOr<Tree> new_tree = ParseXmlFile(args[1], dict);
  if (!new_tree.ok()) return Fail(new_tree.status());
  TreeDiff diff = ComputeEditScript(*old_tree, *new_tree);
  std::printf("%d operations (node ids refer to %s in pre-order):\n",
              diff.distance, args[0].c_str());
  for (const EditOperation& op : diff.operations) {
    std::printf("  %s\n", op.ToString(*dict).c_str());
  }
  return 0;
}

// `pqidx stats host:port`: pulls the live metrics registry from a
// running pqidxd (kStatsSnapshot) and prints it in exposition text form.
int CmdRemoteStats(const std::string& endpoint) {
  size_t colon = endpoint.rfind(':');
  std::string host = endpoint.substr(0, colon);
  int port = std::atoi(endpoint.c_str() + colon + 1);
  if (host.empty() || port < 1 || port > 65535) {
    return Fail(InvalidArgumentError("expected host:port, got " + endpoint));
  }
  // Retry transient connect failures (server still binding, admission
  // control under load) a few times before giving up.
  BackoffPolicy policy;
  policy.max_attempts = 5;
  StatusOr<std::unique_ptr<Client>> client = Client::ConnectWithRetry(
      [&host, port]() { return TcpConnect(host, static_cast<uint16_t>(port)); },
      policy);
  if (!client.ok()) return Fail(client.status());
  StatusOr<MetricsSnapshot> snapshot = (*client)->StatsSnapshot();
  if (!snapshot.ok()) return Fail(snapshot.status());
  std::printf("%s", snapshot->ToText().c_str());
  return 0;
}

int CmdStats(std::vector<std::string> args) {
  if (args.size() != 1) return Usage();
  // host:port targets a live server; anything else is a document path.
  if (args[0].find(':') != std::string::npos) return CmdRemoteStats(args[0]);
  StatusOr<Tree> tree = ParseXmlFile(args[0]);
  if (!tree.ok()) return Fail(tree.status());
  TreeStats stats = ComputeTreeStats(*tree);
  std::printf("%s", stats.ToString().c_str());
  std::printf("pq-gram profile sizes: 1,2 -> %lld   2,3 -> %lld   3,3 -> "
              "%lld\n",
              static_cast<long long>(
                  ProfileSizeFromStats(stats, PqShape{1, 2})),
              static_cast<long long>(
                  ProfileSizeFromStats(stats, PqShape{2, 3})),
              static_cast<long long>(
                  ProfileSizeFromStats(stats, PqShape{3, 3})));
  return 0;
}

int CmdJoin(std::vector<std::string> args) {
  if (args.size() < 2 || args.size() > 3) return Usage();
  double tau = args.size() == 3 ? std::atof(args[2].c_str()) : 0.5;
  StatusOr<ForestIndex> left = LoadForestIndex(args[0]);
  if (!left.ok()) return Fail(left.status());
  if (args[0] == args[1]) {
    for (const JoinResult& pair : SelfJoin(*left, tau)) {
      std::printf("%-4d %-4d dist %.4f\n", pair.left, pair.right,
                  pair.distance);
    }
    return 0;
  }
  StatusOr<ForestIndex> right = LoadForestIndex(args[1]);
  if (!right.ok()) return Fail(right.status());
  if (!(left->shape() == right->shape())) {
    return Fail(InvalidArgumentError("index shapes differ"));
  }
  for (const JoinResult& pair : IndexJoin(*left, *right, tau)) {
    std::printf("%-4d %-4d dist %.4f\n", pair.left, pair.right,
                pair.distance);
  }
  return 0;
}

// `pqidx serve --follow leader-host:port`: a warm standby. The Follower
// (service/replication.h) owns the store, the subscription, and its own
// read-only Server; this wrapper only parses flags, binds the serving
// port, and waits for a signal.
int CmdServeFollower(const std::string& index_path, const std::string& leader,
                     int port, int threads, int lookup_threads,
                     int store_shards) {
  size_t colon = leader.rfind(':');
  std::string host = colon != std::string::npos ? leader.substr(0, colon)
                                                : std::string();
  int leader_port =
      colon != std::string::npos ? std::atoi(leader.c_str() + colon + 1) : 0;
  if (host.empty() || leader_port < 1 || leader_port > 65535) {
    return Fail(
        InvalidArgumentError("--follow expects host:port, got " + leader));
  }

  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  // The listener is (re)created on every serving-stack build (a
  // snapshot resync tears the server down), so the bound port is
  // reported through this shared cell.
  auto bound_port = std::make_shared<std::atomic<int>>(0);
  FollowerOptions options;
  options.store_path = index_path;
  options.store_shards = store_shards;
  options.dial = [host, leader_port]() {
    return TcpConnect(host, static_cast<uint16_t>(leader_port));
  };
  options.listen =
      [port, bound_port]() -> StatusOr<std::unique_ptr<Listener>> {
    StatusOr<std::unique_ptr<TcpListener>> listener =
        TcpListener::Listen(static_cast<uint16_t>(port));
    PQIDX_RETURN_IF_ERROR(listener.status());
    bound_port->store((*listener)->port());
    return StatusOr<std::unique_ptr<Listener>>(
        std::move(listener).value());
  };
  options.server.max_connections = threads;
  options.server.lookup_threads = lookup_threads;

  Follower follower(std::move(options));
  if (Status s = follower.Start(); !s.ok()) return Fail(s);
  std::printf("pqidxd following %s: serving %s read-only on 127.0.0.1:%d "
              "(cursor %llu); stop with SIGINT\n",
              leader.c_str(), index_path.c_str(), bound_port->load(),
              static_cast<unsigned long long>(follower.cursor()));
  std::fflush(stdout);

  int caught = 0;
  sigwait(&signals, &caught);
  std::printf("caught signal %d, shutting down\n", caught);
  follower.Stop();
  Status stream = follower.stream_status();
  std::printf("follower stopped at cursor %llu (%lld reconnects, %lld "
              "snapshot resyncs)%s%s\n",
              static_cast<unsigned long long>(follower.cursor()),
              static_cast<long long>(follower.reconnects()),
              static_cast<long long>(follower.snapshot_resyncs()),
              stream.ok() ? "" : "; stream error: ",
              stream.ok() ? "" : stream.ToString().c_str());
  return 0;
}

int CmdServe(std::vector<std::string> args) {
  PqShape shape = ParseShapeFlags(&args);
  int port = 0;
  int threads = 4;
  int lookup_threads = 0;
  int stats_interval = 0;
  int pipeline_depth = 1;
  int full_rebuild_every = 64;
  int staging_threads = 0;
  ServerOptions defaults;
  int replication_history = defaults.replication_history;
  int replication_max_queue = defaults.replication_max_queue;
  int query_cache_mb = defaults.query_cache_mb;
  bool query_cache_off = defaults.query_cache_off;
  int store_shards = 1;
  std::string follow;
  std::vector<std::string> rest;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--port" && i + 1 < args.size()) {
      port = std::atoi(args[++i].c_str());
    } else if (args[i] == "-t" && i + 1 < args.size()) {
      threads = std::atoi(args[++i].c_str());
    } else if (args[i] == "--lookup-threads" && i + 1 < args.size()) {
      lookup_threads = std::atoi(args[++i].c_str());
    } else if (args[i] == "--stats-interval" && i + 1 < args.size()) {
      stats_interval = std::atoi(args[++i].c_str());
    } else if (args[i] == "--commit-pipeline-depth" && i + 1 < args.size()) {
      pipeline_depth = std::atoi(args[++i].c_str());
    } else if (args[i] == "--full-rebuild-every" && i + 1 < args.size()) {
      full_rebuild_every = std::atoi(args[++i].c_str());
    } else if (args[i] == "--staging-threads" && i + 1 < args.size()) {
      staging_threads = std::atoi(args[++i].c_str());
    } else if (args[i] == "--replication-history" && i + 1 < args.size()) {
      replication_history = std::atoi(args[++i].c_str());
    } else if (args[i] == "--replication-max-queue" &&
               i + 1 < args.size()) {
      replication_max_queue = std::atoi(args[++i].c_str());
    } else if (args[i] == "--follow" && i + 1 < args.size()) {
      follow = args[++i];
    } else if (args[i] == "--query-cache-mb" && i + 1 < args.size()) {
      query_cache_mb = std::atoi(args[++i].c_str());
    } else if (args[i] == "--query-cache-off") {
      query_cache_off = true;
    } else if (args[i] == "--store-shards" && i + 1 < args.size()) {
      store_shards = std::atoi(args[++i].c_str());
    } else {
      rest.push_back(args[i]);
    }
  }
  if (rest.size() != 1 || port < 0 || port > 65535 || threads < 1 ||
      lookup_threads < 0 || stats_interval < 0 || pipeline_depth < 1 ||
      full_rebuild_every < 0 || staging_threads < 0 ||
      replication_history < 1 || replication_max_queue < 1 ||
      query_cache_mb < 0 || store_shards < 1 || store_shards > 1024) {
    return Usage();
  }
  const std::string& index_path = rest[0];

  if (!follow.empty()) {
    return CmdServeFollower(index_path, follow, port, threads,
                            lookup_threads, store_shards);
  }

  // Open the index, creating a fresh one if nothing exists at the path
  // yet. An existing store keeps its on-disk layout whatever
  // --store-shards says (the shard count is fixed at create time).
  StatusOr<std::unique_ptr<ShardedStore>> index =
      ShardedStore::Open(index_path);
  if (!index.ok()) {
    if (std::FILE* f = std::fopen(index_path.c_str(), "rb")) {
      std::fclose(f);
      return Fail(index.status());  // exists but unreadable: report that
    }
    index = ShardedStore::Create(index_path, shape, store_shards);
    if (!index.ok()) return Fail(index.status());
    std::printf("created %s (%d,%d-grams, %d shard%s)\n", index_path.c_str(),
                shape.p, shape.q, store_shards,
                store_shards == 1 ? "" : "s");
  }

  // Handle SIGINT/SIGTERM with sigwait: block them before any server
  // thread is spawned (threads inherit the mask), then wait synchronously.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  StatusOr<std::unique_ptr<TcpListener>> listener =
      TcpListener::Listen(static_cast<uint16_t>(port));
  if (!listener.ok()) return Fail(listener.status());
  int bound_port = (*listener)->port();

  ServerOptions options;
  options.max_connections = threads;
  options.lookup_threads = lookup_threads;
  options.commit_pipeline_depth = pipeline_depth;
  options.snapshot_full_rebuild_every = full_rebuild_every;
  options.staging_threads = staging_threads;
  options.replication_history = replication_history;
  options.replication_max_queue = replication_max_queue;
  options.query_cache_mb = query_cache_mb;
  options.query_cache_off = query_cache_off;
  Server server(index->get(), options);
  if (Status s = server.Start(std::move(*listener)); !s.ok()) {
    return Fail(s);
  }
  std::printf("pqidxd serving %s on 127.0.0.1:%d (%d,%d-grams, %d trees, "
              "%d handler threads); stop with SIGINT\n",
              index_path.c_str(), bound_port, (*index)->shape().p,
              (*index)->shape().q, (*index)->size(), threads);
  std::fflush(stdout);

  // Optional periodic registry dump: a background thread prints the
  // process-wide metrics snapshot every --stats-interval seconds until
  // shutdown wakes it through the condition variable.
  std::mutex dump_mutex;
  std::condition_variable dump_cv;
  bool dump_stop = false;
  std::thread dump_thread;
  if (stats_interval > 0) {
    dump_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(dump_mutex);
      while (!dump_cv.wait_for(lock, std::chrono::seconds(stats_interval),
                               [&] { return dump_stop; })) {
        MetricsSnapshot snapshot = Metrics::Default().Snapshot();
        lock.unlock();
        std::printf("--- metrics ---\n%s", snapshot.ToText().c_str());
        std::fflush(stdout);
        lock.lock();
      }
    });
  }

  int caught = 0;
  sigwait(&signals, &caught);
  std::printf("caught signal %d, shutting down\n", caught);
  if (dump_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(dump_mutex);
      dump_stop = true;
    }
    dump_cv.notify_all();
    dump_thread.join();
  }
  server.Stop();

  ServiceStats stats = server.stats();
  std::printf("served %lld lookups, %lld edits in %lld commits "
              "(largest batch %lld), %lld rejected, %lld protocol errors\n",
              static_cast<long long>(stats.lookups),
              static_cast<long long>(stats.edits_applied),
              static_cast<long long>(stats.edit_commits),
              static_cast<long long>(stats.max_batch),
              static_cast<long long>(stats.rejected),
              static_cast<long long>(stats.protocol_errors));
  std::printf("lookup engine: epoch %lld, %lld candidates pruned / %lld "
              "scored, snapshot rebuilds %lld us total (last %lld us)\n",
              static_cast<long long>(stats.snapshot_epoch),
              static_cast<long long>(stats.candidates_pruned),
              static_cast<long long>(stats.candidates_scored),
              static_cast<long long>(stats.snapshot_rebuild_us),
              static_cast<long long>(stats.last_rebuild_us));
  std::printf("--- metrics ---\n%s",
              Metrics::Default().Snapshot().ToText().c_str());
  return 0;
}

int CmdStore(std::vector<std::string> args) {
  if (args.empty()) return Usage();
  std::string sub = args[0];
  args.erase(args.begin());
  if (sub == "create") {
    PqShape shape = ParseShapeFlags(&args);
    if (args.size() != 1) return Usage();
    StatusOr<std::unique_ptr<DocumentStore>> store =
        DocumentStore::Create(args[0], shape);
    if (!store.ok()) return Fail(store.status());
    std::printf("created store %s (%d,%d-grams)\n", args[0].c_str(),
                shape.p, shape.q);
    return 0;
  }
  if (args.empty()) return Usage();
  const std::string dir = args[0];
  StatusOr<std::unique_ptr<DocumentStore>> store = DocumentStore::Open(dir);
  if (!store.ok()) return Fail(store.status());

  if (sub == "ingest") {
    if (args.size() < 2) return Usage();
    for (size_t i = 1; i < args.size(); ++i) {
      StatusOr<Tree> doc = ParseXmlFile(args[i]);
      if (!doc.ok()) return Fail(doc.status());
      StatusOr<TreeId> id = (*store)->Ingest(*doc);
      if (!id.ok()) return Fail(id.status());
      std::printf("doc %-4d %-40s %d nodes\n", *id, args[i].c_str(),
                  doc->size());
    }
    return 0;
  }
  if (sub == "commit") {
    if (args.size() != 3) return Usage();
    TreeId id = static_cast<TreeId>(std::atoi(args[1].c_str()));
    StatusOr<Tree> current = (*store)->Checkout(id);
    if (!current.ok()) return Fail(current.status());
    StatusOr<Tree> next =
        ParseXmlFile(args[2], current->dict_ptr());
    if (!next.ok()) return Fail(next.status());
    if (Status s = (*store)->CommitVersion(id, *next); !s.ok()) {
      return Fail(s);
    }
    std::printf("doc %d updated incrementally from %s\n", id,
                args[2].c_str());
    return 0;
  }
  if (sub == "lookup") {
    if (args.size() < 2 || args.size() > 3) return Usage();
    double tau = args.size() == 3 ? std::atof(args[2].c_str()) : 0.5;
    StatusOr<Tree> query = ParseXmlFile(args[1]);
    if (!query.ok()) return Fail(query.status());
    StatusOr<std::vector<LookupResult>> hits =
        (*store)->Lookup(*query, tau);
    if (!hits.ok()) return Fail(hits.status());
    for (const LookupResult& hit : *hits) {
      std::printf("doc %-4d dist %.4f\n", hit.tree_id, hit.distance);
    }
    if (hits->empty()) std::printf("no document within %.3f\n", tau);
    return 0;
  }
  if (sub == "ls") {
    std::printf("%s: %d documents, %d,%d-grams\n", dir.c_str(),
                (*store)->size(), (*store)->shape().p,
                (*store)->shape().q);
    for (TreeId id : (*store)->DocumentIds()) {
      std::printf("  doc %-4d\n", id);
    }
    return 0;
  }
  if (sub == "verify") {
    if (Status s = (*store)->Verify(); !s.ok()) return Fail(s);
    std::printf("store %s verified: every index matches its document\n",
                dir.c_str());
    return 0;
  }
  return Usage();
}

// Removes a throwaway store: either the legacy single file (plus WAL)
// or a sharded store directory.
void RemoveThrowawayStore(const std::string& path) {
  std::remove((path + "/MANIFEST").c_str());
  for (int k = 0; k < 1024; ++k) {
    char name[16];
    std::snprintf(name, sizeof(name), "shard-%04d", k);
    const std::string shard = path + "/" + name;
    const bool removed = std::remove(shard.c_str()) == 0;
    std::remove((shard + ".wal").c_str());
    if (!removed) break;
  }
  ::rmdir(path.c_str());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// Runs a seeded workload scenario (bench/workload) with the
// differential oracle: by default against a throwaway in-process server
// (pipe transport, or loopback TCP with --tcp), or against a remote
// pqidxd at host:port. The oracle seeds the forest itself, so a remote
// target must start empty; --no-oracle turns the run into a pure load
// generator (and disables the bursts, which need the oracle's mirror
// for valid delta synthesis). Exits nonzero on any divergence.
int CmdWorkload(std::vector<std::string> args) {
  workload::WorkloadSpec spec = workload::PresetSpec('A');
  spec.seed = 1;
  spec.num_trees = 192;
  spec.ops_per_client = 240;
  spec.rounds = 3;
  spec.burst_trees = 4;
  spec.burst_depth = 3;
  bool oracle = true;
  bool tcp = false;
  int store_shards = 1;
  std::string endpoint;
  std::vector<std::string> rest;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--preset" && i + 1 < args.size()) {
      const std::string& p = args[++i];
      if (p.size() != 1 || (p[0] != 'A' && p[0] != 'B' && p[0] != 'C')) {
        return Usage();
      }
      const workload::WorkloadSpec preset = workload::PresetSpec(p[0]);
      spec.preset = preset.preset;
      spec.mix = preset.mix;
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      spec.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--clients" && i + 1 < args.size()) {
      spec.num_clients = std::atoi(args[++i].c_str());
    } else if (args[i] == "--ops" && i + 1 < args.size()) {
      spec.ops_per_client = std::atoi(args[++i].c_str());
    } else if (args[i] == "--trees" && i + 1 < args.size()) {
      spec.num_trees = std::atoi(args[++i].c_str());
    } else if (args[i] == "--theta" && i + 1 < args.size()) {
      spec.theta = std::atof(args[++i].c_str());
    } else if (args[i] == "--rounds" && i + 1 < args.size()) {
      spec.rounds = std::atoi(args[++i].c_str());
    } else if (args[i] == "--burst-trees" && i + 1 < args.size()) {
      spec.burst_trees = std::atoi(args[++i].c_str());
    } else if (args[i] == "--burst-depth" && i + 1 < args.size()) {
      spec.burst_depth = std::atoi(args[++i].c_str());
    } else if (args[i] == "--no-oracle") {
      oracle = false;
    } else if (args[i] == "--tcp") {
      tcp = true;
    } else if (args[i] == "--store-shards" && i + 1 < args.size()) {
      store_shards = std::atoi(args[++i].c_str());
    } else {
      rest.push_back(args[i]);
    }
  }
  if (rest.size() > 1 || spec.num_clients < 1 || spec.num_trees < 1 ||
      spec.ops_per_client < 0 || spec.rounds < 1 || spec.burst_trees < 0 ||
      spec.burst_depth < 0 || spec.theta < 0 || store_shards < 1 ||
      store_shards > 1024) {
    return Usage();
  }
  if (!rest.empty()) endpoint = rest[0];
  if (!oracle) {
    spec.burst_trees = 0;  // bursts need the oracle's mirror
    spec.burst_depth = 0;
  }

  // A throwaway self-hosted server unless an endpoint was given.
  std::unique_ptr<ShardedStore> index;
  std::unique_ptr<Server> server;
  std::string store_path;
  Dialer dial;
  workload::DriverOptions options;
  options.oracle = oracle;
  if (endpoint.empty()) {
    store_path = "/tmp/pqidx_workload_cli.idx";
    StatusOr<std::unique_ptr<ShardedStore>> created =
        ShardedStore::Create(store_path, spec.shape, store_shards);
    if (!created.ok()) return Fail(created.status());
    index = std::move(created).value();
    ServerOptions server_options;
    server_options.max_connections = spec.num_clients + 2;
    server = std::make_unique<Server>(index.get(), server_options);
    options.server = server.get();
    if (tcp) {
      StatusOr<std::unique_ptr<TcpListener>> listener =
          TcpListener::Listen(0);
      if (!listener.ok()) return Fail(listener.status());
      const int port = (*listener)->port();
      dial = [port] {
        return TcpConnect("127.0.0.1", static_cast<uint16_t>(port));
      };
      if (Status s = server->Start(std::move(listener).value()); !s.ok()) {
        return Fail(s);
      }
    } else {
      auto listener = std::make_unique<PipeListener>();
      PipeListener* connect_point = listener.get();
      dial = [connect_point] { return connect_point->Connect(); };
      if (Status s = server->Start(std::move(listener)); !s.ok()) {
        return Fail(s);
      }
    }
  } else {
    const size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) return Usage();
    const std::string host = endpoint.substr(0, colon);
    const int port = std::atoi(endpoint.c_str() + colon + 1);
    if (port <= 0 || port > 65535) return Usage();
    dial = [host, port] {
      return TcpConnect(host, static_cast<uint16_t>(port));
    };
    // The server's shape must match the spec's (the driver seeds bags
    // built with spec.shape); learn it from a probe connection.
    StatusOr<std::unique_ptr<Client>> probe =
        Client::ConnectWithRetry(dial, BackoffPolicy{}, spec.seed);
    if (!probe.ok()) return Fail(probe.status());
    spec.shape = (*probe)->shape();
    (*probe)->Close();
  }

  std::printf("%s\n", workload::DescribeSpec(spec).c_str());
  StatusOr<workload::RunResult> run =
      workload::RunWorkload(spec, dial, options);
  if (server != nullptr) server->Stop();
  if (!store_path.empty()) {
    index.reset();
    RemoveThrowawayStore(store_path);
  }
  if (!run.ok()) return Fail(run.status());

  std::printf("throughput    %10.0f req/s  (%lld lookups, %lld topk, "
              "%lld edits)\n",
              run->throughput(), static_cast<long long>(run->lookups),
              static_cast<long long>(run->topks),
              static_cast<long long>(run->edits));
  auto row = [](const char* label, std::vector<double>* v) {
    if (v->empty()) return;
    std::printf("%-13s %10.3f ms p50  %.3f p95  %.3f p99\n", label,
                bench::Percentile(v, 50) * 1e3,
                bench::Percentile(v, 95) * 1e3,
                bench::Percentile(v, 99) * 1e3);
  };
  row("lookup", &run->lookup_s);
  row("topk", &run->topk_s);
  row("edit", &run->edit_s);
  if (oracle) {
    std::printf("oracle        %10lld sweeps, %lld comparisons, "
                "%lld burst trees (%lld comparisons) -- all bit-identical\n",
                static_cast<long long>(run->oracle_checks),
                static_cast<long long>(run->oracle_comparisons),
                static_cast<long long>(run->bursts),
                static_cast<long long>(run->burst_comparisons));
  }
  if (run->failures > 0) {
    std::fprintf(stderr, "pqidx: %d request failures\n", run->failures);
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "build") return CmdBuild(std::move(args));
  if (command == "info") return CmdInfo(std::move(args));
  if (command == "lookup") return CmdLookup(std::move(args));
  if (command == "update") return CmdUpdate(std::move(args));
  if (command == "dist") return CmdDist(std::move(args));
  if (command == "topk") return CmdTopK(std::move(args));
  if (command == "diff") return CmdDiff(std::move(args));
  if (command == "stats") return CmdStats(std::move(args));
  if (command == "join") return CmdJoin(std::move(args));
  if (command == "serve") return CmdServe(std::move(args));
  if (command == "store") return CmdStore(std::move(args));
  if (command == "workload") return CmdWorkload(std::move(args));
  return Usage();
}

}  // namespace
}  // namespace pqidx

int main(int argc, char** argv) { return pqidx::Main(argc, argv); }
