#!/usr/bin/env python3
"""Tests for tools/lint.py: one positive (violating) and one negative
(clean) fixture per rule, run against a synthetic repo tree.

Usage: tools/lint_test.py
Exits 0 when all cases pass; prints the failures and exits 1 otherwise.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint  # noqa: E402


GUARD_TOP = "#ifndef PQIDX_A_H_\n#define PQIDX_A_H_\n"
GUARD_BOTTOM = "#endif  // PQIDX_A_H_\n"


def run_lint_on(files):
    """Writes {relpath: content} into a temp repo and lints it.

    Returns the list of diagnostics ("path:line: [Rn] message").
    """
    with tempfile.TemporaryDirectory() as root:
        for rel_path, content in files.items():
            path = os.path.join(root, rel_path)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        errors = []
        for rel_path in sorted(files):
            lint.check_file(root, rel_path, errors)
        return errors


def rules_of(errors):
    return {e.split("[")[1].split("]")[0] for e in errors}


CASES = []


def case(name, files, expect_rules):
    CASES.append((name, files, frozenset(expect_rules)))


# --- R1: exceptions ------------------------------------------------------

case("r1_throw_flagged",
     {"src/a.cc": "void F() { throw 1; }\n"}, {"R1"})
case("r1_throw_in_comment_ok",
     {"src/a.cc": "// does not throw\nvoid F() {}\n"}, set())

# --- R2: naked new -------------------------------------------------------

case("r2_naked_new_flagged",
     {"src/a.cc": "int* p = new int;\n"}, {"R2"})
case("r2_make_unique_ok",
     {"src/a.cc": "auto p = std::make_unique<int>();\n"}, set())
case("r2_allow_marker_ok",
     {"src/a.cc": "int* p = new int;  // lint:allow-new\n"}, set())

# --- R3: assert ----------------------------------------------------------

case("r3_assert_flagged",
     {"src/a.cc": "void F() { assert(true); }\n"}, {"R3"})
case("r3_check_ok",
     {"src/a.cc": "void F() { PQIDX_CHECK(true); }\n"}, set())

# --- R4: abort/exit ------------------------------------------------------

case("r4_abort_flagged",
     {"src/a.cc": "void F() { std::abort(); }\n"}, {"R4"})
case("r4_abort_in_check_h_ok",
     {"src/common/check.h":
      "#ifndef PQIDX_COMMON_CHECK_H_\n#define PQIDX_COMMON_CHECK_H_\n"
      "inline void Die() { std::abort(); }\n"
      "#endif  // PQIDX_COMMON_CHECK_H_\n"}, set())

# --- R5: include guards --------------------------------------------------

case("r5_wrong_guard_flagged",
     {"src/a.h": "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n"}, {"R5"})
case("r5_matching_guard_ok",
     {"src/a.h": GUARD_TOP + GUARD_BOTTOM}, set())

# --- R6: raw synchronization primitives ----------------------------------

case("r6_std_mutex_flagged",
     {"src/a.cc": "std::mutex mu;\n"}, {"R6"})
case("r6_include_mutex_flagged",
     {"src/a.cc": "#include <mutex>\n"}, {"R6"})
case("r6_lock_guard_flagged",
     {"src/a.cc": "std::lock_guard<std::mutex> lock(mu);\n"}, {"R6"})
case("r6_condition_variable_flagged",
     {"src/a.cc": "std::condition_variable cv;\n"}, {"R6"})
case("r6_allowed_in_sync_h_ok",
     {"src/common/sync.h":
      "#ifndef PQIDX_COMMON_SYNC_H_\n#define PQIDX_COMMON_SYNC_H_\n"
      "#include <mutex>\nstd::mutex mu;\n"
      "#endif  // PQIDX_COMMON_SYNC_H_\n"}, set())
case("r6_allow_marker_ok",
     {"src/a.cc": "std::mutex mu;  // lint:allow-raw-sync\n"}, set())
case("r6_in_comment_ok",
     {"src/a.cc": "// replaces std::mutex with Mutex\nint x;\n"}, set())

# --- R7: no-tsa justification --------------------------------------------

case("r7_unjustified_flagged",
     {"src/a.cc": "void F() PQIDX_NO_THREAD_SAFETY_ANALYSIS {}\n"}, {"R7"})
case("r7_same_line_justification_ok",
     {"src/a.cc":
      "void F() PQIDX_NO_THREAD_SAFETY_ANALYSIS {}  // no-tsa: why\n"},
     set())
case("r7_preceding_justification_ok",
     {"src/a.cc":
      "// no-tsa: the caller holds mu via the turnstile protocol.\n"
      "void F() PQIDX_NO_THREAD_SAFETY_ANALYSIS {}\n"}, set())
case("r7_justification_too_far_flagged",
     {"src/a.cc":
      "// no-tsa: too far away to count\n" + "int x;\n" * 9 +
      "void F() PQIDX_NO_THREAD_SAFETY_ANALYSIS {}\n"}, {"R7"})

# --- R8: unannotated capability members ----------------------------------

case("r8_unreferenced_mutex_flagged",
     {"src/a.h": GUARD_TOP +
      "class C {\n Mutex mutex_;\n int x_;\n};\n" + GUARD_BOTTOM}, {"R8"})
case("r8_guarded_by_reference_ok",
     {"src/a.h": GUARD_TOP +
      "class C {\n mutable Mutex mutex_;\n"
      " int x_ PQIDX_GUARDED_BY(mutex_);\n};\n" + GUARD_BOTTOM}, set())
case("r8_excludes_reference_ok",
     {"src/a.h": GUARD_TOP +
      "class C {\n void F() PQIDX_EXCLUDES(mutex_);\n"
      " SharedMutex mutex_;\n};\n" + GUARD_BOTTOM}, set())
case("r8_similar_name_not_confused",
     {"src/a.h": GUARD_TOP +
      "class C {\n Mutex mu_;\n"
      " int x_ PQIDX_GUARDED_BY(mu_extra_);\n Mutex mu_extra_;\n};\n" +
      GUARD_BOTTOM}, {"R8"})


def main():
    failures = []
    for name, files, expect in CASES:
        errors = run_lint_on(files)
        got = frozenset(rules_of(errors))
        if got != expect:
            failures.append(
                f"{name}: expected rules {sorted(expect) or '{}'}, "
                f"got {sorted(got) or '{}'}: {errors}")
    if failures:
        print("\n".join(failures))
        print(f"lint_test.py: {len(failures)}/{len(CASES)} cases FAILED")
        return 1
    print(f"lint_test.py: OK ({len(CASES)} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
