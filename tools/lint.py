#!/usr/bin/env python3
"""Repo-specific invariant linter for the pqidx library sources.

Enforces the project's hard conventions (see DESIGN.md and
common/check.h) that generic linters don't know about:

  R1  no exceptions: `throw` / `try` / `catch` never appear
  R2  no naked `new`: allocations go through std::make_* or are
      immediately owned by a smart pointer on the same line (the idiom
      for private constructors); annotate intentional exceptions with
      `// lint:allow-new`
  R3  no `assert`: invariants use PQIDX_CHECK / PQIDX_DCHECK, which stay
      active in release builds
  R4  no direct process exit: `abort` / `exit` only inside
      common/check.h; parse and I/O paths report Status instead
  R5  include guards match the file path: src/foo/bar.h guards with
      PQIDX_FOO_BAR_H_
  R6  no raw standard synchronization primitives (std::mutex,
      std::shared_mutex, std::condition_variable, std::lock_guard,
      std::unique_lock, std::shared_lock, std::scoped_lock, or their
      headers) outside src/common/sync.h: use the annotated wrappers
      from common/sync.h so Clang's thread-safety analysis sees every
      lock; annotate intentional exceptions with `// lint:allow-raw-sync`
  R7  every PQIDX_NO_THREAD_SAFETY_ANALYSIS escape hatch carries a
      justification: a comment containing `no-tsa:` on the same line or
      within the preceding lines
  R8  every Mutex / SharedMutex member is referenced by at least one
      PQIDX_* thread-safety annotation in the same file (GUARDED_BY,
      REQUIRES, EXCLUDES, ACQUIRE, ...): an unannotated capability
      member means the analysis silently checks nothing for it

Usage: tools/lint.py [repo-root] [--quiet]
Exits 0 when clean, 1 with file:line diagnostics otherwise.
"""

import os
import re
import sys

LINT_DIRS = ("src",)
ALLOW_NEW_MARKER = "lint:allow-new"
ALLOW_RAW_SYNC_MARKER = "lint:allow-raw-sync"
NO_TSA_JUSTIFICATION = "no-tsa:"
# How far back (in lines) an R7 justification comment may sit from the
# PQIDX_NO_THREAD_SAFETY_ANALYSIS it justifies.
NO_TSA_LOOKBACK = 8
RAW_SYNC_ALLOWED_FILES = {os.path.join("src", "common", "sync.h")}
# The macro layer defines the annotations; R7/R8 would misfire on it.
ANNOTATION_EXEMPT_FILES = RAW_SYNC_ALLOWED_FILES | {
    os.path.join("src", "common", "thread_annotations.h")}
RAW_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b|"
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")
CAPABILITY_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:Mutex|SharedMutex)\s+(\w+)\s*;")
SMART_PTR_WRAP = re.compile(r"\b(?:unique_ptr|shared_ptr)\s*<[^;]*>\s*\w*\s*\(\s*$|"
                            r"\b(?:unique_ptr|shared_ptr)\s*<[^;]*\(\s*new\b")
EXIT_ALLOWED_FILES = {os.path.join("src", "common", "check.h")}


def mask_comments_and_strings(text):
    """Replaces comment and string/char literal contents with spaces,
    preserving line structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def expected_guard(rel_path):
    stem = rel_path
    if stem.startswith("src" + os.sep):
        stem = stem[len("src" + os.sep):]
    return "PQIDX_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


def check_file(root, rel_path, errors):
    path = os.path.join(root, rel_path)
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    masked = mask_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    masked_lines = masked.splitlines()

    for lineno, (masked_line, raw_line) in enumerate(
            zip(masked_lines, raw_lines), start=1):

        def report(rule, message):
            errors.append(f"{rel_path}:{lineno}: [{rule}] {message}")

        if re.search(r"\b(throw|try|catch)\b", masked_line):
            report("R1", "exceptions are forbidden; return Status instead")

        if re.search(r"\bnew\b", masked_line):
            # The owning smart pointer may sit on the previous line when
            # the constructor call wraps (clang-format's usual layout).
            prev = masked_lines[lineno - 2] if lineno >= 2 else ""
            wrapped = (re.search(r"\b(?:make_unique|make_shared)\b", masked_line)
                       or re.search(r"\b(?:unique_ptr|shared_ptr)\b[^;]*\bnew\b",
                                    masked_line)
                       or re.search(r"\b(?:unique_ptr|shared_ptr)\b[^;]*\($",
                                    prev.rstrip())
                       or ALLOW_NEW_MARKER in raw_line)
            if not wrapped:
                report("R2", "naked `new`; use std::make_* or wrap the "
                             "allocation in a smart pointer on the same line")

        if re.search(r"\bassert\s*\(", masked_line):
            report("R3", "use PQIDX_CHECK / PQIDX_DCHECK instead of assert")

        if rel_path not in EXIT_ALLOWED_FILES and re.search(
                r"(?<![\w:])(?:std::)?(?:abort|_Exit|quick_exit)\s*\(",
                masked_line):
            report("R4", "no direct abort/exit outside common/check.h; "
                         "parse and I/O paths must return Status")

        if (rel_path not in RAW_SYNC_ALLOWED_FILES
                and ALLOW_RAW_SYNC_MARKER not in raw_line
                and RAW_SYNC_RE.search(masked_line)):
            report("R6", "raw std synchronization primitive; use the "
                         "annotated wrappers from common/sync.h")

        if (rel_path not in ANNOTATION_EXEMPT_FILES
                and "PQIDX_NO_THREAD_SAFETY_ANALYSIS" in masked_line):
            window = raw_lines[max(0, lineno - 1 - NO_TSA_LOOKBACK):lineno]
            if not any(NO_TSA_JUSTIFICATION in line for line in window):
                report("R7", "PQIDX_NO_THREAD_SAFETY_ANALYSIS without a "
                             f"`{NO_TSA_JUSTIFICATION}` justification comment "
                             "on or above the escape hatch")

    if rel_path not in ANNOTATION_EXEMPT_FILES:
        for lineno, masked_line in enumerate(masked_lines, start=1):
            member = CAPABILITY_MEMBER_RE.match(masked_line)
            if not member:
                continue
            name = member.group(1)
            # Any PQIDX_* annotation naming the member counts:
            # PQIDX_GUARDED_BY(name), PQIDX_REQUIRES(name),
            # PQIDX_EXCLUDES(other, name), PQIDX_ACQUIRE(name), ...
            referenced = re.search(
                rf"PQIDX_[A-Z_]+\([^)]*\b{re.escape(name)}\b", masked)
            if not referenced:
                errors.append(
                    f"{rel_path}:{lineno}: [R8] capability member `{name}` is "
                    "not referenced by any PQIDX_* annotation in this file; "
                    "the thread-safety analysis checks nothing for it")

    if rel_path.endswith(".h"):
        guard = expected_guard(rel_path)
        has_ifndef = re.search(rf"^#ifndef {re.escape(guard)}$", masked,
                               re.MULTILINE)
        has_define = re.search(rf"^#define {re.escape(guard)}$", masked,
                               re.MULTILINE)
        if not (has_ifndef and has_define):
            errors.append(f"{rel_path}:1: [R5] include guard must be "
                          f"`{guard}` (matching the path)")


def main(argv):
    args = [a for a in argv[1:] if a != "--quiet"]
    quiet = "--quiet" in argv[1:]
    root = args[0] if args else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    files = []
    for lint_dir in LINT_DIRS:
        for dirpath, _, filenames in os.walk(os.path.join(root, lint_dir)):
            for name in sorted(filenames):
                if name.endswith((".h", ".cc")):
                    files.append(os.path.relpath(os.path.join(dirpath, name),
                                                 root))
    files.sort()

    errors = []
    for rel_path in files:
        check_file(root, rel_path, errors)

    if errors:
        print("\n".join(errors))
        print(f"lint.py: {len(errors)} violation(s) in {len(files)} files")
        return 1
    if not quiet:
        print(f"lint.py: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
