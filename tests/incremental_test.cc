// End-to-end tests of the incremental index maintenance (Algorithm 1,
// Theorems 1-2, Lemma 2): the headline property is
//
//   updateIndex(I(T0), Tn, log) == BuildIndex(Tn)
//
// for random trees, random edit scripts, and every index shape, checked
// together with the intermediate set identities
//
//   Delta+ == P_n \ C_n   and   Delta- == P_0 \ C_n     (Definition 6)
//
// where C_n is the intersection of all intermediate profiles.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.h"
#include "core/delta.h"
#include "core/delta_store.h"
#include "core/incremental.h"
#include "core/pqgram_index.h"
#include "core/profile.h"
#include "core/profile_updater.h"
#include "core/validate.h"
#include "edit/edit_script.h"
#include "test_util.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

using ::pqidx::testing::AllTestShapes;
using ::pqidx::testing::DescribeDiff;
using ::pqidx::testing::SetIntersect;
using ::pqidx::testing::SetMinus;
using ::pqidx::testing::StoreToSet;

struct Scenario {
  Tree t0;
  Tree tn;
  EditLog log;
  std::vector<std::set<PqGram>> intermediate_profiles;  // filled on demand
};

// Applies `num_ops` random operations to a copy of `t0`, recording the log
// and (optionally, per shape) every intermediate profile.
Scenario MakeScenario(Tree t0, Rng* rng, int num_ops,
                      const EditScriptOptions& options) {
  Tree tn = t0.Clone();
  Scenario s{std::move(t0), std::move(tn), EditLog{}, {}};
  GenerateEditScript(&s.tn, rng, num_ops, options, &s.log);
  return s;
}

// Checks Algorithm 1 and the Delta set identities for one scenario/shape.
void CheckIncremental(const Scenario& s, const PqShape& shape,
                      bool check_deltas) {
  // Headline: incremental update == rebuild.
  PqGramIndex index = BuildIndex(s.t0, shape);
  UpdateTimings timings;
  Status status = UpdateIndex(&index, s.tn, s.log, &timings);
  ASSERT_TRUE(status.ok()) << status.ToString();
  PqGramIndex rebuilt = BuildIndex(s.tn, shape);
  ASSERT_EQ(index, rebuilt)
      << "shape (" << shape.p << "," << shape.q << "), log size "
      << s.log.size() << "\n  T0: " << ToNotationWithIds(s.t0)
      << "\n  Tn: " << ToNotationWithIds(s.tn);
  // The validator is the independent oracle for the same identity; it
  // must agree with the direct comparison above.
  Status validated = ValidateIndexAgainstTree(index, s.tn);
  ASSERT_TRUE(validated.ok()) << validated.ToString();

  if (!check_deltas) return;

  // Recompute all intermediate profiles by undoing the log step by step.
  std::vector<std::set<PqGram>> profiles;  // profiles[i] = P_i
  {
    Tree cur = s.tn.Clone();
    profiles.resize(s.log.size() + 1);
    profiles[s.log.size()] = ComputeProfileSet(cur, shape);
    for (int i = s.log.size() - 1; i >= 0; --i) {
      ASSERT_TRUE(s.log.inverse(i).ApplyTo(&cur).ok());
      profiles[i] = ComputeProfileSet(cur, shape);
    }
    ASSERT_EQ(profiles[0], ComputeProfileSet(s.t0, shape));
  }
  std::set<PqGram> c_n = profiles[0];
  for (const auto& p : profiles) c_n = SetIntersect(c_n, p);

  // Delta+ = union_k delta(Tn, e-bar_k). Under the clamped Algorithm 2
  // semantics (see DESIGN.md) this is a superset of the paper's
  // P_n \ C_n; the surplus lies in C_n.
  DeltaStore store(shape);
  for (const EditOperation& op : s.log.inverse_ops()) {
    ComputeDelta(s.tn, op, &store);
  }
  std::set<PqGram> delta_plus = StoreToSet(store);
  std::set<PqGram> want_plus = SetMinus(profiles[s.log.size()], c_n);
  std::set<PqGram> plus_extras = SetMinus(delta_plus, want_plus);
  ASSERT_TRUE(SetMinus(want_plus, delta_plus).empty())
      << "Delta+ misses required pq-grams\n"
      << DescribeDiff(delta_plus, want_plus, s.tn.dict());
  for (const PqGram& g : plus_extras) {
    ASSERT_TRUE(c_n.contains(g))
        << "Delta+ surplus outside C_n: " << PqGramToString(g, s.tn.dict());
  }

  // Delta- = U(...U(Delta+, e-bar_n)..., e-bar_1): a superset of
  // P_0 \ C_n whose surplus is exactly the Delta+ surplus (so that the
  // two cancel in the index update).
  ProfileUpdater updater(&store, &s.tn.dict());
  for (int i = s.log.size() - 1; i >= 0; --i) {
    updater.Apply(s.log.inverse(i));
  }
  store.CheckConsistency();
  std::set<PqGram> delta_minus = StoreToSet(store);
  std::set<PqGram> want_minus = SetMinus(profiles[0], c_n);
  ASSERT_TRUE(SetMinus(want_minus, delta_minus).empty())
      << "Delta- misses required pq-grams\n"
      << DescribeDiff(delta_minus, want_minus, s.tn.dict());
  std::set<PqGram> minus_extras = SetMinus(delta_minus, want_minus);
  ASSERT_EQ(minus_extras, plus_extras)
      << "Delta-/Delta+ surpluses do not cancel\n"
      << DescribeDiff(minus_extras, plus_extras, s.tn.dict());
}

TEST(IncrementalTest, EmptyLogIsIdentity) {
  Rng rng(1);
  Tree t0 = GenerateRandomTree(nullptr, &rng, {.num_nodes = 20});
  PqGramIndex index = BuildIndex(t0, PqShape{3, 3});
  PqGramIndex before = index;
  EditLog empty;
  ASSERT_TRUE(UpdateIndex(&index, t0, empty, nullptr).ok());
  EXPECT_EQ(index, before);
}

TEST(IncrementalTest, EmptyTreeRejected) {
  Tree empty(std::make_shared<LabelDict>());
  PqGramIndex index(PqShape{2, 2});
  EditLog log;
  EXPECT_FALSE(UpdateIndex(&index, empty, log).ok());
}

TEST(IncrementalTest, SingleOperationAllKinds) {
  for (const PqShape& shape : AllTestShapes()) {
    Rng rng(100 + shape.p * 10 + shape.q);
    for (int trial = 0; trial < 6; ++trial) {
      Scenario s = MakeScenario(
          GenerateRandomTree(nullptr, &rng, {.num_nodes = 15}), &rng, 1,
          EditScriptOptions{});
      CheckIncremental(s, shape, /*check_deltas=*/true);
    }
  }
}

class IncrementalPropertyTest : public ::testing::TestWithParam<PqShape> {};

TEST_P(IncrementalPropertyTest, RandomScriptsMatchRebuildWithDeltas) {
  const PqShape shape = GetParam();
  Rng rng(77000 + shape.p * 100 + shape.q);
  for (int trial = 0; trial < 10; ++trial) {
    int nodes = 1 + static_cast<int>(rng.NextBounded(30));
    int ops = 1 + static_cast<int>(rng.NextBounded(25));
    Scenario s =
        MakeScenario(GenerateRandomTree(nullptr, &rng, {.num_nodes = nodes}),
                     &rng, ops, EditScriptOptions{});
    CheckIncremental(s, shape, /*check_deltas=*/true);
  }
}

TEST_P(IncrementalPropertyTest, LongScriptsMatchRebuild) {
  const PqShape shape = GetParam();
  Rng rng(88000 + shape.p * 100 + shape.q);
  for (int trial = 0; trial < 3; ++trial) {
    Scenario s = MakeScenario(
        GenerateRandomTree(nullptr, &rng, {.num_nodes = 60}), &rng, 200,
        EditScriptOptions{});
    CheckIncremental(s, shape, /*check_deltas=*/false);
  }
}

TEST_P(IncrementalPropertyTest, DeleteHeavyScripts) {
  const PqShape shape = GetParam();
  Rng rng(99000 + shape.p * 100 + shape.q);
  EditScriptOptions options;
  options.delete_weight = 3.0;
  for (int trial = 0; trial < 5; ++trial) {
    Scenario s = MakeScenario(
        GenerateRandomTree(nullptr, &rng, {.num_nodes = 40}), &rng, 45,
        options);
    CheckIncremental(s, shape, /*check_deltas=*/false);
  }
}

TEST_P(IncrementalPropertyTest, InsertHeavyScriptsFromTinyTree) {
  const PqShape shape = GetParam();
  Rng rng(111000 + shape.p * 100 + shape.q);
  EditScriptOptions options;
  options.insert_weight = 4.0;
  for (int trial = 0; trial < 5; ++trial) {
    auto t0 = ParseTreeNotation("root");
    Scenario s = MakeScenario(std::move(t0).value(), &rng, 60, options);
    CheckIncremental(s, shape, /*check_deltas=*/false);
  }
}

TEST_P(IncrementalPropertyTest, RenameOnlyScripts) {
  const PqShape shape = GetParam();
  Rng rng(122000 + shape.p * 100 + shape.q);
  EditScriptOptions options;
  options.insert_weight = 0.0;
  options.delete_weight = 0.0;
  // A tiny alphabet provokes rename chains that restore earlier labels.
  options.reuse_label_probability = 1.0;
  for (int trial = 0; trial < 5; ++trial) {
    Scenario s = MakeScenario(
        GenerateRandomTree(nullptr, &rng,
                           {.num_nodes = 20, .alphabet_size = 3}),
        &rng, 30, options);
    CheckIncremental(s, shape, /*check_deltas=*/true);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, IncrementalPropertyTest,
    ::testing::ValuesIn(pqidx::testing::AllTestShapes()),
    [](const ::testing::TestParamInfo<PqShape>& info) {
      return "p" + std::to_string(info.param.p) + "q" +
             std::to_string(info.param.q);
    });

TEST(IncrementalTest, RepeatedEditsOnSameRegion) {
  // Operations stacked on the same nodes exercise the coherence of the
  // delta tables across many U steps.
  for (const PqShape& shape : AllTestShapes()) {
    auto t0_or = ParseTreeNotation("a(b(c,d),e)");
    Tree t0 = std::move(t0_or).value();
    Tree tn = t0.Clone();
    EditLog log;
    LabelId x = tn.mutable_dict()->Intern("x");
    LabelId y = tn.mutable_dict()->Intern("y");
    NodeId b = tn.child(tn.root(), 0);

    // rename b twice, wrap b's children, delete the wrapper, delete b.
    ASSERT_TRUE(ApplyAndLog(EditOperation::Rename(b, x), &tn, &log).ok());
    ASSERT_TRUE(ApplyAndLog(EditOperation::Rename(b, y), &tn, &log).ok());
    NodeId w = tn.AllocateId();
    ASSERT_TRUE(
        ApplyAndLog(EditOperation::Insert(w, x, b, 0, 2), &tn, &log).ok());
    ASSERT_TRUE(ApplyAndLog(EditOperation::Delete(w), &tn, &log).ok());
    ASSERT_TRUE(ApplyAndLog(EditOperation::Delete(b), &tn, &log).ok());

    PqGramIndex index = BuildIndex(t0, shape);
    ASSERT_TRUE(UpdateIndex(&index, tn, log).ok());
    EXPECT_EQ(index, BuildIndex(tn, shape));
    Status validated = ValidateIndexAgainstTree(index, tn);
    EXPECT_TRUE(validated.ok()) << validated.ToString();
  }
}

TEST(IncrementalTest, TimingsAreReported) {
  Rng rng(5);
  Scenario s = MakeScenario(
      GenerateRandomTree(nullptr, &rng, {.num_nodes = 200}), &rng, 50,
      EditScriptOptions{});
  PqGramIndex index = BuildIndex(s.t0, PqShape{3, 3});
  UpdateTimings timings;
  ASSERT_TRUE(UpdateIndex(&index, s.tn, s.log, &timings).ok());
  EXPECT_GT(timings.delta_plus_pqgrams, 0);
  EXPECT_GT(timings.delta_minus_pqgrams, 0);
  EXPECT_GE(timings.total_s, 0.0);
  EXPECT_GE(timings.delta_plus_s, 0.0);
}

TEST(IncrementalTest, ComputeIndexDeltasMatchesProfileDifference) {
  Rng rng(6);
  PqShape shape{3, 3};
  Scenario s = MakeScenario(
      GenerateRandomTree(nullptr, &rng, {.num_nodes = 30}), &rng, 10,
      EditScriptOptions{});
  PqGramIndex plus(shape), minus(shape);
  ASSERT_TRUE(
      ComputeIndexDeltas(s.tn, s.log, shape, &plus, &minus, nullptr).ok());
  // I0 \ I- u I+ == In at the bag level.
  PqGramIndex index = BuildIndex(s.t0, shape);
  for (const auto& [fp, count] : minus.counts()) index.Remove(fp, count);
  for (const auto& [fp, count] : plus.counts()) index.Add(fp, count);
  EXPECT_EQ(index, BuildIndex(s.tn, shape));
}

}  // namespace
}  // namespace pqidx
