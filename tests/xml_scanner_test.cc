// Direct tests of the SAX-style XML event scanner (event ordering,
// handler error propagation).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xml/xml_scanner.h"

namespace pqidx {
namespace {

// Records events as strings like "open:a", "attr:k=v", "text:t",
// "close:a".
class RecordingHandler : public XmlEventHandler {
 public:
  Status OnOpen(std::string_view name) override {
    events.push_back("open:" + std::string(name));
    return Status::Ok();
  }
  Status OnAttribute(std::string_view name, std::string_view value) override {
    events.push_back("attr:" + std::string(name) + "=" + std::string(value));
    return Status::Ok();
  }
  Status OnText(std::string_view text) override {
    events.push_back("text:" + std::string(text));
    return Status::Ok();
  }
  Status OnClose(std::string_view name) override {
    events.push_back("close:" + std::string(name));
    return Status::Ok();
  }

  std::vector<std::string> events;
};

TEST(XmlScannerTest, EventOrder) {
  RecordingHandler handler;
  ASSERT_TRUE(
      ScanXml("<a k=\"1\">hi<b/>there</a>", &handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"open:a", "attr:k=1", "text:hi",
                                      "open:b", "close:b", "text:there",
                                      "close:a"}));
}

TEST(XmlScannerTest, SelfClosingRoot) {
  RecordingHandler handler;
  ASSERT_TRUE(ScanXml("<only/>", &handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"open:only", "close:only"}));
}

TEST(XmlScannerTest, WhitespaceTextSuppressed) {
  RecordingHandler handler;
  ASSERT_TRUE(ScanXml("<a>\n   <b/>\t </a>", &handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"open:a", "open:b", "close:b",
                                      "close:a"}));
}

TEST(XmlScannerTest, TextIsTrimmedButInnerSpacePreserved) {
  RecordingHandler handler;
  ASSERT_TRUE(ScanXml("<a>  two words  </a>", &handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"open:a", "text:two words",
                                      "close:a"}));
}

TEST(XmlScannerTest, MultipleAttributesInOrder) {
  RecordingHandler handler;
  ASSERT_TRUE(ScanXml("<a x='1' y=\"2\" z='3'/>", &handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"open:a", "attr:x=1", "attr:y=2",
                                      "attr:z=3", "close:a"}));
}

TEST(XmlScannerTest, EntityInAttributeValue) {
  RecordingHandler handler;
  ASSERT_TRUE(ScanXml("<a k=\"x &amp; y\"/>", &handler).ok());
  EXPECT_EQ(handler.events[1], "attr:k=x & y");
}

// A handler whose error stops the scan immediately.
class FailingHandler : public RecordingHandler {
 public:
  explicit FailingHandler(std::string trigger)
      : trigger_(std::move(trigger)) {}
  Status OnOpen(std::string_view name) override {
    if (name == trigger_) return InvalidArgumentError("handler rejected");
    return RecordingHandler::OnOpen(name);
  }

 private:
  std::string trigger_;
};

TEST(XmlScannerTest, HandlerErrorsPropagate) {
  FailingHandler handler("bad");
  Status status = ScanXml("<a><ok/><bad><nested/></bad></a>", &handler);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "handler rejected");
  // Nothing after the failing element was delivered.
  EXPECT_EQ(handler.events.back(), "close:ok");
}

TEST(XmlScannerTest, SyntaxErrorsNameTheProblem) {
  RecordingHandler handler;
  Status status = ScanXml("<a><b></c></a>", &handler);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("mismatched end tag"),
            std::string::npos);
}

}  // namespace
}  // namespace pqidx
