// Tests for the profile update function U (Definition 5, Algorithm 3).
//
// Two levels of validation, both against brute-force profile algebra:
//  * minimal input:  U(delta(Tj, e-bar), e-bar) == delta(Ti, e)
//  * full input:     U(P_j, e-bar) == P_i                     (Equation 10)
// plus the paper's worked Example 5 and targeted edge cases (leaf
// transitions, q = 1, p = 1).

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/delta.h"
#include "core/delta_store.h"
#include "core/profile.h"
#include "core/profile_updater.h"
#include "edit/edit_script.h"
#include "test_util.h"
#include "tree/generators.h"
#include "tree/tree_builder.h"

namespace pqidx {
namespace {

using ::pqidx::testing::AllTestShapes;
using ::pqidx::testing::DescribeDiff;
using ::pqidx::testing::SetMinus;
using ::pqidx::testing::StoreToSet;

Tree MustParse(std::string_view notation) {
  StatusOr<Tree> tree = ParseTreeNotation(notation);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(tree).value();
}

// Seeds `store` with the complete profile of `tree` as (P,Q) rows.
void FillStoreWithProfile(const Tree& tree, DeltaStore* store) {
  tree.PreOrder([&](NodeId n) {
    store->InsertPRow(MakePRow(tree, n, store->shape()));
    int rows = tree.IsLeaf(n) ? 1 : tree.fanout(n) + store->shape().q - 1;
    for (int r = 0; r < rows; ++r) {
      store->InsertQRow(n, MakeQRow(tree, n, r, store->shape()));
    }
  });
}

// Checks both update-function contracts for forward operation `e` on tree
// `ti` (so tj = e(ti), e_bar = inverse of e).
void CheckUpdater(const Tree& ti, const EditOperation& e,
                  const PqShape& shape) {
  ASSERT_TRUE(e.IsDefinedOn(ti));
  StatusOr<EditOperation> e_bar_or = e.InverseOn(ti);
  ASSERT_TRUE(e_bar_or.ok());
  const EditOperation e_bar = *e_bar_or;
  Tree tj = ti.Clone();
  ASSERT_TRUE(e.ApplyTo(&tj).ok());

  std::set<PqGram> pi = ComputeProfileSet(ti, shape);
  std::set<PqGram> pj = ComputeProfileSet(tj, shape);

  // Contract 1: minimal input.
  {
    DeltaStore store(shape);
    ComputeDelta(tj, e_bar, &store);
    ProfileUpdater updater(&store, &tj.dict());
    updater.Apply(e_bar);
    store.CheckConsistency();
    std::set<PqGram> got = StoreToSet(store);
    std::set<PqGram> want = SetMinus(pi, pj);  // delta(Ti, e)
    EXPECT_EQ(got, want)
        << "minimal-input U, op " << e.ToString(ti.dict()) << " shape ("
        << shape.p << "," << shape.q << ") on " << ToNotationWithIds(ti)
        << "\n"
        << DescribeDiff(got, want, ti.dict());
  }
  // Contract 2: full profile input (Equation 10).
  {
    DeltaStore store(shape);
    FillStoreWithProfile(tj, &store);
    ProfileUpdater updater(&store, &tj.dict());
    updater.Apply(e_bar);
    store.CheckConsistency();
    std::set<PqGram> got = StoreToSet(store);
    EXPECT_EQ(got, pi) << "full-profile U, op " << e.ToString(ti.dict())
                       << " shape (" << shape.p << "," << shape.q << ") on "
                       << ToNotationWithIds(ti) << "\n"
                       << DescribeDiff(got, pi, ti.dict());
  }
}

TEST(UpdaterTest, PaperExample5DeltaMinus) {
  // Continue Example 5: apply U for e-bar2 then e-bar1 to Delta2+ and
  // compare against the paper's lambda(Delta2-).
  auto dict = std::make_shared<LabelDict>();
  Tree t2(dict);
  NodeId n1 = t2.CreateRoot("a");
  t2.AddChild(n1, "c");
  t2.AddChild(n1, "e");
  NodeId n6 = t2.AddChild(n1, "f");
  t2.AddChild(n1, "c");
  NodeId n7 = t2.AddChild(n6, "g");

  PqShape shape{3, 3};
  DeltaStore store(shape);
  EditOperation e_bar1 = EditOperation::Delete(n7);
  EditOperation e_bar2 =
      EditOperation::Insert(t2.AllocateId(), dict->Intern("b"), n1, 1, 2);
  ComputeDelta(t2, e_bar1, &store);
  ComputeDelta(t2, e_bar2, &store);

  ProfileUpdater updater(&store, dict.get());
  updater.Apply(e_bar2);
  updater.Apply(e_bar1);
  store.CheckConsistency();

  auto h = [&](const char* l) { return KarpRabinFingerprint(l); };
  const LabelHash A = h("a"), B = h("b"), C = h("c"), E = h("e"),
                  F = h("f"), N = kNullLabelHash;
  std::set<std::vector<LabelHash>> want = {
      {N, N, A, N, C, B}, {N, N, A, C, B, C}, {N, N, A, B, C, N},
      {N, A, B, N, N, E}, {N, A, B, N, E, F}, {N, A, B, E, F, N},
      {N, A, B, F, N, N}, {A, B, E, N, N, N}, {A, B, F, N, N, N}};
  std::set<std::vector<LabelHash>> got;
  for (const PqGram& g : StoreToSet(store)) got.insert(g.labels);
  EXPECT_EQ(got, want);
  EXPECT_EQ(store.CountPqGrams(), 9);
}

class UpdaterPropertyTest : public ::testing::TestWithParam<PqShape> {};

TEST_P(UpdaterPropertyTest, SingleStepMatchesBruteForce) {
  const PqShape shape = GetParam();
  Rng rng(9000 + shape.p * 100 + shape.q);
  for (int trial = 0; trial < 25; ++trial) {
    int nodes = 1 + static_cast<int>(rng.NextBounded(35));
    Tree tree = GenerateRandomTree(nullptr, &rng, {.num_nodes = nodes});
    Tree scratch = tree.Clone();
    EditLog log;
    std::vector<EditOperation> forward;
    GenerateEditScript(&scratch, &rng, 1, EditScriptOptions{}, &log,
                       &forward);
    CheckUpdater(tree, forward[0], shape);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, UpdaterPropertyTest,
    ::testing::ValuesIn(pqidx::testing::AllTestShapes()),
    [](const ::testing::TestParamInfo<PqShape>& info) {
      return "p" + std::to_string(info.param.p) + "q" +
             std::to_string(info.param.q);
    });

TEST(UpdaterTest, LeafTransitionsAllShapes) {
  for (const PqShape& shape : AllTestShapes()) {
    // Forward DEL of an only-child leaf: the parent becomes a leaf; the
    // inverse INS must restore the all-null q-part. (The q = 1 variant is
    // the case the tracked fanout disambiguates; see DESIGN.md.)
    {
      Tree ti = MustParse("a(b(c),d)");
      NodeId b = ti.child(ti.root(), 0);
      CheckUpdater(ti, EditOperation::Delete(ti.child(b, 0)), shape);
    }
    // Forward INS of a first child under a leaf.
    {
      Tree ti = MustParse("a(b,d)");
      NodeId b = ti.child(ti.root(), 0);
      LabelId x = ti.mutable_dict()->Intern("x");
      CheckUpdater(ti, EditOperation::Insert(ti.AllocateId(), x, b, 0, 0),
                   shape);
    }
  }
}

TEST(UpdaterTest, RootChildStructuralOps) {
  for (const PqShape& shape : AllTestShapes()) {
    Tree ti = MustParse("a(b(e,f),c,d)");
    LabelId x = ti.mutable_dict()->Intern("x");
    // Adopt a middle range of the root's children.
    CheckUpdater(ti, EditOperation::Insert(ti.AllocateId(), x, ti.root(), 1,
                                           2),
                 shape);
    // Delete a non-leaf child of the root.
    CheckUpdater(ti, EditOperation::Delete(ti.child(ti.root(), 0)), shape);
    // Rename a child of the root.
    CheckUpdater(ti, EditOperation::Rename(ti.child(ti.root(), 2), x),
                 shape);
  }
}

TEST(UpdaterTest, DeepChainDeleteAndInsert) {
  for (const PqShape& shape : AllTestShapes()) {
    Tree ti = MustParse("a(b(c(d(e(f)))))");
    NodeId c = ti.child(ti.child(ti.root(), 0), 0);
    CheckUpdater(ti, EditOperation::Delete(c), shape);
    LabelId x = ti.mutable_dict()->Intern("x");
    CheckUpdater(ti, EditOperation::Insert(ti.AllocateId(), x, c, 0, 1),
                 shape);
  }
}

class FullProfileChainTest : public ::testing::TestWithParam<PqShape> {};

TEST_P(FullProfileChainTest, RecursiveUpdateRecoversOriginalProfile) {
  // Equation 10 iterated over whole logs: seeding the store with the FULL
  // profile of Tn and applying U for e-bar_n .. e-bar_1 must yield the
  // full profile of T0 -- the strongest single check of the update
  // function, exercising every row of the table at every step.
  const PqShape shape = GetParam();
  Rng rng(31000 + shape.p * 100 + shape.q);
  for (int trial = 0; trial < 8; ++trial) {
    Tree t0 = GenerateRandomTree(
        nullptr, &rng,
        {.num_nodes = 1 + static_cast<int>(rng.NextBounded(25)),
         .alphabet_size = 4});
    Tree tn = t0.Clone();
    EditLog log;
    int ops = 1 + static_cast<int>(rng.NextBounded(15));
    GenerateEditScript(&tn, &rng, ops, EditScriptOptions{}, &log);

    DeltaStore store(shape);
    FillStoreWithProfile(tn, &store);
    ProfileUpdater updater(&store, &tn.dict());
    for (int i = log.size() - 1; i >= 0; --i) {
      updater.Apply(log.inverse(i));
    }
    store.CheckConsistency();
    std::set<PqGram> got = StoreToSet(store);
    std::set<PqGram> want = ComputeProfileSet(t0, shape);
    ASSERT_EQ(got, want) << "shape (" << shape.p << "," << shape.q
                         << "), " << ops << " ops\n"
                         << DescribeDiff(got, want, t0.dict());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, FullProfileChainTest,
    ::testing::ValuesIn(pqidx::testing::AllTestShapes()),
    [](const ::testing::TestParamInfo<PqShape>& info) {
      return "p" + std::to_string(info.param.p) + "q" +
             std::to_string(info.param.q);
    });

TEST(UpdaterTest, WideFanoutMiddleOps) {
  for (const PqShape& shape : AllTestShapes()) {
    Tree ti = MustParse("a(c0,c1,c2,c3,c4,c5,c6,c7)");
    LabelId x = ti.mutable_dict()->Intern("x");
    CheckUpdater(ti, EditOperation::Insert(ti.AllocateId(), x, ti.root(), 3,
                                           0),
                 shape);
    CheckUpdater(ti, EditOperation::Delete(ti.child(ti.root(), 4)), shape);
  }
}

}  // namespace
}  // namespace pqidx
